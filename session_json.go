package ctms

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"
)

// SessionOptions marshals to a JSON scenario document the same way
// Options does: durations render as Go duration strings ("12ms") and
// parse from either that form or a bare nanosecond count; unknown
// fields are rejected so a typoed knob fails loudly. The population
// block nests under "population", with the codec mix under "classes".

// codecClassJSON mirrors CodecClass for scenario files.
type codecClassJSON struct {
	Name        string       `json:"name"`
	PacketBytes int          `json:"packet_bytes"`
	Interval    jsonDuration `json:"interval"`
	Class       StreamClass  `json:"class"`
	Weight      float64      `json:"weight"`
}

// populationJSON mirrors PopulationSpec for scenario files.
type populationJSON struct {
	ArrivalsPerSec  float64          `json:"arrivals_per_sec"`
	ZipfSkew        float64          `json:"zipf_skew"`
	Titles          int              `json:"titles"`
	ChurnHalfLife   jsonDuration     `json:"churn_half_life"`
	Classes         []codecClassJSON `json:"classes,omitempty"`
	Diurnal         []float64        `json:"diurnal,omitempty"`
	StormAt         jsonDuration     `json:"storm_at"`
	StormInsertions int              `json:"storm_insertions"`
	MaxStreams      int              `json:"max_streams"`
}

// sessionOptionsJSON mirrors SessionOptions field for field; only the
// duration fields and the population pointer change type. The
// round-trip golden test keeps the two in sync.
type sessionOptionsJSON struct {
	Name     string       `json:"name"`
	Seed     int64        `json:"seed"`
	Duration jsonDuration `json:"duration"`

	RingBitRate      int64        `json:"ring_bit_rate"`
	UtilizationCap   float64      `json:"utilization_cap"`
	BackgroundUtil   float64      `json:"background_util"`
	DisableAdmission bool         `json:"disable_admission"`
	ForceInsertionAt jsonDuration `json:"force_insertion_at"`
	PlayoutPrebuffer jsonDuration `json:"playout_prebuffer"`

	Population *populationJSON `json:"population,omitempty"`
}

func (p *PopulationSpec) toJSON() *populationJSON {
	if p == nil {
		return nil
	}
	j := &populationJSON{
		ArrivalsPerSec:  p.ArrivalsPerSec,
		ZipfSkew:        p.ZipfSkew,
		Titles:          p.Titles,
		ChurnHalfLife:   jsonDuration(p.ChurnHalfLife),
		Diurnal:         p.Diurnal,
		StormAt:         jsonDuration(p.StormAt),
		StormInsertions: p.StormInsertions,
		MaxStreams:      p.MaxStreams,
	}
	for _, cc := range p.Classes {
		j.Classes = append(j.Classes, codecClassJSON{
			Name:        cc.Name,
			PacketBytes: cc.PacketBytes,
			Interval:    jsonDuration(cc.Interval),
			Class:       cc.Class,
			Weight:      cc.Weight,
		})
	}
	return j
}

func (j *populationJSON) toSpec() *PopulationSpec {
	if j == nil {
		return nil
	}
	p := &PopulationSpec{
		ArrivalsPerSec:  j.ArrivalsPerSec,
		ZipfSkew:        j.ZipfSkew,
		Titles:          j.Titles,
		ChurnHalfLife:   time.Duration(j.ChurnHalfLife),
		Diurnal:         j.Diurnal,
		StormAt:         time.Duration(j.StormAt),
		StormInsertions: j.StormInsertions,
		MaxStreams:      j.MaxStreams,
	}
	for _, cc := range j.Classes {
		p.Classes = append(p.Classes, CodecClass{
			Name:        cc.Name,
			PacketBytes: cc.PacketBytes,
			Interval:    time.Duration(cc.Interval),
			Class:       cc.Class,
			Weight:      cc.Weight,
		})
	}
	return p
}

// MarshalJSON renders the session options as a scenario document.
func (o SessionOptions) MarshalJSON() ([]byte, error) {
	return json.Marshal(sessionOptionsJSON{
		Name:             o.Name,
		Seed:             o.Seed,
		Duration:         jsonDuration(o.Duration),
		RingBitRate:      o.RingBitRate,
		UtilizationCap:   o.UtilizationCap,
		BackgroundUtil:   o.BackgroundUtil,
		DisableAdmission: o.DisableAdmission,
		ForceInsertionAt: jsonDuration(o.ForceInsertionAt),
		PlayoutPrebuffer: jsonDuration(o.PlayoutPrebuffer),
		Population:       o.Population.toJSON(),
	})
}

// UnmarshalJSON parses a session scenario document. Unknown fields are
// an error, at every nesting level.
func (o *SessionOptions) UnmarshalJSON(b []byte) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var j sessionOptionsJSON
	if err := dec.Decode(&j); err != nil {
		return fmt.Errorf("ctms: bad session scenario: %w", err)
	}
	*o = SessionOptions{
		Name:             j.Name,
		Seed:             j.Seed,
		Duration:         time.Duration(j.Duration),
		RingBitRate:      j.RingBitRate,
		UtilizationCap:   j.UtilizationCap,
		BackgroundUtil:   j.BackgroundUtil,
		DisableAdmission: j.DisableAdmission,
		ForceInsertionAt: time.Duration(j.ForceInsertionAt),
		PlayoutPrebuffer: time.Duration(j.PlayoutPrebuffer),
		Population:       j.Population.toSpec(),
	}
	return nil
}

// LoadSessionScenarios parses a session scenario file's contents: either
// one SessionOptions object or an array of them. Every scenario is
// validated — ranges and class spellings both — before any is returned.
func LoadSessionScenarios(data []byte) ([]SessionOptions, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var scenarios []SessionOptions
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(data, &scenarios); err != nil {
			return nil, err
		}
	} else {
		var one SessionOptions
		if err := json.Unmarshal(data, &one); err != nil {
			return nil, err
		}
		scenarios = []SessionOptions{one}
	}
	if len(scenarios) == 0 {
		return nil, fmt.Errorf("ctms: scenario file holds no scenarios")
	}
	for i, s := range scenarios {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d (%s): %w", i, s.Name, err)
		}
	}
	return scenarios, nil
}
