package ctms_test

import (
	"fmt"
	"time"

	ctms "repro"
)

// Example runs a short Test Case A and prints the stable headline
// quantities (fixed for this seed by the simulation's determinism).
func Example() {
	opts := ctms.TestCaseA()
	opts.Duration = 30 * time.Second
	res, err := ctms.Run(opts)
	if err != nil {
		panic(err)
	}
	h7 := res.Histograms[ctms.HistTxToRx]
	fmt.Printf("delivered %.3f of the stream\n", res.DeliveredFraction())
	fmt.Printf("tx→rx minimum %d µs (paper: 10740)\n", int(h7.MinMicros))
	fmt.Printf("glitches: %d\n", res.Glitches)
	// Output:
	// delivered 1.000 of the stream
	// tx→rx minimum 10710 µs (paper: 10740)
	// glitches: 0
}

// ExampleRun_ablation toggles one of the paper's design choices — the
// precomputed Token Ring header — and shows its cost appearing on the
// send path.
func ExampleRun_ablation() {
	base := ctms.TestCaseA()
	base.Duration = 20 * time.Second
	perPacket := base
	perPacket.PrecomputeHeader = false

	rBase, err := ctms.Run(base)
	if err != nil {
		panic(err)
	}
	rPer, err := ctms.Run(perPacket)
	if err != nil {
		panic(err)
	}
	d := rPer.Truth[ctms.HistEntryToPreTransmit].ModeMicros -
		rBase.Truth[ctms.HistEntryToPreTransmit].ModeMicros
	fmt.Printf("per-packet header computation adds ≈%d µs\n", int(d))
	// Output:
	// per-packet header computation adds ≈100 µs
}
