# CI entry points. `make ci` is what a runner should execute: the race
# detector is load-bearing here — internal/lab introduced the repo's
# goroutines, and TestLabPoolRace exists specifically to give -race real
# interleavings to check.

GO ?= go

.PHONY: ci vet lint lint-fast build test race race-shards bench bench-check bench-baseline api-check api-golden clean

ci: vet lint build race race-shards bench bench-check api-check

vet:
	$(GO) vet ./...

# ctmsvet is the repo's own analyzer suite (internal/analyzers), all
# four tiers: the syntactic determinism/exhaustive rules, the typed
# mbuflife/locking/hotpath rules, the interprocedural
# shardowned/seedflow/barrier rules, and the dimensional-inference dim
# rule DESIGN.md §7 specifies. (The syntactic units heuristic is
# demoted whenever dim runs; lint-fast keeps it as the cheap stand-in.)
# It exits nonzero with file:line:col diagnostics on any finding and
# leaves the machine-readable artifact in ctmsvet.json for CI to
# archive.
lint:
	$(GO) run ./cmd/ctmsvet -out ctmsvet.json

# The edit-compile loop's lint: the syntactic tier alone (no go/types
# loading, units included), restricted to files differing from HEAD —
# sub-second on a clean tree, still instant with a handful of files in
# flight. The full tree and all four tiers run in `make lint` (and ci),
# which stays the gate.
lint-fast:
	$(GO) run ./cmd/ctmsvet -typed=false -changed HEAD

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The sharded engine's dedicated race gate: E18 serial-vs-4-shard
# bit-identity, the E20 mesh smoke (per-link windows, drain-round skip
# protocol, pooled forwarding) and the randomized mesh oracle, all under
# the race detector. `make race` already covers them via ./..., but this
# target keeps the smokes runnable (and named) on their own so a future
# test filter can't silently drop them from ci.
race-shards:
	$(GO) test -race -run 'TestE18ShardedSmoke|TestShardSerialEquivalence|TestE20MeshSmoke|TestMeshOracleWorkerCounts' \
		./internal/core ./internal/topo

# A one-iteration benchmark smoke: catches benchmarks that no longer
# compile or panic, without paying for stable numbers.
bench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatorThroughput -benchtime 1x -benchmem .

# Perf-regression gate: run the E17 smoke serially (per-run allocation
# and sim-time accounting need -parallel 1) and compare against the
# committed baseline. ctmsbench -compare exits nonzero when mallocs grow
# more than 10% or sim-seconds-per-second drops more than 50% — wide
# enough to absorb shared-runner noise, tight enough to catch a
# reverted allocation fix or an accounting bug that zeroes sim_seconds.
# Refresh the baseline with: make bench-baseline (on a quiet machine).
bench-check:
	$(GO) run ./cmd/ctmsbench -experiment E17 -minutes 0.35 -parallel 1 \
		-shards 1,2,4,8 -topo 4,8 -population -lint \
		-benchout /tmp/ctmsbench-check.json -compare BENCH.baseline.json

bench-baseline:
	$(GO) run ./cmd/ctmsbench -experiment E17 -minutes 0.35 -parallel 1 \
		-shards 1,2,4,8 -topo 4,8 -population -lint \
		-benchout BENCH.baseline.json

# The public API surface (go doc -all of the root package) is pinned in
# api/golden.txt: api-check fails on any drift, api-golden accepts it.
# Pinning go doc output catches signature changes AND doc-comment changes,
# both of which are API in a reproduction whose README quotes them.
api-check:
	$(GO) doc -all . | diff -u api/golden.txt - \
		|| { echo "public API drifted from api/golden.txt; run 'make api-golden' to accept"; exit 1; }

api-golden:
	$(GO) doc -all . > api/golden.txt

clean:
	$(GO) clean ./...
	rm -f ctmsvet.json
