# CI entry points. `make ci` is what a runner should execute: the race
# detector is load-bearing here — internal/lab introduced the repo's
# goroutines, and TestLabPoolRace exists specifically to give -race real
# interleavings to check.

GO ?= go

.PHONY: ci vet build test race bench clean

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# A one-iteration benchmark smoke: catches benchmarks that no longer
# compile or panic, without paying for stable numbers.
bench:
	$(GO) test -run '^$$' -bench BenchmarkSimulatorThroughput -benchtime 1x -benchmem .

clean:
	$(GO) clean ./...
