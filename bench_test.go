package ctms_test

// Benchmarks, one per table/figure of the paper's evaluation (DESIGN.md's
// experiment index). Each benchmark iteration runs the experiment at a
// reduced duration; `go test -bench . -benchmem` regenerates every
// comparison. Use cmd/ctmsbench -full for the paper's 117-minute runs.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// benchScale keeps each iteration affordable while still exercising the
// full machinery (thousands of packets per run).
var benchScale = core.Scale{Duration: 30 * sim.Second}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cmp := e.Run(benchScale)
		if len(cmp.Metrics) == 0 {
			b.Fatal("experiment produced no metrics")
		}
	}
}

// BenchmarkStockUnixPath is E1 (§1): the stock UNIX transport at 16 and
// 150 KB/s.
func BenchmarkStockUnixPath(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkCopyModes is E2 (§2): copy accounting per data path.
func BenchmarkCopyModes(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkFig52 is E3: Test Case B histogram 6 (Figure 5-2).
func BenchmarkFig52(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkFig53 is E4: Test Case A histogram 7 (Figure 5-3).
func BenchmarkFig53(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkFig54 is E5: Test Case B histogram 7 (Figure 5-4).
func BenchmarkFig54(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkHistograms is E6 (§5.3): histograms 1–5 plus case A's 6.
func BenchmarkHistograms(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkMACOverhead is E7 (§4): MAC-frame monitoring interrupt load.
func BenchmarkMACOverhead(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkRingPurge is E8 (§5/§6): Ring Purge loss and recovery.
func BenchmarkRingPurge(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkBufferSizing is E9 (§6): <25 KB of buffering at 150 KB/s.
func BenchmarkBufferSizing(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkToolValidation is E10 (§5.2): the measurement-tool error
// budget.
func BenchmarkToolValidation(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkAblations is E11 (§3/§4): the design-choice toggles.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkPointerTransfer is E12 (§2): the zero-CPU-copy extension.
func BenchmarkPointerTransfer(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkDriverRaceBug is E13 (§5): the critical-section bug the TAP
// monitor caught, and its fix.
func BenchmarkDriverRaceBug(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkRateSweep is E15: the capacity-crossover sweep of stock UNIX
// vs CTMSP across stream rates.
func BenchmarkRateSweep(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkRouterForwarding is E14 (footnote 5): the CTMS stream across
// two rings through a store-and-forward router.
func BenchmarkRouterForwarding(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkRing16Mbit is E16: the 16 Mbit Token Ring what-if answering
// the paper's title question at higher rates.
func BenchmarkRing16Mbit(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkSessionSweep is E17: the multi-stream admission sweep, the
// free-for-all ablation and the class-ordered shedding run.
func BenchmarkSessionSweep(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkSimulatorThroughput measures the raw discrete-event engine:
// simulated seconds of Test Case A per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := core.TestCaseA()
	cfg.Duration = 10 * sim.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(10*float64(b.N)/b.Elapsed().Seconds(), "simsec/s")
}
