package ctms

import (
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/stats"
)

// Bin is one histogram bin: [LoMicros, HiMicros) holding Count samples.
type Bin struct {
	LoMicros, HiMicros float64
	Count              uint64
}

// Histogram is the public view of one of the seven §5.3 measurements.
type Histogram struct {
	Name        string
	N           uint64
	MeanMicros  float64
	StdMicros   float64
	MinMicros   float64
	MaxMicros   float64
	ModeMicros  float64
	PeaksMicros []float64 // local maxima holding ≥1% of samples
	Bins        []Bin
	// Rendered is an ASCII drawing in the style of the paper's figures.
	Rendered string

	src *stats.Histogram
}

// FractionWithin reports the fraction of samples x with lo ≤ x ≤ hi, in
// microseconds — the form in which the paper states every result.
func (h *Histogram) FractionWithin(loMicros, hiMicros float64) float64 {
	if h.src == nil {
		return 0
	}
	return h.src.FractionWithin(loMicros, hiMicros)
}

// QuantileMicros reports the q-th quantile (0..1) in microseconds.
func (h *Histogram) QuantileMicros(q float64) float64 {
	if h.src == nil {
		return 0
	}
	return h.src.Quantile(q)
}

// Result is everything one experiment produced.
type Result struct {
	Name    string
	Elapsed time.Duration

	// Stream accounting.
	Sent       uint64
	Delivered  uint64
	Lost       uint64
	Duplicates uint64
	Reordered  uint64
	Gaps       uint64

	// Presentation-side behaviour (§6's buffer-sizing conclusion).
	Glitches       uint64
	StarvedTime    time.Duration
	MaxBufferBytes int

	// ThroughputBytesPerSec is the delivered stream rate.
	ThroughputBytesPerSec float64

	// Histograms as recorded by the configured tool, indexed by the
	// Hist* constants; Truth is the logic analyzer's exact view.
	Histograms [NumHistograms]*Histogram
	Truth      [NumHistograms]*Histogram

	// Substrate accounting.
	RingUtilization float64
	RingPurges      uint64
	RingInsertions  uint64
	PurgeLostFrames uint64
	TxCPUUtil       float64
	RxCPUUtil       float64

	// §2 copy accounting for this configuration.
	CPUCopies  int
	DMACopies  int
	TotalMoves int

	// Report is a preformatted human-readable summary.
	Report string
}

// DeliveredFraction reports Delivered/Sent.
func (r *Result) DeliveredFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

func histFrom(h *stats.Histogram) *Histogram {
	if h == nil {
		return &Histogram{}
	}
	out := &Histogram{
		Name:        h.Label,
		N:           h.N(),
		MeanMicros:  h.Mean(),
		StdMicros:   h.Stddev(),
		MinMicros:   h.Min(),
		MaxMicros:   h.Max(),
		ModeMicros:  h.Mode(),
		PeaksMicros: h.Peaks(0.01),
		Rendered:    h.Render(stats.RenderOptions{Width: 60, ClipHi: 45000}),
		src:         h,
	}
	for _, b := range h.Bins() {
		out.Bins = append(out.Bins, Bin{LoMicros: b.Lo, HiMicros: b.Hi, Count: b.Count})
	}
	return out
}

func resultFrom(res *core.Results) *Result {
	r := &Result{
		Name:                  res.Config.Name,
		Elapsed:               res.Elapsed.Std(),
		Sent:                  res.Sent,
		Delivered:             res.Delivered,
		Lost:                  res.RxStats.Lost,
		Duplicates:            res.RxStats.Duplicates,
		Reordered:             res.RxStats.Reordered,
		Gaps:                  res.RxStats.Gaps,
		Glitches:              res.Playout.Glitches,
		StarvedTime:           res.Playout.StarvedTime.Std(),
		MaxBufferBytes:        res.Playout.MaxBufferBytes,
		ThroughputBytesPerSec: res.Throughput(),
		RingUtilization:       float64(res.Ring.BusyTime) / float64(res.Elapsed),
		RingPurges:            res.Ring.PurgeCount,
		RingInsertions:        res.Ring.InsertionSeen,
		PurgeLostFrames:       res.Ring.PurgeLost,
		TxCPUUtil:             res.TxCPUUtil,
		RxCPUUtil:             res.RxCPUUtil,
		CPUCopies:             res.Copies.CPUCopies(),
		DMACopies:             res.Copies.DMACopies(),
		TotalMoves:            res.Copies.Total(),
		Report:                res.Report(),
	}
	for id := measure.H1InterIRQ; id < measure.NumHistograms; id++ {
		r.Histograms[id] = histFrom(res.Hists.H[id])
		r.Truth[id] = histFrom(res.Truth.H[id])
	}
	return r
}
