// Package ctms is a Go reproduction of "Distributed Multimedia: How Can
// the Necessary Data Rates be Supported?" (Pasieka, Crumley, Marks,
// Infortuna; USENIX 1991) — the Carnegie Mellon ITC Continuous Time Media
// System prototype.
//
// Everything below this API is a deterministic discrete-event simulation
// built from scratch: a 4 Mbit/s Token Ring with access priority and Ring
// Purge semantics, an IBM RT/PC machine model (interrupt levels, IO
// Channel Memory, DMA cycle steal), the BSD mbuf/driver data path, the
// paper's CTMSP protocol beside an ARP/IP/reliable-transport baseline,
// the Voice Communications Adapter interrupt source, the campus ring's
// background traffic, and the measurement toolchain (logic analyzer,
// in-kernel pseudo-device, and the two-PC/AT parallel-port timestamper).
//
// The quickest way in:
//
//	res, err := ctms.Run(ctms.TestCaseB())
//	fmt.Println(res.Report)
//
// Options exposes every configuration toggle §5.3 of the paper lists, so
// any of its scenarios — and the ablations between them — can be run.
// Options also round-trips through JSON (the ctmsbench -scenario format).
//
// Session runs N concurrent CTMSP streams over one ring behind an
// admission controller — the multi-stream layer §3's bandwidth-guarantee
// argument implies; see NewSession.
package ctms

import (
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/sim"
)

// Protocol selects the transport architecture under test.
type Protocol string

const (
	// CTMSP is the paper's prototype: direct driver-to-driver transfer
	// over the CTMS Protocol.
	CTMSP Protocol = "ctmsp"
	// StockUnix is the unmodified path: a user-level relay process over
	// a TCP-class reliable transport and IP.
	StockUnix Protocol = "stock-unix"
)

// Tool selects the measurement instrument whose view is reported.
type Tool string

const (
	// LogicAnalyzer records exact timestamps with no perturbation.
	LogicAnalyzer Tool = "logic-analyzer"
	// PCAT is the paper's remote two-machine parallel-port rig: a 2 µs
	// 16-bit wrapping clock with a 50 Hz rollover marker and a polling
	// loop whose service time bounds the error.
	PCAT Tool = "pcat"
	// PseudoDev is the in-kernel recorder: 122 µs clock granularity and
	// it perturbs the machine being measured.
	PseudoDev Tool = "pseudodev"
)

// Load is the amount of background traffic on a public ring.
type Load string

const (
	// LoadNone means a private, unloaded network.
	LoadNone Load = "none"
	// LoadNormal is the campus ring's everyday traffic.
	LoadNormal Load = "normal"
	// LoadHeavy is a deliberately busy ring for sweeps.
	LoadHeavy Load = "heavy"
)

// Options describes one experiment. The zero value is not runnable; start
// from TestCaseA, TestCaseB, StockUnixAt or DefaultOptions and modify.
type Options struct {
	Name     string
	Seed     int64
	Duration time.Duration

	// PacketBytes are sent every Interval (the paper: 2000 B / 12 ms).
	PacketBytes int
	Interval    time.Duration

	Protocol Protocol
	Tool     Tool

	// Transmitter data-path toggles (§5.3).
	TxIOChannelMemory bool
	TxCopyHeaderOnly  bool
	TxCopyVCAToMbufs  bool
	PointerTransfer   bool

	// Receiver data-path toggles.
	RxCopyToMbufs bool
	RxCopyToVCA   bool

	// Driver and protocol toggles.
	DriverPriority   bool
	RingPriority     bool
	PrecomputeHeader bool
	PurgeInterrupt   bool
	// DriverRaceBug re-introduces the §5 critical-section bug that
	// produced out-of-order packets until the prototype protected its
	// queue manipulation.
	DriverRaceBug bool

	// Environment.
	PublicNetwork   bool
	NetworkLoad     Load
	Multiprocessing bool
	Insertions      bool

	// ForceInsertionAt injects one station insertion (a Ring Purge
	// burst) at the given offset; zero disables it.
	ForceInsertionAt time.Duration

	// RingBitRate overrides the ring's signalling rate in bits/s
	// (0 = the paper's 4 Mbit/s; 16 Mbit/s is experiment E16's what-if).
	RingBitRate int64

	// PlayoutPrebuffer delays playback after the first packet.
	PlayoutPrebuffer time.Duration

	// HistogramBinWidthMicros sets the reported histograms' bin width.
	HistogramBinWidthMicros float64
}

// TestCaseA returns §5.3's Test Case A: private unloaded ring, standalone
// machines, full copy on the transmitter, receiver drops after the mbuf
// copy. Reproduces Figure 5-3.
func TestCaseA() Options { return fromCore(core.TestCaseA()) }

// TestCaseB returns §5.3's Test Case B: public loaded ring,
// multiprocessing machines, full copying both ends. Reproduces Figures
// 5-2 and 5-4.
func TestCaseB() Options { return fromCore(core.TestCaseB()) }

// StockUnixAt returns the §1 baseline moving rateBytesPerSec through the
// unmodified user-process path. The paper ran 16_000 (worked) and
// 150_000 (failed completely).
func StockUnixAt(rateBytesPerSec int) Options {
	return fromCore(core.StockUnix(rateBytesPerSec))
}

func fromCore(c core.Config) Options {
	return Options{
		Name:                    c.Name,
		Seed:                    c.Seed,
		Duration:                c.Duration.Std(),
		PacketBytes:             c.PacketBytes,
		Interval:                c.Interval.Std(),
		Protocol:                protocolTable.fromCore(c.Protocol),
		Tool:                    toolTable.fromCore(c.Tool),
		TxIOChannelMemory:       c.TxIOChannelMemory,
		TxCopyHeaderOnly:        c.TxCopyHeaderOnly,
		TxCopyVCAToMbufs:        c.TxCopyVCAToMbufs,
		PointerTransfer:         c.PointerTransfer,
		RxCopyToMbufs:           c.RxCopyToMbufs,
		RxCopyToVCA:             c.RxCopyToVCA,
		DriverPriority:          c.DriverPriority,
		RingPriority:            c.RingPriority,
		PrecomputeHeader:        c.PrecomputeHeader,
		PurgeInterrupt:          c.PurgeInterrupt,
		DriverRaceBug:           c.DriverRaceBug,
		PublicNetwork:           c.PublicNetwork,
		NetworkLoad:             loadTable.fromCore(c.NetworkLoad),
		Multiprocessing:         c.Multiprocessing,
		Insertions:              c.Insertions,
		ForceInsertionAt:        c.ForceInsertionAt.Std(),
		RingBitRate:             c.RingBitRate,
		PlayoutPrebuffer:        c.PlayoutPrebuffer.Std(),
		HistogramBinWidthMicros: c.HistogramBinWidth,
	}
}

func (o Options) toCore() (core.Config, error) {
	c := core.Config{
		Name:              o.Name,
		Seed:              o.Seed,
		Duration:          sim.Time(o.Duration),
		PacketBytes:       o.PacketBytes,
		Interval:          sim.Time(o.Interval),
		TxIOChannelMemory: o.TxIOChannelMemory,
		TxCopyHeaderOnly:  o.TxCopyHeaderOnly,
		TxCopyVCAToMbufs:  o.TxCopyVCAToMbufs,
		PointerTransfer:   o.PointerTransfer,
		RxCopyToMbufs:     o.RxCopyToMbufs,
		RxCopyToVCA:       o.RxCopyToVCA,
		DriverPriority:    o.DriverPriority,
		RingPriority:      o.RingPriority,
		PrecomputeHeader:  o.PrecomputeHeader,
		PurgeInterrupt:    o.PurgeInterrupt,
		DriverRaceBug:     o.DriverRaceBug,
		PublicNetwork:     o.PublicNetwork,
		Multiprocessing:   o.Multiprocessing,
		Insertions:        o.Insertions,
		ForceInsertionAt:  sim.Time(o.ForceInsertionAt),
		RingBitRate:       o.RingBitRate,
		PlayoutPrebuffer:  sim.Time(o.PlayoutPrebuffer),
		HistogramBinWidth: o.HistogramBinWidthMicros,
	}
	var err error
	if c.Protocol, err = protocolTable.toCore(o.Protocol); err != nil {
		return c, err
	}
	if c.Tool, err = toolTable.toCore(o.Tool); err != nil {
		return c, err
	}
	if c.NetworkLoad, err = loadTable.toCore(o.NetworkLoad); err != nil {
		return c, err
	}
	return c, nil
}

// The three Options enums and their internal counterparts, each in one
// table serving both directions (see enumTable).
var (
	protocolTable = enumTable[Protocol, core.Protocol]{
		kind: "protocol", def: CTMSP,
		vals: []enumPair[Protocol, core.Protocol]{
			{CTMSP, core.ProtocolCTMSP},
			{StockUnix, core.ProtocolStockUnix},
		},
	}
	toolTable = enumTable[Tool, core.Tool]{
		kind: "tool", def: LogicAnalyzer,
		vals: []enumPair[Tool, core.Tool]{
			{LogicAnalyzer, core.ToolLogicAnalyzer},
			{PCAT, core.ToolPCAT},
			{PseudoDev, core.ToolPseudoDev},
		},
	}
	loadTable = enumTable[Load, core.LoadLevel]{
		kind: "load", def: LoadNone,
		vals: []enumPair[Load, core.LoadLevel]{
			{LoadNone, core.LoadNone},
			{LoadNormal, core.LoadNormal},
			{LoadHeavy, core.LoadHeavy},
		},
	}
)

// Validate reports configuration mistakes without running anything. An
// unknown enum value produces an error listing every valid spelling; the
// scenario-level checks (positive duration, packet size within the ring
// MTU model, coherent toggles) are exactly the ones Run applies.
func (o Options) Validate() error {
	c, err := o.toCore()
	if err != nil {
		return err
	}
	return c.Validate()
}

// Run executes the experiment and returns its results.
func Run(o Options) (*Result, error) {
	cfg, err := o.toCore()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return resultFrom(res), nil
}

// Histograms the package reports, in the paper's numbering.
const (
	HistInterIRQ           = int(measure.H1InterIRQ)
	HistInterEntry         = int(measure.H2InterEntry)
	HistInterPreTransmit   = int(measure.H3InterPreTransmit)
	HistInterRxClassified  = int(measure.H4InterRxClassified)
	HistIRQToEntry         = int(measure.H5IRQToEntry)
	HistEntryToPreTransmit = int(measure.H6EntryToPreTransmit) // Figure 5-2
	HistTxToRx             = int(measure.H7TxToRx)             // Figures 5-3/5-4
	NumHistograms          = int(measure.NumHistograms)
)
