// Package ctms is a Go reproduction of "Distributed Multimedia: How Can
// the Necessary Data Rates be Supported?" (Pasieka, Crumley, Marks,
// Infortuna; USENIX 1991) — the Carnegie Mellon ITC Continuous Time Media
// System prototype.
//
// Everything below this API is a deterministic discrete-event simulation
// built from scratch: a 4 Mbit/s Token Ring with access priority and Ring
// Purge semantics, an IBM RT/PC machine model (interrupt levels, IO
// Channel Memory, DMA cycle steal), the BSD mbuf/driver data path, the
// paper's CTMSP protocol beside an ARP/IP/reliable-transport baseline,
// the Voice Communications Adapter interrupt source, the campus ring's
// background traffic, and the measurement toolchain (logic analyzer,
// in-kernel pseudo-device, and the two-PC/AT parallel-port timestamper).
//
// The quickest way in:
//
//	res, err := ctms.Run(ctms.TestCaseB())
//	fmt.Println(res.Report)
//
// Options exposes every configuration toggle §5.3 of the paper lists, so
// any of its scenarios — and the ablations between them — can be run.
package ctms

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
	"repro/internal/sim"
)

// Protocol selects the transport architecture under test.
type Protocol string

const (
	// CTMSP is the paper's prototype: direct driver-to-driver transfer
	// over the CTMS Protocol.
	CTMSP Protocol = "ctmsp"
	// StockUnix is the unmodified path: a user-level relay process over
	// a TCP-class reliable transport and IP.
	StockUnix Protocol = "stock-unix"
)

// Tool selects the measurement instrument whose view is reported.
type Tool string

const (
	// LogicAnalyzer records exact timestamps with no perturbation.
	LogicAnalyzer Tool = "logic-analyzer"
	// PCAT is the paper's remote two-machine parallel-port rig: a 2 µs
	// 16-bit wrapping clock with a 50 Hz rollover marker and a polling
	// loop whose service time bounds the error.
	PCAT Tool = "pcat"
	// PseudoDev is the in-kernel recorder: 122 µs clock granularity and
	// it perturbs the machine being measured.
	PseudoDev Tool = "pseudodev"
)

// Load is the amount of background traffic on a public ring.
type Load string

const (
	// LoadNone means a private, unloaded network.
	LoadNone Load = "none"
	// LoadNormal is the campus ring's everyday traffic.
	LoadNormal Load = "normal"
	// LoadHeavy is a deliberately busy ring for sweeps.
	LoadHeavy Load = "heavy"
)

// Options describes one experiment. The zero value is not runnable; start
// from TestCaseA, TestCaseB, StockUnixAt or DefaultOptions and modify.
type Options struct {
	Name     string
	Seed     int64
	Duration time.Duration

	// PacketBytes are sent every Interval (the paper: 2000 B / 12 ms).
	PacketBytes int
	Interval    time.Duration

	Protocol Protocol
	Tool     Tool

	// Transmitter data-path toggles (§5.3).
	TxIOChannelMemory bool
	TxCopyHeaderOnly  bool
	TxCopyVCAToMbufs  bool
	PointerTransfer   bool

	// Receiver data-path toggles.
	RxCopyToMbufs bool
	RxCopyToVCA   bool

	// Driver and protocol toggles.
	DriverPriority   bool
	RingPriority     bool
	PrecomputeHeader bool
	PurgeInterrupt   bool
	// DriverRaceBug re-introduces the §5 critical-section bug that
	// produced out-of-order packets until the prototype protected its
	// queue manipulation.
	DriverRaceBug bool

	// Environment.
	PublicNetwork   bool
	NetworkLoad     Load
	Multiprocessing bool
	Insertions      bool

	// ForceInsertionAt injects one station insertion (a Ring Purge
	// burst) at the given offset; zero disables it.
	ForceInsertionAt time.Duration

	// PlayoutPrebuffer delays playback after the first packet.
	PlayoutPrebuffer time.Duration

	// HistogramBinWidthMicros sets the reported histograms' bin width.
	HistogramBinWidthMicros float64
}

// TestCaseA returns §5.3's Test Case A: private unloaded ring, standalone
// machines, full copy on the transmitter, receiver drops after the mbuf
// copy. Reproduces Figure 5-3.
func TestCaseA() Options { return fromCore(core.TestCaseA()) }

// TestCaseB returns §5.3's Test Case B: public loaded ring,
// multiprocessing machines, full copying both ends. Reproduces Figures
// 5-2 and 5-4.
func TestCaseB() Options { return fromCore(core.TestCaseB()) }

// StockUnixAt returns the §1 baseline moving rateBytesPerSec through the
// unmodified user-process path. The paper ran 16_000 (worked) and
// 150_000 (failed completely).
func StockUnixAt(rateBytesPerSec int) Options {
	return fromCore(core.StockUnix(rateBytesPerSec))
}

func fromCore(c core.Config) Options {
	return Options{
		Name:                    c.Name,
		Seed:                    c.Seed,
		Duration:                c.Duration.Std(),
		PacketBytes:             c.PacketBytes,
		Interval:                c.Interval.Std(),
		Protocol:                protoFrom(c.Protocol),
		Tool:                    toolFrom(c.Tool),
		TxIOChannelMemory:       c.TxIOChannelMemory,
		TxCopyHeaderOnly:        c.TxCopyHeaderOnly,
		TxCopyVCAToMbufs:        c.TxCopyVCAToMbufs,
		PointerTransfer:         c.PointerTransfer,
		RxCopyToMbufs:           c.RxCopyToMbufs,
		RxCopyToVCA:             c.RxCopyToVCA,
		DriverPriority:          c.DriverPriority,
		RingPriority:            c.RingPriority,
		PrecomputeHeader:        c.PrecomputeHeader,
		PurgeInterrupt:          c.PurgeInterrupt,
		DriverRaceBug:           c.DriverRaceBug,
		PublicNetwork:           c.PublicNetwork,
		NetworkLoad:             loadFrom(c.NetworkLoad),
		Multiprocessing:         c.Multiprocessing,
		Insertions:              c.Insertions,
		ForceInsertionAt:        c.ForceInsertionAt.Std(),
		PlayoutPrebuffer:        c.PlayoutPrebuffer.Std(),
		HistogramBinWidthMicros: c.HistogramBinWidth,
	}
}

func (o Options) toCore() (core.Config, error) {
	c := core.Config{
		Name:              o.Name,
		Seed:              o.Seed,
		Duration:          sim.Time(o.Duration),
		PacketBytes:       o.PacketBytes,
		Interval:          sim.Time(o.Interval),
		TxIOChannelMemory: o.TxIOChannelMemory,
		TxCopyHeaderOnly:  o.TxCopyHeaderOnly,
		TxCopyVCAToMbufs:  o.TxCopyVCAToMbufs,
		PointerTransfer:   o.PointerTransfer,
		RxCopyToMbufs:     o.RxCopyToMbufs,
		RxCopyToVCA:       o.RxCopyToVCA,
		DriverPriority:    o.DriverPriority,
		RingPriority:      o.RingPriority,
		PrecomputeHeader:  o.PrecomputeHeader,
		PurgeInterrupt:    o.PurgeInterrupt,
		DriverRaceBug:     o.DriverRaceBug,
		PublicNetwork:     o.PublicNetwork,
		Multiprocessing:   o.Multiprocessing,
		Insertions:        o.Insertions,
		ForceInsertionAt:  sim.Time(o.ForceInsertionAt),
		PlayoutPrebuffer:  sim.Time(o.PlayoutPrebuffer),
		HistogramBinWidth: o.HistogramBinWidthMicros,
	}
	switch o.Protocol {
	case CTMSP, "":
		c.Protocol = core.ProtocolCTMSP
	case StockUnix:
		c.Protocol = core.ProtocolStockUnix
	default:
		return c, fmt.Errorf("ctms: unknown protocol %q", o.Protocol)
	}
	switch o.Tool {
	case LogicAnalyzer, "":
		c.Tool = core.ToolLogicAnalyzer
	case PCAT:
		c.Tool = core.ToolPCAT
	case PseudoDev:
		c.Tool = core.ToolPseudoDev
	default:
		return c, fmt.Errorf("ctms: unknown tool %q", o.Tool)
	}
	switch o.NetworkLoad {
	case LoadNone, "":
		c.NetworkLoad = core.LoadNone
	case LoadNormal:
		c.NetworkLoad = core.LoadNormal
	case LoadHeavy:
		c.NetworkLoad = core.LoadHeavy
	default:
		return c, fmt.Errorf("ctms: unknown load %q", o.NetworkLoad)
	}
	return c, nil
}

func protoFrom(p core.Protocol) Protocol {
	if p == core.ProtocolStockUnix {
		return StockUnix
	}
	return CTMSP
}

func toolFrom(t core.Tool) Tool {
	switch t {
	case core.ToolPCAT:
		return PCAT
	case core.ToolPseudoDev:
		return PseudoDev
	}
	return LogicAnalyzer
}

func loadFrom(l core.LoadLevel) Load {
	switch l {
	case core.LoadNormal:
		return LoadNormal
	case core.LoadHeavy:
		return LoadHeavy
	}
	return LoadNone
}

// Run executes the experiment and returns its results.
func Run(o Options) (*Result, error) {
	cfg, err := o.toCore()
	if err != nil {
		return nil, err
	}
	res, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return resultFrom(res), nil
}

// Histograms the package reports, in the paper's numbering.
const (
	HistInterIRQ           = int(measure.H1InterIRQ)
	HistInterEntry         = int(measure.H2InterEntry)
	HistInterPreTransmit   = int(measure.H3InterPreTransmit)
	HistInterRxClassified  = int(measure.H4InterRxClassified)
	HistIRQToEntry         = int(measure.H5IRQToEntry)
	HistEntryToPreTransmit = int(measure.H6EntryToPreTransmit) // Figure 5-2
	HistTxToRx             = int(measure.H7TxToRx)             // Figures 5-3/5-4
	NumHistograms          = int(measure.NumHistograms)
)
