package ctms_test

import (
	"strings"
	"testing"
	"time"

	ctms "repro"
)

func TestPublicRunTestCaseA(t *testing.T) {
	opts := ctms.TestCaseA()
	opts.Duration = 20 * time.Second
	res, err := ctms.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "test-case-A" {
		t.Fatalf("name: %q", res.Name)
	}
	if res.Sent < 1600 || res.DeliveredFraction() < 0.999 {
		t.Fatalf("stream: sent=%d delivered=%.4f", res.Sent, res.DeliveredFraction())
	}
	h7 := res.Histograms[ctms.HistTxToRx]
	if h7.N == 0 || h7.MinMicros < 10600 || h7.MinMicros > 10900 {
		t.Fatalf("H7 min: %v", h7.MinMicros)
	}
	if len(h7.Bins) == 0 || !strings.Contains(h7.Rendered, "#") {
		t.Fatal("public histogram missing bins/render")
	}
	if f := h7.FractionWithin(10_000, 20_000); f != 1 {
		t.Fatalf("all samples should be 10–20 ms in case A: %v", f)
	}
	if q := h7.QuantileMicros(0.5); q < h7.MinMicros || q > h7.MaxMicros {
		t.Fatalf("median out of range: %v", q)
	}
	if res.TotalMoves != res.CPUCopies+res.DMACopies {
		t.Fatal("copy arithmetic broken")
	}
	if !strings.Contains(res.Report, "test-case-A") {
		t.Fatal("report missing")
	}
}

func TestPublicOptionValidation(t *testing.T) {
	opts := ctms.TestCaseA()
	opts.Protocol = "carrier-pigeon"
	if _, err := ctms.Run(opts); err == nil {
		t.Fatal("bad protocol must error")
	}
	opts = ctms.TestCaseA()
	opts.Tool = "sundial"
	if _, err := ctms.Run(opts); err == nil {
		t.Fatal("bad tool must error")
	}
	opts = ctms.TestCaseA()
	opts.NetworkLoad = "apocalyptic"
	if _, err := ctms.Run(opts); err == nil {
		t.Fatal("bad load must error")
	}
	opts = ctms.TestCaseA()
	opts.Duration = 0
	if _, err := ctms.Run(opts); err == nil {
		t.Fatal("zero duration must error")
	}
}

func TestPublicStockBaseline(t *testing.T) {
	opts := ctms.StockUnixAt(150_000)
	opts.Duration = 30 * time.Second
	res, err := ctms.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Glitches == 0 && res.DeliveredFraction() > 0.98 {
		t.Fatalf("stock at 150 KB/s should struggle: %.3f delivered, %d glitches",
			res.DeliveredFraction(), res.Glitches)
	}
	if res.CPUCopies != 4 {
		t.Fatalf("stock path CPU copies: %d", res.CPUCopies)
	}
}

func TestPublicRoundTripOptions(t *testing.T) {
	// Presets survive the Options⇄core conversion.
	for _, opts := range []ctms.Options{ctms.TestCaseA(), ctms.TestCaseB(), ctms.StockUnixAt(16_000)} {
		if opts.Interval != 12*time.Millisecond {
			t.Fatalf("%s: interval %v", opts.Name, opts.Interval)
		}
		if opts.Duration == 0 || opts.PacketBytes == 0 {
			t.Fatalf("%s: incomplete preset %+v", opts.Name, opts)
		}
	}
	b := ctms.TestCaseB()
	if b.NetworkLoad != ctms.LoadNormal || !b.PublicNetwork {
		t.Fatalf("B preset environment wrong: %+v", b)
	}
}

func TestPublicForcedInsertion(t *testing.T) {
	opts := ctms.TestCaseB()
	opts.Duration = 40 * time.Second
	opts.Insertions = false
	// +7 ms into a 12 ms cycle, a CTMSP frame is mid-wire, so the purge
	// destroys it deterministically.
	opts.ForceInsertionAt = 15*time.Second + 7*time.Millisecond
	res, err := ctms.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RingPurges < 10 {
		t.Fatalf("forced insertion should purge: %d", res.RingPurges)
	}
	// The burst blocks the ring for 100–130 ms: the receiver must see a
	// gap of that size in packet arrivals (and may lose the one frame
	// that was on the wire).
	h4 := res.Truth[ctms.HistInterRxClassified]
	if h4.MaxMicros < 90_000 {
		t.Fatalf("insertion outage should show as a ≥100 ms receive gap, max=%v µs", h4.MaxMicros)
	}
}
