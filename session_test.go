package ctms_test

import (
	"strings"
	"testing"
	"time"

	ctms "repro"
)

func addStreams(t *testing.T, s *ctms.Session, n int) []ctms.Admission {
	t.Helper()
	classes := []ctms.StreamClass{ctms.ClassBackground, ctms.ClassStandard, ctms.ClassInteractive}
	out := make([]ctms.Admission, n)
	for i := range out {
		adm, err := s.Add(ctms.StreamSpec{
			PacketBytes: 500,
			Interval:    12 * time.Millisecond,
			Class:       classes[i%3],
		})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = adm
	}
	return out
}

func TestPublicSessionAdmits(t *testing.T) {
	s, err := ctms.NewSession(ctms.SessionOptions{
		Name:           "public-knee",
		Seed:           1991,
		Duration:       10 * time.Second,
		BackgroundUtil: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	adms := addStreams(t, s, 12)
	// ≈347 kbit/s per stream against a 3.4 Mbit/s budget: the verdicts
	// must flip from admitted to rejected at the knee, eagerly, before
	// the simulation ever runs.
	knee := 0
	for i, adm := range adms {
		if adm.Admitted {
			if i != knee {
				t.Fatalf("admissions not first-come-first-reserved: %d admitted after a rejection", i)
			}
			knee++
			if adm.ReservedBits == 0 {
				t.Fatalf("admitted stream %d reserved nothing", i)
			}
		} else if !strings.Contains(adm.Reason, "bits/s") {
			t.Fatalf("rejection %d without accounting: %q", i, adm.Reason)
		}
	}
	if knee < 6 || knee > 11 {
		t.Fatalf("knee out of range: %d", knee)
	}

	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted != knee || res.Rejected != 12-knee {
		t.Fatalf("run disagrees with Add verdicts: %d/%d vs knee %d", res.Admitted, res.Rejected, knee)
	}
	for i, st := range res.Streams {
		if st.Admission != adms[i] {
			t.Fatalf("stream %d: Add said %+v, Run said %+v", i, adms[i], st.Admission)
		}
	}
	if g := res.WorstAdmittedGlitchRate(); g > 1.0 {
		t.Fatalf("admitted streams must stay glitch-bounded: %.2f/min\n%s", g, res.Report)
	}
	if !strings.Contains(res.Report, "REJECTED") {
		t.Fatalf("report should show rejections:\n%s", res.Report)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run must fail")
	}
	if _, err := s.Add(ctms.StreamSpec{PacketBytes: 500, Interval: 12 * time.Millisecond}); err == nil {
		t.Fatal("Add after Run must fail")
	}
}

func TestPublicSessionValidation(t *testing.T) {
	if _, err := ctms.NewSession(ctms.SessionOptions{}); err == nil {
		t.Fatal("zero duration must fail")
	}
	if _, err := ctms.NewSession(ctms.SessionOptions{Duration: time.Second, UtilizationCap: 2}); err == nil {
		t.Fatal("cap > 1 must fail")
	}
	s, err := ctms.NewSession(ctms.SessionOptions{Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(ctms.StreamSpec{PacketBytes: 500, Interval: 12 * time.Millisecond, Class: "premium"}); err == nil {
		t.Fatal("unknown class must fail")
	} else if !strings.Contains(err.Error(), `"background"`) || !strings.Contains(err.Error(), `"interactive"`) {
		t.Fatalf("class error must list valid values: %v", err)
	}
	if _, err := s.Add(ctms.StreamSpec{PacketBytes: 0, Interval: 12 * time.Millisecond}); err == nil {
		t.Fatal("bad packet size must fail")
	}
}
