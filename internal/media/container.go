// Package media implements the application layer the paper's introduction
// motivates: multimedia documents containing "full motion full color
// video, Compact Disc quality audio" and other continuous media, stored
// in a container format, served at their natural rates by a CTMS file
// server and presented by a client that demultiplexes tracks into
// per-track playout buffers.
//
// The container is a simple chunked format: a fixed header, a track
// table, then timestamped chunks interleaved in presentation order. It is
// written and parsed with encoding/binary so documents survive a byte-
// exact round trip through the simulated transport.
package media

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Container format constants.
const (
	// Magic identifies a CTMS media file.
	Magic = 0x43544D53 // "CTMS"
	// Version of the format.
	Version = 1
	// headerSize is magic(4) version(2) tracks(2).
	headerSize = 8
	// trackEntrySize is id(1) kind(1) rate(4) pad(2).
	trackEntrySize = 8
	// chunkHeaderSize is track(1) pad(1) timestampMicros(8) length(4).
	chunkHeaderSize = 14
)

// TrackKind is the media type of a track.
type TrackKind uint8

const (
	// KindPCMAudio is 16-bit linear PCM (stored little-endian).
	KindPCMAudio TrackKind = 1
	// KindMuLawAudio is 8-bit G.711 µ-law.
	KindMuLawAudio TrackKind = 2
	// KindVideo is compressed video frames (opaque payload).
	KindVideo TrackKind = 3
)

func (k TrackKind) String() string {
	switch k {
	case KindPCMAudio:
		return "pcm-audio"
	case KindMuLawAudio:
		return "mulaw-audio"
	case KindVideo:
		return "video"
	}
	return fmt.Sprintf("TrackKind(%d)", uint8(k))
}

// Track describes one stream within a document.
type Track struct {
	ID   uint8
	Kind TrackKind
	// RateBytesPerSec is what the track consumes at presentation time.
	RateBytesPerSec uint32
}

// Chunk is one timestamped piece of one track.
type Chunk struct {
	Track uint8
	// TimestampMicros is the presentation time of the chunk's first byte.
	TimestampMicros uint64
	Data            []byte
}

// Document is a parsed multimedia document.
type Document struct {
	Tracks []Track
	Chunks []Chunk
}

// TrackByID finds a track.
func (d *Document) TrackByID(id uint8) (Track, bool) {
	for _, t := range d.Tracks {
		if t.ID == id {
			return t, true
		}
	}
	return Track{}, false
}

// TrackBytes concatenates a track's chunk payloads in timestamp order.
func (d *Document) TrackBytes(id uint8) []byte {
	var out []byte
	for _, c := range d.SortedChunks() {
		if c.Track == id {
			out = append(out, c.Data...)
		}
	}
	return out
}

// SortedChunks returns chunks in presentation order (stable across
// tracks sharing a timestamp).
func (d *Document) SortedChunks() []Chunk {
	out := append([]Chunk{}, d.Chunks...)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].TimestampMicros < out[j].TimestampMicros
	})
	return out
}

// DurationMicros reports the last chunk's timestamp.
func (d *Document) DurationMicros() uint64 {
	var max uint64
	for _, c := range d.Chunks {
		if c.TimestampMicros > max {
			max = c.TimestampMicros
		}
	}
	return max
}

// Encode serializes the document.
func (d *Document) Encode() ([]byte, error) {
	if len(d.Tracks) == 0 || len(d.Tracks) > 255 {
		return nil, fmt.Errorf("media: document needs 1–255 tracks, has %d", len(d.Tracks))
	}
	var buf bytes.Buffer
	var hdr [headerSize]byte
	binary.BigEndian.PutUint32(hdr[0:], Magic)
	binary.BigEndian.PutUint16(hdr[4:], Version)
	binary.BigEndian.PutUint16(hdr[6:], uint16(len(d.Tracks)))
	buf.Write(hdr[:])
	for _, t := range d.Tracks {
		var te [trackEntrySize]byte
		te[0] = t.ID
		te[1] = uint8(t.Kind)
		binary.BigEndian.PutUint32(te[2:], t.RateBytesPerSec)
		buf.Write(te[:])
	}
	for _, c := range d.SortedChunks() {
		if _, ok := d.TrackByID(c.Track); !ok {
			return nil, fmt.Errorf("media: chunk references unknown track %d", c.Track)
		}
		var ch [chunkHeaderSize]byte
		ch[0] = c.Track
		binary.BigEndian.PutUint64(ch[2:], c.TimestampMicros)
		binary.BigEndian.PutUint32(ch[10:], uint32(len(c.Data)))
		buf.Write(ch[:])
		buf.Write(c.Data)
	}
	return buf.Bytes(), nil
}

// Decode parses an encoded document.
func Decode(b []byte) (*Document, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("media: truncated header")
	}
	if binary.BigEndian.Uint32(b[0:]) != Magic {
		return nil, fmt.Errorf("media: bad magic %#x", binary.BigEndian.Uint32(b[0:]))
	}
	if v := binary.BigEndian.Uint16(b[4:]); v != Version {
		return nil, fmt.Errorf("media: unsupported version %d", v)
	}
	nTracks := int(binary.BigEndian.Uint16(b[6:]))
	pos := headerSize
	d := &Document{}
	seen := map[uint8]bool{}
	for i := 0; i < nTracks; i++ {
		if pos+trackEntrySize > len(b) {
			return nil, fmt.Errorf("media: truncated track table")
		}
		t := Track{
			ID:              b[pos],
			Kind:            TrackKind(b[pos+1]),
			RateBytesPerSec: binary.BigEndian.Uint32(b[pos+2:]),
		}
		if seen[t.ID] {
			return nil, fmt.Errorf("media: duplicate track id %d", t.ID)
		}
		seen[t.ID] = true
		switch t.Kind {
		case KindPCMAudio, KindMuLawAudio, KindVideo:
		default:
			return nil, fmt.Errorf("media: unknown track kind %d", t.Kind)
		}
		d.Tracks = append(d.Tracks, t)
		pos += trackEntrySize
	}
	for pos < len(b) {
		if pos+chunkHeaderSize > len(b) {
			return nil, fmt.Errorf("media: truncated chunk header at %d", pos)
		}
		c := Chunk{
			Track:           b[pos],
			TimestampMicros: binary.BigEndian.Uint64(b[pos+2:]),
		}
		length := int(binary.BigEndian.Uint32(b[pos+10:]))
		pos += chunkHeaderSize
		if pos+length > len(b) {
			return nil, fmt.Errorf("media: chunk payload overruns file")
		}
		if !seen[c.Track] {
			return nil, fmt.Errorf("media: chunk references unknown track %d", c.Track)
		}
		c.Data = append([]byte{}, b[pos:pos+length]...)
		pos += length
		d.Chunks = append(d.Chunks, c)
	}
	return d, nil
}
