package media

import (
	"fmt"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// trackPlayer is one presentation device: it buffers a track's bytes and
// consumes them at the track's natural rate after a prebuffer delay,
// counting underruns.
type trackPlayer struct {
	rateBytesPerSec float64
	prebuffer       sim.Time

	started bool
	playAt  sim.Time
	lastT   sim.Time
	buffer  float64
	starved bool

	glitches    uint64
	starvedTime sim.Time
	maxBuffer   int
	played      int64
}

func (p *trackPlayer) drainTo(t sim.Time) {
	if !p.started || t <= p.lastT {
		return
	}
	from := p.lastT
	if from < p.playAt {
		from = p.playAt
	}
	if t <= from {
		p.lastT = t
		return
	}
	need := p.rateBytesPerSec * (t - from).Seconds()
	if need <= p.buffer {
		p.buffer -= need
		p.played += int64(need)
		p.starved = false
	} else {
		p.played += int64(p.buffer)
		short := need - p.buffer
		p.buffer = 0
		p.starvedTime += sim.Time(short / p.rateBytesPerSec * float64(sim.Second))
		if !p.starved {
			p.glitches++
			p.starved = true
		}
	}
	p.lastT = t
}

func (p *trackPlayer) deliver(n int, t sim.Time) {
	if !p.started {
		p.started = true
		p.playAt = t + p.prebuffer
		p.lastT = t
	}
	p.drainTo(t)
	p.buffer += float64(n)
	if int(p.buffer) > p.maxBuffer {
		p.maxBuffer = int(p.buffer)
	}
}

// TrackStats is the presentation outcome of one track.
type TrackStats struct {
	Track          uint8
	Kind           TrackKind
	BytesReceived  int
	Glitches       uint64
	StarvedTime    sim.Time
	MaxBufferBytes int
}

// ClientStats aggregates the client side.
type ClientStats struct {
	Packets    uint64
	Duplicates uint64
	Lost       uint64
	BadPayload uint64
}

// Client is the presentation machine: it hangs off the Token Ring
// driver's CTMSP split point, demultiplexes tracks, reassembles chunks
// and feeds per-track playout buffers.
type Client struct {
	k         *kernel.Kernel
	recv      ctmsp.Receiver
	players   map[uint8]*trackPlayer
	received  map[uint8][]byte
	kinds     map[uint8]TrackKind
	prebuffer sim.Time
	stats     ClientStats
}

// NewClient installs the client on drv's CTMSP split point, expecting the
// given tracks. prebuffer delays each track's playback after its first
// byte arrives.
func NewClient(k *kernel.Kernel, drv *tradapter.Driver, tracks []Track, prebuffer sim.Time) (*Client, error) {
	if len(tracks) == 0 {
		return nil, fmt.Errorf("media: client needs at least one track")
	}
	c := &Client{
		k:         k,
		players:   make(map[uint8]*trackPlayer),
		received:  make(map[uint8][]byte),
		kinds:     make(map[uint8]TrackKind),
		prebuffer: prebuffer,
	}
	for _, t := range tracks {
		if t.RateBytesPerSec == 0 {
			return nil, fmt.Errorf("media: track %d has zero rate", t.ID)
		}
		c.players[t.ID] = &trackPlayer{rateBytesPerSec: float64(t.RateBytesPerSec), prebuffer: prebuffer}
		c.kinds[t.ID] = t.Kind
	}
	drv.SetHandler(tradapter.ClassCTMSP, c.handle)
	return c, nil
}

// handle runs at the receive interrupt's split point.
func (c *Client) handle(rcv *tradapter.Received) []rtpc.Seg {
	out, ok := rcv.Frame.Payload.(*tradapter.Outgoing)
	if !ok {
		c.stats.BadPayload++
		rcv.Release()
		return nil
	}
	pkt, ok := out.Chain.Tag.(ctmsp.Packet)
	if !ok {
		c.stats.BadPayload++
		rcv.Release()
		return nil
	}
	frag, ok := pkt.Payload.(fragment)
	if !ok {
		c.stats.BadPayload++
		rcv.Release()
		return nil
	}

	m := c.k.Machine
	segs := m.CopySegs("dma-to-mbuf", rcv.Size, rcv.Buffer.Kind, rtpc.SystemMemory)
	segs = append(segs, rtpc.Mark("release", rcv.Release))
	segs = append(segs, rtpc.Mark("deliver", func() {
		ev := c.recv.Accept(pkt.Header, c.k.Sched().Now())
		switch ev {
		case ctmsp.Duplicate:
			c.stats.Duplicates++
			return
		case ctmsp.Gap:
			// Loss already counted by the receiver; the fragment still
			// plays (a skip, not a stall).
		}
		c.stats.Packets++
		p := c.players[frag.Track]
		if p == nil {
			c.stats.BadPayload++
			return
		}
		c.received[frag.Track] = append(c.received[frag.Track], frag.Data...)
		p.deliver(len(frag.Data), c.k.Sched().Now())
	}))
	return segs
}

// Stats returns client-level accounting (loss from the CTMSP receiver).
func (c *Client) Stats() ClientStats {
	s := c.stats
	s.Lost = c.recv.Stats().Lost
	return s
}

// TrackBytes returns everything received for a track, in arrival order.
func (c *Client) TrackBytes(id uint8) []byte { return c.received[id] }

// Finish returns per-track stats sorted by track id. Underruns are only
// counted between deliveries: running the buffer dry after the last
// chunk is the stream ending, not a glitch.
func (c *Client) Finish(t sim.Time) []TrackStats {
	var out []TrackStats
	for id := 0; id < 256; id++ {
		p, ok := c.players[uint8(id)]
		if !ok {
			continue
		}
		// Final drain without starvation accounting.
		if p.started && t > p.lastT {
			p.played += int64(p.buffer)
			p.buffer = 0
			p.lastT = t
		}
		out = append(out, TrackStats{
			Track:          uint8(id),
			Kind:           c.kinds[uint8(id)],
			BytesReceived:  len(c.received[uint8(id)]),
			Glitches:       p.glitches,
			StarvedTime:    p.starvedTime,
			MaxBufferBytes: p.maxBuffer,
		})
	}
	return out
}
