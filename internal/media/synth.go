package media

import (
	"encoding/binary"
	"math"

	"repro/internal/dsp"
	"repro/internal/sim"
)

// Synthesizers for test and example content. Everything is deterministic
// (pure functions of their arguments) so content survives byte-exact
// comparison across the transport.

// SineSamples generates 16-bit PCM of a sine at freq Hz sampled at
// sampleHz for the given duration.
func SineSamples(freq float64, sampleHz int, duration sim.Time) []int16 {
	n := int(float64(sampleHz) * duration.Seconds())
	out := make([]int16, n)
	for i := range out {
		out[i] = int16(20000 * math.Sin(2*math.Pi*freq*float64(i)/float64(sampleHz)))
	}
	return out
}

// PCMBytes packs samples little-endian.
func PCMBytes(samples []int16) []byte {
	out := make([]byte, 2*len(samples))
	for i, s := range samples {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(s))
	}
	return out
}

// PCMSamples unpacks little-endian PCM bytes.
func PCMSamples(b []byte) []int16 {
	out := make([]int16, len(b)/2)
	for i := range out {
		out[i] = int16(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return out
}

// CDAudioTrack builds a stereo CD-quality PCM track (44.1 kHz × 16 bit ×
// 2 ch = 176 400 B/s) of a test tone, chunked every chunkDur.
func CDAudioTrack(id uint8, duration, chunkDur sim.Time) (Track, []Chunk) {
	const rate = 44100
	left := SineSamples(440, rate, duration)
	right := SineSamples(554.37, rate, duration) // a major third up
	inter := make([]int16, 0, 2*len(left))
	for i := range left {
		inter = append(inter, left[i], right[i])
	}
	t := Track{ID: id, Kind: KindPCMAudio, RateBytesPerSec: rate * 4}
	return t, chunkBytes(id, PCMBytes(inter), rate*4, chunkDur)
}

// VoiceTrack builds an 8 kHz µ-law voice track (8000 B/s) compressed by
// the DSP microprogram — the adapter-side compression of footnote 3.
func VoiceTrack(id uint8, duration, chunkDur sim.Time) (Track, []Chunk, error) {
	const rate = 8000
	pcm := SineSamples(220, rate, duration)
	mulaw, _, err := dsp.CompressMuLaw(pcm)
	if err != nil {
		return Track{}, nil, err
	}
	t := Track{ID: id, Kind: KindMuLawAudio, RateBytesPerSec: rate}
	return t, chunkBytes(id, mulaw, rate, chunkDur), nil
}

// VideoTrack builds a synthetic compressed-video track: one frame per
// tick at framesPerSec, with deterministic pseudo-compressed payloads
// whose sizes vary the way inter/intra coded frames do (a large "key
// frame" every keyInterval frames).
func VideoTrack(id uint8, framesPerSec int, averageBytesPerSec uint32, duration sim.Time, keyInterval int) (Track, []Chunk) {
	nFrames := int(float64(framesPerSec) * duration.Seconds())
	avgFrame := int(averageBytesPerSec) / framesPerSec
	// Key frames are 4× the delta-frame size; choose the delta size so
	// the long-run average equals the declared rate:
	// (4d + (k−1)d)/k = avg  ⇒  d = avg·k/(k+3).
	delta := avgFrame
	if keyInterval > 1 {
		delta = avgFrame * keyInterval / (keyInterval + 3)
	}
	var chunks []Chunk
	state := uint32(id) | 0x9E3779B9
	for f := 0; f < nFrames; f++ {
		size := delta
		if keyInterval > 0 && f%keyInterval == 0 {
			size = delta * 4
		}
		data := make([]byte, size)
		for i := range data {
			state = state*1664525 + 1013904223
			data[i] = byte(state >> 24)
		}
		ts := uint64(f) * 1_000_000 / uint64(framesPerSec)
		chunks = append(chunks, Chunk{Track: id, TimestampMicros: ts, Data: data})
	}
	return Track{ID: id, Kind: KindVideo, RateBytesPerSec: averageBytesPerSec}, chunks
}

// chunkBytes splits a byte stream into chunks of chunkDur at the track
// rate, timestamped at their presentation offsets.
func chunkBytes(id uint8, data []byte, rateBytesPerSec uint32, chunkDur sim.Time) []Chunk {
	per := int(float64(rateBytesPerSec) * chunkDur.Seconds())
	if per < 1 {
		per = 1
	}
	var chunks []Chunk
	for off := 0; off < len(data); off += per {
		end := off + per
		if end > len(data) {
			end = len(data)
		}
		ts := uint64(float64(off) / float64(rateBytesPerSec) * 1e6)
		chunks = append(chunks, Chunk{Track: id, TimestampMicros: ts, Data: data[off:end]})
	}
	return chunks
}
