package media

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/dsp"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

func TestContainerRoundTrip(t *testing.T) {
	d := &Document{
		Tracks: []Track{
			{ID: 1, Kind: KindPCMAudio, RateBytesPerSec: 176400},
			{ID: 2, Kind: KindVideo, RateBytesPerSec: 120000},
		},
		Chunks: []Chunk{
			{Track: 1, TimestampMicros: 0, Data: []byte("audio-0")},
			{Track: 2, TimestampMicros: 0, Data: []byte("frame-0")},
			{Track: 1, TimestampMicros: 12000, Data: []byte("audio-1")},
		},
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tracks) != 2 || len(got.Chunks) != 3 {
		t.Fatalf("shape: %d tracks, %d chunks", len(got.Tracks), len(got.Chunks))
	}
	if !bytes.Equal(got.TrackBytes(1), []byte("audio-0audio-1")) {
		t.Fatalf("track bytes: %q", got.TrackBytes(1))
	}
	if got.DurationMicros() != 12000 {
		t.Fatalf("duration: %d", got.DurationMicros())
	}
	if _, ok := got.TrackByID(2); !ok {
		t.Fatal("track lookup")
	}
	if _, ok := got.TrackByID(9); ok {
		t.Fatal("phantom track")
	}
}

func TestContainerRejectsCorruption(t *testing.T) {
	d := &Document{
		Tracks: []Track{{ID: 1, Kind: KindVideo, RateBytesPerSec: 1000}},
		Chunks: []Chunk{{Track: 1, Data: []byte("x")}},
	}
	enc, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(enc[:4]); err == nil {
		t.Fatal("truncated header must fail")
	}
	bad := append([]byte{}, enc...)
	bad[0] = 0
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad magic must fail")
	}
	bad = append([]byte{}, enc...)
	bad[5] = 99
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad version must fail")
	}
	if _, err := Decode(enc[:len(enc)-1]); err == nil {
		t.Fatal("truncated chunk must fail")
	}
	// Chunks for unknown tracks and duplicate tracks.
	if _, err := (&Document{
		Tracks: []Track{{ID: 1, Kind: KindVideo, RateBytesPerSec: 1}},
		Chunks: []Chunk{{Track: 7}},
	}).Encode(); err == nil {
		t.Fatal("unknown chunk track must fail at encode")
	}
	if _, err := (&Document{}).Encode(); err == nil {
		t.Fatal("trackless document must fail")
	}
}

// Property: encode/decode round-trips arbitrary documents.
func TestContainerProperty(t *testing.T) {
	f := func(payloads [][]byte, stamps []uint32) bool {
		if len(payloads) > 20 {
			payloads = payloads[:20]
		}
		d := &Document{Tracks: []Track{{ID: 3, Kind: KindMuLawAudio, RateBytesPerSec: 8000}}}
		for i, p := range payloads {
			ts := uint64(0)
			if i < len(stamps) {
				ts = uint64(stamps[i])
			}
			d.Chunks = append(d.Chunks, Chunk{Track: 3, TimestampMicros: ts, Data: p})
		}
		enc, err := d.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(got.TrackBytes(3), d.TrackBytes(3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSynthTracks(t *testing.T) {
	tr, chunks := CDAudioTrack(1, 100*sim.Millisecond, 12*sim.Millisecond)
	if tr.RateBytesPerSec != 176400 {
		t.Fatalf("CD rate: %d", tr.RateBytesPerSec)
	}
	var total int
	for _, c := range chunks {
		total += len(c.Data)
	}
	want := int(176400 * 0.1)
	if total < want-4800 || total > want+4800 {
		t.Fatalf("CD bytes: %d, want ≈%d", total, want)
	}

	vt, vc, err := VoiceTrack(2, 100*sim.Millisecond, 12*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Kind != KindMuLawAudio || vt.RateBytesPerSec != 8000 {
		t.Fatalf("voice track: %+v", vt)
	}
	// The µ-law bytes must decode back to something close to the sine.
	var all []byte
	for _, c := range vc {
		all = append(all, c.Data...)
	}
	pcm := dsp.MuLawDecodeAll(all)
	ref := SineSamples(220, 8000, 100*sim.Millisecond)
	if len(pcm) != len(ref) {
		t.Fatalf("voice length %d vs %d", len(pcm), len(ref))
	}
	for i := range ref {
		diff := int32(pcm[i]) - int32(ref[i])
		if diff < -1100 || diff > 1100 {
			t.Fatalf("voice sample %d off by %d", i, diff)
		}
	}

	kt, kc := VideoTrack(3, 25, 120_000, sim.Second, 12)
	if kt.Kind != KindVideo {
		t.Fatal("video kind")
	}
	if len(kc) != 25 {
		t.Fatalf("video frames: %d", len(kc))
	}
	if len(kc[0].Data) <= len(kc[1].Data) {
		t.Fatal("key frames should be larger than delta frames")
	}
	// Deterministic: same parameters give identical content.
	_, kc2 := VideoTrack(3, 25, 120_000, sim.Second, 12)
	if !bytes.Equal(kc[7].Data, kc2[7].Data) {
		t.Fatal("video synthesis must be deterministic")
	}
}

func TestPCMRoundTrip(t *testing.T) {
	s := SineSamples(440, 8000, 50*sim.Millisecond)
	got := PCMSamples(PCMBytes(s))
	if len(got) != len(s) {
		t.Fatal("length")
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("sample %d: %d vs %d", i, got[i], s[i])
		}
	}
}

// mediaRig wires a server machine and a client machine on a quiet ring.
type mediaRig struct {
	sched           *sim.Scheduler
	ring            *ring.Ring
	serverK         *kernel.Kernel
	clientK         *kernel.Kernel
	serverDrv       *tradapter.Driver
	clientDrv       *tradapter.Driver
	clientStationID ring.Addr
}

func newMediaRig(t *testing.T) *mediaRig {
	t.Helper()
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	mk := func(name string, kind rtpc.MemoryKind) (*kernel.Kernel, *tradapter.Driver) {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 5)
		k := kernel.New(m)
		st := r.Attach(name)
		cfg := tradapter.DefaultConfig()
		cfg.DMABufferKind = kind
		drv := tradapter.New(k, st, cfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	sk, sd := mk("server", rtpc.IOChannelMemory)
	ck, cd := mk("client", rtpc.SystemMemory)
	return &mediaRig{
		sched: sched, ring: r,
		serverK: sk, clientK: ck,
		serverDrv: sd, clientDrv: cd,
		clientStationID: cd.Station().Addr(),
	}
}

func TestServeMultimediaDocument(t *testing.T) {
	rig := newMediaRig(t)

	// A document with CD audio, compressed voice and video — the §1
	// "ideal multimedia system" mix. Total rate ≈225 KB/s, within the
	// prototype adapter's ≈290 KB/s transmit capacity for 2000-byte
	// packets (the paper's system was engineered for a 150 KB/s-class
	// stream; this is already pushing it).
	cd, cdChunks := CDAudioTrack(1, 500*sim.Millisecond, 12*sim.Millisecond)
	voice, voiceChunks, err := VoiceTrack(2, 500*sim.Millisecond, 12*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	video, videoChunks := VideoTrack(3, 25, 40_000, 500*sim.Millisecond, 10)
	doc := &Document{
		Tracks: []Track{cd, voice, video},
		Chunks: append(append(cdChunks, voiceChunks...), videoChunks...),
	}

	client, err := NewClient(rig.clientK, rig.clientDrv, doc.Tracks, 200*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(rig.serverK, rig.serverDrv, rig.clientStationID, doc, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	rig.sched.RunUntil(2 * sim.Second)

	st := srv.Stats()
	if !st.Done || st.MbufFailures != 0 {
		t.Fatalf("server: %+v", st)
	}
	cs := client.Stats()
	if cs.Lost != 0 || cs.Duplicates != 0 || cs.BadPayload != 0 {
		t.Fatalf("client: %+v", cs)
	}

	// Byte-exact delivery per track.
	for _, tr := range doc.Tracks {
		if !bytes.Equal(client.TrackBytes(tr.ID), doc.TrackBytes(tr.ID)) {
			t.Fatalf("track %d content corrupted in transit", tr.ID)
		}
	}

	// No presentation glitches: drain to just before content exhaustion.
	stats := client.Finish(rig.sched.Now())
	for _, ts := range stats {
		if ts.BytesReceived == 0 {
			t.Fatalf("track %d received nothing", ts.Track)
		}
		if ts.Glitches != 0 && ts.StarvedTime > 20*sim.Millisecond {
			t.Fatalf("track %d (%v) glitched: %+v", ts.Track, ts.Kind, ts)
		}
	}
}

func TestServerHandlesPurgeLoss(t *testing.T) {
	rig := newMediaRig(t)
	video, videoChunks := VideoTrack(1, 25, 150_000, sim.Second, 10)
	doc := &Document{Tracks: []Track{video}, Chunks: videoChunks}
	client, err := NewClient(rig.clientK, rig.clientDrv, doc.Tracks, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(rig.serverK, rig.serverDrv, rig.clientStationID, doc, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	// Purge while a media frame is on the wire.
	purged := false
	var poll func()
	poll = func() {
		if purged {
			return
		}
		if rig.ring.Current() != nil {
			purged = true
			rig.ring.Purge()
			return
		}
		rig.sched.After(200*sim.Microsecond, "poll", poll)
	}
	rig.sched.After(200*sim.Millisecond, "arm", poll)
	rig.sched.RunUntil(3 * sim.Second)
	if !purged {
		t.Fatal("never injected the purge")
	}
	cs := client.Stats()
	if cs.Lost != 1 {
		t.Fatalf("exactly one packet should be lost to the purge: %+v", cs)
	}
	// The stream continues: bytes received = sent − one packet's worth.
	if len(client.TrackBytes(1)) == 0 {
		t.Fatal("stream should survive the purge")
	}
}

func TestClientValidation(t *testing.T) {
	rig := newMediaRig(t)
	if _, err := NewClient(rig.clientK, rig.clientDrv, nil, 0); err == nil {
		t.Fatal("trackless client must fail")
	}
	if _, err := NewClient(rig.clientK, rig.clientDrv, []Track{{ID: 1}}, 0); err == nil {
		t.Fatal("zero-rate track must fail")
	}
	if _, err := NewServer(rig.serverK, rig.serverDrv, 2, &Document{}, DefaultServerConfig()); err == nil {
		t.Fatal("empty document must fail")
	}
}

// TestPoolBalancedAfterPlayback is the runtime half of the mbuflife
// analyzer's contract: after a full playback every mbuf chain either
// machine allocated has been freed — no send, receive, retransmit or
// error path strands a buffer.
func TestPoolBalancedAfterPlayback(t *testing.T) {
	rig := newMediaRig(t)
	video, videoChunks := VideoTrack(1, 25, 40_000, 500*sim.Millisecond, 10)
	doc := &Document{Tracks: []Track{video}, Chunks: videoChunks}
	client, err := NewClient(rig.clientK, rig.clientDrv, doc.Tracks, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(rig.serverK, rig.serverDrv, rig.clientStationID, doc, DefaultServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	rig.sched.RunUntil(2 * sim.Second)
	if st := srv.Stats(); !st.Done || st.MbufFailures != 0 {
		t.Fatalf("playback did not complete cleanly: %+v", st)
	}
	if len(client.TrackBytes(1)) == 0 {
		t.Fatal("client received nothing")
	}

	ss := rig.serverK.Pool.Stats()
	if ss.Allocs == 0 {
		t.Fatal("server sent a document without touching the mbuf pool")
	}
	for name, k := range map[string]*kernel.Kernel{"server": rig.serverK, "client": rig.clientK} {
		ps := k.Pool.Stats()
		if ps.Allocs != ps.Frees {
			t.Errorf("%s pool unbalanced: %d allocs vs %d frees", name, ps.Allocs, ps.Frees)
		}
		if ps.SmallInUse != 0 || ps.ClustersInUse != 0 {
			t.Errorf("%s pool still holds buffers: %+v", name, ps)
		}
	}
}
