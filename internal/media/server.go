package media

import (
	"fmt"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// fragment is the unit that crosses the network: part of one chunk.
type fragment struct {
	Track           uint8
	TimestampMicros uint64
	Data            []byte
	Last            bool // last fragment of the chunk
}

// ServerConfig tunes the file server's pacing.
type ServerConfig struct {
	// MaxPacketData bounds CTMSP payload per packet (the prototype used
	// 2000-byte packets; leave room for the CTMSP header).
	MaxPacketData int
	// Lead is how far ahead of presentation time the server pushes each
	// chunk; it becomes the client's prebuffer headroom.
	Lead sim.Time
}

// DefaultServerConfig returns the prototype-like settings.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		MaxPacketData: 2000 - ctmsp.HeaderSize,
		Lead:          150 * sim.Millisecond,
	}
}

// ServerStats aggregates server accounting.
type ServerStats struct {
	ChunksSent   uint64
	PacketsSent  uint64
	BytesSent    uint64
	MbufFailures uint64
	Done         bool
}

// Server is the CTMS file server: it holds a document (as AFS would hold
// the file) and pushes each chunk onto the ring at its presentation time
// minus the lead, over a CTMSP connection, directly from the kernel —
// no user-level relay.
type Server struct {
	k     *kernel.Kernel
	conn  *ctmsp.Conn
	cfg   ServerConfig
	doc   *Document
	stats ServerStats
	// OnDone fires when the last chunk has been handed to the driver.
	OnDone func()
}

// NewServer dials the client's station and prepares the document.
func NewServer(k *kernel.Kernel, drv *tradapter.Driver, client ring.Addr, doc *Document, cfg ServerConfig) (*Server, error) {
	if cfg.MaxPacketData <= 0 {
		cfg = DefaultServerConfig()
	}
	if len(doc.Tracks) == 0 {
		return nil, fmt.Errorf("media: empty document")
	}
	conn, err := ctmsp.Dial(k, drv, client, 0)
	if err != nil {
		return nil, err
	}
	return &Server{k: k, conn: conn, cfg: cfg, doc: doc}, nil
}

// Stats returns a snapshot of server accounting.
func (s *Server) Stats() ServerStats { return s.stats }

// Start schedules the whole document. Chunks are sent at
// timestamp − lead (clamped to now); fragments of one chunk go
// back-to-back and rely on CTMSP's sequenced delivery.
func (s *Server) Start() {
	chunks := s.doc.SortedChunks()
	remaining := len(chunks)
	for _, c := range chunks {
		c := c
		at := sim.Time(c.TimestampMicros) * sim.Microsecond
		if at > s.cfg.Lead {
			at -= s.cfg.Lead
		} else {
			at = 0
		}
		s.k.Sched().At(s.k.Sched().Now()+at, "media.send-chunk", func() {
			s.sendChunk(c)
			remaining--
			if remaining == 0 {
				s.stats.Done = true
				if s.OnDone != nil {
					s.OnDone()
				}
			}
		})
	}
}

func (s *Server) sendChunk(c Chunk) {
	s.stats.ChunksSent++
	data := c.Data
	for off := 0; off < len(data) || off == 0; off += s.cfg.MaxPacketData {
		end := off + s.cfg.MaxPacketData
		if end > len(data) {
			end = len(data)
		}
		frag := fragment{
			Track:           c.Track,
			TimestampMicros: c.TimestampMicros,
			Data:            data[off:end],
			Last:            end == len(data),
		}
		n := len(frag.Data)
		if n == 0 {
			n = 1
		}
		pkt := s.conn.BuildDataPacket(frag, n, nil, nil)
		if pkt == nil {
			s.stats.MbufFailures++
			return
		}
		chain := pkt.Chain
		pkt.Done = func(ring.DeliveryStatus) { s.k.Pool.Free(chain) }
		s.stats.PacketsSent++
		s.stats.BytesSent += uint64(len(frag.Data))
		s.output(pkt)
		if end == len(data) {
			break
		}
	}
}

// output hands the packet to the Token Ring driver via the same
// driver-to-driver handle the VCA uses.
func (s *Server) output(p *tradapter.Outgoing) {
	h, err := s.k.Ioctl("tr0", "get-output-handle", nil)
	if err != nil {
		s.stats.MbufFailures++
		s.k.Pool.Free(p.Chain)
		return
	}
	h.(func(*tradapter.Outgoing))(p)
}
