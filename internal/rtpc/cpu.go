package rtpc

import (
	"fmt"

	"repro/internal/sim"
)

// NumLevels is the number of interrupt priority levels. Level 0 is base
// (user and ordinary kernel) level; higher levels preempt lower ones at
// segment boundaries.
const NumLevels = 8

// Seg is one uninterruptible stretch of code: the CPU cannot be preempted
// inside a segment, only between segments. The longest segment in the
// system therefore bounds worst-case interrupt dispatch latency — exactly
// the paper's "execution of protected code segments" jitter source.
//
// Fn runs when the segment's cost has elapsed. It may return further
// segments, which are executed (in order) before the task's remaining
// segments; this lets handlers make data-dependent decisions.
type Seg struct {
	Name string
	Cost sim.Time
	Fn   func() []Seg
}

// Do builds a segment with just a cost.
func Do(name string, cost sim.Time) Seg { return Seg{Name: name, Cost: cost} }

// Then builds a segment with a cost and a completion action.
func Then(name string, cost sim.Time, fn func()) Seg {
	return Seg{Name: name, Cost: cost, Fn: func() []Seg { fn(); return nil }}
}

// Mark builds a zero-cost probe segment; fn observes the instant between
// two segments (used for the paper's measurement points).
func Mark(name string, fn func()) Seg {
	return Seg{Name: name, Fn: func() []Seg { fn(); return nil }}
}

// Task is a unit of schedulable work at an interrupt level. Tasks are
// recycled through a per-CPU free list: the pointer is owned by the CPU
// from Submit until the last segment completes, and callers never see it.
type task struct {
	level     int
	name      string
	label     string // cached "<cpu>.<name>", the dispatch event label
	segs      []Seg
	next      int // index of the next segment to run; segs is never re-sliced
	onDone    func()
	submitted sim.Time
	started   bool
}

// taskq is a FIFO of pending tasks at one interrupt level. Pop advances a
// head index instead of re-slicing, so the backing array is reused across
// the run instead of reallocated once per task; it compacts only when the
// dead prefix dominates.
type taskq struct {
	items []*task
	head  int
}

func (q *taskq) len() int { return len(q.items) - q.head }

//ctmsvet:hotpath
func (q *taskq) push(t *task) {
	q.items = append(q.items, t) //ctmsvet:allow hotpath queue grows to steady-state depth once, then reuses its backing array
}

//ctmsvet:hotpath
func (q *taskq) pop() *task {
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= 32 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		clear(q.items[n:])
		q.items = q.items[:n]
		q.head = 0
	}
	return t
}

// CPUStats aggregates CPU-level accounting.
type CPUStats struct {
	TasksRun        uint64
	SegsRun         uint64
	BusyTime        sim.Time
	MaxDispatchWait [NumLevels]sim.Time
	Preemptions     uint64
}

// CPU dispatches tasks at interrupt levels with segment-boundary
// preemption. It is strictly single-threaded (it models one processor).
type CPU struct {
	sched   *sim.Scheduler
	name    string
	pending [NumLevels]taskq
	stack   []*task // running task stack; top is executing
	inSeg   bool    // a segment is currently burning cycles
	mask    int     // spl: tasks at level ≤ mask cannot start
	kick    bool    // a dispatch kick event is queued

	// Dispatch runs once per task and segment ends run once per segment —
	// the busiest paths in the whole simulator — so their event labels and
	// callbacks are built once here, not per event.
	kickName string // "<cpu>.dispatch"
	kickFn   func()
	segEnd   func()            // shared end-of-segment callback
	segTask  *task             // task whose segment is in flight (inSeg)
	segFn    func() []Seg      // that segment's completion action
	labels   map[string]string // task name → "<cpu>.<name>" label cache
	free     []*task           // recycled task objects

	sysDMAActive int // DMA engines currently targeting system memory
	interference float64

	stats CPUStats
}

// maxFreeTasks caps the task free list; the steady state needs only as
// many tasks as can be simultaneously pending plus stacked.
const maxFreeTasks = 256

// NewCPU creates a CPU driven by sched. interference is the fractional
// slowdown applied to segment execution per active system-memory DMA.
func NewCPU(sched *sim.Scheduler, name string, interference float64) *CPU {
	c := &CPU{
		sched:        sched,
		name:         name,
		interference: interference,
		mask:         -1,
		kickName:     name + ".dispatch",
		labels:       make(map[string]string),
		free:         make([]*task, 0, maxFreeTasks),
	}
	c.kickFn = func() {
		c.kick = false
		c.dispatch()
	}
	// One segment is in flight at a time (inSeg gates dispatch and
	// preemption happens only at segment boundaries), so a single shared
	// callback reading segTask/segFn replaces a fresh closure per segment.
	c.segEnd = func() {
		c.inSeg = false
		t, fn := c.segTask, c.segFn
		c.segTask, c.segFn = nil, nil
		if fn != nil {
			if more := fn(); len(more) > 0 {
				if t.next >= len(t.segs) {
					// Common case: the finished segment was the last one;
					// adopt the returned slice outright.
					t.segs, t.next = more, 0
				} else {
					rest := t.segs[t.next:]
					ns := make([]Seg, 0, len(more)+len(rest))
					ns = append(ns, more...)
					ns = append(ns, rest...)
					t.segs, t.next = ns, 0
				}
			}
		}
		c.dispatch()
	}
	return c
}

// allocTask reuses a recycled task when one is available; the steady
// state runs entirely off the free list.
//
//ctmsvet:hotpath
func (c *CPU) allocTask() *task {
	if n := len(c.free); n > 0 {
		t := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return t
	}
	return &task{} //ctmsvet:allow hotpath cold refill path, runs only until the free list reaches steady state
}

// recycleTask drops a completed task's references and returns it to the
// free list.
//
//ctmsvet:hotpath
func (c *CPU) recycleTask(t *task) {
	t.segs, t.onDone = nil, nil
	t.next = 0
	t.name, t.label = "", ""
	if len(c.free) < maxFreeTasks {
		c.free = append(c.free, t) //ctmsvet:allow hotpath free list capacity is preallocated at maxFreeTasks and the len guard keeps it there
	}
}

// label caches the per-task dispatch label so the hot paths concatenate
// once per distinct task name, not once per submission.
//
//ctmsvet:hotpath
func (c *CPU) label(name string) string {
	if l, ok := c.labels[name]; ok {
		return l
	}
	l := c.name + "." + name //ctmsvet:allow hotpath cold miss path, runs once per distinct task name
	c.labels[name] = l
	return l
}

// Now reports simulated time.
func (c *CPU) Now() sim.Time { return c.sched.Now() }

// Scheduler exposes the driving scheduler.
func (c *CPU) Scheduler() *sim.Scheduler { return c.sched }

// Stats returns a snapshot of CPU accounting.
func (c *CPU) Stats() CPUStats { return c.stats }

// Utilization reports the busy fraction of elapsed time.
func (c *CPU) Utilization() float64 {
	now := c.sched.Now()
	if now == 0 {
		return 0
	}
	return float64(c.stats.BusyTime) / float64(now)
}

// Spl raises (or lowers) the interrupt mask and returns the previous
// value; tasks at level ≤ mask will not be dispatched. Call from inside a
// Seg.Fn, and restore with SplX, mirroring splimp()/splx().
func (c *CPU) Spl(level int) int {
	old := c.mask
	c.mask = level
	return old
}

// SplX restores a mask saved by Spl.
func (c *CPU) SplX(old int) {
	c.mask = old
	c.requestKick()
}

// Mask reports the current spl level (-1 means no masking).
func (c *CPU) Mask() int { return c.mask }

// Submit queues a task at the given interrupt level. onDone (may be nil)
// fires when the task's last segment completes. Dispatch happens at the
// next segment boundary; a higher-level task preempts a lower-level one
// there.
//
//ctmsvet:hotpath
func (c *CPU) Submit(level int, name string, segs []Seg, onDone func()) {
	if level < 0 || level >= NumLevels {
		sim.Checkf(false, "task %q level %d out of range", name, level)
	}
	t := c.allocTask()
	t.level, t.name, t.label = level, name, c.label(name)
	t.segs, t.next = segs, 0
	t.onDone = onDone
	t.submitted = c.sched.Now()
	t.started = false
	c.pending[level].push(t)
	c.requestKick()
}

// Busy reports whether a segment is executing right now.
func (c *CPU) Busy() bool { return c.inSeg }

// Running reports the name of the executing task, or "".
func (c *CPU) Running() string {
	if len(c.stack) == 0 {
		return ""
	}
	return c.stack[len(c.stack)-1].name
}

// QueueDepth reports pending tasks at a level.
func (c *CPU) QueueDepth(level int) int { return c.pending[level].len() }

// requestKick schedules a dispatch pass. Using a zero-delay event keeps
// Submit safe to call from inside segment callbacks without re-entering
// the dispatcher. The event label and callback are the prebuilt
// kickName/kickFn — this runs once per task and must not allocate.
//
//ctmsvet:hotpath
func (c *CPU) requestKick() {
	if c.kick {
		return
	}
	c.kick = true
	c.sched.After(0, c.kickName, c.kickFn)
}

// bestPending reports the highest pending level above the spl mask, or -1.
//
//ctmsvet:hotpath
func (c *CPU) bestPending() int {
	for l := NumLevels - 1; l >= 0; l-- {
		if l <= c.mask {
			break
		}
		if c.pending[l].len() > 0 {
			return l
		}
	}
	return -1
}

// dispatch picks what runs next. Called only between segments.
func (c *CPU) dispatch() {
	if c.inSeg {
		return // decision happens when the segment ends
	}
	cur := c.top()
	best := c.bestPending()

	switch {
	case cur == nil && best < 0:
		return // idle, nothing to do
	case cur == nil || best > cur.level:
		// Start (or preempt into) the highest pending task.
		t := c.pending[best].pop()
		if cur != nil {
			c.stats.Preemptions++
		}
		c.stack = append(c.stack, t)
		wait := c.sched.Now() - t.submitted
		if wait > c.stats.MaxDispatchWait[t.level] {
			c.stats.MaxDispatchWait[t.level] = wait
		}
		c.stats.TasksRun++
		t.started = true
		c.runSeg()
	default:
		// Continue the current task.
		c.runSeg()
	}
}

func (c *CPU) top() *task {
	if len(c.stack) == 0 {
		return nil
	}
	return c.stack[len(c.stack)-1]
}

// runSeg executes the current task's next segment. Per-segment work is
// the simulator's innermost loop: the end-of-segment event reuses the
// shared segEnd callback and the task's cached label, so a segment costs
// one (recycled) scheduler event and nothing else.
//
//ctmsvet:hotpath
func (c *CPU) runSeg() {
	t := c.top()
	if t == nil {
		return
	}
	if t.next >= len(t.segs) {
		// Task complete.
		c.stack = c.stack[:len(c.stack)-1]
		done := t.onDone
		c.recycleTask(t)
		if done != nil {
			done()
		}
		c.requestKick()
		return
	}
	seg := &t.segs[t.next]
	t.next++

	dur := seg.Cost
	if c.sysDMAActive > 0 && c.interference > 0 {
		dur = sim.Scale(dur, 1+c.interference*float64(c.sysDMAActive))
	}
	c.inSeg = true
	c.stats.SegsRun++
	c.stats.BusyTime += dur
	c.segTask = t
	c.segFn = seg.Fn
	c.sched.After(dur, t.label, c.segEnd)
}

// dmaStarted/dmaEnded are called by DMA engines to register cycle steal.
func (c *CPU) dmaStarted(target MemoryKind) {
	if target == SystemMemory {
		c.sysDMAActive++
	}
}

func (c *CPU) dmaEnded(target MemoryKind) {
	if target == SystemMemory {
		c.sysDMAActive--
		sim.Checkf(c.sysDMAActive >= 0, "DMA bookkeeping underflow")
	}
}

// String summarizes the CPU state.
func (c *CPU) String() string {
	return fmt.Sprintf("cpu{%s running=%q depth=%d mask=%d util=%.1f%%}",
		c.name, c.Running(), len(c.stack), c.mask, 100*c.Utilization())
}
