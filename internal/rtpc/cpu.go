package rtpc

import (
	"fmt"

	"repro/internal/sim"
)

// NumLevels is the number of interrupt priority levels. Level 0 is base
// (user and ordinary kernel) level; higher levels preempt lower ones at
// segment boundaries.
const NumLevels = 8

// Seg is one uninterruptible stretch of code: the CPU cannot be preempted
// inside a segment, only between segments. The longest segment in the
// system therefore bounds worst-case interrupt dispatch latency — exactly
// the paper's "execution of protected code segments" jitter source.
//
// Fn runs when the segment's cost has elapsed. It may return further
// segments, which are executed (in order) before the task's remaining
// segments; this lets handlers make data-dependent decisions.
type Seg struct {
	Name string
	Cost sim.Time
	Fn   func() []Seg
}

// Do builds a segment with just a cost.
func Do(name string, cost sim.Time) Seg { return Seg{Name: name, Cost: cost} }

// Then builds a segment with a cost and a completion action.
func Then(name string, cost sim.Time, fn func()) Seg {
	return Seg{Name: name, Cost: cost, Fn: func() []Seg { fn(); return nil }}
}

// Mark builds a zero-cost probe segment; fn observes the instant between
// two segments (used for the paper's measurement points).
func Mark(name string, fn func()) Seg {
	return Seg{Name: name, Fn: func() []Seg { fn(); return nil }}
}

// Task is a unit of schedulable work at an interrupt level.
type task struct {
	level     int
	name      string
	segs      []Seg
	onDone    func()
	submitted sim.Time
	started   bool
}

// CPUStats aggregates CPU-level accounting.
type CPUStats struct {
	TasksRun        uint64
	SegsRun         uint64
	BusyTime        sim.Time
	MaxDispatchWait [NumLevels]sim.Time
	Preemptions     uint64
}

// CPU dispatches tasks at interrupt levels with segment-boundary
// preemption. It is strictly single-threaded (it models one processor).
type CPU struct {
	sched   *sim.Scheduler
	name    string
	pending [NumLevels][]*task
	stack   []*task // running task stack; top is executing
	inSeg   bool    // a segment is currently burning cycles
	mask    int     // spl: tasks at level ≤ mask cannot start
	kick    bool    // a dispatch kick event is queued

	sysDMAActive int // DMA engines currently targeting system memory
	interference float64

	stats CPUStats
}

// NewCPU creates a CPU driven by sched. interference is the fractional
// slowdown applied to segment execution per active system-memory DMA.
func NewCPU(sched *sim.Scheduler, name string, interference float64) *CPU {
	return &CPU{sched: sched, name: name, interference: interference, mask: -1}
}

// Now reports simulated time.
func (c *CPU) Now() sim.Time { return c.sched.Now() }

// Scheduler exposes the driving scheduler.
func (c *CPU) Scheduler() *sim.Scheduler { return c.sched }

// Stats returns a snapshot of CPU accounting.
func (c *CPU) Stats() CPUStats { return c.stats }

// Utilization reports the busy fraction of elapsed time.
func (c *CPU) Utilization() float64 {
	now := c.sched.Now()
	if now == 0 {
		return 0
	}
	return float64(c.stats.BusyTime) / float64(now)
}

// Spl raises (or lowers) the interrupt mask and returns the previous
// value; tasks at level ≤ mask will not be dispatched. Call from inside a
// Seg.Fn, and restore with SplX, mirroring splimp()/splx().
func (c *CPU) Spl(level int) int {
	old := c.mask
	c.mask = level
	return old
}

// SplX restores a mask saved by Spl.
func (c *CPU) SplX(old int) {
	c.mask = old
	c.requestKick()
}

// Mask reports the current spl level (-1 means no masking).
func (c *CPU) Mask() int { return c.mask }

// Submit queues a task at the given interrupt level. onDone (may be nil)
// fires when the task's last segment completes. Dispatch happens at the
// next segment boundary; a higher-level task preempts a lower-level one
// there.
func (c *CPU) Submit(level int, name string, segs []Seg, onDone func()) {
	sim.Checkf(level >= 0 && level < NumLevels, "task %q level %d out of range", name, level)
	t := &task{level: level, name: name, segs: segs, onDone: onDone, submitted: c.sched.Now()}
	c.pending[level] = append(c.pending[level], t)
	c.requestKick()
}

// Busy reports whether a segment is executing right now.
func (c *CPU) Busy() bool { return c.inSeg }

// Running reports the name of the executing task, or "".
func (c *CPU) Running() string {
	if len(c.stack) == 0 {
		return ""
	}
	return c.stack[len(c.stack)-1].name
}

// QueueDepth reports pending tasks at a level.
func (c *CPU) QueueDepth(level int) int { return len(c.pending[level]) }

// requestKick schedules a dispatch pass. Using a zero-delay event keeps
// Submit safe to call from inside segment callbacks without re-entering
// the dispatcher.
func (c *CPU) requestKick() {
	if c.kick {
		return
	}
	c.kick = true
	c.sched.After(0, c.name+".dispatch", func() {
		c.kick = false
		c.dispatch()
	})
}

// bestPending reports the highest pending level above the spl mask, or -1.
func (c *CPU) bestPending() int {
	for l := NumLevels - 1; l >= 0; l-- {
		if l <= c.mask {
			break
		}
		if len(c.pending[l]) > 0 {
			return l
		}
	}
	return -1
}

// dispatch picks what runs next. Called only between segments.
func (c *CPU) dispatch() {
	if c.inSeg {
		return // decision happens when the segment ends
	}
	cur := c.top()
	best := c.bestPending()

	switch {
	case cur == nil && best < 0:
		return // idle, nothing to do
	case cur == nil || best > cur.level:
		// Start (or preempt into) the highest pending task.
		t := c.pending[best][0]
		c.pending[best] = c.pending[best][1:]
		if cur != nil {
			c.stats.Preemptions++
		}
		c.stack = append(c.stack, t)
		wait := c.sched.Now() - t.submitted
		if wait > c.stats.MaxDispatchWait[t.level] {
			c.stats.MaxDispatchWait[t.level] = wait
		}
		c.stats.TasksRun++
		t.started = true
		c.runSeg()
	default:
		// Continue the current task.
		c.runSeg()
	}
}

func (c *CPU) top() *task {
	if len(c.stack) == 0 {
		return nil
	}
	return c.stack[len(c.stack)-1]
}

// runSeg executes the current task's next segment.
func (c *CPU) runSeg() {
	t := c.top()
	if t == nil {
		return
	}
	if len(t.segs) == 0 {
		// Task complete.
		c.stack = c.stack[:len(c.stack)-1]
		if t.onDone != nil {
			t.onDone()
		}
		c.requestKick()
		return
	}
	seg := t.segs[0]
	t.segs = t.segs[1:]

	dur := seg.Cost
	if c.sysDMAActive > 0 && c.interference > 0 {
		dur = sim.Scale(dur, 1+c.interference*float64(c.sysDMAActive))
	}
	c.inSeg = true
	c.stats.SegsRun++
	c.stats.BusyTime += dur
	c.sched.After(dur, c.name+"."+t.name+"/"+seg.Name, func() {
		c.inSeg = false
		if seg.Fn != nil {
			more := seg.Fn()
			if len(more) > 0 {
				t.segs = append(append([]Seg{}, more...), t.segs...)
			}
		}
		c.dispatch()
	})
}

// dmaStarted/dmaEnded are called by DMA engines to register cycle steal.
func (c *CPU) dmaStarted(target MemoryKind) {
	if target == SystemMemory {
		c.sysDMAActive++
	}
}

func (c *CPU) dmaEnded(target MemoryKind) {
	if target == SystemMemory {
		c.sysDMAActive--
		sim.Checkf(c.sysDMAActive >= 0, "DMA bookkeeping underflow")
	}
}

// String summarizes the CPU state.
func (c *CPU) String() string {
	return fmt.Sprintf("cpu{%s running=%q depth=%d mask=%d util=%.1f%%}",
		c.name, c.Running(), len(c.stack), c.mask, 100*c.Utilization())
}
