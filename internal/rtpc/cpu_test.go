package rtpc

import (
	"testing"

	"repro/internal/sim"
)

func newCPU() (*sim.Scheduler, *CPU) {
	sched := sim.NewScheduler()
	return sched, NewCPU(sched, "cpu", 0.3)
}

func TestTaskRunsSegmentsInOrder(t *testing.T) {
	sched, cpu := newCPU()
	var order []string
	var doneAt sim.Time
	cpu.Submit(1, "task", []Seg{
		Then("a", 10*sim.Microsecond, func() { order = append(order, "a") }),
		Then("b", 20*sim.Microsecond, func() { order = append(order, "b") }),
	}, func() { doneAt = sched.Now() })
	sched.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("segment order wrong: %v", order)
	}
	if doneAt != 30*sim.Microsecond {
		t.Fatalf("task should finish at 30µs, got %v", doneAt)
	}
}

func TestHigherLevelPreemptsAtSegmentBoundary(t *testing.T) {
	sched, cpu := newCPU()
	var order []string
	// A long low-level task of two 100µs segments.
	cpu.Submit(1, "low", []Seg{
		Then("s1", 100*sim.Microsecond, func() { order = append(order, "low1") }),
		Then("s2", 100*sim.Microsecond, func() { order = append(order, "low2") }),
	}, nil)
	// A high-level interrupt arrives mid-first-segment.
	sched.After(50*sim.Microsecond, "irq", func() {
		cpu.Submit(6, "irq", []Seg{
			Then("h", 10*sim.Microsecond, func() { order = append(order, "irq") }),
		}, nil)
	})
	sched.Run()
	want := []string{"low1", "irq", "low2"}
	if len(order) != 3 {
		t.Fatalf("want 3 events, got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("preemption order wrong: got %v want %v", order, want)
		}
	}
}

func TestInterruptLatencyBoundedBySegmentLength(t *testing.T) {
	sched, cpu := newCPU()
	// Background task with 400µs protected segments, like the kernel's
	// protected code paths.
	for i := 0; i < 10; i++ {
		cpu.Submit(0, "bg", []Seg{Do("crit", 400*sim.Microsecond)}, nil)
	}
	var entry sim.Time
	sched.After(100*sim.Microsecond, "irq", func() {
		cpu.Submit(6, "irq", []Seg{Mark("entry", func() { entry = sched.Now() })}, nil)
	})
	sched.Run()
	latency := entry - 100*sim.Microsecond
	if latency <= 0 || latency > 400*sim.Microsecond {
		t.Fatalf("interrupt latency %v should be bounded by the 400µs segment", latency)
	}
}

func TestEqualLevelDoesNotPreempt(t *testing.T) {
	sched, cpu := newCPU()
	var order []string
	cpu.Submit(3, "first", []Seg{
		Then("a", 10*sim.Microsecond, func() { order = append(order, "f1") }),
		Then("b", 10*sim.Microsecond, func() { order = append(order, "f2") }),
	}, nil)
	sched.After(5*sim.Microsecond, "second", func() {
		cpu.Submit(3, "second", []Seg{
			Then("c", 10*sim.Microsecond, func() { order = append(order, "s") }),
		}, nil)
	})
	sched.Run()
	if order[0] != "f1" || order[1] != "f2" || order[2] != "s" {
		t.Fatalf("equal level should queue FIFO, got %v", order)
	}
}

func TestSplMasksDispatch(t *testing.T) {
	sched, cpu := newCPU()
	var order []string
	cpu.Submit(1, "kern", []Seg{
		Mark("raise", func() { cpu.Spl(6) }),
		Then("crit1", 50*sim.Microsecond, func() { order = append(order, "crit1") }),
		Then("crit2", 50*sim.Microsecond, func() { order = append(order, "crit2") }),
		Mark("lower", func() { cpu.SplX(-1) }),
		Then("tail", 10*sim.Microsecond, func() { order = append(order, "tail") }),
	}, nil)
	sched.After(20*sim.Microsecond, "irq", func() {
		cpu.Submit(5, "irq", []Seg{Mark("h", func() { order = append(order, "irq") })}, nil)
	})
	sched.Run()
	// The level-5 interrupt must wait for SplX even though segment
	// boundaries pass at 50µs and 100µs.
	want := []string{"crit1", "crit2", "irq", "tail"}
	if len(order) != 4 {
		t.Fatalf("want 4 events, got %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("spl should defer the interrupt: got %v", order)
		}
	}
}

func TestSegFnCanExtendTask(t *testing.T) {
	sched, cpu := newCPU()
	var order []string
	cpu.Submit(2, "dynamic", []Seg{
		{Name: "head", Cost: 10 * sim.Microsecond, Fn: func() []Seg {
			order = append(order, "head")
			return []Seg{Then("inserted", 5*sim.Microsecond, func() { order = append(order, "inserted") })}
		}},
		Then("tail", 5*sim.Microsecond, func() { order = append(order, "tail") }),
	}, nil)
	sched.Run()
	want := []string{"head", "inserted", "tail"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dynamic segments out of order: %v", order)
		}
	}
}

func TestDMAInterferenceSlowsCPU(t *testing.T) {
	sched, cpu := newCPU()
	cost := DefaultCostModel()
	dma := NewDMA(cpu, cost, "adapter")

	// Start a long DMA into system memory, then a CPU segment.
	dma.Transfer(5000, SystemMemory, "rx", nil)
	var doneAt sim.Time
	cpu.Submit(1, "work", []Seg{Do("compute", 1000*sim.Microsecond)}, func() { doneAt = sched.Now() })
	sched.Run()
	// 30% interference: the 1000µs segment should take 1300µs.
	if doneAt != 1300*sim.Microsecond {
		t.Fatalf("DMA into system memory should slow the CPU by 30%%: done at %v", doneAt)
	}
}

func TestIOChannelDMADoesNotSlowCPU(t *testing.T) {
	sched, cpu := newCPU()
	cost := DefaultCostModel()
	dma := NewDMA(cpu, cost, "adapter")
	dma.Transfer(5000, IOChannelMemory, "rx", nil)
	var doneAt sim.Time
	cpu.Submit(1, "work", []Seg{Do("compute", 1000*sim.Microsecond)}, func() { doneAt = sched.Now() })
	sched.Run()
	if doneAt != 1000*sim.Microsecond {
		t.Fatalf("IO Channel Memory DMA must not steal CPU cycles: done at %v", doneAt)
	}
}

func TestDMASerializesTransfers(t *testing.T) {
	sched, cpu := newCPU()
	cost := DefaultCostModel()
	dma := NewDMA(cpu, cost, "adapter")
	var ends []sim.Time
	dma.Transfer(1000, IOChannelMemory, "a", func() { ends = append(ends, sched.Now()) })
	dma.Transfer(1000, IOChannelMemory, "b", func() { ends = append(ends, sched.Now()) })
	sched.Run()
	per := cost.DMACost(1000, IOChannelMemory)
	if per <= cost.DMACost(1000, SystemMemory) {
		t.Fatal("IO Channel Bus DMA should be slower than system-memory DMA")
	}
	if len(ends) != 2 || ends[0] != per || ends[1] != 2*per {
		t.Fatalf("transfers should serialize: %v (per=%v)", ends, per)
	}
	if dma.Transfers() != 2 || dma.Bytes() != 2000 {
		t.Fatal("DMA accounting wrong")
	}
}

func TestCopyCostModel(t *testing.T) {
	c := DefaultCostModel()
	if got := c.CopyCost(2000, SystemMemory, IOChannelMemory); got != 2*sim.Millisecond {
		t.Fatalf("2000-byte copy into IO Channel Memory must cost 2000µs (the paper's 1µs/byte), got %v", got)
	}
	if c.CopyCost(100, SystemMemory, SystemMemory) >= c.CopyCost(100, SystemMemory, IOChannelMemory) {
		t.Fatal("system-to-system copies should be cheaper than crossing the IOCC")
	}
	if c.CopyCost(100, DeviceMemory, SystemMemory) <= c.CopyCost(100, SystemMemory, IOChannelMemory) {
		t.Fatal("byte-wide device IO should be the slowest path")
	}
}

func TestBufferLifecycle(t *testing.T) {
	b := NewBuffer("txdma", IOChannelMemory, 4096)
	if b.InUse() {
		t.Fatal("fresh buffer should be free")
	}
	b.Fill(2000, "pkt")
	if !b.InUse() || b.Used() != 2000 || b.Content() != "pkt" {
		t.Fatal("fill not recorded")
	}
	b.Clear()
	if b.InUse() {
		t.Fatal("clear should free the buffer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("overrun must panic")
		}
	}()
	b.Fill(5000, nil)
}

func TestDispatchWaitAccounting(t *testing.T) {
	sched, cpu := newCPU()
	cpu.Submit(0, "bg", []Seg{Do("long", 300*sim.Microsecond)}, nil)
	sched.After(10*sim.Microsecond, "irq", func() {
		cpu.Submit(4, "irq", []Seg{Do("h", sim.Microsecond)}, nil)
	})
	sched.Run()
	if w := cpu.Stats().MaxDispatchWait[4]; w < 200*sim.Microsecond {
		t.Fatalf("dispatch wait should reflect blocking, got %v", w)
	}
	if cpu.Stats().TasksRun != 2 {
		t.Fatalf("want 2 tasks run, got %d", cpu.Stats().TasksRun)
	}
}

func TestMachineHelpers(t *testing.T) {
	sched := sim.NewScheduler()
	m := NewMachine(sched, "tx", DefaultCostModel(), 42)
	seg := m.CopySeg("copy", 1000, SystemMemory, IOChannelMemory)
	if seg.Cost != sim.Millisecond {
		t.Fatalf("CopySeg cost wrong: %v", seg.Cost)
	}
	for i := 0; i < 100; i++ {
		j := m.Jitter(50 * sim.Microsecond)
		if j < 0 || j > 50*sim.Microsecond {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
	// Two machines with the same seed but different names draw different
	// jitter streams.
	m2 := NewMachine(sched, "rx", DefaultCostModel(), 42)
	same := true
	for i := 0; i < 16; i++ {
		if m.Jitter(sim.Millisecond) != m2.Jitter(sim.Millisecond) {
			same = false
		}
	}
	if same {
		t.Fatal("machines should have independent jitter streams")
	}
}

func TestNestedPreemptionStack(t *testing.T) {
	sched, cpu := newCPU()
	var order []string
	cpu.Submit(1, "l1", []Seg{
		Then("a", 100*sim.Microsecond, func() { order = append(order, "l1a") }),
		Then("b", 100*sim.Microsecond, func() { order = append(order, "l1b") }),
	}, nil)
	sched.After(50*sim.Microsecond, "mid", func() {
		cpu.Submit(3, "l3", []Seg{
			Then("a", 100*sim.Microsecond, func() { order = append(order, "l3a") }),
			Then("b", 100*sim.Microsecond, func() { order = append(order, "l3b") }),
		}, nil)
	})
	sched.After(120*sim.Microsecond, "high", func() {
		cpu.Submit(6, "l6", []Seg{
			Then("a", 10*sim.Microsecond, func() { order = append(order, "l6") }),
		}, nil)
	})
	sched.Run()
	want := []string{"l1a", "l3a", "l6", "l3b", "l1b"}
	if len(order) != len(want) {
		t.Fatalf("got %v want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("nested preemption wrong: got %v want %v", order, want)
		}
	}
	if cpu.Stats().Preemptions < 2 {
		t.Fatalf("preemption accounting: %+v", cpu.Stats())
	}
}
