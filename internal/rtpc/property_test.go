package rtpc

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: under any mix of task levels and durations, (1) the CPU's
// total busy time equals the sum of all segment costs (no work lost or
// duplicated), and (2) tasks at one level finish in FIFO order.
func TestCPUConservationAndFIFOProperty(t *testing.T) {
	f := func(specs []struct {
		Level uint8
		Cost  uint16
		Delay uint16
	}) bool {
		if len(specs) > 40 {
			specs = specs[:40]
		}
		sched := sim.NewScheduler()
		cpu := NewCPU(sched, "p", 0)
		var wantBusy sim.Time
		finishOrder := map[int][]int{}
		for i, s := range specs {
			i := i
			level := int(s.Level) % NumLevels
			cost := sim.Time(s.Cost) * sim.Microsecond
			wantBusy += cost
			delay := sim.Time(s.Delay) * sim.Microsecond
			sched.At(delay, "submit", func() {
				cpu.Submit(level, "t", []Seg{Do("c", cost)}, func() {
					finishOrder[level] = append(finishOrder[level], i)
				})
			})
		}
		sched.Run()
		if cpu.Stats().BusyTime != wantBusy {
			return false
		}
		// FIFO within a level only holds for tasks submitted at distinct
		// times in index order; we submitted at arbitrary delays, so
		// check the weaker invariant: every task ran exactly once.
		ran := 0
		for _, v := range finishOrder {
			ran += len(v)
		}
		return ran == len(specs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: spl raise/restore pairs never deadlock the CPU and always
// let every task complete.
func TestSplNestingProperty(t *testing.T) {
	f := func(levels []uint8) bool {
		if len(levels) > 16 {
			levels = levels[:16]
		}
		sched := sim.NewScheduler()
		cpu := NewCPU(sched, "p", 0)
		done := 0
		for i, l := range levels {
			level := int(l) % NumLevels
			mask := (int(l) / NumLevels) % NumLevels
			i := i
			sched.At(sim.Time(i)*50*sim.Microsecond, "submit", func() {
				var saved int
				cpu.Submit(level, "t", []Seg{
					Mark("raise", func() { saved = cpu.Spl(mask) }),
					Do("crit", 100*sim.Microsecond),
					Mark("lower", func() { cpu.SplX(saved) }),
				}, func() { done++ })
			})
		}
		sched.Run()
		return done == len(levels) && cpu.Mask() == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The interrupt-latency contract: no matter what lower-level work runs,
// a level-7 task is dispatched within one segment length.
func TestWorstCaseDispatchBound(t *testing.T) {
	sched := sim.NewScheduler()
	cpu := NewCPU(sched, "p", 0)
	const seg = 400 * sim.Microsecond
	// Saturate levels 0..5 with long tasks made of bounded segments.
	for l := 0; l <= 5; l++ {
		for i := 0; i < 10; i++ {
			cpu.Submit(l, "bg", []Seg{Do("a", seg), Do("b", seg), Do("c", seg)}, nil)
		}
	}
	worst := sim.Time(0)
	for i := 0; i < 20; i++ {
		at := sim.Time(i) * 3 * sim.Millisecond
		sched.At(at, "irq", func() {
			cpu.Submit(7, "irq", []Seg{Mark("e", func() {
				if d := sched.Now() - at; d > worst {
					worst = d
				}
			})}, nil)
		})
	}
	sched.Run()
	if worst > seg {
		t.Fatalf("level-7 dispatch latency %v exceeds one segment (%v)", worst, seg)
	}
	if worst == 0 {
		t.Fatal("some interrupt should have experienced latency")
	}
}
