// Package rtpc models the IBM RT/PC machine the paper's prototype ran on,
// at the granularity its latency analysis requires: a CPU that dispatches
// work at interrupt levels and can only be preempted between code segments
// (so the longest protected segment bounds interrupt latency, §5.2.2's
// 440 µs), two memory domains (main system memory on the CPU bus and IO
// Channel Memory on the IO Channel Bus, arbitrated by the IOCC), a copy
// cost model calibrated from §5.3 (1 µs/byte CPU copy into IO Channel
// Memory), and DMA engines whose transfers into system memory steal CPU
// cycles while transfers to IO Channel Memory do not (§4).
package rtpc

import (
	"fmt"

	"repro/internal/sim"
)

// MemoryKind identifies which bus a buffer lives on.
type MemoryKind uint8

const (
	// SystemMemory is main memory on the CPU's own bus.
	SystemMemory MemoryKind = iota
	// IOChannelMemory is the memory-only adapter on the IO Channel Bus.
	IOChannelMemory
	// DeviceMemory is on-card memory reached through a byte-wide
	// programmed-IO interface (the VCA's 2K×16 buffer).
	DeviceMemory
)

func (m MemoryKind) String() string {
	switch m {
	case SystemMemory:
		return "system"
	case IOChannelMemory:
		return "io-channel"
	case DeviceMemory:
		return "device"
	}
	return fmt.Sprintf("MemoryKind(%d)", uint8(m))
}

// CostModel holds the calibrated data-movement costs. All per-byte values
// are simulated time per byte.
type CostModel struct {
	// CPUCopySys is a CPU copy within system memory (mbuf shuffling,
	// copyin/copyout).
	//
	//ctmsvet:unit s/byte
	CPUCopySys sim.Time
	// CPUCopyIOCh is a CPU copy that crosses the IOCC into IO Channel
	// Memory. The paper measures this at 1 µs/byte (§5.3: 2000 bytes of a
	// CTMSP packet account for 2000 µs of the 2600 µs send path).
	//
	//ctmsvet:unit s/byte
	CPUCopyIOCh sim.Time
	// CPUCopyDevice is programmed IO over a byte-wide device interface
	// (the VCA). Slowest of all.
	//
	//ctmsvet:unit s/byte
	CPUCopyDevice sim.Time
	// CPUCopyUser is a copyin/copyout crossing the user/kernel boundary
	// (uiomove): access checks and page handling make it far slower than
	// a kernel-internal bcopy on this class of machine.
	//
	//ctmsvet:unit s/byte
	CPUCopyUser sim.Time
	// DMAPerByteSys is an adapter's DMA rate to/from a buffer in system
	// memory: the fast path through the IOCC (which steals CPU cycles).
	//
	//ctmsvet:unit s/byte
	DMAPerByteSys sim.Time
	// DMAPerByteIOCh is the DMA rate to/from IO Channel Memory: two
	// devices arbitrating for the same IO Channel Bus, much slower, but
	// invisible to the CPU. Calibrated (with DMAPerByteSys) so that a
	// 2000-byte frame's minimum transmitter-to-receiver latency is
	// ≈10.74 ms and the queued-state service time is just under the
	// 12 ms packet interval, both per §5.3.
	//
	//ctmsvet:unit s/byte
	DMAPerByteIOCh sim.Time
	// DMASysInterference is the fractional CPU slowdown while a DMA
	// engine is targeting system memory (bus arbitration against the
	// CPU). Zero when the target is IO Channel Memory — that is the whole
	// point of the paper's third modification.
	DMASysInterference float64
}

// DefaultCostModel returns the calibration described in DESIGN.md §5.
func DefaultCostModel() CostModel {
	return CostModel{
		CPUCopySys:         400 * sim.Nanosecond,
		CPUCopyIOCh:        1 * sim.Microsecond,
		CPUCopyDevice:      2 * sim.Microsecond,
		CPUCopyUser:        1400 * sim.Nanosecond,
		DMAPerByteSys:      420 * sim.Nanosecond,
		DMAPerByteIOCh:     1050 * sim.Nanosecond,
		DMASysInterference: 0.30,
	}
}

// CopyCost reports the CPU time to copy n bytes from src to dst memory.
// The slower side of the transfer dominates.
func (c CostModel) CopyCost(n int, src, dst MemoryKind) sim.Time {
	per := c.CPUCopySys
	if src == IOChannelMemory || dst == IOChannelMemory {
		per = c.CPUCopyIOCh
	}
	if src == DeviceMemory || dst == DeviceMemory {
		per = c.CPUCopyDevice
	}
	return sim.PerByte(per, n)
}

// DMACost reports the bus time for a DMA engine to move n bytes to or
// from a buffer in the given memory.
func (c CostModel) DMACost(n int, kind MemoryKind) sim.Time {
	if kind == IOChannelMemory {
		return sim.PerByte(c.DMAPerByteIOCh, n)
	}
	return sim.PerByte(c.DMAPerByteSys, n)
}

// Buffer is a named region of memory used as a fixed DMA buffer or a
// device buffer. It tracks occupancy so the model can detect overruns.
type Buffer struct {
	Name string
	Kind MemoryKind
	Size int

	used    int
	content any
}

// NewBuffer allocates a model buffer.
func NewBuffer(name string, kind MemoryKind, size int) *Buffer {
	sim.Checkf(size > 0, "buffer %q needs positive size", name)
	return &Buffer{Name: name, Kind: kind, Size: size}
}

// Fill marks n bytes of the buffer as holding content. It panics on
// overrun: a fixed DMA buffer overrun is a driver bug, not a model input.
func (b *Buffer) Fill(n int, content any) {
	sim.Checkf(n <= b.Size, "buffer %q overrun: %d > %d", b.Name, n, b.Size)
	b.used = n
	b.content = content
}

// Clear releases the buffer.
func (b *Buffer) Clear() {
	b.used = 0
	b.content = nil
}

// Used reports the occupied byte count.
func (b *Buffer) Used() int { return b.used }

// InUse reports whether the buffer currently holds content.
func (b *Buffer) InUse() bool { return b.used > 0 }

// Content returns what was stored by Fill.
func (b *Buffer) Content() any { return b.content }
