package rtpc

import "repro/internal/sim"

// DMA is one adapter's DMA engine. Transfers on the same engine are
// serialized; a transfer targeting system memory steals CPU cycles for its
// duration (registered with the machine's CPU), while a transfer targeting
// IO Channel Memory proceeds entirely on the IO Channel Bus.
type DMA struct {
	cpu     *CPU
	cost    CostModel
	name    string
	busy    bool
	queue   []dmaXfer
	started uint64
	bytes   uint64
}

type dmaXfer struct {
	n      int
	target MemoryKind
	name   string
	done   func()
}

// NewDMA creates a DMA engine attached to the machine's CPU for
// interference accounting.
func NewDMA(cpu *CPU, cost CostModel, name string) *DMA {
	return &DMA{cpu: cpu, cost: cost, name: name}
}

// Busy reports whether a transfer is in progress.
func (d *DMA) Busy() bool { return d.busy }

// Transfers reports how many transfers have started.
func (d *DMA) Transfers() uint64 { return d.started }

// Bytes reports total bytes moved.
func (d *DMA) Bytes() uint64 { return d.bytes }

// Transfer moves n bytes to/from a buffer in target memory, then calls
// done. If the engine is busy the transfer queues behind earlier ones.
func (d *DMA) Transfer(n int, target MemoryKind, name string, done func()) {
	sim.Checkf(n >= 0, "negative DMA length %d", n)
	d.queue = append(d.queue, dmaXfer{n: n, target: target, name: name, done: done})
	d.pump()
}

func (d *DMA) pump() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	x := d.queue[0]
	d.queue = d.queue[1:]
	d.busy = true
	d.started++
	d.bytes += uint64(x.n)
	d.cpu.dmaStarted(x.target)
	d.cpu.Scheduler().After(d.cost.DMACost(x.n, x.target), d.name+"."+x.name, func() {
		d.cpu.dmaEnded(x.target)
		d.busy = false
		if x.done != nil {
			x.done()
		}
		d.pump()
	})
}
