package rtpc

import "repro/internal/sim"

// Machine bundles one RT/PC: a CPU, its cost model, and a per-machine
// random stream for code-path cost jitter.
type Machine struct {
	Name string
	CPU  *CPU
	Cost CostModel

	sched *sim.Scheduler
	rng   *sim.RNG
}

// NewMachine builds a machine driven by sched. The RNG stream is derived
// from seed and the machine name, so adding a machine does not perturb
// the others.
func NewMachine(sched *sim.Scheduler, name string, cost CostModel, seed int64) *Machine {
	return &Machine{
		Name:  name,
		CPU:   NewCPU(sched, name, cost.DMASysInterference),
		Cost:  cost,
		sched: sched,
		rng:   sim.NewRNG(seed).Fork("machine/" + name),
	}
}

// Scheduler exposes the driving scheduler.
func (m *Machine) Scheduler() *sim.Scheduler { return m.sched }

// RNG exposes the machine's random stream (for code-path jitter).
func (m *Machine) RNG() *sim.RNG { return m.rng }

// NewDMA creates a DMA engine on this machine.
func (m *Machine) NewDMA(name string) *DMA {
	return NewDMA(m.CPU, m.Cost, m.Name+"."+name)
}

// CopySeg builds a CPU segment that models copying n bytes between
// memories, labelled for tracing.
func (m *Machine) CopySeg(name string, n int, src, dst MemoryKind) Seg {
	return Do(name, m.Cost.CopyCost(n, src, dst))
}

// copyChunkBytes slices large copies into segments of this many bytes.
// Copy loops are not critical sections: an interrupt can be taken between
// iterations, so a 2000-byte copy must not block dispatch for 2 ms. The
// chunk size is chosen so the longest copy segment (≈400 µs into IO
// Channel Memory) matches the paper's observed worst-case interrupt
// latency of 440 µs.
const copyChunkBytes = 400

// CopySegs builds a chunked, interruptible copy of n bytes.
func (m *Machine) CopySegs(name string, n int, src, dst MemoryKind) []Seg {
	if n <= copyChunkBytes {
		return []Seg{m.CopySeg(name, n, src, dst)}
	}
	var segs []Seg
	for n > 0 {
		c := copyChunkBytes
		if n < c {
			c = n
		}
		n -= c
		segs = append(segs, m.CopySeg(name, c, src, dst))
	}
	return segs
}

// Jitter returns a small uniformly distributed code-path cost variation in
// [0, max]. Kernel code paths are not perfectly constant-time; this is the
// fine-grained spread visible in every histogram.
func (m *Machine) Jitter(max sim.Time) sim.Time {
	return m.rng.Uniform(0, max)
}
