package core

import (
	"testing"

	"repro/internal/sim"
)

func TestCrossoverEmpty(t *testing.T) {
	if got := Crossover(nil); got != 0 {
		t.Fatalf("Crossover(nil) = %d, want 0", got)
	}
	if got := Crossover([]SweepPoint{}); got != 0 {
		t.Fatalf("Crossover(empty) = %d, want 0", got)
	}
}

func TestCrossoverNoSustainablePoint(t *testing.T) {
	points := []SweepPoint{
		{RateBytesPerSec: 16_000, Sustainable: false},
		{RateBytesPerSec: 150_000, Sustainable: false},
	}
	if got := Crossover(points); got != 0 {
		t.Fatalf("Crossover with nothing sustainable = %d, want 0", got)
	}
}

func TestCrossoverNonMonotone(t *testing.T) {
	// Sustainability need not be monotone in rate (an unlucky middle
	// point): the crossover is the highest sustainable rate, full stop.
	points := []SweepPoint{
		{RateBytesPerSec: 16_000, Sustainable: true},
		{RateBytesPerSec: 48_000, Sustainable: false},
		{RateBytesPerSec: 96_000, Sustainable: true},
		{RateBytesPerSec: 150_000, Sustainable: false},
	}
	if got := Crossover(points); got != 96_000 {
		t.Fatalf("non-monotone crossover = %d, want 96000", got)
	}
	// Order independence: shuffled input, same answer.
	shuffled := []SweepPoint{points[2], points[3], points[0], points[1]}
	if got := Crossover(shuffled); got != 96_000 {
		t.Fatalf("shuffled crossover = %d, want 96000", got)
	}
}

// TestSweepSeedIndependentStreams is the regression test for the sweep
// seeding bug: two rates at the same base seed used to run the very same
// RNG streams, so every point of a sweep replayed identical background
// traffic. Per-point derivation must give distinct seeds — and distinct
// streams — while staying reproducible.
func TestSweepSeedIndependentStreams(t *testing.T) {
	const base = 1991
	s16 := SweepSeed(base, 16_000)
	s150 := SweepSeed(base, 150_000)
	if s16 == s150 {
		t.Fatalf("rates 16k and 150k share seed %d", s16)
	}
	if s16 != SweepSeed(base, 16_000) {
		t.Fatal("SweepSeed is not a pure function of (base, rate)")
	}
	// The derived RNG streams must actually diverge, not just the seeds.
	a, b := sim.NewRNG(s16), sim.NewRNG(s150)
	same := true
	for i := 0; i < 8; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("derived RNGs produce identical streams")
	}
	// Different base seeds must move every point.
	if SweepSeed(1, 16_000) == SweepSeed(2, 16_000) {
		t.Fatal("base seed does not reach the derived seed")
	}
}

// TestSweepConfigDerivesPerPointSeed checks the wiring: the sweep's
// configs carry SweepSeed-derived seeds, with the scenario default as the
// base when no seed override is given.
func TestSweepConfigDerivesPerPointSeed(t *testing.T) {
	deflt := TestCaseB().Seed
	cfg16, err := sweepConfig(ProtocolCTMSP, 16_000, sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg150, err := sweepConfig(ProtocolCTMSP, 150_000, sim.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg16.Seed != SweepSeed(deflt, 16_000) || cfg150.Seed != SweepSeed(deflt, 150_000) {
		t.Fatalf("sweep seeds not derived from the default base: %d, %d", cfg16.Seed, cfg150.Seed)
	}
	if cfg16.Seed == cfg150.Seed {
		t.Fatal("sweep points share a seed")
	}
	over, err := sweepConfig(ProtocolCTMSP, 16_000, sim.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if over.Seed != SweepSeed(7, 16_000) {
		t.Fatalf("seed override ignored: %d", over.Seed)
	}
}

func TestRateSweepRejectsOversizedRate(t *testing.T) {
	// 400 KB/s needs packets beyond the ring MTU model; the points before
	// it still run and come back in order.
	points, err := RateSweep(ProtocolCTMSP, []int{16_000, 400_000}, 2*sim.Second, 0)
	if err == nil {
		t.Fatal("oversized rate must error")
	}
	if len(points) != 1 || points[0].RateBytesPerSec != 16_000 {
		t.Fatalf("points before the bad rate should survive: %+v", points)
	}
}
