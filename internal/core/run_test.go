package core

import (
	"strings"
	"testing"

	"repro/internal/measure"
	"repro/internal/sim"
)

// Scenario integration tests run shortened versions of the paper's
// experiments and assert the published shape with tolerant bands; the
// full 117-minute numbers live in EXPERIMENTS.md and cmd/ctmsbench.

func shortA(d sim.Time) Config {
	c := TestCaseA()
	c.Duration = d
	return c
}

func shortB(d sim.Time) Config {
	c := TestCaseB()
	c.Duration = d
	c.Insertions = false // too rare to appear in a short run
	return c
}

func TestTestCaseAShape(t *testing.T) {
	r, err := Run(shortA(90 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	// The stream must be lossless and glitch-free on a private ring.
	if r.RxStats.Lost != 0 || r.RxStats.Duplicates != 0 || r.RxStats.Reordered != 0 {
		t.Fatalf("test case A must be clean: %+v", r.RxStats)
	}
	if r.Playout.Glitches != 0 {
		t.Fatalf("no glitches expected: %+v", r.Playout)
	}

	// Figure 5-3: min ≈10740 µs, ≈98% within ±160 µs of the ≈10894 µs
	// mean, small right tail.
	h7 := r.Truth.H[measure.H7TxToRx]
	if h7.Min() < 10650 || h7.Min() > 10850 {
		t.Fatalf("H7 min %v, want ≈10740", h7.Min())
	}
	if h7.Mean() < 10800 || h7.Mean() > 10990 {
		t.Fatalf("H7 mean %v, want ≈10894", h7.Mean())
	}
	if f := h7.FractionNear(h7.Mean(), 160); f < 0.95 {
		t.Fatalf("H7 concentration %v, want ≥0.95 (paper: 0.98)", f)
	}
	if h7.Max() > 16000 {
		t.Fatalf("H7 tail too long for an unloaded ring: %v", h7.Max())
	}

	// Histogram 6 on an idle transmitter: ≈2600 µs (2000 µs copy at
	// 1 µs/byte + ≈600 µs of code), unimodal.
	h6 := r.Truth.H[measure.H6EntryToPreTransmit]
	if h6.Mean() < 2450 || h6.Mean() > 2750 {
		t.Fatalf("H6 mean %v, want ≈2600", h6.Mean())
	}
	if f := h6.FractionNear(2600, 500); f < 0.97 {
		t.Fatalf("H6 should be unimodal at 2600 in case A: %v", f)
	}

	// Histogram 1 as seen by the PC/AT tool: 12 ms ± tool error (±120 µs).
	h1 := r.Hists.H[measure.H1InterIRQ]
	if h1.Mean() < 11990 || h1.Mean() > 12010 {
		t.Fatalf("H1 mean %v, want 12000", h1.Mean())
	}
	if h1.Min() < 12000-130 || h1.Max() > 12000+130 {
		t.Fatalf("H1 spread beyond the tool's ±120 µs error: [%v, %v]", h1.Min(), h1.Max())
	}

	// Histogram 5: IRQ→handler entry bounded by ≈440 µs (§5.2.2).
	h5 := r.Truth.H[measure.H5IRQToEntry]
	if h5.Max() > 700 {
		t.Fatalf("H5 max %v, want ≤≈440-700µs", h5.Max())
	}
	if r.TxCPUUtil > 0.5 {
		t.Fatalf("CTMSP transmitter should be lightly loaded: %.2f", r.TxCPUUtil)
	}
}

func TestTestCaseBShape(t *testing.T) {
	r, err := Run(shortB(4 * sim.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if r.RxStats.Lost != 0 || r.Playout.Glitches != 0 {
		t.Fatalf("B without insertions must still be lossless: %+v %+v", r.RxStats, r.Playout)
	}

	// Figure 5-2: bimodal — most packets at ≈2600, a secondary
	// concentration at ≈9400, mass in between, short tails.
	h6 := r.Truth.H[measure.H6EntryToPreTransmit]
	near2600 := h6.FractionNear(2600, 500)
	near9400 := h6.FractionNear(9400, 500)
	between := h6.FractionWithin(3100, 8900)
	if near2600 < 0.55 || near2600 > 0.85 {
		t.Fatalf("first H6 peak %v, paper has 0.68", near2600)
	}
	if near9400 < 0.07 {
		t.Fatalf("second H6 peak %v, paper has 0.15", near9400)
	}
	if between < 0.07 {
		t.Fatalf("H6 between-mass %v, paper has 0.165", between)
	}
	peaks := h6.Peaks(0.01)
	if len(peaks) < 2 {
		t.Fatalf("Figure 5-2 must be bimodal, peaks=%v", peaks)
	}

	// Figure 5-4: ≈76% at the ≈10900 peak, ≈21.5% in 11–15 ms,
	// a small 15–40 ms tail.
	h7 := r.Truth.H[measure.H7TxToRx]
	if h7.Min() < 10650 || h7.Min() > 10900 {
		t.Fatalf("H7 min %v, want ≈10750", h7.Min())
	}
	peak := h7.FractionWithin(10650, 11060)
	mid := h7.FractionWithin(11060, 15000)
	tail := h7.FractionWithin(15000, 40050)
	if peak < 0.6 || peak > 0.9 {
		t.Fatalf("H7 peak mass %v, paper has 0.76", peak)
	}
	if mid < 0.1 || mid > 0.35 {
		t.Fatalf("H7 11–15 ms mass %v, paper has 0.215", mid)
	}
	if tail > 0.08 {
		t.Fatalf("H7 15–40 ms mass %v, paper has 0.0249", tail)
	}
}

func TestStockUnixFailsAt150KBps(t *testing.T) {
	cfg := StockUnix(150_000)
	cfg.Duration = 90 * sim.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §1: "This test of data transport failed completely."
	if r.DeliveredFraction() > 0.95 {
		t.Fatalf("stock path at 150 KB/s should lose significant data: %.3f delivered", r.DeliveredFraction())
	}
	if r.Playout.Glitches < 10 {
		t.Fatalf("stock path at 150 KB/s should glitch constantly: %d", r.Playout.Glitches)
	}
}

func TestStockUnixWorksAt16KBps(t *testing.T) {
	cfg := StockUnix(16_000)
	cfg.Duration = 90 * sim.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// §1: "This worked extremely well within the current UNIX model."
	if r.DeliveredFraction() < 0.999 {
		t.Fatalf("stock path at 16 KB/s should deliver everything: %.4f", r.DeliveredFraction())
	}
	if r.Playout.Glitches != 0 {
		t.Fatalf("stock path at 16 KB/s should not glitch: %d", r.Playout.Glitches)
	}
}

func TestCTMSPBeatsStockAt150KBps(t *testing.T) {
	// The paper's central comparison at the CTMS rate.
	ctmsp := shortB(90 * sim.Second)
	rc, err := Run(ctmsp)
	if err != nil {
		t.Fatal(err)
	}
	stock := StockUnix(150_000)
	stock.Duration = 90 * sim.Second
	rs, err := Run(stock)
	if err != nil {
		t.Fatal(err)
	}
	if rc.DeliveredFraction() <= rs.DeliveredFraction() {
		t.Fatalf("CTMSP must beat the stock path: %.3f vs %.3f",
			rc.DeliveredFraction(), rs.DeliveredFraction())
	}
	if rc.Playout.Glitches >= rs.Playout.Glitches {
		t.Fatalf("CTMSP must glitch less: %d vs %d", rc.Playout.Glitches, rs.Playout.Glitches)
	}
}

func TestBufferSizingConclusion(t *testing.T) {
	// §6: "the buffer space needed for 150 KBytes/sec CTMSP data
	// transfer is under 25 KBytes."
	r, err := Run(shortB(3 * sim.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if r.Playout.MaxBufferBytes >= 25_000 {
		t.Fatalf("playout buffer high-water %d B, paper concludes <25 KB", r.Playout.MaxBufferBytes)
	}
}

func TestInsertionOutliers(t *testing.T) {
	// A forced insertion during the run produces the 120–130 ms class of
	// delivery gap and at most a small number of lost packets.
	cfg := shortB(60 * sim.Second)
	cfg.ForceInsertionAt = 20 * sim.Second
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ring.PurgeCount < 10 {
		t.Fatalf("insertion should cause a purge burst: %+v", r.Ring)
	}
	if r.RxStats.Lost == 0 {
		t.Fatal("a purge burst during a 166 KB/s stream should lose at least one packet")
	}
	if r.RxStats.Lost > 20 {
		t.Fatalf("purge losses should be bounded: %+v", r.RxStats)
	}
	// H4 (inter-arrival at the receiver) should show a >100 ms gap.
	h4 := r.Truth.H[measure.H4InterRxClassified]
	if h4.Max() < 100_000 {
		t.Fatalf("the outage should appear as a ≥100 ms receive gap, max=%v µs", h4.Max())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Results {
		r, err := Run(shortA(20 * sim.Second))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Sent != b.Sent || a.Delivered != b.Delivered {
		t.Fatalf("same seed must reproduce exactly: %d/%d vs %d/%d", a.Sent, a.Delivered, b.Sent, b.Delivered)
	}
	ha := a.Truth.H[measure.H7TxToRx]
	hb := b.Truth.H[measure.H7TxToRx]
	if ha.Mean() != hb.Mean() || ha.Max() != hb.Max() {
		t.Fatalf("histograms must be identical across runs: %v/%v vs %v/%v",
			ha.Mean(), ha.Max(), hb.Mean(), hb.Max())
	}
	// A different seed gives a (slightly) different realization.
	cfg := shortA(20 * sim.Second)
	cfg.Seed = 7777
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hc := c.Truth.H[measure.H7TxToRx]
	if hc.Mean() == ha.Mean() && hc.Max() == ha.Max() && hc.Stddev() == ha.Stddev() {
		t.Fatal("different seeds should differ in detail")
	}
}

func TestToolAgreement(t *testing.T) {
	// The PC/AT tool's histograms must agree with the logic analyzer
	// within the tool's error budget (quantization + polling loop).
	r, err := Run(shortA(30 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []measure.HistogramID{measure.H6EntryToPreTransmit, measure.H7TxToRx} {
		tool := r.Hists.H[id]
		truth := r.Truth.H[id]
		if tool.N() == 0 || truth.N() == 0 {
			t.Fatalf("%v: empty histogram", id)
		}
		diff := tool.Mean() - truth.Mean()
		if diff < -150 || diff > 150 {
			t.Fatalf("%v: tool mean %v vs truth %v — outside the error budget", id, tool.Mean(), truth.Mean())
		}
	}
}

func TestReportRenders(t *testing.T) {
	r, err := Run(shortA(10 * sim.Second))
	if err != nil {
		t.Fatal(err)
	}
	out := r.Report()
	for _, want := range []string{"test-case-A", "stream:", "copies:", "Fig 5-2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if r.Throughput() < 160_000 {
		t.Fatalf("throughput: %f", r.Throughput())
	}
}
