package core

import (
	"testing"

	"repro/internal/sim"
)

// TestE19PopulationSmoke is the CI gate for the population workload: E19
// at a reduced scale must pass every metric, including the lab serial-vs-
// parallel identity and the 1/2/4-worker census fingerprint identity.
func TestE19PopulationSmoke(t *testing.T) {
	cmp := runE19(Scale{Duration: 6 * sim.Second})
	if !cmp.AllOK() {
		t.Fatalf("E19 deviated:\n%s", cmp.Render())
	}
}

// TestE19SweepShape pins the exported sweep helper ctmsbench builds on:
// per-point population accounting is self-consistent and the latency
// histogram is populated.
func TestE19SweepShape(t *testing.T) {
	points, err := PopulationSweep(7, 4*sim.Second, []float64{6, 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Arrivals == 0 || p.Admitted == 0 {
			t.Fatalf("empty point %+v", p)
		}
		if p.Admitted+p.Rejected != p.Arrivals {
			t.Fatalf("accounting broken: %d admitted + %d rejected != %d arrivals",
				p.Admitted, p.Rejected, p.Arrivals)
		}
		if p.LatencyN == 0 || p.P999Us < p.P99Us {
			t.Fatalf("latency distribution broken: %+v", p)
		}
	}
	if points[1].Arrivals <= points[0].Arrivals {
		t.Fatalf("higher rate produced fewer arrivals: %+v", points)
	}
}
