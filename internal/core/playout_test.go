package core

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPlayoutSteadyStream(t *testing.T) {
	p := NewPlayout(150_000, 40*sim.Millisecond)
	// 1800 bytes every 12 ms = exactly 150 KB/s.
	for i := 0; i < 100; i++ {
		p.Deliver(1800, sim.Time(i)*12*sim.Millisecond)
	}
	st := p.Finish(100 * 12 * sim.Millisecond)
	if st.Glitches != 0 {
		t.Fatalf("steady stream must not glitch: %+v", st)
	}
	if st.Delivered != 100 {
		t.Fatalf("delivery count: %+v", st)
	}
	// The buffer holds at most the prebuffer plus one packet's worth.
	if st.MaxBufferBytes > 1800+6000+1 {
		t.Fatalf("steady-state buffer too large: %d", st.MaxBufferBytes)
	}
}

func TestPlayoutUnderrunDetected(t *testing.T) {
	p := NewPlayout(150_000, 10*sim.Millisecond)
	p.Deliver(1800, 0)
	// Next packet 100 ms late: the converter starves.
	p.Deliver(1800, 100*sim.Millisecond)
	st := p.Finish(200 * sim.Millisecond)
	if st.Glitches == 0 {
		t.Fatal("late packet should cause a glitch")
	}
	if st.StarvedTime <= 0 {
		t.Fatal("starved time should accumulate")
	}
}

func TestPlayoutPrebufferAbsorbsJitter(t *testing.T) {
	// A 40 ms prebuffer absorbs the paper's worst-case 40 ms delivery.
	p := NewPlayout(150_000, 40*sim.Millisecond)
	at := sim.Time(0)
	for i := 0; i < 50; i++ {
		p.Deliver(1800, at)
		at += 12 * sim.Millisecond
	}
	// One packet held up 38 ms, stream resumes on schedule afterwards.
	p.Deliver(1800, at+38*sim.Millisecond)
	at += 12 * sim.Millisecond
	for i := 0; i < 50; i++ {
		p.Deliver(1800, at)
		at += 12 * sim.Millisecond
	}
	st := p.Finish(at)
	if st.Glitches != 0 {
		t.Fatalf("40 ms prebuffer should absorb a 38 ms late packet: %+v", st)
	}
}

func TestPlayoutBufferNeverNegative(t *testing.T) {
	f := func(gaps []uint8) bool {
		p := NewPlayout(150_000, 20*sim.Millisecond)
		at := sim.Time(0)
		for _, g := range gaps {
			at += sim.Time(g) * sim.Millisecond
			p.Deliver(1800, at)
			if p.BufferBytes() < 0 {
				return false
			}
		}
		st := p.Finish(at + sim.Second)
		return st.MaxBufferBytes >= 0 && st.BytesPlayed >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPlayoutConservation(t *testing.T) {
	// Bytes delivered = bytes played + buffer remaining (+ rounding).
	p := NewPlayout(150_000, 5*sim.Millisecond)
	var in int64
	at := sim.Time(0)
	for i := 0; i < 200; i++ {
		p.Deliver(1800, at)
		in += 1800
		at += 12 * sim.Millisecond
	}
	st := p.Finish(at + 10*sim.Second) // drain fully
	if st.BytesPlayed < in-1 || st.BytesPlayed > in {
		t.Fatalf("conservation violated: in=%d played=%d", in, st.BytesPlayed)
	}
}
