package core

import (
	"repro/internal/ctmsp"
	"repro/internal/inet"
	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
	"repro/internal/vca"
	"repro/internal/workload"
)

// populationStations is how many other machines sit on the campus ring
// (the paper's ring had ~70); they contribute repeat latency even when
// silent.
const populationStations = 64

// tapCaptureLimit bounds the TAP monitor's capture buffer for long runs.
const tapCaptureLimit = 1 << 18

// Run executes the scenario described by cfg and returns its results.
// Simulated-time accounting happens inside sim itself (every scheduler
// flushes into sim.TotalSimulated when a run returns), so Run needs no
// bookkeeping here and mini-sims like the session layer's are counted too.
func Run(cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Protocol == ProtocolStockUnix {
		return runStock(cfg)
	}
	return runCTMSP(cfg)
}

// RunWithTAP runs the scenario and also returns the live TAP monitor so
// callers can inspect the raw frame capture.
func RunWithTAP(cfg Config) (*Results, *measure.TAP, error) {
	r, err := Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return r, r.TapMonitor, nil
}

// env is the common scenario substrate.
type env struct {
	cfg   Config
	sched *sim.Scheduler
	rng   *sim.RNG
	ring  *ring.Ring
	tap   *measure.TAP

	txK, rxK     *kernel.Kernel
	txDrv, rxDrv *tradapter.Driver

	truth *measure.LogicAnalyzer
	rec   measure.Recorder
	pcat  *measure.PCAT

	stacks map[*kernel.Kernel]*inet.Stack
	gens   []interface{ Stop() }
}

// stack returns the machine's IP stack, creating it on first use so the
// relay path and the background generators share one instance.
func (e *env) stack(k *kernel.Kernel, drv *tradapter.Driver) *inet.Stack {
	if e.stacks == nil {
		e.stacks = make(map[*kernel.Kernel]*inet.Stack)
	}
	if s, ok := e.stacks[k]; ok {
		return s
	}
	s := inet.NewStack(k, drv, inet.DefaultCosts())
	e.stacks[k] = s
	return s
}

// buildEnv constructs the ring, the two machines under test and the
// measurement instruments.
func buildEnv(cfg Config) *env {
	e := &env{cfg: cfg, sched: sim.NewScheduler(), rng: sim.NewRNG(cfg.Seed)}

	ringCfg := ring.DefaultConfig()
	ringCfg.Seed = cfg.Seed
	if cfg.RingBitRate > 0 {
		ringCfg.BitRate = cfg.RingBitRate
	}
	e.ring = ring.New(e.sched, ringCfg)

	trCfg := tradapter.DefaultConfig()
	if !cfg.TxIOChannelMemory {
		trCfg.DMABufferKind = rtpc.SystemMemory
	}
	trCfg.DriverPriority = cfg.DriverPriority
	if !cfg.RingPriority {
		trCfg.CTMSPRingPriority = 0
	}
	trCfg.PrecomputeHeader = cfg.PrecomputeHeader
	trCfg.PurgeInterrupt = cfg.PurgeInterrupt
	trCfg.UnprotectedQueueBug = cfg.DriverRaceBug

	mkHost := func(name string, trCfg tradapter.Config) (*kernel.Kernel, *tradapter.Driver) {
		m := rtpc.NewMachine(e.sched, name, rtpc.DefaultCostModel(), cfg.Seed)
		k := kernel.New(m)
		st := e.ring.Attach(name)
		drv := tradapter.New(k, st, trCfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	e.txK, e.txDrv = mkHost("tx", trCfg)
	startKernelActivity(e.txK, e.rng.Fork("kern-tx"))
	// The receiver keeps its fixed DMA buffers in system memory (the
	// paper only moved the transmitter's; the toggle list is about the
	// transmitter).
	rxTrCfg := trCfg
	rxTrCfg.DMABufferKind = rtpc.SystemMemory
	e.rxK, e.rxDrv = mkHost("rx", rxTrCfg)
	startKernelActivity(e.rxK, e.rng.Fork("kern-rx"))

	// Populate the campus ring.
	for i := 0; i < populationStations; i++ {
		e.ring.Attach("pop")
	}

	e.tap = measure.NewTAP(e.ring, tapCaptureLimit)

	// Instruments: the logic analyzer always watches (ground truth);
	// the configured tool is what "the paper" reads.
	e.truth = measure.NewLogicAnalyzer(e.sched)
	switch cfg.Tool {
	case ToolPCAT:
		e.pcat = measure.NewPCAT(e.sched, cfg.Seed)
		e.pcat.Wire(measure.P1VCAIRQ, 0)
		e.pcat.Wire(measure.P2HandlerEntry, 1)
		e.pcat.Wire(measure.P3PreTransmit, 2)
		e.pcat.Wire(measure.P4RxClassified, 3)
		e.rec = e.pcat
	case ToolPseudoDev:
		e.rec = measure.NewPseudoDev(e.txK)
	default:
		e.rec = e.truth
	}
	return e
}

// startKernelActivity models the machine's own kernel life even in
// "stand alone" mode: the 100 Hz statistics clock, and occasional longer
// kernel work done inside splimp()-protected critical sections (buffer
// cache maintenance, timer queue scans). The protected sections delay
// network-level interrupt dispatch by up to a few milliseconds — the §5.3
// explanation for Test Case A's small right tail — without holding off
// the VCA's higher interrupt level.
func startKernelActivity(k *kernel.Kernel, rng *sim.RNG) {
	cpu := k.CPU()
	k.Sched().Every(10*sim.Millisecond, k.Machine.Name+".hardclock", func() {
		cost := 70*sim.Microsecond + rng.Uniform(0, 40*sim.Microsecond)
		cpu.Submit(kernel.LevelClock, "hardclock", []rtpc.Seg{rtpc.Do("tick", cost)}, nil)
	})
	startProtectedActivity(k, rng.Fork("housekeeping"), "housekeeping",
		400*sim.Millisecond, 300*sim.Microsecond, 3600*sim.Microsecond)
}

// startProtectedActivity schedules recurring kernel work done at splimp:
// network-level interrupts wait for the whole block, higher levels (the
// VCA) do not. mean is the exponential interarrival; each block's
// duration is uniform in [durLo, durHi].
func startProtectedActivity(k *kernel.Kernel, rng *sim.RNG, name string, mean, durLo, durHi sim.Time) {
	cpu := k.CPU()
	var arm func()
	arm = func() {
		k.Sched().After(rng.Exp(mean), k.Machine.Name+"."+name, func() {
			dur := rng.Uniform(durLo, durHi)
			var saved int
			segs := []rtpc.Seg{
				rtpc.Mark("splimp", func() { saved = cpu.Spl(kernel.LevelNet) }),
			}
			for dur > 0 {
				c := 400 * sim.Microsecond
				if dur < c {
					c = dur
				}
				dur -= c
				segs = append(segs, rtpc.Do("protected-scan", c))
			}
			segs = append(segs, rtpc.Mark("splx", func() { cpu.SplX(saved) }))
			cpu.Submit(kernel.LevelSoftNet, name, segs, nil)
			arm()
		})
	}
	arm()
}

// startPhaseLockedScan runs a fixed-duration splnet-protected scan at an
// exact period, starting at the given offset into the run.
func startPhaseLockedScan(k *kernel.Kernel, name string, period, offset, dur sim.Time) {
	cpu := k.CPU()
	run := func() {
		var saved int
		segs := []rtpc.Seg{
			rtpc.Mark("splnet", func() { saved = cpu.Spl(kernel.LevelNet) }),
		}
		left := dur
		for left > 0 {
			c := 400 * sim.Microsecond
			if left < c {
				c = left
			}
			left -= c
			segs = append(segs, rtpc.Do("pcb-scan", c))
		}
		segs = append(segs, rtpc.Mark("splx", func() { cpu.SplX(saved) }))
		cpu.Submit(kernel.LevelSoftNet, name, segs, nil)
	}
	k.Sched().After(offset, k.Machine.Name+"."+name+"-start", func() {
		run()
		k.Sched().Every(period, k.Machine.Name+"."+name, run)
	})
}

// record sends a probe event to both the configured tool and the truth
// recorder.
func (e *env) record(p measure.Point, num uint32) {
	e.truth.Record(p, num)
	if e.rec != e.truth {
		e.rec.Record(p, num)
	}
}

// addBackground wires up the §5.3 environment: MAC frames, keep-alive
// chatter, file transfer bursts, competing processes, the control-machine
// socket connection, and station insertions.
func (e *env) addBackground() {
	cfg := e.cfg
	macUtil := 0.002 // even a private ring carries monitor MAC frames
	if cfg.PublicNetwork {
		switch cfg.NetworkLoad {
		case LoadNormal:
			macUtil = 0.005
		case LoadHeavy:
			macUtil = 0.010
		}
	}
	mon := e.ring.Attach("monitor")
	e.gens = append(e.gens, workload.NewMACGen(e.ring, mon, macUtil, e.rng))

	if cfg.PublicNetwork && cfg.NetworkLoad != LoadNone {
		// Third-party keep-alive chatter (AFS servers, other clients).
		c1 := e.ring.Attach("afs-server")
		c2 := e.ring.Attach("afs-client")
		mean := 60 * sim.Millisecond
		if cfg.NetworkLoad == LoadHeavy {
			mean = 20 * sim.Millisecond
		}
		e.gens = append(e.gens, workload.NewChatterGen(e.ring, c1, c2, 60, 300, mean, e.rng.Fork("chat-1")))
		e.gens = append(e.gens, workload.NewChatterGen(e.ring, c2, c1, 60, 300, mean*2, e.rng.Fork("chat-2")))

		// Compiles and kernel copies between third parties: 1522-byte
		// bursts that load the ring but not the machines under test.
		f1 := e.ring.Attach("build-host")
		f2 := e.ring.Attach("file-server")
		burstMean := 400 * sim.Millisecond
		if cfg.NetworkLoad == LoadHeavy {
			burstMean = 120 * sim.Millisecond
		}
		e.gens = append(e.gens, workload.NewFileTransferGen(e.ring, f1, f2, burstMean, 3200*sim.Microsecond, e.rng.Fork("ft-3rd")))
	}

	if cfg.Multiprocessing {
		// The machines under test also run AFS clients and the test
		// rig's own control-socket connection (§5.3 calls the socket
		// traffic "an artifact of the test set up" and blames it for
		// part of Figure 5-2's second peak).
		control := e.ring.Attach("control")
		ctlM := rtpc.NewMachine(e.sched, "control", rtpc.DefaultCostModel(), cfg.Seed)
		ctlK := kernel.New(ctlM)
		ctlDrv := tradapter.New(ctlK, control, tradapter.StockConfig(), tradapter.DefaultTiming())
		ctlK.Register(ctlDrv)
		inet.NewStack(ctlK, ctlDrv, inet.DefaultCosts())

		txStack := e.stack(e.txK, e.txDrv)
		rxStack := e.stack(e.rxK, e.rxDrv)
		// Socket keep-alives and AFS keep-alives from the machines under
		// test: this traffic shares the transmitter's driver queue with
		// the CTMSP stream.
		e.gens = append(e.gens,
			workload.NewKeepAliveGen(e.sched, txStack, control.Addr(), 60, 300, 400*sim.Millisecond, e.rng.Fork("tx-ka")),
			workload.NewKeepAliveGen(e.sched, rxStack, control.Addr(), 60, 300, 400*sim.Millisecond, e.rng.Fork("rx-ka")),
		)
		// Competing processes ("multiprocessing mode but not heavily
		// loaded").
		e.txK.NewProc("bg-tx").BackgroundLoad(10*sim.Millisecond, 0.20)
		e.rxK.NewProc("bg-rx").BackgroundLoad(10*sim.Millisecond, 0.20)

		// AFS fetches INTO the machines under test: incoming 1522-byte
		// bursts whose receive processing shares the network interrupt
		// level with the CTMSP stream. This reception/transmission
		// interaction is what §5.3 blames for part of Figure 5-2's
		// structure and Figure 5-4's 11–15 ms band.
		fsrv := e.ring.Attach("afs-fileserver")
		toTx := workload.NewFileTransferGen(e.ring, fsrv, e.txDrv.Station(), 700*sim.Millisecond, 5500*sim.Microsecond, e.rng.Fork("ft-to-tx"))
		toTx.SetBurst(30*sim.Millisecond, 250*sim.Millisecond, 1.2)
		toRx := workload.NewFileTransferGen(e.ring, fsrv, e.rxDrv.Station(), 1500*sim.Millisecond, 6400*sim.Microsecond, e.rng.Fork("ft-to-rx"))
		toRx.SetBurst(30*sim.Millisecond, 250*sim.Millisecond, 1.2)
		e.gens = append(e.gens, toTx, toRx)

		// Timer-driven protocol scans (the pffasttimo/pfslowtimo class of
		// work) run at splnet every ten clock ticks — a period that is an
		// exact multiple of the VCA's 12 ms, so the scan phase-locks with
		// the stream and, when it lands across the driver-entry window,
		// delays the packet's copy by the scan's full ≈7 ms duration.
		// That quantized delay is Figure 5-2's second peak at ≈9400 µs
		// (= 12000 − 2600). Aperiodic protected work (the AFS cache
		// manager) produces the partial overlaps that fill the region in
		// between.
		// The scan starts 1.75 ms before every eighth VCA tick, so it
		// already holds splnet when the handler tries to start the copy.
		startPhaseLockedScan(e.txK, "protocol-scan",
			72*sim.Millisecond, 10250*sim.Microsecond, 8650*sim.Microsecond)
		startProtectedActivity(e.txK, e.rng.Fork("cachemgr-tx"), "cache-manager",
			40*sim.Millisecond, 2*sim.Millisecond, 6*sim.Millisecond)
		startProtectedActivity(e.rxK, e.rng.Fork("cachemgr-rx"), "cache-manager",
			700*sim.Millisecond, 2*sim.Millisecond, 6*sim.Millisecond)
	}

	if cfg.Insertions {
		// ~20/day ⇒ mean 72 min between insertions.
		e.gens = append(e.gens, workload.NewInsertionGen(e.ring, 46*sim.Minute, e.rng))
	}
	if cfg.ForceInsertionAt > 0 {
		// Worst-case injection: arm at the requested time, then wait for
		// the moment a CTMSP frame is on the wire so the purge destroys
		// a stream packet (the paper's "if a packet is being transmitted
		// at the time of insertion, it is possible that the packet will
		// be lost").
		var poll func()
		poll = func() {
			if f := e.ring.Current(); f != nil {
				if out, ok := f.Payload.(*tradapter.Outgoing); ok && out.Class == tradapter.ClassCTMSP {
					e.ring.Insertion(10 + e.rng.Intn(4))
					return
				}
			}
			e.sched.After(200*sim.Microsecond, "forced-insertion-poll", poll)
		}
		e.sched.At(cfg.ForceInsertionAt, "forced-insertion", poll)
	}
}

func (e *env) stopGens() {
	for _, g := range e.gens {
		g.Stop()
	}
	if e.pcat != nil {
		e.pcat.Stop()
	}
}

// runCTMSP executes the prototype path.
func runCTMSP(cfg Config) (*Results, error) {
	e := buildEnv(cfg)

	conn, err := ctmsp.Dial(e.txK, e.txDrv, e.rxDrv.Station().Addr(), 1)
	if err != nil {
		return nil, err
	}

	dev := vca.NewDevice(e.txK)
	txCfg := vca.DefaultTxConfig()
	txCfg.DataBytes = cfg.PacketBytes - ctmsp.HeaderSize
	txCfg.CopyHeaderOnly = cfg.TxCopyHeaderOnly
	txCfg.CopyVCAToMbufs = cfg.TxCopyVCAToMbufs
	txDrv, err := vca.NewTxDriver(e.txK, dev, conn, txCfg)
	if err != nil {
		return nil, err
	}

	recv := &ctmsp.Receiver{}
	rxCfg := vca.RxConfig{
		CopyToMbufs:  cfg.RxCopyToMbufs,
		CopyToDevice: cfg.RxCopyToVCA,
		ExamineCost:  40 * sim.Microsecond,
	}
	rxDrv := vca.NewRxDriver(e.rxK, e.rxDrv, recv, rxCfg)

	streamBytesPerSec := float64(cfg.PacketBytes-ctmsp.HeaderSize) / cfg.Interval.Seconds()
	playout := NewPlayout(streamBytesPerSec, cfg.PlayoutPrebuffer)

	// Probe wiring.
	dev.OnIRQ = func(tick uint64, _ sim.Time) { e.record(measure.P1VCAIRQ, uint32(tick)) }
	txDrv.OnHandlerEntry = func(tick uint64, _ sim.Time) { e.record(measure.P2HandlerEntry, uint32(tick)) }
	txDrv.OnPreTransmit = func(num uint32, _ sim.Time) { e.record(measure.P3PreTransmit, num) }
	rxDrv.OnClassified = func(h ctmsp.Header, _ sim.Time) { e.record(measure.P4RxClassified, h.PacketNum) }
	rxDrv.OnDelivered = func(h ctmsp.Header, at sim.Time, ev ctmsp.Event) {
		if ev == ctmsp.InOrder || ev == ctmsp.Gap {
			playout.Deliver(int(h.Length)-ctmsp.HeaderSize, at)
		}
	}

	// Pointer-transfer extension (§2): patch packets after build.
	if cfg.PointerTransfer {
		txDrv.PatchOutgoing = func(p *tradapter.Outgoing) { p.NoCopy = true }
	}

	e.addBackground()
	dev.Start()
	e.sched.RunUntil(cfg.Duration)
	dev.Stop()
	e.stopGens()

	r := &Results{
		Config:     cfg,
		Elapsed:    cfg.Duration,
		Hists:      measure.BuildHistograms(e.rec, cfg.HistogramBinWidth),
		Truth:      measure.BuildHistograms(e.truth, cfg.HistogramBinWidth),
		Sent:       txDrv.Stats().PacketsSent,
		Delivered:  recv.Stats().InOrder + recv.Stats().Gaps,
		RxStats:    recv.Stats(),
		Playout:    playout.Finish(cfg.Duration),
		Ring:       e.ring.Counters(),
		TAP:        e.tap.Stats(),
		TapMonitor: e.tap,
		TxDriver:   e.txDrv.Stats(),
		TxCPUUtil:  float64(e.txK.CPU().Stats().BusyTime) / float64(cfg.Duration),
		RxCPUUtil:  float64(e.rxK.CPU().Stats().BusyTime) / float64(cfg.Duration),
		Copies:     CopiesFor(cfg),
	}
	return r, nil
}
