package core

import (
	"repro/internal/kernel"
	"repro/internal/measure"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/vca"
)

// stockRelay is the §2 user-level relay: a process that reads packets
// from the source device and writes them to a socket (transmit side), or
// reads from the socket and writes to the presentation device (receive
// side). Every packet crosses the user/kernel boundary twice per machine,
// which is exactly the pair of copies the paper eliminates.
type stockRelay struct {
	k     *kernel.Kernel
	proc  *kernel.Proc
	queue []stockItem
	// queueCap models the source device's on-card buffer: the VCA can
	// hold DeviceBufferBytes; anything beyond that is overwritten.
	queueCap int
	busy     bool
	consume  func(item stockItem, done func())

	enqueued uint64
	dropped  uint64
}

type stockItem struct {
	num   uint32
	bytes int
	at    sim.Time
}

func newStockRelay(k *kernel.Kernel, name string, queueCap int, consume func(stockItem, func())) *stockRelay {
	sim.Checkf(queueCap >= 1, "relay needs at least one buffer slot")
	return &stockRelay{k: k, proc: k.NewProc(name), queueCap: queueCap, consume: consume}
}

// push is called at interrupt level when a packet is ready. Returns false
// if the device buffer overflowed and the packet was lost.
func (r *stockRelay) push(item stockItem) bool {
	if len(r.queue) >= r.queueCap {
		r.dropped++
		return false
	}
	r.queue = append(r.queue, item)
	r.enqueued++
	r.proc.Wakeup()
	r.kick()
	return true
}

func (r *stockRelay) kick() {
	if r.busy || len(r.queue) == 0 {
		return
	}
	r.busy = true
	item := r.queue[0]
	r.queue = r.queue[1:]
	r.consume(item, func() {
		r.busy = false
		if len(r.queue) > 0 {
			r.kick()
			return
		}
		// Nothing pending: the process sleeps in read().
	})
}

// runStock executes the unmodified-UNIX baseline of §1.
func runStock(cfg Config) (*Results, error) {
	e := buildEnv(cfg)

	txStack := e.stack(e.txK, e.txDrv)
	rxStack := e.stack(e.rxK, e.rxDrv)
	conn := txStack.RDTOpen(rxStack.Addr())
	rconn := rxStack.RDTOpen(txStack.Addr())

	streamBytesPerSec := float64(cfg.PacketBytes) / cfg.Interval.Seconds()
	playout := NewPlayout(streamBytesPerSec, cfg.PlayoutPrebuffer)

	queueCap := vca.DeviceBufferBytes / cfg.PacketBytes
	if queueCap < 1 {
		queueCap = 1
	}

	var sent uint64
	cost := e.txK.Machine.Cost

	// Transmit relay: read(vca) → write(socket).
	txRelay := newStockRelay(e.txK, "relay-tx", queueCap, nil)
	txRelay.consume = func(item stockItem, done func()) {
		p := txRelay.proc
		copyCost := sim.PerByte(cost.CPUCopyUser, item.bytes)
		p.Syscall("read-vca", copyCost, func() {
			p.Syscall("write-socket", copyCost, func() {
				e.record(measure.P3PreTransmit, item.num)
				conn.Send(item.num, item.bytes, nil)
				done()
			})
		})
	}

	// The VCA interrupt on the stock path: DMA buffer → mbuf copy at
	// interrupt level, then wake the relay.
	dev := vca.NewDevice(e.txK)
	stockIRQ := func(n uint64) {
		num := uint32(n)
		e.record(measure.P1VCAIRQ, num)
		segs := []rtpc.Seg{
			rtpc.Do("irq-dispatch", 28*sim.Microsecond),
			rtpc.Mark("entry", func() { e.record(measure.P2HandlerEntry, num) }),
			e.txK.Machine.CopySeg("dma-to-mbuf", cfg.PacketBytes, rtpc.SystemMemory, rtpc.SystemMemory),
			rtpc.Mark("enqueue", func() {
				sent++
				txRelay.push(stockItem{num: num, bytes: cfg.PacketBytes, at: e.sched.Now()})
			}),
		}
		e.txK.CPU().Submit(kernel.LevelVCA, "vca.stock-intr", segs, nil)
	}

	// Receive relay: read(socket) → write(vca device).
	var delivered uint64
	rxRelay := newStockRelay(e.rxK, "relay-rx", 64, nil)
	rxRelay.consume = func(item stockItem, done func()) {
		p := rxRelay.proc
		copyCost := sim.PerByte(cost.CPUCopyUser, item.bytes)
		devCost := sim.PerByte(cost.CPUCopyDevice, item.bytes)
		p.Syscall("read-socket", copyCost, func() {
			p.Syscall("write-vca", devCost, func() {
				delivered++
				e.record(measure.P4RxClassified, item.num)
				playout.Deliver(item.bytes, e.sched.Now())
				done()
			})
		})
	}

	// Transport delivery reassembles MTU segments into packets.
	pending := make(map[uint32]int)
	rconn.OnDeliver(func(payload any, n int, at sim.Time) {
		num, ok := payload.(uint32)
		if !ok {
			return
		}
		pending[num] += n
		if pending[num] >= cfg.PacketBytes {
			delete(pending, num)
			rxRelay.push(stockItem{num: num, bytes: cfg.PacketBytes, at: at})
		}
	})

	// Wire the interrupt action directly (the stock driver does not use
	// the CTMSP driver-to-driver path).
	dev.SetIRQ(stockIRQ)

	e.addBackground()
	dev.Start()
	e.sched.RunUntil(cfg.Duration)
	dev.Stop()
	e.stopGens()

	r := &Results{
		Config:     cfg,
		Elapsed:    cfg.Duration,
		Hists:      measure.BuildHistograms(e.rec, cfg.HistogramBinWidth),
		Truth:      measure.BuildHistograms(e.truth, cfg.HistogramBinWidth),
		Sent:       sent,
		Delivered:  delivered,
		Playout:    playout.Finish(cfg.Duration),
		Ring:       e.ring.Counters(),
		TAP:        e.tap.Stats(),
		TapMonitor: e.tap,
		TxDriver:   e.txDrv.Stats(),
		TxCPUUtil:  float64(e.txK.CPU().Stats().BusyTime) / float64(cfg.Duration),
		RxCPUUtil:  float64(e.rxK.CPU().Stats().BusyTime) / float64(cfg.Duration),
		Copies:     CopiesFor(cfg),
	}
	r.RxStats.Received = delivered
	r.RxStats.InOrder = delivered
	if sent > delivered {
		r.RxStats.Lost = sent - delivered
	}
	// Source-side drops are the dominant stock-path failure.
	r.RxStats.Gaps = txRelay.dropped
	return r, nil
}
