package core

import (
	"repro/internal/lab"
)

// MatrixResult is one experiment's outcome from a matrix run. Wall-clock
// bookkeeping deliberately lives with the caller (ctmsbench): core is
// clock-free — the determinism analyzer enforces it — so the result
// table depends only on the experiments and the scale, never on host
// timing.
type MatrixResult struct {
	Experiment Experiment
	Comparison *Comparison
}

// RunMatrix runs the given experiments across parallelism workers
// (0 = GOMAXPROCS) and returns the outcomes in the experiments' order.
// Every experiment is an independent deterministic simulation, so the
// result table is identical for any parallelism.
func RunMatrix(exps []Experiment, s Scale, parallelism int) []MatrixResult {
	pool := lab.New(parallelism)
	return lab.Map(pool, len(exps), func(i int) MatrixResult {
		return MatrixResult{Experiment: exps[i], Comparison: exps[i].Run(s)}
	})
}
