package core

import (
	"time"

	"repro/internal/lab"
)

// MatrixResult is one experiment's outcome from a matrix run, with the
// wall-clock bookkeeping ctmsbench needs for its perf trajectory.
type MatrixResult struct {
	Experiment Experiment
	Comparison *Comparison
	// Wall is how long the experiment took on the host clock (not
	// simulated time).
	Wall time.Duration
}

// RunMatrix runs the given experiments across parallelism workers
// (0 = GOMAXPROCS) and returns the outcomes in the experiments' order.
// Every experiment is an independent deterministic simulation, so the
// result table is identical for any parallelism — only the wall times
// (and their sum) change.
func RunMatrix(exps []Experiment, s Scale, parallelism int) []MatrixResult {
	pool := lab.New(parallelism)
	return lab.Map(pool, len(exps), func(i int) MatrixResult {
		start := time.Now()
		cmp := exps[i].Run(s)
		return MatrixResult{Experiment: exps[i], Comparison: cmp, Wall: time.Since(start)}
	})
}
