package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestE20MeshSmoke is the CI gate for the metro mesh: E20 at a reduced
// scale must pass every metric — the {1,2,3,16}-worker bit-identity, the
// worker-invariant round/skip accounting, and the sparse-mesh skip claim
// — and `make race-shards` runs this under the race detector, giving the
// per-link windows and the drain-round skip protocol real interleavings
// to defend.
func TestE20MeshSmoke(t *testing.T) {
	cmp := runE20(Scale{Duration: 800 * sim.Millisecond})
	if !cmp.AllOK() {
		t.Fatalf("E20 deviated:\n%s", cmp.Render())
	}
}

// TestE20TopologyShape pins the parameterized mesh builder: a side-S
// grid has S² rings, 2·S·(S−1) grid links plus S−1 trunk chords, and the
// trunk carries a distinct (larger) latency — the heterogeneity the
// per-link windows are sized from.
func TestE20TopologyShape(t *testing.T) {
	const side = 4
	spec := E20Topology(side, 7, sim.Second)
	rings := side * side
	wantLinks := 2*side*(side-1) + (side - 1)
	if spec.Rings != rings || len(spec.Links) != wantLinks {
		t.Fatalf("side-%d mesh has %d rings, %d links; want %d, %d",
			side, spec.Rings, len(spec.Links), rings, wantLinks)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	trunks := 0
	for _, l := range spec.Links {
		if l.Latency > 0 && l.Latency != topo.DefaultLinkLatency {
			trunks++
			if l.Latency <= topo.DefaultLinkLatency {
				t.Fatalf("trunk link %v not slower than the grid default", l)
			}
		}
	}
	if trunks != side-1 {
		t.Fatalf("found %d trunk links; want %d", trunks, side-1)
	}
	if spec.Population == nil {
		t.Fatal("mesh spec carries no population")
	}
	if _, err := topo.Build(spec); err != nil {
		t.Fatal(err)
	}
}
