package core

import "testing"

func TestStockPathCopyCount(t *testing.T) {
	// §2: "the number of copies performed ... can be as many as six and
	// as few as four. ... There will always be four copies made by the
	// CPU."
	l := CopiesFor(StockUnix(150_000))
	if l.Total() != 6 {
		t.Fatalf("stock path with DMA devices: want 6 movements, got %d", l.Total())
	}
	if l.CPUCopies() != 4 {
		t.Fatalf("stock path: want 4 CPU copies, got %d", l.CPUCopies())
	}
	if l.DMACopies() != 2 {
		t.Fatalf("stock path: want 2 DMA movements, got %d", l.DMACopies())
	}
}

func TestDriverToDriverEliminatesTwoCPUCopies(t *testing.T) {
	// §2: direct driver-to-driver transfer "completely eliminates two of
	// the data copies" — the mbuf→user and user→mbuf crossings.
	stock := CopiesFor(StockUnix(150_000))
	d2d := CopiesFor(TestCaseB())
	if stock.CPUCopies()-d2d.CPUCopies() < 1 {
		t.Fatalf("driver-to-driver must reduce CPU copies: %d vs %d", d2d.CPUCopies(), stock.CPUCopies())
	}
	for _, s := range d2d.Steps {
		if s.From == "user space" || s.To == "user space" {
			t.Fatalf("driver-to-driver path must not cross user space: %+v", s)
		}
	}
	for _, want := range []string{"user space"} {
		found := false
		for _, s := range stock.Steps {
			if s.To == want || s.From == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("stock path must cross %s", want)
		}
	}
}

func TestTestCaseACopies(t *testing.T) {
	// A: tx copies header+data into the DMA buffer (1 CPU copy), rx
	// copies into mbufs (1 CPU copy), data dropped before the VCA.
	l := CopiesFor(TestCaseA())
	if l.CPUCopies() != 2 {
		t.Fatalf("test case A: want 2 CPU copies, got %d (%v)", l.CPUCopies(), l.Steps)
	}
}

func TestTestCaseBCopies(t *testing.T) {
	// B adds the mbuf→VCA copy on the receiver.
	l := CopiesFor(TestCaseB())
	if l.CPUCopies() != 3 {
		t.Fatalf("test case B: want 3 CPU copies, got %d (%v)", l.CPUCopies(), l.Steps)
	}
}

func TestPointerTransferEliminatesAllTxCPUCopies(t *testing.T) {
	cfg := TestCaseA()
	cfg.PointerTransfer = true
	cfg.RxCopyToMbufs = false
	cfg.RxCopyToVCA = false
	l := CopiesFor(cfg)
	if l.CPUCopies() != 0 {
		t.Fatalf("pointer transfer with in-place rx: want 0 CPU copies, got %d (%v)", l.CPUCopies(), l.Steps)
	}
	if l.DMACopies() != 2 {
		t.Fatalf("DMA movements remain: got %d", l.DMACopies())
	}
}

func TestConfigValidate(t *testing.T) {
	good := TestCaseA()
	if err := good.Validate(); err != nil {
		t.Fatalf("preset config should validate: %v", err)
	}
	bad := good
	bad.Duration = 0
	if bad.Validate() == nil {
		t.Fatal("zero duration must fail")
	}
	bad = good
	bad.PacketBytes = 0
	if bad.Validate() == nil {
		t.Fatal("zero packet size must fail")
	}
	bad = good
	bad.PointerTransfer = true
	bad.TxCopyHeaderOnly = true
	if bad.Validate() == nil {
		t.Fatal("contradictory copy options must fail")
	}
	if _, err := Run(bad); err == nil {
		t.Fatal("Run must reject invalid configs")
	}
}

func TestPresetsDifferAsDocumented(t *testing.T) {
	a, b := TestCaseA(), TestCaseB()
	if a.PublicNetwork || !b.PublicNetwork {
		t.Fatal("A is private, B is public")
	}
	if a.Multiprocessing || !b.Multiprocessing {
		t.Fatal("A standalone, B multiprocessing")
	}
	if a.RxCopyToVCA || !b.RxCopyToVCA {
		t.Fatal("only B does the full receive copy")
	}
	if !a.TxIOChannelMemory || !b.TxIOChannelMemory {
		t.Fatal("both use IO Channel Memory")
	}
	s := StockUnix(150_000)
	if s.Protocol != ProtocolStockUnix || s.PacketBytes != 1800 {
		t.Fatalf("stock preset wrong: %+v", s)
	}
}
