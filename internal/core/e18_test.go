package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestE18ShardedSmoke is the CI gate for the sharded engine: E18 at a
// reduced scale must pass every metric — including the serial-vs-4-shard
// bit-identity check — and `make ci` runs this under the race detector,
// giving the barrier and inbox code real interleavings to defend.
func TestE18ShardedSmoke(t *testing.T) {
	cmp := runE18(Scale{Duration: 3 * sim.Second})
	if !cmp.AllOK() {
		t.Fatalf("E18 deviated:\n%s", cmp.Render())
	}
}

// TestE18TopologyShape pins the parameterized builder: a K-ring line has
// K−1 links, and the stream mix covers local, adjacent, two-hop and
// transit-overload shapes.
func TestE18TopologyShape(t *testing.T) {
	spec := E18Topology(6, 1, sim.Second)
	if spec.Rings != 6 || len(spec.Links) != 5 {
		t.Fatalf("6-ring line has %d rings, %d links", spec.Rings, len(spec.Links))
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	var local, cross int
	for _, s := range spec.Streams {
		if s.SrcRing == s.DstRing {
			local++
		} else {
			cross++
		}
	}
	if local != 6 || cross == 0 {
		t.Fatalf("stream mix local=%d cross=%d", local, cross)
	}
	if _, err := topo.Build(spec); err != nil {
		t.Fatal(err)
	}
}
