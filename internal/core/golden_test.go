package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestE18GoldenFingerprints pins the whole engine stack — routing,
// admission, forwarding, the conservative-window schedule — against
// serial fingerprints captured before the compiled route table, the
// pooled forwarding path and the per-link windows existed. On a
// uniform-latency line the per-link lookahead recurrence collapses to
// the old global window grid and the route table reproduces the old
// per-stream BFS tie-breaks, so these bytes must never change: any
// drift means an "optimisation" silently moved an observable event.
func TestE18GoldenFingerprints(t *testing.T) {
	cases := []struct {
		golden   string
		rings    int
		duration sim.Time
	}{
		{"e18_line4_1000ms.golden", 4, sim.Second},
		{"e18_line8_1500ms.golden", 8, 1500 * sim.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", tc.golden))
			if err != nil {
				t.Fatal(err)
			}
			spec := E18Topology(tc.rings, SweepSeed(1991, 18), tc.duration)
			n, err := topo.Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			got := n.Run(1).Fingerprint()
			if got != string(want) {
				t.Fatalf("serial fingerprint drifted from the pre-refactor golden %s:\n--- golden ---\n%s\n--- got ---\n%s",
					tc.golden, want, got)
			}
		})
	}
}
