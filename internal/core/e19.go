package core

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// E19: the population question behind §1's "millions of users". E17
// admits a hand-enumerated stream list; a city-scale CTMS faces a
// statistical population instead — Poisson session arrivals, exponential
// hang-ups, demand Zipf-skewed across a catalog, a mixed codec table.
// This experiment sweeps the offered arrival rate and measures the
// distributional outcomes the paper's per-stream tables cannot show:
// the admission-rate curve versus offered load, the p99/p999 playout
// latency of every delivered packet, and — under a correlated insertion
// storm — whether shedding stays fair (lowest class first) even when
// Zipf skew concentrates demand on a few titles. A census of the same
// population also runs on the sharded internetwork engine at 1, 2 and
// 4 workers, which must agree byte-for-byte (the E18 oracle extended to
// statistically generated workloads).

// e19TopRate caps the offered-load sweep in arrivals/second. Each
// admitted stream holds ~347 kbit/s for ~4.3 s on average (3 s
// half-life), so ~10 fit the 3.4 Mbit/s budget concurrently: 1/s
// (~4 concurrent) is light load, and the curve crosses the budget
// between 2/s and 8/s.
const e19TopRate = 32

// e19Population is the sweep's population shape at the given arrival
// rate: a 32-title catalog under s=1.1 skew with a 3 s churn half-life
// and the default codec mix.
func e19Population(arrivalsPerSec float64) *workload.PopulationSpec {
	return &workload.PopulationSpec{
		ArrivalsPerSec: arrivalsPerSec,
		ZipfSkew:       1.1,
		Titles:         32,
		ChurnHalfLife:  3 * sim.Second,
	}
}

// PopulationPoint is one offered-load point of the E19 sweep, exported
// (with PopulationSweep) so ctmsbench can record the same curves in
// BENCH.json.
type PopulationPoint struct {
	OfferedPerSec float64 // offered arrivals/s
	Arrivals      int     // compiled arrivals (population streams)
	Admitted      int
	Rejected      int
	Shed          int
	Departed      int
	P99Us         float64 // playout-latency quantiles over delivered packets
	P999Us        float64
	WorstGPM      float64 // worst admitted glitches/min
	RingUtil      float64
	LatencyN      uint64 // delivered packets in the histogram
	ReportSum     string // Report() for determinism comparisons
}

// AdmissionRate is the fraction of population arrivals admitted.
func (p PopulationPoint) AdmissionRate() float64 {
	if p.Arrivals == 0 {
		return 0
	}
	return float64(p.Admitted) / float64(p.Arrivals)
}

// PopulationSweep runs the E19 offered-load sweep: one independent
// session per rate, each with its own SweepSeed-derived seed, fanned out
// across workers pool workers (0 = all cores). The result is identical
// at any worker count because each point is a self-contained simulation.
func PopulationSweep(base int64, dur sim.Time, rates []float64, workers int) ([]PopulationPoint, error) {
	cfgs := make([]session.Config, len(rates))
	for i, rate := range rates {
		cfgs[i] = session.Config{
			Name:           fmt.Sprintf("e19-%02.0f", rate),
			Seed:           SweepSeed(base, i),
			Duration:       dur,
			BackgroundUtil: 0.05,
			Population:     e19Population(rate),
		}
	}
	out := make([]*session.Results, len(cfgs))
	errs := make([]error, len(cfgs))
	lab.New(workers).Run(len(cfgs), func(i int) {
		out[i], errs[i] = session.Run(cfgs[i])
	})
	points := make([]PopulationPoint, len(cfgs))
	for i, r := range out {
		if errs[i] != nil {
			return nil, fmt.Errorf("%s: %w", cfgs[i].Name, errs[i])
		}
		points[i] = PopulationPoint{
			OfferedPerSec: rates[i],
			Arrivals:      len(r.Streams),
			Admitted:      r.Admitted,
			Rejected:      r.Rejected,
			Shed:          r.ShedN,
			Departed:      r.Departed,
			P99Us:         r.PlayoutLatency.Quantile(0.99),
			P999Us:        r.PlayoutLatency.Quantile(0.999),
			WorstGPM:      r.WorstAdmittedGlitchRate(),
			RingUtil:      r.RingUtilization,
			LatencyN:      r.PlayoutLatency.N(),
			ReportSum:     r.Report(),
		}
	}
	return points, nil
}

func runE19(s Scale) *Comparison {
	c := &Comparison{}
	dur := 12 * sim.Second
	if s.Duration > 0 && s.Duration < dur {
		dur = s.Duration
	}
	base := s.Seed
	if base == 0 {
		base = 1991
	}

	rates := []float64{1, 4, 16, e19TopRate}
	points, err := PopulationSweep(base, dur, rates, 0)
	if err != nil {
		c.addf("population sweep", "-", false, "error: %v", err)
		return c
	}
	for _, p := range points {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"%4.0f/s offered: %d arrivals, %d admitted %d rejected %d shed %d departed | p99=%.1fms p999=%.1fms (%d pkts) | ring util %.1f%%",
			p.OfferedPerSec, p.Arrivals, p.Admitted, p.Rejected, p.Shed, p.Departed,
			p.P99Us/1000, p.P999Us/1000, p.LatencyN, 100*p.RingUtil))
	}

	// Scale: the top-rate point must be a real population, not a toy —
	// unless the caller shrank the run below the full duration.
	top := points[len(points)-1]
	c.addf("population scale at top rate", "≥200 Poisson arrivals",
		top.Arrivals >= 200 || dur < 12*sim.Second, "%d arrivals over %v", top.Arrivals, dur)

	// The admission-rate curve: near-total admission at light load,
	// monotonically non-increasing, and a real knee (rejections) by the
	// top rate. Tolerance covers Poisson noise between adjacent points.
	monotone := true
	for i := 1; i < len(points); i++ {
		if points[i].AdmissionRate() > points[i-1].AdmissionRate()+0.05 {
			monotone = false
		}
	}
	c.addf("light load admits (almost) everyone", "admission rate ≥ 0.9 at 1/s",
		points[0].AdmissionRate() >= 0.9, "%.3f", points[0].AdmissionRate())
	c.addf("admission rate falls with offered load", "non-increasing curve",
		monotone, "%t", monotone)
	c.addf("overload rejects rather than breaks", "rejections at 32/s",
		top.Rejected > 0 && top.AdmissionRate() < points[0].AdmissionRate(),
		"%.3f admitted (%d rejected)", top.AdmissionRate(), top.Rejected)

	// Distributional latency: every delivered packet's delay past its
	// capture schedule. The tail must stay within the 40 ms prebuffer at
	// light load — that is what "imperceptible glitch rate" means when
	// the metric is a distribution rather than a mean.
	lo := points[0]
	c.addf("p99 playout latency at light load", "≤ 40 ms prebuffer",
		lo.LatencyN > 0 && lo.P99Us <= 40_000, "%.1f ms over %d packets", lo.P99Us/1000, lo.LatencyN)
	c.addf("p999 dominates p99", "ordered quantiles at every rate",
		allOrdered(points), "%t", allOrdered(points))
	c.addf("light-load glitch rate", "bounded (≤1/min worst admitted)",
		lo.WorstGPM <= 1.0, "%.2f/min", lo.WorstGPM)

	// Churn: with a 3 s half-life against a ≥6 s run, a healthy share of
	// admitted streams must hang up naturally, releasing budget.
	c.addf("churn departures release budget", "departures ≫ 0",
		top.Departed > top.Admitted/4, "%d of %d admitted", top.Departed, top.Admitted)

	// Shed fairness under skew: a correlated insertion storm at mid-run
	// shrinks capacity; the session must shed lowest class first even
	// though Zipf skew makes the population lopsided.
	stormCfg := session.Config{
		Name:           "e19-storm",
		Seed:           SweepSeed(base, 1000),
		Duration:       dur,
		BackgroundUtil: 0.05,
		Population:     e19Population(16),
	}
	stormCfg.Population.StormAt = dur / 2
	stormCfg.Population.StormInsertions = 3
	stormCfg.PlayoutPrebuffer = 130 * sim.Millisecond
	storm := mustRunSession(stormCfg)
	// Fairness is judged over the streams the storm actually confronted:
	// arrivals admitted before it that never hung up on their own. Churn
	// refills the low classes afterwards (a post-storm background arrival
	// is rightly admitted once the penalty expires), so unlike E17 the
	// whole-run class extremes would compare streams the shed policy
	// never saw together.
	minSurvivor, maxShed := session.ClassInteractive, session.ClassBackground
	for _, st := range storm.Streams {
		if !st.Decision.Admitted || st.Departed || st.ArrivedAt >= stormCfg.Population.StormAt {
			continue
		}
		if st.Shed {
			if st.Spec.Class > maxShed {
				maxShed = st.Spec.Class
			}
		} else if st.Spec.Class < minSurvivor {
			minSurvivor = st.Spec.Class
		}
	}
	c.addf("storm sheds population streams", "capacity shock forces degradation",
		storm.ShedN >= 1, "%d shed of %d admitted", storm.ShedN, storm.Admitted)
	c.addf("shed order honors class under skew", "background first, interactive last",
		storm.ShedN == 0 || maxShed <= minSurvivor,
		"worst shed class %v, best surviving %v", maxShed, minSurvivor)

	// Serial-vs-parallel matrix: the sweep fanned out across all cores
	// above; re-running it on a single worker must reproduce every point
	// byte-for-byte (each point is its own sealed simulation).
	serial, err := PopulationSweep(base, dur, rates, 1)
	identical := err == nil && len(serial) == len(points)
	for i := 0; identical && i < len(points); i++ {
		identical = serial[i].ReportSum == points[i].ReportSum
	}
	c.addf("sweep identical serial vs parallel", "bit-identical lab fan-out",
		identical, "%t", identical)

	// The sharded engine must extend its serial oracle to statistical
	// populations: the same census internetwork at 1, 2 and 4 workers.
	topoSpec := E19Census(SweepSeed(base, 2000), dur)
	fps := make([]string, 3)
	for i, workers := range []int{1, 2, 4} {
		n, err := topo.Build(topoSpec)
		if err != nil {
			c.addf("census build", "-", false, "error: %v", err)
			return c
		}
		fps[i] = n.Run(workers).Fingerprint()
	}
	c.addf("census fingerprint identical at 1/2/4 shard workers", "serial oracle holds",
		fps[0] == fps[1] && fps[1] == fps[2], "%t", fps[0] == fps[1] && fps[1] == fps[2])
	return c
}

// E19Census is the population census internetwork E19 verifies the
// sharded engine against: a four-ring line whose streams are expanded
// from a PopulationSpec at Build time. ctmsbench reuses it for the
// population shard-identity benchmark.
func E19Census(seed int64, duration sim.Time) topo.Spec {
	return topo.Spec{
		Name:     "e19-census",
		Seed:     seed,
		Duration: duration,
		Rings:    4,
		Links: []topo.LinkSpec{
			{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3},
		},
		BackgroundUtil:   0.05,
		PlayoutPrebuffer: 150 * sim.Millisecond,
		Population: &workload.PopulationSpec{
			ArrivalsPerSec: 20,
			ZipfSkew:       1.0,
			Titles:         12,
			ChurnHalfLife:  sim.Second,
		},
	}
}

// allOrdered reports p999 ≥ p99 at every sweep point.
func allOrdered(points []PopulationPoint) bool {
	for _, p := range points {
		if p.P999Us < p.P99Us {
			return false
		}
	}
	return true
}

// mustRunSession runs one session config, panicking on the impossible
// (the config was just validated).
func mustRunSession(cfg session.Config) *session.Results {
	r, err := session.Run(cfg)
	sim.Checkf(err == nil, "e19: %v", err)
	return r
}
