package core

import (
	"testing"

	"repro/internal/measure"
	"repro/internal/sim"
)

// TestCalibrationReport is a diagnostic: run short versions of the main
// scenarios and print their reports. Guarded behind -run Calibration and
// testing.Verbose so normal test runs stay quiet.
func TestCalibrationReport(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("calibration report only under -v")
	}
	a := TestCaseA()
	a.Duration = 2 * sim.Minute
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + ra.Report())
	h7 := ra.Truth.H[measure.H7TxToRx]
	t.Logf("A h7: min=%.0f mean=%.0f p98-band=%.3f", h7.Min(), h7.Mean(), h7.FractionNear(h7.Mean(), 160))
	h6 := ra.Truth.H[measure.H6EntryToPreTransmit]
	t.Logf("A h6: min=%.0f mean=%.0f mode=%.0f", h6.Min(), h6.Mean(), h6.Mode())

	b := TestCaseB()
	b.Duration = 4 * sim.Minute
	rb, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rb.Report())
	h6b := rb.Truth.H[measure.H6EntryToPreTransmit]
	t.Logf("B h6: mode=%.0f peaks=%v frac2600=%.3f frac9400=%.3f fracBetween=%.3f",
		h6b.Mode(), h6b.Peaks(0.01),
		h6b.FractionNear(2600, 500), h6b.FractionNear(9400, 500), h6b.FractionWithin(3100, 8900))
	h7b := rb.Truth.H[measure.H7TxToRx]
	t.Logf("B h7: min=%.0f fracPeak=%.3f frac11-15=%.3f frac15-40=%.3f max=%.0f",
		h7b.Min(), h7b.FractionNear(10900, 160), h7b.FractionWithin(11060, 15000),
		h7b.FractionWithin(15000, 40050), h7b.Max())

	s150 := StockUnix(150_000)
	rs, err := Run(s150)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rs.Report())

	s16 := StockUnix(16_000)
	rs16, err := Run(s16)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + rs16.Report())
}
