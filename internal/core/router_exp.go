package core

import (
	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/router"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tradapter"
)

// runE14 implements footnote 5's deferred problem: put a store-and-
// forward router between the transmitter and receiver and see whether it
// keeps up with the CTMS rate. The paper says "this is possible but has
// not been implemented"; here it is.
func runE14(s Scale) *Comparison {
	c := &Comparison{}
	dur := 2 * sim.Minute
	if s.Duration > 0 {
		dur = s.Duration
	}
	seed := int64(1991)
	if s.Seed != 0 {
		seed = s.Seed
	}

	sched := sim.NewScheduler()
	rc0 := ring.DefaultConfig()
	rc0.Seed = seed
	r0 := ring.New(sched, rc0)
	rc1 := rc0
	rc1.Seed = seed + 1
	r1 := ring.New(sched, rc1)
	rt := router.New(sched, "router", r0, r1, seed)

	mk := func(name string, rg *ring.Ring, kind rtpc.MemoryKind) (*kernel.Kernel, *tradapter.Driver) {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), seed)
		k := kernel.New(m)
		st := rg.Attach(name)
		cfg := tradapter.DefaultConfig()
		cfg.DMABufferKind = kind
		drv := tradapter.New(k, st, cfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	srcK, srcDrv := mk("src", r0, rtpc.IOChannelMemory)
	_, dstDrv := mk("dst", r1, rtpc.SystemMemory)
	rt.AddRoute(0, dstDrv.Station().Addr(), 1)

	// The 166 KB/s CTMS stream: one 2000-byte packet per 12 ms.
	lat := stats.NewHistogram(100, "src→dst latency across router")
	var sent, delivered uint64
	sentAt := map[uint32]sim.Time{}
	dstDrv.SetHandler(tradapter.ClassCTMSP, func(rcv *tradapter.Received) []rtpc.Seg {
		out := rcv.Frame.Payload.(*tradapter.Outgoing)
		h, ok := out.Chain.Tag.(ctmsp.Header)
		if !ok {
			rcv.Release()
			return nil
		}
		if t0, ok := sentAt[h.PacketNum]; ok {
			lat.Add((rcv.At - t0).Microseconds())
			delete(sentAt, h.PacketNum)
			delivered++
		}
		rcv.Release()
		return nil
	})
	var n uint32
	rep := sched.Every(12*sim.Millisecond, "ctms-stream", func() {
		ch := srcK.Pool.AllocNoWait(2000)
		if ch == nil {
			return
		}
		num := n
		n++
		ch.Tag = ctmsp.Header{PacketNum: num, Length: 2000}
		sentAt[num] = sched.Now()
		sent++
		pool := srcK.Pool
		srcDrv.Output(&tradapter.Outgoing{
			Chain:     ch,
			Size:      2000,
			Class:     tradapter.ClassCTMSP,
			Dst:       rt.Port(0).Driver.Station().Addr(),
			RoutedDst: dstDrv.Station().Addr(),
			Done:      func(ring.DeliveryStatus) { pool.Free(ch) },
		})
	})
	sched.RunUntil(dur)
	rep.Stop()
	sched.RunUntil(dur + 200*sim.Millisecond)

	frac := float64(delivered) / float64(sent)
	c.addf("166 KB/s across the router", "possible but not implemented (fn 5)",
		frac > 0.999, "%.4f delivered (%d/%d)", frac, delivered, sent)
	c.addf("added latency vs single ring", "a second hop's worth",
		within(lat.Mean(), 18_000, 30_000), "mean %.0f µs (single ring ≈10 900)", lat.Mean())
	util := float64(rt.Kernel().CPU().Stats().BusyTime) / float64(sched.Now())
	c.addf("router CPU at the CTMS rate", "must keep up",
		util < 0.5, "%.1f%%", 100*util)
	c.addf("latency stability", "bounded queueing",
		lat.Max() < lat.Min()+25_000, "spread [%.0f, %.0f] µs", lat.Min(), lat.Max())
	return c
}
