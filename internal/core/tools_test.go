package core

import (
	"testing"

	"repro/internal/measure"
	"repro/internal/sim"
)

// TestPseudoDevTool runs a scenario measured by the in-kernel recorder,
// which cannot see the IRQ line and perturbs what it measures.
func TestPseudoDevTool(t *testing.T) {
	cfg := TestCaseA()
	cfg.Duration = 20 * sim.Second
	cfg.Tool = ToolPseudoDev
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The pseudo device records P2/P3 (on the transmitter) but not P1.
	if r.Hists.H[measure.H1InterIRQ].N() != 0 {
		t.Fatal("pseudo device cannot observe the IRQ line")
	}
	if r.Hists.H[measure.H2InterEntry].N() == 0 || r.Hists.H[measure.H3InterPreTransmit].N() == 0 {
		t.Fatal("pseudo device should record software points")
	}
	// Its timestamps quantize to the 122 µs clock.
	h6 := r.Hists.H[measure.H6EntryToPreTransmit]
	truth := r.Truth.H[measure.H6EntryToPreTransmit]
	if h6.N() == 0 {
		t.Fatal("H6 empty under the pseudo device")
	}
	if d := h6.Mean() - truth.Mean(); d < -250 || d > 250 {
		t.Fatalf("pseudo device H6 mean off by %v µs", d)
	}
	// The recording cost itself shows up as extra transmitter CPU
	// relative to the logic analyzer run.
	cfg2 := cfg
	cfg2.Tool = ToolLogicAnalyzer
	r2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if r.TxCPUUtil <= r2.TxCPUUtil {
		t.Fatalf("pseudo device must perturb the measured machine: %.4f vs %.4f",
			r.TxCPUUtil, r2.TxCPUUtil)
	}
}

// TestCopyHeaderOnlyScenario exercises §5.3's "copy only header" toggle
// end to end: the send path loses its 2000 µs copy.
func TestCopyHeaderOnlyScenario(t *testing.T) {
	cfg := TestCaseA()
	cfg.Duration = 20 * sim.Second
	cfg.TxCopyHeaderOnly = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h6 := r.Truth.H[measure.H6EntryToPreTransmit]
	if h6.Mean() > 1000 {
		t.Fatalf("header-only copy should collapse H6 to code cost: %.0f µs", h6.Mean())
	}
	if r.RxStats.Lost != 0 {
		t.Fatalf("stream integrity: %+v", r.RxStats)
	}
}

// TestPointerTransferScenario exercises the §2 extension end to end.
func TestPointerTransferScenario(t *testing.T) {
	cfg := TestCaseA()
	cfg.Duration = 20 * sim.Second
	cfg.PointerTransfer = true
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h6 := r.Truth.H[measure.H6EntryToPreTransmit]
	if h6.Mean() > 900 {
		t.Fatalf("pointer transfer should eliminate the copy: H6 mean %.0f µs", h6.Mean())
	}
	base := TestCaseA()
	base.Duration = 20 * sim.Second
	rb, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if r.TxCPUUtil >= rb.TxCPUUtil {
		t.Fatalf("pointer transfer should cut transmitter CPU: %.3f vs %.3f", r.TxCPUUtil, rb.TxCPUUtil)
	}
}

// TestHeavyLoadStillDelivers pushes the ring to LoadHeavy: CTMSP should
// degrade gracefully (priority protects it) rather than collapse.
func TestHeavyLoadStillDelivers(t *testing.T) {
	cfg := TestCaseB()
	cfg.Duration = 60 * sim.Second
	cfg.Insertions = false
	cfg.NetworkLoad = LoadHeavy
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.DeliveredFraction() < 0.995 {
		t.Fatalf("ring priority should protect the stream under heavy load: %.4f", r.DeliveredFraction())
	}
}

// TestExperimentMatrixRuns executes every experiment at a tiny scale so
// the matrix itself stays healthy.
func TestExperimentMatrixRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is slow")
	}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			cmp := e.Run(Scale{Duration: 20 * sim.Second})
			if len(cmp.Metrics) == 0 {
				t.Fatal("no metrics")
			}
			if cmp.Render() == "" {
				t.Fatal("empty render")
			}
			// At this tiny scale distribution-shape metrics may wobble;
			// structural metrics must still hold for E2/E7/E10.
			switch e.ID {
			case "E2", "E7", "E10":
				if !cmp.AllOK() {
					t.Fatalf("structural experiment deviated:\n%s", cmp.Render())
				}
			}
		})
	}
	if _, ok := ExperimentByID("E99"); ok {
		t.Fatal("unknown IDs must not resolve")
	}
}
