package core

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/sim"
)

// SweepPoint is one rate's outcome for one path.
type SweepPoint struct {
	RateBytesPerSec int
	Delivered       float64
	Glitches        uint64
	TxCPU, RxCPU    float64
	Sustainable     bool
}

// sustainable is the bar for "carries the stream": essentially lossless
// and not glitching more than once a minute.
func sustainable(r *Results) bool {
	perMin := float64(r.Playout.Glitches) / (r.Elapsed.Seconds() / 60)
	return r.DeliveredFraction() > 0.999 && perMin <= 1
}

// SweepSeed derives the RNG seed for one sweep point from the sweep's base
// seed and the point's rate. Every rate gets its own independent stream:
// without this, all points of a sweep would replay the same background
// traffic and the sweep would measure one unlucky (or lucky) sample of the
// environment at every rate. The mixing is a splitmix64-style finalizer so
// that nearby rates (16000 vs 16001) land on unrelated seeds.
func SweepSeed(base int64, rateBytesPerSec int) int64 {
	h := uint64(base) ^ uint64(rateBytesPerSec)*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int64(h)
}

// sweepConfig builds the configuration for one rate point, or an error if
// the rate does not fit the ring MTU model.
func sweepConfig(protocol Protocol, rateBytesPerSec int, dur sim.Time, seed int64) (Config, error) {
	var cfg Config
	if protocol == ProtocolStockUnix {
		cfg = StockUnix(rateBytesPerSec)
	} else {
		cfg = TestCaseB()
		cfg.PacketBytes = rateBytesPerSec * int(cfg.Interval) / int(sim.Second)
		cfg.Name = fmt.Sprintf("ctmsp-%dKBps", rateBytesPerSec/1000)
	}
	if cfg.PacketBytes < 64 {
		cfg.PacketBytes = 64
	}
	if cfg.PacketBytes > 3800 {
		return cfg, fmt.Errorf("core: rate %d needs packets beyond the ring MTU model", rateBytesPerSec)
	}
	cfg.Duration = dur
	cfg.Insertions = false
	base := seed
	if base == 0 {
		base = cfg.Seed
	}
	cfg.Seed = SweepSeed(base, rateBytesPerSec)
	return cfg, nil
}

// RateSweep runs a protocol at each rate and reports the outcomes. The
// stream keeps the VCA's 12 ms interval; the packet size scales with the
// rate (as the paper's own 16 KB/s vs 150 KB/s tests did).
//
// The points are independent simulations — each gets a seed derived with
// SweepSeed from the sweep's base seed (the default scenario seed when
// seed is zero) — so they fan out across all cores via lab.Pool. Results
// come back in rate order regardless of which point finishes first, and
// the output is bit-for-bit identical to a serial sweep.
func RateSweep(protocol Protocol, rates []int, dur sim.Time, seed int64) ([]SweepPoint, error) {
	// Validate every point up front so a bad rate fails before any
	// simulation time is spent; points before the first bad rate still
	// run, matching the old serial semantics.
	n := len(rates)
	cfgs := make([]Config, n)
	var cfgErr error
	for i, rate := range rates {
		cfg, err := sweepConfig(protocol, rate, dur, seed)
		if err != nil {
			cfgErr, n = err, i
			break
		}
		cfgs[i] = cfg
	}

	out := make([]SweepPoint, n)
	errs := make([]error, n)
	lab.New(0).Run(n, func(i int) {
		r, err := Run(cfgs[i])
		if err != nil {
			errs[i] = err
			return
		}
		out[i] = SweepPoint{
			RateBytesPerSec: rates[i],
			Delivered:       r.DeliveredFraction(),
			Glitches:        r.Playout.Glitches,
			TxCPU:           r.TxCPUUtil,
			RxCPU:           r.RxCPUUtil,
			Sustainable:     sustainable(r),
		}
	})
	for i, err := range errs {
		if err != nil {
			return out[:i], err
		}
	}
	if cfgErr != nil {
		return out, cfgErr
	}
	return out, nil
}

// Crossover reports the highest sustainable rate in a sweep (0 if none).
// The scan is order-independent, so non-monotone sweeps — a sustainable
// point above an unsustainable one — still report the highest rate that
// carried the stream.
func Crossover(points []SweepPoint) int {
	best := 0
	for _, p := range points {
		if p.Sustainable && p.RateBytesPerSec > best {
			best = p.RateBytesPerSec
		}
	}
	return best
}

// runE15 sweeps both paths across the rate axis: the stock UNIX model
// must fall over somewhere between the paper's 16 KB/s (works) and
// 150 KB/s (fails); CTMSP must carry 150 KB/s and beyond. The two sweeps
// are themselves independent, so they dispatch concurrently; each fans
// its rate points across the pool.
func runE15(s Scale) *Comparison {
	c := &Comparison{}
	dur := 45 * sim.Second
	if s.Duration > 0 && s.Duration < dur {
		dur = s.Duration
	}
	rates := []int{16_000, 48_000, 96_000, 150_000, 200_000, 250_000}

	var stock, ctmsp []SweepPoint
	errs := make([]error, 2)
	lab.New(2).Run(2, func(i int) {
		if i == 0 {
			stock, errs[0] = RateSweep(ProtocolStockUnix, rates, dur, s.Seed)
		} else {
			ctmsp, errs[1] = RateSweep(ProtocolCTMSP, rates, dur, s.Seed)
		}
	})
	if errs[0] != nil {
		c.addf("stock sweep", "-", false, "error: %v", errs[0])
		return c
	}
	if errs[1] != nil {
		c.addf("ctmsp sweep", "-", false, "error: %v", errs[1])
		return c
	}

	for i, rate := range rates {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"%3d KB/s: stock %.4f delivered / %d glitches (cpu %.0f%%/%.0f%%) | ctmsp %.4f / %d (cpu %.0f%%/%.0f%%)",
			rate/1000,
			stock[i].Delivered, stock[i].Glitches, 100*stock[i].TxCPU, 100*stock[i].RxCPU,
			ctmsp[i].Delivered, ctmsp[i].Glitches, 100*ctmsp[i].TxCPU, 100*ctmsp[i].RxCPU))
	}

	stockMax := Crossover(stock)
	ctmspMax := Crossover(ctmsp)
	c.addf("stock path sustainable at 16 KB/s", "works extremely well",
		stock[0].Sustainable, "%t", stock[0].Sustainable)
	c.addf("stock path sustainable at 150 KB/s", "failed completely",
		!stock[3].Sustainable, "%t", stock[3].Sustainable)
	c.addf("stock path capacity crossover", "between 16 and 150 KB/s",
		stockMax >= 16_000 && stockMax < 150_000, "%d KB/s", stockMax/1000)
	c.addf("CTMSP sustainable at 150 KB/s", "the design goal",
		ctmsp[3].Sustainable, "%t", ctmsp[3].Sustainable)
	c.addf("CTMSP capacity exceeds stock's", "the point of the paper",
		ctmspMax > stockMax, "%d vs %d KB/s", ctmspMax/1000, stockMax/1000)
	return c
}
