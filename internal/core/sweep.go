package core

import (
	"fmt"

	"repro/internal/sim"
)

// SweepPoint is one rate's outcome for one path.
type SweepPoint struct {
	RateBytesPerSec int
	Delivered       float64
	Glitches        uint64
	TxCPU, RxCPU    float64
	Sustainable     bool
}

// sustainable is the bar for "carries the stream": essentially lossless
// and not glitching more than once a minute.
func sustainable(r *Results) bool {
	perMin := float64(r.Playout.Glitches) / (r.Elapsed.Seconds() / 60)
	return r.DeliveredFraction() > 0.999 && perMin <= 1
}

// RateSweep runs a protocol at each rate and reports the outcomes. The
// stream keeps the VCA's 12 ms interval; the packet size scales with the
// rate (as the paper's own 16 KB/s vs 150 KB/s tests did).
func RateSweep(protocol Protocol, rates []int, dur sim.Time, seed int64) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, rate := range rates {
		var cfg Config
		if protocol == ProtocolStockUnix {
			cfg = StockUnix(rate)
		} else {
			cfg = TestCaseB()
			cfg.PacketBytes = rate * int(cfg.Interval) / int(sim.Second)
			cfg.Name = fmt.Sprintf("ctmsp-%dKBps", rate/1000)
		}
		if cfg.PacketBytes < 64 {
			cfg.PacketBytes = 64
		}
		if cfg.PacketBytes > 3800 {
			return out, fmt.Errorf("core: rate %d needs packets beyond the ring MTU model", rate)
		}
		cfg.Duration = dur
		cfg.Insertions = false
		if seed != 0 {
			cfg.Seed = seed
		}
		r, err := Run(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, SweepPoint{
			RateBytesPerSec: rate,
			Delivered:       r.DeliveredFraction(),
			Glitches:        r.Playout.Glitches,
			TxCPU:           r.TxCPUUtil,
			RxCPU:           r.RxCPUUtil,
			Sustainable:     sustainable(r),
		})
	}
	return out, nil
}

// Crossover reports the highest sustainable rate in a sweep (0 if none).
func Crossover(points []SweepPoint) int {
	best := 0
	for _, p := range points {
		if p.Sustainable && p.RateBytesPerSec > best {
			best = p.RateBytesPerSec
		}
	}
	return best
}

// runE15 sweeps both paths across the rate axis: the stock UNIX model
// must fall over somewhere between the paper's 16 KB/s (works) and
// 150 KB/s (fails); CTMSP must carry 150 KB/s and beyond.
func runE15(s Scale) *Comparison {
	c := &Comparison{}
	dur := 45 * sim.Second
	if s.Duration > 0 && s.Duration < dur {
		dur = s.Duration
	}
	rates := []int{16_000, 48_000, 96_000, 150_000, 200_000, 250_000}

	stock, err := RateSweep(ProtocolStockUnix, rates, dur, s.Seed)
	if err != nil {
		c.addf("stock sweep", "-", false, "error: %v", err)
		return c
	}
	ctmsp, err := RateSweep(ProtocolCTMSP, rates, dur, s.Seed)
	if err != nil {
		c.addf("ctmsp sweep", "-", false, "error: %v", err)
		return c
	}

	for i, rate := range rates {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"%3d KB/s: stock %.4f delivered / %d glitches (cpu %.0f%%/%.0f%%) | ctmsp %.4f / %d (cpu %.0f%%/%.0f%%)",
			rate/1000,
			stock[i].Delivered, stock[i].Glitches, 100*stock[i].TxCPU, 100*stock[i].RxCPU,
			ctmsp[i].Delivered, ctmsp[i].Glitches, 100*ctmsp[i].TxCPU, 100*ctmsp[i].RxCPU))
	}

	stockMax := Crossover(stock)
	ctmspMax := Crossover(ctmsp)
	c.addf("stock path sustainable at 16 KB/s", "works extremely well",
		stock[0].Sustainable, "%t", stock[0].Sustainable)
	c.addf("stock path sustainable at 150 KB/s", "failed completely",
		!stock[3].Sustainable, "%t", stock[3].Sustainable)
	c.addf("stock path capacity crossover", "between 16 and 150 KB/s",
		stockMax >= 16_000 && stockMax < 150_000, "%d KB/s", stockMax/1000)
	c.addf("CTMSP sustainable at 150 KB/s", "the design goal",
		ctmsp[3].Sustainable, "%t", ctmsp[3].Sustainable)
	c.addf("CTMSP capacity exceeds stock's", "the point of the paper",
		ctmspMax > stockMax, "%d vs %d KB/s", ctmspMax/1000, stockMax/1000)
	return c
}
