package core

import (
	"fmt"
	"strings"

	"repro/internal/ctmsp"
	"repro/internal/measure"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Experiment is one row of the reproduction matrix: a paper claim, the
// code that regenerates it, and the comparison.
type Experiment struct {
	ID     string
	Source string // table/figure/section in the paper
	Title  string
	Run    func(scale Scale) *Comparison
}

// Scale shrinks experiment durations for tests and benchmarks.
type Scale struct {
	// Duration replaces the experiment's full duration when nonzero.
	Duration sim.Time
	// Seed overrides the default seed when nonzero.
	Seed int64
}

func (s Scale) apply(c Config) Config {
	if s.Duration > 0 {
		c.Duration = s.Duration
	}
	if s.Seed != 0 {
		c.Seed = s.Seed
	}
	return c
}

// Metric is one paper-vs-measured number.
type Metric struct {
	Name     string
	Paper    string
	Measured string
	// OK reports whether the measured value matches the paper's shape
	// claim within the experiment's tolerance.
	OK bool
}

// Comparison is an experiment's outcome.
type Comparison struct {
	Metrics []Metric
	// Figures holds rendered histograms, keyed by figure name.
	Figures map[string]string
	// Notes are free-form observations.
	Notes []string
}

func (c *Comparison) add(name, paper, measured string, ok bool) {
	c.Metrics = append(c.Metrics, Metric{Name: name, Paper: paper, Measured: measured, OK: ok})
}

func (c *Comparison) addf(name, paper string, ok bool, format string, args ...any) {
	c.add(name, paper, fmt.Sprintf(format, args...), ok)
}

// AllOK reports whether every metric matched.
func (c *Comparison) AllOK() bool {
	for _, m := range c.Metrics {
		if !m.OK {
			return false
		}
	}
	return true
}

// Render draws the comparison as a table.
func (c *Comparison) Render() string {
	var b strings.Builder
	for _, m := range c.Metrics {
		mark := "ok"
		if !m.OK {
			mark = "MISMATCH"
		}
		fmt.Fprintf(&b, "  %-44s paper: %-28s measured: %-28s [%s]\n", m.Name, m.Paper, m.Measured, mark)
	}
	for _, n := range c.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func within(v, lo, hi float64) bool { return v >= lo && v <= hi }

// Experiments returns the full reproduction matrix (DESIGN.md §4).
func Experiments() []Experiment {
	return []Experiment{
		{ID: "E1", Source: "§1", Title: "stock UNIX transport: 16 KB/s works, 150 KB/s fails", Run: runE1},
		{ID: "E2", Source: "§2", Title: "copy-count accounting per data path", Run: runE2},
		{ID: "E3", Source: "Fig 5-2", Title: "Test B histogram 6: handler entry → pre-transmit", Run: runE3},
		{ID: "E4", Source: "Fig 5-3", Title: "Test A histogram 7: transmitter → receiver", Run: runE4},
		{ID: "E5", Source: "Fig 5-4", Title: "Test B histogram 7: transmitter → receiver", Run: runE5},
		{ID: "E6", Source: "§5.3", Title: "histograms 1–5 and case A histogram 6", Run: runE6},
		{ID: "E7", Source: "§4", Title: "MAC-frame monitoring overhead", Run: runE7},
		{ID: "E8", Source: "§5/§6", Title: "Ring Purge loss and recovery accounting", Run: runE8},
		{ID: "E9", Source: "§6", Title: "buffer sizing: <25 KB at 150 KB/s, worst case 40 ms", Run: runE9},
		{ID: "E10", Source: "§5.2", Title: "measurement-tool validation", Run: runE10},
		{ID: "E11", Source: "§3/§4", Title: "ablations of the prototype's design choices", Run: runE11},
		{ID: "E12", Source: "§2", Title: "pointer-transfer extension", Run: runE12},
		{ID: "E13", Source: "§5", Title: "driver critical-section bug found by TAP", Run: runE13},
		{ID: "E14", Source: "fn 5", Title: "a router that keeps up with the CTMS rate", Run: runE14},
		{ID: "E15", Source: "§1 (sweep)", Title: "rate sweep: capacity crossover of stock vs CTMSP", Run: runE15},
		{ID: "E16", Source: "title", Title: "what-if: the 16 Mbit Token Ring", Run: runE16},
		{ID: "E17", Source: "§3 (sessions)", Title: "multi-stream admission: the knee, the free-for-all, the shed", Run: runE17},
		{ID: "E18", Source: "§1 (scale)", Title: "K-ring backbone: per-hop admission, sharded engine oracle", Run: runE18},
		{ID: "E19", Source: "§1 (population)", Title: "population workload: Zipf skew, Poisson churn, distributional latency", Run: runE19},
		{ID: "E20", Source: "§1 (mesh)", Title: "metro mesh: compiled routing, pooled forwarding, per-link windows", Run: runE20},
	}
}

// ExperimentByID finds one experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func mustRun(cfg Config) *Results {
	r, err := Run(cfg)
	if err != nil {
		panic("core: experiment run failed: " + err.Error())
	}
	return r
}

func runE1(s Scale) *Comparison {
	c := &Comparison{}
	lo := StockUnix(16_000)
	lo.Duration = 2 * sim.Minute
	rlo := mustRun(s.apply(lo))
	hi := StockUnix(150_000)
	hi.Duration = 2 * sim.Minute
	rhi := mustRun(s.apply(hi))

	// "Extremely well" tolerates at most a glitch every half hour.
	glitchBudget := uint64(rlo.Elapsed/(30*sim.Minute)) + 1
	c.addf("16 KB/s delivered fraction", "works extremely well",
		rlo.DeliveredFraction() > 0.999 && rlo.Playout.Glitches < glitchBudget,
		"%.4f, %d glitches in %v", rlo.DeliveredFraction(), rlo.Playout.Glitches, rlo.Elapsed)
	c.addf("150 KB/s delivered fraction", "failed completely",
		rhi.DeliveredFraction() < 0.95 || rhi.Playout.Glitches > 50,
		"%.4f, %d glitches, starved %v", rhi.DeliveredFraction(), rhi.Playout.Glitches, rhi.Playout.StarvedTime)
	c.addf("150 KB/s relay CPU (tx/rx)", "CPU cannot maintain the rate",
		rhi.TxCPUUtil > 0.6 || rhi.RxCPUUtil > 0.6,
		"%.0f%% / %.0f%%", 100*rhi.TxCPUUtil, 100*rhi.RxCPUUtil)
	return c
}

func runE2(_ Scale) *Comparison {
	c := &Comparison{}
	stock := CopiesFor(StockUnix(150_000))
	c.addf("stock path data movements", "six (four by CPU)",
		stock.Total() == 6 && stock.CPUCopies() == 4,
		"%d total, %d CPU", stock.Total(), stock.CPUCopies())
	d2d := CopiesFor(TestCaseA())
	c.addf("driver-to-driver CPU copies", "eliminates two CPU copies",
		stock.CPUCopies()-d2d.CPUCopies() == 2,
		"%d CPU (was %d)", d2d.CPUCopies(), stock.CPUCopies())
	ptr := TestCaseA()
	ptr.PointerTransfer = true
	ptr.RxCopyToMbufs = false
	ptr.RxCopyToVCA = false
	lptr := CopiesFor(ptr)
	c.addf("pointer transfer CPU copies", "all CPU copies eliminated",
		lptr.CPUCopies() == 0, "%d CPU, %d DMA", lptr.CPUCopies(), lptr.DMACopies())
	return c
}

func runE3(s Scale) *Comparison {
	cfg := TestCaseB()
	r := mustRun(s.apply(cfg))
	h6 := r.Hists.H[measure.H6EntryToPreTransmit]
	c := &Comparison{Figures: map[string]string{
		"Figure 5-2 (Test B, histogram 6)": h6.Render(figOpts()),
	}}
	near2600 := h6.FractionNear(2600, 500)
	near9400 := h6.FractionNear(9400, 500)
	between := h6.FractionWithin(2800, 9300) - h6.FractionWithin(8900, 9300) - h6.FractionWithin(2800, 3100)
	peaks := h6.Peaks(0.01)
	c.addf("bimodal", "two peaks (2600, 9400)", len(peaks) >= 2, "peaks at %v", peaks)
	c.addf("fraction within 500 µs of 2600", "68%", within(near2600, 0.55, 0.85), "%.1f%%", 100*near2600)
	c.addf("fraction within 500 µs of 9400", "15%", within(near9400, 0.06, 0.25), "%.1f%%", 100*near9400)
	c.addf("fraction between 2800–9300", "16.5%", between > 0.05, "%.1f%%", 100*between)
	c.addf("first-peak mean (copy + code)", "2600 µs = 2000 copy + 600 code",
		within(h6.Mode(), 2400, 2800), "%.0f µs", h6.Mode())
	return c
}

func runE4(s Scale) *Comparison {
	cfg := TestCaseA()
	r := mustRun(s.apply(cfg))
	h7 := r.Hists.H[measure.H7TxToRx]
	c := &Comparison{Figures: map[string]string{
		"Figure 5-3 (Test A, histogram 7)": h7.Render(figOpts()),
	}}
	c.addf("minimum latency", "10740 µs", within(h7.Min(), 10600, 10900), "%.0f µs", h7.Min())
	c.addf("mean", "10894 µs", within(h7.Mean(), 10750, 11050), "%.0f µs", h7.Mean())
	conc := h7.FractionNear(h7.Mean(), 160)
	c.addf("fraction within 160 µs of mean", "98%", conc > 0.90, "%.1f%%", 100*conc)
	c.addf("right tail extent", "to 14600 µs", h7.Max() < 17000, "%.0f µs", h7.Max())
	c.addf("loss", "none", r.RxStats.Lost == 0, "%d", r.RxStats.Lost)
	return c
}

func runE5(s Scale) *Comparison {
	cfg := TestCaseB()
	r := mustRun(s.apply(cfg))
	h7 := r.Hists.H[measure.H7TxToRx]
	c := &Comparison{Figures: map[string]string{
		"Figure 5-4 (Test B, histogram 7)": h7.Render(figOpts()),
	}}
	peak := h7.FractionWithin(10650, 11060)
	mid := h7.FractionWithin(11060, 15000)
	tail := h7.FractionWithin(15000, 40050)
	out := h7.CountWithin(100_000, 200_000)
	c.addf("minimum latency", "10750 µs", within(h7.Min(), 10600, 10950), "%.0f µs", h7.Min())
	c.addf("fraction near 10900 peak", "76%", within(peak, 0.6, 0.9), "%.1f%%", 100*peak)
	c.addf("fraction 11060–15000", "21.5%", within(mid, 0.08, 0.35), "%.1f%%", 100*mid)
	c.addf("fraction 15000–40050", "2.49%", tail < 0.08, "%.2f%%", 100*tail)
	c.addf("points at 120–130 ms (ring insertions)", "2 in 117 min",
		true, "%d (insertions seen: %d)", out, r.Ring.InsertionSeen)
	c.Notes = append(c.Notes,
		fmt.Sprintf("purges=%d purgeLost=%d lostPackets=%d", r.Ring.PurgeCount, r.Ring.PurgeLost, r.RxStats.Lost))
	return c
}

func runE6(s Scale) *Comparison {
	ra := mustRun(s.apply(TestCaseA()))
	rb := mustRun(s.apply(TestCaseB()))
	c := &Comparison{Figures: map[string]string{}}
	h1 := ra.Hists.H[measure.H1InterIRQ]
	c.addf("H1 inter-IRQ (PC/AT view)", "12 ms ± tool error (±120 µs)",
		within(h1.Mean(), 11990, 12010) && h1.Min() > 11860 && h1.Max() < 12140,
		"mean %.0f, spread [%.0f, %.0f]", h1.Mean(), h1.Min(), h1.Max())
	h1t := ra.Truth.H[measure.H1InterIRQ]
	c.addf("H1 inter-IRQ (logic analyzer)", "12 ms exactly (±500 ns)",
		h1t.Min() == 12000 && h1t.Max() == 12000, "[%.1f, %.1f]", h1t.Min(), h1t.Max())
	h5a := ra.Truth.H[measure.H5IRQToEntry]
	h5b := rb.Truth.H[measure.H5IRQToEntry]
	c.addf("H5 IRQ→entry worst case", "≤440 µs under load",
		h5a.Max() <= 700 && h5b.Max() <= 900, "A max %.0f, B max %.0f", h5a.Max(), h5b.Max())
	h6a := ra.Truth.H[measure.H6EntryToPreTransmit]
	c.addf("case A histogram 6", "unimodal, easily explained",
		h6a.FractionNear(2600, 500) > 0.97, "%.1f%% at 2600±500", 100*h6a.FractionNear(2600, 500))
	for _, pair := range []struct {
		name string
		h    measure.HistogramID
	}{{"H2", measure.H2InterEntry}, {"H3", measure.H3InterPreTransmit}, {"H4", measure.H4InterRxClassified}} {
		h := ra.Truth.H[pair.h]
		c.addf(pair.name+" mean (case A)", "12 ms", within(h.Mean(), 11950, 12050), "%.0f µs", h.Mean())
	}
	return c
}

func runE7(s Scale) *Comparison {
	c := &Comparison{}
	dur := 2 * sim.Minute
	if s.Duration > 0 {
		dur = s.Duration
	}
	seed := int64(7) // historical default, kept so baseline E7 numbers are stable
	if s.Seed != 0 {
		seed = s.Seed
	}
	for _, util := range []float64{0.002, 0.010} {
		sched := sim.NewScheduler()
		rcfg := ring.DefaultConfig()
		r := ring.New(sched, rcfg)
		mon := r.Attach("monitor")
		for i := 0; i < 70; i++ {
			r.Attach("pop")
		}
		g := workload.NewMACGen(r, mon, util, sim.NewRNG(seed))
		sched.RunUntil(dur)
		g.Stop()
		perSec := float64(g.Frames()) / dur.Seconds()
		want := util * 4_000_000 / 8 / 20
		label := fmt.Sprintf("MAC interrupts/s at %.1f%% ring load", 100*util)
		paper := "50/s at 0.2%, 250/s at 1.0%"
		c.addf(label, paper, within(perSec, want*0.8, want*1.2), "%.0f/s", perSec)
	}
	return c
}

func runE8(s Scale) *Comparison {
	cfg := TestCaseB()
	cfg.Duration = 60 * sim.Second
	cfg.Insertions = false
	// +7 ms into a cycle a CTMSP frame is on the wire, so the first
	// purge of the burst destroys it deterministically.
	cfg.ForceInsertionAt = 20*sim.Second + 7*sim.Millisecond
	r := mustRun(s.apply(cfg))
	c := &Comparison{}
	c.addf("purge burst per insertion", "on the order of 10 back to back",
		r.Ring.PurgeCount >= 10 && r.Ring.PurgeCount <= 16, "%d", r.Ring.PurgeCount)
	c.addf("outage per insertion", "≈120–130 ms",
		true, "%d purges × 10 ms", r.Ring.PurgeCount)
	c.addf("packets lost to the burst", "small, recoverable by accounting",
		r.RxStats.Lost >= 1 && r.RxStats.Lost <= 20, "%d (gaps %d)", r.RxStats.Lost, r.RxStats.Gaps)
	c.addf("duplicates without purge interrupt", "0",
		r.RxStats.Duplicates == 0, "%d", r.RxStats.Duplicates)

	// Hypothetical purge-interrupt adapter recovers the loss.
	cfg2 := cfg
	cfg2.PurgeInterrupt = true
	r2 := mustRun(s.apply(cfg2))
	c.addf("with purge-interrupt adapter: lost", "recovered by retransmit",
		r2.RxStats.Lost < r.RxStats.Lost, "%d lost, %d retransmits", r2.RxStats.Lost, r2.TxDriver.Retransmits)
	return c
}

func runE9(s Scale) *Comparison {
	cfg := TestCaseB()
	cfg.Duration = 3 * sim.Minute
	cfg.Insertions = false
	cfg.ForceInsertionAt = 90 * sim.Second // include the worst outage
	cfg.PlayoutPrebuffer = 130 * sim.Millisecond
	r := mustRun(s.apply(cfg))
	c := &Comparison{}
	h7 := r.Truth.H[measure.H7TxToRx]
	// The paper's 40 ms worst case EXCLUDES the two 120–130 ms ring
	// insertion points, which it accounts for separately. Do the same:
	// everything outside a small insertion-affected set must be ≤ 40 ms.
	beyond := h7.N() - h7.CountWithin(0, 40_050)
	c.addf("worst case tx→rx excluding insertions", "40 ms",
		beyond <= 20, "%d of %d samples above 40 ms (insertion outage)", beyond, h7.N())
	c.addf("insertion outliers", "120–130 ms class",
		h7.Max() >= 90_000 && h7.Max() <= 180_000, "max %.0f µs", h7.Max())
	c.addf("buffer space needed at 150 KB/s", "under 25 KB",
		r.Playout.MaxBufferBytes < 25_000, "%d B high-water", r.Playout.MaxBufferBytes)
	c.addf("glitch-free through an insertion", "yes with recovery code",
		r.Playout.Glitches <= 1, "%d glitches", r.Playout.Glitches)
	return c
}

func runE10(s Scale) *Comparison {
	c := &Comparison{}
	// Validate the PC/AT tool exactly as §5.2.3 did: feed it the
	// logic-analyzer-verified 12 ms source and look at the spread.
	sched := sim.NewScheduler()
	pcat := measure.NewPCAT(sched, 42)
	pcat.Wire(measure.P1VCAIRQ, 0)
	la := measure.NewLogicAnalyzer(sched)
	n := 5000
	if s.Duration > 0 {
		n = int(s.Duration / (12 * sim.Millisecond))
	}
	for i := 0; i < n; i++ {
		num := uint32(i)
		sched.At(sim.Time(i)*12*sim.Millisecond, "pulse", func() {
			la.Record(measure.P1VCAIRQ, num)
			pcat.Record(measure.P1VCAIRQ, num)
		})
	}
	sched.RunUntil(sim.Time(n) * 12 * sim.Millisecond)
	pcat.Stop()

	hLA := measure.InterOccurrence(la.Samples(measure.P1VCAIRQ), 2, "logic analyzer")
	hPC := measure.InterOccurrence(pcat.Samples(measure.P1VCAIRQ), 2, "pcat")
	c.addf("VCA source (logic analyzer)", "12 ms, no detectable variation",
		hLA.Min() == 12000 && hLA.Max() == 12000, "[%.1f, %.1f] µs", hLA.Min(), hLA.Max())
	spread := (hPC.Max() - hPC.Min()) / 2
	c.addf("PC/AT tool spread on a perfect source", "±120 µs",
		spread <= 130, "±%.0f µs", spread)
	c.addf("PC/AT worst-case loop service", "60 µs",
		true, "%v (modeled)", measure.PCATLoopMax)
	c.addf("pseudo-device clock granularity", "122 µs",
		true, "%v (modeled, perturbs the system)", measure.PseudoDevClockGranularity)
	return c
}

func runE11(s Scale) *Comparison {
	c := &Comparison{}
	base := TestCaseB()
	base.Duration = 90 * sim.Second
	base.Insertions = false
	rBase := mustRun(s.apply(base))
	h6base := rBase.Truth.H[measure.H6EntryToPreTransmit]

	// (a) System memory for the fixed DMA buffers: the CPU copy is
	// cheaper but the adapter's DMA now steals CPU cycles.
	sysmem := base
	sysmem.Name = "ablation-sysmem"
	sysmem.TxIOChannelMemory = false
	rSys := mustRun(s.apply(sysmem))
	h6sys := rSys.Truth.H[measure.H6EntryToPreTransmit]
	c.addf("IO Channel Memory copy cost", "1 µs/byte → 2600 µs send path",
		within(h6base.Mode(), 2400, 2800), "%.0f µs mode", h6base.Mode())
	c.addf("system-memory buffers: send path", "faster copy but CPU cycle steal",
		h6sys.Mode() < h6base.Mode(), "%.0f µs mode", h6sys.Mode())
	// Quantify the cycle steal directly, as §4 describes it: a CPU task
	// runs while the adapter DMAs a stream of frames into each memory.
	slowSys := dmaInterferenceProbe(rtpc.SystemMemory)
	slowIOCh := dmaInterferenceProbe(rtpc.IOChannelMemory)
	c.addf("DMA into system memory: CPU slowdown", "interferes with CPU memory access",
		slowSys > 1.1, "%.2fx", slowSys)
	c.addf("DMA into IO Channel Memory: CPU slowdown", "no interference (separate bus)",
		slowIOCh < 1.01, "%.2fx", slowIOCh)

	// (b) No driver priority: CTMSP queues behind ARP/IP.
	noprio := base
	noprio.Name = "ablation-no-driver-priority"
	noprio.DriverPriority = false
	rNP := mustRun(s.apply(noprio))
	h6np := rNP.Truth.H[measure.H6EntryToPreTransmit]
	c.addf("without driver priority", "CTMSP waits behind other packets",
		h6np.Quantile(0.99) >= h6base.Quantile(0.99), "p99 %.0f vs %.0f µs", h6np.Quantile(0.99), h6base.Quantile(0.99))

	// (c) No ring priority: CTMSP competes for the token.
	noring := base
	noring.Name = "ablation-no-ring-priority"
	noring.RingPriority = false
	rNR := mustRun(s.apply(noring))
	h7nr := rNR.Truth.H[measure.H7TxToRx]
	h7base := rBase.Truth.H[measure.H7TxToRx]
	c.addf("without ring priority", "more wire-access delay under load",
		h7nr.Mean() >= h7base.Mean()-20, "H7 mean %.0f vs %.0f µs", h7nr.Mean(), h7base.Mean())

	// (d) Per-packet header computation (the IP behaviour).
	nohdr := base
	nohdr.Name = "ablation-per-packet-header"
	nohdr.PrecomputeHeader = false
	rNH := mustRun(s.apply(nohdr))
	h6nh := rNH.Truth.H[measure.H6EntryToPreTransmit]
	c.addf("per-packet ring header", "adds delay and CPU for no reason",
		h6nh.Mode() > h6base.Mode()+80, "mode %.0f vs %.0f µs", h6nh.Mode(), h6base.Mode())
	return c
}

func runE12(s Scale) *Comparison {
	c := &Comparison{}
	base := TestCaseA()
	base.Duration = 90 * sim.Second
	rBase := mustRun(s.apply(base))
	ptr := base
	ptr.Name = "pointer-transfer"
	ptr.PointerTransfer = true
	rPtr := mustRun(s.apply(ptr))
	h6b := rBase.Truth.H[measure.H6EntryToPreTransmit]
	h6p := rPtr.Truth.H[measure.H6EntryToPreTransmit]
	c.addf("send-path latency", "copy elimination removes ≈2000 µs",
		h6b.Mode()-h6p.Mode() > 1500, "%.0f → %.0f µs", h6b.Mode(), h6p.Mode())
	c.addf("transmitter CPU", "all CPU copies eliminated",
		rPtr.TxCPUUtil < rBase.TxCPUUtil, "%.1f%% → %.1f%%", 100*rBase.TxCPUUtil, 100*rPtr.TxCPUUtil)
	c.addf("stream integrity", "unchanged",
		rPtr.RxStats.Lost == 0 && rPtr.Playout.Glitches == 0,
		"lost %d, glitches %d", rPtr.RxStats.Lost, rPtr.Playout.Glitches)
	return c
}

// runE13 reproduces §5's debugging story: the original driver manipulated
// its output queue without protecting against the transmit-complete
// interrupt, producing out-of-order packets that the TAP monitor caught;
// protecting the critical sections made them "completely disappear".
func runE13(s Scale) *Comparison {
	c := &Comparison{}
	run := func(buggy bool) (*Results, int) {
		cfg := TestCaseB()
		cfg.Duration = 2 * sim.Minute
		cfg.Insertions = false
		// A ring-insertion outage backs the driver queue up ~10 deep,
		// which is the interleaving the race needs.
		cfg.ForceInsertionAt = 30 * sim.Second
		cfg.DriverRaceBug = buggy
		r := mustRun(s.apply(cfg))
		ooo, _ := r.TapMonitor.SequenceCheck(func(capture []byte) (uint32, bool) {
			h, err := ctmspDecode(capture)
			if err != nil {
				return 0, false
			}
			return h, true
		})
		return r, ooo
	}
	rBug, oooBug := run(true)
	rFix, oooFix := run(false)
	c.addf("buggy driver: out-of-order on the wire", "observed via TAP",
		oooBug > 0, "%d (receiver saw %d reordered)", oooBug, rBug.RxStats.Reordered)
	c.addf("protected driver: out-of-order", "completely disappeared",
		oooFix == 0 && rFix.RxStats.Reordered == 0, "%d", oooFix)
	c.addf("race occurrences in the buggy driver", "interleaving-dependent",
		rBug.TxDriver.QueueRaces > 0, "%d", rBug.TxDriver.QueueRaces)
	return c
}

// dmaInterferenceProbe measures how much a continuous DMA stream into the
// given memory slows a fixed CPU workload.
func dmaInterferenceProbe(kind rtpc.MemoryKind) float64 {
	run := func(withDMA bool) sim.Time {
		sched := sim.NewScheduler()
		cpu := rtpc.NewCPU(sched, "probe", rtpc.DefaultCostModel().DMASysInterference)
		if withDMA {
			dma := rtpc.NewDMA(cpu, rtpc.DefaultCostModel(), "adapter")
			var feed func()
			feed = func() { dma.Transfer(2000, kind, "rx", feed) }
			feed()
		}
		var doneAt sim.Time
		cpu.Submit(1, "work", []rtpc.Seg{rtpc.Do("compute", 50*sim.Millisecond)}, func() {
			doneAt = sched.Now()
			sched.Stop()
		})
		sched.Run()
		return doneAt
	}
	base := run(false)
	loaded := run(true)
	return float64(loaded) / float64(base)
}

// ctmspDecode extracts a packet number from a TAP capture prefix if (and
// only if) the bytes are a CTMSP header.
func ctmspDecode(capture []byte) (uint32, error) {
	h, err := ctmsp.DecodeHeader(capture)
	if err != nil {
		return 0, err
	}
	return h.PacketNum, nil
}

func figOpts() stats.RenderOptions {
	return stats.RenderOptions{Width: 56, MaxBins: 36, ClipHi: 45000, LogScale: true}
}
