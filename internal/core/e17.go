package core

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/session"
	"repro/internal/sim"
)

// E17: the multi-stream question the paper raises but the prototype never
// answered. §3 argues a CTMS needs per-connection bandwidth guarantees; a
// guarantee is only real if something refuses the stream that would break
// it. This experiment sweeps the number of concurrent CTMSP streams
// offered to one 4 Mbit/s ring and shows the admission controller's knee:
// the first K streams are admitted and stay glitch-bounded, the rest are
// rejected with an accounting of the budget they did not fit. Two extra
// points complete the story — a free-for-all ablation (admission off, all
// 16 streams run, the losers starve) and a forced station insertion at the
// knee (the outage shrinks capacity and the session sheds its lowest-class
// streams first).

// e17StreamBytes/e17Interval shape each offered stream: 500-byte packets
// every 12 ms ≈ 347 kbit/s on the wire (framing included), so the 0.90 ×
// 4 Mbit/s budget minus 5% background load fits nine of them.
const (
	e17StreamBytes = 500
	e17Interval    = 12 * sim.Millisecond
)

// e17Streams builds n identical streams with classes rotating
// background / standard / interactive, so shed order is observable.
func e17Streams(n int) []session.StreamSpec {
	specs := make([]session.StreamSpec, n)
	for i := range specs {
		specs[i] = session.StreamSpec{
			Name:        fmt.Sprintf("s%02d", i),
			PacketBytes: e17StreamBytes,
			Interval:    e17Interval,
			Class:       session.Class(i % 3),
		}
	}
	return specs
}

func runE17(s Scale) *Comparison {
	c := &Comparison{}
	dur := 20 * sim.Second
	if s.Duration > 0 && s.Duration < dur {
		dur = s.Duration
	}
	base := s.Seed
	if base == 0 {
		base = 1991
	}

	counts := []int{1, 2, 4, 6, 8, 10, 12, 14, 16}
	mkCfg := func(n int) session.Config {
		return session.Config{
			Name:           fmt.Sprintf("e17-%02d", n),
			Seed:           SweepSeed(base, n),
			Duration:       dur,
			BackgroundUtil: 0.05,
			Streams:        e17Streams(n),
		}
	}

	// Every point is an independent simulation with a pre-derived seed, so
	// the sweep fans out across the pool and stays byte-identical at any
	// parallelism. Index layout: points 0..len(counts)-1 are the sweep, the
	// next is the free-for-all ablation, the last the insertion run.
	n := len(counts) + 2
	out := make([]*session.Results, n)
	errs := make([]error, n)
	cfgs := make([]session.Config, n)
	for i, cnt := range counts {
		cfgs[i] = mkCfg(cnt)
	}
	ffa := mkCfg(16)
	ffa.Name = "e17-free-for-all"
	ffa.Seed = SweepSeed(base, 1000)
	ffa.DisableAdmission = true
	cfgs[len(counts)] = ffa
	ins := mkCfg(9)
	ins.Name = "e17-insertion"
	ins.Seed = SweepSeed(base, 2000)
	ins.ForceInsertionAt = dur/2 + 7*sim.Millisecond
	ins.PlayoutPrebuffer = 130 * sim.Millisecond
	cfgs[len(counts)+1] = ins

	lab.New(0).Run(n, func(i int) {
		out[i], errs[i] = session.Run(cfgs[i])
	})
	for i, err := range errs {
		if err != nil {
			c.addf(cfgs[i].Name, "-", false, "error: %v", err)
			return c
		}
	}

	// The knee: the largest admitted count anywhere in the sweep.
	knee := 0
	for _, r := range out[:len(counts)] {
		if r.Admitted > knee {
			knee = r.Admitted
		}
	}
	saturates := true
	rejectionsExplained := true
	rejectedSilent := false
	worstGlitch, worstStarved := 0.0, 0.0
	for i, r := range out[:len(counts)] {
		want := counts[i]
		if want > knee {
			want = knee
		}
		if r.Admitted != want || r.Rejected != counts[i]-want {
			saturates = false
		}
		for _, st := range r.Streams {
			if !st.Decision.Admitted {
				if st.Decision.Reason == "" {
					rejectionsExplained = false
				}
				if st.Sent != 0 {
					rejectedSilent = true
				}
			}
		}
		if g := r.WorstAdmittedGlitchRate(); g > worstGlitch {
			worstGlitch = g
		}
		if f := r.WorstAdmittedStarvedFraction(); f > worstStarved {
			worstStarved = f
		}
		c.Notes = append(c.Notes, fmt.Sprintf(
			"%2d offered: %d admitted %d rejected | worst glitch %.2f/min starved %.2f%% | ring util %.1f%%",
			counts[i], r.Admitted, r.Rejected,
			r.WorstAdmittedGlitchRate(), 100*r.WorstAdmittedStarvedFraction(), 100*r.RingUtilization))
	}

	c.addf("admitted-stream knee", "≈9 (3.4 Mbit/s budget / 347 kbit/s per stream)",
		knee >= 8 && knee <= 11, "%d streams", knee)
	c.addf("admitted = min(offered, knee) at every point", "first come, first reserved",
		saturates, "%t", saturates)
	c.addf("over-budget streams rejected with accounting", "guarantee refused, not broken",
		rejectionsExplained && !rejectedSilent, "explained=%t silent-senders=%t", rejectionsExplained, rejectedSilent)
	c.addf("worst admitted glitch rate across sweep", "bounded (≤1/min)",
		worstGlitch <= 1.0, "%.2f/min", worstGlitch)
	c.addf("worst admitted starvation across sweep", "≈0 (budget honored)",
		worstStarved <= 0.01, "%.2f%%", 100*worstStarved)

	// Ablation: with admission off, 16 streams offer ≈5.6 Mbit/s to a
	// 4 Mbit/s ring; the streams that cannot win the token drain their
	// playout buffers once and starve for the rest of the run.
	rf := out[len(counts)]
	c.addf("free-for-all: all 16 streams run", "no admission, no refusal",
		rf.Admitted == 16 && rf.Rejected == 0, "%d admitted", rf.Admitted)
	c.addf("free-for-all: worst starvation", "losers starve (≫ admitted sweep)",
		rf.WorstAdmittedStarvedFraction() >= 0.5,
		"%.1f%% of the run", 100*rf.WorstAdmittedStarvedFraction())

	// Degradation: a station insertion (≈10 back-to-back purges, 120–130 ms
	// outage) at a ring running at its admitted knee. The penalty shrinks
	// the budget past the reservations and the session sheds lowest-class
	// streams first; survivors ride the outage on the 130 ms prebuffer.
	ri := out[len(counts)+1]
	minSurvivor, maxShed := session.ClassInteractive, session.ClassBackground
	for _, st := range ri.Streams {
		if !st.Decision.Admitted {
			continue
		}
		if st.Shed {
			if st.Spec.Class > maxShed {
				maxShed = st.Spec.Class
			}
		} else if st.Spec.Class < minSurvivor {
			minSurvivor = st.Spec.Class
		}
	}
	c.addf("insertion at the knee: streams shed", "capacity loss forces degradation",
		ri.ShedN >= 1 && ri.ShedN < ri.Admitted, "%d of %d", ri.ShedN, ri.Admitted)
	c.addf("shed order honors class", "background first, interactive last",
		ri.ShedN == 0 || maxShed <= minSurvivor,
		"worst shed class %v, best surviving %v", maxShed, minSurvivor)
	c.addf("survivors ride out the outage", "prebuffer absorbs 120–130 ms",
		ri.WorstAdmittedGlitchRate() <= 3.0, "%.2f glitches/min worst", ri.WorstAdmittedGlitchRate())
	c.Notes = append(c.Notes, fmt.Sprintf(
		"insertion run: purges=%d shed=%d reserved(end)=%d bits/s",
		ri.Ring.PurgeCount, ri.ShedN, ri.ReservedBitsEnd))
	return c
}
