// Package core assembles the paper's experiments: it builds the machines,
// ring, protocol stacks, measurement tools and background workloads for a
// scenario described by a Config, runs it, and collects the seven §5.3
// histograms plus delivery, buffering and copy accounting.
//
// The two headline scenarios are TestCaseA (private unloaded ring,
// standalone machines) and TestCaseB (public loaded ring, multiprocessing
// machines), which regenerate Figures 5-2, 5-3 and 5-4. StockUnix builds
// the unmodified user-process/TCP-style path of §1–2 for the "failed
// completely at 150 KB/s" baseline.
package core

import (
	"repro/internal/sim"
)

// Protocol selects the transport architecture under test.
type Protocol int

const (
	// ProtocolCTMSP is the prototype: direct driver-to-driver transfer
	// over the CTMS Protocol.
	ProtocolCTMSP Protocol = iota
	// ProtocolStockUnix is the unmodified path: a user-level relay
	// process over the reliable transport and IP.
	ProtocolStockUnix
)

func (p Protocol) String() string {
	if p == ProtocolStockUnix {
		return "stock-unix"
	}
	return "ctmsp"
}

// Tool selects which measurement instrument produces the histograms.
type Tool int

const (
	// ToolLogicAnalyzer records exact timestamps (ground truth).
	ToolLogicAnalyzer Tool = iota
	// ToolPCAT is the remote PC/AT parallel-port rig (what the paper's
	// figures were measured with).
	ToolPCAT
	// ToolPseudoDev is the in-kernel 122 µs recorder.
	ToolPseudoDev
)

func (t Tool) String() string {
	switch t {
	case ToolPCAT:
		return "pcat"
	case ToolPseudoDev:
		return "pseudodev"
	}
	return "logic-analyzer"
}

// LoadLevel sets how much background traffic the public ring carries.
type LoadLevel int

const (
	// LoadNone is a private network.
	LoadNone LoadLevel = iota
	// LoadNormal is the campus ring's ordinary traffic.
	LoadNormal
	// LoadHeavy is a busy ring (used in sweeps, beyond the paper).
	LoadHeavy
)

// Config describes one experiment, with every §5.3 toggle explicit.
type Config struct {
	Name     string
	Seed     int64
	Duration sim.Time

	// Stream shape: PacketBytes every Interval (2000 B / 12 ms ≈
	// 166 KB/s, the paper's 150 KB/s-class stream).
	PacketBytes int
	Interval    sim.Time

	Protocol Protocol

	// Transmitter data path (§5.3 toggles).
	TxIOChannelMemory bool // fixed DMA buffers in IO Channel Memory
	TxCopyHeaderOnly  bool // copy only the header into the DMA buffer
	TxCopyVCAToMbufs  bool // copy data from the VCA device buffer
	PointerTransfer   bool // §2's extension: no CPU copy, DMA from mbufs

	// Receiver data path.
	RxCopyToMbufs bool // copy DMA buffer → mbufs before the VCA sees it
	RxCopyToVCA   bool // copy data into the VCA device buffer (vs drop)

	// Driver and protocol toggles.
	DriverPriority   bool // CTMSP above ARP/IP inside the driver
	RingPriority     bool // CTMSP above other traffic on the ring
	PrecomputeHeader bool // ring header computed once per connection
	PurgeInterrupt   bool // hypothetical purge-notifying adapter
	DriverRaceBug    bool // re-introduce §5's critical-section bug

	// Environment.
	PublicNetwork   bool      // background traffic on the ring
	NetworkLoad     LoadLevel // how much
	Multiprocessing bool      // competing processes + control socket
	Insertions      bool      // station insertion / Ring Purge generator

	Tool Tool

	// ForceInsertionAt, when nonzero, injects one station insertion (a
	// burst of back-to-back Ring Purges) at the given time — used to
	// study the 120–130 ms outliers deterministically.
	ForceInsertionAt sim.Time

	// RingBitRate overrides the ring's signalling rate (0 = the paper's
	// 4 Mbit/s). The IBM hardware reference the paper cites covers the
	// 16/4 adapter; 16 Mbit/s is the what-if of experiment E16.
	RingBitRate int64

	// PlayoutPrebuffer is how much stream time the receiver buffers
	// before starting playback; §6 concludes <25 KB (≈160 ms of stream)
	// suffices, and 40 ms covers everything but ring insertions.
	PlayoutPrebuffer sim.Time

	// HistogramBinWidth for the collected histograms, in microseconds.
	HistogramBinWidth float64
}

// TestCaseA is §5.3's Test Case A: IO Channel Memory, full copy on the
// transmitter, receiver copies to mbufs but drops the data, driver and
// ring priority on, remote (PC/AT) measurement, private unloaded network,
// standalone machines.
func TestCaseA() Config {
	return Config{
		Name:              "test-case-A",
		Seed:              1991,
		Duration:          117 * sim.Minute,
		PacketBytes:       2000,
		Interval:          12 * sim.Millisecond,
		Protocol:          ProtocolCTMSP,
		TxIOChannelMemory: true,
		RxCopyToMbufs:     true,
		RxCopyToVCA:       false,
		DriverPriority:    true,
		RingPriority:      true,
		PrecomputeHeader:  true,
		PublicNetwork:     false,
		NetworkLoad:       LoadNone,
		Multiprocessing:   false,
		Insertions:        false,
		Tool:              ToolPCAT,
		PlayoutPrebuffer:  40 * sim.Millisecond,
		HistogramBinWidth: 100,
	}
}

// TestCaseB is §5.3's Test Case B: as A, but full copying on both ends,
// public network under normal load, multiprocessing machines (not heavily
// loaded), and the insertion generator enabled — the 117-minute run whose
// two ring insertions produced the 120–130 ms outliers.
func TestCaseB() Config {
	c := TestCaseA()
	c.Name = "test-case-B"
	c.RxCopyToVCA = true
	c.PublicNetwork = true
	c.NetworkLoad = LoadNormal
	c.Multiprocessing = true
	c.Insertions = true
	return c
}

// StockUnix is the §1 baseline: the unmodified UNIX model moving
// rateBytesPerSec through a user-level relay over the reliable transport.
// The paper ran it at 16 KB/s (worked "extremely well") and 150 KB/s
// ("failed completely").
func StockUnix(rateBytesPerSec int) Config {
	c := TestCaseB()
	c.Name = "stock-unix"
	c.Protocol = ProtocolStockUnix
	c.Duration = 2 * sim.Minute
	c.TxIOChannelMemory = false
	c.DriverPriority = false
	c.RingPriority = false
	c.PrecomputeHeader = false
	c.Insertions = false
	c.Tool = ToolLogicAnalyzer
	// Keep the 12 ms device interval and size packets for the rate.
	c.PacketBytes = rateBytesPerSec * int(c.Interval) / int(sim.Second)
	return c
}

// Validate reports configuration mistakes early.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return errf("duration must be positive")
	case c.PacketBytes <= 0 || c.PacketBytes > 4000:
		return errf("packet size %d out of range", c.PacketBytes)
	case c.Interval <= 0:
		return errf("interval must be positive")
	case c.HistogramBinWidth <= 0:
		return errf("histogram bin width must be positive")
	case c.PointerTransfer && c.TxCopyHeaderOnly:
		return errf("pointer transfer already eliminates the copy")
	}
	return nil
}
