package core

import (
	"fmt"

	"repro/internal/measure"
	"repro/internal/sim"
)

// runE16 answers the paper's title question quantitatively: with the
// prototype's modifications in place, what bounds the supportable data
// rate, and what does the 16 Mbit Token Ring (whose hardware reference
// the paper already cites) buy?
func runE16(s Scale) *Comparison {
	c := &Comparison{}
	dur := 45 * sim.Second
	if s.Duration > 0 && s.Duration < dur {
		dur = s.Duration
	}

	run := func(bitRate int64, bytesPerSec int) (*Results, error) {
		cfg := TestCaseB()
		mbit := bitRate / 1_000_000
		kBps := bytesPerSec / 1000
		cfg.Name = fmt.Sprintf("whatif-%dMbit-%dKBps", mbit, kBps)
		cfg.Duration = dur
		cfg.Insertions = false
		cfg.RingBitRate = bitRate
		cfg.PacketBytes = bytesPerSec * int(cfg.Interval) / int(sim.Second)
		if s.Seed != 0 {
			cfg.Seed = s.Seed
		}
		return Run(cfg)
	}

	// The paper's rate on both rings.
	r4, err := run(4_000_000, 166_000)
	if err != nil {
		c.addf("4 Mbit baseline", "-", false, "error: %v", err)
		return c
	}
	r16, err := run(16_000_000, 166_000)
	if err != nil {
		c.addf("16 Mbit baseline", "-", false, "error: %v", err)
		return c
	}
	h74 := r4.Truth.H[measure.H7TxToRx]
	h716 := r16.Truth.H[measure.H7TxToRx]
	c.addf("CTMS rate on the 4 Mbit ring", "the paper's achievement",
		sustainable(r4), "%.4f delivered, H7 min %.0f µs", r4.DeliveredFraction(), h74.Min())
	c.addf("same stream on a 16 Mbit ring", "wire time 4x smaller",
		sustainable(r16) && h716.Min() < h74.Min()-2500,
		"%.4f delivered, H7 min %.0f µs", r16.DeliveredFraction(), h716.Min())

	// Push both rings to a rate only the faster one can carry: 300 KB/s
	// (3600-byte packets every 12 ms — 7.2 ms of wire time at 4 Mbit,
	// already more than half the interval before any queueing).
	p4, err := run(4_000_000, 300_000)
	if err != nil {
		c.addf("300 KB/s at 4 Mbit", "-", false, "error: %v", err)
		return c
	}
	p16, err := run(16_000_000, 300_000)
	if err != nil {
		c.addf("300 KB/s at 16 Mbit", "-", false, "error: %v", err)
		return c
	}
	c.addf("300 KB/s on the 4 Mbit ring", "beyond the prototype",
		!sustainable(p4), "%.4f delivered, %d glitches", p4.DeliveredFraction(), p4.Playout.Glitches)
	c.addf("300 KB/s on the 16 Mbit ring", "the title question's answer",
		sustainable(p16), "%.4f delivered, %d glitches", p16.DeliveredFraction(), p16.Playout.Glitches)
	c.Notes = append(c.Notes,
		"the remaining bound is the adapter path (DMA + card firmware), not the wire:",
		fmt.Sprintf("  16 Mbit H7 min %.0f µs of which only ≈%.0f µs is transmission", h716.Min(), 2021*8.0/16.0))
	return c
}
