package core

import (
	"fmt"

	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// E20: the metro-scale question E18 and E19 each answered half of. E18
// proved the sharded engine exact on an eight-ring line; E19 proved the
// population workload deterministic on a four-ring census. The paper's
// §1 asks about "millions of users" across a city, and a city is neither
// a line nor four rings: it is a mesh — redundant paths, heterogeneous
// trunk latencies, most of the graph idle at any instant. E20 runs a
// 64-ring grid mesh carrying a Zipf/Poisson census of more than a
// thousand streams, and holds the engine to the same oracle: the run at
// every worker count must be byte-identical to the serial run, now with
// compiled next-hop routing (all-pairs table, deterministic tie-break),
// pooled cross-ring forwarding (zero steady-state allocations) and
// per-link conservative windows whose provably empty rounds are skipped
// without a barrier.

// e20Side is the default mesh side: an 8×8 grid, 64 rings, diameter 14
// hops.
const e20Side = 8

// e20FullDur is the experiment's full simulated duration; the census is
// taken at its midpoint.
const e20FullDur = 2 * sim.Second

// e20Workers is the worker-count matrix the oracle runs: serial
// reference, the awkward non-divisor counts, and a metro-scale fleet.
var e20Workers = []int{1, 2, 3, 16}

// E20Population is the metro census shape: ~3000 session arrivals per
// second against a 300 ms churn half-life keeps ≈1300 streams alive in
// steady state (Little's law — see workload.PopulationSpec.SteadyState),
// Zipf-skewed over a 96-title catalog homed across the mesh.
func E20Population() *workload.PopulationSpec {
	return &workload.PopulationSpec{
		ArrivalsPerSec: 3000,
		ZipfSkew:       1.0,
		Titles:         96,
		ChurnHalfLife:  300 * sim.Millisecond,
	}
}

// E20Topology builds the parameterized metro mesh: a side×side grid of
// rings bridged to their horizontal and vertical neighbours at the
// default link latency, plus a higher-latency diagonal trunk — the
// redundant-path, heterogeneous-latency input the compiled route table
// and the per-link windows exist for. The population census supplies the
// streams. ctmsbench reuses it for the -topo mesh-scaling benchmark.
func E20Topology(side int, seed int64, duration sim.Time) topo.Spec {
	rings := side * side
	spec := topo.Spec{
		Name:           fmt.Sprintf("e20-mesh%d", rings),
		Seed:           seed,
		Duration:       duration,
		Rings:          rings,
		BackgroundUtil: 0.05,
		// The grid diameter is 2(side-1) bridge hops; prebuffer generously
		// so cross-mesh playback absorbs the trunk latency.
		PlayoutPrebuffer: 250 * sim.Millisecond,
		Population:       E20Population(),
	}
	at := func(x, y int) int { return y*side + x }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				spec.Links = append(spec.Links, topo.LinkSpec{A: at(x, y), B: at(x+1, y)})
			}
			if y+1 < side {
				spec.Links = append(spec.Links, topo.LinkSpec{A: at(x, y), B: at(x, y+1)})
			}
		}
	}
	// The diagonal trunk: a slower metro backbone cutting across the grid.
	// Its latency is deliberately larger than the grid links', so shards
	// on the trunk carry a different lookahead bound than shards off it.
	for i := 0; i+1 < side; i++ {
		spec.Links = append(spec.Links, topo.LinkSpec{
			A: at(i, i), B: at(i+1, i+1), Latency: 5 * sim.Millisecond,
		})
	}
	return spec
}

// e20SparseTopology is the idle-mesh variant the skip claim runs: the
// same grid with no background load and three hand-placed streams, so
// almost every ring is provably idle almost always — the "metro at
// night" shape where analytic round skipping must show up.
func e20SparseTopology(side int, seed int64, duration sim.Time) topo.Spec {
	spec := E20Topology(side, seed, duration)
	spec.Name = fmt.Sprintf("e20-sparse%d", side*side)
	spec.BackgroundUtil = 0
	spec.Population = nil
	rings := side * side
	add := func(name string, src, dst int) {
		spec.Streams = append(spec.Streams, topo.StreamSpec{
			StreamSpec: session.StreamSpec{
				Name:        name,
				PacketBytes: 500,
				Interval:    12 * sim.Millisecond,
				Class:       session.ClassStandard,
			},
			SrcRing: src,
			DstRing: dst,
		})
	}
	add("corner", 0, rings-1)
	add("edge", side-1, rings-side)
	add("local", rings/2, rings/2)
	return spec
}

func runE20(s Scale) *Comparison {
	c := &Comparison{}
	dur := e20FullDur
	if s.Duration > 0 && s.Duration < dur {
		dur = s.Duration
	}
	base := s.Seed
	if base == 0 {
		base = 1991
	}
	spec := E20Topology(e20Side, SweepSeed(base, 20), dur)

	run := func(sp topo.Spec, workers int) *topo.Results {
		n, err := topo.Build(sp)
		if err != nil {
			return nil
		}
		return n.Run(workers)
	}

	results := make([]*topo.Results, len(e20Workers))
	for i, w := range e20Workers {
		results[i] = run(spec, w)
		if results[i] == nil {
			c.addf("e20 build", "-", false, "topology build failed")
			return c
		}
	}
	serial := results[0]

	// The tentpole: every worker count reproduces the serial run bit for
	// bit, across a mesh routed by the compiled next-hop table.
	identical := true
	for _, r := range results[1:] {
		if r.Fingerprint() != serial.Fingerprint() {
			identical = false
		}
	}
	c.addf(fmt.Sprintf("mesh run bit-identical at %v workers", e20Workers),
		"conservative per-link windows are exact", identical,
		"%t (%d events, %d rounds, %d skipped)",
		identical, serial.Events, serial.Engine.Rounds, serial.Engine.RoundsSkipped)

	// The round accounting itself is worker-invariant: skipping is an
	// analytic decision over published bounds, not a scheduling accident.
	roundsAgree := true
	for _, r := range results[1:] {
		if r.Engine.Rounds != serial.Engine.Rounds ||
			r.Engine.RoundsSkipped != serial.Engine.RoundsSkipped {
			roundsAgree = false
		}
	}
	c.addf("round/skip counts identical at every worker count",
		"deterministic barrier schedule", roundsAgree, "%t", roundsAgree)

	// Scale: the census must be a metro population, not a toy — at full
	// duration more than a thousand concurrently-alive generated streams.
	census := len(serial.Streams)
	c.addf("census ≥ 1000 generated streams", "steady state of 3000/s × 300 ms churn",
		census >= 1000 || dur < e20FullDur, "%d streams over %v", census, dur)

	admitted := 0
	for _, st := range serial.Streams {
		if st.Decision.Admitted {
			admitted++
		}
	}
	c.addf("admission clears a metro-sized working set", "≥100 concurrent admissions",
		admitted >= 100 || dur < e20FullDur, "%d of %d admitted", admitted, census)

	// Cross-mesh traffic really crossed bridges: the mesh forwarded a
	// substantial frame volume, all of it through pooled envelopes.
	var fwd uint64
	for _, l := range serial.Links {
		fwd += l.A.Forwarded + l.B.Forwarded
	}
	c.addf("bridges forward cross-mesh traffic", "nonzero pooled forwarding volume",
		fwd > 0, "%d frames over %d links", fwd, len(serial.Links))

	// The idle-skip claim runs on the sparse variant: with three streams
	// on a 64-ring mesh, most rounds are provably empty and must be
	// skipped without a barrier — and the skipping must not cost the
	// oracle anything.
	sparseDur := dur
	if sparseDur > sim.Second {
		sparseDur = sim.Second
	}
	sparse := e20SparseTopology(e20Side, SweepSeed(base, 21), sparseDur)
	sp1 := run(sparse, 1)
	sp8 := run(sparse, 8)
	if sp1 == nil || sp8 == nil {
		c.addf("e20 sparse build", "-", false, "topology build failed")
		return c
	}
	c.addf("idle mesh skips barrier rounds", "provably empty rounds advance analytically",
		sp1.Engine.RoundsSkipped > 0, "%d of %d rounds skipped",
		sp1.Engine.RoundsSkipped, sp1.Engine.Rounds+sp1.Engine.RoundsSkipped)
	sparseOK := sp1.Fingerprint() == sp8.Fingerprint() &&
		sp1.Engine.Rounds == sp8.Engine.Rounds &&
		sp1.Engine.RoundsSkipped == sp8.Engine.RoundsSkipped
	c.addf("sparse mesh identical serial vs 8 workers", "skipping preserves the oracle",
		sparseOK, "%t", sparseOK)

	c.Notes = append(c.Notes, fmt.Sprintf(
		"mesh: %d rings %d links, %d census streams (%d admitted), %d frames forwarded",
		len(serial.Rings), len(serial.Links), census, admitted, fwd))
	c.Notes = append(c.Notes, fmt.Sprintf(
		"engine: %d rounds + %d skipped, window %v, %d events",
		serial.Engine.Rounds, serial.Engine.RoundsSkipped, serial.Window, serial.Events))
	c.Notes = append(c.Notes, fmt.Sprintf(
		"sparse mesh: %d rounds + %d skipped over %v",
		sp1.Engine.Rounds, sp1.Engine.RoundsSkipped, sparseDur))
	return c
}
