package core

import (
	"fmt"
	"strings"

	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/topo"
)

// E18: the scale question the paper leaves open. §1 asks how the data
// rates of a distributed multimedia system with "millions of users" could
// be supported; footnote 5 declines even a single router. E14 built that
// router; E18 builds the internetwork: a K-ring backbone joined by
// store-and-forward bridges, cross-ring CTMSP sessions whose admission
// reserves bandwidth on every hop of the path, and a transit ring whose
// budget runs out — refusals must name the hop that refused, because a
// guarantee across a path is only as real as its weakest ring.
//
// The experiment is also the sharded engine's acceptance gate: the same
// internetwork runs serially and across four shard workers, and every
// observable — stream accounting, ring counters, bridge stats, event
// counts — must be byte-identical (DESIGN.md §9).

// e18Rings is the default backbone size: eight rings in a line, so the
// longest path is seven bridge hops.
const e18Rings = 8

// E18Topology builds the parameterized E18 backbone: rings in a line,
// per-ring local streams, bidirectional adjacent-ring voice, two-hop
// media streams, and a pack of fat transit streams that deliberately
// overrun the middle ring's admission budget. ctmsbench reuses it for
// the shard-scaling benchmark.
func E18Topology(rings int, seed int64, duration sim.Time) topo.Spec {
	spec := topo.Spec{
		Name:     fmt.Sprintf("e18-%dring", rings),
		Seed:     seed,
		Duration: duration,
		Rings:    rings,
		// The paper's Test Case B ran over a live ring; give every ring a
		// background sliver so bridges compete for the token like anyone.
		BackgroundUtil: 0.05,
		// Multi-hop paths add bridge latency; prebuffer like the E17
		// insertion run does.
		PlayoutPrebuffer: 150 * sim.Millisecond,
	}
	for i := 0; i+1 < rings; i++ {
		spec.Links = append(spec.Links, topo.LinkSpec{A: i, B: i + 1})
	}
	add := func(name string, src, dst, bytes int, class session.Class) {
		spec.Streams = append(spec.Streams, topo.StreamSpec{
			StreamSpec: session.StreamSpec{
				Name:        name,
				PacketBytes: bytes,
				Interval:    12 * sim.Millisecond,
				Class:       class,
			},
			SrcRing: src,
			DstRing: dst,
		})
	}
	// One local stream per ring (the paper's single-ring workload).
	for i := 0; i < rings; i++ {
		add(fmt.Sprintf("loc-%d", i), i, i, 500, session.ClassStandard)
	}
	// Voice both ways across every bridge.
	for i := 0; i+1 < rings; i++ {
		add(fmt.Sprintf("adj-%d", i), i, i+1, 200, session.ClassInteractive)
		add(fmt.Sprintf("adj-r%d", i), i+1, i, 200, session.ClassInteractive)
	}
	// Two-hop media streams.
	for i := 0; i+2 < rings; i += 2 {
		add(fmt.Sprintf("hop2-%d", i), i, i+2, 500, session.ClassStandard)
	}
	// Transit overload: fat streams across the middle ring, admitted in
	// spec order until its budget runs out. The refusals must name it.
	mid := rings / 2
	if mid > 0 && mid+1 < rings {
		for j := 0; j < 4; j++ {
			add(fmt.Sprintf("xload-%d", j), mid-1, mid+1, 1500, session.ClassBackground)
		}
	}
	return spec
}

func runE18(s Scale) *Comparison {
	c := &Comparison{}
	dur := 8 * sim.Second
	if s.Duration > 0 && s.Duration < dur {
		dur = s.Duration
	}
	base := s.Seed
	if base == 0 {
		base = 1991
	}
	spec := E18Topology(e18Rings, SweepSeed(base, 18), dur)

	run := func(workers int) *topo.Results {
		n, err := topo.Build(spec)
		if err != nil {
			return nil
		}
		return n.Run(workers)
	}
	serial := run(1)
	sharded := run(4)
	if serial == nil || sharded == nil {
		c.addf("e18 build", "-", false, "topology build failed")
		return c
	}

	// The tentpole claim: the parallel run is the serial run, bit for bit.
	identical := serial.Fingerprint() == sharded.Fingerprint()
	c.addf("4-shard run bit-identical to serial", "conservative windows are exact",
		identical, "%t (%d events, %d windows of %v)",
		identical, serial.Events, serial.Windows, serial.Window)

	r := serial
	// Cross-ring delivery: every admitted stream lands its packets, minus
	// at most the few still in flight across the bridges at the end.
	delivered := true
	var worstName string
	for _, st := range r.Streams {
		if !st.Decision.Admitted {
			continue
		}
		inFlight := uint64(2 * len(st.Path))
		if st.Sent > 0 && st.Delivered+inFlight < st.Sent {
			delivered = false
			worstName = st.Spec.Name
		}
	}
	c.addf("admitted streams deliver across bridges", "loss-free forwarding",
		delivered, "all=%t worst=%s", delivered, worstName)

	// Two-hop latency carries both bridges' store-and-forward time.
	hop2Floor := true
	for _, st := range r.Streams {
		if !st.Decision.Admitted || len(st.Path) != 3 {
			continue
		}
		if st.LatencyN == 0 || st.LatencyMean() < 2*topo.DefaultLinkLatency {
			hop2Floor = false
		}
	}
	c.addf("two-hop latency ≥ 2 × link latency", "store-and-forward adds up",
		hop2Floor, "%t", hop2Floor)

	// Per-hop admission: the transit refusals name the middle ring.
	mid := e18Rings / 2
	rejected, named := 0, 0
	for _, st := range r.Streams {
		if st.Decision.Admitted {
			continue
		}
		rejected++
		if strings.HasPrefix(st.Decision.Reason, fmt.Sprintf("ring %d:", mid)) {
			named++
		}
	}
	c.addf("transit overload refused at the weak hop", "refusal names the ring",
		rejected >= 1 && rejected == named, "%d rejected, %d naming ring %d", rejected, named, mid)

	// Every admitted stream holds its reservation on every ring it
	// crosses — the CDTP-style chain of per-hop guarantees.
	wantReserved := make([]int64, e18Rings)
	for _, st := range r.Streams {
		if !st.Decision.Admitted {
			continue
		}
		for _, ring := range st.Path {
			wantReserved[ring] += st.Spec.OfferedBits()
		}
	}
	chainHolds := true
	for i, rg := range r.Rings {
		if rg.ReservedBits != wantReserved[i] {
			chainHolds = false
		}
	}
	c.addf("reservations held on every hop", "path-wide bandwidth chain",
		chainHolds, "%t", chainHolds)

	for i, rg := range r.Rings {
		c.Notes = append(c.Notes, fmt.Sprintf(
			"ring %d: util %.1f%% reserved %d bits/s admitted %d rejected %d",
			i, 100*rg.Utilization, rg.ReservedBits, rg.Admitted, rg.Rejected))
	}
	var fwd uint64
	for _, l := range r.Links {
		fwd += l.A.Forwarded + l.B.Forwarded
	}
	c.Notes = append(c.Notes, fmt.Sprintf(
		"backbone: %d bridges forwarded %d frames; engine ran %d windows of %v (%d events)",
		len(r.Links), fwd, r.Windows, r.Window, r.Events))
	return c
}
