package core

import (
	"repro/internal/playout"
	"repro/internal/sim"
)

// PlayoutStats is the presentation-side buffer accounting; the model
// itself lives in internal/playout so the multi-stream session layer can
// share it.
type PlayoutStats = playout.Stats

// Playout is the shared presentation-buffer model.
type Playout = playout.Playout

// NewPlayout creates the model. rateBytesPerSec is the stream's
// consumption rate; prebuffer delays playback after the first packet.
func NewPlayout(rateBytesPerSec float64, prebuffer sim.Time) *Playout {
	return playout.New(rateBytesPerSec, prebuffer)
}
