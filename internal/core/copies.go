package core

// CopyStep is one data movement on the path from source device to
// destination device.
type CopyStep struct {
	From, To string
	ByCPU    bool // CPU copy vs DMA/adapter transfer
}

// CopyLedger is the §2 accounting: how many times the packet's bytes move
// between source device and destination device, and who moves them.
type CopyLedger struct {
	Steps []CopyStep
}

// CPUCopies counts copies performed by the CPU.
func (l CopyLedger) CPUCopies() int {
	n := 0
	for _, s := range l.Steps {
		if s.ByCPU {
			n++
		}
	}
	return n
}

// DMACopies counts copies performed by DMA hardware.
func (l CopyLedger) DMACopies() int { return len(l.Steps) - l.CPUCopies() }

// Total counts all data movements.
func (l CopyLedger) Total() int { return len(l.Steps) }

// CopiesFor derives the copy ledger for a configuration, reproducing the
// §2 analysis: the stock model makes four CPU copies (six movements with
// DMA devices); direct driver-to-driver transfer eliminates two CPU
// copies; the pointer-transfer extension eliminates the rest.
func CopiesFor(c Config) CopyLedger {
	var l CopyLedger
	add := func(from, to string, cpu bool) {
		l.Steps = append(l.Steps, CopyStep{From: from, To: to, ByCPU: cpu})
	}
	if c.Protocol == ProtocolStockUnix {
		// Figure 2-2's expanded path through a user process.
		add("source device", "fixed DMA buffer", false)
		add("fixed DMA buffer", "mbufs", true)
		add("mbufs", "user space", true)
		add("user space", "mbufs", true)
		add("mbufs", "fixed DMA buffer", true)
		add("fixed DMA buffer", "network adapter", false)
		return l
	}
	// Driver-to-driver CTMSP path.
	if c.TxCopyVCAToMbufs {
		add("VCA device buffer", "mbufs", true)
	}
	if c.PointerTransfer {
		add("mbufs (by pointer)", "network adapter", false)
	} else {
		add("mbufs", "fixed DMA buffer", true)
		add("fixed DMA buffer", "network adapter", false)
	}
	// Receive side.
	add("network adapter", "fixed DMA buffer", false)
	if c.RxCopyToMbufs {
		add("fixed DMA buffer", "mbufs", true)
	}
	if c.RxCopyToVCA {
		src := "fixed DMA buffer"
		if c.RxCopyToMbufs {
			src = "mbufs"
		}
		add(src, "VCA device buffer", true)
	}
	return l
}
