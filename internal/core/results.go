package core

import (
	"fmt"
	"strings"

	"repro/internal/ctmsp"
	"repro/internal/measure"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tradapter"
)

// Results collects everything one scenario run produces.
type Results struct {
	Config  Config
	Elapsed sim.Time

	// Hists are the seven §5.3 histograms as the configured tool
	// recorded them; Truth is the logic analyzer's exact view.
	Hists *measure.HistogramSet
	Truth *measure.HistogramSet

	// Stream accounting.
	Sent      uint64
	Delivered uint64
	RxStats   ctmsp.RxStats
	Playout   PlayoutStats

	// Substrate accounting.
	Ring ring.Counters
	TAP  measure.TAPStats
	// TapMonitor is the live TAP capture for tools that want the raw
	// per-frame records.
	TapMonitor *measure.TAP
	TxDriver   tradapter.Stats
	TxCPUUtil  float64
	RxCPUUtil  float64

	Copies CopyLedger
}

// Throughput reports the delivered stream rate in bytes/second.
func (r *Results) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Delivered) * float64(r.Config.PacketBytes) / r.Elapsed.Seconds()
}

// DeliveredFraction reports delivered/sent.
func (r *Results) DeliveredFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// H returns one measured histogram by ID.
func (r *Results) H(id measure.HistogramID) *stats.Histogram { return r.Hists.H[id] }

// Report renders a human-readable summary of the run.
func (r *Results) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s (%v, seed %d, tool %s) ===\n", r.Config.Name, r.Elapsed, r.Config.Seed, r.Config.Tool)
	fmt.Fprintf(&b, "stream: sent=%d delivered=%d (%.3f%%) throughput=%.1f KB/s\n",
		r.Sent, r.Delivered, 100*r.DeliveredFraction(), r.Throughput()/1000)
	fmt.Fprintf(&b, "loss: gaps=%d lost=%d dups=%d reordered=%d\n",
		r.RxStats.Gaps, r.RxStats.Lost, r.RxStats.Duplicates, r.RxStats.Reordered)
	fmt.Fprintf(&b, "playout: glitches=%d starved=%v maxBuffer=%dB\n",
		r.Playout.Glitches, r.Playout.StarvedTime, r.Playout.MaxBufferBytes)
	fmt.Fprintf(&b, "ring: util=%.2f%% frames=%d purges=%d purgeLost=%d insertions=%d\n",
		100*float64(r.Ring.BusyTime)/float64(r.Elapsed), r.Ring.FramesSent,
		r.Ring.PurgeCount, r.Ring.PurgeLost, r.Ring.InsertionSeen)
	fmt.Fprintf(&b, "cpu: tx=%.1f%% rx=%.1f%%\n", 100*r.TxCPUUtil, 100*r.RxCPUUtil)
	fmt.Fprintf(&b, "copies: %d total (%d CPU, %d DMA)\n",
		r.Copies.Total(), r.Copies.CPUCopies(), r.Copies.DMACopies())
	if r.Hists != nil {
		for id := measure.H1InterIRQ; id < measure.NumHistograms; id++ {
			h := r.Hists.H[id]
			if h.N() == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-48s n=%-7d mean=%8.0fµs sd=%7.0fµs min=%8.0fµs max=%8.0fµs\n",
				h.Label, h.N(), h.Mean(), h.Stddev(), h.Min(), h.Max())
		}
	}
	return b.String()
}

func errf(format string, args ...any) error { return fmt.Errorf("core: "+format, args...) }
