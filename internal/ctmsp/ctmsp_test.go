package ctmsp

import (
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{DstDevice: 3, PacketNum: 123456, Length: 2000}
	b := h.Encode()
	if len(b) != HeaderSize {
		t.Fatalf("encoded size %d", len(b))
	}
	got, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(dev uint8, num uint32, length uint32) bool {
		h := Header{DstDevice: dev, PacketNum: num, Length: length}
		got, err := DecodeHeader(h.Encode())
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeHeader([]byte{1, 2, 3}); err == nil {
		t.Fatal("short header should fail")
	}
	b := Header{}.Encode()
	b[0] = 0xFF // break magic
	if _, err := DecodeHeader(b); err == nil {
		t.Fatal("bad magic should fail")
	}
	b = Header{}.Encode()
	b[2] = 99 // break version
	if _, err := DecodeHeader(b); err == nil {
		t.Fatal("bad version should fail")
	}
}

func TestClassify(t *testing.T) {
	if !Classify(Header{}.Encode()) {
		t.Fatal("CTMSP packet not recognized")
	}
	if Classify([]byte{0x08, 0x00, 0x45}) {
		t.Fatal("IP packet misclassified as CTMSP")
	}
	if Classify([]byte{0xC7}) {
		t.Fatal("one byte cannot classify")
	}
}

func newConn(t *testing.T) (*sim.Scheduler, *kernel.Kernel, *Conn) {
	t.Helper()
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	m := rtpc.NewMachine(sched, "tx", rtpc.DefaultCostModel(), 1)
	k := kernel.New(m)
	st := r.Attach("tx")
	drv := tradapter.New(k, st, tradapter.DefaultConfig(), tradapter.DefaultTiming())
	k.Register(drv)
	dstSt := r.Attach("rx")
	conn, err := Dial(k, drv, dstSt.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return sched, k, conn
}

func TestDialPrecomputesHeaderOnce(t *testing.T) {
	_, _, conn := newConn(t)
	if len(conn.RingHeader()) != 22 {
		t.Fatalf("ring header should be 22 bytes, got %d", len(conn.RingHeader()))
	}
}

func TestBuildPacketNumbersSequentially(t *testing.T) {
	_, k, conn := newConn(t)
	for i := 0; i < 5; i++ {
		p := conn.BuildPacket(1988, false, nil, nil)
		if p == nil {
			t.Fatal("alloc failed")
		}
		h := p.Chain.Tag.(Header)
		if h.PacketNum != uint32(i) {
			t.Fatalf("packet %d numbered %d", i, h.PacketNum)
		}
		if h.Length != 2000 {
			t.Fatalf("packet length %d, want 2000", h.Length)
		}
		if p.Size != 2000 {
			t.Fatalf("outgoing size %d", p.Size)
		}
		if p.Class != tradapter.ClassCTMSP {
			t.Fatal("wrong class")
		}
		k.Pool.Free(p.Chain)
	}
	if conn.Stats().PacketsBuilt != 5 {
		t.Fatalf("accounting: %+v", conn.Stats())
	}
}

func TestBuildPacketCopyHeaderOnly(t *testing.T) {
	_, k, conn := newConn(t)
	full := conn.BuildPacket(1988, false, nil, nil)
	hdr := conn.BuildPacket(1988, true, nil, nil)
	if full.CopyBytes != 2000 {
		t.Fatalf("full copy bytes %d", full.CopyBytes)
	}
	if hdr.CopyBytes != HeaderSize+22 {
		t.Fatalf("header-only copy bytes %d", hdr.CopyBytes)
	}
	k.Pool.Free(full.Chain)
	k.Pool.Free(hdr.Chain)
}

func TestBuildPacketMbufExhaustion(t *testing.T) {
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	m := rtpc.NewMachine(sched, "tx", rtpc.DefaultCostModel(), 1)
	k := kernel.New(m)
	k.Pool = kernel.NewPool(sched, 4, 1) // tiny pool
	st := r.Attach("tx")
	drv := tradapter.New(k, st, tradapter.DefaultConfig(), tradapter.DefaultTiming())
	k.Register(drv)
	conn, err := Dial(k, drv, r.Attach("rx").Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if p := conn.BuildPacket(1988, false, nil, nil); p != nil {
		t.Fatal("tiny pool should fail the allocation")
	}
	if conn.Stats().MbufFailures != 1 {
		t.Fatalf("failure accounting: %+v", conn.Stats())
	}
}

func TestReceiverInOrder(t *testing.T) {
	var r Receiver
	var delivered []uint32
	r.OnData = func(h Header, _ sim.Time) { delivered = append(delivered, h.PacketNum) }
	for i := uint32(0); i < 10; i++ {
		if ev := r.Accept(Header{PacketNum: i}, 0); ev != InOrder {
			t.Fatalf("packet %d: %v", i, ev)
		}
	}
	st := r.Stats()
	if st.InOrder != 10 || st.Lost != 0 || st.Duplicates != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if len(delivered) != 10 {
		t.Fatalf("delivered %d", len(delivered))
	}
}

func TestReceiverGapAccounting(t *testing.T) {
	var r Receiver
	r.Accept(Header{PacketNum: 0}, 0)
	r.Accept(Header{PacketNum: 1}, 0)
	// Packets 2 and 3 lost to a purge burst.
	if ev := r.Accept(Header{PacketNum: 4}, 0); ev != Gap {
		t.Fatalf("want Gap, got %v", ev)
	}
	st := r.Stats()
	if st.Lost != 2 || st.Gaps != 1 {
		t.Fatalf("loss accounting: %+v", st)
	}
	// Stream continues normally after the gap.
	if ev := r.Accept(Header{PacketNum: 5}, 0); ev != InOrder {
		t.Fatalf("post-gap packet: %v", ev)
	}
}

func TestReceiverDuplicateSuppression(t *testing.T) {
	var r Receiver
	delivered := 0
	r.OnData = func(Header, sim.Time) { delivered++ }
	r.Accept(Header{PacketNum: 0}, 0)
	r.Accept(Header{PacketNum: 1}, 0)
	if ev := r.Accept(Header{PacketNum: 1}, 0); ev != Duplicate {
		t.Fatalf("want Duplicate, got %v", ev)
	}
	if delivered != 2 {
		t.Fatalf("duplicate must not be delivered: %d", delivered)
	}
	if r.Stats().Duplicates != 1 {
		t.Fatalf("stats: %+v", r.Stats())
	}
}

func TestReceiverReorderDetection(t *testing.T) {
	var r Receiver
	r.Accept(Header{PacketNum: 5}, 0) // stream starts at 5
	r.Accept(Header{PacketNum: 6}, 0)
	r.Accept(Header{PacketNum: 7}, 0)
	if ev := r.Accept(Header{PacketNum: 3}, 0); ev != Reordered {
		t.Fatalf("ancient packet should be Reordered, got %v", ev)
	}
}

func TestReceiverStartsAtFirstSeen(t *testing.T) {
	var r Receiver
	if ev := r.Accept(Header{PacketNum: 100}, 0); ev != InOrder {
		t.Fatalf("first packet defines the origin: %v", ev)
	}
	if ev := r.Accept(Header{PacketNum: 101}, 0); ev != InOrder {
		t.Fatalf("second packet: %v", ev)
	}
}

// Property: for any loss pattern (subset of a sequential stream), the
// receiver's Lost count equals the number of dropped packets.
func TestReceiverLossAccountingProperty(t *testing.T) {
	f := func(dropMask []bool) bool {
		var r Receiver
		var sent, dropped uint64
		for i, drop := range dropMask {
			sent++
			if drop && i > 0 { // first packet must arrive to anchor the origin
				dropped++
				continue
			}
			r.Accept(Header{PacketNum: uint32(i)}, 0)
		}
		// Trailing drops are undetectable without a closing packet.
		trailing := uint64(0)
		for i := len(dropMask) - 1; i > 0 && dropMask[i]; i-- {
			trailing++
		}
		return r.Stats().Lost == dropped-trailing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolBalancedAfterExhaustion pins the alloc-failure contract the
// mbuflife analyzer guards statically: a failed BuildPacket counts the
// failure on both the pool and the connection, and strands nothing —
// the pool is exactly as balanced as after a freed success.
func TestPoolBalancedAfterExhaustion(t *testing.T) {
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	m := rtpc.NewMachine(sched, "tx", rtpc.DefaultCostModel(), 1)
	k := kernel.New(m)
	k.Pool = kernel.NewPool(sched, 4, 1) // tiny pool
	st := r.Attach("tx")
	drv := tradapter.New(k, st, tradapter.DefaultConfig(), tradapter.DefaultTiming())
	k.Register(drv)
	conn, err := Dial(k, drv, r.Attach("rx").Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}

	// A small packet fits even the tiny pool; build it and free it.
	p := conn.BuildPacket(64, false, nil, nil)
	if p == nil {
		t.Fatal("small packet should fit the tiny pool")
	}
	k.Pool.Free(p.Chain)

	// A full-size packet exhausts it: counted, and nothing stranded.
	if q := conn.BuildPacket(1988, false, nil, nil); q != nil {
		t.Fatal("tiny pool should fail the full-size allocation")
	}
	ps := k.Pool.Stats()
	if ps.Failures != 1 {
		t.Fatalf("pool failure accounting: %+v", ps)
	}
	if conn.Stats().MbufFailures != 1 {
		t.Fatalf("connection failure accounting: %+v", conn.Stats())
	}
	if ps.Allocs != ps.Frees || ps.SmallInUse != 0 || ps.ClustersInUse != 0 {
		t.Fatalf("pool unbalanced after exhaustion: %+v", ps)
	}
}
