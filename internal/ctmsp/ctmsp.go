// Package ctmsp implements the CTMS Protocol the paper proposes: a
// network-layer protocol added beside ARP and IP, specifically designed
// for and limited to assisting data transfers between the network and
// other devices. It assumes a static point-to-point connection between two
// machines, so the Token Ring header is computed once per connection (via
// a driver ioctl) and the per-packet work reduces to stamping a device
// number and a packet number.
//
// The receiver side implements the loss model §5 settles on: Ring Purge
// may silently destroy at most one packet per purge, the transmitter
// cannot detect it, so the receiver recovers by accounting for gaps and
// suppressing duplicates (which only occur if a hypothetical
// purge-interrupt adapter retransmits unnecessarily).
package ctmsp

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// Protocol constants.
const (
	// Magic identifies a CTMSP packet; checking it is the "shortest
	// possible test" the paper instruments at measurement point 4.
	Magic = 0xC75D
	// HeaderSize is the CTMSP header: magic(2) version(1) device(1)
	// packetnum(4) length(4).
	HeaderSize = 12
	// Version of the prototype protocol.
	Version = 1
)

// Header is the CTMSP packet header.
type Header struct {
	DstDevice uint8
	PacketNum uint32
	Length    uint32
}

// Encode serializes the header.
func (h Header) Encode() []byte {
	b := make([]byte, HeaderSize)
	binary.BigEndian.PutUint16(b[0:], Magic)
	b[2] = Version
	b[3] = h.DstDevice
	binary.BigEndian.PutUint32(b[4:], h.PacketNum)
	binary.BigEndian.PutUint32(b[8:], h.Length)
	return b
}

// DecodeHeader parses a CTMSP header.
func DecodeHeader(b []byte) (Header, error) {
	if len(b) < HeaderSize {
		return Header{}, fmt.Errorf("ctmsp: short header: %d bytes", len(b))
	}
	if binary.BigEndian.Uint16(b[0:]) != Magic {
		return Header{}, fmt.Errorf("ctmsp: bad magic %#x", binary.BigEndian.Uint16(b[0:]))
	}
	if b[2] != Version {
		return Header{}, fmt.Errorf("ctmsp: unknown version %d", b[2])
	}
	return Header{
		DstDevice: b[3],
		PacketNum: binary.BigEndian.Uint32(b[4:]),
		Length:    binary.BigEndian.Uint32(b[8:]),
	}, nil
}

// Classify reports whether the bytes begin a CTMSP packet — the cheap
// test done at the driver's split point.
//
//ctmsvet:hotpath
func Classify(b []byte) bool {
	return len(b) >= 2 && binary.BigEndian.Uint16(b) == Magic
}

// TxStats aggregates connection-level transmit accounting.
type TxStats struct {
	PacketsBuilt uint64
	MbufFailures uint64
}

// Conn is one static point-to-point CTMSP connection. It is created by
// exchanging ioctls with the Token Ring driver: the ring header is
// computed once and kept as connection state.
type Conn struct {
	k          *kernel.Kernel
	drv        *tradapter.Driver
	dst        ring.Addr
	dstDevice  uint8
	ringHeader []byte
	next       uint32
	stats      TxStats
}

// Dial establishes a connection. It performs the paper's setup ioctls:
// request the precomputed Token Ring header and the driver output handle.
func Dial(k *kernel.Kernel, drv *tradapter.Driver, dst ring.Addr, dstDevice uint8) (*Conn, error) {
	hdr, err := k.Ioctl("tr0", "compute-header", dst)
	if err != nil {
		return nil, fmt.Errorf("ctmsp: dial: %w", err)
	}
	return &Conn{
		k:          k,
		drv:        drv,
		dst:        dst,
		dstDevice:  dstDevice,
		ringHeader: hdr.([]byte),
	}, nil
}

// RingHeader exposes the precomputed header (tests verify it is built
// exactly once per connection).
func (c *Conn) RingHeader() []byte { return c.ringHeader }

// Stats returns a snapshot of transmit accounting.
func (c *Conn) Stats() TxStats { return c.stats }

// NextHeader stamps the next packet header without building buffers.
//
//ctmsvet:hotpath
func (c *Conn) NextHeader(dataLen int) Header {
	h := Header{DstDevice: c.dstDevice, PacketNum: c.next, Length: uint32(HeaderSize + dataLen)}
	c.next++
	return h
}

// BuildPacket allocates an mbuf chain for a packet of total length
// HeaderSize+dataLen, stamps the precomputed ring header and a CTMSP
// header into it, and returns the driver-ready Outgoing. Returns nil if
// the mbuf pool is exhausted (interrupt-time contract).
//
// copyHeaderOnly selects §5.3's "copy only header into fixed DMA buffer"
// variant; preTransmit and done are the measurement hooks.
//
//ctmsvet:hotpath
func (c *Conn) BuildPacket(dataLen int, copyHeaderOnly bool, preTransmit func(), done func(ring.DeliveryStatus)) *tradapter.Outgoing {
	total := HeaderSize + dataLen
	ch := c.k.Pool.AllocNoWait(total)
	if ch == nil {
		c.stats.MbufFailures++
		return nil
	}
	h := c.NextHeader(dataLen)
	ch.Tag = h
	c.stats.PacketsBuilt++

	copyBytes := total
	if copyHeaderOnly {
		copyBytes = HeaderSize + len(c.ringHeader)
	}
	//ctmsvet:allow hotpath one Outgoing descriptor per packet is the driver hand-off contract; the mbuf chain itself is pooled
	return &tradapter.Outgoing{
		Chain:       ch,
		Size:        total,
		Class:       tradapter.ClassCTMSP,
		Dst:         c.dst,
		CopyBytes:   copyBytes,
		Capture:     h.Encode(),
		PreTransmit: preTransmit,
		Done:        done,
	}
}

// Packet is a CTMSP packet carrying an application payload — used by
// higher layers (the media server) that send real data rather than the
// VCA's synthetic stream. The chain Tag holds one of these.
type Packet struct {
	Header
	Payload any
}

// BuildDataPacket is BuildPacket for payload-carrying packets: the chain
// is tagged with a Packet wrapping the payload.
func (c *Conn) BuildDataPacket(payload any, dataLen int, preTransmit func(), done func(ring.DeliveryStatus)) *tradapter.Outgoing {
	out := c.BuildPacket(dataLen, false, preTransmit, done)
	if out == nil {
		return nil
	}
	h := out.Chain.Tag.(Header)
	out.Chain.Tag = Packet{Header: h, Payload: payload}
	return out
}

// Event classifies what the receiver saw for one arriving packet.
//
//ctmsvet:enum
type Event int

const (
	// InOrder: the expected packet arrived.
	InOrder Event = iota
	// Duplicate: an already-delivered packet number arrived again and
	// was suppressed.
	Duplicate
	// Gap: one or more packets were lost before this one (Ring Purge).
	Gap
	// Reordered: a packet older than expected but never delivered — the
	// failure mode careful critical-section protection eliminated (§5);
	// its appearance means a driver bug.
	Reordered
)

func (e Event) String() string {
	switch e {
	case InOrder:
		return "in-order"
	case Duplicate:
		return "duplicate"
	case Gap:
		return "gap"
	case Reordered:
		return "reordered"
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// RxStats aggregates receiver accounting.
type RxStats struct {
	Received   uint64
	InOrder    uint64
	Duplicates uint64
	Gaps       uint64
	Lost       uint64
	Reordered  uint64
}

// Receiver tracks CTMSP sequence state for one connection and implements
// the loss-recovery accounting.
type Receiver struct {
	expect  uint32
	started bool
	stats   RxStats
	// OnData, if set, fires for every accepted (non-duplicate) packet.
	OnData func(Header, sim.Time)
}

// Stats returns a snapshot of receive accounting.
func (r *Receiver) Stats() RxStats { return r.stats }

// Accept processes one arriving packet header and reports what happened.
//
//ctmsvet:hotpath
func (r *Receiver) Accept(h Header, at sim.Time) Event {
	r.stats.Received++
	if !r.started {
		r.started = true
		r.expect = h.PacketNum
	}
	switch {
	case h.PacketNum == r.expect:
		r.expect = h.PacketNum + 1
		r.stats.InOrder++
		r.deliver(h, at)
		return InOrder
	case h.PacketNum > r.expect:
		lost := uint64(h.PacketNum - r.expect)
		r.stats.Lost += lost
		r.stats.Gaps++
		r.expect = h.PacketNum + 1
		r.deliver(h, at)
		return Gap
	case h.PacketNum+1 == r.expect:
		// The last delivered packet again: a duplicate from an
		// over-eager purge retransmit.
		r.stats.Duplicates++
		return Duplicate
	}
	// Older than the last delivered packet: genuine reordering, which the
	// prototype's critical-section fixes are supposed to make impossible.
	r.stats.Reordered++
	return Reordered
}

func (r *Receiver) deliver(h Header, at sim.Time) {
	if r.OnData != nil {
		r.OnData(h, at)
	}
}
