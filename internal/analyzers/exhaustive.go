package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
)

// Exhaustive guards the public enum surface: every switch over an enum
// type registered in an enumTable composite literal (the root package's
// enummap.go pattern) must either cover every declared constant of that
// type or carry a default case. Adding a fourth Load level or a new
// StreamClass then fails the lint at every switch that silently falls
// through, instead of failing at runtime in whatever experiment first
// hits the new value.
//
// Registration is discovered syntactically, two ways. A composite
// literal enumTable[P, C]{...} registers P (the root package's
// enummap.go pattern), and any package can opt a type in directly with
// a //ctmsvet:enum doc-comment line on its declaration:
//
//	//ctmsvet:enum
//	type Class int
//
// The constants of a registered type are every const declared with that
// type in the same package (iota inheritance included), except
// sentinels named num* (numClasses and friends count values, they are
// not values). Registration and checking are both per-package;
// cross-package switches over another package's enum are out of scope.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc:  "switches over enumTable-registered enum types must cover every value or have a default",
	Run:  runExhaustive,
}

func runExhaustive(p *Pass) {
	registered := registeredEnums(p)
	if len(registered) == 0 {
		return
	}
	consts := enumConsts(p, registered)
	constOwner := make(map[string]string) // constant name -> enum type
	for typ, names := range consts {
		for _, n := range names {
			constOwner[n] = typ
		}
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			varTypes := declaredTypes(fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkSwitch(p, sw, registered, consts, constOwner, varTypes)
				return true
			})
		}
	}
}

// enumDirective marks a type declaration as an exhaustiveness-checked
// enum.
const enumDirective = "//ctmsvet:enum"

func hasEnumDirective(cgs ...*ast.CommentGroup) bool {
	for _, cg := range cgs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == enumDirective {
				return true
			}
		}
	}
	return false
}

// registeredEnums finds every type name P used as the first type
// argument of an enumTable[P, C] composite literal, plus every type
// declaration carrying a //ctmsvet:enum directive.
func registeredEnums(p *Pass) map[string]bool {
	out := make(map[string]bool)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasEnumDirective(gd.Doc, ts.Doc, ts.Comment) {
					out[ts.Name.Name] = true
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			var base ast.Expr
			var args []ast.Expr
			switch t := cl.Type.(type) {
			case *ast.IndexExpr:
				base, args = t.X, []ast.Expr{t.Index}
			case *ast.IndexListExpr:
				base, args = t.X, t.Indices
			default:
				return true
			}
			id, ok := base.(*ast.Ident)
			if !ok || id.Name != "enumTable" || len(args) == 0 {
				return true
			}
			if pub, ok := args[0].(*ast.Ident); ok {
				out[pub.Name] = true
			}
			return true
		})
	}
	return out
}

// enumConsts collects, in declaration order, the constants declared with
// each registered type. Within a const block, specs with no type and no
// values inherit the running type (the iota idiom); a spec with values
// but no explicit type resets it.
func enumConsts(p *Pass, registered map[string]bool) map[string][]string {
	out := make(map[string][]string)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			cur := ""
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				switch {
				case vs.Type != nil:
					cur = ""
					if id, ok := vs.Type.(*ast.Ident); ok && registered[id.Name] {
						cur = id.Name
					}
				case len(vs.Values) > 0:
					cur = ""
				}
				if cur == "" {
					continue
				}
				for _, n := range vs.Names {
					if n.Name == "_" || strings.HasPrefix(n.Name, "num") {
						continue // numClasses-style sentinels are counts, not values
					}
					out[cur] = append(out[cur], n.Name)
				}
			}
		}
	}
	return out
}

// declaredTypes maps identifiers to their declared type name within fd:
// parameters, receivers and `var x T` declarations. This is the typed
// half of switch-tag classification; the constant heuristic in
// checkSwitch is the fallback.
func declaredTypes(fd *ast.FuncDecl) map[string]string {
	types := make(map[string]string)
	record := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			id, ok := field.Type.(*ast.Ident)
			if !ok {
				continue
			}
			for _, n := range field.Names {
				types[n.Name] = id.Name
			}
		}
	}
	record(fd.Recv)
	record(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ds, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := ds.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			id, ok := vs.Type.(*ast.Ident)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				types[name.Name] = id.Name
			}
		}
		return true
	})
	return types
}

func checkSwitch(p *Pass, sw *ast.SwitchStmt, registered map[string]bool,
	consts map[string][]string, constOwner map[string]string, varTypes map[string]string) {

	enumType := ""
	switch tag := sw.Tag.(type) {
	case *ast.Ident:
		if t := varTypes[tag.Name]; registered[t] {
			enumType = t
		}
	case *ast.CallExpr:
		// A conversion like Protocol(s) pins the type.
		if id, ok := tag.Fun.(*ast.Ident); ok && registered[id.Name] {
			enumType = id.Name
		}
	}

	covered := make(map[string]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			name := ""
			switch x := e.(type) {
			case *ast.Ident:
				name = x.Name
			case *ast.SelectorExpr:
				name = x.Sel.Name
			}
			if name == "" {
				continue
			}
			covered[name] = true
			if enumType == "" {
				if owner := constOwner[name]; owner != "" {
					enumType = owner
				}
			}
		}
	}
	if enumType == "" || hasDefault {
		return
	}
	var missing []string
	for _, c := range consts[enumType] {
		if !covered[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) > 0 {
		p.Reportf(sw.Switch,
			"switch over %s misses %s; cover every value or add a default",
			enumType, strings.Join(missing, ", "))
	}
}
