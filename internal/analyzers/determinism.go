package analyzers

import (
	"go/ast"
	"strings"
)

// Determinism enforces the reproduction's headline property — the same
// seed and config produce bit-identical results at any parallelism — at
// the source level. In sim-critical packages it forbids:
//
//   - wall-clock reads (time.Now, time.Since, time.Sleep, timers): the
//     simulation has exactly one clock, sim.Scheduler's, and anything
//     else leaks host timing into results;
//   - the top-level math/rand generator (rand.Intn, rand.Float64, ...):
//     it is process-global and shared across goroutines, so draws depend
//     on worker interleaving. Only constructing a seeded *rand.Rand
//     (rand.New, rand.NewSource — what sim.RNG wraps) is allowed;
//   - ranging over a map while appending to a slice, sending on a
//     channel, or emitting trace events: map iteration order is
//     randomized per run, so the collected order is too. Collect keys,
//     sort, then range the sorted slice — or annotate the sort-after
//     pattern with //ctmsvet:allow determinism <reason>.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock, global math/rand, and order-dependent map iteration in sim-critical packages",
	Run:  runDeterminism,
}

// wallClockFuncs are the time package entry points that observe or wait
// on the host clock. time.Since and time.Until call time.Now internally,
// so they are banned alongside it.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededRandCtors are the only math/rand names allowed: they build the
// seeded, per-subsystem generators sim.RNG wraps.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true}

func runDeterminism(p *Pass) {
	for _, f := range p.Pkg.Files {
		f := f
		mapNames := packageMapNames(p, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			local := localMapNames(p, fd)
			for k, v := range mapNames {
				if _, shadowed := local[k]; !shadowed {
					local[k] = v
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.CallExpr:
					checkForbiddenCall(p, f, node)
				case *ast.RangeStmt:
					checkMapRange(p, f, node, local)
				case *ast.FuncLit:
					// Closures inherit the enclosing scope; keep walking.
				}
				return true
			})
		}
	}
}

func checkForbiddenCall(p *Pass, f *ast.File, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	switch importPathOf(f, id.Name) {
	case "time":
		if wallClockFuncs[sel.Sel.Name] {
			p.Reportf(call.Pos(),
				"time.%s reads the wall clock; sim-critical code must use the sim.Scheduler clock",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if !seededRandCtors[sel.Sel.Name] {
			p.Reportf(call.Pos(),
				"rand.%s draws from the process-global generator; use a seeded *rand.Rand via sim.RNG",
				sel.Sel.Name)
		}
	}
}

// checkMapRange flags `for ... := range m` over a map whose body builds
// order-dependent output. mapNames holds identifiers known (by local,
// syntactic inference) to be map-typed.
func checkMapRange(p *Pass, f *ast.File, rs *ast.RangeStmt, mapNames map[string]bool) {
	if !isMapExpr(p, f, rs.X, mapNames) {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.SendStmt:
			p.Reportf(rs.For,
				"range over map sends on a channel at %s; iteration order is nondeterministic — range sorted keys instead",
				p.Pkg.Fset.Position(node.Pos()))
			return false
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "append" {
				p.Reportf(rs.For,
					"range over map appends to a slice at %s; iteration order is nondeterministic — range sorted keys instead",
					p.Pkg.Fset.Position(node.Pos()))
				return false
			}
			if isTraceEmit(node) {
				p.Reportf(rs.For,
					"range over map emits a trace event at %s; iteration order is nondeterministic — range sorted keys instead",
					p.Pkg.Fset.Position(node.Pos()))
				return false
			}
		}
		return true
	})
}

// isTraceEmit recognizes the repo's trace-recording calls: Trace.Add /
// Trace.Addf (and Emit/Tracef-style names), by method name plus a
// trace-ish receiver for the generic "Add".
func isTraceEmit(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Addf", "Emit", "Tracef":
		return true
	case "Add":
		return strings.Contains(strings.ToLower(exprName(sel.X)), "trace")
	}
	return false
}

func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprName(x.X) + "." + x.Sel.Name
	}
	return ""
}

// isMapExpr reports whether e is, by best-effort syntactic inference, a
// map: a map literal, a name locally declared with map type, a selector
// whose field name is map-typed anywhere in the loaded packages, or a
// call to a function whose single result is a map.
func isMapExpr(p *Pass, f *ast.File, e ast.Expr, mapNames map[string]bool) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		_, ok := x.Type.(*ast.MapType)
		return ok
	case *ast.Ident:
		return mapNames[x.Name] || p.Index.mapVars[x.Name]
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok {
			if p.Index.mapVars[id.Name+"."+x.Sel.Name] {
				return true
			}
		}
		return p.Index.mapFields[x.Sel.Name]
	case *ast.CallExpr:
		switch fun := x.Fun.(type) {
		case *ast.Ident:
			return p.Index.mapFuncs[fun.Name]
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && p.Index.mapFuncs[id.Name+"."+fun.Sel.Name] {
				return true
			}
			return p.Index.mapFuncs[fun.Sel.Name]
		}
	}
	return false
}

// localMapNames collects names declared with map type inside fd: map
// parameters, `var m map[...]`, `m := make(map[...])`, `m := map[...]{}`
// and `m := f()` for f known to return a map.
func localMapNames(p *Pass, fd *ast.FuncDecl) map[string]bool {
	names := make(map[string]bool)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if _, ok := field.Type.(*ast.MapType); !ok {
				continue
			}
			for _, n := range field.Names {
				names[n.Name] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.DeclStmt:
			gd, ok := node.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if _, isMap := vs.Type.(*ast.MapType); isMap {
					for _, id := range vs.Names {
						names[id.Name] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(node.Lhs) != len(node.Rhs) {
				return true
			}
			for i, lhs := range node.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if rhsIsMap(p, node.Rhs[i]) {
					names[id.Name] = true
				}
			}
		}
		return true
	})
	return names
}

func rhsIsMap(p *Pass, e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		_, ok := x.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" && len(x.Args) >= 1 {
			_, isMap := x.Args[0].(*ast.MapType)
			return isMap
		}
		switch fun := x.Fun.(type) {
		case *ast.Ident:
			return p.Index.mapFuncs[fun.Name]
		case *ast.SelectorExpr:
			if id, ok := fun.X.(*ast.Ident); ok && p.Index.mapFuncs[id.Name+"."+fun.Sel.Name] {
				return true
			}
			return p.Index.mapFuncs[fun.Sel.Name]
		}
	}
	return false
}

// packageMapNames collects package-level map variables declared in f's
// package (the Index already has them package-qualified; this adds the
// file-local view).
func packageMapNames(p *Pass, f *ast.File) map[string]bool {
	names := make(map[string]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if _, isMap := vs.Type.(*ast.MapType); isMap {
				for _, id := range vs.Names {
					names[id.Name] = true
				}
			}
		}
	}
	return names
}
