package analyzers

// This file is ctmsvet's third tier: interprocedural analysis over the
// whole type-checked module. The syntactic tier (driver.go) reads one
// package at a time; the typed tier (typed.go) type-checks packages but
// still reasons function-by-function. The invariants the sharded engine
// (internal/topo, DESIGN.md §9) stakes its bit-identity claim on are
// neither: whether a *sim.Scheduler can leak from its owning shard is a
// question about pointer flow across internal/topo, internal/router and
// internal/sim together, and whether an inbox drain can run outside the
// barrier step is a question about the call graph rooted at Run. So
// this tier builds a World — module-wide facts shared by its analyzers:
//
//   - the set of types annotated //ctmsvet:shardowned (a doc-comment
//     line on the type declaration, like //ctmsvet:enum), plus the
//     transitive "shard-reachable" closure over struct fields, pointers,
//     slices, arrays, maps and channels (function and interface types
//     are opaque: ownership cannot flow through a value the analysis
//     cannot see into);
//   - the functions annotated //ctmsvet:crossing <role> <reason> — the
//     blessed points where shard state may cross a goroutine boundary.
//     Roles are push (sender-side enqueue), drain (receiver-side dequeue
//     at a window boundary) and peek (read-only end-of-run accounting);
//     the reason is mandatory, exactly as for //ctmsvet:allow;
//   - a static call graph: every resolvable call edge in the module,
//     with calls inside function literals attributed to the enclosing
//     declaration (the scheduler runs callbacks on the owning shard's
//     goroutine, so a closure scheduled from a function shares that
//     function's ownership context).
//
// Three analyzers consume the World: shardowned (ownership escapes),
// seedflow (RNG derivation and sharing) and barrier (inbox discipline).
// They run over the sim-critical packages only — the same scope the
// determinism analyzer guards — but the World is always built from the
// whole module, so an annotation in internal/sim is visible to a check
// in internal/topo. Both type-checked tiers share one module load:
// cmd/ctmsvet calls LoadTypedModule once and hands the Module to
// RunModuleTyped and RunModuleInter.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// InterAnalyzer is one named rule set run over a package with the
// module-wide World in scope.
type InterAnalyzer struct {
	Name string
	Doc  string
	Run  func(*InterPass)
}

// InterPass is one interprocedural analyzer's view of one package.
type InterPass struct {
	Analyzer *InterAnalyzer
	Pkg      *TypedPackage
	World    *World
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *InterPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the checker did not record one.
func (p *InterPass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier through the Defs and Uses tables.
func (p *InterPass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

// AllInter lists the interprocedural-tier analyzers.
var AllInter = []*InterAnalyzer{Shardowned, Seedflow, Barrier}

// selectInter resolves an -analyzers style selection against the
// interprocedural suite; an empty selection means all.
func selectInter(only []string) []*InterAnalyzer {
	if len(only) == 0 {
		return AllInter
	}
	var out []*InterAnalyzer
	for _, a := range AllInter {
		for _, n := range only {
			if a.Name == n {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// The ownership and crossing directives. Both are doc-comment lines,
// parsed with the same totality discipline as //ctmsvet:allow (the
// fuzz tests hold parseCrossingDirective to it).
const (
	shardownedDirective = "//ctmsvet:shardowned"
	crossingPrefix      = "//ctmsvet:crossing"
)

// crossingRoles is the vocabulary of //ctmsvet:crossing <role> <reason>.
var crossingRoles = map[string]bool{"push": true, "drain": true, "peek": true}

// parseCrossingDirective parses one comment's text. ok reports whether
// the comment is a crossing directive at all; malformed-but-recognized
// directives return ok with an empty or unknown role or an empty
// reason, which World.validate turns into findings. Total over any
// input, like parseAllowDirective.
func parseCrossingDirective(text string) (role, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, crossingPrefix)
	if !ok {
		return "", "", false
	}
	role, reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
	return role, strings.TrimSpace(reason), true
}

// hasShardownedDirective reports whether any of the comment groups
// carries the bare //ctmsvet:shardowned line.
func hasShardownedDirective(cgs ...*ast.CommentGroup) bool {
	for _, cg := range cgs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.TrimSpace(c.Text) == shardownedDirective {
				return true
			}
		}
	}
	return false
}

// crossing is one blessed ownership-boundary function.
type crossing struct {
	role   string
	reason string
	pos    token.Pos
}

// callSite is one resolvable call in the module: the callee object, the
// enclosing function declaration (calls inside function literals are
// attributed to the declaration that lexically contains them), and the
// package the call appears in.
type callSite struct {
	pkg    *TypedPackage
	caller types.Object // nil for calls in package-level initializers
	callee types.Object
	call   *ast.CallExpr
}

// World is the module-wide fact base the interprocedural analyzers
// share: annotations, the shard-reachability closure and the call graph.
type World struct {
	Mod *Module

	shardOwned map[*types.TypeName]bool
	crossings  map[types.Object]crossing
	malformed  []Diagnostic // directive-placement and -syntax findings

	sites []callSite
	edges map[types.Object]map[types.Object]bool // caller -> callees

	reach map[types.Type]bool // memo: type reaches a shardowned type
}

// BuildWorld scans every package of the module once.
func BuildWorld(mod *Module) *World {
	w := &World{
		Mod:        mod,
		shardOwned: make(map[*types.TypeName]bool),
		crossings:  make(map[types.Object]crossing),
		edges:      make(map[types.Object]map[types.Object]bool),
		reach:      make(map[types.Type]bool),
	}
	for _, tp := range mod.Packages() {
		w.scanAnnotations(tp)
		w.scanCalls(tp)
	}
	return w
}

// scanAnnotations collects //ctmsvet:shardowned type marks and
// //ctmsvet:crossing function marks, validating placement and shape.
// Malformed directives become findings (attributed to the suite name,
// like malformed allows) the moment the package enters a run's scope.
func (w *World) scanAnnotations(tp *TypedPackage) {
	for _, f := range tp.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasShardownedDirective(d.Doc, ts.Doc) {
						if tn, ok := tp.Info.Defs[ts.Name].(*types.TypeName); ok {
							w.shardOwned[tn] = true
						}
					}
				}
			case *ast.FuncDecl:
				role, reason, ok := w.funcCrossing(tp, d)
				if !ok {
					continue
				}
				obj := tp.Info.Defs[d.Name]
				if obj == nil {
					continue
				}
				w.crossings[obj] = crossing{role: role, reason: reason, pos: d.Pos()}
			}
		}
		// Directives on anything but their own declaration kind rot
		// silently; sweep every comment for misplaced or malformed ones.
		w.validateDirectives(tp, f)
	}
}

// funcCrossing extracts a crossing directive from a function's doc.
func (w *World) funcCrossing(tp *TypedPackage, fd *ast.FuncDecl) (role, reason string, ok bool) {
	if fd.Doc == nil {
		return "", "", false
	}
	for _, c := range fd.Doc.List {
		if r, rs, isCrossing := parseCrossingDirective(c.Text); isCrossing {
			return r, rs, true
		}
	}
	return "", "", false
}

// validateDirectives reports malformed crossing directives: a missing
// role, an unknown role, or a missing reason. Placement is implicitly
// validated by funcCrossing only reading function docs: a crossing
// comment elsewhere is still swept up here for shape errors, so a typo
// never silently un-blesses a function.
func (w *World) validateDirectives(tp *TypedPackage, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			role, reason, ok := parseCrossingDirective(c.Text)
			if !ok {
				continue
			}
			pos := tp.Fset.Position(c.Pos())
			switch {
			case role == "":
				w.malformed = append(w.malformed, Diagnostic{
					Analyzer: "ctmsvet", File: pos.Filename, Line: pos.Line, Col: 1,
					Message: "crossing directive names no role (want //ctmsvet:crossing <push|drain|peek> <reason>)",
				})
			case !crossingRoles[role]:
				w.malformed = append(w.malformed, Diagnostic{
					Analyzer: "ctmsvet", File: pos.Filename, Line: pos.Line, Col: 1,
					Message: fmt.Sprintf("crossing directive names unknown role %q (valid: push, drain, peek)", role),
				})
			case reason == "":
				w.malformed = append(w.malformed, Diagnostic{
					Analyzer: "ctmsvet", File: pos.Filename, Line: pos.Line, Col: 1,
					Message: fmt.Sprintf("crossing directive for role %q is missing its mandatory reason", role),
				})
			}
		}
	}
}

// scanCalls records every resolvable call edge in the package. Function
// literals do not get their own node: a call inside a closure belongs
// to the enclosing declaration, because closures run (immediately, via
// the scheduler, or as stored callbacks) in the ownership context that
// built them — which is exactly the property the barrier analyzer's
// reachability model needs.
func (w *World) scanCalls(tp *TypedPackage) {
	for _, f := range tp.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller := types.Object(nil)
			if o := tp.Info.Defs[fd.Name]; o != nil {
				caller = o
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := w.calleeOf(tp, call)
				if callee == nil {
					return true
				}
				w.sites = append(w.sites, callSite{pkg: tp, caller: caller, callee: callee, call: call})
				if caller != nil {
					m := w.edges[caller]
					if m == nil {
						m = make(map[types.Object]bool)
						w.edges[caller] = m
					}
					m[callee] = true
				}
				return true
			})
		}
	}
}

// calleeOf resolves a call expression to its function object, or nil
// for calls through function values the graph cannot see into. The dim
// tier shares the same resolution (calleeObjectOf, dimflow.go).
func (w *World) calleeOf(tp *TypedPackage, call *ast.CallExpr) types.Object {
	return calleeObjectOf(tp, call)
}

// Crossing reports the crossing annotation on a function object.
func (w *World) Crossing(obj types.Object) (crossing, bool) {
	c, ok := w.crossings[obj]
	return c, ok
}

// ReachableFrom computes the set of function objects reachable from the
// roots over the static call graph.
func (w *World) ReachableFrom(roots ...types.Object) map[types.Object]bool {
	seen := make(map[types.Object]bool)
	queue := append([]types.Object(nil), roots...)
	for len(queue) > 0 {
		o := queue[0]
		queue = queue[1:]
		if o == nil || seen[o] {
			continue
		}
		seen[o] = true
		for callee := range w.edges[o] {
			if !seen[callee] {
				queue = append(queue, callee)
			}
		}
	}
	return seen
}

// ShardReachable reports whether t can reach a //ctmsvet:shardowned
// type through struct fields, pointers, slices, arrays, maps or
// channels. Function and interface types are opaque — ownership cannot
// be traced through a value the analysis cannot look into — which is
// the documented approximation boundary: handing shard state to a
// goroutine hidden behind an interface needs a reasoned allow on the
// store that boxed it.
func (w *World) ShardReachable(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := w.reach[t]; ok {
		return v
	}
	v := w.reaches(t, make(map[types.Type]bool))
	w.reach[t] = v
	return v
}

func (w *World) reaches(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch x := t.(type) {
	case *types.Alias:
		return w.reaches(types.Unalias(x), seen)
	case *types.Named:
		if w.shardOwned[x.Obj()] {
			return true
		}
		return w.reaches(x.Underlying(), seen)
	case *types.Pointer:
		return w.reaches(x.Elem(), seen)
	case *types.Slice:
		return w.reaches(x.Elem(), seen)
	case *types.Array:
		return w.reaches(x.Elem(), seen)
	case *types.Chan:
		return w.reaches(x.Elem(), seen)
	case *types.Map:
		return w.reaches(x.Key(), seen) || w.reaches(x.Elem(), seen)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if w.reaches(x.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// RunInter executes interprocedural analyzers over the scoped packages
// of a loaded module, building the World once. scope is the set of
// package directories to report on (nil means every package); the World
// is always module-wide, so out-of-scope annotations still count.
// //ctmsvet:allow suppression applies exactly as in the other tiers.
func RunInter(mod *Module, scope map[string]bool, as []*InterAnalyzer) []Diagnostic {
	w := BuildWorld(mod)
	var diags []Diagnostic
	var directives []directive
	for _, tp := range mod.Packages() {
		if scope != nil && !scope[tp.Dir] {
			continue
		}
		for _, a := range as {
			a.Run(&InterPass{Analyzer: a, Pkg: tp, World: w, diags: &diags})
		}
		directives = append(directives, collectDirectives(tp.Package)...)
		for _, d := range w.malformed {
			if filepath.Dir(d.File) == tp.Dir {
				diags = append(diags, d)
			}
		}
	}
	diags = suppressDiagnostics(diags, directives)
	sortDiagnostics(diags)
	return diags
}

// simCriticalScope maps SimCriticalPackages onto absolute directories
// under root, plus the root package itself for none — the
// interprocedural tier guards the simulation core only, like the
// determinism analyzer.
func simCriticalScope(root string) map[string]bool {
	scope := make(map[string]bool, len(SimCriticalPackages))
	for _, dir := range SimCriticalPackages {
		scope[filepath.Join(root, filepath.FromSlash(dir))] = true
	}
	return scope
}

// RunModuleInter runs the interprocedural tier — optionally restricted
// to the named analyzers — over an already-loaded module with the repo
// scoping rules (sim-critical packages only).
func RunModuleInter(mod *Module, only ...string) ([]Diagnostic, error) {
	if err := SelectNames(only); err != nil {
		return nil, fmt.Errorf("ctmsvet: %w", err)
	}
	as := selectInter(only)
	if len(as) == 0 {
		return nil, nil
	}
	return RunInter(mod, simCriticalScope(mod.Root), as), nil
}

// RunRepoInter loads the module at root and runs the interprocedural
// tier over its sim-critical packages.
func RunRepoInter(root string, only ...string) ([]Diagnostic, error) {
	if err := SelectNames(only); err != nil {
		return nil, fmt.Errorf("ctmsvet: %w", err)
	}
	if len(selectInter(only)) == 0 {
		return nil, nil
	}
	mod, err := LoadTypedModule(root)
	if err != nil {
		return nil, fmt.Errorf("ctmsvet: interprocedural pass: %w", err)
	}
	return RunModuleInter(mod, only...)
}
