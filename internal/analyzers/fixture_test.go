package analyzers

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// A wantComment is one golden diagnostic parsed from a fixture file:
//
//	code // want `regex`
//
// A want on a line of its own attaches to the nearest code line above it
// (needed where the flagged line's trailing comment is itself the
// directive under test).
type wantComment struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRx = regexp.MustCompile("// want `([^`]+)`")

// wantOnlyRx matches lines that hold nothing but want comments.
var wantOnlyRx = regexp.MustCompile("^\\s*// want `")

func parseWants(t *testing.T, pkg *Package) []wantComment {
	t.Helper()
	var wants []wantComment
	for _, f := range pkg.Files {
		filename := pkg.Fset.Position(f.Pos()).Filename
		data, err := os.ReadFile(filename)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		lastCode := 0
		line := 0
		for _, text := range regexp.MustCompile("\r?\n").Split(string(data), -1) {
			line++
			standalone := wantOnlyRx.MatchString(text)
			if !standalone {
				lastCode = line
			}
			for _, m := range wantRx.FindAllStringSubmatch(text, -1) {
				at := line
				if standalone {
					at = lastCode
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", filename, line, m[1], err)
				}
				wants = append(wants, wantComment{file: filename, line: at, re: re})
			}
		}
	}
	return wants
}

// runFixture loads the fixture package in dir, runs the given analyzers
// over it, and checks the diagnostics against the // want comments in
// both directions: every diagnostic must be wanted, every want must
// fire.
func runFixture(t *testing.T, dir string, as ...*Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := LoadPackage(fset, dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("no fixture package in %s", dir)
	}
	idx := BuildIndex([]*Package{pkg})
	diags := Run([]Target{NewTarget(pkg, as...)}, idx)
	matchWants(t, diags, parseWants(t, pkg))
}

// matchWants checks diagnostics against want comments in both
// directions: every diagnostic must be wanted, every want must fire.
func matchWants(t *testing.T, diags []Diagnostic, wants []wantComment) {
	t.Helper()
	for _, d := range diags {
		found := false
		for i := range wants {
			w := &wants[i]
			if w.matched || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q, got no matching diagnostic", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "determinism"), Determinism)
}

func TestUnitsFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "units"), Units)
}

func TestExhaustiveFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "exhaustive"), Exhaustive)
}

func TestAllowFixture(t *testing.T) {
	runFixture(t, filepath.Join("testdata", "allow"), All...)
}
