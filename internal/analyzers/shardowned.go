package analyzers

// shardowned is the ownership-escape analyzer. The sharded engine's
// bit-identity claim (DESIGN.md §9) rests on every shard's mutable
// state — its scheduler, rings, machines, playout buffers, RNGs — being
// touched by exactly one goroutine between barriers. A type opts into
// that contract with //ctmsvet:shardowned on its declaration; this
// analyzer then flags the ways such state can leave its owner:
//
//   1. a package-level variable whose type can reach a shardowned type
//      (a global is reachable from every goroutine by construction);
//   2. an assignment that stores a shard-reachable value into a
//      package-level variable;
//   3. a go statement whose function literal captures, or whose call
//      passes, shard-reachable values — handing state to a new
//      goroutine. The engine's own worker spawn is exactly this and
//      carries a reasoned //ctmsvet:allow: the spawn site is where the
//      ownership transfer is argued, once, in text;
//   4. a channel send of a shard-reachable value (channels are how
//      state walks to another goroutine without a go statement);
//   5. a function that locks a sync.Mutex or sync.RWMutex while
//      touching shard-reachable state must be annotated
//      //ctmsvet:crossing <role> <reason> — a mutex around shard state
//      means two goroutines expect to touch it, which is only legal at
//      the blessed inbox boundary (put/drain/leftover in the engine).

import (
	"go/ast"
	"go/types"
)

// Shardowned flags shard-owned state escaping its owning goroutine.
var Shardowned = &InterAnalyzer{
	Name: "shardowned",
	Doc:  "flag //ctmsvet:shardowned state reaching globals, other goroutines, or unblessed mutex sections",
	Run:  runShardowned,
}

func runShardowned(p *InterPass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkShardGlobals(p, d)
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				checkShardBody(p, d)
			}
		}
	}
}

// checkShardGlobals flags package-level variables that can reach
// shard-owned state (rule 1).
func checkShardGlobals(p *InterPass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, name := range vs.Names {
			obj := p.Pkg.Info.Defs[name]
			v, ok := obj.(*types.Var)
			if !ok || name.Name == "_" {
				continue
			}
			if p.World.ShardReachable(v.Type()) {
				p.Reportf(name.Pos(),
					"package-level var %s can reach shardowned state (type %s); shard state must live inside its owning shard",
					name.Name, v.Type())
			}
		}
	}
}

// checkShardBody walks one function for rules 2-5.
func checkShardBody(p *InterPass, fd *ast.FuncDecl) {
	locksMutex := false
	var shardTouch ast.Node // first shard-reachable expression seen
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			checkShardAssign(p, x)
		case *ast.GoStmt:
			checkShardGo(p, x)
			return false // the spawned body runs on the new goroutine; rules 2-4 inside it would double-report
		case *ast.SendStmt:
			if p.World.ShardReachable(p.TypeOf(x.Value)) {
				p.Reportf(x.Arrow,
					"channel send of shard-reachable value (type %s); shard state may only cross via a //ctmsvet:crossing inbox function",
					p.TypeOf(x.Value))
			}
		case *ast.CallExpr:
			if isMutexLock(p, x) {
				locksMutex = true
			}
		case ast.Expr:
			if shardTouch == nil && p.World.ShardReachable(p.TypeOf(x)) {
				shardTouch = x
			}
		}
		return true
	})
	// Rule 5: mutex + shard state in one function body is a crossing
	// point and must say so.
	if locksMutex && shardTouch != nil {
		obj := p.Pkg.Info.Defs[fd.Name]
		if _, blessed := p.World.Crossing(obj); !blessed {
			p.Reportf(fd.Name.Pos(),
				"%s locks a mutex while touching shard-reachable state; annotate //ctmsvet:crossing <push|drain|peek> <reason> if this is a blessed inbox boundary",
				fd.Name.Name)
		}
	}
}

// checkShardAssign flags stores of shard-reachable values into
// package-level variables (rule 2). Field stores into locals stay
// legal: ownership is about which goroutine can see the value, and a
// local composite is still confined.
func checkShardAssign(p *InterPass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) && len(as.Rhs) != 1 {
			break
		}
		rhs := as.Rhs[0]
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.Parent() == nil || v.Parent() != v.Pkg().Scope() {
			continue // not a package-level variable
		}
		if p.World.ShardReachable(p.TypeOf(rhs)) {
			p.Reportf(as.Pos(),
				"store of shard-reachable value (type %s) into package-level var %s",
				p.TypeOf(rhs), id.Name)
		}
	}
}

// checkShardGo flags go statements that hand shard-reachable state to
// the new goroutine (rule 3): by argument, by method receiver, or by
// closure capture.
func checkShardGo(p *InterPass, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if p.World.ShardReachable(p.TypeOf(arg)) {
			p.Reportf(g.Pos(),
				"go statement passes shard-reachable value (type %s) to a new goroutine", p.TypeOf(arg))
			return
		}
	}
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.SelectorExpr:
		if p.World.ShardReachable(p.TypeOf(fun.X)) {
			p.Reportf(g.Pos(),
				"go statement runs a method on shard-reachable receiver (type %s)", p.TypeOf(fun.X))
		}
	case *ast.FuncLit:
		if cap, t := shardCapture(p, fun); cap != nil {
			p.Reportf(g.Pos(),
				"go statement's closure captures shard-reachable %s (type %s)", cap.Name, t)
		}
	}
}

// shardCapture finds a free identifier of the function literal whose
// type is shard-reachable: a variable used inside the literal but
// declared outside it.
func shardCapture(p *InterPass, lit *ast.FuncLit) (*ast.Ident, types.Type) {
	var found *ast.Ident
	var foundType types.Type
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		// Declared outside the literal?
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		if p.World.ShardReachable(v.Type()) {
			found, foundType = id, v.Type()
		}
		return true
	})
	return found, foundType
}

// isMutexLock reports whether the call is (*sync.Mutex).Lock/Unlock or
// the RWMutex equivalents, on any receiver.
func isMutexLock(p *InterPass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return false
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	ptr, ok := sig.Recv().Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}
