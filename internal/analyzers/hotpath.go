package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotpath enforces allocation-freedom for functions marked with a
// //ctmsvet:hotpath doc-comment line — the scheduler push/pop/free-list,
// the tradapter tx path, the ctmsp send path and the playout tick. The
// paper's whole argument is that the data path must run at device rate;
// a GC allocation per event or per packet is how that budget quietly
// erodes.
//
// Flagged inside a hotpath function:
//   - &T{...} composite-literal pointers, slice and map literals,
//   - make() and new(),
//   - append() that may grow its backing array (appending to a slice
//     expression — the delete/compact idiom — is exempt: it writes in
//     place),
//   - any fmt.* call,
//   - boxing a basic value (int, float, string, bool) into an
//     interface parameter,
//   - closures that capture local variables and are not immediately
//     invoked,
//   - a method value (x.M referenced, not called): it boxes its
//     receiver into a new func value — an allocation the call syntax
//     hides completely.
//
// Cold failure branches are exempt: an if-body whose last statement is
// panic(...) or Checkf(false, ...) is the crash path, not the data
// path, so allocations there (the panic message) are fine. Everything
// else needs a //ctmsvet:allow hotpath <reason>.
var Hotpath = &TypedAnalyzer{
	Name: "hotpath",
	Doc:  "functions marked //ctmsvet:hotpath must not allocate",
	Run:  runHotpath,
}

const hotpathDirective = "//ctmsvet:hotpath"

func runHotpath(p *TypedPass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpathFunc(fd) {
				continue
			}
			checkHotpathBody(p, fd)
		}
	}
}

func isHotpathFunc(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == hotpathDirective {
			return true
		}
	}
	return false
}

func checkHotpathBody(p *TypedPass, fd *ast.FuncDecl) {
	// Cold failure branches and immediately-invoked closures need the
	// parent node, which ast.Inspect does not give us — collect both
	// up front.
	cold := make(map[*ast.BlockStmt]bool)
	invoked := make(map[*ast.FuncLit]bool)
	called := make(map[*ast.SelectorExpr]bool) // x.M in call position: a plain method call, not a method value
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if isColdBlock(x.Body) {
				cold[x.Body] = true
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				invoked[lit] = true
			}
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				called[sel] = true
			}
		}
		return true
	})

	handled := make(map[ast.Node]bool) // inner literal of a flagged &T{...}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt:
			if cold[x] {
				return false
			}
		case *ast.UnaryExpr:
			if lit, ok := x.X.(*ast.CompositeLit); ok && x.Op == token.AND {
				handled[lit] = true
				p.Reportf(x.Pos(), "allocates: &%s{...} in hotpath function %s", exprString(lit.Type), fd.Name.Name)
			}
		case *ast.CompositeLit:
			if handled[x] {
				return true
			}
			if t := p.TypeOf(x); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					p.Reportf(x.Pos(), "allocates: slice literal in hotpath function %s", fd.Name.Name)
				case *types.Map:
					p.Reportf(x.Pos(), "allocates: map literal in hotpath function %s", fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(p, fd, x)
		case *ast.FuncLit:
			if !invoked[x] && capturesLocal(p, x) {
				p.Reportf(x.Pos(), "allocates: closure captures local state in hotpath function %s", fd.Name.Name)
			}
		case *ast.SelectorExpr:
			if !called[x] {
				if sel, ok := p.Pkg.Info.Selections[x]; ok && sel.Kind() == types.MethodVal {
					p.Reportf(x.Pos(), "allocates: method value %s.%s boxes its receiver in hotpath function %s (call it, or hoist the bound value out of the hot path)",
						exprString(x.X), x.Sel.Name, fd.Name.Name)
				}
			}
		}
		return true
	})
}

func checkHotpathCall(p *TypedPass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if checkStringByteConversion(p, fd, call) {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			p.Reportf(call.Pos(), "allocates: make in hotpath function %s", fd.Name.Name)
			return
		case "new":
			p.Reportf(call.Pos(), "allocates: new in hotpath function %s", fd.Name.Name)
			return
		case "append":
			// append to a slice expression (the delete/compact idiom,
			// append(s[:i], s[i+1:]...)) writes in place; anything else
			// may grow the backing array
			if len(call.Args) > 0 {
				if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
					return
				}
			}
			p.Reportf(call.Pos(), "append may grow its backing array in hotpath function %s (preallocate or //ctmsvet:allow with the capacity argument)", fd.Name.Name)
			return
		}
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := p.ObjectOf(id).(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				p.Reportf(call.Pos(), "fmt.%s allocates in hotpath function %s", fun.Sel.Name, fd.Name.Name)
				return
			}
		}
	}
	checkBoxing(p, fd, call)
}

// checkStringByteConversion flags string([]byte) and []byte(string)
// conversions: each copies the data into a fresh allocation. Cold
// failure branches are exempt by construction — the walker never
// descends into them — matching the panic/Checkf rule for every other
// hotpath check. Reports true when call is such a conversion.
func checkStringByteConversion(p *TypedPass, fd *ast.FuncDecl, call *ast.CallExpr) bool {
	tv, ok := p.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	at := p.TypeOf(call.Args[0])
	if at == nil {
		return false
	}
	switch {
	case isStringType(tv.Type) && isByteSliceType(at):
		p.Reportf(call.Pos(), "allocates: string(byte slice) copies in hotpath function %s (keep it as []byte, or hoist the conversion off the hot path)", fd.Name.Name)
		return true
	case isByteSliceType(tv.Type) && isStringType(at):
		p.Reportf(call.Pos(), "allocates: []byte(string) copies in hotpath function %s (keep it as a string, or hoist the conversion off the hot path)", fd.Name.Name)
		return true
	}
	return false
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSliceType(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// checkBoxing flags basic values (ints, floats, strings, bools) passed
// to interface parameters — each such argument is a heap allocation.
// Pointer and struct boxing is deliberately not flagged: those are
// design choices, not accidents.
func checkBoxing(p *TypedPass, fd *ast.FuncDecl, call *ast.CallExpr) {
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() != types.UntypedNil && b.Kind() != types.Invalid {
			p.Reportf(arg.Pos(), "boxes %s into interface (allocates) in hotpath function %s", at.String(), fd.Name.Name)
		}
	}
}

// isColdBlock recognizes the crash path: a block whose last statement
// is panic(...) or Checkf(false, ...).
func isColdBlock(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			return true
		}
		return fun.Name == "Checkf" && checkfIsFalse(call)
	case *ast.SelectorExpr:
		return fun.Sel.Name == "Checkf" && checkfIsFalse(call)
	}
	return false
}

func checkfIsFalse(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && id.Name == "false"
}

// capturesLocal reports whether lit references a function-local
// variable declared outside it. A closure over locals needs a heap
// context; one over package state (or nothing) does not allocate.
func capturesLocal(p *TypedPass, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
			return true // package-level state: no closure context needed
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.ArrayType:
		return "[]" + exprString(x.Elt)
	default:
		return "T"
	}
}
