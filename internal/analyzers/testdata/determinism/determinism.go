// Package determinism is a ctmsvet fixture: every rule of the
// determinism analyzer, positive and negative. The // want comments are
// golden diagnostics matched by the test harness.
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

type tracer struct{}

func (tracer) Add(at int64, what string)                 {}
func (tracer) Addf(at int64, format string, args ...any) {}
func (tracer) Match(at int64, what string) bool          { return false }

var trace tracer

func clocks() {
	_ = time.Now()          // want `time.Now reads the wall clock`
	time.Sleep(time.Second) // want `time.Sleep reads the wall clock`
	start := time.Now()     // want `time.Now reads the wall clock`
	_ = time.Since(start)   // want `time.Since reads the wall clock`

	d := 5 * time.Millisecond // duration constants never read the clock
	_ = d.String()
}

func randoms(seed int64) {
	_ = rand.Intn(6)   // want `rand.Intn draws from the process-global generator`
	_ = rand.Float64() // want `rand.Float64 draws from the process-global generator`

	r := rand.New(rand.NewSource(seed)) // seeded *rand.Rand: allowed
	_ = r.Intn(6)
}

func mapOrder(m map[string]int, ch chan string) []string {
	var out []string
	for k := range m { // want `range over map appends to a slice`
		out = append(out, k)
	}
	for k := range m { // want `range over map sends on a channel`
		ch <- k
	}
	for k, v := range m { // want `range over map emits a trace event`
		trace.Addf(int64(v), "%s", k)
	}

	total := 0
	for _, v := range m { // reads only: iteration order cannot leak out
		total += v
	}
	_ = total

	keys := make([]string, 0, len(m))
	//ctmsvet:allow determinism keys are collected then sorted before any ordered use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys { // ranging the sorted slice: deterministic
		out = append(out, k)
	}
	return out
}

func localMaps() []int {
	m := make(map[int]int)
	var out []int
	for k := range m { // want `range over map appends to a slice`
		out = append(out, k)
	}
	other := map[string]bool{}
	for k := range other { // want `range over map sends on a channel`
		sink <- k
	}
	return out
}

var sink chan string

type holder struct{ items map[string]int }

func fieldMaps(h holder, ch chan string) {
	for k := range h.items { // want `range over map sends on a channel`
		ch <- k
	}
}

func sliceRanges(xs []string) []string {
	var out []string
	for _, x := range xs { // slices iterate in index order: fine
		out = append(out, x)
	}
	return out
}
