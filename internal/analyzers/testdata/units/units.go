// Package units is a ctmsvet fixture: every rule of the units analyzer,
// positive and negative. The // want comments are golden diagnostics
// matched by the test harness.
package units

// The helpers give the call-argument rule declared parameter names.
func sendBits(frameBits int64)     { _ = frameBits }
func sendBytes(payloadBytes int64) { _ = payloadBytes }

type config struct {
	packetBytes int
	ringBits    int64
	rate        float64 // want `field config.rate is a unitless rate`
	label       string  // non-numeric names carry no unit burden
}

func assigns(packetBytes int) {
	frameBits := int64(packetBytes)    // want `assignment to frameBits \(bits\) built from bytes-named values`
	frameBits = int64(packetBytes) * 8 // the conversion is visible: fine
	wireBytes := int(frameBits) / 8    // so is the other direction
	wireBytes = packetBytes            // bytes into bytes: fine
	_ = wireBytes
	_ = frameBits
}

func mixed(headerBytes, frameBits int) {
	total := headerBytes + frameBits // want `mixes bits- and bytes-named values`
	_ = total
	wire := headerBytes*8 + frameBits // the 8 marks the conversion: fine
	_ = wire
}

func ambiguousLocal(packetBytes int) {
	rate := float64(packetBytes) / 0.012 // want `rate is a unitless rate fed from bytes-named values`
	_ = rate
}

func ambiguousParam(rate int) int64 { // want `parameter rate of ambiguousParam is a unitless rate`
	return int64(rate)
}

func offeredBits(packetBytes int) int64 {
	return int64(packetBytes) // want `return value of offeredBits \(bits\) built from bytes-named values`
}

func offeredBitsOK(packetBytes int) int64 {
	return int64(packetBytes) * 8 // conversion shown: fine
}

func calls(packetBytes, messageBits int64) {
	sendBits(packetBytes)      // want `argument frameBits \(bits\) built from bytes-named values`
	sendBits(packetBytes * 8)  // fine
	sendBytes(messageBits)     // want `argument payloadBytes \(bytes\) built from bits-named values`
	sendBytes(messageBits / 8) // fine
}

func literals(nBits int64) {
	c := config{packetBytes: int(nBits)} // want `field packetBytes \(bytes\) built from bits-named values`
	c = config{packetBytes: int(nBits / 8), ringBits: nBits}
	_ = c
}

// A struct literal whose fields carry different units is not "mixing":
// each field answers for itself.
func wholeLiterals(packetBytes int, ringBits int64) config {
	return config{packetBytes: packetBytes, ringBits: ringBits}
}
