// Package allow is a ctmsvet fixture for the //ctmsvet:allow directive:
// both placement forms, the mandatory reason, and unknown-analyzer
// validation. It runs under all three analyzers.
package allow

import "time"

// Trailing form: the directive suppresses its own line.
func sameLine() {
	_ = time.Now() //ctmsvet:allow determinism fixture exercises the trailing form
}

// Line-above form: the directive suppresses the next line.
func lineAbove() {
	//ctmsvet:allow determinism fixture exercises the line-above form
	_ = time.Now()
}

// A directive without a reason is itself a finding, and suppresses
// nothing: the wall-clock read still surfaces.
func missingReason() {
	_ = time.Now() //ctmsvet:allow determinism
	// want `allow directive for "determinism" is missing its mandatory reason`
	// want `time.Now reads the wall clock`
}

// A directive naming an unknown analyzer is a finding and suppresses
// nothing.
func unknownAnalyzer() {
	_ = time.Now() //ctmsvet:allow cosmic rays flipped my bit
	// want `allow directive names unknown analyzer "cosmic"`
	// want `time.Now reads the wall clock`
}

// An allow scoped to one analyzer leaves the others alone.
func unitsAllowed(packetBytes int64) {
	var frameBits int64
	//ctmsvet:allow units fixture exercises suppressing only the units analyzer
	frameBits = packetBytes
	_ = frameBits
}
