// Package poly checks untyped constants stay polymorphic: one literal
// (or named constant) may fill a bits budget on one line and a window in
// seconds on the next without manufacturing a conflict between the two
// slots.
package poly

//ctmsvet:unit bit
var budgetBits int64

//ctmsvet:unit s
var window int64

// quantum is dimensionless until context gives it one.
const quantum = 4096

func fill() {
	budgetBits = quantum
	window = quantum
	budgetBits = 1 << 12
	window = 60
	budgetBits += quantum
}
