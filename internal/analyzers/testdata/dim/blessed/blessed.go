// Package blessed checks the two blessed unit conversions — *8 widens
// bytes to bits, /8 narrows bits to bytes — and that skipping the
// conversion still conflicts.
package blessed

//ctmsvet:unit byte
var sizeBytes int64

//ctmsvet:unit bit
var sizeBits int64

func widen() {
	sizeBits = sizeBytes * 8
	sizeBytes = sizeBits / 8
	sizeBits = 8 * sizeBytes
	sizeBits = sizeBytes // want `byte value flows into bit slot`
}
