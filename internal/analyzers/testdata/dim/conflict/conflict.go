// Package conflict plants a payload measured in bytes flowing into a
// bits slot across a call boundary: the value's seed and the slot's seed
// live in different declarations, and only the interprocedural flow
// connects them.
package conflict

// frame is a wire frame; its payload size is bytes on the medium.
type frame struct {
	//ctmsvet:unit byte
	payload int64
}

var ledger int64

// budget books reserved capacity, owed in bits.
//
//ctmsvet:unit bit n
func budget(n int64) int64 {
	ledger += n
	return ledger
}

// reserve forwards the frame's byte count where bits are owed.
func reserve(f frame) int64 {
	return budget(f.payload) // want `byte value flows into bit slot`
}
