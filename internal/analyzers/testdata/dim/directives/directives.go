// Package directives exercises unit-directive validation: every
// malformed //ctmsvet:unit must fail loudly, never silently skip the
// annotation it was meant to install.
//
// Layout note: the directives here ride trailing comments or float
// free of any declaration — a doc comment would let the formatter
// reorder the directive past its want line. The function-target
// validations (bad parameter name, ambiguous result) need doc-comment
// attachment, so they live in TestDimDirectiveFuncTargets instead.
package directives

var badBase int64 //ctmsvet:unit blip
// want `unknown base unit "blip"`

var trailing int64 //ctmsvet:unit bit/s smoothed over a window
// want `trailing words`

var truncated int64 //ctmsvet:unit bit/
// want `ends in "/"`

var missing int64 //ctmsvet:unit
// want `names no dimension`

//ctmsvet:unit byte
// want `not attached`

type sized struct {
	n int64 //ctmsvet:unit byte n
	// want `takes no target token`
}

func use(s sized) int64 {
	return badBase + trailing + truncated + missing + s.n
}
