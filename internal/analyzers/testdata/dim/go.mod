module dimfix

go 1.22
