// Package exhaustive is a ctmsvet fixture: every rule of the exhaustive
// analyzer, positive and negative. It mirrors the root package's
// enummap.go registry shape; only types registered in an enumTable
// literal are policed.
package exhaustive

type enumTable[P ~string, C comparable] struct {
	def  P
	vals []enumPair[P, C]
}

type enumPair[P ~string, C comparable] struct {
	pub  P
	core C
}

type Protocol string

const (
	CTMSP     Protocol = "ctmsp"
	StockUnix Protocol = "stock-unix"
)

type Load string

const (
	LoadNone   Load = "none"
	LoadNormal Load = "normal"
	LoadHeavy  Load = "heavy"
)

// Tool is deliberately not registered in any enumTable; switches over it
// are exempt.
type Tool string

const (
	LogicAnalyzer Tool = "logic-analyzer"
	PCAT          Tool = "pcat"
)

var protocolTable = enumTable[Protocol, int]{
	def:  CTMSP,
	vals: []enumPair[Protocol, int]{{CTMSP, 0}, {StockUnix, 1}},
}

var loadTable = enumTable[Load, int]{
	def:  LoadNone,
	vals: []enumPair[Load, int]{{LoadNone, 0}, {LoadNormal, 1}, {LoadHeavy, 2}},
}

func missing(l Load) int {
	switch l { // want `switch over Load misses LoadHeavy`
	case LoadNone:
		return 0
	case LoadNormal:
		return 1
	}
	return 2
}

func covered(l Load) int {
	switch l { // every value covered: fine
	case LoadNone, LoadNormal:
		return 0
	case LoadHeavy:
		return 1
	}
	return 2
}

func defaulted(p Protocol) int {
	switch p { // default present: fine
	case CTMSP:
		return 0
	default:
		return 1
	}
}

func viaConversion(s string) int {
	switch Protocol(s) { // want `switch over Protocol misses StockUnix`
	case CTMSP:
		return 0
	}
	return 1
}

func viaVarDecl(s string) int {
	var p Protocol
	p = Protocol(s)
	switch p { // want `switch over Protocol misses CTMSP`
	case StockUnix:
		return 1
	}
	return 0
}

type spec struct{ load Load }

// The tag's type is invisible syntactically, but the case names Load
// constants, so the switch is classified over Load anyway.
func heuristic(s spec) int {
	switch s.load { // want `switch over Load misses LoadNormal, LoadHeavy`
	case LoadNone:
		return 0
	}
	return 1
}

func unregistered(t Tool) int {
	switch t { // Tool is in no enumTable: exempt
	case LogicAnalyzer:
		return 0
	}
	return 1
}

func notAnEnumTag(n int) int {
	switch n { // plain int switches are exempt
	case 0:
		return 0
	}
	return 1
}

// Phase opts in via the //ctmsvet:enum directive instead of an
// enumTable registration.
//
//ctmsvet:enum
type Phase int

const (
	PhaseIdle Phase = iota
	PhaseRunning
	PhaseDone
	numPhases // num* sentinel: a count, not a value — never required in switches
)

func directiveMissing(ph Phase) int {
	switch ph { // want `switch over Phase misses PhaseDone`
	case PhaseIdle:
		return 0
	case PhaseRunning:
		return 1
	}
	return 2
}

// numPhases is not demanded: covering the three real values suffices.
func directiveCovered(ph Phase) int {
	switch ph {
	case PhaseIdle:
		return 0
	case PhaseRunning:
		return 1
	case PhaseDone:
		return 2
	}
	return int(numPhases)
}

// Mode carries the directive on the TypeSpec line comment rather than
// the doc comment; both spellings register.
type Mode int //ctmsvet:enum

const (
	ModeOff Mode = iota
	ModeOn
)

func lineCommentDirective(m Mode) int {
	switch m { // want `switch over Mode misses ModeOn`
	case ModeOff:
		return 0
	}
	return 1
}
