// Package hotpath exercises the no-allocation analyzer for functions
// marked //ctmsvet:hotpath.
package hotpath

import "fmt"

type item struct{ v int }

type q struct {
	items []*item
	buf   []int
}

// Checkf mirrors sim.Checkf: a guard that panics when cond is false.
func Checkf(cond bool, format string, args ...any) {
	if !cond {
		panic(format)
	}
	_ = args
}

func emit(v any) { _ = v }

//ctmsvet:hotpath
func (s *q) push(it *item) {
	s.items = append(s.items, it) // want `append may grow its backing array in hotpath function push`
}

//ctmsvet:hotpath
func makeThings(n int) []int {
	out := make([]int, 0, n) // want `allocates: make in hotpath function makeThings`
	return out
}

//ctmsvet:hotpath
func newItem() *item {
	return new(item) // want `allocates: new in hotpath function newItem`
}

//ctmsvet:hotpath
func build(v int) *item {
	return &item{v: v} // want `allocates: &item\{\.\.\.\} in hotpath function build`
}

//ctmsvet:hotpath
func sliceLit() []int {
	return []int{1, 2, 3} // want `allocates: slice literal in hotpath function sliceLit`
}

//ctmsvet:hotpath
func mapLit() map[int]int {
	return map[int]int{} // want `allocates: map literal in hotpath function mapLit`
}

//ctmsvet:hotpath
func format(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt.Sprintf allocates in hotpath function format`
}

//ctmsvet:hotpath
func boxed(n int) {
	emit(n) // want `boxes int into interface \(allocates\) in hotpath function boxed`
}

//ctmsvet:hotpath
func hotCheckf(t int) {
	Checkf(t >= 0, "bad value", t) // want `boxes int into interface \(allocates\) in hotpath function hotCheckf`
}

//ctmsvet:hotpath
func closure(n int) func() int {
	return func() int { return n } // want `allocates: closure captures local state in hotpath function closure`
}

//ctmsvet:hotpath
func methodValue(s *q) func(*item) {
	return s.push // want `allocates: method value s\.push boxes its receiver in hotpath function methodValue`
}

//ctmsvet:hotpath
func tagString(b []byte) string {
	return string(b) // want `allocates: string\(byte slice\) copies in hotpath function tagString`
}

//ctmsvet:hotpath
func tagBytes(s string) []byte {
	return []byte(s) // want `allocates: \[\]byte\(string\) copies in hotpath function tagBytes`
}

// ---- clean patterns: no diagnostics expected below this line ----

//ctmsvet:hotpath
func methodExpr() func(*q, int) {
	// a method expression carries no receiver: nothing is boxed
	return (*q).compact
}

//ctmsvet:hotpath
func methodCall(s *q, i int) {
	// calling a method directly is not a method value
	s.compact(i)
}

//ctmsvet:hotpath
func (s *q) compact(i int) {
	// append to a slice expression compacts in place: exempt
	s.items = append(s.items[:i], s.items[i+1:]...)
}

//ctmsvet:hotpath
func invokedClosure(n int) int {
	// immediately invoked: no closure value escapes
	return func() int { return n }()
}

//ctmsvet:hotpath
func coldPanic(n int) int {
	if n < 0 {
		// cold failure branch: the crash path may allocate
		panic(fmt.Sprintf("negative %d", n))
	}
	return n
}

//ctmsvet:hotpath
func coldCheckf(t, now int) int {
	if t < now {
		Checkf(false, "time went backwards")
	}
	return t - now
}

//ctmsvet:hotpath
func (s *q) suppressed(v int) {
	s.buf = append(s.buf, v) //ctmsvet:allow hotpath buf reaches steady-state capacity after warmup
}

// coldBuilder carries no directive: allocation is unrestricted.
func coldBuilder() *item {
	return &item{}
}

//ctmsvet:hotpath
func coldConvert(b []byte, bad bool) {
	if bad {
		// cold failure branch: the crash path may build its message
		panic("corrupt header: " + string(b))
	}
}

// header is a named byte-slice: converting between named and unnamed
// byte slices copies nothing.
type header []byte

//ctmsvet:hotpath
func retag(b []byte) header {
	return header(b)
}
