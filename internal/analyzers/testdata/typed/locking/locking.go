// Package locking exercises the `// guarded by <mu>` convention: a
// guarded field may only be touched with the named sibling mutex held.
package locking

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

type misnamed struct {
	mu sync.Mutex
	k  int // guarded by lock
	// want `guarded by lock: struct has no sibling sync.Mutex/RWMutex field named lock`
}

func (c *counter) badNoLock() {
	c.n++ // want `n is guarded by mu, which is not held here`
}

func (c *counter) badEarlyReturn(stop bool) {
	c.mu.Lock()
	c.n++
	if stop {
		return // want `return while mu is locked \(no defer Unlock on this path\)`
	}
	c.n++
	c.mu.Unlock()
}

func (c *counter) badForgotUnlock() {
	c.mu.Lock()
	c.n++
} // want `mu is still locked at the end of badForgotUnlock \(missing Unlock\)`

func (c counter) badValueReceiver() int { // want `value receiver copies lock-bearing struct .*counter; use a pointer receiver`
	return 0
}

func badValueParam(c counter) int { // want `parameter passes lock-bearing struct .*counter by value`
	return 0
}

func badDerefCopy(c *counter) {
	d := *c // want `dereference copies lock-bearing struct .*counter`
	_ = d
}

// ---- clean patterns: no diagnostics expected below this line ----

func (c *counter) goodDefer() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) goodPaired() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	return v
}

// bumpLocked follows the *Locked convention: the caller holds mu.
func (c *counter) bumpLocked() {
	c.n++
}

func (c *counter) goodBranches(add bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if add {
		c.n++
	} else {
		c.n--
	}
}

// closureUnclear: a closure runs in an unknown lock context, so the
// access inside it is not reported either way.
func (c *counter) closureUnclear() func() {
	return func() { c.n++ }
}

func (c *counter) suppressed() int {
	return c.n //ctmsvet:allow locking racy read is fine for stats snapshots
}
