// Package mbuflife exercises the chain-ownership analyzer: every
// *kernel.Chain from the pool must be consumed exactly once on every
// path.
package mbuflife

import (
	"errors"

	"typedfix/kernel"
)

var (
	errExhausted = errors.New("pool exhausted")
	errTooBig    = errors.New("too big")
)

const maxSize = 4096

type out struct {
	Chain *kernel.Chain
	Done  func()
}

var sink *kernel.Chain

// leakOnErrorPath is the motivating bug: the size check returns early
// and the chain is never freed on that path.
func leakOnErrorPath(p *kernel.Pool, size int) error {
	ch := p.AllocNoWait(size) // want `chain ch is never freed, returned, stored or handed off on the path reaching line \d+`
	if ch == nil {
		return errExhausted
	}
	if size > maxSize {
		return errTooBig
	}
	p.Free(ch)
	return nil
}

func doubleFree(p *kernel.Pool) {
	ch := p.AllocNoWait(64)
	if ch == nil {
		return
	}
	p.Free(ch)
	p.Free(ch) // want `chain ch freed again \(allocated at .*\)`
}

func useAfterFree(p *kernel.Pool) int {
	ch := p.AllocNoWait(64)
	if ch == nil {
		return 0
	}
	p.Free(ch)
	return ch.Len // want `chain ch used after Free`
}

// overwriteLeak drops the first chain on the floor by reassigning the
// variable while it is still owned.
func overwriteLeak(p *kernel.Pool) {
	ch := p.AllocNoWait(8) // want `chain ch is never freed, returned, stored or handed off on the path reaching line \d+`
	ch = p.AllocNoWait(16)
	if ch != nil {
		p.Free(ch)
	}
}

// callbackLeak: the chain handed to a Pool.Alloc callback is owned
// inside the callback and must be consumed there.
func callbackLeak(p *kernel.Pool) {
	p.Alloc(16, func(ch *kernel.Chain) { // want `chain ch is never freed, returned, stored or handed off on the path reaching line \d+`
		_ = ch.Len
	})
}

// ---- clean patterns: no diagnostics expected below this line ----

func freeBalanced(p *kernel.Pool, size int) error {
	ch := p.AllocNoWait(size)
	if ch == nil {
		return errExhausted
	}
	if size > maxSize {
		p.Free(ch)
		return errTooBig
	}
	p.Free(ch)
	return nil
}

func deferFree(p *kernel.Pool) int {
	ch := p.AllocNoWait(32)
	if ch == nil {
		return 0
	}
	defer p.Free(ch)
	return ch.Len // legal: defer runs after the read
}

// handOff stores the chain in a packet and hands Free to the Done
// callback — the callback owns it now.
func handOff(p *kernel.Pool) *out {
	ch := p.AllocNoWait(128)
	if ch == nil {
		return nil
	}
	o := &out{Chain: ch}
	return o
}

// doneCallback is the Packet.Done pattern: capturing the chain in a
// closure hands ownership to whoever invokes the closure.
func doneCallback(p *kernel.Pool) *out {
	ch := p.AllocNoWait(128)
	if ch == nil {
		return nil
	}
	o := &out{}
	o.Done = func() { p.Free(ch) }
	return o
}

func returned(p *kernel.Pool) *kernel.Chain {
	ch := p.AllocNoWait(256)
	if ch == nil {
		return nil
	}
	ch.Tag = 7
	return ch // caller owns it
}

func callbackFreed(p *kernel.Pool) {
	p.Alloc(16, func(ch *kernel.Chain) {
		p.Free(ch)
	})
}

func storedGlobally(p *kernel.Pool) {
	sink = p.AllocNoWait(8) // escape: package state owns it
}

// halfConsumed documents the analyzer's deliberate blind spot: the
// branches disagree about the chain's fate, so tracking stops rather
// than guessing (no finding on either path).
func halfConsumed(p *kernel.Pool, cond bool) {
	ch := p.AllocNoWait(8)
	if ch == nil {
		return
	}
	if cond {
		sink = ch
	}
}

func suppressed(p *kernel.Pool, n int) {
	ch := p.AllocNoWait(n) //ctmsvet:allow mbuflife fixture exercises the suppression path
	_ = ch
}
