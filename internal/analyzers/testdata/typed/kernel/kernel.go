// Package kernel is a miniature stand-in for the real mbuf pool so the
// typed fixtures compile as their own module. The analyzers match by
// package name and type name ("kernel", "Chain", "Pool"), so this stub
// exercises exactly the code paths the real tree does.
package kernel

// Chain is a stand-in mbuf chain.
type Chain struct {
	Head *byte
	Len  int
	Tag  int
}

// Pool is a stand-in fixed-buffer pool.
type Pool struct{}

// AllocNoWait returns a chain or nil when the pool is exhausted.
func (p *Pool) AllocNoWait(n int) *Chain { return &Chain{Len: n} }

// Alloc hands an owned chain to fn.
func (p *Pool) Alloc(n int, fn func(*Chain)) { fn(&Chain{Len: n}) }

// Free returns a chain to the pool.
func (p *Pool) Free(c *Chain) { c.Head = nil }
