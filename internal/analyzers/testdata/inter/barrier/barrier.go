// Package barrier exercises the inbox-discipline analyzer: deliverAt
// must be now+latency, pushes happen during windows, drains happen at
// barriers, and nobody does both.
package barrier

import "interfix/sim"

type msg struct{ v int }

type inbox struct {
	msgs []msg
}

// put is the sender-side enqueue.
//
//ctmsvet:crossing push fixture sender-side enqueue during the window
func (b *inbox) put(at sim.Time, m msg) {
	_ = at
	b.msgs = append(b.msgs, m)
}

// drain is the receiver-side dequeue.
//
//ctmsvet:crossing drain fixture dequeue at the window boundary
func (b *inbox) drain(bound sim.Time) []msg {
	_ = bound
	out := b.msgs
	b.msgs = nil
	return out
}

const linkLatency = sim.Time(400)

type engine struct {
	sched *sim.Scheduler
	box   *inbox
}

// validate is the latency-floor guard rule 5 looks for.
func (e *engine) validate(latency sim.Time) bool {
	return latency >= sim.DefaultSwitchCost
}

// send is the correct push shape: now + latency, called from a worker.
func (e *engine) send(m msg) {
	e.box.put(e.sched.Now()+linkLatency, m)
}

func (e *engine) sendNoLatency(m msg) {
	e.box.put(e.sched.Now(), m) // want `adds no latency to Now\(\)`
}

func (e *engine) sendAbsolute(m msg) {
	e.box.put(sim.Time(1000)+linkLatency, m) // want `no \.Now\(\) term`
}

// Run is the barrier-stepping driver.
func (e *engine) Run() {
	e.step()
	e.pushFromRun(msg{v: 1})
}

// step drains at the window boundary: reachable from Run, legal.
func (e *engine) step() {
	_ = e.box.drain(e.sched.Now())
}

func (e *engine) pushFromRun(m msg) {
	e.box.put(e.sched.Now()+linkLatency, m) // want `reachable from Run`
}

// drainEarly consumes mid-window, outside the barrier step.
func (e *engine) drainEarly() {
	_ = e.box.drain(e.sched.Now()) // want `called outside the barrier step`
}

func (e *engine) pump(m msg) { // want `both pushes to and drains an inbox`
	e.box.put(e.sched.Now()+linkLatency, m)
	_ = e.box.drain(e.sched.Now()) // want `called outside the barrier step`
}
