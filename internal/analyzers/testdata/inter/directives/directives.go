// Package directives exercises crossing-directive validation: a typo'd
// directive must fail loudly, never silently un-bless a function.
//
// The malformed directives below float free of any declaration — the
// validation sweep reads every comment group, and a doc comment would
// let the formatter reorder the directive past its want line.
package directives

//ctmsvet:crossing
// want `crossing directive names no role`

func noRole() {}

//ctmsvet:crossing teleport moves messages sideways
// want `unknown role "teleport"`

func badRole() {}

//ctmsvet:crossing push
// want `missing its mandatory reason`

func noReason() {}

// wellFormed is fine: role and reason both present.
//
//ctmsvet:crossing peek fixture directive with role and reason
func wellFormed() {}
