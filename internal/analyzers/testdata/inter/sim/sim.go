// Package sim is a stub of the real engine's simulation core with just
// enough shape for the interprocedural fixtures: simulated time, a
// scheduler, and an RNG constructed from a seed. The analyzers match by
// package and type name, so these stand-ins exercise exactly the code
// paths the real tree does.
package sim

// Time is simulated time in microseconds, like the real package.
type Time int64

// DefaultSwitchCost mirrors router.DefaultSwitchCost: the latency floor
// the barrier fixtures guard against.
const DefaultSwitchCost = Time(180)

// Scheduler is the fixture stand-in for the discrete-event engine.
//
//ctmsvet:shardowned
type Scheduler struct {
	now Time
}

// Now reports the scheduler's current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// RNG is the fixture stand-in for the deterministic variate source.
//
//ctmsvet:shardowned
type RNG struct {
	seed int64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }

// Fork derives a child whose stream depends only on seed and label —
// the same local-temporary shape the real Fork has, so the seedflow
// back-substitution is exercised by the fixture module itself.
func (g *RNG) Fork(label string) *RNG {
	h := g.seed
	for _, c := range label {
		h = h*1099511628211 + int64(c)
	}
	return NewRNG(h)
}

// Uniform is a draw; the fixtures only need the call shape.
func (g *RNG) Uniform() float64 { return float64(g.seed%1000) / 1000 }
