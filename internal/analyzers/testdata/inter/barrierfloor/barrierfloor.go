// Package barrierfloor is a pushing package with no SwitchCost guard
// anywhere: rule 5 anchors its finding on the push declaration.
package barrierfloor

import "interfix/sim"

type msg struct{}

type inbox struct{ msgs []msg }

// put enqueues; nothing in this package validates the latency floor.
//
//ctmsvet:crossing push fixture enqueue with no floor guard anywhere
func (b *inbox) put(at sim.Time, m msg) { // want `never compares a latency against the SwitchCost floor`
	_ = at
	b.msgs = append(b.msgs, m)
}

const lat = sim.Time(300)

type eng struct {
	sched *sim.Scheduler
	box   *inbox
}

func (e *eng) send(m msg) {
	e.box.put(e.sched.Now()+lat, m)
}
