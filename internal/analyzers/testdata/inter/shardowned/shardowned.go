// Package shardowned exercises the ownership-escape analyzer: each
// violation below is one way //ctmsvet:shardowned state can leave the
// goroutine that owns it.
package shardowned

import (
	"sync"

	"interfix/sim"
)

// shard mirrors the engine's per-worker slice of the simulation.
//
//ctmsvet:shardowned
type shard struct {
	sched *sim.Scheduler
}

// wrapper reaches a shard transitively, through an unannotated type.
type wrapper struct {
	s *shard
}

var leaked *shard // want `package-level var leaked can reach shardowned state`

var indirect wrapper // want `package-level var indirect can reach shardowned state`

var sink any

func storeGlobal(s *shard) {
	sink = s // want `store of shard-reachable value .* into package-level var sink`
}

func worker(s *shard) { _ = s }

func spawnArg(s *shard) {
	go worker(s) // want `go statement passes shard-reachable value`
}

func spawnCapture(s *shard) {
	go func() { // want `go statement's closure captures shard-reachable s`
		_ = s.sched
	}()
}

func (s *shard) run() {}

func spawnMethod(s *shard) {
	go s.run() // want `go statement runs a method on shard-reachable receiver`
}

func send(ch chan *shard, s *shard) {
	ch <- s // want `channel send of shard-reachable value`
}

type box struct {
	mu   sync.Mutex
	msgs []*shard
}

func (b *box) unblessed(s *shard) { // want `unblessed locks a mutex while touching shard-reachable state`
	b.mu.Lock()
	b.msgs = append(b.msgs, s)
	b.mu.Unlock()
}

// envelope mirrors the router's pooled cross-ring frame wrapper: a
// free-listed object whose lifetime belongs to the shard that popped it.
// Escaping one is worse than escaping plain shard state — the pool will
// hand the same memory to the next frame while the escapee still reads it.
//
//ctmsvet:shardowned
type envelope struct {
	payload []byte
}

// envPool mirrors the per-shard free list the envelopes recycle through.
// It reaches envelopes transitively, so it is shard-reachable itself.
type envPool struct {
	free []*envelope
}

func (p *envPool) get() *envelope {
	if n := len(p.free); n > 0 {
		e := p.free[n-1]
		p.free = p.free[:n-1]
		return e
	}
	return &envelope{}
}

func (p *envPool) put(e *envelope) {
	e.payload = nil
	p.free = append(p.free, e)
}

var escapedEnv *envelope // want `package-level var escapedEnv can reach shardowned state`

// leakEnvelope parks a pooled envelope in a package-level var: the pool
// recycles it on the next put while the global still points at it.
func leakEnvelope(p *envPool) {
	escapedEnv = p.get() // want `store of shard-reachable value .* into package-level var escapedEnv`
}

// recycleThenSpawn is the use-after-recycle shape: the envelope goes back
// to the free list, then a goroutine keeps reading it.
func recycleThenSpawn(p *envPool, e *envelope) {
	p.put(e)
	go func() { // want `go statement's closure captures shard-reachable e`
		_ = e.payload
	}()
}

// ---- clean patterns: no diagnostics expected below this line ----

// pooledRoundTrip is the blessed steady state: the envelope never leaves
// the owning scope between get and put, so no diagnostic fires.
func pooledRoundTrip(p *envPool) {
	e := p.get()
	e.payload = e.payload[:0]
	p.put(e)
}

// put is the blessed crossing: the mutex section is annotated.
//
//ctmsvet:crossing push fixture inbox enqueue, single writer per direction
func (b *box) put(s *shard) {
	b.mu.Lock()
	b.msgs = append(b.msgs, s)
	b.mu.Unlock()
}

// spawnAllowed is the engine's own pattern: the ownership transfer
// itself, argued once in text.
func spawnAllowed(s *shard) {
	//ctmsvet:allow shardowned fixture exercises the reasoned ownership transfer
	go worker(s)
}

// confined never lets the shard out of the local scope.
func confined() {
	s := &shard{sched: &sim.Scheduler{}}
	worker(s)
}

// ints shows that unrelated state passes untouched.
func ints(ch chan int, n int) {
	ch <- n
	go func() { _ = n }()
}
