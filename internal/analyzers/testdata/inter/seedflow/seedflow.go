// Package seedflow exercises the RNG-derivation analyzer: every RNG
// must derive from a seed that arrives as data, and every stream must
// have exactly one consumer.
package seedflow

import "interfix/sim"

type cfg struct {
	Seed int64
}

type holder struct {
	rng *sim.RNG
}

func literal() *sim.RNG {
	return sim.NewRNG(42) // want `literal seed severs the derivation chain`
}

func foldedLiteral() *sim.RNG {
	return sim.NewRNG(6*7 + 1) // want `literal seed severs the derivation chain`
}

func opaque(x int64) *sim.RNG {
	return sim.NewRNG(x) // want `does not visibly derive from a seed`
}

func feedA(r *sim.RNG) { _ = r }
func feedB(r *sim.RNG) { _ = r }

func shared(r *sim.RNG) {
	feedA(r)
	feedB(r) // want `handed to a second consumer`
}

func stored(r *sim.RNG) *holder {
	h := &holder{}
	h.rng = r
	feedA(r) // want `handed to a second consumer`
	return h
}

func drawInMapRange(r *sim.RNG, m map[int]int) {
	for range m {
		_ = r.Uniform() // want `draw r\.Uniform inside a range-over-map body`
	}
}

// ---- clean patterns: no diagnostics expected below this line ----

// fromParam threads the experiment seed straight through.
func fromParam(seed int64) *sim.RNG {
	return sim.NewRNG(seed)
}

// fromCfg reads the seed out of a config field.
func fromCfg(c cfg) *sim.RNG {
	return sim.NewRNG(c.Seed)
}

// salted derives through a mixing helper, the real tree's mixSeed shape.
func mixSeed(seedBase, salt int64) int64 { return seedBase*0x9E3779B9 + salt }

func salted(seed, i int64) *sim.RNG {
	return sim.NewRNG(mixSeed(seed, i))
}

// viaLocal builds the seed in a local temporary first, the real Fork's
// shape; one level of back-substitution sees through it.
func viaLocal(seed int64) *sim.RNG {
	h := seed ^ 0x1234
	return sim.NewRNG(h)
}

// forked gives each consumer its own child: one handoff per stream.
func forked(r *sim.RNG) {
	feedA(r.Fork("a"))
	feedB(r.Fork("b"))
}

// drawInSliceRange is fine: slice order is deterministic.
func drawInSliceRange(r *sim.RNG, s []int) {
	for range s {
		_ = r.Uniform()
	}
}
