// Package analyzers is ctmsvet's static-analysis suite: a small,
// stdlib-only (go/ast, go/parser, go/token) lint engine plus three
// analyzers that enforce the reproduction's load-bearing invariants
// before any simulation runs.
//
//   - determinism: sim-critical packages must not read the wall clock,
//     draw from the global math/rand generator, or build
//     iteration-order-dependent output while ranging over a map. These
//     are exactly the ways a "bit-identical at any -parallel" guarantee
//     rots silently.
//   - units: the paper's §1/§3 confusion hazard — 150 KB/s media on a
//     4 Mbit/s ring — is kept at bay by naming conventions
//     (...Bits/...Bytes/...BitRate/...BytesPerSec). The analyzer flags
//     assignments, call arguments, returns and composite literals that
//     move a *Bits*-named value into a *Bytes*-named slot (or vice
//     versa) without a literal 8 in the conversion, and identifiers
//     named rate/budget that carry no unit at all.
//   - exhaustive: every switch over a root-package enum registered in
//     enumTable (enummap.go) must cover all values or carry a default,
//     so adding an enum value cannot silently fall through.
//
// A finding can be suppressed at its line (or the line below the
// comment) with
//
//	//ctmsvet:allow <analyzer> <reason>
//
// The reason is mandatory: an allow without one, or naming an unknown
// analyzer, is itself a diagnostic. The engine is deliberately
// syntactic — no go/types, no module loading — so it runs in
// milliseconds, works on fixture packages that never compile, and has
// no dependencies beyond the standard library.
package analyzers

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the file:line:col form editors and CI
// logs hyperlink.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// MarshalJSONDiagnostics renders diagnostics as the -json output mode's
// array (always an array, never null, so consumers can range without a
// nil check).
func MarshalJSONDiagnostics(diags []Diagnostic) ([]byte, error) {
	if diags == nil {
		diags = []Diagnostic{}
	}
	return json.MarshalIndent(diags, "", "  ")
}

// Analyzer is one named rule set run over a package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Package is one parsed directory of non-test Go files.
type Package struct {
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Index    *Index
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// LoadPackage parses every non-test .go file directly in dir (no
// recursion; testdata and nested packages are separate loads). A dir with
// no Go files returns a nil package and no error, so optional scope
// entries cost nothing.
func LoadPackage(fset *token.FileSet, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	pkg := &Package{Dir: dir, Fset: fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", path, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Name = f.Name.Name
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// Index is cross-package knowledge the syntactic analyzers need: which
// declared functions take which parameter names (for unit matching of
// call arguments) and which names are map-typed (for range-over-map
// detection). Keys are both bare ("WireTime", same-package calls) and
// package-qualified ("sim.WireTime", cross-package selector calls).
type Index struct {
	funcParams map[string][]string
	mapFields  map[string]bool
	mapFuncs   map[string]bool
	mapVars    map[string]bool
}

// BuildIndex scans the loaded packages once, before any analyzer runs.
func BuildIndex(pkgs []*Package) *Index {
	idx := &Index{
		funcParams: make(map[string][]string),
		mapFields:  make(map[string]bool),
		mapFuncs:   make(map[string]bool),
		mapVars:    make(map[string]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					idx.indexFunc(pkg.Name, d)
				case *ast.GenDecl:
					idx.indexGen(pkg.Name, d)
				}
			}
		}
	}
	return idx
}

func (idx *Index) indexFunc(pkgName string, d *ast.FuncDecl) {
	if d.Recv != nil {
		// Methods are indexed by bare name only: a selector call x.M
		// cannot be attributed to a package syntactically, so qualified
		// keys would be wrong more often than right.
		idx.funcParams[d.Name.Name] = flattenParams(d.Type.Params)
		if singleMapResult(d.Type.Results) {
			idx.mapFuncs[d.Name.Name] = true
		}
		return
	}
	params := flattenParams(d.Type.Params)
	idx.funcParams[d.Name.Name] = params
	idx.funcParams[pkgName+"."+d.Name.Name] = params
	if singleMapResult(d.Type.Results) {
		idx.mapFuncs[d.Name.Name] = true
		idx.mapFuncs[pkgName+"."+d.Name.Name] = true
	}
}

func (idx *Index) indexGen(pkgName string, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if st, ok := s.Type.(*ast.StructType); ok {
				for _, field := range st.Fields.List {
					if _, isMap := field.Type.(*ast.MapType); !isMap {
						continue
					}
					for _, n := range field.Names {
						idx.mapFields[n.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			if d.Tok != token.VAR {
				continue
			}
			if _, isMap := s.Type.(*ast.MapType); isMap {
				for _, n := range s.Names {
					idx.mapVars[n.Name] = true
					idx.mapVars[pkgName+"."+n.Name] = true
				}
			}
		}
	}
}

func flattenParams(fl *ast.FieldList) []string {
	if fl == nil {
		return nil
	}
	var out []string
	for _, field := range fl.List {
		if len(field.Names) == 0 {
			out = append(out, "_")
			continue
		}
		for _, n := range field.Names {
			out = append(out, n.Name)
		}
	}
	return out
}

func singleMapResult(fl *ast.FieldList) bool {
	if fl == nil || len(fl.List) != 1 || len(fl.List[0].Names) > 1 {
		return false
	}
	_, isMap := fl.List[0].Type.(*ast.MapType)
	return isMap
}

// Target pairs a package with the analyzers that apply to it; scope
// policy (which analyzer runs where) lives with the caller.
type Target struct {
	p         *Package
	analyzers []*Analyzer
}

// NewTarget builds a Target.
func NewTarget(pkg *Package, as ...*Analyzer) Target {
	return Target{p: pkg, analyzers: as}
}

// Run executes every target's analyzers, applies //ctmsvet:allow
// suppressions, validates the directives themselves, and returns the
// surviving diagnostics sorted by file, line, column, analyzer. The
// known-analyzer vocabulary for directive validation spans all tiers
// (see AnalyzerNames), so an allow for a typed analyzer stays valid in
// a syntactic-only run.
func Run(targets []Target, idx *Index) []Diagnostic {
	var diags []Diagnostic
	var directives []directive
	for _, t := range targets {
		if t.p == nil {
			continue
		}
		for _, a := range t.analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: t.p, Index: idx, diags: &diags})
		}
		directives = append(directives, collectDirectives(t.p)...)
	}
	diags = append(validateDirectives(directives, knownAnalyzers()), suppressDiagnostics(diags, directives)...)
	sortDiagnostics(diags)
	return diags
}

// sortDiagnostics orders findings by file, line, column, analyzer — the
// stable order every tier and the merged CLI report use.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// directivePrefix introduces a suppression comment:
//
//	//ctmsvet:allow <analyzer> <reason>
const directivePrefix = "//ctmsvet:allow"

type directive struct {
	file     string
	line     int
	analyzer string
	reason   string
}

// parseAllowDirective parses one comment's text. ok reports whether the
// comment is an allow directive at all; malformed-but-recognized
// directives return ok with empty analyzer or reason, which
// validateDirectives turns into findings. This function is the
// FuzzAllowDirective target: it must be total — any comment text, no
// matter how mangled, parses without panicking.
func parseAllowDirective(text string) (analyzer, reason string, ok bool) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return "", "", false
	}
	analyzer, reason, _ = strings.Cut(strings.TrimSpace(rest), " ")
	return analyzer, strings.TrimSpace(reason), true
}

func collectDirectives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, reason, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, directive{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: analyzer,
					reason:   reason,
				})
			}
		}
	}
	return out
}

// validateDirectives reports malformed directives: no analyzer, an
// unknown analyzer, or a missing reason. It runs once per lint (in the
// syntactic tier), never in the typed tier, so a malformed directive is
// reported exactly once however many tiers scan its package.
func validateDirectives(directives []directive, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range directives {
		switch {
		case d.analyzer == "":
			out = append(out, Diagnostic{
				Analyzer: "ctmsvet", File: d.file, Line: d.line, Col: 1,
				Message: "allow directive names no analyzer (want //ctmsvet:allow <analyzer> <reason>)",
			})
		case !known[d.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: "ctmsvet", File: d.file, Line: d.line, Col: 1,
				Message: fmt.Sprintf("allow directive names unknown analyzer %q", d.analyzer),
			})
		case d.reason == "":
			out = append(out, Diagnostic{
				Analyzer: "ctmsvet", File: d.file, Line: d.line, Col: 1,
				Message: fmt.Sprintf("allow directive for %q is missing its mandatory reason", d.analyzer),
			})
		}
	}
	return out
}

// suppressDiagnostics drops findings covered by a well-formed allow
// directive. A directive suppresses its analyzer's findings on its own
// line (trailing comment) and on the line directly below (comment-above
// form) — the two places gofmt will keep it.
func suppressDiagnostics(diags []Diagnostic, directives []directive) []Diagnostic {
	var out []Diagnostic
	for _, diag := range diags {
		if !suppressed(diag, directives) {
			out = append(out, diag)
		}
	}
	return out
}

func suppressed(diag Diagnostic, directives []directive) bool {
	for _, d := range directives {
		if d.analyzer != diag.Analyzer || d.reason == "" || d.file != diag.File {
			continue
		}
		if diag.Line == d.line || diag.Line == d.line+1 {
			return true
		}
	}
	return false
}

// importPathOf resolves a file-local package identifier (the name before
// a selector dot) to its import path, or "" if the name is not an
// import.
func importPathOf(f *ast.File, name string) string {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		} else {
			if i := strings.LastIndex(path, "/"); i >= 0 {
				local = path[i+1:]
			} else {
				local = path
			}
		}
		if local == name {
			return path
		}
	}
	return ""
}
