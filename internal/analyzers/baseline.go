package analyzers

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Baseline is a set of accepted findings, loaded from a prior -json or
// -out artifact. Running with -baseline subtracts these from the
// current findings, so a tree with known debt can still gate on *new*
// findings: the build fails only when a diagnostic appears that the
// baseline does not cover.
//
// Matching is by analyzer, root-relative file and message — line- and
// column-insensitive, so edits that merely shift an accepted finding
// down the file do not resurrect it. Matching counts multiplicity: a
// baseline with one accepted finding of a given key absorbs one
// current finding, and a second identical finding (the same message at
// another line of the same file) still fails.
type Baseline struct {
	accepted map[baselineKey]int
}

type baselineKey struct {
	Analyzer string
	File     string // root-relative, slash-separated
	Message  string
}

func baselineKeyFor(d Diagnostic, root string) baselineKey {
	file := d.File
	if rel, err := filepath.Rel(root, d.File); err == nil {
		file = rel
	}
	return baselineKey{
		Analyzer: d.Analyzer,
		File:     filepath.ToSlash(file),
		Message:  d.Message,
	}
}

// LoadBaseline reads an accepted-findings artifact (the JSON array the
// -json and -out modes emit). File paths inside the artifact are
// resolved relative to root, so a baseline recorded in one checkout
// matches findings from another.
func LoadBaseline(path, root string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var diags []Diagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	b := &Baseline{accepted: make(map[baselineKey]int)}
	for _, d := range diags {
		b.accepted[baselineKeyFor(d, root)]++
	}
	return b, nil
}

// Size reports how many accepted findings the baseline holds.
func (b *Baseline) Size() int {
	n := 0
	for _, c := range b.accepted {
		n += c
	}
	return n
}

// Filter returns the findings the baseline does not cover, preserving
// order. Each accepted finding absorbs at most one current finding.
func (b *Baseline) Filter(diags []Diagnostic, root string) []Diagnostic {
	remaining := make(map[baselineKey]int, len(b.accepted))
	for k, c := range b.accepted {
		remaining[k] = c
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKeyFor(d, root)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// MergeDiagnostics combines the tiers' findings into one suite
// ordering (file, then line, then analyzer).
func MergeDiagnostics(a, b []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sortDiagnostics(out)
	return out
}
