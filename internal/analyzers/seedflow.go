package analyzers

// seedflow is the RNG-derivation analyzer. Fingerprint() equality
// between the serial oracle and any worker count holds only if every
// random draw is a pure function of the experiment seed: each RNG must
// be constructed from a seed that flows in as data (a parameter, a
// config field, a splitmix-salted derivation, a Fork of a parent), and
// each RNG must have exactly one consumer so draw order is fixed by
// program structure, not by who got to the stream first. The rules:
//
//   1. sim.NewRNG(<constant>) outside _test.go files — a literal seed
//      severs the chain from the experiment seed, so two call paths
//      can silently share one stream (the bug class PR 4's runtime
//      oracle can only catch if a regression seed happens to hit it);
//   2. one function handing the same *RNG to two consumers — passing
//      it to two calls, or storing it into two places; each consumer
//      must get its own Fork so adding a draw to one cannot shift the
//      other's stream;
//   3. an RNG draw inside a range-over-map body — map iteration order
//      is randomized per run, so draw order would differ run to run
//      even with a perfect seed chain.
//
// "sim.RNG" is matched by package name, like mbuflife matches the
// kernel package, so fixture mini-modules with a stub sim package
// exercise the same code paths the real tree does.

import (
	"go/ast"
	"go/types"
	"strings"
)

// Seedflow flags RNG constructions and uses that can break
// fingerprint determinism.
var Seedflow = &InterAnalyzer{
	Name: "seedflow",
	Doc:  "flag literal RNG seeds, RNGs shared by two consumers, and draws inside map iteration",
	Run:  runSeedflow,
}

func runSeedflow(p *InterPass) {
	// LoadPackage never parses _test.go files, so the "no literals
	// outside tests" scoping is structural: everything this pass sees
	// is non-test code.
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSeedBody(p, fd)
		}
	}
}

func checkSeedBody(p *InterPass, fd *ast.FuncDecl) {
	// locals maps simple `x := expr` definitions so seed-ness can be
	// traced one level back through a local temporary (sim.RNG's own
	// Fork builds its child seed in a local before calling NewRNG).
	locals := make(map[types.Object]ast.Expr)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := p.Pkg.Info.Defs[id]; obj != nil {
					locals[obj] = as.Rhs[i]
				}
			}
		}
		return true
	})

	// Rule 1: NewRNG argument provenance.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isNewRNGCall(p, call) || len(call.Args) != 1 {
			return true
		}
		arg := call.Args[0]
		if tv, ok := p.Pkg.Info.Types[arg]; ok && tv.Value != nil {
			p.Reportf(call.Pos(),
				"NewRNG(%s): literal seed severs the derivation chain from the experiment seed; derive from a seed parameter or Fork a parent", types.ExprString(arg))
			return true
		}
		if !seedDerived(p, arg, locals, 0) {
			p.Reportf(call.Pos(),
				"NewRNG argument %s does not visibly derive from a seed; thread the experiment seed or Fork a parent RNG", types.ExprString(arg))
		}
		return true
	})

	// Rule 2: one *RNG object handed to more than one consumer.
	checkRNGHandoffs(p, fd)

	// Rule 3: draws inside range-over-map bodies.
	checkMapRangeDraws(p, fd)
}

// isNewRNGCall matches a call to func NewRNG in a package named sim.
func isNewRNGCall(p *InterPass, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	if id.Name != "NewRNG" {
		return false
	}
	obj := p.Pkg.Info.Uses[id]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// isRNGType reports whether t is (a pointer to) type RNG from a
// package named sim.
func isRNGType(t types.Type) bool {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && obj.Pkg().Name() == "sim"
}

// seedDerived reports whether the expression visibly carries seed
// provenance: an identifier or selector whose name mentions "seed", a
// call to Fork or a mix/splitmix helper, or an arithmetic combination
// of such parts. depth bounds back-substitution through locals.
func seedDerived(p *InterPass, e ast.Expr, locals map[types.Object]ast.Expr, depth int) bool {
	if depth > 4 || e == nil {
		return false
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if seedName(x.Name) {
			return true
		}
		if obj := p.Pkg.Info.Uses[x]; obj != nil {
			if def, ok := locals[obj]; ok {
				return seedDerived(p, def, locals, depth+1)
			}
		}
		return false
	case *ast.SelectorExpr:
		return seedName(x.Sel.Name) || seedDerived(p, x.X, locals, depth+1)
	case *ast.CallExpr:
		if name := callName(x); name == "Fork" || seedName(name) || strings.Contains(strings.ToLower(name), "mix") {
			return true
		}
		for _, arg := range x.Args {
			if seedDerived(p, arg, locals, depth+1) {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return seedDerived(p, x.X, locals, depth+1) || seedDerived(p, x.Y, locals, depth+1)
	case *ast.UnaryExpr:
		return seedDerived(p, x.X, locals, depth+1)
	}
	return false
}

func seedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkRNGHandoffs counts, per *RNG-typed object, the places one
// function hands the stream to a consumer: passing it as an argument
// to a call that is not one of the RNG's own methods, storing it into
// a struct field, or placing it in a composite literal. More than one
// handoff means two consumers share draw order; each should get a Fork.
func checkRNGHandoffs(p *InterPass, fd *ast.FuncDecl) {
	type handoff struct {
		pos   ast.Node
		count int
	}
	handoffs := make(map[types.Object]*handoff)
	record := func(e ast.Expr, site ast.Node) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		obj := p.Pkg.Info.Uses[id]
		if obj == nil || !isRNGType(obj.Type()) {
			return
		}
		h := handoffs[obj]
		if h == nil {
			h = &handoff{}
			handoffs[obj] = h
		}
		h.count++
		h.pos = site
		if h.count == 2 {
			p.Reportf(site.Pos(),
				"*sim.RNG %s handed to a second consumer in %s; Fork a child per consumer so draw orders cannot interleave",
				id.Name, fd.Name.Name)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// A call on the RNG itself (r.Uniform(), r.Fork()) is a
			// draw, not a handoff.
			for _, arg := range x.Args {
				record(arg, x)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					record(kv.Value, kv)
				} else {
					record(el, el)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				// Storing into a field publishes the stream to
				// whoever holds the struct.
				if _, isSel := lhs.(*ast.SelectorExpr); isSel {
					record(x.Rhs[i], x)
				}
			}
		}
		return true
	})
}

// checkMapRangeDraws flags RNG method calls lexically inside a
// range-over-map body.
func checkMapRangeDraws(p *InterPass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isRNGType(p.TypeOf(sel.X)) {
				p.Reportf(call.Pos(),
					"RNG draw %s.%s inside a range-over-map body: map order is randomized per run, so draw order is nondeterministic",
					types.ExprString(sel.X), sel.Sel.Name)
			}
			return true
		})
		return true
	})
}
