package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoComesCleanTyped is the typed tier's half of the lint gate:
// the real repository must come clean under mbuflife, locking and
// hotpath, so any future finding is a genuine ownership, lock or
// allocation regression (or needs a reasoned //ctmsvet:allow).
func TestRepoComesCleanTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("typed pass loads the whole module; skipped under -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	diags, err := RunRepoTyped(root)
	if err != nil {
		t.Fatalf("RunRepoTyped: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestInjectedViolationsTyped is the typed acceptance check in reverse:
// a scratch module carrying one of each headline violation — a chain
// leaked on an error path, a double Free, a guarded-field access
// without the lock, and an allocation in a hotpath function — must
// fail with a diagnostic at the exact file and line of each.
func TestInjectedViolationsTyped(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	// The mbuf stub: mbuflife matches by package name "kernel" and type
	// names Chain/Pool, so a scratch module exercises the real analyzer.
	write("kernel/kernel.go", `// Package kernel stubs the mbuf pool.
package kernel

// Chain is a stub mbuf chain.
type Chain struct {
	Head *byte
	Len  int
	Tag  any
}

// Pool is a stub mbuf pool.
type Pool struct{}

// AllocNoWait returns a chain or nil.
func (p *Pool) AllocNoWait(n int) *Chain {
	if n < 0 {
		return nil
	}
	return &Chain{Len: n}
}

// Alloc allocates and hands the chain to fn.
func (p *Pool) Alloc(n int, fn func(*Chain)) {
	fn(&Chain{Len: n})
}

// Free returns the chain to the pool.
func (p *Pool) Free(ch *Chain) { ch.Len = 0 }
`)
	write("leak.go", `package scratch

import (
	"errors"

	"scratch/kernel"
)

// Send allocates a chain and leaks it on the size-check error path.
func Send(p *kernel.Pool, n int) error {
	ch := p.AllocNoWait(n)
	if ch == nil {
		return errors.New("pool exhausted")
	}
	if n > 1500 {
		return errors.New("too big")
	}
	p.Free(ch)
	return nil
}
`)
	write("doublefree.go", `package scratch

import "scratch/kernel"

// Finish allocates and then frees the chain twice.
func Finish(p *kernel.Pool) {
	ch := p.AllocNoWait(64)
	if ch == nil {
		return
	}
	p.Free(ch)
	p.Free(ch)
}
`)
	write("locked.go", `package scratch

import "sync"

type gauge struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Peek reads the guarded field without holding mu.
func (g *gauge) Peek() int {
	return g.n
}
`)
	write("hot.go", `package scratch

import "fmt"

// Describe is on the hot path but allocates via fmt.
//
//ctmsvet:hotpath
func Describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}
`)

	diags, err := RunRepoTyped(root)
	if err != nil {
		t.Fatalf("RunRepoTyped: %v", err)
	}
	type want struct {
		analyzer, file string
		line           int
		substr         string
	}
	wants := []want{
		{"mbuflife", "leak.go", 11, "never freed"},
		{"mbuflife", "doublefree.go", 12, "freed again"},
		{"locking", "locked.go", 12, "guarded by mu, which is not held"},
		{"hotpath", "hot.go", 9, "fmt.Sprintf allocates"},
	}
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if matched[i] {
				continue
			}
			if d.Analyzer == w.analyzer && strings.HasSuffix(d.File, w.file) &&
				d.Line == w.line && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("injected %s violation in %s:%d not reported (want %q); got %d diagnostics:\n%s",
				w.analyzer, w.file, w.line, w.substr, len(diags), diagList(diags))
		}
	}
}

func diagList(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	return b.String()
}
