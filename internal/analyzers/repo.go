package analyzers

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
)

// SimCriticalPackages are the packages whose code feeds the
// deterministic simulation: everything between a Config and its Results.
// These are the packages whose determinism PR 1's serial-vs-parallel
// matrix test asserts at runtime, so they are the ones the determinism
// analyzer guards at lint time.
var SimCriticalPackages = []string{
	"internal/sim",
	"internal/ring",
	"internal/session",
	"internal/core",
	"internal/playout",
	"internal/ctmsp",
	"internal/lab",
	"internal/router",
	"internal/topo",
	"internal/workload",
	"internal/stats",
	"internal/kernel",
	"internal/rtpc",
	"internal/media",
	"internal/tradapter",
	"internal/vca",
	"internal/measure",
	"internal/dsp",
	"internal/inet",
	"internal/afs",
}

// SimCriticalExemptions names internal packages deliberately outside the
// sim-critical scope, each with the reason the determinism analyzers do
// not apply. TestSimCriticalCoverage walks internal/ and fails when a
// package is in neither set, so the PR-7 failure mode — forgetting to
// enroll a new package, as happened with workload and stats — is
// structurally impossible.
var SimCriticalExemptions = map[string]string{
	"internal/analyzers": "the lint tool itself: runs at lint time, not inside a simulation; iterates maps and reads the filesystem by design",
}

// All lists every syntactic-tier analyzer, for scope policy and
// tooling; AnalyzerNames (typed.go) spans all three tiers.
var All = []*Analyzer{Determinism, Units, Exhaustive}

// selectSyntactic intersects a scope's analyzer list with an -analyzers
// selection; an empty selection means everything.
func selectSyntactic(only []string, as ...*Analyzer) []*Analyzer {
	if len(only) == 0 {
		return as
	}
	var out []*Analyzer
	for _, a := range as {
		for _, n := range only {
			if a.Name == n {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// RunRepo runs the syntactic tier with its repo scoping rules, rooted
// at the module root: determinism over the sim-critical packages only
// (commands and the measurement harness legitimately read the host
// clock); units over those plus the root package, where the public
// Options/Session API lives; exhaustive over every package, since
// //ctmsvet:enum registration is per-package and self-gating. Every
// package joining the run also gets its //ctmsvet:allow directives
// validated — a typo'd allow in a typed-tier-only package must not rot
// silently. An optional selection
// restricts which analyzers run; the cross-package Index is built from
// the full scope either way, so a restricted run sees the same index a
// full run does.
func RunRepo(root string, only ...string) ([]Diagnostic, error) {
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil, fmt.Errorf("ctmsvet: %s is not a module root (no go.mod)", root)
	}
	if err := SelectNames(only); err != nil {
		return nil, fmt.Errorf("ctmsvet: %w", err)
	}
	simCritical := make(map[string]bool)
	for _, dir := range SimCriticalPackages {
		simCritical[filepath.Join(root, dir)] = true
	}
	dirs, err := modulePackageDirs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	var targets []Target
	for _, rel := range dirs {
		dir := root
		if rel != "." {
			dir = filepath.Join(root, filepath.FromSlash(rel))
		}
		pkg, err := LoadPackage(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		var as []*Analyzer
		switch {
		case rel == ".":
			as = selectSyntactic(only, Units, Exhaustive)
			pkgs = append(pkgs, pkg)
		case simCritical[dir]:
			as = selectSyntactic(only, Determinism, Units, Exhaustive)
			pkgs = append(pkgs, pkg)
		default:
			// exhaustive runs everywhere: it only fires on switches over
			// types a package registered itself (//ctmsvet:enum), so the
			// wider scope costs nothing where nothing is registered
			as = selectSyntactic(only, Exhaustive)
		}
		targets = append(targets, NewTarget(pkg, as...))
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("ctmsvet: no Go packages found under %s", root)
	}
	return Run(targets, BuildIndex(pkgs)), nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("ctmsvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
