package analyzers

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
)

// SimCriticalPackages are the packages whose code feeds the
// deterministic simulation: everything between a Config and its Results.
// These are the packages whose determinism PR 1's serial-vs-parallel
// matrix test asserts at runtime, so they are the ones the determinism
// analyzer guards at lint time.
var SimCriticalPackages = []string{
	"internal/sim",
	"internal/ring",
	"internal/session",
	"internal/core",
	"internal/playout",
	"internal/ctmsp",
	"internal/lab",
}

// All lists every analyzer in the suite, for directive validation and
// tooling.
var All = []*Analyzer{Determinism, Units, Exhaustive}

// RunRepo runs the suite with its repo scoping rules, rooted at the
// module root: determinism over the sim-critical packages only (commands
// and the measurement harness legitimately read the host clock); units
// and exhaustive over those plus the root package, where the public
// Options/Session API and the enumTable registry live.
func RunRepo(root string) ([]Diagnostic, error) {
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		return nil, fmt.Errorf("ctmsvet: %s is not a module root (no go.mod)", root)
	}
	fset := token.NewFileSet()
	var pkgs []*Package
	var targets []Target

	rootPkg, err := LoadPackage(fset, root)
	if err != nil {
		return nil, err
	}
	if rootPkg != nil {
		pkgs = append(pkgs, rootPkg)
		targets = append(targets, NewTarget(rootPkg, Units, Exhaustive))
	}
	for _, dir := range SimCriticalPackages {
		pkg, err := LoadPackage(fset, filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		pkgs = append(pkgs, pkg)
		targets = append(targets, NewTarget(pkg, Determinism, Units, Exhaustive))
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("ctmsvet: no Go packages found under %s", root)
	}
	return Run(targets, BuildIndex(pkgs)), nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("ctmsvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
