package analyzers

import (
	"path/filepath"
	"sync"
	"testing"
)

// The typed fixtures are a real, compiling mini-module
// (testdata/typed, module typedfix) with a stub kernel package, loaded
// once and shared: the source importer pulls fmt and sync from GOROOT,
// which dominates the cost.
var (
	typedFixtureOnce sync.Once
	typedFixtureMod  *Module
	typedFixtureErr  error
)

func loadTypedFixture(t *testing.T) *Module {
	t.Helper()
	typedFixtureOnce.Do(func() {
		typedFixtureMod, typedFixtureErr = LoadTypedModule(filepath.Join("testdata", "typed"))
	})
	if typedFixtureErr != nil {
		t.Fatalf("load typed fixture module: %v", typedFixtureErr)
	}
	return typedFixtureMod
}

func runTypedFixture(t *testing.T, pkgPath string, as ...*TypedAnalyzer) {
	t.Helper()
	mod := loadTypedFixture(t)
	tp := mod.pkgs["typedfix/"+pkgPath]
	if tp == nil {
		t.Fatalf("fixture package typedfix/%s not loaded", pkgPath)
	}
	diags := RunTyped([]*TypedPackage{tp}, as)
	matchWants(t, diags, parseWants(t, tp.Package))
}

func TestMbuflifeFixture(t *testing.T) {
	runTypedFixture(t, "mbuflife", Mbuflife)
}

func TestLockingFixture(t *testing.T) {
	runTypedFixture(t, "locking", Locking)
}

func TestHotpathFixture(t *testing.T) {
	runTypedFixture(t, "hotpath", Hotpath)
}
