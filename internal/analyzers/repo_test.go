package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoComesClean is the lint gate's own regression test: the real
// repository must produce zero findings, so `make lint` stays green and
// any future finding is a genuine regression (or needs an annotated
// //ctmsvet:allow).
func TestRepoComesClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	diags, err := RunRepo(root)
	if err != nil {
		t.Fatalf("RunRepo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestInjectedViolations is the acceptance check in reverse: drop a
// wall-clock read into a sim-critical package and an unannotated
// bytes->bits assignment into the root package of a scratch module, and
// ctmsvet must fail with diagnostics at the right file and line.
func TestInjectedViolations(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/bad.go", `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("rates.go", `package scratch

func frame(packetBytes int64) int64 {
	frameBits := packetBytes
	return frameBits
}
`)

	diags, err := RunRepo(root)
	if err != nil {
		t.Fatalf("RunRepo: %v", err)
	}
	var gotClock, gotUnits bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "determinism" &&
			strings.HasSuffix(d.File, filepath.Join("internal", "sim", "bad.go")) &&
			d.Line == 5 && strings.Contains(d.Message, "time.Now"):
			gotClock = true
		case d.Analyzer == "units" &&
			strings.HasSuffix(d.File, "rates.go") &&
			d.Line == 4 && strings.Contains(d.Message, "bytes-named"):
			gotUnits = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotClock {
		t.Errorf("injected time.Now in internal/sim not reported; got %d diagnostics", len(diags))
	}
	if !gotUnits {
		t.Errorf("injected bytes->bits assignment not reported; got %d diagnostics", len(diags))
	}
}

// TestMarshalJSONDiagnostics pins the -json contract: always an array,
// never null.
func TestMarshalJSONDiagnostics(t *testing.T) {
	out, err := MarshalJSONDiagnostics(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("empty diagnostics marshal to %q, want []", out)
	}
	out, err = MarshalJSONDiagnostics([]Diagnostic{{
		Analyzer: "units", File: "x.go", Line: 3, Col: 7, Message: "m",
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"analyzer": "units"`, `"file": "x.go"`, `"line": 3`, `"col": 7`, `"message": "m"`} {
		if !strings.Contains(string(out), key) {
			t.Errorf("marshalled diagnostics missing %s:\n%s", key, out)
		}
	}
}
