package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoComesClean is the lint gate's own regression test: the real
// repository must produce zero findings, so `make lint` stays green and
// any future finding is a genuine regression (or needs an annotated
// //ctmsvet:allow).
func TestRepoComesClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	diags, err := RunRepo(root)
	if err != nil {
		t.Fatalf("RunRepo: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestInjectedViolations is the acceptance check in reverse: drop a
// wall-clock read into a sim-critical package and an unannotated
// bytes->bits assignment into the root package of a scratch module, and
// ctmsvet must fail with diagnostics at the right file and line.
func TestInjectedViolations(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/bad.go", `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	write("rates.go", `package scratch

func frame(packetBytes int64) int64 {
	frameBits := packetBytes
	return frameBits
}
`)

	diags, err := RunRepo(root)
	if err != nil {
		t.Fatalf("RunRepo: %v", err)
	}
	var gotClock, gotUnits bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "determinism" &&
			strings.HasSuffix(d.File, filepath.Join("internal", "sim", "bad.go")) &&
			d.Line == 5 && strings.Contains(d.Message, "time.Now"):
			gotClock = true
		case d.Analyzer == "units" &&
			strings.HasSuffix(d.File, "rates.go") &&
			d.Line == 4 && strings.Contains(d.Message, "bytes-named"):
			gotUnits = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotClock {
		t.Errorf("injected time.Now in internal/sim not reported; got %d diagnostics", len(diags))
	}
	if !gotUnits {
		t.Errorf("injected bytes->bits assignment not reported; got %d diagnostics", len(diags))
	}
}

// TestSimCriticalCoverage makes scope drift impossible: every package
// under internal/ must be either sim-critical (listed) or exempted with
// a reason — PR 7 had to remember to enroll workload and stats by hand;
// a new package now fails this test until someone decides which side of
// the line it lives on. Stale entries (listed or exempted packages that
// no longer exist) fail too, so the lists describe the tree as it is.
func TestSimCriticalCoverage(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	listed := make(map[string]bool, len(SimCriticalPackages))
	for _, p := range SimCriticalPackages {
		listed[p] = true
	}
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatalf("read internal/: %v", err)
	}
	present := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rel := "internal/" + e.Name()
		present[rel] = true
		_, exempt := SimCriticalExemptions[rel]
		switch {
		case listed[rel] && exempt:
			t.Errorf("%s is both sim-critical and exempted; pick one", rel)
		case !listed[rel] && !exempt:
			t.Errorf("%s is neither in SimCriticalPackages nor in SimCriticalExemptions; decide which and say why", rel)
		}
	}
	for _, p := range SimCriticalPackages {
		if !present[p] {
			t.Errorf("SimCriticalPackages lists %s, which does not exist", p)
		}
	}
	for p, reason := range SimCriticalExemptions {
		if !present[p] {
			t.Errorf("SimCriticalExemptions lists %s, which does not exist", p)
		}
		if strings.TrimSpace(reason) == "" {
			t.Errorf("exemption for %s has no reason; the reason is the point", p)
		}
	}
}

// TestMarshalJSONDiagnostics pins the -json contract: always an array,
// never null.
func TestMarshalJSONDiagnostics(t *testing.T) {
	out, err := MarshalJSONDiagnostics(nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("empty diagnostics marshal to %q, want []", out)
	}
	out, err = MarshalJSONDiagnostics([]Diagnostic{{
		Analyzer: "units", File: "x.go", Line: 3, Col: 7, Message: "m",
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"analyzer": "units"`, `"file": "x.go"`, `"line": 3`, `"col": 7`, `"message": "m"`} {
		if !strings.Contains(string(out), key) {
			t.Errorf("marshalled diagnostics missing %s:\n%s", key, out)
		}
	}
}
