package analyzers

import (
	"path/filepath"
	"sync"
	"testing"
)

// The interprocedural fixtures are a real, compiling mini-module
// (testdata/inter, module interfix) with a stub sim package whose
// Scheduler and RNG carry the //ctmsvet:shardowned annotations, loaded
// once and shared across tests. The World is always built module-wide;
// each test scopes reporting to its own fixture package, mirroring how
// the repo run scopes to the sim-critical packages.
var (
	interFixtureOnce sync.Once
	interFixtureMod  *Module
	interFixtureErr  error
)

func loadInterFixture(t *testing.T) *Module {
	t.Helper()
	interFixtureOnce.Do(func() {
		interFixtureMod, interFixtureErr = LoadTypedModule(filepath.Join("testdata", "inter"))
	})
	if interFixtureErr != nil {
		t.Fatalf("load inter fixture module: %v", interFixtureErr)
	}
	return interFixtureMod
}

func runInterFixture(t *testing.T, pkgPath string, as ...*InterAnalyzer) {
	t.Helper()
	mod := loadInterFixture(t)
	tp := mod.pkgs["interfix/"+pkgPath]
	if tp == nil {
		t.Fatalf("fixture package interfix/%s not loaded", pkgPath)
	}
	diags := RunInter(mod, map[string]bool{tp.Dir: true}, as)
	matchWants(t, diags, parseWants(t, tp.Package))
}

func TestShardownedFixture(t *testing.T) {
	runInterFixture(t, "shardowned", Shardowned)
}

func TestSeedflowFixture(t *testing.T) {
	runInterFixture(t, "seedflow", Seedflow)
}

func TestBarrierFixture(t *testing.T) {
	runInterFixture(t, "barrier", Barrier)
}

func TestBarrierFloorFixture(t *testing.T) {
	runInterFixture(t, "barrierfloor", Barrier)
}

// TestCrossingDirectiveFixture: malformed //ctmsvet:crossing directives
// are validated whenever the package is in scope, regardless of which
// analyzers were selected.
func TestCrossingDirectiveFixture(t *testing.T) {
	runInterFixture(t, "directives", Shardowned)
}
