package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Mbuflife is the ownership analyzer for mbuf chains — the paper's §2
// data-path argument made checkable. Chains of fixed DMA buffers are
// handed driver-to-driver by pointer; the whole budget collapses if
// anyone leaks or double-frees them. A *kernel.Chain obtained from
// Pool.AllocNoWait (or owned inside a Pool.Alloc callback) must, on
// every path, be consumed exactly once:
//
//   - freed via Pool.Free,
//   - returned to the caller,
//   - stored into a composite literal or a field/slot,
//   - handed off as a call argument, channel send, or closure capture
//     (the Packet.Done pattern: the callback that frees it owns it).
//
// The analysis is intraprocedural and deliberately conservative: once a
// chain is handed off it is forgotten, and when two branches disagree
// about a chain's fate the variable stops being tracked rather than
// guessing. What it does flag is exactly the rot the tree has to guard
// against: a chain leaked on an early error return, a chain used after
// Pool.Free, and a chain freed twice. The nil-result contract of
// AllocNoWait is modeled — `if ch == nil { return }` does not count as
// a leak.
var Mbuflife = &TypedAnalyzer{
	Name: "mbuflife",
	Doc:  "chains from Pool.Alloc/AllocNoWait must be freed, returned, stored or handed off exactly once on every path",
	Run:  runMbuflife,
}

type chainState uint8

const (
	chainOwned chainState = iota
	chainFreed
	chainDeferFreed
	chainMixed // branches disagree; tracking stops
)

type chainVal struct {
	state    chainState
	allocPos token.Pos
}

type mbufEnv map[*types.Var]chainVal

func (e mbufEnv) clone() mbufEnv {
	out := make(mbufEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

type mbufWalker struct {
	p        *TypedPass
	reported map[token.Pos]bool // alloc sites already reported as leaks
}

func runMbuflife(p *TypedPass) {
	w := &mbufWalker{p: p, reported: make(map[token.Pos]bool)}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w.funcBody(fd.Body, nil)
		}
	}
}

// isChainPointer reports whether t is *kernel.Chain. Matching is by
// package name and type name, not import path, so the typed fixtures'
// miniature kernel package exercises the same code path as the real
// one.
func isChainPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Chain" && obj.Pkg() != nil && obj.Pkg().Name() == "kernel"
}

// poolMethod returns the method name if call invokes a method on
// kernel.Pool (Free, Alloc, AllocNoWait, ...), else "".
func (w *mbufWalker) poolMethod(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := w.p.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Name() != "Pool" || obj.Pkg() == nil || obj.Pkg().Name() != "kernel" {
		return ""
	}
	return fn.Name()
}

// isAllocCall reports whether call's single result is a chain pointer —
// the ownership source.
func (w *mbufWalker) isAllocCall(call *ast.CallExpr) bool {
	t := w.p.TypeOf(call)
	return t != nil && isChainPointer(t)
}

// chainVar resolves e to a tracked chain variable.
func (w *mbufWalker) chainVar(e ast.Expr, env mbufEnv) (*types.Var, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := w.p.ObjectOf(id).(*types.Var)
	if !ok {
		return nil, false
	}
	_, tracked := env[v]
	return v, tracked
}

func (w *mbufWalker) pos(p token.Pos) string {
	position := w.p.Pkg.Fset.Position(p)
	return position.Filename[len(position.Filename)-len(filepathBase(position.Filename)):] + ":" + itoa(position.Line)
}

func filepathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func (w *mbufWalker) leak(v *types.Var, cv chainVal, at token.Pos) {
	if cv.state != chainOwned || w.reported[cv.allocPos] {
		return
	}
	w.reported[cv.allocPos] = true
	w.p.Reportf(cv.allocPos,
		"chain %s is never freed, returned, stored or handed off on the path reaching line %d",
		v.Name(), w.p.Pkg.Fset.Position(at).Line)
}

func (w *mbufWalker) leakAll(env mbufEnv, at token.Pos) {
	for v, cv := range env {
		w.leak(v, cv, at)
	}
}

// useVar records a read of v; reading a freed chain is a finding.
func (w *mbufWalker) useVar(e ast.Expr, v *types.Var, env mbufEnv) {
	if env[v].state == chainFreed {
		w.p.Reportf(e.Pos(), "chain %s used after Free (allocated at %s)", v.Name(), w.pos(env[v].allocPos))
		env[v] = chainVal{state: chainMixed, allocPos: env[v].allocPos}
	}
}

// moveVar hands ownership of v off (call argument, store, send,
// capture): the chain is someone else's problem now, so tracking stops.
func (w *mbufWalker) moveVar(e ast.Expr, v *types.Var, env mbufEnv) {
	w.useVar(e, v, env)
	delete(env, v)
}

// funcBody analyzes one function or closure body in a fresh
// environment; params are chain parameters owned on entry (the
// Pool.Alloc callback contract).
func (w *mbufWalker) funcBody(body *ast.BlockStmt, params []*types.Var) {
	env := make(mbufEnv)
	for _, v := range params {
		env[v] = chainVal{state: chainOwned, allocPos: v.Pos()}
	}
	env, terminated := w.stmts(body.List, env)
	if !terminated {
		w.leakAll(env, body.Rbrace)
	}
}

// stmts walks a statement list, returning the resulting environment and
// whether the list definitely terminated (return/panic/branch). Chains
// defined in this list that are still owned when it ends leak: the
// variable goes out of scope (or is re-made next loop iteration).
func (w *mbufWalker) stmts(list []ast.Stmt, env mbufEnv) (mbufEnv, bool) {
	var defined []*types.Var
	for _, s := range list {
		var term bool
		env, term = w.stmt(s, env, &defined)
		if term {
			return env, true
		}
	}
	for _, v := range defined {
		if cv, ok := env[v]; ok {
			w.leak(v, cv, list[len(list)-1].End())
			delete(env, v)
		}
	}
	return env, false
}

func (w *mbufWalker) stmt(s ast.Stmt, env mbufEnv, defined *[]*types.Var) (mbufEnv, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.expr(st.X, env)
	case *ast.AssignStmt:
		w.assign(st, env, defined)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						w.assignOne(name, vs.Values[i], true, env, defined)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			if v, ok := w.chainVar(r, env); ok {
				w.moveVar(r, v, env) // returned: the caller owns it now
				continue
			}
			w.expr(r, env)
		}
		w.leakAll(env, st.Pos())
		return env, true
	case *ast.IfStmt:
		return w.ifStmt(st, env, defined)
	case *ast.ForStmt:
		if st.Init != nil {
			env, _ = w.stmt(st.Init, env, defined)
		}
		w.expr(st.Cond, env)
		bodyEnv, term := w.stmts(st.Body.List, env.clone())
		if st.Post != nil && !term {
			bodyEnv, _ = w.stmt(st.Post, bodyEnv, defined)
		}
		if term {
			return env, false
		}
		return mergeEnvs(env, bodyEnv), false
	case *ast.RangeStmt:
		w.expr(st.X, env)
		bodyEnv, term := w.stmts(st.Body.List, env.clone())
		if term {
			return env, false
		}
		return mergeEnvs(env, bodyEnv), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			env, _ = w.stmt(st.Init, env, defined)
		}
		w.expr(st.Tag, env)
		return w.caseBodies(st.Body, env)
	case *ast.TypeSwitchStmt:
		return w.caseBodies(st.Body, env)
	case *ast.SelectStmt:
		return w.caseBodies(st.Body, env)
	case *ast.BlockStmt:
		return w.stmts(st.List, env)
	case *ast.DeferStmt:
		w.deferCall(st.Call, env)
	case *ast.GoStmt:
		w.expr(st.Call, env)
	case *ast.SendStmt:
		w.expr(st.Chan, env)
		if v, ok := w.chainVar(st.Value, env); ok {
			w.moveVar(st.Value, v, env)
		} else {
			w.expr(st.Value, env)
		}
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, env, defined)
	case *ast.BranchStmt:
		// break/continue/goto leave the list abnormally; stop tracking
		// this path rather than mis-reporting scope-exit leaks.
		return env, true
	case *ast.IncDecStmt:
		w.expr(st.X, env)
	}
	return env, false
}

func (w *mbufWalker) ifStmt(st *ast.IfStmt, env mbufEnv, defined *[]*types.Var) (mbufEnv, bool) {
	if st.Init != nil {
		env, _ = w.stmt(st.Init, env, defined)
	}
	w.expr(st.Cond, env)
	thenEnv := env.clone()
	elseEnv := env.clone()
	// Model the AllocNoWait contract: inside `if ch == nil` there is no
	// chain to leak; inside `if ch != nil` the else path has none.
	if v, op := w.nilCheckVar(st.Cond, env); v != nil {
		if op == token.EQL {
			delete(thenEnv, v)
		} else {
			delete(elseEnv, v)
		}
	}
	thenEnv, t1 := w.stmts(st.Body.List, thenEnv)
	t2 := false
	switch e := st.Else.(type) {
	case *ast.BlockStmt:
		elseEnv, t2 = w.stmts(e.List, elseEnv)
	case *ast.IfStmt:
		var elseDefined []*types.Var
		elseEnv, t2 = w.ifStmt(e, elseEnv, &elseDefined)
	}
	switch {
	case t1 && t2:
		return env, true
	case t1:
		return elseEnv, false
	case t2:
		return thenEnv, false
	default:
		return mergeEnvs(thenEnv, elseEnv), false
	}
}

// caseBodies analyzes each case clause against a clone of env and
// merges the survivors (plus the no-case-taken path when there is no
// default clause).
func (w *mbufWalker) caseBodies(body *ast.BlockStmt, env mbufEnv) (mbufEnv, bool) {
	merged := mbufEnv(nil)
	hasDefault := false
	all := true
	for _, stmt := range body.List {
		var list []ast.Stmt
		switch cc := stmt.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, env)
			}
			if cc.List == nil {
				hasDefault = true
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				var d []*types.Var
				env, _ = w.stmt(cc.Comm, env.clone(), &d)
			} else {
				hasDefault = true
			}
			list = cc.Body
		}
		caseEnv, term := w.stmts(list, env.clone())
		if term {
			continue
		}
		all = false
		if merged == nil {
			merged = caseEnv
		} else {
			merged = mergeEnvs(merged, caseEnv)
		}
	}
	if !hasDefault {
		all = false
		if merged == nil {
			merged = env
		} else {
			merged = mergeEnvs(merged, env)
		}
	}
	if merged == nil {
		return env, all && len(body.List) > 0
	}
	return merged, false
}

// mergeEnvs joins two branch outcomes. A chain both branches agree on
// keeps its state; one they disagree on — or that only one branch still
// tracks — becomes chainMixed, which suppresses all further reports for
// it (conservative by design).
func mergeEnvs(a, b mbufEnv) mbufEnv {
	out := make(mbufEnv)
	for v, av := range a {
		if bv, ok := b[v]; ok {
			if av.state == bv.state {
				out[v] = av
			} else {
				out[v] = chainVal{state: chainMixed, allocPos: av.allocPos}
			}
		} else {
			out[v] = chainVal{state: chainMixed, allocPos: av.allocPos}
		}
	}
	for v, bv := range b {
		if _, ok := a[v]; !ok {
			out[v] = chainVal{state: chainMixed, allocPos: bv.allocPos}
		}
	}
	return out
}

// nilCheckVar recognizes `v == nil` / `v != nil` over a tracked chain.
func (w *mbufWalker) nilCheckVar(cond ast.Expr, env mbufEnv) (*types.Var, token.Token) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, token.ILLEGAL
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(y) {
		if v, ok := w.chainVar(x, env); ok {
			return v, be.Op
		}
	}
	if isNilIdent(x) {
		if v, ok := w.chainVar(y, env); ok {
			return v, be.Op
		}
	}
	return nil, token.ILLEGAL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func (w *mbufWalker) assign(st *ast.AssignStmt, env mbufEnv, defined *[]*types.Var) {
	if len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			w.assignOne(st.Lhs[i], st.Rhs[i], st.Tok == token.DEFINE, env, defined)
		}
		return
	}
	for _, r := range st.Rhs {
		w.expr(r, env)
	}
}

// isLocalChainVar reports whether v is a function-local variable.
// Stores into package-level variables or fields are escapes — the
// chain has a longer-lived owner now — so only locals are tracked.
func isLocalChainVar(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
}

func (w *mbufWalker) assignOne(lhs, rhs ast.Expr, define bool, env mbufEnv, defined *[]*types.Var) {
	lhsID, _ := ast.Unparen(lhs).(*ast.Ident)
	var lhsVar *types.Var
	if lhsID != nil && lhsID.Name != "_" {
		lhsVar, _ = w.p.ObjectOf(lhsID).(*types.Var)
		if !isLocalChainVar(lhsVar) {
			lhsVar = nil // store to package state: escape, stop tracking
		}
	}

	// ch := pool.AllocNoWait(n): a new owned chain. Overwriting a chain
	// that is still owned leaks the old one.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isAllocCall(call) && w.poolMethod(call) != "" {
		for _, a := range call.Args {
			w.expr(a, env)
		}
		if lhsVar != nil {
			if old, ok := env[lhsVar]; ok {
				w.leak(lhsVar, old, lhs.Pos())
			}
			env[lhsVar] = chainVal{state: chainOwned, allocPos: rhs.Pos()}
			if define {
				*defined = append(*defined, lhsVar)
			}
		}
		return
	}

	// ch2 := ch: ownership moves with the alias.
	if rhsVar, ok := w.chainVar(rhs, env); ok {
		if lhsID != nil && lhsID.Name == "_" {
			w.useVar(rhs, rhsVar, env) // `_ = ch` reads, doesn't consume
			return
		}
		cv := env[rhsVar]
		w.useVar(rhs, rhsVar, env)
		delete(env, rhsVar)
		if lhsVar != nil {
			env[lhsVar] = cv
			if define {
				*defined = append(*defined, lhsVar)
			}
		}
		return
	}

	w.expr(rhs, env)
	if lhsVar == nil && lhsID == nil {
		w.expr(lhs, env) // selector/index target: record uses of its base
	}
}

func (w *mbufWalker) deferCall(call *ast.CallExpr, env mbufEnv) {
	if w.poolMethod(call) == "Free" && len(call.Args) == 1 {
		if v, ok := w.chainVar(call.Args[0], env); ok {
			cv := env[v]
			if cv.state == chainFreed || cv.state == chainDeferFreed {
				w.p.Reportf(call.Pos(), "chain %s freed again (allocated at %s)", v.Name(), w.pos(cv.allocPos))
				return
			}
			// defer runs at every exit: the chain is consumed on all
			// paths, and reads before function end stay legal.
			env[v] = chainVal{state: chainDeferFreed, allocPos: cv.allocPos}
			return
		}
	}
	w.expr(call, env)
}

func (w *mbufWalker) expr(e ast.Expr, env mbufEnv) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := w.chainVar(x, env); ok {
			w.useVar(x, v, env)
		}
	case *ast.CallExpr:
		w.call(x, env)
	case *ast.FuncLit:
		w.funcLit(x, env)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				w.expr(kv.Key, env)
				val = kv.Value
			}
			if v, ok := w.chainVar(val, env); ok {
				w.moveVar(val, v, env) // stored: ownership rides with the literal
				continue
			}
			w.expr(val, env)
		}
	case *ast.UnaryExpr:
		w.expr(x.X, env)
	case *ast.BinaryExpr:
		w.expr(x.X, env)
		w.expr(x.Y, env)
	case *ast.SelectorExpr:
		w.expr(x.X, env)
	case *ast.IndexExpr:
		w.expr(x.X, env)
		w.expr(x.Index, env)
	case *ast.IndexListExpr:
		w.expr(x.X, env)
		for _, i := range x.Indices {
			w.expr(i, env)
		}
	case *ast.SliceExpr:
		w.expr(x.X, env)
		w.expr(x.Low, env)
		w.expr(x.High, env)
		w.expr(x.Max, env)
	case *ast.StarExpr:
		w.expr(x.X, env)
	case *ast.TypeAssertExpr:
		w.expr(x.X, env)
	case *ast.KeyValueExpr:
		w.expr(x.Key, env)
		w.expr(x.Value, env)
	}
}

func (w *mbufWalker) call(call *ast.CallExpr, env mbufEnv) {
	switch w.poolMethod(call) {
	case "Free":
		if len(call.Args) == 1 {
			if v, ok := w.chainVar(call.Args[0], env); ok {
				cv := env[v]
				switch cv.state {
				case chainFreed, chainDeferFreed:
					w.p.Reportf(call.Pos(), "chain %s freed again (allocated at %s)", v.Name(), w.pos(cv.allocPos))
					env[v] = chainVal{state: chainMixed, allocPos: cv.allocPos}
				case chainOwned:
					env[v] = chainVal{state: chainFreed, allocPos: cv.allocPos}
				}
				return
			}
		}
	case "Alloc":
		// Pool.Alloc(n, fn): the callback's *Chain parameter is owned
		// inside the callback body.
		if len(call.Args) == 2 {
			w.expr(call.Args[0], env)
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.FuncLit); ok {
				w.captures(lit, env)
				var params []*types.Var
				for _, f := range lit.Type.Params.List {
					for _, n := range f.Names {
						if v, ok := w.p.ObjectOf(n).(*types.Var); ok && isChainPointer(v.Type()) {
							params = append(params, v)
						}
					}
				}
				w.funcBody(lit.Body, params)
				return
			}
		}
	}
	w.expr(call.Fun, env)
	for _, a := range call.Args {
		if v, ok := w.chainVar(a, env); ok {
			w.moveVar(a, v, env) // handed off to the callee
			continue
		}
		w.expr(a, env)
	}
}

// funcLit handles a closure: capturing a tracked chain hands it off
// (the Done-callback pattern — the closure that frees it owns it), and
// the closure's own body is analyzed as a fresh function.
func (w *mbufWalker) funcLit(lit *ast.FuncLit, env mbufEnv) {
	w.captures(lit, env)
	w.funcBody(lit.Body, nil)
}

func (w *mbufWalker) captures(lit *ast.FuncLit, env mbufEnv) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := w.p.ObjectOf(id).(*types.Var); ok {
			if _, tracked := env[v]; tracked {
				delete(env, v)
			}
		}
		return true
	})
}
