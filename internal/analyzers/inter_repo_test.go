package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoComesCleanInter is the interprocedural tier's half of the
// lint gate: the real repository — with the genuine //ctmsvet:shardowned
// and //ctmsvet:crossing annotations on the engine — must come clean, so
// any future finding is a real ownership, seed-flow or barrier
// regression (or needs a reasoned //ctmsvet:allow).
func TestRepoComesCleanInter(t *testing.T) {
	if testing.Short() {
		t.Skip("interprocedural pass loads the whole module; skipped under -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	diags, err := RunRepoInter(root)
	if err != nil {
		t.Fatalf("RunRepoInter: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestInjectedViolationsInter is ISSUE 8's acceptance check in reverse:
// a scratch module shaped like the engine — sim-critical internal/sim
// and internal/topo packages — carrying a planted cross-shard store, a
// literal-seeded RNG, and a sub-floor deliverAt, each of which must be
// reported at its exact file and line.
func TestInjectedViolationsInter(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	// The sim stub: seedflow matches NewRNG by package name "sim", and
	// the shardowned annotation rides on the type declarations exactly
	// as in the real tree.
	write("internal/sim/sim.go", `// Package sim stubs the simulation core.
package sim

// Time is simulated time.
type Time int64

// Scheduler owns a shard's clock.
//
//ctmsvet:shardowned
type Scheduler struct {
	now Time
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// RNG is a deterministic variate source.
//
//ctmsvet:shardowned
type RNG struct {
	seed int64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG { return &RNG{seed: seed} }
`)
	write("internal/topo/engine.go", `// Package topo stubs the sharded engine.
package topo

import "scratch/internal/sim"

// shard is one worker's slice of the simulation.
//
//ctmsvet:shardowned
type shard struct {
	sched *sim.Scheduler
	rng   *sim.RNG
}

// stolen is the planted cross-shard escape: shard state in a global.
var stolen *shard

type msg struct{ v int }

type inbox struct {
	msgs []msg
}

// put is the blessed crossing with the planted sub-floor deliverAt at
// its call site below.
//
//ctmsvet:crossing push scratch fixture enqueue
func (b *inbox) put(at sim.Time, m msg) {
	_ = at
	b.msgs = append(b.msgs, m)
}

// validate keeps rule 5 quiet so the deliverAt finding stands alone.
func validate(latency sim.Time) bool {
	const switchCost = sim.Time(180)
	return latency >= switchCost
}

func badSeed() *sim.RNG {
	return sim.NewRNG(99)
}

func badPush(b *inbox, s *shard, m msg) {
	b.put(s.sched.Now(), m)
}
`)

	diags, err := RunRepoInter(root)
	if err != nil {
		t.Fatalf("RunRepoInter: %v", err)
	}
	type want struct {
		analyzer, file string
		line           int
		substr         string
	}
	wants := []want{
		{"shardowned", filepath.Join("internal", "topo", "engine.go"), 15, "can reach shardowned state"},
		{"seedflow", filepath.Join("internal", "topo", "engine.go"), 39, "literal seed"},
		{"barrier", filepath.Join("internal", "topo", "engine.go"), 43, "adds no latency"},
	}
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if matched[i] {
				continue
			}
			if d.Analyzer == w.analyzer && strings.HasSuffix(d.File, w.file) &&
				d.Line == w.line && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("injected %s violation at %s:%d not reported (want %q); got %d diagnostics:\n%s",
				w.analyzer, w.file, w.line, w.substr, len(diags), diagList(diags))
		}
	}
}
