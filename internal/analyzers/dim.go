package analyzers

// This file is the algebra half of ctmsvet's fourth tier, the
// dimensional-inference engine (the solver lives in dimflow.go; see
// DESIGN.md §7.4). The paper's core question is quantitative — can a
// 100 Mbit/s ring carry 1.2 Mbit/s streams to hundreds of users — so
// the worst silent bug class in this reproduction is a units error:
// bits flowing into a bytes slot, a per-frame size used as a
// per-second rate, a duration multiplied into a rate. The syntactic
// units analyzer pattern-matches identifier suffixes one expression at
// a time; this tier instead assigns every value a *dimension* — an
// element of the free abelian group over the base units
//
//	{bit, byte, s, frame, sample}
//
// so bit/s, byte/s, Hz (= 1/s), frame/s, byte/frame and friends all
// compose under multiplication and division — and propagates those
// dimensions interprocedurally until two provably different dimensions
// meet at one expression.
//
// Dimensions are seeded three ways, in precedence order:
//
//  1. an explicit //ctmsvet:unit <dimension> directive on a struct
//     field, const/var spec, type declaration, or (naming the
//     parameter) a function's doc comment;
//  2. the identifier's own name (...Bits, ...BytesPerSec, sampleHz,
//     WallSeconds — the same convention the syntactic tier enforces);
//  3. the declared type: time.Duration, and any named type whose
//     declaration carries a //ctmsvet:unit directive (sim.Time), seed
//     seconds.
//
// The algebra is scale-blind by design: ns, ms and s are all the
// second dimension, KB and B are both bytes. Consequently a
// constant-valued operand in a multiplication or division is a scale
// factor, not a quantity — with exactly one exception, the repo's
// blessed conversion: multiplying a byte-dimensioned value by the
// literal constant 8 yields bits, dividing a bit-dimensioned value by
// 8 yields bytes.
import (
	"fmt"
	"strconv"
	"strings"
)

// The base-unit axes of the dimension group, in rendering order.
const (
	dimBit = iota
	dimByte
	dimSec
	dimFrame
	dimSample
	numDims
)

var dimAxisName = [numDims]string{"bit", "byte", "s", "frame", "sample"}

// Dim is one dimension: an integer exponent per base unit. The zero
// Dim is dimensionless.
type Dim struct {
	exp [numDims]int8
}

// IsZero reports the dimensionless dimension.
func (d Dim) IsZero() bool { return d == Dim{} }

// Mul composes two dimensions multiplicatively.
func (d Dim) Mul(o Dim) Dim {
	for i := range d.exp {
		d.exp[i] += o.exp[i]
	}
	return d
}

// Div composes d/o.
func (d Dim) Div(o Dim) Dim {
	for i := range d.exp {
		d.exp[i] -= o.exp[i]
	}
	return d
}

// Inv is the multiplicative inverse (1/d).
func (d Dim) Inv() Dim {
	for i := range d.exp {
		d.exp[i] = -d.exp[i]
	}
	return d
}

// String renders the dimension in the same grammar ParseDim accepts:
// numerator factors joined by *, then / and the denominator factors,
// exponents as ^k. Dimensionless renders as "1", pure denominators as
// "1/s". The round-trip property (ParseDim(d.String()) == d) is pinned
// by TestDimStringRoundTrip and leaned on by the conflict messages.
func (d Dim) String() string {
	var num, den []string
	for i, e := range d.exp {
		switch {
		case e > 0:
			num = append(num, axisPow(i, int(e)))
		case e < 0:
			den = append(den, axisPow(i, int(-e)))
		}
	}
	s := "1"
	if len(num) > 0 {
		s = strings.Join(num, "*")
	}
	if len(den) > 0 {
		s += "/" + strings.Join(den, "/")
	}
	return s
}

func axisPow(axis, e int) string {
	if e == 1 {
		return dimAxisName[axis]
	}
	return dimAxisName[axis] + "^" + strconv.Itoa(e)
}

// dimBases maps the spelling of each base unit (and its aliases) in a
// //ctmsvet:unit expression onto its axis. hz is handled separately:
// it is s^-1, not a base.
var dimBases = map[string]int{
	"bit": dimBit, "bits": dimBit,
	"byte": dimByte, "bytes": dimByte,
	"s": dimSec, "sec": dimSec, "second": dimSec, "seconds": dimSec,
	"frame": dimFrame, "frames": dimFrame,
	"sample": dimSample, "samples": dimSample,
}

// ParseDim parses a dimension expression: factors separated by * and /,
// each a base unit (or hz, or the literal 1) with an optional ^k
// exponent. A / flips the sign of the factor that follows it, so
// byte/frame, bit/s, 1/s, bit*s and byte/frame/s all parse. Total over
// any input (FuzzUnitDirective holds it to that): malformed expressions
// return an error, never a panic.
func ParseDim(s string) (Dim, error) {
	var d Dim
	if s == "" {
		return d, fmt.Errorf("empty dimension")
	}
	sign := int8(1)
	rest := s
	for rest != "" {
		i := strings.IndexAny(rest, "*/")
		var factor, op string
		if i < 0 {
			factor, rest = rest, ""
		} else {
			factor, op, rest = rest[:i], rest[i:i+1], rest[i+1:]
			if rest == "" {
				return Dim{}, fmt.Errorf("dimension %q ends in %q", s, op)
			}
		}
		if err := applyFactor(&d, factor, sign); err != nil {
			return Dim{}, fmt.Errorf("dimension %q: %w", s, err)
		}
		if op == "/" {
			sign = -1
		} else {
			sign = 1
		}
	}
	return d, nil
}

// applyFactor folds one base^exp factor (with its sign from the
// preceding / if any) into d.
func applyFactor(d *Dim, factor string, sign int8) error {
	base, expStr, hasExp := strings.Cut(factor, "^")
	exp := 1
	if hasExp {
		n, err := strconv.Atoi(expStr)
		if err != nil || n < 1 || n > 9 {
			return fmt.Errorf("bad exponent %q (want an integer 1..9)", expStr)
		}
		exp = n
	}
	switch {
	case base == "1":
		if hasExp {
			return fmt.Errorf("1 takes no exponent")
		}
	case base == "hz" || base == "Hz":
		d.exp[dimSec] -= sign * int8(exp)
	default:
		axis, ok := dimBases[base]
		if !ok {
			return fmt.Errorf("unknown base unit %q (valid: bit, byte, s, frame, sample, hz, 1)", base)
		}
		d.exp[axis] += sign * int8(exp)
	}
	return nil
}

// unitDirectivePrefix introduces a dimension annotation:
//
//	//ctmsvet:unit <dimension> [param]
//
// On a struct field, const/var spec or type declaration the directive
// stands alone; on a function's doc comment the second token names the
// parameter it annotates ("result" names the single result).
const unitDirectivePrefix = "//ctmsvet:unit"

// parseUnitDirective splits one comment's text into the dimension
// expression and the optional target token. ok reports whether the
// comment is a unit directive at all; malformed-but-recognized
// directives (empty expression, trailing junk beyond the two tokens)
// come back ok with problems the caller turns into findings. This is
// the FuzzUnitDirective target: total over arbitrary comment text.
func parseUnitDirective(text string) (dimExpr, target string, extra bool, ok bool) {
	rest, ok := strings.CutPrefix(text, unitDirectivePrefix)
	if !ok {
		return "", "", false, false
	}
	fields := strings.Fields(rest)
	switch len(fields) {
	case 0:
		return "", "", false, true
	case 1:
		return fields[0], "", false, true
	case 2:
		return fields[0], fields[1], false, true
	default:
		return fields[0], fields[1], true, true
	}
}

// ---- name seeding ----------------------------------------------------

// Word classes for dimFromName. The time words are deliberately broad —
// the algebra is scale-blind, so Us, Ms and Seconds all mean the second
// axis — but "min" is excluded (it usually means minimum).
var (
	dimBitWords  = map[string]bool{"bit": true, "bits": true}
	dimByteWords = map[string]bool{"byte": true, "bytes": true}
	dimTimeWords = map[string]bool{
		"sec": true, "secs": true, "second": true, "seconds": true,
		"ms": true, "us": true, "ns": true,
		"msec": true, "usec": true, "nsec": true,
		"millis": true, "micros": true, "nanos": true,
		"millisecond": true, "milliseconds": true,
		"microsecond": true, "microseconds": true,
		"nanosecond": true, "nanoseconds": true,
		"minute": true, "minutes": true, "hour": true, "hours": true,
		"day": true, "days": true,
	}
	dimFreqWords = map[string]bool{"hz": true, "khz": true, "mhz": true, "ghz": true}
	dimCountWord = map[string]int{
		"frame": dimFrame, "frames": dimFrame,
		"sample": dimSample, "samples": dimSample,
	}
)

// dimFromName derives a dimension from an identifier's words, or
// ok=false when the name carries none (or mixes bit and byte words — a
// conversion helper, deliberately polymorphic):
//
//	OfferedBits       -> bit        streamBytesPerSec -> byte/s
//	RingBitRate       -> bit/s      WallSeconds       -> s
//	ArrivalsPerSec    -> 1/s        latencyUs         -> s
//	framesPerSec      -> frame/s    sampleHz          -> sample/s
//	frameBytes        -> byte       bytesToBits       -> (none)
//
// Count words (frame, sample) become a numerator only in rate position
// — immediately before Per-<time> or a Hz word. Anywhere else they are
// adjectives: frameBytes is a size in bytes; whether it is byte or
// byte/frame is exactly what a //ctmsvet:unit directive exists to say.
func dimFromName(name string) (Dim, bool) {
	words := splitWords(name)
	var d Dim
	var sawBit, sawByte, seeded bool
	for i := 0; i < len(words); i++ {
		w := words[i]
		switch {
		case dimBitWords[w]:
			sawBit, seeded = true, true
			d.exp[dimBit]++
			// A Rate word directly after bit/byte means per-second.
			if i+1 < len(words) && words[i+1] == "rate" {
				d.exp[dimSec]--
				i++
			}
		case dimByteWords[w]:
			sawByte, seeded = true, true
			d.exp[dimByte]++
			if i+1 < len(words) && words[i+1] == "rate" {
				d.exp[dimSec]--
				i++
			}
		case w == "per" && i+1 < len(words):
			next := words[i+1]
			// A leading "per" leaves the numerator unexpressed (perByte
			// is a cost whose unit the name does not say), so only a
			// "per" with words before it seeds: ArrivalsPerSec, not
			// perByte. The unit word after a leading per is consumed
			// silently so it cannot masquerade as a numerator.
			if i == 0 {
				if dimTimeWords[next] || dimCountWord[next] != 0 || dimBitWords[next] || dimByteWords[next] {
					i++
				}
				break
			}
			switch {
			case dimTimeWords[next]:
				d.exp[dimSec]--
				seeded = true
				i++
			case dimCountWord[next] != 0:
				d.exp[dimCountWord[next]]--
				seeded = true
				i++
			case dimBitWords[next]:
				d.exp[dimBit]--
				seeded = true
				i++
			case dimByteWords[next]:
				d.exp[dimByte]--
				seeded = true
				i++
			}
		case dimFreqWords[w]:
			// sampleHz / frameHz: the count word right before the
			// frequency word became the numerator when it was scanned.
			d.exp[dimSec]--
			seeded = true
		case dimTimeWords[w]:
			d.exp[dimSec]++
			seeded = true
		case dimCountWord[w] != 0:
			// Count word in rate position: framesPerSec, samplesPerSec.
			if i+2 < len(words) && words[i+1] == "per" && dimTimeWords[words[i+2]] {
				d.exp[dimCountWord[w]]++
			} else if i+1 < len(words) && dimFreqWords[words[i+1]] {
				d.exp[dimCountWord[w]]++
			}
			// Otherwise an adjective: contributes nothing.
		}
	}
	if sawBit && sawByte {
		return Dim{}, false // a conversion point, like bytesToBits
	}
	if !seeded || d.IsZero() {
		return Dim{}, false
	}
	return d, true
}
