package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Locking enforces the `// guarded by <mu>` field-comment convention.
// A struct field whose doc or line comment says "guarded by mu" may
// only be touched while the sibling mutex field mu is held — either
// between an explicit Lock/Unlock pair or under a defer Unlock. The
// walker is branch-sensitive: paths that disagree about the lock state
// make it unknown, which suppresses reports rather than guessing.
//
// Findings:
//   - access to a guarded field while the named mutex is not held,
//   - return between Lock and Unlock without a defer (the early-return
//     leak that deadlocks the next caller),
//   - a function ending with the mutex still locked,
//   - "guarded by" naming a non-existent or non-mutex sibling,
//   - by-value copies of lock-bearing structs: value receivers, value
//     parameters, and *p dereference copies.
//
// Methods whose name ends in "Locked" are exempt from the hold check —
// the convention is that their caller holds the lock.
var Locking = &TypedAnalyzer{
	Name: "locking",
	Doc:  "fields marked `// guarded by <mu>` must only be touched with the named mutex held",
	Run:  runLocking,
}

type lockState uint8

const (
	lockNotHeld   lockState = iota // zero value: not held
	lockHeld                       // explicitly locked; must be unlocked before return
	lockHeldDefer                  // defer Unlock pending: held to function end
	lockUnclear                    // branches disagree; no reports either way
)

func runLocking(p *TypedPass) {
	guarded := collectGuarded(p)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockDiscipline(p, fd, guarded)
			}
		}
	}
	checkLockCopies(p)
}

// collectGuarded maps each field carrying a "guarded by <mu>" comment
// to its guard's field name, validating that the guard is a sibling
// sync.Mutex or sync.RWMutex.
func collectGuarded(p *TypedPass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardComment(field)
				if guard == "" {
					continue
				}
				if !hasMutexSibling(p, st, guard) {
					p.Reportf(field.Pos(), "guarded by %s: struct has no sibling sync.Mutex/RWMutex field named %s", guard, guard)
					continue
				}
				for _, name := range field.Names {
					if v, ok := p.ObjectOf(name).(*types.Var); ok {
						out[v] = guard
					}
				}
			}
			return true
		})
	}
	return out
}

func guardComment(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "guarded by "); ok {
				name, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				return strings.TrimSuffix(name, ".")
			}
		}
	}
	return ""
}

func hasMutexSibling(p *TypedPass, st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			if v, ok := p.ObjectOf(name).(*types.Var); ok && isMutexType(v.Type()) {
				return true
			}
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

type lockEnv map[string]lockState

func (e lockEnv) clone() lockEnv {
	out := make(lockEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func mergeLockEnvs(a, b lockEnv) lockEnv {
	out := make(lockEnv)
	for g, av := range a {
		if av == b[g] {
			out[g] = av
		} else {
			out[g] = lockUnclear
		}
	}
	for g, bv := range b {
		if _, ok := a[g]; !ok {
			if bv == lockNotHeld {
				continue
			}
			out[g] = lockUnclear
		}
	}
	return out
}

type lockWalker struct {
	p       *TypedPass
	guarded map[*types.Var]string
}

func checkLockDiscipline(p *TypedPass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	if len(guarded) == 0 {
		return
	}
	w := &lockWalker{p: p, guarded: guarded}
	env := make(lockEnv)
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		// convention: the caller holds every guard for *Locked methods
		for _, g := range guarded {
			env[g] = lockHeldDefer
		}
	}
	env, _ = w.stmts(fd.Body.List, env)
	for g, st := range env {
		if st == lockHeld {
			w.p.Reportf(fd.Body.Rbrace, "%s is still locked at the end of %s (missing Unlock)", g, fd.Name.Name)
		}
	}
}

func (w *lockWalker) stmts(list []ast.Stmt, env lockEnv) (lockEnv, bool) {
	for _, s := range list {
		var term bool
		env, term = w.stmt(s, env)
		if term {
			return env, true
		}
	}
	return env, false
}

func (w *lockWalker) stmt(s ast.Stmt, env lockEnv) (lockEnv, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.expr(st.X, env)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.expr(r, env)
		}
		for _, l := range st.Lhs {
			w.expr(l, env)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, env)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, env)
		}
		for g, state := range env {
			if state == lockHeld {
				w.p.Reportf(st.Pos(), "return while %s is locked (no defer Unlock on this path)", g)
			}
		}
		return env, true
	case *ast.DeferStmt:
		if g, op := w.mutexOp(st.Call); g != "" && (op == "Unlock" || op == "RUnlock") {
			env[g] = lockHeldDefer
		} else {
			w.expr(st.Call, env)
		}
	case *ast.IfStmt:
		if st.Init != nil {
			env, _ = w.stmt(st.Init, env)
		}
		w.expr(st.Cond, env)
		thenEnv, t1 := w.stmts(st.Body.List, env.clone())
		elseEnv := env.clone()
		t2 := false
		switch e := st.Else.(type) {
		case *ast.BlockStmt:
			elseEnv, t2 = w.stmts(e.List, elseEnv)
		case *ast.IfStmt:
			elseEnv, t2 = w.stmt(e, elseEnv)
		}
		switch {
		case t1 && t2:
			return env, true
		case t1:
			return elseEnv, false
		case t2:
			return thenEnv, false
		default:
			return mergeLockEnvs(thenEnv, elseEnv), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			env, _ = w.stmt(st.Init, env)
		}
		w.expr(st.Cond, env)
		bodyEnv, term := w.stmts(st.Body.List, env.clone())
		if term {
			return env, false
		}
		return mergeLockEnvs(env, bodyEnv), false
	case *ast.RangeStmt:
		w.expr(st.X, env)
		bodyEnv, term := w.stmts(st.Body.List, env.clone())
		if term {
			return env, false
		}
		return mergeLockEnvs(env, bodyEnv), false
	case *ast.SwitchStmt:
		if st.Init != nil {
			env, _ = w.stmt(st.Init, env)
		}
		w.expr(st.Tag, env)
		return w.lockCases(st.Body, env)
	case *ast.TypeSwitchStmt:
		return w.lockCases(st.Body, env)
	case *ast.SelectStmt:
		return w.lockCases(st.Body, env)
	case *ast.BlockStmt:
		return w.stmts(st.List, env)
	case *ast.GoStmt:
		w.expr(st.Call, env)
	case *ast.SendStmt:
		w.expr(st.Chan, env)
		w.expr(st.Value, env)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, env)
	case *ast.BranchStmt:
		return env, true
	case *ast.IncDecStmt:
		w.expr(st.X, env)
	}
	return env, false
}

func (w *lockWalker) lockCases(body *ast.BlockStmt, env lockEnv) (lockEnv, bool) {
	var merged lockEnv
	hasDefault := false
	for _, stmt := range body.List {
		var list []ast.Stmt
		caseEnv := env.clone()
		switch cc := stmt.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				w.expr(e, env)
			}
			if cc.List == nil {
				hasDefault = true
			}
			list = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				caseEnv, _ = w.stmt(cc.Comm, caseEnv)
			} else {
				hasDefault = true
			}
			list = cc.Body
		}
		caseEnv, term := w.stmts(list, caseEnv)
		if term {
			continue
		}
		if merged == nil {
			merged = caseEnv
		} else {
			merged = mergeLockEnvs(merged, caseEnv)
		}
	}
	if !hasDefault {
		if merged == nil {
			merged = env
		} else {
			merged = mergeLockEnvs(merged, env)
		}
	}
	if merged == nil {
		return env, len(body.List) > 0
	}
	return merged, false
}

// mutexOp recognizes s.mu.Lock() / mu.RUnlock() etc, returning the
// mutex field/variable name and the operation.
func (w *lockWalker) mutexOp(call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	var name string
	var t types.Type
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		name = base.Sel.Name
		t = w.p.TypeOf(base)
	case *ast.Ident:
		name = base.Name
		t = w.p.TypeOf(base)
	default:
		return "", ""
	}
	if t == nil {
		return "", ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if !isMutexType(t) {
		return "", ""
	}
	return name, op
}

func (w *lockWalker) expr(e ast.Expr, env lockEnv) {
	if e == nil {
		return
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if g, op := w.mutexOp(x); g != "" {
			switch op {
			case "Lock", "RLock":
				env[g] = lockHeld
			case "Unlock", "RUnlock":
				env[g] = lockNotHeld
			}
			return
		}
		w.expr(x.Fun, env)
		for _, a := range x.Args {
			w.expr(a, env)
		}
	case *ast.SelectorExpr:
		w.checkAccess(x, env)
		w.expr(x.X, env)
	case *ast.FuncLit:
		// a closure runs in an unknown lock context: walk it with every
		// guard unclear so nothing inside is reported either way
		inner := make(lockEnv)
		for _, g := range w.guarded {
			inner[g] = lockUnclear
		}
		w.stmts(x.Body.List, inner)
	case *ast.UnaryExpr:
		w.expr(x.X, env)
	case *ast.BinaryExpr:
		w.expr(x.X, env)
		w.expr(x.Y, env)
	case *ast.IndexExpr:
		w.expr(x.X, env)
		w.expr(x.Index, env)
	case *ast.SliceExpr:
		w.expr(x.X, env)
		w.expr(x.Low, env)
		w.expr(x.High, env)
		w.expr(x.Max, env)
	case *ast.StarExpr:
		w.expr(x.X, env)
	case *ast.TypeAssertExpr:
		w.expr(x.X, env)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			w.expr(elt, env)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Key, env)
		w.expr(x.Value, env)
	}
}

func (w *lockWalker) checkAccess(sel *ast.SelectorExpr, env lockEnv) {
	v, ok := w.p.ObjectOf(sel.Sel).(*types.Var)
	if !ok {
		return
	}
	guard, ok := w.guarded[v]
	if !ok {
		return
	}
	switch env[guard] {
	case lockHeld, lockHeldDefer, lockUnclear:
	default:
		w.p.Reportf(sel.Sel.Pos(), "%s is guarded by %s, which is not held here", v.Name(), guard)
	}
}

// checkLockCopies flags by-value copies of lock-bearing structs: value
// receivers, value parameters, and `x := *p` dereference copies.
func checkLockCopies(p *TypedPass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fd.Recv != nil {
				for _, field := range fd.Recv.List {
					if t := p.TypeOf(field.Type); t != nil && carriesLock(t) {
						p.Reportf(field.Pos(), "value receiver copies lock-bearing struct %s; use a pointer receiver", types.TypeString(t, nil))
					}
				}
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					if t := p.TypeOf(field.Type); t != nil && carriesLock(t) {
						p.Reportf(field.Pos(), "parameter passes lock-bearing struct %s by value", types.TypeString(t, nil))
					}
				}
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, r := range as.Rhs {
					star, ok := ast.Unparen(r).(*ast.StarExpr)
					if !ok {
						continue
					}
					if t := p.TypeOf(star); t != nil && carriesLock(t) {
						p.Reportf(r.Pos(), "dereference copies lock-bearing struct %s", types.TypeString(t, nil))
					}
				}
				return true
			})
		}
	}
}

// carriesLock reports whether t is (or directly embeds) a struct with a
// sync.Mutex/RWMutex field.
func carriesLock(t types.Type) bool {
	if isMutexType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isMutexType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}
