package analyzers

// This file is the solver half of the dimensional-inference tier (the
// algebra and the //ctmsvet:unit directive live in dim.go). It runs
// over the whole type-checked module — reusing the typed tier's
// LoadTypedModule, so cmd/ctmsvet pays for one load across the typed,
// interprocedural and dim tiers — and works in three phases:
//
//  1. scan: collect //ctmsvet:unit directives (fields, const/var
//     specs, type declarations, function params and results),
//     validating shape and placement; malformed or unattached
//     directives become findings immediately.
//  2. collect: extract every dimension-relevant flow in the module —
//     assignments, call arguments, returns, composite-literal fields —
//     plus check-only expressions (if/for conditions, switch tags,
//     discarded values).
//  3. solve: propagate dimensions along the flows to a fixed point.
//     Every value's dimension carries its derivation — the seed that
//     introduced it and each assignment/argument/return hop it took,
//     with file:line per hop — so a conflict is reported at the first
//     contradicting expression with the full chain, and the finding
//     explains itself.
//
// Propagation rules (DESIGN.md §7.4): add, subtract and compare force
// dimension equality; multiply and divide compose exponents;
// constant-valued operands in multiplicative position are scale
// factors (the algebra is scale-blind) except the literal 8, the
// blessed bit<->byte converter; an operand with no known dimension is
// treated as a dimensionless count under * and /, and unconstrained
// under + and -. Conversions (T(x)) preserve the operand's dimension:
// Go code routinely casts counts into quantity types to satisfy the
// type checker, and the cast must not launder the dimension.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// DimAnalyzerName is the dim tier's analyzer name, for -analyzers
// selection and //ctmsvet:allow suppression.
const DimAnalyzerName = "dim"

// dimStep is one hop of a derivation chain.
type dimStep struct {
	pos  token.Pos
	note string
}

// dimVal is a dimension together with the chain that derived it.
type dimVal struct {
	d     Dim
	known bool
	steps []dimStep
}

// How firmly a node's dimension is held. Hard seeds (an explicit
// directive, or the object's own name) are ground truth: a conflicting
// flow into a hard node is a finding. Soft seeds (the declared type —
// sim.Time values are usually seconds, but a per-byte cost stored in a
// Time is not) and flow-inferred dimensions are best-effort: a
// conflicting flow demotes the node to polymorphic instead of firing,
// which is what makes generic helpers (PutUint32, Scale, a reused
// temp) inert rather than module-poisoning.
const (
	seedNone = iota // inferred from flows, or still unknown
	seedSoft        // from the declared type
	seedHard        // from a //ctmsvet:unit directive or the name
)

// dimNode is the inferred dimension of one declared object (var,
// field, param, result, const).
type dimNode struct {
	dimVal
	seed       int
	poly       bool // demoted: carries no dimension, checks nothing
	conflicted bool // one conflict per object: suppress cascades
}

// dimFlow is one propagation edge: expr (or srcObj) flows into target.
// A nil target is a check-only flow — the expression is evaluated for
// internal add/sub/compare consistency and its value goes nowhere.
type dimFlow struct {
	tp     *TypedPackage
	target types.Object
	src    types.Object // object-to-object flow (multi-value assign)
	expr   ast.Expr     // nil iff src is set
	pos    token.Pos
	note   string // hop description, e.g. "assigned to n"
}

// dimWorld is the module-wide inference state.
type dimWorld struct {
	mod *Module

	objDirective  map[types.Object]Dim
	typeDirective map[*types.TypeName]Dim
	resultSeed    map[types.Object]Dim // func-name seeds for result vars
	consumed      map[*ast.Comment]bool
	malformed     []Diagnostic

	nodes map[types.Object]*dimNode
	flows []dimFlow

	conflicts    []Diagnostic
	conflictSeen map[string]bool
	changed      bool
}

func newDimWorld(mod *Module) *dimWorld {
	return &dimWorld{
		mod:           mod,
		objDirective:  make(map[types.Object]Dim),
		typeDirective: make(map[*types.TypeName]Dim),
		resultSeed:    make(map[types.Object]Dim),
		consumed:      make(map[*ast.Comment]bool),
		nodes:         make(map[types.Object]*dimNode),
		conflictSeen:  make(map[string]bool),
	}
}

// relPos renders a position root-relative for derivation chains, so
// messages are stable across checkouts (and baseline-matchable).
func (w *dimWorld) relPos(pos token.Pos) string {
	p := w.mod.Fset.Position(pos)
	file := p.Filename
	if rel, err := filepath.Rel(w.mod.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// renderChain formats a derivation for a finding: each hop's note and
// file:line, seed first. Long chains elide their middle.
func (w *dimWorld) renderChain(steps []dimStep) string {
	const keepHead, keepTail = 3, 4
	var parts []string
	render := func(s dimStep) string {
		return fmt.Sprintf("%s [%s]", s.note, w.relPos(s.pos))
	}
	if n := len(steps); n > keepHead+keepTail+1 {
		for _, s := range steps[:keepHead] {
			parts = append(parts, render(s))
		}
		parts = append(parts, fmt.Sprintf("(%d hops elided)", n-keepHead-keepTail))
		for _, s := range steps[n-keepTail:] {
			parts = append(parts, render(s))
		}
	} else {
		for _, s := range steps {
			parts = append(parts, render(s))
		}
	}
	return strings.Join(parts, " -> ")
}

// ---- phase 1: directives and seeds ----------------------------------

// scanDirectives walks every file of every package collecting
// //ctmsvet:unit annotations and validating their shape and placement.
func (w *dimWorld) scanDirectives() {
	for _, tp := range w.mod.Packages() {
		for _, f := range tp.Files {
			w.scanFileDirectives(tp, f)
		}
	}
	// Any unit directive not consumed by a declaration it can annotate
	// rots silently; sweep and report.
	for _, tp := range w.mod.Packages() {
		for _, f := range tp.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if _, _, _, ok := parseUnitDirective(c.Text); !ok || w.consumed[c] {
						continue
					}
					w.reportDirective(tp, c, "unit directive is not attached to a field, const/var, type or function declaration")
				}
			}
		}
	}
}

func (w *dimWorld) reportDirective(tp *TypedPackage, c *ast.Comment, format string, args ...any) {
	w.consumed[c] = true
	pos := tp.Fset.Position(c.Pos())
	w.malformed = append(w.malformed, Diagnostic{
		Analyzer: "ctmsvet", File: pos.Filename, Line: pos.Line, Col: 1,
		Message: fmt.Sprintf(format, args...),
	})
}

// unitComments extracts the unit directives from a set of comment
// groups, leaving them marked consumed.
func (w *dimWorld) unitComments(cgs ...*ast.CommentGroup) []*ast.Comment {
	var out []*ast.Comment
	for _, cg := range cgs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if _, _, _, ok := parseUnitDirective(c.Text); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// parseDirective validates one attached directive and returns its
// dimension and target token; reported problems return ok=false.
func (w *dimWorld) parseDirective(tp *TypedPackage, c *ast.Comment) (Dim, string, bool) {
	w.consumed[c] = true
	dimExpr, target, extra, _ := parseUnitDirective(c.Text)
	if dimExpr == "" {
		w.reportDirective(tp, c, "unit directive names no dimension (want //ctmsvet:unit <dimension>)")
		return Dim{}, "", false
	}
	if extra {
		w.reportDirective(tp, c, "unit directive has trailing words after %q (want //ctmsvet:unit <dimension> [param])", target)
		return Dim{}, "", false
	}
	d, err := ParseDim(dimExpr)
	if err != nil {
		w.reportDirective(tp, c, "unit directive: %v", err)
		return Dim{}, "", false
	}
	return d, target, true
}

func (w *dimWorld) scanFileDirectives(tp *TypedPackage, f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			w.scanFuncDirectives(tp, d)
			if d.Body != nil {
				w.seedResultFromName(tp, d)
			}
		case *ast.GenDecl:
			w.scanGenDirectives(tp, d)
		}
	}
	// Struct fields can appear anywhere (including inside function
	// bodies); sweep them all.
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			for _, c := range w.unitComments(field.Doc, field.Comment) {
				d, target, ok := w.parseDirective(tp, c)
				if !ok {
					continue
				}
				if target != "" {
					w.reportDirective(tp, c, "unit directive on a field takes no target token (got %q)", target)
					continue
				}
				for _, name := range field.Names {
					if obj := tp.Info.Defs[name]; obj != nil {
						w.objDirective[obj] = d
					}
				}
			}
		}
		return true
	})
}

func (w *dimWorld) scanFuncDirectives(tp *TypedPackage, fd *ast.FuncDecl) {
	cs := w.unitComments(fd.Doc)
	if len(cs) == 0 {
		return
	}
	obj, _ := tp.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig := obj.Type().(*types.Signature)
	for _, c := range cs {
		d, target, ok := w.parseDirective(tp, c)
		if !ok {
			continue
		}
		switch {
		case target == "result" || (target == "" && sig.Results().Len() == 1):
			if sig.Results().Len() != 1 {
				w.reportDirective(tp, c, "unit directive targets the result of %s, which has %d results", fd.Name.Name, sig.Results().Len())
				continue
			}
			w.objDirective[sig.Results().At(0)] = d
		case target == "":
			w.reportDirective(tp, c, "unit directive on %s names no parameter (want //ctmsvet:unit <dimension> <param>)", fd.Name.Name)
		default:
			var param *types.Var
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i).Name() == target {
					param = sig.Params().At(i)
					break
				}
			}
			if param == nil && sig.Recv() != nil && sig.Recv().Name() == target {
				param = sig.Recv()
			}
			if param == nil {
				w.reportDirective(tp, c, "unit directive names %q, not a parameter of %s", target, fd.Name.Name)
				continue
			}
			w.objDirective[param] = d
		}
	}
}

func (w *dimWorld) scanGenDirectives(tp *TypedPackage, gd *ast.GenDecl) {
	declDoc := gd.Doc
	if len(gd.Specs) != 1 {
		declDoc = nil // a shared doc cannot be attributed to one spec
	}
	for _, spec := range gd.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			for _, c := range w.unitComments(declDoc, s.Doc, s.Comment) {
				d, target, ok := w.parseDirective(tp, c)
				if !ok {
					continue
				}
				if target != "" {
					w.reportDirective(tp, c, "unit directive on a type takes no target token (got %q)", target)
					continue
				}
				if tn, ok := tp.Info.Defs[s.Name].(*types.TypeName); ok {
					w.typeDirective[tn] = d
				}
			}
		case *ast.ValueSpec:
			for _, c := range w.unitComments(declDoc, s.Doc, s.Comment) {
				d, target, ok := w.parseDirective(tp, c)
				if !ok {
					continue
				}
				if target != "" {
					w.reportDirective(tp, c, "unit directive on a const/var takes no target token (got %q)", target)
					continue
				}
				for _, name := range s.Names {
					if obj := tp.Info.Defs[name]; obj != nil {
						w.objDirective[obj] = d
					}
				}
			}
		}
	}
}

// seedResultFromName records a function-name seed for a single unnamed
// (or unit-namelessly named) result: OfferedBits() must return bits,
// Seconds() must return seconds.
func (w *dimWorld) seedResultFromName(tp *TypedPackage, fd *ast.FuncDecl) {
	obj, _ := tp.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig := obj.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return
	}
	res := sig.Results().At(0)
	if res.Name() != "" {
		return // a named result seeds from its own name
	}
	if d, ok := dimFromName(fd.Name.Name); ok && numericish(res.Type()) {
		w.resultSeed[res] = d
	}
}

// numericish reports whether t (through pointers, slices and arrays)
// bottoms out in a numeric basic type — the only shapes a dimension
// can usefully attach to.
func numericish(t types.Type) bool {
	for i := 0; i < 10 && t != nil; i++ {
		switch x := t.(type) {
		case *types.Alias:
			t = types.Unalias(x)
		case *types.Named:
			t = x.Underlying()
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Basic:
			return x.Info()&types.IsNumeric != 0
		default:
			return false
		}
	}
	return false
}

// typeDim resolves the type-based seed of t: time.Duration and any
// named type whose declaration carries //ctmsvet:unit. Pointers,
// slices and arrays are transparent (a []sim.Time is still seconds,
// element-wise).
func (w *dimWorld) typeDim(t types.Type) (Dim, string, bool) {
	for i := 0; i < 10 && t != nil; i++ {
		switch x := t.(type) {
		case *types.Alias:
			t = types.Unalias(x)
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Named:
			tn := x.Obj()
			if tn.Pkg() != nil && tn.Pkg().Path() == "time" && tn.Name() == "Duration" {
				return Dim{exp: [numDims]int8{dimSec: 1}}, "time.Duration", true
			}
			if d, ok := w.typeDirective[tn]; ok {
				return d, "//ctmsvet:unit on type " + tn.Name(), true
			}
			t = x.Underlying()
		default:
			return Dim{}, "", false
		}
	}
	return Dim{}, "", false
}

// nodeFor returns (creating and seeding on first use) the inference
// node of obj. Seed precedence: explicit //ctmsvet:unit directive,
// then the object's own name, then a function-name result seed, then
// the declared type.
func (w *dimWorld) nodeFor(obj types.Object) *dimNode {
	if n, ok := w.nodes[obj]; ok {
		return n
	}
	n := &dimNode{}
	w.nodes[obj] = n
	name := obj.Name()
	if d, ok := w.objDirective[obj]; ok {
		n.seed = seedHard
		n.dimVal = dimVal{d: d, known: true, steps: []dimStep{{obj.Pos(), fmt.Sprintf("%s seeded %s (//ctmsvet:unit directive)", seedLabel(obj), d)}}}
		return n
	}
	if name != "" && name != "_" && numericish(obj.Type()) {
		if d, ok := dimFromName(name); ok {
			n.seed = seedHard
			n.dimVal = dimVal{d: d, known: true, steps: []dimStep{{obj.Pos(), fmt.Sprintf("%s seeded %s (name)", name, d)}}}
			return n
		}
	}
	if d, ok := w.resultSeed[obj]; ok {
		n.seed = seedHard
		n.dimVal = dimVal{d: d, known: true, steps: []dimStep{{obj.Pos(), fmt.Sprintf("result seeded %s (function name)", d)}}}
		return n
	}
	if d, src, ok := w.typeDim(obj.Type()); ok {
		n.seed = seedSoft
		n.dimVal = dimVal{d: d, known: true, steps: []dimStep{{obj.Pos(), fmt.Sprintf("%s seeded %s (%s)", seedLabel(obj), d, src)}}}
		return n
	}
	return n
}

func seedLabel(obj types.Object) string {
	if obj.Name() == "" {
		return "result"
	}
	return obj.Name()
}

// ---- phase 2: flow collection ---------------------------------------

func (w *dimWorld) collectFlows() {
	for _, tp := range w.mod.Packages() {
		for _, f := range tp.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							w.flowValueSpec(tp, vs)
						}
					}
				case *ast.FuncDecl:
					if d.Body != nil {
						w.collectFuncFlows(tp, d)
					}
				}
			}
		}
	}
}

func (w *dimWorld) addFlow(fl dimFlow) {
	// A dimension can only attach to a numeric slot. Flows into
	// interface, string or struct targets (fmt-style ...any variadics
	// above all) degrade to check-only: without this, every Checkf
	// argument in the module would unify through the one shared args
	// parameter.
	if fl.target != nil && !numericish(fl.target.Type()) {
		fl.target = nil
	}
	w.flows = append(w.flows, fl)
}

func (w *dimWorld) flowValueSpec(tp *TypedPackage, vs *ast.ValueSpec) {
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		obj := tp.Info.Defs[name]
		w.addFlow(dimFlow{tp: tp, target: obj, expr: vs.Values[i], pos: vs.Values[i].Pos(),
			note: "assigned to " + name.Name})
	}
}

// funcFrame tracks the innermost function while walking a body, so
// return statements answer to the right signature.
type funcFrame struct {
	sig *types.Signature
	end token.Pos
}

func (w *dimWorld) collectFuncFlows(tp *TypedPackage, fd *ast.FuncDecl) {
	var frames []funcFrame
	if obj, ok := tp.Info.Defs[fd.Name].(*types.Func); ok {
		frames = append(frames, funcFrame{obj.Type().(*types.Signature), fd.End()})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		for len(frames) > 1 && n.Pos() >= frames[len(frames)-1].end {
			frames = frames[:len(frames)-1]
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			if sig, ok := tp.Info.TypeOf(x).(*types.Signature); ok {
				frames = append(frames, funcFrame{sig, x.End()})
			}
		case *ast.AssignStmt:
			w.flowAssign(tp, x)
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						w.flowValueSpec(tp, vs)
					}
				}
			}
		case *ast.ReturnStmt:
			if len(frames) > 0 {
				w.flowReturn(tp, x, frames[len(frames)-1].sig)
			}
		case *ast.CallExpr:
			w.flowCall(tp, x)
		case *ast.CompositeLit:
			w.flowCompositeLit(tp, x)
		case *ast.IfStmt:
			w.addFlow(dimFlow{tp: tp, expr: x.Cond, pos: x.Cond.Pos()})
		case *ast.ForStmt:
			if x.Cond != nil {
				w.addFlow(dimFlow{tp: tp, expr: x.Cond, pos: x.Cond.Pos()})
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				w.addFlow(dimFlow{tp: tp, expr: x.Tag, pos: x.Tag.Pos()})
			}
		}
		return true
	})
}

// slotObject resolves an assignment target to its declared object,
// looking through index, star and paren wrappers (a store into m[k] or
// *p constrains m's or p's element dimension).
func slotObject(tp *TypedPackage, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return nil
		}
		if o := tp.Info.Defs[x]; o != nil {
			return o
		}
		return tp.Info.Uses[x]
	case *ast.SelectorExpr:
		return tp.Info.Uses[x.Sel]
	case *ast.IndexExpr:
		return slotObject(tp, x.X)
	case *ast.StarExpr:
		return slotObject(tp, x.X)
	}
	return nil
}

func (w *dimWorld) flowAssign(tp *TypedPackage, as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			var target types.Object
			switch as.Tok {
			case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
				target = slotObject(tp, lhs)
			default:
				// *=, /= and friends change the dimension of the slot
				// itself; the store is out of the algebra's reach, but
				// the operand still gets consistency-checked.
			}
			name := "_"
			if target != nil {
				name = target.Name()
			}
			w.addFlow(dimFlow{tp: tp, target: target, expr: as.Rhs[i], pos: as.Rhs[i].Pos(),
				note: "assigned to " + name})
		}
		return
	}
	// Multi-value assignment from a single call: pair each target with
	// the callee's corresponding result object.
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := calleeObjectOf(tp, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != len(as.Lhs) {
		return
	}
	for i, lhs := range as.Lhs {
		target := slotObject(tp, lhs)
		if target == nil {
			continue
		}
		w.addFlow(dimFlow{tp: tp, target: target, src: sig.Results().At(i), pos: lhs.Pos(),
			note: fmt.Sprintf("assigned to %s from result of %s", target.Name(), fn.Name())})
	}
}

func (w *dimWorld) flowReturn(tp *TypedPackage, ret *ast.ReturnStmt, sig *types.Signature) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, e := range ret.Results {
		w.addFlow(dimFlow{tp: tp, target: sig.Results().At(i), expr: e, pos: e.Pos(),
			note: "returned"})
	}
}

func (w *dimWorld) flowCall(tp *TypedPackage, call *ast.CallExpr) {
	if tv, ok := tp.Info.Types[call.Fun]; ok && tv.IsType() {
		return // a conversion: eval passes the operand's dimension through
	}
	callee := calleeObjectOf(tp, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		// Calls the graph cannot see into: still consistency-check each
		// argument expression.
		for _, arg := range call.Args {
			w.addFlow(dimFlow{tp: tp, expr: arg, pos: arg.Pos()})
		}
		return
	}
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	for i, arg := range call.Args {
		var param *types.Var
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			param = params.At(i)
		case sig.Variadic() && params.Len() > 0:
			// The variadic tail: every element answers to the variadic
			// parameter, whose node carries the element dimension (the
			// container convention — typeDim and eval unwrap slices).
			param = params.At(params.Len() - 1)
		}
		if param == nil {
			continue
		}
		name := param.Name()
		if name == "" || name == "_" {
			w.addFlow(dimFlow{tp: tp, expr: arg, pos: arg.Pos()})
			continue
		}
		w.addFlow(dimFlow{tp: tp, target: param, expr: arg, pos: arg.Pos(),
			note: fmt.Sprintf("passed as %s to %s", name, fn.Name())})
	}
}

func (w *dimWorld) flowCompositeLit(tp *TypedPackage, lit *ast.CompositeLit) {
	t := tp.Info.TypeOf(lit)
	if t == nil {
		return
	}
	st, isStruct := t.Underlying().(*types.Struct)
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				w.addFlow(dimFlow{tp: tp, expr: kv.Value, pos: kv.Value.Pos()})
				continue
			}
			if obj := tp.Info.Uses[key]; obj != nil && isStruct {
				w.addFlow(dimFlow{tp: tp, target: obj, expr: kv.Value, pos: kv.Value.Pos(),
					note: "set field " + key.Name})
			} else {
				w.addFlow(dimFlow{tp: tp, expr: kv.Value, pos: kv.Value.Pos()})
			}
			continue
		}
		if isStruct && i < st.NumFields() {
			w.addFlow(dimFlow{tp: tp, target: st.Field(i), expr: elt, pos: elt.Pos(),
				note: "set field " + st.Field(i).Name()})
		} else {
			w.addFlow(dimFlow{tp: tp, expr: elt, pos: elt.Pos()})
		}
	}
}

// calleeObjectOf resolves a call expression to its function object, or
// nil for calls through function values. Shared with the
// interprocedural tier's call-graph builder.
func calleeObjectOf(tp *TypedPackage, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if o := tp.Info.Uses[fun]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	case *ast.SelectorExpr:
		if o := tp.Info.Uses[fun.Sel]; o != nil {
			if _, ok := o.(*types.Func); ok {
				return o
			}
		}
	}
	return nil
}

// ---- phase 3: the solver --------------------------------------------

// solve propagates dimensions along the flows to a fixed point. The
// pass cap is a safety net: each pass either assigns at least one new
// node dimension (monotone — dimensions are set once and never
// retracted) or terminates, so the cap is never the limiting factor on
// a sane module.
func (w *dimWorld) solve() {
	for pass := 0; pass < 64; pass++ {
		w.changed = false
		for i := range w.flows {
			w.processFlow(&w.flows[i])
		}
		if !w.changed {
			return
		}
	}
}

func (w *dimWorld) processFlow(fl *dimFlow) {
	var val dimVal
	if fl.src != nil {
		val = w.nodeFor(fl.src).dimVal
	} else {
		val = w.eval(fl.tp, fl.expr)
	}
	if fl.target == nil {
		return
	}
	node := w.nodeFor(fl.target)
	if node.poly {
		return
	}
	switch {
	case val.known && !node.known:
		node.dimVal = dimVal{d: val.d, known: true,
			steps: appendStep(val.steps, dimStep{fl.pos, fl.note})}
		w.changed = true
	case val.known && node.known && val.d != node.d:
		// A compile-time-constant value adapts to its slot: the algebra
		// is scale-blind, and a constant carries no runtime provenance
		// to contradict (50*Nanosecond stored in an s/byte cost field is
		// a magnitude, not a mislabeled quantity).
		if fl.expr != nil {
			if _, konst := isConst(fl.tp, fl.expr); konst {
				return
			}
		}
		if node.seed == seedHard {
			w.flowConflict(fl, node, val)
			return
		}
		// Soft or inferred: the disagreement means the slot is generic
		// over dimension (a serialization helper's parameter, a reused
		// local). Demote it; it stops checking and stops propagating.
		node.dimVal = dimVal{}
		node.poly = true
		w.changed = true
	case !val.known && node.seed == seedHard && fl.expr != nil:
		// Back-propagation — from hard seeds only: a bare, dimensionless
		// object flowing into a directive- or name-seeded slot must
		// carry the slot's dimension. Soft and inferred slots do not
		// back-propagate; an inference chain relayed through a generic
		// helper's parameter would poison unrelated call sites.
		if obj := bareObject(fl.tp, fl.expr); obj != nil && obj != fl.target && numericish(obj.Type()) {
			src := w.nodeFor(obj)
			if !src.known && !src.poly {
				src.dimVal = dimVal{d: node.d, known: true,
					steps: appendStep(node.steps, dimStep{fl.pos, fmt.Sprintf("%s %s-dimensioned slot, so %s carries %s", fl.note, node.d, obj.Name(), node.d)})}
				w.changed = true
			}
		}
	}
}

// appendStep copies-and-appends so chains never alias across nodes.
func appendStep(steps []dimStep, s dimStep) []dimStep {
	out := make([]dimStep, 0, len(steps)+1)
	out = append(out, steps...)
	return append(out, s)
}

// bareObject reports the object behind a plain identifier or selector
// expression, or nil for anything composed.
func bareObject(tp *TypedPackage, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return nil
		}
		return tp.Info.Uses[x]
	case *ast.SelectorExpr:
		if o := tp.Info.Uses[x.Sel]; o != nil {
			if _, ok := o.(*types.Var); ok {
				return o
			}
		}
	}
	return nil
}

func (w *dimWorld) flowConflict(fl *dimFlow, node *dimNode, val dimVal) {
	if node.conflicted {
		return
	}
	pos := fl.tp.Fset.Position(fl.pos)
	key := fmt.Sprintf("%s:%d:%d/%s", pos.Filename, pos.Line, pos.Column, fl.note)
	if w.conflictSeen[key] {
		return
	}
	w.conflictSeen[key] = true
	node.conflicted = true
	w.conflicts = append(w.conflicts, Diagnostic{
		Analyzer: DimAnalyzerName,
		File:     pos.Filename, Line: pos.Line, Col: pos.Column,
		Message: fmt.Sprintf("%s: %s value flows into %s slot; value: %s; slot: %s",
			fl.note, val.d, node.d, w.renderChain(val.steps), w.renderChain(node.steps)),
	})
}

func (w *dimWorld) exprConflict(tp *TypedPackage, pos token.Pos, op string, left, right dimVal) {
	p := tp.Fset.Position(pos)
	key := fmt.Sprintf("%s:%d:%d/expr", p.Filename, p.Line, p.Column)
	if w.conflictSeen[key] {
		return
	}
	w.conflictSeen[key] = true
	w.conflicts = append(w.conflicts, Diagnostic{
		Analyzer: DimAnalyzerName,
		File:     p.Filename, Line: p.Line, Col: p.Column,
		Message: fmt.Sprintf("%s %s %s without a *8 or /8 conversion; left: %s; right: %s",
			left.d, op, right.d, w.renderChain(left.steps), w.renderChain(right.steps)),
	})
}

// isConst reports whether e is a compile-time constant, and its value.
func isConst(tp *TypedPackage, e ast.Expr) (constant.Value, bool) {
	if tv, ok := tp.Info.Types[e]; ok && tv.Value != nil {
		return tv.Value, true
	}
	return nil, false
}

var constEight = constant.MakeInt64(8)

func isEight(v constant.Value) bool {
	if v.Kind() != constant.Int {
		return false
	}
	return constant.Compare(v, token.EQL, constEight)
}

// eval computes the dimension of an expression under the current node
// assignment, reporting add/sub/compare conflicts as it goes.
func (w *dimWorld) eval(tp *TypedPackage, e ast.Expr) dimVal {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return w.eval(tp, x.X)
	case *ast.UnaryExpr:
		switch x.Op {
		case token.ADD, token.SUB, token.AND, token.XOR:
			return w.eval(tp, x.X)
		}
		return dimVal{}
	case *ast.StarExpr:
		return w.eval(tp, x.X)
	case *ast.IndexExpr:
		return w.eval(tp, x.X)
	case *ast.Ident:
		if obj := tp.Info.Uses[x]; obj != nil {
			switch obj.(type) {
			case *types.Var, *types.Const:
				return w.nodeFor(obj).dimVal
			}
		}
		return dimVal{}
	case *ast.SelectorExpr:
		if obj := tp.Info.Uses[x.Sel]; obj != nil {
			switch obj.(type) {
			case *types.Var, *types.Const:
				return w.nodeFor(obj).dimVal
			}
		}
		return dimVal{}
	case *ast.CallExpr:
		return w.evalCall(tp, x)
	case *ast.BinaryExpr:
		return w.evalBinary(tp, x)
	}
	return dimVal{}
}

func (w *dimWorld) evalCall(tp *TypedPackage, call *ast.CallExpr) dimVal {
	// A conversion preserves the operand's dimension: casts exist to
	// satisfy the type checker, not to change what a number measures.
	if tv, ok := tp.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.eval(tp, call.Args[0])
	}
	fn, ok := calleeObjectOf(tp, call).(*types.Func)
	if !ok {
		return dimVal{}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return dimVal{}
	}
	res := sig.Results().At(0)
	if v := w.nodeFor(res).dimVal; v.known {
		return dimVal{d: v.d, known: true,
			steps: appendStep(v.steps, dimStep{call.Pos(), "via call to " + fn.Name()})}
	}
	// Out-of-module functions have no scanned body, but their names
	// still speak: time.Duration.Seconds() is seconds.
	if d, ok := dimFromName(fn.Name()); ok && numericish(res.Type()) {
		return dimVal{d: d, known: true,
			steps: []dimStep{{call.Pos(), fmt.Sprintf("result of %s seeded %s (function name)", fn.Name(), d)}}}
	}
	return dimVal{}
}

func (w *dimWorld) evalBinary(tp *TypedPackage, b *ast.BinaryExpr) dimVal {
	switch b.Op {
	case token.ADD, token.SUB:
		left, right := w.eval(tp, b.X), w.eval(tp, b.Y)
		switch {
		case left.known && right.known:
			if left.d != right.d {
				w.exprConflict(tp, b.OpPos, b.Op.String(), left, right)
				return dimVal{}
			}
			return left
		case left.known:
			return left
		case right.known:
			return right
		}
		return dimVal{}
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		left, right := w.eval(tp, b.X), w.eval(tp, b.Y)
		if left.known && right.known && left.d != right.d {
			w.exprConflict(tp, b.OpPos, b.Op.String(), left, right)
		}
		return dimVal{} // a bool carries no dimension
	case token.MUL:
		lv, lconst, lscale := w.mulOperand(tp, b.X)
		rv, rconst, rscale := w.mulOperand(tp, b.Y)
		switch {
		case lscale:
			// A scale-factor constant — a bare literal, an unseeded
			// const, or a pure-time const like Millisecond (the algebra
			// is scale-blind) — except the literal 8, the blessed
			// bit<->byte converter.
			v, _ := isConst(tp, b.X)
			return w.scaleOrConvert(tp, rv, v, false, b.OpPos)
		case rscale:
			v, _ := isConst(tp, b.Y)
			return w.scaleOrConvert(tp, lv, v, false, b.OpPos)
		case lv.known && rv.known:
			// Covers dimensioned conversion constants too: sampleHz *
			// bytesPerSample composes sample/s with byte/sample.
			return dimVal{d: lv.d.Mul(rv.d), known: true,
				steps: appendStep(lv.steps, dimStep{b.OpPos, fmt.Sprintf("multiplied by %s value", rv.d)})}
		case lv.known && !rconst:
			return lv // the unknown side is a dimensionless count
		case rv.known && !lconst:
			return rv
		}
		return dimVal{}
	case token.QUO:
		lv, lconst, _ := w.mulOperand(tp, b.X)
		rv, rconst, rscale := w.mulOperand(tp, b.Y)
		switch {
		case rscale:
			v, _ := isConst(tp, b.Y)
			return w.scaleOrConvert(tp, lv, v, true, b.OpPos)
		case lv.known && rv.known:
			return dimVal{d: lv.d.Div(rv.d), known: true,
				steps: appendStep(lv.steps, dimStep{b.OpPos, fmt.Sprintf("divided by %s value", rv.d)})}
		case lconst && rv.known:
			// A constant numerator over a dimensioned denominator is a
			// true inversion: 1/ArrivalsPerSec is a mean gap in seconds.
			return dimVal{d: rv.d.Inv(), known: true,
				steps: appendStep(rv.steps, dimStep{b.OpPos, "inverted (divided into a count)"})}
		case lv.known && rconst:
			return lv
		}
		// An unknown runtime operand on either side: the quotient's
		// dimension cannot be claimed (dividing by an unknown is not
		// dividing by a count — frame indexes over frame rates would
		// misreport as s/frame).
		return dimVal{}
	case token.SHL, token.SHR, token.REM, token.AND, token.OR, token.XOR, token.AND_NOT:
		return w.eval(tp, b.X)
	}
	return dimVal{}
}

// mulOperand characterizes one operand of a * or /: its dimension
// value, whether it is compile-time constant, and whether it acts as a
// pure scale factor. A constant is a scale factor when it carries no
// dimension (a bare literal, an unseeded const) or a pure power of
// time (Millisecond, Second — the scale-blind axis); a constant with
// any other dimension (bytesPerSample: byte/sample, a bit-rate const)
// is a genuine conversion factor and composes like a runtime value.
func (w *dimWorld) mulOperand(tp *TypedPackage, e ast.Expr) (v dimVal, konst, scale bool) {
	v = w.eval(tp, e)
	if _, konst = isConst(tp, e); !konst {
		return v, false, false
	}
	return v, true, !v.known || pureTimeDim(v.d)
}

// pureTimeDim reports a dimension that is s^k (including k=0, the
// dimensionless dimension).
func pureTimeDim(d Dim) bool {
	for i, e := range d.exp {
		if i != dimSec && e != 0 {
			return false
		}
	}
	return true
}

// scaleOrConvert applies a constant factor to a value: a no-op for the
// scale-blind algebra, except that *8 on bytes yields bits and /8 on
// bits yields bytes (the repo's one blessed conversion).
func (w *dimWorld) scaleOrConvert(tp *TypedPackage, v dimVal, c constant.Value, div bool, pos token.Pos) dimVal {
	if !v.known || !isEight(c) {
		return v
	}
	d := v.d
	switch {
	case !div && d.exp[dimByte] > 0:
		d.exp[dimBit] += d.exp[dimByte]
		d.exp[dimByte] = 0
		return dimVal{d: d, known: true, steps: appendStep(v.steps, dimStep{pos, "converted bytes to bits (*8)"})}
	case div && d.exp[dimBit] > 0:
		d.exp[dimByte] += d.exp[dimBit]
		d.exp[dimBit] = 0
		return dimVal{d: d, known: true, steps: appendStep(v.steps, dimStep{pos, "converted bits to bytes (/8)"})}
	}
	return v
}

// ---- entry points ----------------------------------------------------

// RunDim executes the dimensional-inference tier over a loaded module.
// Constraints are always built module-wide (a seed in internal/sim
// constrains a flow in internal/topo); scope restricts which package
// directories findings are reported in (nil means all).
// //ctmsvet:allow dim suppression applies exactly as in the other
// tiers.
func RunDim(mod *Module, scope map[string]bool) []Diagnostic {
	w := newDimWorld(mod)
	w.scanDirectives()
	w.collectFlows()
	w.solve()

	var diags []Diagnostic
	var directives []directive
	inScope := func(file string) bool {
		return scope == nil || scope[filepath.Dir(file)]
	}
	for _, d := range append(w.conflicts, w.malformed...) {
		if inScope(d.File) {
			diags = append(diags, d)
		}
	}
	for _, tp := range mod.Packages() {
		if scope != nil && !scope[tp.Dir] {
			continue
		}
		directives = append(directives, collectDirectives(tp.Package)...)
	}
	diags = suppressDiagnostics(diags, directives)
	sortDiagnostics(diags)
	return diags
}

// dimScope is the dim tier's reporting scope: the sim-critical
// packages plus the module root, where the public Options/Session API
// carries the same rates.
func dimScope(root string) map[string]bool {
	scope := simCriticalScope(root)
	scope[root] = true
	return scope
}

// RunModuleDim runs the dim tier over an already-loaded module with
// the repo scoping rules, honoring an -analyzers selection.
func RunModuleDim(mod *Module, only ...string) ([]Diagnostic, error) {
	if err := SelectNames(only); err != nil {
		return nil, fmt.Errorf("ctmsvet: %w", err)
	}
	if len(only) > 0 && !containsName(only, DimAnalyzerName) {
		return nil, nil
	}
	return RunDim(mod, dimScope(mod.Root)), nil
}

// RunRepoDim loads the module at root and runs the dim tier.
func RunRepoDim(root string, only ...string) ([]Diagnostic, error) {
	if err := SelectNames(only); err != nil {
		return nil, fmt.Errorf("ctmsvet: %w", err)
	}
	if len(only) > 0 && !containsName(only, DimAnalyzerName) {
		return nil, nil
	}
	mod, err := LoadTypedModule(root)
	if err != nil {
		return nil, fmt.Errorf("ctmsvet: dim pass: %w", err)
	}
	return RunModuleDim(mod, only...)
}

func containsName(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}
