package analyzers

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// Units enforces the repo's bit/byte naming discipline. The paper's §1
// media rate is 150 KBytes/s and its §3 ring is 4 Mbit/s; one forgotten
// ×8 is a silent 8× capacity error, so every quantity that crosses that
// boundary carries its unit in its name (...Bits, ...Bytes, ...BitRate,
// ...BytesPerSec) and every conversion shows a literal 8.
//
// Three rules:
//
//   - mismatch: an assignment, call argument, return value or composite
//     literal field that moves a *Bits*-named expression into a
//     *Bytes*-named slot (or vice versa) with no literal 8 in the
//     expression;
//   - mixed: one expression that mentions both bits- and bytes-named
//     values with no literal 8;
//   - ambiguous: a numeric variable, parameter or struct field named
//     rate/budget/bw/bandwidth (or ...Rate) that carries no unit word at
//     all, when it traffics in unit-bearing values.
var Units = &Analyzer{
	Name: "units",
	Doc:  "enforce ...Bits/...Bytes naming and flag bit/byte mixing without a *8 or /8 conversion",
	Run:  runUnits,
}

type unit int

const (
	unitNone unit = iota
	unitBits
	unitBytes
	unitMixed
)

func (u unit) String() string {
	switch u {
	case unitBits:
		return "bits"
	case unitBytes:
		return "bytes"
	case unitMixed:
		return "mixed"
	}
	return "unitless"
}

// splitWords breaks an identifier into lowercase words at camelCase
// boundaries, digits and underscores: "RingBitRate" -> [ring bit rate],
// "rateBytesPerSec" -> [rate bytes per sec].
func splitWords(name string) []string {
	var words []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			words = append(words, strings.ToLower(cur.String()))
			cur.Reset()
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_' || unicode.IsDigit(r):
			flush()
		case unicode.IsUpper(r):
			// New word unless we are inside an acronym run (previous is
			// upper and next is not lower).
			if i > 0 && (!unicode.IsUpper(runes[i-1]) || (i+1 < len(runes) && unicode.IsLower(runes[i+1]))) {
				flush()
			}
			cur.WriteRune(r)
		default:
			cur.WriteRune(r)
		}
	}
	flush()
	return words
}

// nameUnit classifies an identifier by its words. A name mentioning both
// ("bytesToBits") is a conversion point and deliberately unitless here.
func nameUnit(name string) unit {
	var bits, bytes bool
	for _, w := range splitWords(name) {
		switch w {
		case "bit", "bits":
			bits = true
		case "byte", "bytes":
			bytes = true
		}
	}
	switch {
	case bits && bytes:
		return unitNone
	case bits:
		return unitBits
	case bytes:
		return unitBytes
	}
	return unitNone
}

// ambiguousRateName reports a name that denotes a rate or budget but
// carries no unit: exactly the identifiers the audit renames.
func ambiguousRateName(name string) bool {
	if nameUnit(name) != unitNone {
		return false
	}
	for _, w := range splitWords(name) {
		switch w {
		case "rate", "budget", "bw", "bandwidth":
			return true
		}
	}
	return false
}

// exprUnits walks an expression collecting the units of every mentioned
// name, and whether a literal 8 (the bit/byte conversion factor)
// appears. Function literals are opaque: a closure's body is its own
// unit context.
func exprUnits(e ast.Expr) (u unit, hasConv bool) {
	if e == nil {
		return unitNone, false
	}
	var bits, bytes bool
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CompositeLit:
			// A struct literal legitimately carries fields of different
			// units; each keyed field is checked on its own. Only an
			// unkeyed literal's elements flow through.
			for _, elt := range x.Elts {
				if _, keyed := elt.(*ast.KeyValueExpr); keyed {
					return false
				}
			}
			return true
		case *ast.BasicLit:
			if x.Kind == token.INT && x.Value == "8" {
				hasConv = true
			}
		case *ast.Ident:
			switch nameUnit(x.Name) {
			case unitBits:
				bits = true
			case unitBytes:
				bytes = true
			}
		}
		return true
	})
	switch {
	case bits && bytes:
		u = unitMixed
	case bits:
		u = unitBits
	case bytes:
		u = unitBytes
	}
	return u, hasConv
}

// slotName extracts the unit-bearing name of an assignment target.
func slotName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return slotName(x.X)
	case *ast.StarExpr:
		return slotName(x.X)
	}
	return ""
}

// numericType reports whether t is a plain numeric type name — the only
// types where a unitless rate name can hide an 8× error.
func numericType(t ast.Expr) bool {
	id, ok := t.(*ast.Ident)
	if !ok {
		return false
	}
	switch id.Name {
	case "int", "int8", "int16", "int32", "int64",
		"uint", "uint8", "uint16", "uint32", "uint64",
		"float32", "float64":
		return true
	}
	return false
}

func runUnits(p *Pass) {
	for _, f := range p.Pkg.Files {
		f := f
		checkTypeDecls(p, f)
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncParams(p, d)
				if d.Body != nil {
					checkFuncBody(p, f, d)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						checkValueSpec(p, vs)
					}
				}
			}
		}
	}
}

// checkTypeDecls flags ambiguous numeric struct fields.
func checkTypeDecls(p *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				if !numericType(field.Type) {
					continue
				}
				for _, n := range field.Names {
					if ambiguousRateName(n.Name) {
						p.Reportf(n.Pos(),
							"field %s.%s is a unitless rate; name the unit (e.g. %sBits, %sBytesPerSec)",
							ts.Name.Name, n.Name, n.Name, n.Name)
					}
				}
			}
		}
	}
}

// checkFuncParams flags ambiguous numeric parameters.
func checkFuncParams(p *Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if !numericType(field.Type) {
			continue
		}
		for _, n := range field.Names {
			if ambiguousRateName(n.Name) {
				p.Reportf(n.Pos(),
					"parameter %s of %s is a unitless rate; name the unit (e.g. %sBitsPerSec, %sBytesPerSec)",
					n.Name, fd.Name.Name, n.Name, n.Name)
			}
		}
	}
}

// resultUnit determines the unit a return statement must satisfy: a
// named result's unit if there is exactly one result, else the function
// name's own unit (OfferedBits must return bits).
func resultUnit(fd *ast.FuncDecl) unit {
	res := fd.Type.Results
	if res == nil || len(res.List) != 1 || len(res.List[0].Names) > 1 {
		return unitNone
	}
	if len(res.List[0].Names) == 1 {
		if u := nameUnit(res.List[0].Names[0].Name); u != unitNone {
			return u
		}
	}
	return nameUnit(fd.Name.Name)
}

func checkFuncBody(p *Pass, f *ast.File, fd *ast.FuncDecl) {
	retUnit := resultUnit(fd)
	// Returns inside closures answer to the closure, not the enclosing
	// function's result unit; record their extents so the walk below can
	// tell the two apart.
	var litRanges [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			litRanges = append(litRanges, [2]token.Pos{fl.Pos(), fl.End()})
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, r := range litRanges {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			checkAssign(p, node)
		case *ast.DeclStmt:
			if gd, ok := node.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						checkValueSpec(p, vs)
					}
				}
			}
		case *ast.ReturnStmt:
			if retUnit != unitNone && len(node.Results) == 1 && !inLit(node.Pos()) {
				checkSlot(p, node.Results[0].Pos(), fd.Name.Name, retUnit, node.Results[0], "return value of")
			}
		case *ast.CallExpr:
			checkCallArgs(p, f, node)
		case *ast.CompositeLit:
			for _, elt := range node.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if u := nameUnit(key.Name); u != unitNone {
					checkSlot(p, kv.Value.Pos(), key.Name, u, kv.Value, "field")
				}
			}
		}
		return true
	})
}

func checkAssign(p *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		name := slotName(lhs)
		if name == "" || name == "_" {
			continue
		}
		if as.Tok == token.DEFINE {
			if u, conv := exprUnits(as.Rhs[i]); ambiguousRateName(name) && u != unitNone && !conv {
				p.Reportf(lhs.Pos(),
					"%s is a unitless rate fed from %s-named values; name the unit (e.g. %sBitsPerSec, %sBytesPerSec)",
					name, u, name, name)
				continue
			}
		}
		if u := nameUnit(name); u != unitNone {
			checkSlot(p, as.Rhs[i].Pos(), name, u, as.Rhs[i], "assignment to")
		} else {
			checkMixedOnly(p, as.Rhs[i])
		}
	}
}

func checkValueSpec(p *Pass, vs *ast.ValueSpec) {
	for i, n := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		if u, conv := exprUnits(vs.Values[i]); ambiguousRateName(n.Name) && u != unitNone && !conv {
			p.Reportf(n.Pos(),
				"%s is a unitless rate fed from %s-named values; name the unit (e.g. %sBitsPerSec, %sBytesPerSec)",
				n.Name, u, n.Name, n.Name)
			continue
		}
		if u := nameUnit(n.Name); u != unitNone {
			checkSlot(p, vs.Values[i].Pos(), n.Name, u, vs.Values[i], "assignment to")
		} else {
			checkMixedOnly(p, vs.Values[i])
		}
	}
}

// checkSlot verifies one expression flowing into a unit-named slot.
func checkSlot(p *Pass, pos token.Pos, name string, want unit, e ast.Expr, context string) {
	got, conv := exprUnits(e)
	if conv {
		return
	}
	switch got {
	case unitMixed:
		p.Reportf(pos, "expression mixes bits- and bytes-named values with no *8 or /8 conversion")
	case unitNone, want:
	default:
		p.Reportf(pos, "%s %s (%s) built from %s-named values with no *8 or /8 conversion",
			context, name, want, got)
	}
}

// checkMixedOnly reports an expression that mixes units internally even
// though its destination is unitless.
func checkMixedOnly(p *Pass, e ast.Expr) {
	if got, conv := exprUnits(e); got == unitMixed && !conv {
		p.Reportf(e.Pos(), "expression mixes bits- and bytes-named values with no *8 or /8 conversion")
	}
}

// checkCallArgs matches each argument's unit against the declared
// parameter name of the callee, resolved through the cross-package
// index.
func checkCallArgs(p *Pass, f *ast.File, call *ast.CallExpr) {
	var params []string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		params = p.Index.funcParams[fun.Name]
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if path := importPathOf(f, id.Name); path != "" {
				// Qualified call: key by the imported package's base name.
				base := path
				if i := strings.LastIndex(base, "/"); i >= 0 {
					base = base[i+1:]
				}
				params = p.Index.funcParams[base+"."+fun.Sel.Name]
			}
		}
	}
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		if i >= len(params) {
			break
		}
		if u := nameUnit(params[i]); u != unitNone {
			checkSlot(p, arg.Pos(), params[i], u, arg, "argument")
		} else {
			checkMixedOnly(p, arg)
		}
	}
}
