package analyzers

// barrier is the inbox-discipline analyzer. The sharded engine's
// conservative-window argument (DESIGN.md §9) is: a message crossing a
// shard boundary is delivered at send-time plus a link latency that is
// never below router.DefaultSwitchCost, so a window of the minimum
// latency guarantees no shard can receive a message from the past.
// The crossing points are declared with //ctmsvet:crossing push|drain|
// peek <reason>; this analyzer checks the declared discipline:
//
//   1. every call to a push function computes its deliverAt argument
//      as now + latency: the first argument must contain a .Now() call
//      AND an added latency term — a bare Now() delivers into the
//      current window and breaks the no-messages-from-the-past
//      invariant, a missing Now() makes delivery absolute and
//      window-relative reasoning impossible;
//   2. push sites must not be call-graph-reachable from the package's
//      Run function: pushes happen on the sending half's goroutine
//      during its window, not from the barrier-stepping driver;
//   3. drain sites must be call-graph-reachable from Run: a drain
//      anywhere else would consume messages mid-window;
//   4. no function both pushes and drains — the two sides of an inbox
//      belong to different goroutines by construction;
//   5. a package containing push sites must somewhere compare a
//      latency against the DefaultSwitchCost floor (the guard that
//      makes rule 1's latency term actually ≥ the window) — the
//      engine's validation does this once, centrally, in Validate.
//
// peek-role crossings (end-of-run accounting like leftover counts) are
// exempt from the reachability rules: they read, they do not move
// messages.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Barrier flags inbox pushes and drains that violate the declared
// window discipline.
var Barrier = &InterAnalyzer{
	Name: "barrier",
	Doc:  "flag inbox pushes without now+latency delivery, pushes reachable from Run, and drains outside the barrier step",
	Run:  runBarrier,
}

func runBarrier(p *InterPass) {
	// Gather this package's crossing-annotated functions by role, and
	// the object for Run (the barrier-stepping entry point), if any.
	var runObj types.Object
	pushFns := make(map[types.Object]bool)
	drainFns := make(map[types.Object]bool)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := p.Pkg.Info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if fd.Name.Name == "Run" && fd.Recv != nil {
				runObj = obj
			}
			if c, ok := p.World.Crossing(obj); ok {
				switch c.role {
				case "push":
					pushFns[obj] = true
				case "drain":
					drainFns[obj] = true
				}
			}
		}
	}
	if len(pushFns) == 0 && len(drainFns) == 0 {
		return
	}

	var fromRun map[types.Object]bool
	if runObj != nil {
		fromRun = p.World.ReachableFrom(runObj)
	}

	// Rules 1-4 over every call site in the module that lands on one of
	// this package's crossings.
	sawPushSite := false
	for _, site := range p.World.sites {
		if pushFns[site.callee] {
			sawPushSite = true
			checkDeliverAt(p, site)
			if fromRun != nil && site.caller != nil && fromRun[site.caller] {
				pos := p.Pkg.Fset.Position(site.call.Pos())
				reportAt(p, site, pos,
					"push %s is call-graph-reachable from Run's barrier step; pushes belong to the sending half's window, not the driver", site.callee.Name())
			}
		}
		if drainFns[site.callee] && site.caller != nil {
			if fromRun != nil && !fromRun[site.caller] {
				pos := p.Pkg.Fset.Position(site.call.Pos())
				reportAt(p, site, pos,
					"drain %s called outside the barrier step (not reachable from Run); drains may only run at window boundaries", site.callee.Name())
			}
		}
	}

	// Rule 4: one function on both sides of an inbox.
	for caller, callees := range p.World.edges {
		pushes, drains := false, false
		for callee := range callees {
			if pushFns[callee] {
				pushes = true
			}
			if drainFns[callee] {
				drains = true
			}
		}
		if pushes && drains {
			p.Reportf(caller.Pos(),
				"%s both pushes to and drains an inbox; the two sides belong to different goroutines", caller.Name())
		}
	}

	// Rule 5: somewhere in a pushing package, a latency must be guarded
	// against the SwitchCost floor.
	if sawPushSite && len(pushFns) > 0 && !hasFloorGuard(p) {
		// Anchor the finding on the first push-annotated function.
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj := p.Pkg.Info.Defs[fd.Name]; obj != nil && pushFns[obj] {
					p.Reportf(fd.Name.Pos(),
						"package pushes into inboxes but never compares a latency against the SwitchCost floor; validate latency >= DefaultSwitchCost before building links")
					return
				}
			}
		}
	}
}

// reportAt reports at a position that may belong to another package's
// file: call sites live in the caller's package, but the pass runs per
// crossing-declaring package. The diagnostic carries the caller file so
// the finding lands where the fix goes.
func reportAt(p *InterPass, site callSite, pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// checkDeliverAt enforces rule 1 on one push call: the first argument
// is the delivery time and must be now + latency.
func checkDeliverAt(p *InterPass, site callSite) {
	if len(site.call.Args) == 0 {
		return
	}
	deliverAt := site.call.Args[0]
	hasNow := exprContains(deliverAt, func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		return ok && sel.Sel.Name == "Now"
	})
	hasLatency := exprContains(deliverAt, func(e ast.Expr) bool {
		bin, ok := e.(*ast.BinaryExpr)
		return ok && bin.Op.String() == "+"
	})
	pos := site.pkg.Fset.Position(site.call.Pos())
	switch {
	case !hasNow:
		reportAt(p, site, pos,
			"deliverAt for push %s has no .Now() term: absolute delivery times cannot be reasoned about window-relative", site.callee.Name())
	case !hasLatency:
		reportAt(p, site, pos,
			"deliverAt for push %s adds no latency to Now(): zero-latency delivery lands inside the current window and breaks the barrier invariant", site.callee.Name())
	}
}

// exprContains walks e looking for a subexpression matching pred.
func exprContains(e ast.Expr, pred func(ast.Expr) bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if x, ok := n.(ast.Expr); ok && pred(x) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasFloorGuard reports whether any file in the package compares an
// operand whose text mentions Latency against an identifier whose name
// mentions SwitchCost (rule 5's shape: `l.Latency < router.
// DefaultSwitchCost` in the engine's Validate).
func hasFloorGuard(p *InterPass) bool {
	found := false
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			bin, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op.String() {
			case "<", "<=", ">", ">=":
			default:
				return true
			}
			mentions := func(e ast.Expr, frag string) bool {
				return exprContains(e, func(x ast.Expr) bool {
					switch v := x.(type) {
					case *ast.Ident:
						return strings.Contains(strings.ToLower(v.Name), frag)
					case *ast.SelectorExpr:
						return strings.Contains(strings.ToLower(v.Sel.Name), frag)
					}
					return false
				})
			}
			latVsFloor := (mentions(bin.X, "latency") && mentions(bin.Y, "switchcost")) ||
				(mentions(bin.Y, "latency") && mentions(bin.X, "switchcost"))
			if latVsFloor {
				found = true
				return false
			}
			return true
		})
	}
	return found
}
