package analyzers

import (
	"path/filepath"
	"sync"
	"testing"
)

// The dim fixtures are a real, compiling mini-module (testdata/dim,
// module dimfix), loaded once and shared across tests. The solver always
// runs module-wide; each test scopes reporting to its own fixture
// package, mirroring how the repo run scopes to the sim-critical
// packages.
var (
	dimFixtureOnce sync.Once
	dimFixtureMod  *Module
	dimFixtureErr  error
)

func loadDimFixture(t *testing.T) *Module {
	t.Helper()
	dimFixtureOnce.Do(func() {
		dimFixtureMod, dimFixtureErr = LoadTypedModule(filepath.Join("testdata", "dim"))
	})
	if dimFixtureErr != nil {
		t.Fatalf("load dim fixture module: %v", dimFixtureErr)
	}
	return dimFixtureMod
}

func runDimFixture(t *testing.T, pkgPath string) {
	t.Helper()
	mod := loadDimFixture(t)
	tp := mod.pkgs["dimfix/"+pkgPath]
	if tp == nil {
		t.Fatalf("fixture package dimfix/%s not loaded", pkgPath)
	}
	diags := RunDim(mod, map[string]bool{tp.Dir: true})
	matchWants(t, diags, parseWants(t, tp.Package))
}

// TestDimConflictFixture: a byte-seeded value crossing a call boundary
// into a bit-seeded parameter is a conflict at the call site.
func TestDimConflictFixture(t *testing.T) {
	runDimFixture(t, "conflict")
}

// TestDimBlessedFixture: *8 and /8 convert between bytes and bits; the
// bare assignment without either still conflicts.
func TestDimBlessedFixture(t *testing.T) {
	runDimFixture(t, "blessed")
}

// TestDimPolyFixture: untyped constants adapt to the slot they land in
// and never manufacture a conflict between two differently-dimensioned
// slots.
func TestDimPolyFixture(t *testing.T) {
	runDimFixture(t, "poly")
}

// TestDimDirectiveFixture: malformed //ctmsvet:unit directives are
// validated whenever the package is in scope.
func TestDimDirectiveFixture(t *testing.T) {
	runDimFixture(t, "directives")
}

// TestDimStringRoundTrip: Dim.String renders every dimension in the
// exact grammar ParseDim accepts, so annotations echoed in diagnostics
// can be pasted back into directives.
func TestDimStringRoundTrip(t *testing.T) {
	cases := []string{
		"1", "bit", "byte", "s", "frame", "sample",
		"bit/s", "byte/s", "s/byte", "1/s", "bit/frame",
		"byte/s/frame", "bit*s", "s^2", "bit/s^2", "byte^3/s^2",
	}
	for _, want := range cases {
		d, err := ParseDim(want)
		if err != nil {
			t.Fatalf("ParseDim(%q): %v", want, err)
		}
		got := d.String()
		if got != want {
			t.Errorf("ParseDim(%q).String() = %q, want round-trip", want, got)
		}
		back, err := ParseDim(got)
		if err != nil {
			t.Errorf("ParseDim(%q) (rendered): %v", got, err)
		} else if back != d {
			t.Errorf("round-trip %q -> %q -> different dim", want, got)
		}
	}
	// hz normalizes to 1/s: the renderer never emits hz, and the parsed
	// values agree.
	hz, err := ParseDim("hz")
	if err != nil {
		t.Fatalf("ParseDim(hz): %v", err)
	}
	if hz.String() != "1/s" {
		t.Errorf("ParseDim(hz).String() = %q, want 1/s", hz.String())
	}
}
