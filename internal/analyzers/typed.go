package analyzers

// This file is ctmsvet's second tier: a go/types-backed pass over the
// real, compiling module. The syntactic tier (driver.go) stays as the
// fast path — it runs in milliseconds and works on fixture packages
// that never compile — while this tier type-checks the module with the
// standard library's own machinery (go/types plus the go/importer
// source importer; still zero external dependencies) and feeds the
// dataflow analyzers that need real type identity: mbuflife, locking
// and hotpath.
//
// Module-local import paths are resolved by mapping them onto
// directories under the module root and type-checking recursively;
// everything else (the standard library) is loaded from GOROOT source
// by importer.ForCompiler(fset, "source", nil). Both tiers share the
// Diagnostic type, the //ctmsvet:allow protocol and the sorting rules,
// so cmd/ctmsvet can merge their findings into one report.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// TypedPackage is one type-checked package: the parsed syntax plus the
// go/types object and the expression-type tables the typed analyzers
// query.
type TypedPackage struct {
	*Package
	Types *types.Package
	Info  *types.Info
}

// TypedAnalyzer is one named rule set run over a type-checked package.
type TypedAnalyzer struct {
	Name string
	Doc  string
	Run  func(*TypedPass)
}

// TypedPass is one typed analyzer's view of one package.
type TypedPass struct {
	Analyzer *TypedAnalyzer
	Pkg      *TypedPackage
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *TypedPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the checker did not record
// one.
func (p *TypedPass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf resolves an identifier through the Defs and Uses tables.
func (p *TypedPass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

// Module is a type-checked view of one Go module, loaded without the go
// command: local import paths map onto directories under Root, the
// standard library comes from GOROOT source.
type Module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path declared in go.mod
	Fset *token.FileSet

	pkgs    map[string]*TypedPackage // by import path, load order in dirs
	order   []string                 // deterministic iteration order
	loading map[string]bool          // cycle guard
	std     types.Importer           // GOROOT source importer
}

// Import implements types.Importer: module-local paths load (and cache)
// from the tree; everything else delegates to the source importer.
func (m *Module) Import(path string) (*types.Package, error) {
	if m.local(path) {
		tp, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return tp.Types, nil
	}
	return m.std.Import(path)
}

func (m *Module) local(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

func (m *Module) dirOf(path string) string {
	if path == m.Path {
		return m.Root
	}
	return filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(path, m.Path+"/")))
}

func (m *Module) load(path string) (*TypedPackage, error) {
	if tp, ok := m.pkgs[path]; ok {
		return tp, nil
	}
	if m.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	m.loading[path] = true
	defer delete(m.loading, path)

	pkg, err := LoadPackage(m.Fset, m.dirOf(path))
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("no Go files in %s", m.dirOf(path))
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: m, FakeImportC: true}
	tpkg, err := conf.Check(path, m.Fset, pkg.Files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", path, err)
	}
	tp := &TypedPackage{Package: pkg, Types: tpkg, Info: info}
	m.pkgs[path] = tp
	m.order = append(m.order, path)
	return tp, nil
}

// Packages returns the loaded module-local packages in deterministic
// (load) order.
func (m *Module) Packages() []*TypedPackage {
	out := make([]*TypedPackage, 0, len(m.order))
	for _, path := range m.order {
		out = append(out, m.pkgs[path])
	}
	return out
}

// readModulePath extracts the module path from root/go.mod.
func readModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module directive in %s/go.mod", root)
}

// modulePackageDirs walks root collecting every directory that holds
// non-test Go files, as module-relative slash paths ("." for the root
// package). testdata and dot-directories are skipped, as the go tool
// does.
func modulePackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if len(dirs) == 0 || dirs[len(dirs)-1] != rel {
			dirs = append(dirs, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// LoadTypedModule type-checks every package of the module rooted at
// root. It fails on the first package that does not compile: the typed
// tier only makes sense over a real, building tree (fixtures that never
// compile belong to the syntactic tier).
func LoadTypedModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{
		Root:    root,
		Path:    modPath,
		Fset:    fset,
		pkgs:    make(map[string]*TypedPackage),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	dirs, err := modulePackageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, rel := range dirs {
		path := modPath
		if rel != "." {
			path = modPath + "/" + rel
		}
		if _, err := m.load(path); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// AllTyped lists the typed-tier analyzers.
var AllTyped = []*TypedAnalyzer{Mbuflife, Locking, Hotpath}

// AnalyzerNames returns the names of every analyzer in all four tiers, in
// suite order. This is the -analyzers vocabulary and the known-set for
// //ctmsvet:allow validation: a directive naming a typed analyzer must
// stay valid even when only the syntactic tier runs.
func AnalyzerNames() []string {
	var names []string
	for _, a := range All {
		names = append(names, a.Name)
	}
	for _, a := range AllTyped {
		names = append(names, a.Name)
	}
	for _, a := range AllInter {
		names = append(names, a.Name)
	}
	names = append(names, DimAnalyzerName)
	return names
}

func knownAnalyzers() map[string]bool {
	known := make(map[string]bool)
	for _, n := range AnalyzerNames() {
		known[n] = true
	}
	return known
}

// selectTyped resolves an -analyzers style selection against the typed
// suite; an empty selection means all. Unknown names are the caller's
// problem (validated centrally by SelectNames).
func selectTyped(only []string) []*TypedAnalyzer {
	if len(only) == 0 {
		return AllTyped
	}
	var out []*TypedAnalyzer
	for _, a := range AllTyped {
		for _, n := range only {
			if a.Name == n {
				out = append(out, a)
				break
			}
		}
	}
	return out
}

// SelectNames validates an -analyzers selection against all tiers,
// returning an error that lists the valid names for any unknown entry.
func SelectNames(only []string) error {
	known := knownAnalyzers()
	for _, n := range only {
		if !known[n] {
			return fmt.Errorf("unknown analyzer %q (valid: %s)", n, strings.Join(AnalyzerNames(), ", "))
		}
	}
	return nil
}

// RunTyped executes typed analyzers over the module's packages,
// applies //ctmsvet:allow suppressions (validation is the syntactic
// tier's job, so directives are not double-reported), and returns the
// diagnostics sorted like Run's.
func RunTyped(pkgs []*TypedPackage, as []*TypedAnalyzer) []Diagnostic {
	var diags []Diagnostic
	var directives []directive
	for _, tp := range pkgs {
		for _, a := range as {
			a.Run(&TypedPass{Analyzer: a, Pkg: tp, diags: &diags})
		}
		directives = append(directives, collectDirectives(tp.Package)...)
	}
	diags = suppressDiagnostics(diags, directives)
	sortDiagnostics(diags)
	return diags
}

// RunRepoTyped loads the module at root and runs the typed tier —
// optionally restricted to the named analyzers — over every package.
func RunRepoTyped(root string, only ...string) ([]Diagnostic, error) {
	if err := SelectNames(only); err != nil {
		return nil, fmt.Errorf("ctmsvet: %w", err)
	}
	as := selectTyped(only)
	if len(as) == 0 {
		// A valid selection naming only syntactic analyzers: the typed
		// tier has nothing to do, which is not an error.
		return nil, nil
	}
	mod, err := LoadTypedModule(root)
	if err != nil {
		return nil, fmt.Errorf("ctmsvet: typed pass: %w", err)
	}
	return RunTyped(mod.Packages(), as), nil
}

// RunModuleTyped runs the typed tier over an already-loaded module, so
// callers running both type-checked tiers (the CLI, ctmsbench) pay for
// one load instead of two.
func RunModuleTyped(mod *Module, only ...string) ([]Diagnostic, error) {
	if err := SelectNames(only); err != nil {
		return nil, fmt.Errorf("ctmsvet: %w", err)
	}
	as := selectTyped(only)
	if len(as) == 0 {
		return nil, nil
	}
	return RunTyped(mod.Packages(), as), nil
}
