package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoComesCleanDim is the dimensional tier's half of the lint gate:
// the real repository — with the genuine //ctmsvet:unit annotations on
// sim.Time, the admission controller and the per-byte cost models — must
// come clean, so any future finding is a real unit confusion (or needs a
// reasoned //ctmsvet:allow).
func TestRepoComesCleanDim(t *testing.T) {
	if testing.Short() {
		t.Skip("dimensional pass loads the whole module; skipped under -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	diags, err := RunRepoDim(root)
	if err != nil {
		t.Fatalf("RunRepoDim: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

// TestDimDirectiveFuncTargets covers the function-target directive
// validations the fixture cannot: doc-comment attachment is mandatory
// for them, and gofmt would reorder a directive past an adjacent want
// line, so they run over a scratch module no formatter touches.
func TestDimDirectiveFuncTargets(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("internal/sim/sim.go", `// Package sim carries the malformed function directives.
package sim

// Scale has no parameter named count.
//
//ctmsvet:unit byte count
func Scale(n int64) int64 { return n }

// Split has two results, so a bare result target is ambiguous.
//
//ctmsvet:unit byte result
func Split(n int64) (int64, int64) { return n, n }

// Grow is well-formed: the directive names a real parameter.
//
//ctmsvet:unit byte n
func Grow(n int64) int64 { return n + 1 }
`)

	diags, err := RunRepoDim(root)
	if err != nil {
		t.Fatalf("RunRepoDim: %v", err)
	}
	wants := []struct {
		line   int
		substr string
	}{
		{6, `names "count", not a parameter of Scale`},
		{11, "has 2 results"},
	}
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		for i, w := range wants {
			if !matched[i] && d.Line == w.line && strings.Contains(d.Message, w.substr) {
				matched[i] = true
				continue outer
			}
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("malformed directive at line %d not reported (want %q); got:\n%s",
				w.line, w.substr, diagList(diags))
		}
	}
}

// TestInjectedViolationsDim is ISSUE 9's acceptance check in reverse: a
// scratch module shaped like the engine carries a planted bytes-to-bits
// assignment two calls away from its seed. The finding must land at the
// exact file and line of the contradicting assignment, and its
// derivation chain must name both hops — the relay's return and the call
// site — so the report reads as a proof, not an accusation.
func TestInjectedViolationsDim(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	// The seed lives in internal/sim; the violation two calls away in
	// internal/topo. Both directories are in the dim tier's scope.
	write("internal/sim/sim.go", `// Package sim stubs the simulation core.
package sim

// Frame is a wire frame.
type Frame struct {
	// PayloadBytes is the payload size on the medium.
	//
	//ctmsvet:unit byte
	PayloadBytes int64
}
`)
	write("internal/topo/engine.go", `// Package topo stubs the capacity ledger.
package topo

import "scratch/internal/sim"

// Budget tracks reserved ring capacity.
type Budget struct {
	//ctmsvet:unit bit
	ReservedBits int64
}

// payload relays the frame's byte count: hop one of the derivation.
func payload(f sim.Frame) int64 {
	return f.PayloadBytes
}

// charge books the frame against the budget; the planted violation
// stores bytes where bits are owed, two calls from the seed.
func charge(b *Budget, f sim.Frame) {
	b.ReservedBits = payload(f)
}
`)

	diags, err := RunRepoDim(root)
	if err != nil {
		t.Fatalf("RunRepoDim: %v", err)
	}
	wantFile := filepath.Join("internal", "topo", "engine.go")
	const wantLine = 20
	var hit *Diagnostic
	for i, d := range diags {
		if d.Analyzer == DimAnalyzerName && strings.HasSuffix(d.File, wantFile) && d.Line == wantLine {
			hit = &diags[i]
			continue
		}
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if hit == nil {
		t.Fatalf("injected byte->bit violation at %s:%d not reported; got %d diagnostics:\n%s",
			wantFile, wantLine, len(diags), diagList(diags))
	}
	if !strings.Contains(hit.Message, "byte value flows into bit slot") {
		t.Errorf("finding does not state the unit clash: %s", hit.Message)
	}
	// The derivation chain must name both hops with their file:line — the
	// seed in sim, the relay's return inside payload, and the call in
	// charge — spanning two functions.
	for _, hop := range []string{
		filepath.Join("internal", "sim", "sim.go") + ":9", // the //ctmsvet:unit byte seed
		wantFile + ":14", // payload's return statement
		"via call to payload [" + wantFile + ":" + "20]", // the call site in charge
	} {
		if !strings.Contains(hit.Message, hop) {
			t.Errorf("derivation chain missing hop %q:\n%s", hop, hit.Message)
		}
	}
}
