package analyzers

import (
	"strings"
	"testing"
)

// FuzzAllowDirective pins parseAllowDirective's contract as a total
// function over arbitrary comment text: it never panics, it only
// accepts text carrying the //ctmsvet:allow prefix, the analyzer token
// it returns contains no spaces, and the reason comes back trimmed.
// The suppression machinery and the malformed-directive diagnostics
// both trust these properties.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//ctmsvet:allow determinism seeded fixture clock")
	f.Add("//ctmsvet:allow units")
	f.Add("//ctmsvet:allow")
	f.Add("//ctmsvet:allowx")
	f.Add("//ctmsvet:allow  hotpath   reason with   spaces  ")
	f.Add("// ctmsvet:allow hotpath leading space disqualifies")
	f.Add("//ctmsvet:enum")
	f.Add("/*ctmsvet:allow block*/")
	f.Add("")
	f.Add("//ctmsvet:allow\tmbuflife tab separated")
	f.Add("//ctmsvet:allow locking nbsp reason")

	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok := parseAllowDirective(text)
		if !ok {
			if analyzer != "" || reason != "" {
				t.Fatalf("rejected input returned non-empty parts: %q %q", analyzer, reason)
			}
			if strings.HasPrefix(text, directivePrefix) {
				t.Fatalf("input with the directive prefix was rejected: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("accepted input without the directive prefix: %q", text)
		}
		if strings.ContainsRune(analyzer, ' ') {
			t.Fatalf("analyzer token contains a space: %q (from %q)", analyzer, text)
		}
		if trimmed := strings.TrimSpace(reason); trimmed != reason {
			t.Fatalf("reason not trimmed: %q (from %q)", reason, text)
		}
		// An empty analyzer with a non-empty reason would mean the
		// directive's first token was swallowed.
		if analyzer == "" && reason != "" {
			t.Fatalf("empty analyzer but reason %q (from %q)", reason, text)
		}
		// The analyzer token is the directive's first field: stripping
		// ASCII space from it must be a no-op.
		if strings.TrimFunc(analyzer, func(r rune) bool { return r == ' ' }) != analyzer {
			t.Fatalf("analyzer has surrounding spaces: %q", analyzer)
		}
	})
}
