package analyzers

import (
	"strings"
	"testing"
)

// FuzzAllowDirective pins parseAllowDirective's contract as a total
// function over arbitrary comment text: it never panics, it only
// accepts text carrying the //ctmsvet:allow prefix, the analyzer token
// it returns contains no spaces, and the reason comes back trimmed.
// The suppression machinery and the malformed-directive diagnostics
// both trust these properties.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//ctmsvet:allow determinism seeded fixture clock")
	f.Add("//ctmsvet:allow units")
	f.Add("//ctmsvet:allow")
	f.Add("//ctmsvet:allowx")
	f.Add("//ctmsvet:allow  hotpath   reason with   spaces  ")
	f.Add("// ctmsvet:allow hotpath leading space disqualifies")
	f.Add("//ctmsvet:enum")
	f.Add("/*ctmsvet:allow block*/")
	f.Add("")
	f.Add("//ctmsvet:allow\tmbuflife tab separated")
	f.Add("//ctmsvet:allow locking nbsp reason")

	f.Add("//ctmsvet:allow shardowned worker spawn is the ownership transfer")
	f.Add("//ctmsvet:allow seedflow replay harness reuses the compiled seed")
	f.Add("//ctmsvet:allow barrier peek only, no message moves")
	f.Add("//ctmsvet:shardowned")
	f.Add("//ctmsvet:crossing push trailing text")

	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok := parseAllowDirective(text)
		if !ok {
			if analyzer != "" || reason != "" {
				t.Fatalf("rejected input returned non-empty parts: %q %q", analyzer, reason)
			}
			if strings.HasPrefix(text, directivePrefix) {
				t.Fatalf("input with the directive prefix was rejected: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("accepted input without the directive prefix: %q", text)
		}
		if strings.ContainsRune(analyzer, ' ') {
			t.Fatalf("analyzer token contains a space: %q (from %q)", analyzer, text)
		}
		if trimmed := strings.TrimSpace(reason); trimmed != reason {
			t.Fatalf("reason not trimmed: %q (from %q)", reason, text)
		}
		// An empty analyzer with a non-empty reason would mean the
		// directive's first token was swallowed.
		if analyzer == "" && reason != "" {
			t.Fatalf("empty analyzer but reason %q (from %q)", reason, text)
		}
		// The analyzer token is the directive's first field: stripping
		// ASCII space from it must be a no-op.
		if strings.TrimFunc(analyzer, func(r rune) bool { return r == ' ' }) != analyzer {
			t.Fatalf("analyzer has surrounding spaces: %q", analyzer)
		}
	})
}

// FuzzCrossingDirective pins parseCrossingDirective's contract the same
// way: total over arbitrary text, accepts exactly the //ctmsvet:crossing
// prefix, the role token carries no spaces, the reason comes back
// trimmed. World.validateDirectives trusts these properties when it
// turns malformed directives into findings instead of panics.
func FuzzCrossingDirective(f *testing.F) {
	f.Add("//ctmsvet:crossing push single-writer enqueue, deliverAt past the floor")
	f.Add("//ctmsvet:crossing drain runs only in the barrier step")
	f.Add("//ctmsvet:crossing peek end-of-run accounting")
	f.Add("//ctmsvet:crossing")
	f.Add("//ctmsvet:crossing push")
	f.Add("//ctmsvet:crossing teleport sideways")
	f.Add("//ctmsvet:crossingx")
	f.Add("// ctmsvet:crossing push leading space disqualifies")
	f.Add("//ctmsvet:shardowned")
	f.Add("//ctmsvet:allow shardowned not a crossing")
	f.Add("/*ctmsvet:crossing block*/")
	f.Add("")
	f.Add("//ctmsvet:crossing\tpush tab separated")

	f.Fuzz(func(t *testing.T, text string) {
		role, reason, ok := parseCrossingDirective(text)
		if !ok {
			if role != "" || reason != "" {
				t.Fatalf("rejected input returned non-empty parts: %q %q", role, reason)
			}
			if strings.HasPrefix(text, crossingPrefix) {
				t.Fatalf("input with the crossing prefix was rejected: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, crossingPrefix) {
			t.Fatalf("accepted input without the crossing prefix: %q", text)
		}
		if strings.ContainsRune(role, ' ') {
			t.Fatalf("role token contains a space: %q (from %q)", role, text)
		}
		if trimmed := strings.TrimSpace(reason); trimmed != reason {
			t.Fatalf("reason not trimmed: %q (from %q)", reason, text)
		}
		if role == "" && reason != "" {
			t.Fatalf("empty role but reason %q (from %q)", reason, text)
		}
	})
}
