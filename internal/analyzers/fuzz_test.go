package analyzers

import (
	"strings"
	"testing"
)

// FuzzAllowDirective pins parseAllowDirective's contract as a total
// function over arbitrary comment text: it never panics, it only
// accepts text carrying the //ctmsvet:allow prefix, the analyzer token
// it returns contains no spaces, and the reason comes back trimmed.
// The suppression machinery and the malformed-directive diagnostics
// both trust these properties.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//ctmsvet:allow determinism seeded fixture clock")
	f.Add("//ctmsvet:allow units")
	f.Add("//ctmsvet:allow")
	f.Add("//ctmsvet:allowx")
	f.Add("//ctmsvet:allow  hotpath   reason with   spaces  ")
	f.Add("// ctmsvet:allow hotpath leading space disqualifies")
	f.Add("//ctmsvet:enum")
	f.Add("/*ctmsvet:allow block*/")
	f.Add("")
	f.Add("//ctmsvet:allow\tmbuflife tab separated")
	f.Add("//ctmsvet:allow locking nbsp reason")

	f.Add("//ctmsvet:allow shardowned worker spawn is the ownership transfer")
	f.Add("//ctmsvet:allow seedflow replay harness reuses the compiled seed")
	f.Add("//ctmsvet:allow barrier peek only, no message moves")
	f.Add("//ctmsvet:shardowned")
	f.Add("//ctmsvet:crossing push trailing text")

	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok := parseAllowDirective(text)
		if !ok {
			if analyzer != "" || reason != "" {
				t.Fatalf("rejected input returned non-empty parts: %q %q", analyzer, reason)
			}
			if strings.HasPrefix(text, directivePrefix) {
				t.Fatalf("input with the directive prefix was rejected: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, directivePrefix) {
			t.Fatalf("accepted input without the directive prefix: %q", text)
		}
		if strings.ContainsRune(analyzer, ' ') {
			t.Fatalf("analyzer token contains a space: %q (from %q)", analyzer, text)
		}
		if trimmed := strings.TrimSpace(reason); trimmed != reason {
			t.Fatalf("reason not trimmed: %q (from %q)", reason, text)
		}
		// An empty analyzer with a non-empty reason would mean the
		// directive's first token was swallowed.
		if analyzer == "" && reason != "" {
			t.Fatalf("empty analyzer but reason %q (from %q)", reason, text)
		}
		// The analyzer token is the directive's first field: stripping
		// ASCII space from it must be a no-op.
		if strings.TrimFunc(analyzer, func(r rune) bool { return r == ' ' }) != analyzer {
			t.Fatalf("analyzer has surrounding spaces: %q", analyzer)
		}
	})
}

// FuzzUnitDirective pins the dim tier's parsing stack as total over
// arbitrary comment text: parseUnitDirective never panics and only
// accepts text carrying the //ctmsvet:unit prefix; ParseDim never
// panics on whatever expression the directive yields; and any dimension
// ParseDim does accept survives a String round-trip, so the dimensions
// echoed in diagnostics can be pasted back into directives verbatim.
func FuzzUnitDirective(f *testing.F) {
	f.Add("//ctmsvet:unit bit/s")
	f.Add("//ctmsvet:unit s/byte cost")
	f.Add("//ctmsvet:unit bit/s ringBits")
	f.Add("//ctmsvet:unit byte result")
	f.Add("//ctmsvet:unit s")
	f.Add("//ctmsvet:unit 1")
	f.Add("//ctmsvet:unit hz")
	f.Add("//ctmsvet:unit byte^3/s^2")
	f.Add("//ctmsvet:unit bit/s smoothed over a window")
	f.Add("//ctmsvet:unit")
	f.Add("//ctmsvet:unit bit/")
	f.Add("//ctmsvet:unit /s")
	f.Add("//ctmsvet:unit blip")
	f.Add("//ctmsvet:unit s^0")
	f.Add("//ctmsvet:unit s^10")
	f.Add("//ctmsvet:unit 1^2")
	f.Add("//ctmsvet:unitx bit")
	f.Add("// ctmsvet:unit bit leading space disqualifies")
	f.Add("//ctmsvet:allow units not a unit directive")
	f.Add("/*ctmsvet:unit block*/")
	f.Add("")
	f.Add("//ctmsvet:unit\tbit/s\ttab separated")

	f.Fuzz(func(t *testing.T, text string) {
		dimExpr, target, extra, ok := parseUnitDirective(text)
		if !ok {
			if dimExpr != "" || target != "" || extra {
				t.Fatalf("rejected input returned non-empty parts: %q %q %v", dimExpr, target, extra)
			}
			if strings.HasPrefix(text, unitDirectivePrefix) {
				t.Fatalf("input with the unit prefix was rejected: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, unitDirectivePrefix) {
			t.Fatalf("accepted input without the unit prefix: %q", text)
		}
		for _, tok := range []string{dimExpr, target} {
			if strings.ContainsAny(tok, " \t") {
				t.Fatalf("token contains whitespace: %q (from %q)", tok, text)
			}
		}
		if dimExpr == "" && (target != "" || extra) {
			t.Fatalf("empty dimension but target %q extra %v (from %q)", target, extra, text)
		}
		// ParseDim must be total over whatever expression the directive
		// carries, and accepted dimensions must round-trip through
		// String so diagnostics quote reusable annotations.
		d, err := ParseDim(dimExpr)
		if err != nil {
			return
		}
		rendered := d.String()
		back, err := ParseDim(rendered)
		if err != nil {
			t.Fatalf("ParseDim(%q) accepted but its rendering %q did not parse: %v", dimExpr, rendered, err)
		}
		if back != d {
			t.Fatalf("round-trip changed the dimension: %q -> %q", dimExpr, rendered)
		}
	})
}

// FuzzCrossingDirective pins parseCrossingDirective's contract the same
// way: total over arbitrary text, accepts exactly the //ctmsvet:crossing
// prefix, the role token carries no spaces, the reason comes back
// trimmed. World.validateDirectives trusts these properties when it
// turns malformed directives into findings instead of panics.
func FuzzCrossingDirective(f *testing.F) {
	f.Add("//ctmsvet:crossing push single-writer enqueue, deliverAt past the floor")
	f.Add("//ctmsvet:crossing drain runs only in the barrier step")
	f.Add("//ctmsvet:crossing peek end-of-run accounting")
	f.Add("//ctmsvet:crossing")
	f.Add("//ctmsvet:crossing push")
	f.Add("//ctmsvet:crossing teleport sideways")
	f.Add("//ctmsvet:crossingx")
	f.Add("// ctmsvet:crossing push leading space disqualifies")
	f.Add("//ctmsvet:shardowned")
	f.Add("//ctmsvet:allow shardowned not a crossing")
	f.Add("/*ctmsvet:crossing block*/")
	f.Add("")
	f.Add("//ctmsvet:crossing\tpush tab separated")

	f.Fuzz(func(t *testing.T, text string) {
		role, reason, ok := parseCrossingDirective(text)
		if !ok {
			if role != "" || reason != "" {
				t.Fatalf("rejected input returned non-empty parts: %q %q", role, reason)
			}
			if strings.HasPrefix(text, crossingPrefix) {
				t.Fatalf("input with the crossing prefix was rejected: %q", text)
			}
			return
		}
		if !strings.HasPrefix(text, crossingPrefix) {
			t.Fatalf("accepted input without the crossing prefix: %q", text)
		}
		if strings.ContainsRune(role, ' ') {
			t.Fatalf("role token contains a space: %q (from %q)", role, text)
		}
		if trimmed := strings.TrimSpace(reason); trimmed != reason {
			t.Fatalf("reason not trimmed: %q (from %q)", reason, text)
		}
		if role == "" && reason != "" {
			t.Fatalf("empty role but reason %q (from %q)", reason, text)
		}
	})
}
