package router

import (
	"testing"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// twoRingRig: a source on ring 0, a sink on ring 1, a router between.
type twoRingRig struct {
	sched  *sim.Scheduler
	r0, r1 *ring.Ring
	rt     *Router
	srcK   *kernel.Kernel
	srcDrv *tradapter.Driver
	dstK   *kernel.Kernel
	dstDrv *tradapter.Driver
}

func newTwoRings(t *testing.T) *twoRingRig {
	t.Helper()
	sched := sim.NewScheduler()
	cfg := ring.DefaultConfig()
	r0 := ring.New(sched, cfg)
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	r1 := ring.New(sched, cfg2)
	rt := New(sched, "router", r0, r1, 9)

	mk := func(name string, rg *ring.Ring) (*kernel.Kernel, *tradapter.Driver) {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 9)
		k := kernel.New(m)
		st := rg.Attach(name)
		c := tradapter.DefaultConfig()
		if name != "src" {
			c.DMABufferKind = rtpc.SystemMemory
		}
		drv := tradapter.New(k, st, c, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	srcK, srcDrv := mk("src", r0)
	dstK, dstDrv := mk("dst", r1)
	rt.AddRoute(0, dstDrv.Station().Addr(), 1)
	return &twoRingRig{sched: sched, r0: r0, r1: r1, rt: rt, srcK: srcK, srcDrv: srcDrv, dstK: dstK, dstDrv: dstDrv}
}

// send pushes one CTMSP packet from src toward dst via the router.
func (rig *twoRingRig) send(num uint32, size int) {
	ch := rig.srcK.Pool.AllocNoWait(size)
	ch.Tag = ctmsp.Header{PacketNum: num, Length: uint32(size)}
	pool := rig.srcK.Pool
	p := &tradapter.Outgoing{
		Chain:     ch,
		Size:      size,
		Class:     tradapter.ClassCTMSP,
		Dst:       rig.rt.Port(0).Driver.Station().Addr(),
		RoutedDst: rig.dstDrv.Station().Addr(),
		Done:      func(ring.DeliveryStatus) { pool.Free(ch) },
	}
	rig.srcDrv.Output(p)
}

func TestRouterForwardsAcrossRings(t *testing.T) {
	rig := newTwoRings(t)
	var got []uint32
	rig.dstDrv.SetHandler(tradapter.ClassCTMSP, func(rcv *tradapter.Received) []rtpc.Seg {
		out := rcv.Frame.Payload.(*tradapter.Outgoing)
		got = append(got, out.Chain.Tag.(ctmsp.Header).PacketNum)
		rcv.Release()
		return nil
	})
	for i := 0; i < 10; i++ {
		rig.send(uint32(i), 2000)
	}
	rig.sched.RunUntil(2 * sim.Second)
	if len(got) != 10 {
		t.Fatalf("forwarded %d/10", len(got))
	}
	for i, n := range got {
		if n != uint32(i) {
			t.Fatalf("order broken across the router: %v", got)
		}
	}
	st := rig.rt.Stats()
	if st.Forwarded[0] != 10 || st.Dropped != 0 {
		t.Fatalf("router stats: %+v", st)
	}
}

func TestRouterDropsUnroutable(t *testing.T) {
	rig := newTwoRings(t)
	ch := rig.srcK.Pool.AllocNoWait(500)
	ch.Tag = ctmsp.Header{}
	rig.srcDrv.Output(&tradapter.Outgoing{
		Chain:     ch,
		Size:      500,
		Class:     tradapter.ClassCTMSP,
		Dst:       rig.rt.Port(0).Driver.Station().Addr(),
		RoutedDst: 250, // no route
	})
	rig.sched.RunUntil(sim.Second)
	if rig.rt.Stats().Dropped != 1 {
		t.Fatalf("unroutable frame should drop: %+v", rig.rt.Stats())
	}
}

// TestRouterKeepsUpWithCTMSRate answers footnote 5's question: a
// 166 KB/s stream of 2000-byte packets every 12 ms across the router.
func TestRouterKeepsUpWithCTMSRate(t *testing.T) {
	rig := newTwoRings(t)
	var delivered int
	var lastAt sim.Time
	rig.dstDrv.SetHandler(tradapter.ClassCTMSP, func(rcv *tradapter.Received) []rtpc.Seg {
		delivered++
		lastAt = rcv.At
		rcv.Release()
		return nil
	})
	n := 0
	rep := rig.sched.Every(12*sim.Millisecond, "stream", func() {
		rig.send(uint32(n), 2000)
		n++
	})
	rig.sched.RunUntil(10 * sim.Second)
	rep.Stop()
	rig.sched.RunUntil(11 * sim.Second)

	if delivered < n-2 {
		t.Fatalf("router fell behind: %d/%d delivered", delivered, n)
	}
	// Steady state: the last packet arrives within a bounded pipeline
	// delay of its send (2 ring hops ≈ 22 ms + forwarding).
	sentAt := sim.Time(n) * 12 * sim.Millisecond
	if lag := lastAt - sentAt; lag > 40*sim.Millisecond {
		t.Fatalf("queueing delay grew: last packet lagged %v", lag)
	}
	// Router CPU must be sustainable.
	util := float64(rig.rt.Kernel().CPU().Stats().BusyTime) / float64(rig.sched.Now())
	if util > 0.5 {
		t.Fatalf("router CPU unsustainable: %.2f", util)
	}
	t.Logf("router: delivered %d/%d, cpu %.1f%%", delivered, n, 100*util)
}

func TestRouterBidirectional(t *testing.T) {
	rig := newTwoRings(t)
	// Add the reverse route and a responder on ring 1.
	rig.rt.AddRoute(1, rig.srcDrv.Station().Addr(), 0)

	var atSrc, atDst int
	rig.dstDrv.SetHandler(tradapter.ClassCTMSP, func(rcv *tradapter.Received) []rtpc.Seg {
		atDst++
		rcv.Release()
		return nil
	})
	rig.srcDrv.SetHandler(tradapter.ClassCTMSP, func(rcv *tradapter.Received) []rtpc.Seg {
		atSrc++
		rcv.Release()
		return nil
	})
	rig.send(1, 1000)
	// And one the other way.
	ch := rig.dstK.Pool.AllocNoWait(1000)
	ch.Tag = ctmsp.Header{PacketNum: 2}
	rig.dstDrv.Output(&tradapter.Outgoing{
		Chain:     ch,
		Size:      1000,
		Class:     tradapter.ClassCTMSP,
		Dst:       rig.rt.Port(1).Driver.Station().Addr(),
		RoutedDst: rig.srcDrv.Station().Addr(),
	})
	rig.sched.RunUntil(2 * sim.Second)
	if atDst != 1 || atSrc != 1 {
		t.Fatalf("bidirectional forwarding: src=%d dst=%d", atSrc, atDst)
	}
	st := rig.rt.Stats()
	if st.Forwarded[0] != 1 || st.Forwarded[1] != 1 {
		t.Fatalf("per-port accounting: %+v", st)
	}
}

// TestHalfEnvelopePoolReuses pins the split bridge's pooled egress: the
// envelope a recycle returns is the envelope the next Inject reuses, its
// permanent chain shell rides along, and the steady-state get/put cycle
// allocates nothing. (The two-phase recycle that decides WHEN putEnv
// runs is tradapter's; here we pin the pool itself.)
func TestHalfEnvelopePoolReuses(t *testing.T) {
	sched := sim.NewScheduler()
	rg := ring.New(sched, ring.DefaultConfig())
	h := NewHalf(sched, "half", rg, 0, 2, 9)

	e1 := h.getEnv()
	if e1.Chain == nil || e1.Done == nil {
		t.Fatal("cold-path envelope missing its permanent chain shell or Done")
	}
	ch1 := e1.Chain
	e1.Chain.Tag = "stale"
	e1.RoutedRing = 2
	h.putEnv(e1)
	e2 := h.getEnv()
	if e2 != e1 || e2.Chain != ch1 {
		t.Fatalf("pool built a fresh envelope instead of reusing: %p vs %p", e2, e1)
	}
	if e2.Chain.Tag != nil || e2.RoutedRing != 0 || e2.Dst != 0 {
		t.Fatalf("recycled envelope not cleared: %+v", e2)
	}
	h.putEnv(e2)

	if n := testing.AllocsPerRun(200, func() {
		h.putEnv(h.getEnv())
	}); n != 0 {
		t.Fatalf("envelope get/put cycle allocates %.1f per op; want 0", n)
	}
}
