// Package router implements the extension the paper's footnote 5 declines
// ("we would have the additional problem of creating a router that could
// keep up with the data rates that we were using. This is possible but
// has not been implemented"): a store-and-forward machine joining two
// Token Rings, forwarding CTMSP traffic between them.
//
// The router is an RT/PC with one Token Ring adapter per ring. A frame
// arriving on one ring whose destination lives on the other is received
// into a fixed DMA buffer, switched at network interrupt level, copied to
// the egress adapter and retransmitted. The interesting question — can it
// keep up with a 166 KB/s CTMS stream? — is answered by the tests and by
// experiment E14.
package router

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// DefaultSwitchCost is the per-frame CPU cost of the forwarding decision
// and descriptor shuffling on the router's RT/PC. It is also the floor on
// how quickly a frame can influence another ring, which is exactly the
// lookahead a conservative parallel simulation of an internetwork needs
// (DESIGN.md §9): no cross-ring effect can propagate in less than the
// switch time, so a shard may safely run that far ahead of its neighbors.
const DefaultSwitchCost = 180 * sim.Microsecond

// Port is one of the router's ring attachments.
type Port struct {
	Ring   *ring.Ring
	Driver *tradapter.Driver
}

// Stats aggregates forwarding accounting.
type Stats struct {
	Forwarded   [2]uint64 // by ingress port
	Bytes       uint64
	Dropped     uint64
	QueueMax    int
	ForwardCost sim.Time // accumulated CPU time spent switching
}

// Router joins two rings. Routes are static, as CTMSP assumes: the
// caller registers which destination addresses live behind which port.
type Router struct {
	k     *kernel.Kernel
	ports [2]Port
	// routes are per-ingress-port: each ring has its own address space,
	// so a destination is only meaningful relative to where the frame
	// came from.
	routes [2]map[ring.Addr]int
	stats  Stats

	// SwitchCost is the per-frame CPU cost of the forwarding decision
	// and descriptor shuffling.
	SwitchCost sim.Time
}

// New builds a router machine attached to both rings.
func New(sched *sim.Scheduler, name string, r0, r1 *ring.Ring, seed int64) *Router {
	m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), seed)
	k := kernel.New(m)
	rt := &Router{
		k:          k,
		SwitchCost: DefaultSwitchCost,
	}
	rt.routes[0] = make(map[ring.Addr]int)
	rt.routes[1] = make(map[ring.Addr]int)
	attach := func(idx int, rg *ring.Ring) {
		st := rg.Attach(name + fmt.Sprintf("-p%d", idx))
		cfg := tradapter.DefaultConfig()
		cfg.DMABufferKind = rtpc.SystemMemory // routers copy; keep DMA fast
		drv := tradapter.New(k, st, cfg, tradapter.DefaultTiming())
		rt.ports[idx] = Port{Ring: rg, Driver: drv}
		for _, class := range []tradapter.Class{tradapter.ClassCTMSP, tradapter.ClassIP, tradapter.ClassARP} {
			class := class
			idx := idx
			drv.SetHandler(class, func(rcv *tradapter.Received) []rtpc.Seg {
				return rt.ingress(idx, class, rcv)
			})
		}
	}
	attach(0, r0)
	attach(1, r1)
	return rt
}

// Kernel exposes the router's machine (for CPU accounting in tests).
func (rt *Router) Kernel() *kernel.Kernel { return rt.k }

// Port returns one of the attachments.
func (rt *Router) Port(i int) Port { return rt.ports[i] }

// AddRoute declares that frames arriving on ingressPort for dst should
// egress via the other port's ring, where dst is an address in THAT
// ring's space.
func (rt *Router) AddRoute(ingressPort int, dst ring.Addr, egressPort int) {
	sim.Checkf(ingressPort == 0 || ingressPort == 1, "router has two ports")
	sim.Checkf(egressPort == 0 || egressPort == 1, "router has two ports")
	rt.routes[ingressPort][dst] = egressPort
}

// Stats returns a snapshot of forwarding accounting.
func (rt *Router) Stats() Stats { return rt.stats }

// ingress runs at the receive interrupt of either adapter.
func (rt *Router) ingress(port int, class tradapter.Class, rcv *tradapter.Received) []rtpc.Seg {
	out, ok := rcv.Frame.Payload.(*tradapter.Outgoing)
	if !ok {
		rt.stats.Dropped++
		rcv.Release()
		return nil
	}
	// The routed destination rides in the Outgoing the source built; in
	// a two-ring world the router's own station was the MAC destination
	// and the true target is the inner one. Model: the source sets
	// Outgoing.RoutedDst when sending via a router.
	dst := out.RoutedDst
	egress, known := rt.routes[port][dst]
	if !known || egress == port {
		rt.stats.Dropped++
		rcv.Release()
		return nil
	}

	m := rt.k.Machine
	size := rcv.Size
	segs := []rtpc.Seg{rtpc.Do("switch", rt.SwitchCost)}
	// Copy from the ingress fixed DMA buffer to the egress driver's
	// mbufs (one CPU copy — routers on this hardware cannot avoid it).
	segs = append(segs, m.CopySegs("forward-copy", size, rcv.Buffer.Kind, rtpc.SystemMemory)...)
	segs = append(segs, rtpc.Mark("release", rcv.Release))
	segs = append(segs, rtpc.Mark("enqueue-egress", func() {
		rt.stats.Forwarded[port]++
		rt.stats.Bytes += uint64(size)
		rt.stats.ForwardCost += rt.SwitchCost
		ch := rt.k.Pool.AllocNoWait(size)
		if ch == nil {
			rt.stats.Dropped++
			return
		}
		ch.Tag = out.Chain.Tag // the protocol payload rides along
		fwd := &tradapter.Outgoing{
			Chain:     ch,
			Size:      size,
			Class:     class,
			Dst:       dst,
			RoutedDst: dst,
			Capture:   out.Capture,
		}
		pool := rt.k.Pool
		fwd.Done = func(ring.DeliveryStatus) { pool.Free(ch) }
		rt.ports[egress].Driver.Output(fwd)
		if depth := rt.ports[egress].Driver.Stats().MaxTxQueue; depth > rt.stats.QueueMax {
			rt.stats.QueueMax = depth
		}
	}))
	return segs
}
