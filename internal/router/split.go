package router

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// Half is one port of a split router: the same RT/PC forwarding engine as
// Router, but owning a single ring attachment so the two ends of a bridge
// can live on different sim.Schedulers. A sharded topology (internal/topo)
// gives each ring its own shard; the bridge between two rings is then a
// pair of Halves whose only coupling is the Forward callback — frames
// leave one shard as plain values and re-enter the other via Inject after
// the link's store-and-forward latency, which is what makes the
// conservative lookahead window real rather than assumed.
//
// A Half's ingress does the same work Router.ingress does: the switch
// decision, one CPU copy out of the fixed DMA buffer, then hand-off. The
// egress side (Inject) allocates an mbuf chain on the destination shard's
// kernel and queues the frame on its adapter, re-addressed to either the
// final station or the next bridge along the path.
type Half struct {
	k       *kernel.Kernel
	rg      *ring.Ring
	drv     *tradapter.Driver
	ringIdx int
	// nextHop[r] is the station address on THIS ring of the bridge half
	// that continues toward internetwork ring r; 0 means no route.
	nextHop []ring.Addr
	stats   HalfStats

	// SwitchCost is the per-frame CPU cost of the forwarding decision.
	SwitchCost sim.Time
	// Forward receives each frame this half decided to forward, after the
	// switch and copy segments complete. The shard engine wires it to the
	// cross-shard link; it must not touch this shard's state afterwards.
	Forward func(Forwarded)
}

// Forwarded is a frame in flight between two halves of a split bridge:
// plain values only, so it can cross a shard boundary without sharing
// memory with the shard that produced it.
type Forwarded struct {
	// DstRing is the 0-based internetwork index of the final ring.
	DstRing int
	// Dst is the final station address in DstRing's address space.
	Dst     ring.Addr
	Size    int
	Class   tradapter.Class
	Tag     any
	Capture []byte
}

// HalfStats aggregates one half's forwarding accounting.
type HalfStats struct {
	Forwarded uint64 // frames this half accepted from its ring and passed on
	Bytes     uint64
	Injected  uint64 // frames this half re-transmitted onto its ring
	Dropped   uint64 // unroutable ingress or mbuf exhaustion on egress
	QueueMax  int
}

// NewHalf builds one port of a split bridge on its own machine attached
// to rg, which is internetwork ring ringIdx of rings total.
func NewHalf(sched *sim.Scheduler, name string, rg *ring.Ring, ringIdx, rings int, seed int64) *Half {
	sim.Checkf(ringIdx >= 0 && ringIdx < rings, "half %s: ring index %d out of %d rings", name, ringIdx, rings)
	m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), seed)
	k := kernel.New(m)
	h := &Half{
		k:          k,
		rg:         rg,
		ringIdx:    ringIdx,
		nextHop:    make([]ring.Addr, rings),
		SwitchCost: DefaultSwitchCost,
	}
	st := rg.Attach(name)
	cfg := tradapter.DefaultConfig()
	cfg.DMABufferKind = rtpc.SystemMemory // routers copy; keep DMA fast
	h.drv = tradapter.New(k, st, cfg, tradapter.DefaultTiming())
	for _, class := range []tradapter.Class{tradapter.ClassCTMSP, tradapter.ClassIP, tradapter.ClassARP} {
		class := class
		h.drv.SetHandler(class, func(rcv *tradapter.Received) []rtpc.Seg {
			return h.ingress(class, rcv)
		})
	}
	return h
}

// Kernel exposes the half's machine (for CPU accounting).
func (h *Half) Kernel() *kernel.Kernel { return h.k }

// Station exposes the half's ring attachment; sources address frames
// needing forwarding to this station.
func (h *Half) Station() *ring.Station { return h.drv.Station() }

// Stats returns a snapshot of forwarding accounting.
func (h *Half) Stats() HalfStats { return h.stats }

// SetRoute declares that traffic for internetwork ring dstRing continues
// via the bridge station at `via` on this half's own ring. Injecting a
// frame for a ring with no route is a configuration error.
func (h *Half) SetRoute(dstRing int, via ring.Addr) {
	sim.Checkf(dstRing >= 0 && dstRing < len(h.nextHop), "route to ring %d out of range", dstRing)
	sim.Checkf(dstRing != h.ringIdx, "route to the half's own ring is meaningless")
	h.nextHop[dstRing] = via
}

// ingress runs at the receive interrupt: frames MAC-addressed to this
// half are in transit to another ring. The switch decision and the one
// unavoidable CPU copy happen here; the hand-off to the peer shard is the
// final mark, carrying values only.
func (h *Half) ingress(class tradapter.Class, rcv *tradapter.Received) []rtpc.Seg {
	out, ok := rcv.Frame.Payload.(*tradapter.Outgoing)
	if !ok || out.RoutedRing == 0 || h.Forward == nil {
		h.stats.Dropped++
		rcv.Release()
		return nil
	}
	dstRing := out.RoutedRing - 1
	if dstRing == h.ringIdx {
		// Misrouted: the frame claims it already reached its final ring
		// yet was MAC-addressed to the bridge.
		h.stats.Dropped++
		rcv.Release()
		return nil
	}
	fwd := Forwarded{
		DstRing: dstRing,
		Dst:     out.RoutedDst,
		Size:    rcv.Size,
		Class:   class,
		Tag:     out.Chain.Tag,
		Capture: out.Capture,
	}
	m := h.k.Machine
	segs := []rtpc.Seg{rtpc.Do("switch", h.SwitchCost)}
	segs = append(segs, m.CopySegs("forward-copy", fwd.Size, rcv.Buffer.Kind, rtpc.SystemMemory)...)
	segs = append(segs, rtpc.Mark("release", rcv.Release))
	segs = append(segs, rtpc.Mark("hand-off", func() {
		h.stats.Forwarded++
		h.stats.Bytes += uint64(fwd.Size)
		h.Forward(fwd)
	}))
	return segs
}

// Inject re-transmits a forwarded frame onto this half's ring: the final
// delivery hop when DstRing is this ring, or the next bridge otherwise.
// The shard engine calls it at the frame's arrival time (send time plus
// the link's store-and-forward latency), from this half's own shard.
func (h *Half) Inject(f Forwarded) {
	ch := h.k.Pool.AllocNoWait(f.Size)
	if ch == nil {
		h.stats.Dropped++
		return
	}
	ch.Tag = f.Tag
	out := &tradapter.Outgoing{
		Chain:   ch,
		Size:    f.Size,
		Class:   f.Class,
		Capture: f.Capture,
	}
	if f.DstRing == h.ringIdx {
		out.Dst = f.Dst
	} else {
		via := h.nextHop[f.DstRing]
		if via == 0 {
			sim.Checkf(false, "half %s: no route toward ring %d", fmt.Sprintf("r%d", h.ringIdx), f.DstRing)
		}
		out.Dst = via
		out.RoutedDst = f.Dst
		out.RoutedRing = f.DstRing + 1
	}
	pool := h.k.Pool
	out.Done = func(ring.DeliveryStatus) { pool.Free(ch) }
	h.stats.Injected++
	h.drv.Output(out)
	if depth := h.drv.Stats().MaxTxQueue; depth > h.stats.QueueMax {
		h.stats.QueueMax = depth
	}
}
