package router

import (
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// Half is one port of a split router: the same RT/PC forwarding engine as
// Router, but owning a single ring attachment so the two ends of a bridge
// can live on different sim.Schedulers. A sharded topology (internal/topo)
// gives each ring its own shard; the bridge between two rings is then a
// pair of Halves whose only coupling is the Forward callback — frames
// leave one shard as plain values and re-enter the other via Inject after
// the link's store-and-forward latency, which is what makes the
// conservative lookahead window real rather than assumed.
//
// A Half's ingress does the same work Router.ingress does: the switch
// decision, one CPU copy out of the fixed DMA buffer, then hand-off. The
// egress side (Inject) allocates an mbuf chain on the destination shard's
// kernel and queues the frame on its adapter, re-addressed to either the
// final station or the next bridge along the path.
type Half struct {
	k       *kernel.Kernel
	rg      *ring.Ring
	drv     *tradapter.Driver
	ringIdx int
	// nextHop[r] is the station address on THIS ring of the bridge half
	// that continues toward internetwork ring r; 0 means no route.
	nextHop []ring.Addr
	stats   HalfStats
	envs    envPool
	// recycleEnv is the pool-return hook armed on every injected envelope,
	// built once so the per-frame SetRecycle call boxes no method value.
	recycleEnv func(*tradapter.Outgoing)

	// SwitchCost is the per-frame CPU cost of the forwarding decision.
	SwitchCost sim.Time
	// Forward receives each frame this half decided to forward, after the
	// switch and copy segments complete. The shard engine wires it to the
	// cross-shard link; it must not touch this shard's state afterwards.
	Forward func(Forwarded)
}

// envPool is the free list of injected-frame envelopes. Each envelope is
// an Outgoing with a permanently attached chain shell and a prebuilt Done
// that frees the chain's mbufs at transmit complete; the envelope itself
// returns here only after the driver's two-phase recycle (transmit done
// AND receive handler returned), so a reused envelope can never be read
// by a frame still in flight. Every transition happens on the owning
// ring's scheduler — the pool never crosses a shard.
//
//ctmsvet:shardowned
type envPool struct {
	free []*tradapter.Outgoing
}

// Forwarded is a frame in flight between two halves of a split bridge:
// plain values only, so it can cross a shard boundary without sharing
// memory with the shard that produced it.
type Forwarded struct {
	// DstRing is the 0-based internetwork index of the final ring.
	DstRing int
	// Dst is the final station address in DstRing's address space.
	Dst     ring.Addr
	Size    int
	Class   tradapter.Class
	Tag     any
	Capture []byte
}

// HalfStats aggregates one half's forwarding accounting.
type HalfStats struct {
	Forwarded uint64 // frames this half accepted from its ring and passed on
	Bytes     uint64
	Injected  uint64 // frames this half re-transmitted onto its ring
	Dropped   uint64 // unroutable ingress or mbuf exhaustion on egress
	QueueMax  int
}

// NewHalf builds one port of a split bridge on its own machine attached
// to rg, which is internetwork ring ringIdx of rings total.
func NewHalf(sched *sim.Scheduler, name string, rg *ring.Ring, ringIdx, rings int, seed int64) *Half {
	sim.Checkf(ringIdx >= 0 && ringIdx < rings, "half %s: ring index %d out of %d rings", name, ringIdx, rings)
	m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), seed)
	k := kernel.New(m)
	h := &Half{
		k:          k,
		rg:         rg,
		ringIdx:    ringIdx,
		nextHop:    make([]ring.Addr, rings),
		SwitchCost: DefaultSwitchCost,
	}
	h.recycleEnv = h.putEnv
	st := rg.Attach(name)
	cfg := tradapter.DefaultConfig()
	cfg.DMABufferKind = rtpc.SystemMemory // routers copy; keep DMA fast
	h.drv = tradapter.New(k, st, cfg, tradapter.DefaultTiming())
	for _, class := range []tradapter.Class{tradapter.ClassCTMSP, tradapter.ClassIP, tradapter.ClassARP} {
		class := class
		h.drv.SetHandler(class, func(rcv *tradapter.Received) []rtpc.Seg {
			return h.ingress(class, rcv)
		})
	}
	return h
}

// Kernel exposes the half's machine (for CPU accounting).
func (h *Half) Kernel() *kernel.Kernel { return h.k }

// Station exposes the half's ring attachment; sources address frames
// needing forwarding to this station.
func (h *Half) Station() *ring.Station { return h.drv.Station() }

// Stats returns a snapshot of forwarding accounting.
func (h *Half) Stats() HalfStats { return h.stats }

// SetRoute declares that traffic for internetwork ring dstRing continues
// via the bridge station at `via` on this half's own ring. Injecting a
// frame for a ring with no route is a configuration error.
func (h *Half) SetRoute(dstRing int, via ring.Addr) {
	sim.Checkf(dstRing >= 0 && dstRing < len(h.nextHop), "route to ring %d out of range", dstRing)
	sim.Checkf(dstRing != h.ringIdx, "route to the half's own ring is meaningless")
	h.nextHop[dstRing] = via
}

// ingress runs at the receive interrupt: frames MAC-addressed to this
// half are in transit to another ring. The switch decision and the one
// unavoidable CPU copy happen here; the hand-off to the peer shard is the
// final mark, carrying values only.
func (h *Half) ingress(class tradapter.Class, rcv *tradapter.Received) []rtpc.Seg {
	out, ok := rcv.Frame.Payload.(*tradapter.Outgoing)
	if !ok || out.RoutedRing == 0 || h.Forward == nil {
		h.stats.Dropped++
		rcv.Release()
		return nil
	}
	dstRing := out.RoutedRing - 1
	if dstRing == h.ringIdx {
		// Misrouted: the frame claims it already reached its final ring
		// yet was MAC-addressed to the bridge.
		h.stats.Dropped++
		rcv.Release()
		return nil
	}
	fwd := Forwarded{
		DstRing: dstRing,
		Dst:     out.RoutedDst,
		Size:    rcv.Size,
		Class:   class,
		Tag:     out.Chain.Tag,
		Capture: out.Capture,
	}
	m := h.k.Machine
	segs := []rtpc.Seg{rtpc.Do("switch", h.SwitchCost)}
	segs = append(segs, m.CopySegs("forward-copy", fwd.Size, rcv.Buffer.Kind, rtpc.SystemMemory)...)
	segs = append(segs, rtpc.Mark("release", rcv.Release))
	segs = append(segs, rtpc.Mark("hand-off", func() {
		h.stats.Forwarded++
		h.stats.Bytes += uint64(fwd.Size)
		h.Forward(fwd)
	}))
	return segs
}

// getEnv pops a free envelope, building one — permanent chain shell,
// prebuilt chain-freeing Done — on the cold path only.
//
//ctmsvet:hotpath
func (h *Half) getEnv() *tradapter.Outgoing {
	if n := len(h.envs.free); n > 0 {
		out := h.envs.free[n-1]
		h.envs.free[n-1] = nil
		h.envs.free = h.envs.free[:n-1]
		return out
	}
	out := &tradapter.Outgoing{Chain: &kernel.Chain{}} //ctmsvet:allow hotpath cold refill path, runs only until the envelope pool reaches steady state
	pool, ch := h.k.Pool, out.Chain
	out.Done = func(ring.DeliveryStatus) { pool.Free(ch) } //ctmsvet:allow hotpath the Done closure is built once per pooled envelope, not per frame
	return out
}

// putEnv clears a dead envelope and returns it to the pool. Runs via the
// driver's recycle callback, on this half's own shard.
//
//ctmsvet:hotpath
func (h *Half) putEnv(out *tradapter.Outgoing) {
	out.Chain.Tag = nil
	out.Dst, out.RoutedDst, out.RoutedRing = 0, 0, 0
	out.Capture = nil
	h.envs.free = append(h.envs.free, out) //ctmsvet:allow hotpath envelope pool grows to the in-flight high-water mark once, then reuses the array
}

// Inject re-transmits a forwarded frame onto this half's ring: the final
// delivery hop when DstRing is this ring, or the next bridge otherwise.
// The shard engine calls it at the frame's arrival time (send time plus
// the link's store-and-forward latency), from this half's own shard. The
// whole egress — envelope, chain shell, mbuf nodes, completion hooks —
// comes from shard-owned free lists, so steady-state forwarding allocates
// nothing.
//
//ctmsvet:hotpath
func (h *Half) Inject(f Forwarded) {
	out := h.getEnv()
	if !h.k.Pool.AllocInto(out.Chain, f.Size) {
		h.stats.Dropped++
		h.putEnv(out)
		return
	}
	out.Chain.Tag = f.Tag
	out.Size = f.Size
	out.Class = f.Class
	out.Capture = f.Capture
	if f.DstRing == h.ringIdx {
		out.Dst = f.Dst
	} else {
		via := h.nextHop[f.DstRing]
		if via == 0 {
			sim.Checkf(false, "half r%d: no route toward ring %d", h.ringIdx, f.DstRing)
		}
		out.Dst = via
		out.RoutedDst = f.Dst
		out.RoutedRing = f.DstRing + 1
	}
	out.SetRecycle(h.recycleEnv)
	h.stats.Injected++
	h.drv.Output(out)
	if depth := h.drv.Stats().MaxTxQueue; depth > h.stats.QueueMax {
		h.stats.QueueMax = depth
	}
}
