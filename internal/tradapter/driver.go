// Package tradapter models the IBM Token Ring adapter and its UNIX device
// driver, with every §3/§4 modification as a configuration toggle:
//
//   - fixed DMA buffers in IO Channel Memory vs system memory (§4),
//   - a CTMSP packet-priority class inside the driver, above ARP and IP (§3),
//   - CTMSP frames sent at an elevated Token Ring access priority (§3),
//   - the Token Ring header precomputed once per connection vs recomputed
//     for every packet as IP requires (§3),
//   - the split point where received packets are classified so CTMSP
//     packets can be handled with "the shortest possible test" (§3, §5.2.3),
//   - the adapter's inability to interrupt on Ring Purge (§4), with the
//     hypothetical purge-interrupt mode available as an ablation,
//   - optional promiscuous MAC-frame reception, whose interrupt overhead
//     §4 quantifies and rejects.
package tradapter

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

// Class is the protocol class of a packet at the driver's split point.
//
//ctmsvet:enum
type Class uint8

const (
	// ClassIP is ordinary IP traffic.
	ClassIP Class = iota
	// ClassARP is address-resolution traffic.
	ClassARP
	// ClassCTMSP is continuous-time-media traffic, which the modified
	// driver queues ahead of everything else.
	ClassCTMSP
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassIP:
		return "IP"
	case ClassARP:
		return "ARP"
	case ClassCTMSP:
		return "CTMSP"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// RingOverhead is the Token Ring framing (SD, AC, FC, addresses, RI, FCS,
// ED, FS) added to every frame on the wire.
const RingOverhead = 21

// Config selects which of the paper's modifications are active.
type Config struct {
	// DMABufferKind places the fixed DMA buffers (§4's third change).
	DMABufferKind rtpc.MemoryKind
	// DriverPriority serves ClassCTMSP before ARP/IP in the output queue.
	DriverPriority bool
	// CTMSPRingPriority is the Token Ring access priority for CTMSP
	// frames (0 = same as everything else).
	CTMSPRingPriority int
	// PrecomputeHeader caches the ring header per connection; when false
	// every packet pays HeaderComputeCost, as IP's routing model forces.
	PrecomputeHeader bool
	// HeaderComputeCost is the CPU cost to build a Token Ring header.
	HeaderComputeCost sim.Time
	// TxBuffers and RxBuffers are the number of fixed DMA buffers.
	TxBuffers, RxBuffers int
	// PurgeInterrupt enables the hypothetical adapter that interrupts on
	// Ring Purge, letting the driver retransmit the last packet (§5).
	PurgeInterrupt bool
	// UnprotectedQueueBug re-introduces the critical-section bug the
	// paper found with the TAP monitor (§5): the output queue is
	// manipulated without protection against the transmit-complete
	// interrupt, so under the right interleaving two queued packets
	// swap. "Once the critical sections of code were more carefully
	// protected, the problem of out of order packets completely
	// disappeared."
	UnprotectedQueueBug bool
	// PromiscuousMAC receives every MAC frame, costing an interrupt each.
	PromiscuousMAC bool
}

// DefaultConfig returns the fully modified driver of the prototype.
func DefaultConfig() Config {
	return Config{
		DMABufferKind:     rtpc.IOChannelMemory,
		DriverPriority:    true,
		CTMSPRingPriority: 4,
		PrecomputeHeader:  true,
		HeaderComputeCost: 120 * sim.Microsecond,
		TxBuffers:         2,
		RxBuffers:         4,
	}
}

// StockConfig returns the unmodified driver: buffers in system memory, one
// FIFO output queue, no ring priority, per-packet header computation.
func StockConfig() Config {
	c := DefaultConfig()
	c.DMABufferKind = rtpc.SystemMemory
	c.DriverPriority = false
	c.CTMSPRingPriority = 0
	c.PrecomputeHeader = false
	return c
}

// Timing holds the adapter hardware constants, calibrated in DESIGN.md §5
// so a 2000-byte frame's minimum transmitter-to-receiver latency matches
// Figure 5-3's 10 740 µs.
type Timing struct {
	// TxCardLatency is adapter firmware processing before transmission.
	TxCardLatency sim.Time
	// RxCardLatency is adapter firmware processing on reception.
	RxCardLatency sim.Time
	// CardJitterMax is the per-frame firmware-latency variation added to
	// each of the card latencies (uniform in [0, max]).
	CardJitterMax sim.Time
	// IntrDispatchCost is the fixed cost at the top of the interrupt
	// handler (register save, status read).
	IntrDispatchCost sim.Time
	// ClassifyCost is the "shortest possible test" that recognizes a
	// CTMSP packet at the split point.
	ClassifyCost sim.Time
	// CompletionCost is the transmit-complete interrupt's work.
	CompletionCost sim.Time
	// MACFrameCost is the interrupt + header parse per MAC frame in
	// promiscuous mode (§4 calls this overhead unacceptable).
	MACFrameCost sim.Time
}

// DefaultTiming returns the calibrated constants.
func DefaultTiming() Timing {
	return Timing{
		TxCardLatency:    540 * sim.Microsecond,
		RxCardLatency:    3075 * sim.Microsecond,
		CardJitterMax:    120 * sim.Microsecond,
		IntrDispatchCost: 60 * sim.Microsecond,
		ClassifyCost:     25 * sim.Microsecond,
		CompletionCost:   80 * sim.Microsecond,
		MACFrameCost:     110 * sim.Microsecond,
	}
}

// Outgoing is one packet handed to the driver for transmission.
type Outgoing struct {
	Chain *kernel.Chain
	Size  int // payload bytes (ring overhead added on the wire)
	Class Class
	Dst   ring.Addr
	// RoutedDst is the final destination when the frame crosses a
	// router: Dst addresses the router's ingress port (or the target on
	// the final ring), RoutedDst names the end station. Zero means local
	// delivery.
	RoutedDst ring.Addr
	// RoutedRing is the 1-based internetwork ring index the RoutedDst
	// address lives on, for topologies with more than two rings (each
	// ring has its own address space, so RoutedDst alone cannot name a
	// station across a multi-hop path). Zero means the two-ring legacy
	// interpretation: RoutedDst is in the egress ring's space.
	RoutedRing int
	// CopyBytes is how many bytes the CPU copies into the fixed DMA
	// buffer (§5.3's "header only" vs "header and data" toggle). Zero
	// means copy Size bytes.
	CopyBytes int
	// NoCopy is §2's pointer-transfer extension: the CPU passes the mbuf
	// chain's DMA-able pages to the adapter instead of copying. The
	// adapter then DMAs from system memory, which steals CPU cycles.
	NoCopy bool
	// Capture is what a ring monitor sees of the packet (≤96 bytes).
	Capture []byte
	// PreTransmit fires immediately after the packet is copied into the
	// fixed DMA buffer and immediately before the transmit command —
	// measurement point 3.
	PreTransmit func()
	// Done fires at the transmit-complete interrupt with the hardware
	// delivery status.
	Done func(ring.DeliveryStatus)

	queuedAt sim.Time
	// Pooled-envelope recycling (SetRecycle): refs counts the two points
	// after which the driver guarantees no further reads of this envelope.
	recycle func(*Outgoing)
	refs    int8
}

// SetRecycle arms two-phase envelope recycling for pooled packets: fn runs
// once the envelope is provably dead — after BOTH the transmit-complete
// interrupt has run Done AND the receiving driver's class handler has
// returned. Receivers read the envelope (class, routed fields, chain tag)
// only synchronously inside their handler, and transmit-complete can fire
// before or after that read, so neither side alone may reuse it. Both
// release points run on the same ring's scheduler — no cross-shard access.
// A frame dropped before classification (rx-buffer exhaustion) never
// reaches its second release; the envelope is then simply garbage
// collected and its pool refills on the cold path.
func (p *Outgoing) SetRecycle(fn func(*Outgoing)) {
	p.recycle = fn
	p.refs = 2
}

// release consumes one of the two envelope references; a no-op for
// envelopes that never armed recycling.
//
//ctmsvet:hotpath
func (p *Outgoing) release() {
	if p.recycle == nil {
		return
	}
	p.refs--
	if p.refs == 0 {
		fn := p.recycle
		p.recycle = nil
		fn(p)
	}
}

// Received is a packet arriving at the driver's split point.
type Received struct {
	Frame *ring.Frame
	Class Class
	Size  int
	// At is the classification instant (measurement point 4 for CTMSP).
	At sim.Time
	// Buffer is the fixed rx DMA buffer the packet sits in. The handler
	// must Release exactly once, after whatever copying its path does.
	Buffer  *rtpc.Buffer
	release func()
}

// Release frees the rx DMA buffer for the next frame.
func (r *Received) Release() {
	sim.Checkf(r.release != nil, "rx buffer released twice")
	f := r.release
	r.release = nil
	f()
}

// Handler consumes a classified packet. It runs inside the receive
// interrupt and returns additional CPU segments (the configured copy path)
// to execute at interrupt level.
type Handler func(*Received) []rtpc.Seg

// Stats aggregates driver accounting.
type Stats struct {
	TxQueued     [numClasses]uint64
	TxDone       [numClasses]uint64
	TxDropped    [numClasses]uint64
	RxFrames     [numClasses]uint64
	RxNoBuffer   uint64
	RxMACFrames  uint64
	Retransmits  uint64
	HeaderComps  uint64
	QueueRaces   uint64
	MaxTxQueue   int
	MaxQueueWait sim.Time
}

// Driver is the Token Ring device driver plus adapter.
type Driver struct {
	k      *kernel.Kernel
	st     *ring.Station
	cfg    Config
	timing Timing
	// The adapter has independent transmit and receive DMA channels;
	// only the host bus (and the CPU, for system-memory targets) is
	// shared between them.
	txDMA, rxDMA *rtpc.DMA

	txBufs   []*rtpc.Buffer
	txQueues [2][]*Outgoing // 1 = CTMSP class, 0 = everything else
	// The transmit path is a two-stage pipeline: the CPU copies the next
	// packet into a free fixed DMA buffer while the previous packet is
	// still being DMAd/transmitted. Copies run one at a time (they are
	// CPU work and must finish in order); the wire stage is strictly
	// serialized in copy order, which is what preserves packet sequence.
	copyActive bool
	wireQ      []*wireItem
	wireBusy   bool
	lastSent   *Outgoing // survives in the fixed buffer for purge retransmit

	rxBufs    []*rtpc.Buffer
	rxPending int // frames between wire arrival and rx buffer claim

	handlers [numClasses]Handler
	stats    Stats
}

// New builds a driver for machine k attached to station st.
func New(k *kernel.Kernel, st *ring.Station, cfg Config, timing Timing) *Driver {
	if cfg.TxBuffers <= 0 {
		cfg.TxBuffers = 1
	}
	if cfg.RxBuffers <= 0 {
		cfg.RxBuffers = 2
	}
	d := &Driver{k: k, st: st, cfg: cfg, timing: timing}
	d.txDMA = k.Machine.NewDMA("trdma-tx")
	d.rxDMA = k.Machine.NewDMA("trdma-rx")
	for i := 0; i < cfg.TxBuffers; i++ {
		d.txBufs = append(d.txBufs, rtpc.NewBuffer(fmt.Sprintf("txdma%d", i), cfg.DMABufferKind, 4096))
	}
	for i := 0; i < cfg.RxBuffers; i++ {
		d.rxBufs = append(d.rxBufs, rtpc.NewBuffer(fmt.Sprintf("rxdma%d", i), cfg.DMABufferKind, 4096))
	}
	st.OnReceive(d.frameArrived)
	st.SetCopyGate(d.haveRxBuffer)
	st.SetPromiscuousMAC(cfg.PromiscuousMAC)
	return d
}

// DriverName implements kernel.Driver.
func (d *Driver) DriverName() string { return "tr0" }

// Ioctl implements the connection-setup commands the paper added.
func (d *Driver) Ioctl(cmd string, arg any) (any, error) {
	switch cmd {
	case "compute-header":
		// Build a Token Ring header for a destination once, for the life
		// of the connection (§3's split-out header function).
		dst, ok := arg.(ring.Addr)
		if !ok {
			return nil, fmt.Errorf("tr0: compute-header wants a ring.Addr")
		}
		d.stats.HeaderComps++
		return BuildRingHeader(d.st.Addr(), dst), nil
	case "get-output-handle":
		// The function handle a source driver uses for direct
		// driver-to-driver transmission (§2).
		return d.Output, nil
	case "config":
		return d.cfg, nil
	default:
		return nil, fmt.Errorf("tr0: unknown ioctl %q", cmd)
	}
}

// Station exposes the underlying ring station.
func (d *Driver) Station() *ring.Station { return d.st }

// Config reports the active configuration.
func (d *Driver) Config() Config { return d.cfg }

// Stats returns a snapshot of driver accounting.
func (d *Driver) Stats() Stats { return d.stats }

// SetHandler installs the receive handler for a class.
func (d *Driver) SetHandler(c Class, h Handler) { d.handlers[c] = h }

// BuildRingHeader constructs the 14-byte MAC header plus LLC bytes that
// precede every packet. Only its length matters to the model, but the
// bytes are real so monitor captures decode.
func BuildRingHeader(src, dst ring.Addr) []byte {
	h := make([]byte, 22)
	h[0] = ring.EncodeAC(0, false)
	h[1] = ring.EncodeFC(ring.LLC)
	h[2], h[3] = byte(dst>>8), byte(dst)
	h[8], h[9] = byte(src>>8), byte(src)
	h[14] = 0xAA // SNAP
	h[15] = 0xAA
	return h
}

// ---- transmit path ----

// Output queues a packet for transmission. Safe to call from any level;
// the driver's own work runs at network interrupt level.
//
//ctmsvet:hotpath
func (d *Driver) Output(p *Outgoing) {
	sim.Checkf(p.Size > 0, "zero-size packet")
	q := 0
	if d.cfg.DriverPriority && p.Class == ClassCTMSP {
		q = 1
	}
	p.queuedAt = d.k.Sched().Now()
	d.txQueues[q] = append(d.txQueues[q], p) //ctmsvet:allow hotpath tx queue grows to its backlog high-water mark once, then reuses the array
	d.stats.TxQueued[p.Class]++
	if depth := len(d.txQueues[0]) + len(d.txQueues[1]); depth > d.stats.MaxTxQueue {
		d.stats.MaxTxQueue = depth
	}
	d.pumpTx()
}

//ctmsvet:hotpath
func (d *Driver) freeTxBuf() *rtpc.Buffer {
	for _, b := range d.txBufs {
		if !b.InUse() {
			return b
		}
	}
	return nil
}

//ctmsvet:hotpath
func (d *Driver) nextTx() *Outgoing {
	for q := 1; q >= 0; q-- {
		if len(d.txQueues[q]) == 0 {
			continue
		}
		pick := 0
		// The historical critical-section bug: a transmit-complete
		// interrupt racing the enqueue leaves the list head stale, so a
		// backlogged queue occasionally serves its second entry first.
		if d.cfg.UnprotectedQueueBug && len(d.txQueues[q]) >= 2 && d.k.Machine.RNG().Bool(0.25) {
			d.stats.QueueRaces++
			pick = 1
		}
		p := d.txQueues[q][pick]
		d.txQueues[q] = append(d.txQueues[q][:pick], d.txQueues[q][pick+1:]...)
		return p
	}
	return nil
}

type wireItem struct {
	p   *Outgoing
	buf *rtpc.Buffer
}

// pumpTx starts the copy stage for the next queued packet if a fixed DMA
// buffer is free and no copy is in progress. The wire stage below is
// constrained to send one packet completely before starting another —
// that constraint is what preserves packet sequence (§3).
func (d *Driver) pumpTx() {
	if d.copyActive {
		return
	}
	buf := d.freeTxBuf()
	if buf == nil {
		return
	}
	p := d.nextTx()
	if p == nil {
		return
	}
	d.copyActive = true
	buf.Fill(p.Size, p) // reserve the buffer for this packet's copy
	if w := d.k.Sched().Now() - p.queuedAt; w > d.stats.MaxQueueWait {
		d.stats.MaxQueueWait = w
	}

	copyBytes := p.CopyBytes
	if copyBytes <= 0 {
		copyBytes = p.Size
	}
	m := d.k.Machine
	// Driver entry: queue manipulation, buffer setup, adapter register
	// programming.
	segs := []rtpc.Seg{rtpc.Do("driver-entry", 120*sim.Microsecond)}
	if !d.cfg.PrecomputeHeader {
		d.stats.HeaderComps++
		segs = append(segs, rtpc.Do("compute-ring-header", d.cfg.HeaderComputeCost))
	}
	if p.NoCopy {
		// Pointer transfer: only the descriptor list is built by the CPU.
		segs = append(segs, rtpc.Do("build-descriptors", 60*sim.Microsecond))
	} else {
		// The CPU copies the packet from mbufs (system memory) into the
		// fixed DMA buffer — 1 µs/byte when the buffer is in IO Channel
		// Memory. The copy loop is interruptible, so it is chunked.
		segs = append(segs, m.CopySegs("copy-to-dma-buf", copyBytes, rtpc.SystemMemory, d.cfg.DMABufferKind)...)
	}
	segs = append(segs,
		rtpc.Do("driver-jitter", m.Jitter(40*sim.Microsecond)),
		rtpc.Mark("pre-transmit", func() {
			if p.PreTransmit != nil {
				p.PreTransmit()
			}
			d.copyActive = false
			d.wireQ = append(d.wireQ, &wireItem{p: p, buf: buf})
			d.pumpWire()
			d.pumpTx() // another buffer may be free for the next copy
		}),
	)
	d.k.CPU().Submit(kernel.LevelNet, "tr0.start-output", segs, nil)
}

// pumpWire starts the adapter on the next fully-copied packet, strictly
// in copy order.
//
//ctmsvet:hotpath
func (d *Driver) pumpWire() {
	if d.wireBusy || len(d.wireQ) == 0 {
		return
	}
	item := d.wireQ[0]
	d.wireQ = d.wireQ[1:]
	d.wireBusy = true
	d.issueTransmit(item.p, item.buf)
}

// issueTransmit gives the adapter the transmit command: the card DMAs the
// frame out of the fixed buffer, processes it, and puts it on the ring.
func (d *Driver) issueTransmit(p *Outgoing, buf *rtpc.Buffer) {
	src := buf.Kind
	if p.NoCopy {
		src = rtpc.SystemMemory // the adapter DMAs straight from mbufs
	}
	d.txDMA.Transfer(p.Size, src, "tx", func() {
		card := d.timing.TxCardLatency + d.k.Machine.Jitter(d.timing.CardJitterMax)
		d.k.Sched().After(card, "tr0.tx-card", func() {
			prio := 0
			if p.Class == ClassCTMSP {
				prio = d.cfg.CTMSPRingPriority
			}
			f := ring.NewDataFrame(d.st.Addr(), p.Dst, prio, p.Size+RingOverhead, p.Capture, p)
			d.st.Transmit(f, func(s ring.DeliveryStatus) {
				d.txComplete(p, buf, s)
			})
		})
	})
}

// txComplete is the transmit-complete interrupt.
func (d *Driver) txComplete(p *Outgoing, buf *rtpc.Buffer, s ring.DeliveryStatus) {
	segs := []rtpc.Seg{
		rtpc.Do("intr-dispatch", d.timing.IntrDispatchCost),
		rtpc.Then("tx-complete", d.timing.CompletionCost, func() {
			if s.PurgeLost && d.cfg.PurgeInterrupt {
				// Hypothetical adapter: retransmit the packet still
				// sitting in the fixed DMA buffer.
				d.stats.Retransmits++
				d.issueTransmit(p, buf)
				return
			}
			// Real adapter: the driver never learns about a purge loss.
			d.lastSent = p
			buf.Clear()
			d.wireBusy = false
			d.stats.TxDone[p.Class]++
			if p.Done != nil {
				p.Done(s)
			}
			p.release() // transmit side is finished with the envelope
			d.pumpWire()
			d.pumpTx()
		}),
	}
	d.k.CPU().Submit(kernel.LevelNet, "tr0.tx-intr", segs, nil)
}

// ---- receive path ----

func (d *Driver) haveRxBuffer() bool {
	free := 0
	for _, b := range d.rxBufs {
		if !b.InUse() {
			free++
		}
	}
	if free > d.rxPending {
		return true
	}
	d.stats.RxNoBuffer++
	d.k.Sched().Trace().AddEvent(d.k.Sched().Now(), EvRxDrop, int64(d.rxPending), int64(free))
	return false
}

func (d *Driver) claimRxBuf() *rtpc.Buffer {
	for _, b := range d.rxBufs {
		if !b.InUse() {
			return b
		}
	}
	return nil
}

// frameArrived runs when a frame addressed to this station completes on
// the wire: card firmware latency, DMA into a fixed rx buffer, then the
// receive interrupt.
func (d *Driver) frameArrived(f *ring.Frame, _ sim.Time) {
	if f.Kind == ring.MAC {
		d.macFrame(f)
		return
	}
	d.rxPending++
	size := f.Size - RingOverhead
	card := d.timing.RxCardLatency + d.k.Machine.Jitter(d.timing.CardJitterMax)
	d.k.Sched().After(card, "tr0.rx-card", func() {
		buf := d.claimRxBuf()
		if buf == nil {
			// Race: buffers filled since the copy gate passed.
			d.rxPending--
			d.stats.RxNoBuffer++
			d.k.Sched().Trace().AddEvent(d.k.Sched().Now(), EvRxDrop, int64(d.rxPending), int64(size))
			return
		}
		buf.Fill(size, f)
		d.rxPending--
		d.rxDMA.Transfer(size, buf.Kind, "rx", func() {
			d.rxInterrupt(f, size, buf)
		})
	})
}

// rxInterrupt classifies the packet at the split point and runs the class
// handler's copy path at interrupt level.
func (d *Driver) rxInterrupt(f *ring.Frame, size int, buf *rtpc.Buffer) {
	segs := []rtpc.Seg{
		rtpc.Do("intr-dispatch", d.timing.IntrDispatchCost),
		{Name: "classify", Cost: d.timing.ClassifyCost, Fn: func() []rtpc.Seg {
			class := classOf(f)
			d.stats.RxFrames[class]++
			rcv := &Received{
				Frame:  f,
				Class:  class,
				Size:   size,
				At:     d.k.Sched().Now(),
				Buffer: buf,
			}
			rcv.release = func() { buf.Clear() }
			h := d.handlers[class]
			if h == nil {
				rcv.Release()
				d.envelopeSeen(f)
				return nil
			}
			segs := h(rcv)
			d.envelopeSeen(f)
			return segs
		}},
	}
	d.k.CPU().Submit(kernel.LevelNet, "tr0.rx-intr", segs, nil)
}

// macFrame handles a MAC frame in promiscuous mode: pure interrupt
// overhead, which is the point of experiment E7.
func (d *Driver) macFrame(f *ring.Frame) {
	d.stats.RxMACFrames++
	segs := []rtpc.Seg{
		rtpc.Do("intr-dispatch", d.timing.IntrDispatchCost),
		rtpc.Do("parse-mac", d.timing.MACFrameCost),
	}
	if d.cfg.PurgeInterrupt && f.MAC == ring.MACRingPurge {
		segs = append(segs, rtpc.Mark("purge-seen", func() {
			// Purge recovery is handled in txComplete via the status
			// bit; nothing further here.
			return
		}))
	}
	d.k.CPU().Submit(kernel.LevelNet, "tr0.mac-intr", segs, nil)
}

// envelopeSeen releases the receive-side envelope reference once the class
// handler has returned: handlers read the Outgoing synchronously (routed
// fields, chain tag) and keep only copied values in the segments they
// return, so after this point the receiver never touches the envelope.
//
//ctmsvet:hotpath
func (d *Driver) envelopeSeen(f *ring.Frame) {
	if p, ok := f.Payload.(*Outgoing); ok {
		p.release()
	}
}

// classOf maps a frame to its driver class by inspecting the payload tag.
func classOf(f *ring.Frame) Class {
	if p, ok := f.Payload.(*Outgoing); ok {
		return p.Class
	}
	return ClassIP
}
