package tradapter

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

// TestUnprotectedQueueBugReorders reproduces §5's driver bug: with a deep
// output backlog, the unprotected queue occasionally serves packets out
// of order; the fixed driver never does.
func TestUnprotectedQueueBugReorders(t *testing.T) {
	run := func(buggy bool) (reordered int, races uint64) {
		sched := sim.NewScheduler()
		r := ring.New(sched, ring.DefaultConfig())
		cfg := DefaultConfig()
		cfg.UnprotectedQueueBug = buggy
		tx := newHost(t, sched, r, "tx", cfg)
		rxCfg := DefaultConfig()
		rxCfg.DMABufferKind = rtpc.SystemMemory
		rx := newHost(t, sched, r, "rx", rxCfg)

		var got []int
		rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
			got = append(got, rcv.Frame.Payload.(*Outgoing).Chain.Tag.(int))
			rcv.Release()
			return nil
		})
		dst := rx.drv.Station().Addr()
		// A deep backlog, as a ring outage would leave behind.
		for i := 0; i < 60; i++ {
			p := mkPacket(tx.k, 1500, ClassCTMSP, dst)
			p.Chain.Tag = i
			tx.drv.Output(p)
		}
		sched.Run()
		if len(got) != 60 {
			t.Fatalf("delivered %d/60", len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				reordered++
			}
		}
		return reordered, tx.drv.Stats().QueueRaces
	}

	reordered, races := run(true)
	if reordered == 0 || races == 0 {
		t.Fatalf("buggy driver should reorder under backlog: %d reordered, %d races", reordered, races)
	}
	reordered, races = run(false)
	if reordered != 0 || races != 0 {
		t.Fatalf("protected driver must never reorder: %d reordered, %d races", reordered, races)
	}
}
