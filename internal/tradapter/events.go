package tradapter

import "repro/internal/sim"

// EvRxDrop is the structured trace kind for a frame lost to rx DMA buffer
// exhaustion — at the copy gate (A = frames between wire and buffer claim,
// B = free buffers) or in the card-latency race (A = frames still pending,
// B = the dropped frame's payload size). Kind block 48–63 belongs to
// tradapter.
const EvRxDrop sim.EventKind = 48

func init() { sim.RegisterEventKind(EvRxDrop, "tradapter.rx-drop") }
