package tradapter

import (
	"testing"

	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

// TestDoubleBufferingPipelinesCopyAndWire: with two fixed DMA buffers the
// copy of packet n+1 overlaps packet n's DMA/wire phase, so back-to-back
// throughput beats the single-buffered driver.
func TestDoubleBufferingPipelinesCopyAndWire(t *testing.T) {
	run := func(txBuffers int) sim.Time {
		sched := sim.NewScheduler()
		r := ring.New(sched, ring.DefaultConfig())
		cfg := DefaultConfig()
		cfg.TxBuffers = txBuffers
		tx := newHost(t, sched, r, "tx", cfg)
		rxCfg := DefaultConfig()
		rxCfg.DMABufferKind = rtpc.SystemMemory
		rx := newHost(t, sched, r, "rx", rxCfg)
		done := 0
		rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
			done++
			rcv.Release()
			return nil
		})
		for i := 0; i < 20; i++ {
			tx.drv.Output(mkPacket(tx.k, 2000, ClassCTMSP, rx.drv.Station().Addr()))
		}
		sched.Run()
		if done != 20 {
			t.Fatalf("txBuffers=%d: delivered %d/20", txBuffers, done)
		}
		return sched.Now()
	}
	single := run(1)
	double := run(2)
	if double >= single {
		t.Fatalf("double buffering should pipeline: %v vs %v", double, single)
	}
	// The saving per packet is roughly the 2.1 ms copy time.
	if single-double < 20*sim.Millisecond {
		t.Fatalf("pipelining saving too small: %v", single-double)
	}
}

// TestPipelineOrderPreserved: even with the copy stage running ahead, the
// wire stage must serialize in submission order.
func TestPipelineOrderPreserved(t *testing.T) {
	sched, _, tx, rx := pair(t, DefaultConfig())
	var got []int
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		got = append(got, rcv.Frame.Payload.(*Outgoing).Chain.Tag.(int))
		rcv.Release()
		return nil
	})
	dst := rx.drv.Station().Addr()
	// Mixed sizes so copy times differ — order must still hold.
	sizes := []int{2000, 100, 1500, 60, 2000, 300}
	for i, s := range sizes {
		p := mkPacket(tx.k, s, ClassCTMSP, dst)
		p.Chain.Tag = i
		tx.drv.Output(p)
	}
	sched.Run()
	if len(got) != len(sizes) {
		t.Fatalf("delivered %d/%d", len(got), len(sizes))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("wire order broken: %v", got)
		}
	}
}

// TestWireThroughputBound: the ring serializes frames, so 2000-byte
// packets cannot complete faster than their wire time no matter how many
// buffers the driver has.
func TestWireThroughputBound(t *testing.T) {
	sched, _, tx, rx := pair(t, DefaultConfig())
	var times []sim.Time
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		times = append(times, rcv.At)
		rcv.Release()
		return nil
	})
	dst := rx.drv.Station().Addr()
	for i := 0; i < 10; i++ {
		tx.drv.Output(mkPacket(tx.k, 2000, ClassCTMSP, dst))
	}
	sched.Run()
	wire := sim.WireTime(2021, 4_000_000)
	for i := 1; i < len(times); i++ {
		if d := times[i] - times[i-1]; d < wire {
			t.Fatalf("packets %d spaced %v, below the %v wire time", i, d, wire)
		}
	}
}
