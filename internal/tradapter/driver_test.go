package tradapter

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

type host struct {
	k   *kernel.Kernel
	drv *Driver
}

func newHost(t *testing.T, sched *sim.Scheduler, r *ring.Ring, name string, cfg Config) *host {
	t.Helper()
	m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 7)
	k := kernel.New(m)
	st := r.Attach(name)
	drv := New(k, st, cfg, DefaultTiming())
	k.Register(drv)
	return &host{k: k, drv: drv}
}

func pair(t *testing.T, cfg Config) (*sim.Scheduler, *ring.Ring, *host, *host) {
	t.Helper()
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	tx := newHost(t, sched, r, "tx", cfg)
	// Only the transmitter's buffers move to IO Channel Memory in the
	// paper; the receiver keeps system-memory DMA buffers.
	rxCfg := cfg
	rxCfg.DMABufferKind = rtpc.SystemMemory
	rx := newHost(t, sched, r, "rx", rxCfg)
	return sched, r, tx, rx
}

func mkPacket(k *kernel.Kernel, size int, class Class, dst ring.Addr) *Outgoing {
	ch := k.Pool.AllocNoWait(size)
	return &Outgoing{Chain: ch, Size: size, Class: class, Dst: dst}
}

func TestEndToEndPacket(t *testing.T) {
	sched, _, tx, rx := pair(t, DefaultConfig())
	var got *Received
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		got = rcv
		rcv.Release()
		return nil
	})
	p := mkPacket(tx.k, 2000, ClassCTMSP, rx.drv.Station().Addr())
	var status ring.DeliveryStatus
	var preAt sim.Time
	p.Done = func(s ring.DeliveryStatus) { status = s }
	p.PreTransmit = func() { preAt = sched.Now() }
	tx.drv.Output(p)
	sched.Run()

	if got == nil {
		t.Fatal("packet never classified at the receiver")
	}
	if got.Class != ClassCTMSP || got.Size != 2000 {
		t.Fatalf("received wrong packet: %+v", got)
	}
	if !status.Delivered {
		t.Fatalf("transmitter should learn delivery: %v", status)
	}
	// The paper's histogram 7 quantity: point 3 → point 4 for a
	// 2000-byte frame is ≈10.74–10.9 ms on an idle ring (Figure 5-3).
	lat := got.At - preAt
	if lat < 10500*sim.Microsecond || lat > 11300*sim.Microsecond {
		t.Fatalf("tx→rx latency %v, want ≈10.74–10.9 ms", lat)
	}
}

func TestDriverPriorityQueuesCTMSPFirst(t *testing.T) {
	sched, _, tx, rx := pair(t, DefaultConfig())
	var order []Class
	for _, c := range []Class{ClassCTMSP, ClassIP, ClassARP} {
		c := c
		rx.drv.SetHandler(c, func(rcv *Received) []rtpc.Seg {
			order = append(order, c)
			rcv.Release()
			return nil
		})
	}
	dst := rx.drv.Station().Addr()
	// Queue IP, IP, CTMSP while the first IP is being serviced: the
	// CTMSP packet must overtake the second IP packet.
	tx.drv.Output(mkPacket(tx.k, 1000, ClassIP, dst))
	tx.drv.Output(mkPacket(tx.k, 1000, ClassIP, dst))
	tx.drv.Output(mkPacket(tx.k, 1000, ClassCTMSP, dst))
	sched.Run()
	if len(order) != 3 {
		t.Fatalf("want 3 packets, got %v", order)
	}
	if order[1] != ClassCTMSP {
		t.Fatalf("CTMSP should jump the queue: %v", order)
	}
}

func TestNoDriverPriorityIsFIFO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DriverPriority = false
	sched, _, tx, rx := pair(t, cfg)
	var order []Class
	for _, c := range []Class{ClassCTMSP, ClassIP} {
		c := c
		rx.drv.SetHandler(c, func(rcv *Received) []rtpc.Seg {
			order = append(order, c)
			rcv.Release()
			return nil
		})
	}
	dst := rx.drv.Station().Addr()
	tx.drv.Output(mkPacket(tx.k, 1000, ClassIP, dst))
	tx.drv.Output(mkPacket(tx.k, 1000, ClassIP, dst))
	tx.drv.Output(mkPacket(tx.k, 1000, ClassCTMSP, dst))
	sched.Run()
	if order[2] != ClassCTMSP {
		t.Fatalf("without driver priority the queue is FIFO: %v", order)
	}
}

func TestHeaderPrecomputeSavesWork(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PrecomputeHeader = false
	sched, _, tx, rx := pair(t, cfg)
	dst := rx.drv.Station().Addr()
	for i := 0; i < 5; i++ {
		tx.drv.Output(mkPacket(tx.k, 500, ClassIP, dst))
	}
	sched.Run()
	if got := tx.drv.Stats().HeaderComps; got != 5 {
		t.Fatalf("per-packet header computation: want 5, got %d", got)
	}

	// With precompute, the only header computations are explicit ioctls.
	sched2, _, tx2, rx2 := pair(t, DefaultConfig())
	if _, err := tx2.k.Ioctl("tr0", "compute-header", rx2.drv.Station().Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx2.drv.Output(mkPacket(tx2.k, 500, ClassIP, rx2.drv.Station().Addr()))
	}
	sched2.Run()
	if got := tx2.drv.Stats().HeaderComps; got != 1 {
		t.Fatalf("precomputed header: want 1 computation, got %d", got)
	}
}

func TestPreTransmitProbeFires(t *testing.T) {
	sched, _, tx, rx := pair(t, DefaultConfig())
	p := mkPacket(tx.k, 2000, ClassCTMSP, rx.drv.Station().Addr())
	var at sim.Time
	p.PreTransmit = func() { at = sched.Now() }
	tx.drv.Output(p)
	sched.Run()
	// Point 3 should land after the 2000 µs copy into IO Channel Memory
	// plus driver code, well before the ≈10.7 ms delivery.
	if at < 2*sim.Millisecond || at > 4*sim.Millisecond {
		t.Fatalf("pre-transmit probe at %v, want ≈2.1–2.6 ms", at)
	}
}

func TestCopyHeaderOnlyIsFaster(t *testing.T) {
	run := func(copyBytes int) sim.Time {
		sched, _, tx, rx := pair(t, DefaultConfig())
		p := mkPacket(tx.k, 2000, ClassCTMSP, rx.drv.Station().Addr())
		p.CopyBytes = copyBytes
		var at sim.Time
		p.PreTransmit = func() { at = sched.Now() }
		tx.drv.Output(p)
		sched.Run()
		return at
	}
	full := run(0)     // 0 means full size
	hdronly := run(34) // ring header + CTMSP header
	if hdronly >= full {
		t.Fatalf("header-only copy should reach point 3 sooner: %v vs %v", hdronly, full)
	}
	if full-hdronly < 1500*sim.Microsecond {
		t.Fatalf("savings should be ≈1966µs of copying, got %v", full-hdronly)
	}
}

func TestSequencePreservedUnderLoad(t *testing.T) {
	sched, _, tx, rx := pair(t, DefaultConfig())
	var got []int
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		got = append(got, rcv.Frame.Payload.(*Outgoing).Chain.Tag.(int))
		rcv.Release()
		return nil
	})
	dst := rx.drv.Station().Addr()
	for i := 0; i < 30; i++ {
		p := mkPacket(tx.k, 800, ClassCTMSP, dst)
		p.Chain.Tag = i
		tx.drv.Output(p)
	}
	sched.Run()
	if len(got) != 30 {
		t.Fatalf("want 30 packets, got %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("sequence broken at %d: %v", i, got)
		}
	}
}

func TestPurgeLossIsSilentWithoutPurgeInterrupt(t *testing.T) {
	sched, r, tx, rx := pair(t, DefaultConfig())
	delivered := 0
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		delivered++
		rcv.Release()
		return nil
	})
	p := mkPacket(tx.k, 2000, ClassCTMSP, rx.drv.Station().Addr())
	doneCalled := false
	p.Done = func(s ring.DeliveryStatus) { doneCalled = true }
	tx.drv.Output(p)
	// Purge while the frame is on the wire: it enters ≈7.3 ms after
	// output (copy 2.2 + DMA 4.2 + card 0.9) and occupies it ≈4 ms.
	sched.After(8*sim.Millisecond, "purge", r.Purge)
	sched.Run()
	if delivered != 0 {
		t.Fatal("purged frame must be lost")
	}
	if !doneCalled {
		t.Fatal("driver must complete the packet (it cannot detect the purge)")
	}
	if tx.drv.Stats().Retransmits != 0 {
		t.Fatal("real adapter cannot retransmit on purge")
	}
}

func TestPurgeInterruptAblationRetransmits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PurgeInterrupt = true
	sched, r, tx, rx := pair(t, cfg)
	delivered := 0
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		delivered++
		rcv.Release()
		return nil
	})
	p := mkPacket(tx.k, 2000, ClassCTMSP, rx.drv.Station().Addr())
	tx.drv.Output(p)
	sched.After(8*sim.Millisecond, "purge", r.Purge)
	sched.Run()
	if delivered != 1 {
		t.Fatalf("hypothetical purge-interrupt adapter should recover the packet, delivered=%d", delivered)
	}
	if tx.drv.Stats().Retransmits != 1 {
		t.Fatalf("retransmit accounting: %+v", tx.drv.Stats())
	}
}

func TestMACFramesCostInterruptsInPromiscuousMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PromiscuousMAC = true
	sched, r, _, rx := pair(t, cfg)
	mon := r.Attach("monitor")
	for i := 0; i < 50; i++ {
		mon.Transmit(ring.NewMACFrame(mon.Addr(), ring.MACStandbyMonitorPresent), nil)
	}
	sched.Run()
	if got := rx.drv.Stats().RxMACFrames; got != 50 {
		t.Fatalf("promiscuous adapter should see all MAC frames, got %d", got)
	}
	if rx.k.CPU().Stats().BusyTime < 50*DefaultTiming().MACFrameCost {
		t.Fatal("MAC frames should consume CPU")
	}
}

func TestMACFramesFreeWhenNotPromiscuous(t *testing.T) {
	sched, r, _, rx := pair(t, DefaultConfig())
	mon := r.Attach("monitor")
	for i := 0; i < 50; i++ {
		mon.Transmit(ring.NewMACFrame(mon.Addr(), ring.MACStandbyMonitorPresent), nil)
	}
	sched.Run()
	if got := rx.drv.Stats().RxMACFrames; got != 0 {
		t.Fatalf("normal adapter strips MAC frames in ROM, saw %d", got)
	}
}

func TestRxBufferExhaustionDropsFrames(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RxBuffers = 1
	sched, _, tx, rx := pair(t, cfg)
	// A handler that never releases the buffer: the second frame finds
	// no buffer and is lost with its C bit clear.
	first := true
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		if first {
			first = false
			return nil // leak the buffer deliberately
		}
		rcv.Release()
		return nil
	})
	dst := rx.drv.Station().Addr()
	tx.drv.Output(mkPacket(tx.k, 1000, ClassCTMSP, dst))
	tx.drv.Output(mkPacket(tx.k, 1000, ClassCTMSP, dst))
	tx.drv.Output(mkPacket(tx.k, 1000, ClassCTMSP, dst))
	sched.Run()
	if rx.drv.Stats().RxNoBuffer == 0 {
		t.Fatal("receiver should have run out of rx DMA buffers")
	}
}

func TestIoctlInterface(t *testing.T) {
	_, _, tx, rx := pair(t, DefaultConfig())
	hdr, err := tx.k.Ioctl("tr0", "compute-header", rx.drv.Station().Addr())
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr.([]byte)) != 22 {
		t.Fatalf("ring header should be 22 bytes, got %d", len(hdr.([]byte)))
	}
	if _, err := tx.k.Ioctl("tr0", "compute-header", "bogus"); err == nil {
		t.Fatal("wrong arg type should error")
	}
	h, err := tx.k.Ioctl("tr0", "get-output-handle", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.(func(*Outgoing)); !ok {
		t.Fatalf("output handle has wrong type: %T", h)
	}
	if _, err := tx.k.Ioctl("tr0", "nonsense", nil); err == nil {
		t.Fatal("unknown ioctl should error")
	}
}

func TestReleaseTwicePanics(t *testing.T) {
	sched, _, tx, rx := pair(t, DefaultConfig())
	rx.drv.SetHandler(ClassCTMSP, func(rcv *Received) []rtpc.Seg {
		rcv.Release()
		defer func() {
			if recover() == nil {
				t.Error("double release must panic")
			}
		}()
		rcv.Release()
		return nil
	})
	tx.drv.Output(mkPacket(tx.k, 500, ClassCTMSP, rx.drv.Station().Addr()))
	sched.Run()
}

func TestBuildRingHeaderEncodesAddresses(t *testing.T) {
	h := BuildRingHeader(3, 9)
	if h[2] != 0 || h[3] != 9 {
		t.Fatalf("destination not encoded: % x", h)
	}
	if h[8] != 0 || h[9] != 3 {
		t.Fatalf("source not encoded: % x", h)
	}
}
