// Package session is the multi-stream layer the paper's §3 argument
// implies but the prototype never built: N concurrent CTMSP streams
// sharing one Token Ring, with an admission controller that reserves ring
// bandwidth per stream and sheds the lowest-priority streams first when
// Ring Purges or load spikes shrink the effective capacity.
//
// The paper's claim is that a CTMS needs a *bandwidth guarantee* the
// network must honor per connection. On a 4 Mbit/s ring that guarantee is
// only meaningful if something refuses the stream that would break it;
// Controller is that something. Media-TCP (Shiang & van der Schaar) and
// Alaya et al.'s QoS-manager frame the same problem as multi-flow
// admission plus quality-centric degradation, which is the policy pair
// implemented here: admit against a budget, degrade by class.
package session

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Class is a stream's priority class, used both for admission bookkeeping
// and for degradation order: when capacity shrinks, ClassBackground
// streams are shed before ClassStandard, and ClassInteractive last.
// Higher classes also ride the ring at a higher 802.5 access priority.
//
//ctmsvet:enum
type Class int

const (
	// ClassBackground is prefetch/replication traffic: first to shed.
	ClassBackground Class = iota
	// ClassStandard is ordinary playback.
	ClassStandard
	// ClassInteractive is conversational media (the paper's telephony
	// case): last to shed.
	ClassInteractive
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassBackground:
		return "background"
	case ClassStandard:
		return "standard"
	case ClassInteractive:
		return "interactive"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// RingPriority maps the class to the Token Ring access priority its
// frames travel at. All are above the background traffic (priority 0) and
// below MAC frames (priority 7).
func (c Class) RingPriority() int {
	switch c {
	case ClassInteractive:
		return 6
	case ClassStandard:
		return 4
	case ClassBackground:
		return 2
	}
	// Out-of-range classes travel with the background traffic.
	return 2
}

// Decision is the admission controller's verdict on one stream.
type Decision struct {
	// Admitted reports whether the stream's reservation was granted.
	Admitted bool
	// Reason explains a rejection (empty when admitted).
	Reason string
	// ReservedBits is the ring bandwidth reserved (bits/s, wire framing
	// included); zero when rejected.
	//
	//ctmsvet:unit bit/s
	ReservedBits int64
}

type reservation struct {
	id    int
	class Class
	//ctmsvet:unit bit/s
	bits int64
}

// Controller reserves ring bandwidth per stream against a fixed budget:
// the ring's bit rate times a utilization cap, minus the measured or
// declared background load. It also tracks a transient capacity penalty
// (Ring Purge outages within a recent window) so the session layer can
// shed reservations that no longer fit.
//
//ctmsvet:shardowned
type Controller struct {
	//ctmsvet:unit bit/s
	nominalBits int64 // bit rate × utilization cap
	//ctmsvet:unit bit/s
	backgroundBits int64 // standing background load
	//ctmsvet:unit bit/s
	penaltyBits int64 // transient outage-driven capacity loss

	reservations []reservation
}

// NewController builds a controller for a ring of ringBits bits/s.
// utilizationCap is the fraction of the wire admission may promise
// (leaving headroom for token overhead and MAC traffic); backgroundBits
// is the standing non-CTMS load subtracted from the budget.
//
//ctmsvet:unit bit/s ringBits
//ctmsvet:unit bit/s backgroundBits
func NewController(ringBits int64, utilizationCap float64, backgroundBits int64) *Controller {
	sim.Checkf(ringBits > 0, "controller needs a positive ring rate")
	sim.Checkf(utilizationCap > 0 && utilizationCap <= 1, "utilization cap %v out of (0,1]", utilizationCap)
	sim.Checkf(backgroundBits >= 0, "negative background load")
	return &Controller{
		nominalBits:    int64(float64(ringBits) * utilizationCap),
		backgroundBits: backgroundBits,
	}
}

// EffectiveBits is the capacity admission currently has to give:
// the nominal budget minus background load minus the transient penalty.
//
//ctmsvet:unit bit/s result
func (c *Controller) EffectiveBits() int64 {
	e := c.nominalBits - c.backgroundBits - c.penaltyBits
	if e < 0 {
		return 0
	}
	return e
}

// ReservedBits is the bandwidth currently promised to admitted streams.
//
//ctmsvet:unit bit/s result
func (c *Controller) ReservedBits() int64 {
	var sum int64
	for _, r := range c.reservations {
		sum += r.bits
	}
	return sum
}

// Admit decides one stream's reservation. id must be unique per stream;
// decisions are made strictly in call order (first come, first reserved),
// which keeps a session's admissions deterministic.
//
//ctmsvet:unit bit/s bits
func (c *Controller) Admit(id int, class Class, bits int64) Decision {
	sim.Checkf(bits > 0, "stream %d requests non-positive bandwidth", id)
	for _, r := range c.reservations {
		sim.Checkf(r.id != id, "stream id %d already reserved", id)
	}
	avail := c.EffectiveBits() - c.ReservedBits()
	if bits > avail {
		return Decision{
			Admitted: false,
			Reason: fmt.Sprintf("needs %d bits/s but only %d of %d available (%d reserved, %d background)",
				bits, avail, c.EffectiveBits(), c.ReservedBits(), c.backgroundBits),
		}
	}
	c.reservations = append(c.reservations, reservation{id: id, class: class, bits: bits})
	return Decision{Admitted: true, ReservedBits: bits}
}

// Release frees a stream's reservation (no-op for unknown ids).
func (c *Controller) Release(id int) {
	for i, r := range c.reservations {
		if r.id == id {
			c.reservations = append(c.reservations[:i], c.reservations[i+1:]...)
			return
		}
	}
}

// AddPenalty shrinks the effective capacity by bits (a Ring Purge outage
// amortized over its window); RemovePenalty restores it when the window
// expires.
//
//ctmsvet:unit bit/s bits
func (c *Controller) AddPenalty(bits int64) { c.penaltyBits += bits }

// RemovePenalty undoes a prior AddPenalty.
//
//ctmsvet:unit bit/s bits
func (c *Controller) RemovePenalty(bits int64) {
	c.penaltyBits -= bits
	sim.Checkf(c.penaltyBits >= 0, "penalty went negative")
}

// Overcommitted returns the stream ids to shed, in shed order, so that the
// remaining reservations fit the effective capacity: lowest class first,
// and within a class the most recently admitted first (oldest commitments
// are honored longest). The returned streams are NOT released; the caller
// sheds them (stopping their sources) and calls Release as it goes, so the
// decision and the action stay in one place.
func (c *Controller) Overcommitted() []int {
	deficit := c.ReservedBits() - c.EffectiveBits()
	if deficit <= 0 {
		return nil
	}
	order := make([]reservation, len(c.reservations))
	copy(order, c.reservations)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].class != order[j].class {
			return order[i].class < order[j].class
		}
		return order[i].id > order[j].id
	})
	var shed []int
	for _, r := range order {
		if deficit <= 0 {
			break
		}
		shed = append(shed, r.id)
		deficit -= r.bits
	}
	return shed
}
