package session

import "testing"

func TestControllerAdmitAgainstBudget(t *testing.T) {
	// 4 Mbit/s ring, 90% cap, 400 kbit/s background → 3.2 Mbit/s to give.
	c := NewController(4_000_000, 0.9, 400_000)
	if got := c.EffectiveBits(); got != 3_200_000 {
		t.Fatalf("effective: %d", got)
	}
	d1 := c.Admit(0, ClassStandard, 1_500_000)
	d2 := c.Admit(1, ClassStandard, 1_500_000)
	if !d1.Admitted || !d2.Admitted {
		t.Fatalf("first two streams must fit: %+v %+v", d1, d2)
	}
	d3 := c.Admit(2, ClassInteractive, 1_500_000)
	if d3.Admitted {
		t.Fatalf("third stream must be rejected (only 200k left): %+v", d3)
	}
	if d3.Reason == "" {
		t.Fatal("rejection must carry a reason")
	}
	// A smaller stream still fits the remainder.
	if d4 := c.Admit(3, ClassBackground, 200_000); !d4.Admitted {
		t.Fatalf("200k must fit the 200k remainder: %+v", d4)
	}
	if got := c.ReservedBits(); got != 3_200_000 {
		t.Fatalf("reserved: %d", got)
	}
	c.Release(1)
	if got := c.ReservedBits(); got != 1_700_000 {
		t.Fatalf("reserved after release: %d", got)
	}
}

func TestControllerShedOrder(t *testing.T) {
	c := NewController(4_000_000, 1.0, 0)
	c.Admit(0, ClassInteractive, 1_000_000)
	c.Admit(1, ClassBackground, 1_000_000)
	c.Admit(2, ClassStandard, 1_000_000)
	c.Admit(3, ClassBackground, 1_000_000)

	if shed := c.Overcommitted(); shed != nil {
		t.Fatalf("nothing to shed at full capacity: %v", shed)
	}
	// Lose half the ring: must shed both background streams (newest
	// first), keeping interactive and standard.
	c.AddPenalty(2_000_000)
	shed := c.Overcommitted()
	if len(shed) != 2 || shed[0] != 3 || shed[1] != 1 {
		t.Fatalf("shed order: %v (want [3 1])", shed)
	}
	// Overcommitted does not release; the caller does.
	for _, id := range shed {
		c.Release(id)
	}
	if got := c.Overcommitted(); got != nil {
		t.Fatalf("fits after shedding: %v", got)
	}
	// Deeper loss eats into standard before interactive.
	c.AddPenalty(1_500_000)
	shed = c.Overcommitted()
	if len(shed) != 2 || shed[0] != 2 || shed[1] != 0 {
		t.Fatalf("second shed order: %v (want [2 0])", shed)
	}
	c.RemovePenalty(3_500_000)
	if got := c.Overcommitted(); got != nil {
		t.Fatalf("penalty removed, nothing to shed: %v", got)
	}
}
