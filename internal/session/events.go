package session

import "repro/internal/sim"

// Structured trace kinds recorded by the session layer. Kind block 16–31
// belongs to session (ring owns 1–15, playout 32–47).
const (
	// EvAdmit records an admitted stream: A = stream index, B = reserved
	// bits/s.
	EvAdmit sim.EventKind = 16
	// EvReject records a rejected stream: A = stream index, B = offered
	// bits/s that did not fit the budget.
	EvReject sim.EventKind = 17
	// EvShed records a purge-driven shed: A = stream index, B = released
	// bits/s.
	EvShed sim.EventKind = 18
	// EvArrive records a population stream's arrival (before its
	// admission verdict): A = stream index, B = offered bits/s.
	EvArrive sim.EventKind = 19
	// EvDepart records a population stream hanging up: A = stream index,
	// B = released bits/s.
	EvDepart sim.EventKind = 20
)

func init() {
	sim.RegisterEventKind(EvAdmit, "session.admit")
	sim.RegisterEventKind(EvReject, "session.reject")
	sim.RegisterEventKind(EvShed, "session.shed")
	sim.RegisterEventKind(EvArrive, "session.arrive")
	sim.RegisterEventKind(EvDepart, "session.depart")
}
