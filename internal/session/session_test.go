package session

import (
	"fmt"
	"testing"

	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/workload"
)

// specN builds n identical 500-byte/12 ms streams (≈347 kbit/s on the
// wire each) with classes rotating background/standard/interactive.
func specN(n int) []StreamSpec {
	specs := make([]StreamSpec, n)
	for i := range specs {
		specs[i] = StreamSpec{
			Name:        fmt.Sprintf("s%02d", i),
			PacketBytes: 500,
			Interval:    12 * sim.Millisecond,
			Class:       Class(i % 3),
		}
	}
	return specs
}

func TestSessionAdmissionKnee(t *testing.T) {
	cfg := Config{
		Name:           "knee",
		Seed:           1991,
		Duration:       20 * sim.Second,
		BackgroundUtil: 0.05,
		Streams:        specN(16),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 || res.Rejected == 0 {
		t.Fatalf("expected a knee: admitted=%d rejected=%d", res.Admitted, res.Rejected)
	}
	// Budget: 0.90×4M − 0.05×4M = 3.4 Mbit/s; each stream needs ≈347 kbit/s.
	if res.Admitted < 6 || res.Admitted > 12 {
		t.Fatalf("knee out of range: %d admitted", res.Admitted)
	}
	// Admission is first-come-first-reserved: the first K admitted, the
	// rest rejected with a reason.
	for i, s := range res.Streams {
		wantAdmitted := i < res.Admitted
		if s.Decision.Admitted != wantAdmitted {
			t.Fatalf("stream %d admission: %+v", i, s.Decision)
		}
		if !s.Decision.Admitted && s.Decision.Reason == "" {
			t.Fatalf("stream %d rejected without reason", i)
		}
		if s.Decision.Admitted && s.Sent == 0 {
			t.Fatalf("admitted stream %d never sent", i)
		}
		if !s.Decision.Admitted && s.Sent != 0 {
			t.Fatalf("rejected stream %d sent packets", i)
		}
	}
	// The guarantee the admission controller exists to honor.
	if g := res.WorstAdmittedGlitchRate(); g > 1.0 {
		t.Fatalf("admitted streams must stay glitch-bounded: %.2f/min\n%s", g, res.Report())
	}
	if res.ShedN != 0 {
		t.Fatalf("no purge, no shedding: %d", res.ShedN)
	}
	if res.ReservedBitsEnd == 0 {
		t.Fatal("ring should report reserved bandwidth")
	}
}

func TestSessionDeterminism(t *testing.T) {
	cfg := Config{
		Name:             "det",
		Seed:             7,
		Duration:         10 * sim.Second,
		BackgroundUtil:   0.05,
		ForceInsertionAt: 4 * sim.Second,
		Streams:          specN(12),
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("same config, different results:\n--- a\n%s--- b\n%s", a.Report(), b.Report())
	}
}

func TestSessionShedsLowestClassOnInsertion(t *testing.T) {
	cfg := Config{
		Name:             "degrade",
		Seed:             1991,
		Duration:         20 * sim.Second,
		BackgroundUtil:   0.05,
		ForceInsertionAt: 8 * sim.Second,
		PlayoutPrebuffer: 130 * sim.Millisecond,
		Streams:          specN(16),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShedN == 0 {
		t.Fatalf("a 10-purge insertion at a full ring must shed:\n%s", res.Report())
	}
	// Shed order honors class: no higher-class stream shed while a
	// lower-class one survived.
	minSurvivor := ClassInteractive
	maxShed := ClassBackground
	for _, s := range res.Streams {
		if !s.Decision.Admitted {
			continue
		}
		if s.Shed {
			if s.Spec.Class > maxShed {
				maxShed = s.Spec.Class
			}
			if s.ShedAt < cfg.ForceInsertionAt {
				t.Fatalf("stream shed before the insertion: %+v", s)
			}
		} else if s.Spec.Class < minSurvivor {
			minSurvivor = s.Spec.Class
		}
	}
	if res.ShedN < res.Admitted && maxShed > minSurvivor {
		t.Fatalf("shed class %v while class %v survived:\n%s", maxShed, minSurvivor, res.Report())
	}
	// Survivors ride out the outage within the bigger prebuffer.
	if g := res.WorstAdmittedGlitchRate(); g > 3.0 {
		t.Fatalf("survivors glitched too much: %.2f/min\n%s", g, res.Report())
	}
}

// TestSessionStructuredTrace wires a trace into a shedding run and checks
// the structured stream: admissions and rejections recorded at t=0, purges
// and sheds after the forced insertion, all without any per-event
// formatting on the run's hot path.
func TestSessionStructuredTrace(t *testing.T) {
	tr := sim.NewTrace(1 << 16)
	cfg := Config{
		Name:             "traced",
		Seed:             1991,
		Duration:         20 * sim.Second,
		BackgroundUtil:   0.05,
		ForceInsertionAt: 8 * sim.Second,
		PlayoutPrebuffer: 130 * sim.Millisecond,
		Trace:            tr,
		Streams:          specN(16),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	admits := tr.EventsOfKind(EvAdmit)
	rejects := tr.EventsOfKind(EvReject)
	sheds := tr.EventsOfKind(EvShed)
	if len(admits) != res.Admitted || len(rejects) != res.Rejected || len(sheds) != res.ShedN {
		t.Fatalf("trace disagrees with results: admits %d/%d rejects %d/%d sheds %d/%d",
			len(admits), res.Admitted, len(rejects), res.Rejected, len(sheds), res.ShedN)
	}
	for _, e := range admits {
		if e.T != 0 || e.B <= 0 {
			t.Fatalf("admission event should carry t=0 and reserved bits: %+v", e)
		}
	}
	for _, e := range sheds {
		if e.T < cfg.ForceInsertionAt {
			t.Fatalf("shed event before the insertion: %+v", e)
		}
	}
	// The forced insertion's purge burst must appear via the ring's kinds.
	if purges := tr.EventsOfKind(ring.EvPurge); len(purges) == 0 {
		t.Fatal("insertion run recorded no ring purges")
	}
	if ins := tr.EventsOfKind(ring.EvInsertion); len(ins) != 1 {
		t.Fatalf("want exactly 1 insertion event, got %d", len(ins))
	}
}

// A trace must not perturb the simulation: identical Results with and
// without one attached (observation is read-only).
func TestSessionTraceDoesNotPerturb(t *testing.T) {
	cfg := Config{
		Name:             "det",
		Seed:             7,
		Duration:         10 * sim.Second,
		BackgroundUtil:   0.05,
		ForceInsertionAt: 4 * sim.Second,
		Streams:          specN(12),
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = sim.NewTrace(1 << 16)
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report() != traced.Report() {
		t.Fatalf("attaching a trace changed the run:\n--- plain\n%s--- traced\n%s", plain.Report(), traced.Report())
	}
}

func TestSessionFreeForAllDegradesEveryone(t *testing.T) {
	with := Config{
		Name:           "admitted",
		Seed:           1991,
		Duration:       20 * sim.Second,
		BackgroundUtil: 0.05,
		Streams:        specN(16),
	}
	without := with
	without.Name = "free-for-all"
	without.DisableAdmission = true

	ra, err := Run(with)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := Run(without)
	if err != nil {
		t.Fatal(err)
	}
	if rf.Admitted != 16 || rf.Rejected != 0 {
		t.Fatalf("free-for-all must run everything: %d/%d", rf.Admitted, rf.Rejected)
	}
	// 16×347k ≈ 5.6 Mbit/s offered on a 4 Mbit/s ring: the losers of the
	// free-for-all cannot win the token, so their playout buffers drain
	// once and stay empty — they starve for most of the run, where the
	// admission-controlled session kept every admitted stream fed.
	ga, gf := ra.WorstAdmittedStarvedFraction(), rf.WorstAdmittedStarvedFraction()
	if ga > 0.01 {
		t.Fatalf("admission-controlled run starved: %.2f%%\n%s", 100*ga, ra.Report())
	}
	if gf < 0.5 {
		t.Fatalf("free-for-all should starve its losers: worst %.2f%% vs %.2f%%\n%s", 100*gf, 100*ga, rf.Report())
	}
}

func TestSessionValidate(t *testing.T) {
	good := Config{Duration: sim.Second, Streams: specN(1)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Streams: specN(1)},    // no duration
		{Duration: sim.Second}, // no streams
		{Duration: sim.Second, Streams: specN(1), UtilizationCap: 1.5},
		{Duration: sim.Second, Streams: specN(1), BackgroundUtil: 1.0},
		{Duration: sim.Second, Streams: []StreamSpec{{PacketBytes: 4, Interval: sim.Millisecond}}},
		{Duration: sim.Second, Streams: []StreamSpec{{PacketBytes: 500}}},
		{Duration: sim.Second, Streams: []StreamSpec{{PacketBytes: 500, Interval: sim.Millisecond, Class: Class(9)}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d must fail validation", i)
		}
	}
}

// popConfig is a small churning population: enough offered load that the
// budget fills up and later arrivals get rejected, plus a storm.
func popConfig() Config {
	return Config{
		Name:           "pop",
		Seed:           1991,
		Duration:       8 * sim.Second,
		BackgroundUtil: 0.05,
		Population: &workload.PopulationSpec{
			ArrivalsPerSec:  6,
			ZipfSkew:        1.1,
			Titles:          16,
			ChurnHalfLife:   2 * sim.Second,
			StormAt:         4 * sim.Second,
			StormInsertions: 2,
		},
	}
}

func TestSessionPopulationChurn(t *testing.T) {
	res, err := Run(popConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) < 20 {
		t.Fatalf("only %d population arrivals", len(res.Streams))
	}
	if res.Admitted == 0 {
		t.Fatal("no population stream admitted")
	}
	if res.Rejected == 0 {
		t.Fatal("offered load never exceeded the budget")
	}
	if res.Departed == 0 {
		t.Fatal("no churn departures in 8 s with a 2 s half-life")
	}
	if res.PlayoutLatency == nil || res.PlayoutLatency.N() == 0 {
		t.Fatal("population run recorded no playout-latency samples")
	}
	for i, s := range res.Streams {
		if !s.Arrived {
			t.Fatalf("stream %d not marked as a population arrival", i)
		}
		if s.Title < 0 || s.Title >= 16 {
			t.Fatalf("stream %d title %d out of range", i, s.Title)
		}
		if s.Departed {
			if !s.Decision.Admitted || s.Shed {
				t.Fatalf("stream %d departed but admitted=%v shed=%v",
					i, s.Decision.Admitted, s.Shed)
			}
			if s.DepartedAt <= s.ArrivedAt {
				t.Fatalf("stream %d departed at %v before arriving at %v",
					i, s.DepartedAt, s.ArrivedAt)
			}
			if s.ActiveTime != s.DepartedAt-s.ArrivedAt {
				t.Fatalf("stream %d active time %v, want %v",
					i, s.ActiveTime, s.DepartedAt-s.ArrivedAt)
			}
		}
		if s.Decision.Admitted && s.ActiveTime > 0 && s.Sent == 0 &&
			s.ActiveTime > 100*sim.Millisecond {
			t.Fatalf("admitted stream %d ran %v but never sent", i, s.ActiveTime)
		}
	}
	// Departures release budget: the end-of-run reservation must be less
	// than the sum ever admitted.
	var admittedBits int64
	for _, s := range res.Streams {
		if s.Decision.Admitted {
			admittedBits += s.Spec.OfferedBits()
		}
	}
	if res.ReservedBitsEnd >= admittedBits {
		t.Fatalf("departures released nothing: reserved %d of %d admitted bits",
			res.ReservedBitsEnd, admittedBits)
	}
}

func TestSessionPopulationDeterminism(t *testing.T) {
	a, err := Run(popConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(popConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("same population config, different results:\n--- a\n%s--- b\n%s",
			a.Report(), b.Report())
	}
	if a.PlayoutLatency.String() != b.PlayoutLatency.String() {
		t.Fatal("same population config, different latency histograms")
	}
}
