package session

import (
	"fmt"
	"strings"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/playout"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tradapter"
	"repro/internal/vca"
	"repro/internal/workload"
)

// Defaults for the zero-valued Config knobs.
const (
	// DefaultUtilizationCap leaves ~10% of the wire for token rotation,
	// MAC frames and the jitter the admission budget cannot see.
	DefaultUtilizationCap = 0.90
	// DefaultPurgePenaltyWindow amortizes one purge's outage: each purge
	// subtracts capacity × (PurgeDuration / window) from the budget until
	// the window expires, so a back-to-back burst (a station insertion)
	// stacks into a real capacity loss while a lone purge barely dents it.
	DefaultPurgePenaltyWindow = 250 * sim.Millisecond
	// DefaultPrebuffer is the §6 playout prebuffer.
	DefaultPrebuffer = 40 * sim.Millisecond
	// defaultInsertionPurges is the paper's "on the order of 10"
	// back-to-back purges per station insertion.
	defaultInsertionPurges = 10
	// populationStations matches internal/core's campus-ring population so
	// per-station repeat latency is comparable across runners.
	populationStations = 64
	// maxOutstanding bounds packets a stream may queue in its Token Ring
	// driver: past it the VCA handler drops at the device, which is how a
	// starved stream degrades instead of buffering unboundedly.
	maxOutstanding = 8
)

// StreamSpec describes one CTMSP stream a session wants to run.
type StreamSpec struct {
	// Name labels the stream in results.
	Name string
	// PacketBytes per packet (CTMSP header included), sent every Interval
	// — the same shape as core.Config's single stream.
	PacketBytes int
	Interval    sim.Time
	// Class sets admission priority, shed order and ring access priority.
	Class Class
}

// OfferedBits is the ring bandwidth the stream needs: packet plus Token
// Ring framing, every Interval.
//
//ctmsvet:unit bit/s result
func (s StreamSpec) OfferedBits() int64 {
	wire := s.PacketBytes + tradapter.RingOverhead
	return int64(float64(wire*8) / s.Interval.Seconds())
}

func (s StreamSpec) validate(i int) error {
	switch {
	case s.PacketBytes <= ctmsp.HeaderSize || s.PacketBytes > 4000:
		return fmt.Errorf("session: stream %d (%s): packet size %d out of range", i, s.Name, s.PacketBytes)
	case s.Interval <= 0:
		return fmt.Errorf("session: stream %d (%s): interval must be positive", i, s.Name)
	case s.Class < ClassBackground || s.Class >= numClasses:
		return fmt.Errorf("session: stream %d (%s): unknown class %d", i, s.Name, int(s.Class))
	}
	return nil
}

// Config describes one multi-stream session run.
type Config struct {
	Name     string
	Seed     int64
	Duration sim.Time

	// RingBitRate overrides the 4 Mbit/s ring (0 = the paper's rate).
	RingBitRate int64
	// UtilizationCap is the fraction of the wire admission may promise
	// (0 = DefaultUtilizationCap).
	UtilizationCap float64
	// BackgroundUtil is the offered background load as a fraction of the
	// ring (MAC chatter plus file-transfer frames); the admission budget
	// subtracts it.
	BackgroundUtil float64
	// DisableAdmission runs every stream regardless of budget — the
	// free-for-all ablation E17 compares against. No shedding either.
	DisableAdmission bool
	// ForceInsertionAt injects one station insertion (a burst of
	// back-to-back Ring Purges) at the given offset; zero disables.
	ForceInsertionAt sim.Time
	// PurgePenaltyWindow is how long one purge's capacity penalty lasts
	// (0 = DefaultPurgePenaltyWindow).
	PurgePenaltyWindow sim.Time
	// PlayoutPrebuffer delays each stream's playback after its first
	// packet (0 = DefaultPrebuffer).
	PlayoutPrebuffer sim.Time

	// Trace, when non-nil, is attached to the run's scheduler and receives
	// structured events (admissions, sheds, ring purges, playout glitches)
	// with no formatting cost on the hot path. Leave nil for benchmarked
	// runs.
	Trace *sim.Trace

	Streams []StreamSpec

	// Population, when non-nil, adds a statistical stream population on
	// top of Streams: Poisson arrivals with Zipf-skewed titles and churn,
	// compiled to a deterministic schedule before the run starts and
	// admitted live as each arrival fires (so storms and purge penalties
	// shape the verdicts). Population runs also record a playout-latency
	// histogram in Results.PlayoutLatency.
	Population *workload.PopulationSpec
}

// Validate reports configuration mistakes early.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("session: duration must be positive")
	case len(c.Streams) == 0 && c.Population == nil:
		return fmt.Errorf("session: no streams")
	case c.UtilizationCap < 0 || c.UtilizationCap > 1:
		return fmt.Errorf("session: utilization cap %v out of [0,1]", c.UtilizationCap)
	case c.BackgroundUtil < 0 || c.BackgroundUtil >= 1:
		return fmt.Errorf("session: background utilization %v out of [0,1)", c.BackgroundUtil)
	}
	for i, s := range c.Streams {
		if err := s.validate(i); err != nil {
			return err
		}
	}
	if c.Population != nil {
		if err := c.Population.Validate(); err != nil {
			return fmt.Errorf("session: %w", err)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.RingBitRate == 0 {
		c.RingBitRate = ring.DefaultConfig().BitRate
	}
	if c.UtilizationCap == 0 {
		c.UtilizationCap = DefaultUtilizationCap
	}
	if c.PurgePenaltyWindow == 0 {
		c.PurgePenaltyWindow = DefaultPurgePenaltyWindow
	}
	if c.PlayoutPrebuffer == 0 {
		c.PlayoutPrebuffer = DefaultPrebuffer
	}
	return c
}

// StreamResult is one stream's outcome.
type StreamResult struct {
	Spec     StreamSpec
	Decision Decision

	// Shed reports the stream was admitted but later stopped by the
	// degradation policy; ShedAt is when.
	Shed   bool
	ShedAt sim.Time

	// Population accounting: Arrived marks a churn-generated stream,
	// ArrivedAt is its Poisson arrival offset, Title its Zipf-drawn
	// catalog rank. Departed/DepartedAt record a natural hang-up (churn),
	// as opposed to a policy shed.
	Arrived    bool
	ArrivedAt  sim.Time
	Title      int
	Departed   bool
	DepartedAt sim.Time

	// Stream accounting (admitted streams only).
	Sent       uint64
	Delivered  uint64
	Lost       uint64
	Gaps       uint64
	Duplicates uint64

	// Playout accounting: ActiveTime is how long the stream ran (until
	// shed or end of run), the denominator for the glitch rate.
	Glitches       uint64
	StarvedTime    sim.Time
	MaxBufferBytes int
	ActiveTime     sim.Time
}

// DeliveredFraction reports Delivered/Sent (0 for streams that never ran).
func (r StreamResult) DeliveredFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// GlitchesPerMinute normalizes the glitch count to the stream's active
// time, so shed and full-length streams compare fairly.
func (r StreamResult) GlitchesPerMinute() float64 {
	if r.ActiveTime <= 0 {
		return 0
	}
	return float64(r.Glitches) / (r.ActiveTime.Seconds() / 60)
}

// StarvedFraction reports the share of the stream's active time the
// playout buffer spent starved. A stream that cannot win the ring under
// overload starves rather than glitching repeatedly (the buffer empties
// once and stays empty), so this is the honest congestion metric.
func (r StreamResult) StarvedFraction() float64 {
	if r.ActiveTime <= 0 {
		return 0
	}
	return r.StarvedTime.Seconds() / r.ActiveTime.Seconds()
}

// Results is everything one session run produced.
type Results struct {
	Config  Config
	Elapsed sim.Time

	Streams []StreamResult

	Admitted int
	Rejected int
	ShedN    int
	// Departed counts population streams that hung up naturally (churn),
	// releasing their reservation without a shed.
	Departed int

	// PlayoutLatency aggregates every delivered packet's delay past its
	// nominal capture schedule, in microseconds; non-nil only for
	// population runs (Config.Population set), where the distribution's
	// p99/p999 is the experiment's deliverable.
	PlayoutLatency *stats.Histogram

	Ring            ring.Counters
	RingUtilization float64
	// ReservedBitsEnd is the bandwidth still reserved when the run ended
	// (admitted minus shed).
	//
	//ctmsvet:unit bit/s
	ReservedBitsEnd int64
}

// WorstAdmittedGlitchRate reports the highest glitches/minute among
// streams that were admitted and never shed (0 when none ran).
func (r *Results) WorstAdmittedGlitchRate() float64 {
	worst := 0.0
	for _, s := range r.Streams {
		if !s.Decision.Admitted || s.Shed {
			continue
		}
		if g := s.GlitchesPerMinute(); g > worst {
			worst = g
		}
	}
	return worst
}

// WorstAdmittedStarvedFraction reports the highest starved fraction among
// streams that were admitted and never shed (0 when none ran).
func (r *Results) WorstAdmittedStarvedFraction() float64 {
	worst := 0.0
	for _, s := range r.Streams {
		if !s.Decision.Admitted || s.Shed {
			continue
		}
		if f := s.StarvedFraction(); f > worst {
			worst = f
		}
	}
	return worst
}

// Report renders a human-readable summary.
func (r *Results) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== session %s (%v, seed %d): %d streams, %d admitted, %d rejected, %d shed ===\n",
		r.Config.Name, r.Elapsed, r.Config.Seed, len(r.Streams), r.Admitted, r.Rejected, r.ShedN)
	fmt.Fprintf(&b, "ring: util=%.2f%% reserved=%d bits/s purges=%d insertions=%d purgeLost=%d\n",
		100*r.RingUtilization, r.ReservedBitsEnd, r.Ring.PurgeCount, r.Ring.InsertionSeen, r.Ring.PurgeLost)
	for _, s := range r.Streams {
		switch {
		case !s.Decision.Admitted:
			fmt.Fprintf(&b, "  %-16s %-11s REJECTED: %s\n", s.Spec.Name, s.Spec.Class, s.Decision.Reason)
		case s.Shed:
			fmt.Fprintf(&b, "  %-16s %-11s SHED at %v: sent=%d delivered=%.4f glitches=%d\n",
				s.Spec.Name, s.Spec.Class, s.ShedAt, s.Sent, s.DeliveredFraction(), s.Glitches)
		default:
			fmt.Fprintf(&b, "  %-16s %-11s ok: sent=%d delivered=%.4f lost=%d glitches=%d (%.2f/min) starved=%.1f%% maxbuf=%dB\n",
				s.Spec.Name, s.Spec.Class, s.Sent, s.DeliveredFraction(), s.Lost,
				s.Glitches, s.GlitchesPerMinute(), 100*s.StarvedFraction(), s.MaxBufferBytes)
		}
	}
	return b.String()
}

// stream is one admitted stream's live machinery.
type stream struct {
	idx      int
	spec     StreamSpec
	dev      *vca.Device
	txDrv    *vca.TxDriver
	recv     *ctmsp.Receiver
	play     *playout.Playout
	shed     bool
	shedAt   sim.Time
	startAt  sim.Time // population arrivals start mid-run
	departed bool
	departAt sim.Time
}

// stormSpacing separates the insertions of a correlated storm: each one
// is ~10 back-to-back purges (≈120 ms of outage), so consecutive
// insertions land just after the previous outage ends.
const stormSpacing = 120 * sim.Millisecond

// mixSeed derives an independent seed per stream component so nearby
// stream indices get unrelated RNG streams (splitmix64-style finalizer,
// as core.SweepSeed does for sweep points).
func mixSeed(base int64, salt uint64) int64 {
	h := uint64(base) + salt*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int64(h)
}

// Run executes the session: admission in spec order, then every admitted
// stream transmits concurrently over one shared ring for cfg.Duration.
// The run is a self-contained deterministic simulation — same Config,
// same Results — so sessions fan out across lab.Pool workers safely.
func Run(cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	sched := sim.NewScheduler()
	sched.SetTrace(cfg.Trace)
	rng := sim.NewRNG(cfg.Seed)

	ringCfg := ring.DefaultConfig()
	ringCfg.Seed = cfg.Seed
	ringCfg.BitRate = cfg.RingBitRate
	r := ring.New(sched, ringCfg)
	for i := 0; i < populationStations; i++ {
		r.Attach("pop")
	}

	// Background load: a sliver of MAC chatter plus 1522-byte transfer
	// frames making up the rest of the declared utilization.
	var gens []interface{ Stop() }
	backgroundBitRate := int64(cfg.BackgroundUtil * float64(cfg.RingBitRate))
	if cfg.BackgroundUtil > 0 {
		macUtil := cfg.BackgroundUtil * 0.1
		if macUtil > 0.01 {
			macUtil = 0.01
		}
		mon := r.Attach("monitor")
		gens = append(gens, workload.NewMACGen(r, mon, macUtil, rng.Fork("bg-mac")))
		restUtil := cfg.BackgroundUtil - macUtil
		if restUtil > 0 {
			src, dst := r.Attach("bg-src"), r.Attach("bg-dst")
			frameTime := sim.WireTime(1522, cfg.RingBitRate)
			mean := sim.Scale(frameTime, 1/restUtil)
			gens = append(gens, workload.NewChatterGen(r, src, dst, 1522, 1522, mean, rng.Fork("bg-data")))
		}
	}

	ctrl := NewController(cfg.RingBitRate, cfg.UtilizationCap, backgroundBitRate)

	results := &Results{Config: cfg, Elapsed: cfg.Duration}
	results.Streams = make([]StreamResult, len(cfg.Streams))
	var live []*stream
	byID := make(map[int]*stream)

	// Population runs record every delivered packet's playout delay; the
	// histogram is shared across static and churn-generated streams.
	var popHist *stats.Histogram
	if cfg.Population != nil {
		popHist = stats.NewHistogram(100, "playout latency")
		results.PlayoutLatency = popHist
	}

	for i, spec := range cfg.Streams {
		offered := spec.OfferedBits()
		var dec Decision
		if cfg.DisableAdmission {
			dec = Decision{Admitted: true, ReservedBits: offered}
		} else {
			dec = ctrl.Admit(i, spec.Class, offered)
		}
		results.Streams[i] = StreamResult{Spec: spec, Decision: dec}
		if !dec.Admitted {
			results.Rejected++
			cfg.Trace.AddEvent(sched.Now(), EvReject, int64(i), offered)
			continue
		}
		results.Admitted++
		cfg.Trace.AddEvent(sched.Now(), EvAdmit, int64(i), dec.ReservedBits)
		r.ReserveBits(offered)
		st, err := buildStream(cfg, i, spec, sched, r, 0, popHist)
		if err != nil {
			return nil, err
		}
		live = append(live, st)
		byID[i] = st
	}

	shedStream := func(st *stream, at sim.Time) {
		if st.shed || st.departed {
			return
		}
		st.shed = true
		st.shedAt = at
		st.dev.Stop()
		ctrl.Release(st.idx)
		r.ReserveBits(-st.spec.OfferedBits())
		cfg.Trace.AddEvent(at, EvShed, int64(st.idx), st.spec.OfferedBits())
	}

	// Graceful degradation: every Ring Purge charges the budget with its
	// outage amortized over the penalty window; when the reservations no
	// longer fit the shrunken capacity, the lowest-class streams are shed
	// — stopped at the source and their reservation released — until the
	// survivors fit again. Shed streams stay shed (no re-admission
	// flapping); a new session must re-apply.
	if !cfg.DisableAdmission {
		penalty := int64(float64(ctrl.EffectiveBits()+backgroundBitRate) *
			(ringCfg.PurgeDuration.Seconds() / cfg.PurgePenaltyWindow.Seconds()))
		r.OnPurge(func(at sim.Time) {
			ctrl.AddPenalty(penalty)
			sched.After(cfg.PurgePenaltyWindow, "session.penalty-expire", func() {
				ctrl.RemovePenalty(penalty)
			})
			for _, id := range ctrl.Overcommitted() {
				if st := byID[id]; st != nil {
					shedStream(st, at)
				}
			}
		})
	}

	if cfg.ForceInsertionAt > 0 {
		sched.At(cfg.ForceInsertionAt, "session.forced-insertion", func() {
			r.Insertion(defaultInsertionPurges)
		})
	}

	// The population: its whole arrival schedule was compiled from a
	// Fork-derived RNG before the run, so the draws depend only on (seed,
	// spec); the scheduler then replays it, admitting each arrival at its
	// arrival instant — against whatever budget the purge penalties and
	// earlier arrivals have left — and hanging it up at its churn-drawn
	// departure.
	if cfg.Population != nil {
		pop := cfg.Population.WithDefaults()
		arrivals := pop.Compile(rng.Fork("population"), cfg.Duration)
		baseID := len(cfg.Streams)
		results.Streams = append(results.Streams, make([]StreamResult, len(arrivals))...)
		for j, a := range arrivals {
			id := baseID + j
			cc := pop.Classes[a.Class]
			spec := StreamSpec{
				Name:        fmt.Sprintf("pop-%04d-%s", j, cc.Name),
				PacketBytes: cc.PacketBytes,
				Interval:    cc.Interval,
				Class:       Class(cc.Priority),
			}
			res := &results.Streams[id]
			*res = StreamResult{Spec: spec, Arrived: true, ArrivedAt: a.At, Title: a.Title}
			arrival := a
			streamID := id
			sched.At(a.At, "session.pop-arrive", func() {
				offered := spec.OfferedBits()
				cfg.Trace.AddEvent(arrival.At, EvArrive, int64(streamID), offered)
				var dec Decision
				if cfg.DisableAdmission {
					dec = Decision{Admitted: true, ReservedBits: offered}
				} else {
					dec = ctrl.Admit(streamID, spec.Class, offered)
				}
				res.Decision = dec
				if !dec.Admitted {
					results.Rejected++
					cfg.Trace.AddEvent(arrival.At, EvReject, int64(streamID), offered)
					return
				}
				results.Admitted++
				cfg.Trace.AddEvent(arrival.At, EvAdmit, int64(streamID), dec.ReservedBits)
				r.ReserveBits(offered)
				st, err := buildStream(cfg, streamID, spec, sched, r, arrival.At, popHist)
				// The spec was validated before the run; machinery
				// construction cannot fail for it.
				sim.Checkf(err == nil, "population stream %d: %v", streamID, err)
				live = append(live, st)
				byID[streamID] = st
				st.dev.Start()
				if arrival.DepartAt < cfg.Duration {
					sched.At(arrival.DepartAt, "session.pop-depart", func() {
						if st.shed || st.departed {
							return
						}
						st.departed = true
						st.departAt = arrival.DepartAt
						st.dev.Stop()
						ctrl.Release(streamID)
						r.ReserveBits(-offered)
						cfg.Trace.AddEvent(arrival.DepartAt, EvDepart, int64(streamID), offered)
					})
				}
			})
		}
		// Correlated insertion storm: back-to-back station insertions, a
		// bigger capacity shock than any single purge burst.
		if pop.StormAt > 0 && pop.StormInsertions > 0 {
			for k := 0; k < pop.StormInsertions; k++ {
				at := pop.StormAt + sim.Time(k)*stormSpacing
				if at >= cfg.Duration {
					break
				}
				sched.At(at, "session.pop-storm", func() {
					r.Insertion(defaultInsertionPurges)
				})
			}
		}
	}

	for _, st := range live {
		st.dev.Start()
	}
	sched.RunUntil(cfg.Duration)
	for _, st := range live {
		if !st.shed && !st.departed {
			st.dev.Stop()
		}
	}
	for _, g := range gens {
		g.Stop()
	}

	for _, st := range live {
		res := &results.Streams[st.idx]
		res.Shed = st.shed
		res.ShedAt = st.shedAt
		res.Departed = st.departed
		res.DepartedAt = st.departAt
		end := cfg.Duration
		if st.shed {
			// Judge a shed stream on the time it was allowed to run; its
			// post-shed starvation is the policy's doing, not the ring's.
			end = st.shedAt
			results.ShedN++
		}
		if st.departed {
			// A churn departure is the stream's own hang-up; judge it on
			// the time it chose to run.
			end = st.departAt
			results.Departed++
		}
		res.ActiveTime = end - st.startAt
		tx := st.txDrv.Stats()
		rx := st.recv.Stats()
		res.Sent = tx.PacketsSent
		res.Delivered = rx.InOrder + rx.Gaps
		res.Lost = rx.Lost
		res.Gaps = rx.Gaps
		res.Duplicates = rx.Duplicates
		p := st.play.Finish(end)
		res.Glitches = p.Glitches
		res.StarvedTime = p.StarvedTime
		res.MaxBufferBytes = p.MaxBufferBytes
	}

	results.Ring = r.Counters()
	results.RingUtilization = r.Utilization()
	results.ReservedBitsEnd = r.ReservedBits()
	return results, nil
}

// buildStream attaches one admitted stream to the ring: its own
// transmitter and receiver machines (the paper's RT/PC pair), a CTMSP
// connection with a precomputed ring header, the VCA source interrupting
// every Interval, and the receive path feeding a playout buffer. startAt
// is when the stream's device starts ticking (population arrivals start
// mid-run); lat, when non-nil, receives each delivered packet's delay
// past its nominal capture schedule.
func buildStream(cfg Config, i int, spec StreamSpec, sched *sim.Scheduler, r *ring.Ring, startAt sim.Time, lat *stats.Histogram) (*stream, error) {
	trCfg := tradapter.DefaultConfig()
	trCfg.CTMSPRingPriority = spec.Class.RingPriority()

	mkHost := func(role string, salt uint64) (*kernel.Kernel, *tradapter.Driver) {
		name := fmt.Sprintf("%s-%s", spec.Name, role)
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), mixSeed(cfg.Seed, salt))
		k := kernel.New(m)
		st := r.Attach(name)
		drv := tradapter.New(k, st, trCfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	txK, txTR := mkHost("tx", uint64(i)*2+1)
	rxK, rxTR := mkHost("rx", uint64(i)*2+2)

	// Connection ids are a uint8 namespace; population runs can exceed it,
	// and the id only disambiguates packets on the shared ring trace, so
	// wrapping is safe (identical to i+1 for the first 250 streams).
	conn, err := ctmsp.Dial(txK, txTR, rxTR.Station().Addr(), uint8(i%250+1))
	if err != nil {
		return nil, fmt.Errorf("session: stream %d (%s): %w", i, spec.Name, err)
	}

	dev := vca.NewDevice(txK)
	dev.SetPeriod(spec.Interval)
	txCfg := vca.DefaultTxConfig()
	txCfg.DataBytes = spec.PacketBytes - ctmsp.HeaderSize
	txDrv, err := vca.NewTxDriver(txK, dev, conn, txCfg)
	if err != nil {
		return nil, fmt.Errorf("session: stream %d (%s): %w", i, spec.Name, err)
	}
	txDrv.MaxOutstanding = maxOutstanding

	recv := &ctmsp.Receiver{}
	rxDrv := vca.NewRxDriver(rxK, rxTR, recv, vca.DefaultRxConfigB())

	streamBytesPerSec := float64(spec.PacketBytes-ctmsp.HeaderSize) / spec.Interval.Seconds()
	play := playout.New(streamBytesPerSec, cfg.PlayoutPrebuffer)
	play.SetTrace(sched.Trace())
	rxDrv.OnDelivered = func(h ctmsp.Header, at sim.Time, ev ctmsp.Event) {
		if ev == ctmsp.InOrder || ev == ctmsp.Gap {
			play.Deliver(int(h.Length)-ctmsp.HeaderSize, at)
			if lat != nil {
				// Packet n was captured at startAt + (n+1)·Interval (the
				// device's first interrupt fires one period after Start);
				// anything past that is transport plus queueing delay.
				d := at - (startAt + sim.Time(h.PacketNum+1)*spec.Interval)
				if d < 0 {
					d = 0
				}
				lat.Add(d.Microseconds())
			}
		}
	}

	return &stream{idx: i, spec: spec, dev: dev, txDrv: txDrv, recv: recv, play: play, startAt: startAt}, nil
}
