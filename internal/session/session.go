package session

import (
	"fmt"
	"strings"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/playout"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
	"repro/internal/vca"
	"repro/internal/workload"
)

// Defaults for the zero-valued Config knobs.
const (
	// DefaultUtilizationCap leaves ~10% of the wire for token rotation,
	// MAC frames and the jitter the admission budget cannot see.
	DefaultUtilizationCap = 0.90
	// DefaultPurgePenaltyWindow amortizes one purge's outage: each purge
	// subtracts capacity × (PurgeDuration / window) from the budget until
	// the window expires, so a back-to-back burst (a station insertion)
	// stacks into a real capacity loss while a lone purge barely dents it.
	DefaultPurgePenaltyWindow = 250 * sim.Millisecond
	// DefaultPrebuffer is the §6 playout prebuffer.
	DefaultPrebuffer = 40 * sim.Millisecond
	// defaultInsertionPurges is the paper's "on the order of 10"
	// back-to-back purges per station insertion.
	defaultInsertionPurges = 10
	// populationStations matches internal/core's campus-ring population so
	// per-station repeat latency is comparable across runners.
	populationStations = 64
	// maxOutstanding bounds packets a stream may queue in its Token Ring
	// driver: past it the VCA handler drops at the device, which is how a
	// starved stream degrades instead of buffering unboundedly.
	maxOutstanding = 8
)

// StreamSpec describes one CTMSP stream a session wants to run.
type StreamSpec struct {
	// Name labels the stream in results.
	Name string
	// PacketBytes per packet (CTMSP header included), sent every Interval
	// — the same shape as core.Config's single stream.
	PacketBytes int
	Interval    sim.Time
	// Class sets admission priority, shed order and ring access priority.
	Class Class
}

// OfferedBits is the ring bandwidth the stream needs: packet plus Token
// Ring framing, every Interval.
func (s StreamSpec) OfferedBits() int64 {
	wire := s.PacketBytes + tradapter.RingOverhead
	return int64(float64(wire*8) / s.Interval.Seconds())
}

func (s StreamSpec) validate(i int) error {
	switch {
	case s.PacketBytes <= ctmsp.HeaderSize || s.PacketBytes > 4000:
		return fmt.Errorf("session: stream %d (%s): packet size %d out of range", i, s.Name, s.PacketBytes)
	case s.Interval <= 0:
		return fmt.Errorf("session: stream %d (%s): interval must be positive", i, s.Name)
	case s.Class < ClassBackground || s.Class >= numClasses:
		return fmt.Errorf("session: stream %d (%s): unknown class %d", i, s.Name, int(s.Class))
	}
	return nil
}

// Config describes one multi-stream session run.
type Config struct {
	Name     string
	Seed     int64
	Duration sim.Time

	// RingBitRate overrides the 4 Mbit/s ring (0 = the paper's rate).
	RingBitRate int64
	// UtilizationCap is the fraction of the wire admission may promise
	// (0 = DefaultUtilizationCap).
	UtilizationCap float64
	// BackgroundUtil is the offered background load as a fraction of the
	// ring (MAC chatter plus file-transfer frames); the admission budget
	// subtracts it.
	BackgroundUtil float64
	// DisableAdmission runs every stream regardless of budget — the
	// free-for-all ablation E17 compares against. No shedding either.
	DisableAdmission bool
	// ForceInsertionAt injects one station insertion (a burst of
	// back-to-back Ring Purges) at the given offset; zero disables.
	ForceInsertionAt sim.Time
	// PurgePenaltyWindow is how long one purge's capacity penalty lasts
	// (0 = DefaultPurgePenaltyWindow).
	PurgePenaltyWindow sim.Time
	// PlayoutPrebuffer delays each stream's playback after its first
	// packet (0 = DefaultPrebuffer).
	PlayoutPrebuffer sim.Time

	// Trace, when non-nil, is attached to the run's scheduler and receives
	// structured events (admissions, sheds, ring purges, playout glitches)
	// with no formatting cost on the hot path. Leave nil for benchmarked
	// runs.
	Trace *sim.Trace

	Streams []StreamSpec
}

// Validate reports configuration mistakes early.
func (c Config) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("session: duration must be positive")
	case len(c.Streams) == 0:
		return fmt.Errorf("session: no streams")
	case c.UtilizationCap < 0 || c.UtilizationCap > 1:
		return fmt.Errorf("session: utilization cap %v out of [0,1]", c.UtilizationCap)
	case c.BackgroundUtil < 0 || c.BackgroundUtil >= 1:
		return fmt.Errorf("session: background utilization %v out of [0,1)", c.BackgroundUtil)
	}
	for i, s := range c.Streams {
		if err := s.validate(i); err != nil {
			return err
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.RingBitRate == 0 {
		c.RingBitRate = ring.DefaultConfig().BitRate
	}
	if c.UtilizationCap == 0 {
		c.UtilizationCap = DefaultUtilizationCap
	}
	if c.PurgePenaltyWindow == 0 {
		c.PurgePenaltyWindow = DefaultPurgePenaltyWindow
	}
	if c.PlayoutPrebuffer == 0 {
		c.PlayoutPrebuffer = DefaultPrebuffer
	}
	return c
}

// StreamResult is one stream's outcome.
type StreamResult struct {
	Spec     StreamSpec
	Decision Decision

	// Shed reports the stream was admitted but later stopped by the
	// degradation policy; ShedAt is when.
	Shed   bool
	ShedAt sim.Time

	// Stream accounting (admitted streams only).
	Sent       uint64
	Delivered  uint64
	Lost       uint64
	Gaps       uint64
	Duplicates uint64

	// Playout accounting: ActiveTime is how long the stream ran (until
	// shed or end of run), the denominator for the glitch rate.
	Glitches       uint64
	StarvedTime    sim.Time
	MaxBufferBytes int
	ActiveTime     sim.Time
}

// DeliveredFraction reports Delivered/Sent (0 for streams that never ran).
func (r StreamResult) DeliveredFraction() float64 {
	if r.Sent == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Sent)
}

// GlitchesPerMinute normalizes the glitch count to the stream's active
// time, so shed and full-length streams compare fairly.
func (r StreamResult) GlitchesPerMinute() float64 {
	if r.ActiveTime <= 0 {
		return 0
	}
	return float64(r.Glitches) / (r.ActiveTime.Seconds() / 60)
}

// StarvedFraction reports the share of the stream's active time the
// playout buffer spent starved. A stream that cannot win the ring under
// overload starves rather than glitching repeatedly (the buffer empties
// once and stays empty), so this is the honest congestion metric.
func (r StreamResult) StarvedFraction() float64 {
	if r.ActiveTime <= 0 {
		return 0
	}
	return r.StarvedTime.Seconds() / r.ActiveTime.Seconds()
}

// Results is everything one session run produced.
type Results struct {
	Config  Config
	Elapsed sim.Time

	Streams []StreamResult

	Admitted int
	Rejected int
	ShedN    int

	Ring            ring.Counters
	RingUtilization float64
	// ReservedBitsEnd is the bandwidth still reserved when the run ended
	// (admitted minus shed).
	ReservedBitsEnd int64
}

// WorstAdmittedGlitchRate reports the highest glitches/minute among
// streams that were admitted and never shed (0 when none ran).
func (r *Results) WorstAdmittedGlitchRate() float64 {
	worst := 0.0
	for _, s := range r.Streams {
		if !s.Decision.Admitted || s.Shed {
			continue
		}
		if g := s.GlitchesPerMinute(); g > worst {
			worst = g
		}
	}
	return worst
}

// WorstAdmittedStarvedFraction reports the highest starved fraction among
// streams that were admitted and never shed (0 when none ran).
func (r *Results) WorstAdmittedStarvedFraction() float64 {
	worst := 0.0
	for _, s := range r.Streams {
		if !s.Decision.Admitted || s.Shed {
			continue
		}
		if f := s.StarvedFraction(); f > worst {
			worst = f
		}
	}
	return worst
}

// Report renders a human-readable summary.
func (r *Results) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== session %s (%v, seed %d): %d streams, %d admitted, %d rejected, %d shed ===\n",
		r.Config.Name, r.Elapsed, r.Config.Seed, len(r.Streams), r.Admitted, r.Rejected, r.ShedN)
	fmt.Fprintf(&b, "ring: util=%.2f%% reserved=%d bits/s purges=%d insertions=%d purgeLost=%d\n",
		100*r.RingUtilization, r.ReservedBitsEnd, r.Ring.PurgeCount, r.Ring.InsertionSeen, r.Ring.PurgeLost)
	for _, s := range r.Streams {
		switch {
		case !s.Decision.Admitted:
			fmt.Fprintf(&b, "  %-16s %-11s REJECTED: %s\n", s.Spec.Name, s.Spec.Class, s.Decision.Reason)
		case s.Shed:
			fmt.Fprintf(&b, "  %-16s %-11s SHED at %v: sent=%d delivered=%.4f glitches=%d\n",
				s.Spec.Name, s.Spec.Class, s.ShedAt, s.Sent, s.DeliveredFraction(), s.Glitches)
		default:
			fmt.Fprintf(&b, "  %-16s %-11s ok: sent=%d delivered=%.4f lost=%d glitches=%d (%.2f/min) starved=%.1f%% maxbuf=%dB\n",
				s.Spec.Name, s.Spec.Class, s.Sent, s.DeliveredFraction(), s.Lost,
				s.Glitches, s.GlitchesPerMinute(), 100*s.StarvedFraction(), s.MaxBufferBytes)
		}
	}
	return b.String()
}

// stream is one admitted stream's live machinery.
type stream struct {
	idx    int
	spec   StreamSpec
	dev    *vca.Device
	txDrv  *vca.TxDriver
	recv   *ctmsp.Receiver
	play   *playout.Playout
	shed   bool
	shedAt sim.Time
}

// mixSeed derives an independent seed per stream component so nearby
// stream indices get unrelated RNG streams (splitmix64-style finalizer,
// as core.SweepSeed does for sweep points).
func mixSeed(base int64, salt uint64) int64 {
	h := uint64(base) + salt*0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return int64(h)
}

// Run executes the session: admission in spec order, then every admitted
// stream transmits concurrently over one shared ring for cfg.Duration.
// The run is a self-contained deterministic simulation — same Config,
// same Results — so sessions fan out across lab.Pool workers safely.
func Run(cfg Config) (*Results, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	sched := sim.NewScheduler()
	sched.SetTrace(cfg.Trace)
	rng := sim.NewRNG(cfg.Seed)

	ringCfg := ring.DefaultConfig()
	ringCfg.Seed = cfg.Seed
	ringCfg.BitRate = cfg.RingBitRate
	r := ring.New(sched, ringCfg)
	for i := 0; i < populationStations; i++ {
		r.Attach("pop")
	}

	// Background load: a sliver of MAC chatter plus 1522-byte transfer
	// frames making up the rest of the declared utilization.
	var gens []interface{ Stop() }
	backgroundBits := int64(cfg.BackgroundUtil * float64(cfg.RingBitRate))
	if cfg.BackgroundUtil > 0 {
		macUtil := cfg.BackgroundUtil * 0.1
		if macUtil > 0.01 {
			macUtil = 0.01
		}
		mon := r.Attach("monitor")
		gens = append(gens, workload.NewMACGen(r, mon, macUtil, rng.Fork("bg-mac")))
		restUtil := cfg.BackgroundUtil - macUtil
		if restUtil > 0 {
			src, dst := r.Attach("bg-src"), r.Attach("bg-dst")
			frameTime := sim.BitsOnWire(1522, cfg.RingBitRate)
			mean := sim.Scale(frameTime, 1/restUtil)
			gens = append(gens, workload.NewChatterGen(r, src, dst, 1522, 1522, mean, rng.Fork("bg-data")))
		}
	}

	ctrl := NewController(cfg.RingBitRate, cfg.UtilizationCap, backgroundBits)

	results := &Results{Config: cfg, Elapsed: cfg.Duration}
	results.Streams = make([]StreamResult, len(cfg.Streams))
	var live []*stream
	byID := make(map[int]*stream)

	for i, spec := range cfg.Streams {
		bits := spec.OfferedBits()
		var dec Decision
		if cfg.DisableAdmission {
			dec = Decision{Admitted: true, ReservedBits: bits}
		} else {
			dec = ctrl.Admit(i, spec.Class, bits)
		}
		results.Streams[i] = StreamResult{Spec: spec, Decision: dec}
		if !dec.Admitted {
			results.Rejected++
			cfg.Trace.AddEvent(sched.Now(), EvReject, int64(i), bits)
			continue
		}
		results.Admitted++
		cfg.Trace.AddEvent(sched.Now(), EvAdmit, int64(i), dec.ReservedBits)
		r.ReserveBits(bits)
		st, err := buildStream(cfg, i, spec, sched, r)
		if err != nil {
			return nil, err
		}
		live = append(live, st)
		byID[i] = st
	}

	shedStream := func(st *stream, at sim.Time) {
		if st.shed {
			return
		}
		st.shed = true
		st.shedAt = at
		st.dev.Stop()
		ctrl.Release(st.idx)
		r.ReserveBits(-st.spec.OfferedBits())
		cfg.Trace.AddEvent(at, EvShed, int64(st.idx), st.spec.OfferedBits())
	}

	// Graceful degradation: every Ring Purge charges the budget with its
	// outage amortized over the penalty window; when the reservations no
	// longer fit the shrunken capacity, the lowest-class streams are shed
	// — stopped at the source and their reservation released — until the
	// survivors fit again. Shed streams stay shed (no re-admission
	// flapping); a new session must re-apply.
	if !cfg.DisableAdmission {
		penalty := int64(float64(ctrl.EffectiveBits()+backgroundBits) *
			(ringCfg.PurgeDuration.Seconds() / cfg.PurgePenaltyWindow.Seconds()))
		r.OnPurge(func(at sim.Time) {
			ctrl.AddPenalty(penalty)
			sched.After(cfg.PurgePenaltyWindow, "session.penalty-expire", func() {
				ctrl.RemovePenalty(penalty)
			})
			for _, id := range ctrl.Overcommitted() {
				if st := byID[id]; st != nil {
					shedStream(st, at)
				}
			}
		})
	}

	if cfg.ForceInsertionAt > 0 {
		sched.At(cfg.ForceInsertionAt, "session.forced-insertion", func() {
			r.Insertion(defaultInsertionPurges)
		})
	}

	for _, st := range live {
		st.dev.Start()
	}
	sched.RunUntil(cfg.Duration)
	for _, st := range live {
		if !st.shed {
			st.dev.Stop()
		}
	}
	for _, g := range gens {
		g.Stop()
	}

	for _, st := range live {
		res := &results.Streams[st.idx]
		res.Shed = st.shed
		res.ShedAt = st.shedAt
		end := cfg.Duration
		if st.shed {
			// Judge a shed stream on the time it was allowed to run; its
			// post-shed starvation is the policy's doing, not the ring's.
			end = st.shedAt
			results.ShedN++
		}
		res.ActiveTime = end
		tx := st.txDrv.Stats()
		rx := st.recv.Stats()
		res.Sent = tx.PacketsSent
		res.Delivered = rx.InOrder + rx.Gaps
		res.Lost = rx.Lost
		res.Gaps = rx.Gaps
		res.Duplicates = rx.Duplicates
		p := st.play.Finish(end)
		res.Glitches = p.Glitches
		res.StarvedTime = p.StarvedTime
		res.MaxBufferBytes = p.MaxBufferBytes
	}

	results.Ring = r.Counters()
	results.RingUtilization = r.Utilization()
	results.ReservedBitsEnd = r.ReservedBits()
	return results, nil
}

// buildStream attaches one admitted stream to the ring: its own
// transmitter and receiver machines (the paper's RT/PC pair), a CTMSP
// connection with a precomputed ring header, the VCA source interrupting
// every Interval, and the receive path feeding a playout buffer.
func buildStream(cfg Config, i int, spec StreamSpec, sched *sim.Scheduler, r *ring.Ring) (*stream, error) {
	trCfg := tradapter.DefaultConfig()
	trCfg.CTMSPRingPriority = spec.Class.RingPriority()

	mkHost := func(role string, salt uint64) (*kernel.Kernel, *tradapter.Driver) {
		name := fmt.Sprintf("%s-%s", spec.Name, role)
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), mixSeed(cfg.Seed, salt))
		k := kernel.New(m)
		st := r.Attach(name)
		drv := tradapter.New(k, st, trCfg, tradapter.DefaultTiming())
		k.Register(drv)
		return k, drv
	}
	txK, txTR := mkHost("tx", uint64(i)*2+1)
	rxK, rxTR := mkHost("rx", uint64(i)*2+2)

	conn, err := ctmsp.Dial(txK, txTR, rxTR.Station().Addr(), uint8(i+1))
	if err != nil {
		return nil, fmt.Errorf("session: stream %d (%s): %w", i, spec.Name, err)
	}

	dev := vca.NewDevice(txK)
	dev.SetPeriod(spec.Interval)
	txCfg := vca.DefaultTxConfig()
	txCfg.DataBytes = spec.PacketBytes - ctmsp.HeaderSize
	txDrv, err := vca.NewTxDriver(txK, dev, conn, txCfg)
	if err != nil {
		return nil, fmt.Errorf("session: stream %d (%s): %w", i, spec.Name, err)
	}
	txDrv.MaxOutstanding = maxOutstanding

	recv := &ctmsp.Receiver{}
	rxDrv := vca.NewRxDriver(rxK, rxTR, recv, vca.DefaultRxConfigB())

	streamBytesPerSec := float64(spec.PacketBytes-ctmsp.HeaderSize) / spec.Interval.Seconds()
	play := playout.New(streamBytesPerSec, cfg.PlayoutPrebuffer)
	play.SetTrace(sched.Trace())
	rxDrv.OnDelivered = func(h ctmsp.Header, at sim.Time, ev ctmsp.Event) {
		if ev == ctmsp.InOrder || ev == ctmsp.Gap {
			play.Deliver(int(h.Length)-ctmsp.HeaderSize, at)
		}
	}

	return &stream{idx: i, spec: spec, dev: dev, txDrv: txDrv, recv: recv, play: play}, nil
}
