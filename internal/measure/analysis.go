package measure

import "repro/internal/stats"

// HistogramID names the seven histograms of §5.3.
type HistogramID int

const (
	// H1 is the inter-occurrence of VCA Interrupt Request pulses.
	H1InterIRQ HistogramID = iota
	// H2 is the inter-occurrence of VCA handler entries.
	H2InterEntry
	// H3 is the inter-occurrence of pre-transmit points.
	H3InterPreTransmit
	// H4 is the inter-occurrence of receive-classification points.
	H4InterRxClassified
	// H5 is the per-packet delta between IRQ and handler entry.
	H5IRQToEntry
	// H6 is the per-packet delta between handler entry and pre-transmit
	// (Figure 5-2 for Test Case B).
	H6EntryToPreTransmit
	// H7 is the per-packet delta between pre-transmit and
	// receive-classification (Figures 5-3 and 5-4).
	H7TxToRx
	// NumHistograms is the number of defined histograms.
	NumHistograms
)

var histLabels = [NumHistograms]string{
	"H1 inter-occurrence of VCA IRQ pulses",
	"H2 inter-occurrence of VCA handler entry",
	"H3 inter-occurrence of pre-transmit point",
	"H4 inter-occurrence of rx-classified point",
	"H5 VCA IRQ to handler entry",
	"H6 handler entry to pre-transmit (Fig 5-2)",
	"H7 pre-transmit to rx-classified (Figs 5-3/5-4)",
}

// Label returns the histogram's display name.
func (h HistogramID) Label() string { return histLabels[h] }

// InterOccurrence builds a histogram of consecutive deltas of one point's
// samples (histograms 1–4). binWidth is in microseconds.
func InterOccurrence(samples []Sample, binWidth float64, label string) *stats.Histogram {
	h := stats.NewHistogram(binWidth, label)
	for i := 1; i < len(samples); i++ {
		h.Add((samples[i].T - samples[i-1].T).Microseconds())
	}
	return h
}

// matchedDeltaMax bounds a plausible pairing: with 7-bit packet numbers a
// pairing more than this far apart is a wrap artifact, not a measurement.
const matchedDeltaMax = 2e6 // µs

// MatchedDelta builds a histogram of b−a deltas for samples describing
// the same packet (histograms 5–7). Packet numbers may be truncated to 7
// bits by the PC/AT tool, so matching is done on the low 7 bits with a
// sliding window, the way the original analysis programs had to.
func MatchedDelta(a, b []Sample, binWidth float64, label string) *stats.Histogram {
	h := stats.NewHistogram(binWidth, label)
	j := 0
	for _, sa := range a {
		// Advance j to the first b sample at or after sa that matches
		// the 7-bit number.
		k := j
		for k < len(b) && (b[k].T < sa.T || b[k].Num&0x7F != sa.Num&0x7F) {
			k++
			// Give up if we have drifted more than half the 7-bit
			// wrap (≈64 packets) past the candidate window.
			if k-j > 64 {
				k = -1
				break
			}
		}
		if k < 0 || k >= len(b) {
			continue
		}
		if d := (b[k].T - sa.T).Microseconds(); d <= matchedDeltaMax {
			h.Add(d)
			j = k + 1
		}
	}
	return h
}

// HistogramSet holds the seven histograms for one test run.
type HistogramSet struct {
	H [NumHistograms]*stats.Histogram
}

// BuildHistograms assembles all seven §5.3 histograms from a recorder's
// samples. Points the tool cannot see produce empty histograms.
func BuildHistograms(rec Recorder, binWidth float64) *HistogramSet {
	p1 := rec.Samples(P1VCAIRQ)
	p2 := rec.Samples(P2HandlerEntry)
	p3 := rec.Samples(P3PreTransmit)
	p4 := rec.Samples(P4RxClassified)

	hs := &HistogramSet{}
	hs.H[H1InterIRQ] = InterOccurrence(p1, binWidth, histLabels[H1InterIRQ])
	hs.H[H2InterEntry] = InterOccurrence(p2, binWidth, histLabels[H2InterEntry])
	hs.H[H3InterPreTransmit] = InterOccurrence(p3, binWidth, histLabels[H3InterPreTransmit])
	hs.H[H4InterRxClassified] = InterOccurrence(p4, binWidth, histLabels[H4InterRxClassified])
	hs.H[H5IRQToEntry] = MatchedDelta(p1, p2, binWidth, histLabels[H5IRQToEntry])
	hs.H[H6EntryToPreTransmit] = MatchedDelta(p2, p3, binWidth, histLabels[H6EntryToPreTransmit])
	hs.H[H7TxToRx] = MatchedDelta(p3, p4, binWidth, histLabels[H7TxToRx])
	return hs
}

// MultiRecorder fans probe events out to several tools at once, the way
// the paper ran the PC/AT rig and the TAP monitor under one central
// control point.
type MultiRecorder struct {
	Recorders []Recorder
}

// Record implements Recorder.
func (m *MultiRecorder) Record(p Point, num uint32) {
	for _, r := range m.Recorders {
		r.Record(p, num)
	}
}

// Samples implements Recorder by returning the first recorder's samples.
func (m *MultiRecorder) Samples(p Point) []Sample {
	if len(m.Recorders) == 0 {
		return nil
	}
	return m.Recorders[0].Samples(p)
}

var _ Recorder = (*MultiRecorder)(nil)
var _ Recorder = (*LogicAnalyzer)(nil)
var _ Recorder = (*PseudoDev)(nil)
var _ Recorder = (*PCAT)(nil)
