package measure

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/ring"
	"repro/internal/sim"
)

func sampleEntries() []TAPEntry {
	return []TAPEntry{
		{T: 1000, AC: 0x04, FC: 0x40, Kind: ring.LLC, Src: 1, Dst: 2, Len: 2021, Capture: []byte{0xC7, 0x5D, 1, 0}},
		{T: 13000 * sim.Microsecond, AC: 0x07, FC: 0x00, Kind: ring.MAC, MAC: ring.MACRingPurge, Src: 1, Dst: ring.Broadcast, Len: 20},
		{T: 25000 * sim.Microsecond, Kind: ring.LLC, Src: 3, Dst: 2, Len: 1522, Lost: true},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := sampleEntries()
	if err := WriteTrace(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("count: %d vs %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.T != b.T || a.AC != b.AC || a.FC != b.FC || a.Kind != b.Kind ||
			a.MAC != b.MAC || a.Src != b.Src || a.Dst != b.Dst ||
			a.Len != b.Len || a.Lost != b.Lost || !bytes.Equal(a.Capture, b.Capture) {
			t.Fatalf("record %d differs:\n in: %+v\nout: %+v", i, a, b)
		}
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("short"))); err == nil {
		t.Fatal("short header must fail")
	}
	if _, err := ReadTrace(bytes.NewReader(make([]byte, 16))); err == nil {
		t.Fatal("bad magic must fail")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, sampleEntries()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadTrace(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated record must fail")
	}
}

func TestTraceCaptureTruncatedTo96(t *testing.T) {
	big := make([]byte, 200)
	entries := []TAPEntry{{T: 1, Len: 300, Capture: big}}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, entries); err != nil {
		t.Fatal(err)
	}
	out, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0].Capture) != TAPCaptureBytes {
		t.Fatalf("capture should truncate to %d, got %d", TAPCaptureBytes, len(out[0].Capture))
	}
}

func TestAnalyzeTrace(t *testing.T) {
	a := AnalyzeTrace(sampleEntries(), 4_000_000)
	if a.Frames != 3 || a.MACFrames != 1 || a.LostFrames != 1 {
		t.Fatalf("counts: %+v", a)
	}
	if a.SizeClasses["ctmsp(~2000B)"] != 1 || a.SizeClasses["mac(~20B)"] != 1 || a.SizeClasses["filetransfer(~1522B)"] != 1 {
		t.Fatalf("classes: %+v", a.SizeClasses)
	}
	if a.InterArrival == nil || a.InterArrival.N != 2 {
		t.Fatalf("inter-arrival: %+v", a.InterArrival)
	}
	if a.InterArrival.CountOver10ms != 2 {
		t.Fatalf("both gaps exceed 10 ms: %+v", a.InterArrival)
	}
	if a.Utilization <= 0 || a.Utilization > 1 {
		t.Fatalf("utilization: %v", a.Utilization)
	}
	empty := AnalyzeTrace(nil, 4_000_000)
	if empty.Frames != 0 || empty.InterArrival != nil {
		t.Fatal("empty analysis")
	}
}

// Property: any entry list round-trips.
func TestTraceProperty(t *testing.T) {
	f := func(ts []uint32, lens []uint16, caps [][]byte) bool {
		n := len(ts)
		if len(lens) < n {
			n = len(lens)
		}
		if len(caps) < n {
			n = len(caps)
		}
		var in []TAPEntry
		for i := 0; i < n; i++ {
			in = append(in, TAPEntry{
				T:       sim.Time(ts[i]),
				Len:     int(lens[i]),
				Capture: caps[i],
			})
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, in); err != nil {
			return false
		}
		out, err := ReadTrace(&buf)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			wantCap := in[i].Capture
			if len(wantCap) > TAPCaptureBytes {
				wantCap = wantCap[:TAPCaptureBytes]
			}
			if out[i].T != in[i].T || out[i].Len != in[i].Len {
				return false
			}
			if len(wantCap) == 0 && len(out[i].Capture) == 0 {
				continue
			}
			if !bytes.Equal(out[i].Capture, wantCap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
