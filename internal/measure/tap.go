package measure

import (
	"fmt"

	"repro/internal/ring"
	"repro/internal/sim"
)

// TAPCaptureBytes is how much of each packet the monitor records — "the
// first Token Ring adapter's buffer of actual packet data (up to 96
// bytes)".
const TAPCaptureBytes = 96

// TAPEntry is one recorded frame: timestamp, Access Control and Frame
// Control bytes, total length, delivery outcome and the captured prefix.
type TAPEntry struct {
	T       sim.Time
	AC, FC  byte
	Kind    ring.FrameKind
	MAC     ring.MACType
	Src     ring.Addr
	Dst     ring.Addr
	Len     int
	Lost    bool
	Capture []byte
}

// TAPStats is the monitor's aggregate view of the ring.
type TAPStats struct {
	Frames      uint64
	MACFrames   uint64
	DataFrames  uint64
	Bytes       uint64
	LostFrames  uint64
	SizeClasses map[string]uint64
}

// TAP is the ring monitor, equivalent to IBM's Trace and Analysis
// Program: it records every frame on the ring, including MAC frames,
// with time stamps, and supports the ordering/loss analysis the paper
// used it for.
type TAP struct {
	entries []TAPEntry
	max     int
	dropped uint64
}

// NewTAP attaches a monitor to the ring. max bounds the capture buffer
// (the real tool had recording limits too); 0 means 2^20 entries.
func NewTAP(r *ring.Ring, max int) *TAP {
	if max <= 0 {
		max = 1 << 20
	}
	t := &TAP{max: max}
	r.AddTap(func(f *ring.Frame, start, end sim.Time, status ring.DeliveryStatus) {
		if len(t.entries) >= t.max {
			t.dropped++
			return
		}
		cap96 := f.Capture
		if len(cap96) > TAPCaptureBytes {
			cap96 = cap96[:TAPCaptureBytes]
		}
		t.entries = append(t.entries, TAPEntry{
			T:       start,
			AC:      f.AC,
			FC:      f.FC,
			Kind:    f.Kind,
			MAC:     f.MAC,
			Src:     f.Src,
			Dst:     f.Dst,
			Len:     f.Size,
			Lost:    status.PurgeLost,
			Capture: cap96,
		})
	})
	return t
}

// Entries returns the captured frames in wire order.
func (t *TAP) Entries() []TAPEntry { return t.entries }

// Dropped reports frames lost to the capture-buffer limit.
func (t *TAP) Dropped() uint64 { return t.dropped }

// Stats computes aggregate traffic statistics, bucketing frames into the
// paper's three observed size classes: ~20-byte MAC frames, 60–300-byte
// keep-alives, and 1522-byte file-transfer packets.
func (t *TAP) Stats() TAPStats {
	s := TAPStats{SizeClasses: make(map[string]uint64)}
	for _, e := range t.entries {
		s.Frames++
		s.Bytes += uint64(e.Len)
		if e.Lost {
			s.LostFrames++
		}
		if e.Kind == ring.MAC {
			s.MACFrames++
		} else {
			s.DataFrames++
		}
		switch {
		case e.Len <= 30:
			s.SizeClasses["mac(~20B)"]++
		case e.Len <= 320:
			s.SizeClasses["keepalive(60-300B)"]++
		case e.Len <= 1600:
			s.SizeClasses["filetransfer(~1522B)"]++
		default:
			s.SizeClasses["ctmsp(~2000B)"]++
		}
	}
	return s
}

// Utilization reports the fraction of the observation window the ring
// carried frames, given the ring's bit rate.
func (t *TAP) Utilization(bitRate int64, window sim.Time) float64 {
	if window <= 0 {
		return 0
	}
	var busy sim.Time
	for _, e := range t.entries {
		busy += sim.WireTime(e.Len, bitRate)
	}
	return float64(busy) / float64(window)
}

// SequenceCheck scans captured CTMSP frames (recognized by the decoder
// fn, which extracts a packet number from the capture prefix) for
// out-of-order delivery and gaps — the analysis that found the original
// driver's critical-section bug.
func (t *TAP) SequenceCheck(decode func(capture []byte) (uint32, bool)) (outOfOrder, gaps int) {
	have := false
	var prev uint32
	for _, e := range t.entries {
		if e.Lost {
			continue
		}
		num, ok := decode(e.Capture)
		if !ok {
			continue
		}
		if have {
			switch {
			case num == prev+1:
			case num > prev+1:
				gaps++
			default:
				outOfOrder++
			}
		}
		prev, have = num, true
	}
	return outOfOrder, gaps
}

// String summarizes the capture.
func (t *TAP) String() string {
	s := t.Stats()
	return fmt.Sprintf("tap{frames=%d mac=%d data=%d lost=%d}", s.Frames, s.MACFrames, s.DataFrames, s.LostFrames)
}
