package measure

import (
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

func TestLogicAnalyzerExact(t *testing.T) {
	sched := sim.NewScheduler()
	la := NewLogicAnalyzer(sched)
	sched.At(100*sim.Microsecond, "e1", func() { la.Record(P1VCAIRQ, 0) })
	sched.At(12100*sim.Microsecond, "e2", func() { la.Record(P1VCAIRQ, 1) })
	sched.Run()
	s := la.Samples(P1VCAIRQ)
	if len(s) != 2 || s[0].T != 100*sim.Microsecond || s[1].T != 12100*sim.Microsecond {
		t.Fatalf("logic analyzer must be exact: %+v", s)
	}
}

func TestPseudoDevQuantizesAndPerturbs(t *testing.T) {
	sched := sim.NewScheduler()
	m := rtpc.NewMachine(sched, "m", rtpc.DefaultCostModel(), 1)
	k := kernel.New(m)
	pd := NewPseudoDev(k)
	sched.At(300*sim.Microsecond, "e", func() { pd.Record(P2HandlerEntry, 0) })
	sched.Run()
	s := pd.Samples(P2HandlerEntry)
	if len(s) != 1 {
		t.Fatal("sample lost")
	}
	if s[0].T != 244*sim.Microsecond { // floor(300/122)*122
		t.Fatalf("timestamp should quantize to the 122µs clock: %v", s[0].T)
	}
	if k.CPU().Stats().BusyTime != PseudoDevRecordCost {
		t.Fatal("recording must consume measured-machine CPU")
	}
	// The pseudo device cannot see the IRQ line.
	pd.Record(P1VCAIRQ, 0)
	if len(pd.Samples(P1VCAIRQ)) != 0 || pd.Dropped() != 1 {
		t.Fatal("P1 is hardware-only")
	}
	pd.SetEnabled(false)
	pd.Record(P2HandlerEntry, 1)
	if len(pd.Samples(P2HandlerEntry)) != 1 {
		t.Fatal("disabled recorder must not record")
	}
}

func TestPCATErrorBounds(t *testing.T) {
	sched := sim.NewScheduler()
	pcat := NewPCAT(sched, 1)
	pcat.Wire(P1VCAIRQ, 0)
	// A perfect 12 ms source, as §5.2.3's validation test.
	for i := 0; i < 2000; i++ {
		n := uint32(i)
		sched.At(sim.Time(i)*12*sim.Millisecond, "pulse", func() { pcat.Record(P1VCAIRQ, n) })
	}
	// The marker repeater never drains the queue; bound the run.
	sched.RunUntil(2000 * 12 * sim.Millisecond)
	pcat.Stop()
	s := pcat.Samples(P1VCAIRQ)
	if len(s) != 2000 {
		t.Fatalf("want 2000 samples, got %d", len(s))
	}
	// Inter-occurrence must stay within ±(loop worst case) of 12 ms,
	// i.e. the ±120µs total spread the paper measured... which here is
	// bounded by ±52µs of service jitter plus 2µs quantization per edge.
	for i := 1; i < len(s); i++ {
		d := (s[i].T - s[i-1].T).Microseconds()
		if d < 12000-120 || d > 12000+120 {
			t.Fatalf("sample %d: interval %vµs outside the tool's error budget", i, d)
		}
	}
}

func TestPCATRolloverReconstruction(t *testing.T) {
	// Events far apart force multiple 131 ms clock rollovers; the 50 Hz
	// marker must let the decoder reconstruct absolute times.
	sched := sim.NewScheduler()
	pcat := NewPCAT(sched, 2)
	pcat.Wire(P3PreTransmit, 1)
	times := []sim.Time{10 * sim.Millisecond, 500 * sim.Millisecond, 2 * sim.Second, 10 * sim.Second}
	for i, at := range times {
		n := uint32(i)
		sched.At(at, "ev", func() { pcat.Record(P3PreTransmit, n) })
	}
	sched.RunUntil(11 * sim.Second)
	pcat.Stop()
	s := pcat.Samples(P3PreTransmit)
	if len(s) != len(times) {
		t.Fatalf("want %d samples, got %d", len(times), len(s))
	}
	for i, smp := range s {
		err := smp.T - times[i]
		if err < 0 || err > PCATLoopMax+PCATClockTick {
			t.Fatalf("sample %d reconstructed at %v, true time %v (err %v)", i, smp.T, times[i], err)
		}
	}
}

// Property: for any sorted event times with gaps under the marker's
// rollover guarantee, decoding recovers each time within the loop error.
func TestPCATDecodeProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		sched := sim.NewScheduler()
		pcat := NewPCAT(sched, 3)
		pcat.Wire(P4RxClassified, 2)
		at := sim.Time(0)
		var want []sim.Time
		for i, gp := range gaps {
			at += sim.Time(gp) * sim.Microsecond // gaps ≤ 65.5 ms
			want = append(want, at)
			n := uint32(i)
			tt := at
			sched.At(tt, "ev", func() { pcat.Record(P4RxClassified, n) })
		}
		sched.RunUntil(at + 100*sim.Millisecond)
		pcat.Stop()
		s := pcat.Samples(P4RxClassified)
		if len(s) != len(want) {
			return false
		}
		for i := range s {
			err := s[i].T - want[i]
			if err < 0 || err > PCATLoopMax+PCATClockTick+PCATLoopMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPCATDecodeRejectsEmptyMask(t *testing.T) {
	if _, err := DecodePCAT([]PCATRecord{{}}); err == nil {
		t.Fatal("empty mask should be a decode error")
	}
}

func TestMatchedDeltaPairsByPacketNumber(t *testing.T) {
	var a, b []Sample
	for i := 0; i < 200; i++ {
		a = append(a, Sample{Num: uint32(i), T: sim.Time(i) * 12 * sim.Millisecond})
		b = append(b, Sample{Num: uint32(i), T: sim.Time(i)*12*sim.Millisecond + 10700*sim.Microsecond})
	}
	h := MatchedDelta(a, b, 100, "h7")
	if h.N() != 200 {
		t.Fatalf("want 200 matches, got %d", h.N())
	}
	if h.Mean() != 10700 {
		t.Fatalf("delta mean %v", h.Mean())
	}
}

func TestMatchedDeltaSurvives7BitWrap(t *testing.T) {
	// Packet numbers wrap at 128 on the PC/AT channels; matching must
	// still pair correctly past the wrap.
	var a, b []Sample
	for i := 0; i < 300; i++ {
		num := uint32(i % 128)
		a = append(a, Sample{Num: num, T: sim.Time(i) * 12 * sim.Millisecond})
		b = append(b, Sample{Num: num, T: sim.Time(i)*12*sim.Millisecond + 5*sim.Millisecond})
	}
	h := MatchedDelta(a, b, 100, "wrap")
	if h.N() != 300 {
		t.Fatalf("want 300 matches across wraps, got %d", h.N())
	}
}

func TestMatchedDeltaSkipsLostPackets(t *testing.T) {
	var a, b []Sample
	for i := 0; i < 100; i++ {
		a = append(a, Sample{Num: uint32(i), T: sim.Time(i) * 12 * sim.Millisecond})
		if i == 50 {
			continue // packet 50 lost before point b
		}
		b = append(b, Sample{Num: uint32(i), T: sim.Time(i)*12*sim.Millisecond + 5*sim.Millisecond})
	}
	h := MatchedDelta(a, b, 100, "loss")
	if h.N() != 99 {
		t.Fatalf("one lost packet should drop one match: %d", h.N())
	}
	if h.Max() != 5000 {
		t.Fatalf("no mismatched pairs allowed: max=%v", h.Max())
	}
}

func TestInterOccurrence(t *testing.T) {
	var s []Sample
	for i := 0; i < 10; i++ {
		s = append(s, Sample{T: sim.Time(i) * 12 * sim.Millisecond})
	}
	h := InterOccurrence(s, 100, "h1")
	if h.N() != 9 || h.Mean() != 12000 {
		t.Fatalf("inter-occurrence: n=%d mean=%v", h.N(), h.Mean())
	}
}

func TestBuildHistogramsAndMultiRecorder(t *testing.T) {
	sched := sim.NewScheduler()
	la := NewLogicAnalyzer(sched)
	la2 := NewLogicAnalyzer(sched)
	multi := &MultiRecorder{Recorders: []Recorder{la, la2}}
	for i := 0; i < 50; i++ {
		n := uint32(i)
		base := sim.Time(i) * 12 * sim.Millisecond
		sched.At(base, "p1", func() { multi.Record(P1VCAIRQ, n) })
		sched.At(base+40*sim.Microsecond, "p2", func() { multi.Record(P2HandlerEntry, n) })
		sched.At(base+2640*sim.Microsecond, "p3", func() { multi.Record(P3PreTransmit, n) })
		sched.At(base+13380*sim.Microsecond, "p4", func() { multi.Record(P4RxClassified, n) })
	}
	sched.Run()
	hs := BuildHistograms(multi, 100)
	if hs.H[H1InterIRQ].Mean() != 12000 {
		t.Fatalf("H1 mean %v", hs.H[H1InterIRQ].Mean())
	}
	if hs.H[H5IRQToEntry].Mean() != 40 {
		t.Fatalf("H5 mean %v", hs.H[H5IRQToEntry].Mean())
	}
	if hs.H[H6EntryToPreTransmit].Mean() != 2600 {
		t.Fatalf("H6 mean %v", hs.H[H6EntryToPreTransmit].Mean())
	}
	if hs.H[H7TxToRx].Mean() != 10740 {
		t.Fatalf("H7 mean %v", hs.H[H7TxToRx].Mean())
	}
	// The second recorder saw everything too.
	if len(la2.Samples(P4RxClassified)) != 50 {
		t.Fatal("multi-recorder fan-out broken")
	}
	for id := H1InterIRQ; id < NumHistograms; id++ {
		if id.Label() == "" {
			t.Fatal("histogram labels must exist")
		}
	}
}

func TestTAPRecordsAndAnalyzes(t *testing.T) {
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	tap := NewTAP(r, 0)
	a := r.Attach("a")
	b := r.Attach("b")
	// Data frames with an embedded sequence number in the capture.
	for i := 0; i < 5; i++ {
		capture := []byte{byte(i)}
		a.Transmit(ring.NewDataFrame(a.Addr(), b.Addr(), 0, 2000, capture, nil), nil)
	}
	a.Transmit(ring.NewMACFrame(a.Addr(), ring.MACActiveMonitorPresent), nil)
	sched.Run()

	entries := tap.Entries()
	if len(entries) != 6 {
		t.Fatalf("TAP should see 6 frames, got %d", len(entries))
	}
	st := tap.Stats()
	if st.MACFrames != 1 || st.DataFrames != 5 {
		t.Fatalf("TAP stats wrong: %+v", st)
	}
	if st.SizeClasses["mac(~20B)"] != 1 || st.SizeClasses["ctmsp(~2000B)"] != 5 {
		t.Fatalf("size classes: %+v", st.SizeClasses)
	}
	ooo, gaps := tap.SequenceCheck(func(c []byte) (uint32, bool) {
		if len(c) == 0 {
			return 0, false
		}
		return uint32(c[0]), true
	})
	if ooo != 0 || gaps != 0 {
		t.Fatalf("clean run should show no anomalies: ooo=%d gaps=%d", ooo, gaps)
	}
	if u := tap.Utilization(4_000_000, sched.Now()); u <= 0 || u > 1 {
		t.Fatalf("utilization implausible: %v", u)
	}
}

func TestTAPSequenceCheckFindsGap(t *testing.T) {
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	tap := NewTAP(r, 0)
	a := r.Attach("a")
	b := r.Attach("b")
	for _, n := range []byte{0, 1, 3, 4} { // 2 missing
		a.Transmit(ring.NewDataFrame(a.Addr(), b.Addr(), 0, 500, []byte{n}, nil), nil)
	}
	sched.Run()
	_, gaps := tap.SequenceCheck(func(c []byte) (uint32, bool) { return uint32(c[0]), true })
	if gaps != 1 {
		t.Fatalf("want 1 gap, got %d", gaps)
	}
}

func TestTAPCaptureLimit(t *testing.T) {
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	tap := NewTAP(r, 3)
	a := r.Attach("a")
	b := r.Attach("b")
	for i := 0; i < 10; i++ {
		a.Transmit(ring.NewDataFrame(a.Addr(), b.Addr(), 0, 100, nil, nil), nil)
	}
	sched.Run()
	if len(tap.Entries()) != 3 || tap.Dropped() != 7 {
		t.Fatalf("capture limit: %d entries, %d dropped", len(tap.Entries()), tap.Dropped())
	}
}
