package measure

import (
	"repro/internal/kernel"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

// PseudoDevClockGranularity is the RT/PC system clock step the in-kernel
// recorder could read (§5.2.1).
const PseudoDevClockGranularity = 122 * sim.Microsecond

// PseudoDevRecordCost is the CPU time each time-stamping procedure call
// steals from the machine being measured — the interaction that made this
// "a poor method of recording data" but a great debugging aid.
const PseudoDevRecordCost = 18 * sim.Microsecond

// PseudoDev is the pseudo-device-driver recorder of §5.2.1: it runs on
// the machine under test, quantizes timestamps to the 122 µs system
// clock, and perturbs the system by the cost of every recording call.
// It cannot observe the IRQ line (P1) — that point is hardware-only.
type PseudoDev struct {
	k       *kernel.Kernel
	enabled bool
	samples [NumPoints][]Sample
	dropped uint64
}

// NewPseudoDev opens the pseudo device on machine k (the UNIX open call
// that set the enable flag in the driver).
func NewPseudoDev(k *kernel.Kernel) *PseudoDev {
	return &PseudoDev{k: k, enabled: true}
}

// SetEnabled flips the driver's recording flag.
func (d *PseudoDev) SetEnabled(on bool) { d.enabled = on }

// Record implements Recorder: quantized timestamp plus a recording cost
// injected into the measured machine's CPU at interrupt level.
func (d *PseudoDev) Record(p Point, num uint32) {
	if !d.enabled {
		return
	}
	if p == P1VCAIRQ {
		d.dropped++ // software cannot see the IRQ line itself
		return
	}
	now := d.k.Sched().Now()
	quantized := now / PseudoDevClockGranularity * PseudoDevClockGranularity
	d.samples[p] = append(d.samples[p], Sample{Point: p, Num: num, T: quantized})
	// The recording procedure itself runs on the measured CPU.
	d.k.CPU().Submit(kernel.LevelNet, "pseudodev.record",
		[]rtpc.Seg{rtpc.Do("timestamp", PseudoDevRecordCost)}, nil)
}

// Samples implements Recorder.
func (d *PseudoDev) Samples(p Point) []Sample { return d.samples[p] }

// Dropped reports events the tool could not observe.
func (d *PseudoDev) Dropped() uint64 { return d.dropped }
