package measure

import (
	"fmt"

	"repro/internal/sim"
)

// PC/AT tool constants (§5.2.3).
const (
	// PCATClockTick is the resolution of the tool's 16-bit clock.
	PCATClockTick = 2 * sim.Microsecond
	// PCATClockBits is the counter width; it wraps every 131.072 ms.
	PCATClockBits = 16
	// PCATMarkerPeriod is the 50 Hz signal tied to channel 8 that lets
	// the decoder count clock rollovers even across quiet stretches.
	PCATMarkerPeriod = 20 * sim.Millisecond
	// PCATMarkerChannel is the input the marker is wired to.
	PCATMarkerChannel = 7 // zero-based: "the eighth parallel input port"
	// PCATLoopMin and PCATLoopMax bound the interrupt-handler polling
	// loop's service time; the 60 µs worst case is the tool's measured
	// error bound.
	PCATLoopMin = 8 * sim.Microsecond
	PCATLoopMax = 60 * sim.Microsecond
	// PCATChannels is the number of 8-bit parallel inputs.
	PCATChannels = 8
)

// pcatWrap is the clock modulus.
const pcatWrap = 1 << PCATClockBits

// PCATRecord is one queued observation as the second PC/AT saves it to
// disk: which channels had data, the 16-bit clock, and the port values.
type PCATRecord struct {
	Mask    uint8
	Clock16 uint16
	Vals    [PCATChannels]uint8
}

// PCAT models the two-machine PC/AT measurement rig. Instrumented kernel
// code writes a 7-bit value to a channel and toggles the strobe line;
// the tool's polling loop timestamps it with the 2 µs clock after a
// service delay bounded by the loop's execution time.
//
// The tool is external: it costs the measured machines nothing (the
// in-line port write is folded into the instrumented code's existing
// costs), but its own service loop adds up to ±60 µs of timestamp error
// and its clock quantizes to 2 µs — exactly the error budget §5.2.3
// derives.
type PCAT struct {
	sched   *sim.Scheduler
	rng     *sim.RNG
	records []PCATRecord
	lastAt  sim.Time // service times are monotone: the loop reads in order
	marker  *sim.Repeater
	// chanPoint maps channels to measurement points for Recorder use.
	chanPoint [PCATChannels]Point
	wired     [PCATChannels]bool
}

// NewPCAT powers on the rig. The 50 Hz marker starts immediately.
func NewPCAT(sched *sim.Scheduler, seed int64) *PCAT {
	p := &PCAT{sched: sched, rng: sim.NewRNG(seed).Fork("pcat-loop")}
	p.marker = sched.Every(PCATMarkerPeriod, "pcat.marker", func() {
		p.capture(PCATMarkerChannel, 1, 0) // the timer input needs no service delay draw
	})
	return p
}

// Stop halts the marker (end of a measurement run).
func (p *PCAT) Stop() { p.marker.Stop() }

// Wire connects a measurement point to a channel, so the Recorder
// interface can be used directly by the probe hooks.
func (p *PCAT) Wire(point Point, channel int) {
	sim.Checkf(channel >= 0 && channel < PCATChannels && channel != PCATMarkerChannel,
		"channel %d not usable", channel)
	p.chanPoint[channel] = point
	p.wired[channel] = true
}

// Strobe is the instrumented-code entry: the last 7 bits of the packet
// number are written to the channel and the strobe line is toggled. The
// polling loop picks it up after its current iteration completes.
func (p *PCAT) Strobe(channel int, val uint8) {
	sim.Checkf(channel >= 0 && channel < PCATChannels, "bad channel %d", channel)
	delay := p.rng.Uniform(PCATLoopMin, PCATLoopMax)
	p.capture(channel, val&0x7F, delay)
}

func (p *PCAT) capture(channel int, val uint8, delay sim.Time) {
	at := p.sched.Now() + delay
	// The polling loop services strobes strictly in arrival order: a
	// strobe cannot be read before one queued earlier.
	if at < p.lastAt {
		at = p.lastAt
	}
	p.lastAt = at
	ticks := at / PCATClockTick
	rec := PCATRecord{Mask: 1 << channel, Clock16: uint16(ticks % pcatWrap)}
	rec.Vals[channel] = val
	p.records = append(p.records, rec)
}

// Record implements Recorder for a wired point.
func (p *PCAT) Record(point Point, num uint32) {
	for ch := 0; ch < PCATChannels; ch++ {
		if p.wired[ch] && p.chanPoint[ch] == point {
			p.Strobe(ch, uint8(num&0x7F))
			return
		}
	}
}

// Samples implements Recorder by decoding the raw record stream.
func (p *PCAT) Samples(point Point) []Sample {
	decoded, err := DecodePCAT(p.records)
	if err != nil {
		return nil
	}
	var out []Sample
	for ch := 0; ch < PCATChannels; ch++ {
		if !p.wired[ch] || p.chanPoint[ch] != point {
			continue
		}
		for _, ev := range decoded[ch] {
			out = append(out, Sample{Point: point, Num: uint32(ev.Val), T: ev.T})
		}
	}
	return out
}

// Records exposes the raw stream (what the second PC/AT saved to disk).
func (p *PCAT) Records() []PCATRecord { return p.records }

// PCATEvent is one decoded observation with a reconstructed absolute time.
type PCATEvent struct {
	T   sim.Time
	Val uint8
}

// DecodePCAT reconstructs absolute event times from the wrapped 16-bit
// clock stream. The records are in capture order; whenever the clock
// value decreases, a rollover happened. The 50 Hz marker guarantees at
// least one record per 20 ms, so a 131 ms rollover period can never pass
// unobserved — this is exactly why the paper wired the timer to the
// eighth port.
func DecodePCAT(records []PCATRecord) ([PCATChannels][]PCATEvent, error) {
	var out [PCATChannels][]PCATEvent
	var wraps int64
	var prev uint16
	for i, r := range records {
		if i > 0 && r.Clock16 < prev {
			wraps++
		}
		prev = r.Clock16
		abs := sim.Time(wraps*pcatWrap+int64(r.Clock16)) * PCATClockTick
		if r.Mask == 0 {
			return out, fmt.Errorf("measure: record %d has empty mask", i)
		}
		for ch := 0; ch < PCATChannels; ch++ {
			if r.Mask&(1<<ch) != 0 {
				out[ch] = append(out[ch], PCATEvent{T: abs, Val: r.Vals[ch]})
			}
		}
	}
	return out, nil
}
