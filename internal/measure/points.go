// Package measure reproduces the paper's measurement toolchain (§5):
//
//   - a logic analyzer — the zero-overhead ground truth used to validate
//     everything else,
//   - the in-kernel pseudo-device timestamper, whose 122 µs clock and
//     in-system recording cost perturb what it measures,
//   - the purpose-built IBM PC/AT parallel-port tool: eight 8-bit
//     channels, a 2 µs 16-bit wrapping clock, a 50 Hz marker on channel 8
//     so the decoder can count clock rollovers, and a 10–60 µs polling
//     loop whose service time is the tool's measurement error,
//   - the TAP ring monitor recording every frame's control bytes, length
//     and first 96 bytes,
//   - and the analysis that turns recorded samples into the seven
//     histograms of §5.3.
package measure

import (
	"fmt"

	"repro/internal/sim"
)

// Point identifies one of the paper's four measurement points.
type Point int

const (
	// P1VCAIRQ is the VCA adapter's Interrupt Request line edge.
	P1VCAIRQ Point = iota
	// P2HandlerEntry is entry into the VCA's interrupt handler.
	P2HandlerEntry
	// P3PreTransmit is immediately after the packet is copied into the
	// fixed DMA buffer, immediately before the transmit command.
	P3PreTransmit
	// P4RxClassified is immediately after the received packet is
	// determined to be a CTMSP packet.
	P4RxClassified
	// NumPoints is the number of measurement points.
	NumPoints
)

func (p Point) String() string {
	switch p {
	case P1VCAIRQ:
		return "P1:vca-irq"
	case P2HandlerEntry:
		return "P2:handler-entry"
	case P3PreTransmit:
		return "P3:pre-transmit"
	case P4RxClassified:
		return "P4:rx-classified"
	}
	return fmt.Sprintf("Point(%d)", int(p))
}

// Sample is one recorded event: a point, the packet (or tick) number it
// belongs to, and a timestamp whose accuracy depends on the tool that
// recorded it.
type Sample struct {
	Point Point
	Num   uint32
	T     sim.Time
}

// Recorder is anything that can be attached to the probe hooks.
type Recorder interface {
	Record(p Point, num uint32)
	// Samples returns everything recorded for a point, in record order.
	Samples(p Point) []Sample
}
