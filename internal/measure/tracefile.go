package measure

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/ring"
	"repro/internal/sim"
)

// TAP trace file format — the moral equivalent of the recordings IBM's
// Trace and Performance program saved for later examination [IBM90]:
//
//	header:  magic "CTAP"(4) version(2) reserved(2)
//	record:  t(8) ac(1) fc(1) kind(1) mac(1) src(2) dst(2) len(4)
//	         flags(1) capLen(1) capture(capLen)
//
// All integers big-endian. Timestamps are nanoseconds of simulated time.
const (
	tapMagic   = 0x43544150 // "CTAP"
	tapVersion = 1
)

const flagLost = 0x01

// WriteTrace serializes a capture to w.
func WriteTrace(w io.Writer, entries []TAPEntry) error {
	bw := bufio.NewWriter(w)
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], tapMagic)
	binary.BigEndian.PutUint16(hdr[4:], tapVersion)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for i, e := range entries {
		capture := e.Capture
		if len(capture) > TAPCaptureBytes {
			capture = capture[:TAPCaptureBytes]
		}
		var rec [21]byte
		binary.BigEndian.PutUint64(rec[0:], uint64(e.T))
		rec[8] = e.AC
		rec[9] = e.FC
		rec[10] = uint8(e.Kind)
		rec[11] = uint8(e.MAC)
		binary.BigEndian.PutUint16(rec[12:], uint16(e.Src))
		binary.BigEndian.PutUint16(rec[14:], uint16(e.Dst))
		binary.BigEndian.PutUint32(rec[16:], uint32(e.Len))
		if e.Lost {
			rec[20] |= flagLost
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
		if err := bw.WriteByte(uint8(len(capture))); err != nil {
			return err
		}
		if _, err := bw.Write(capture); err != nil {
			return fmt.Errorf("measure: record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace parses a capture written by WriteTrace.
func ReadTrace(r io.Reader) ([]TAPEntry, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("measure: trace header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[0:]) != tapMagic {
		return nil, fmt.Errorf("measure: not a CTAP trace")
	}
	if v := binary.BigEndian.Uint16(hdr[4:]); v != tapVersion {
		return nil, fmt.Errorf("measure: unsupported trace version %d", v)
	}
	var out []TAPEntry
	for {
		var rec [21]byte
		if _, err := io.ReadFull(br, rec[:]); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("measure: record %d: %w", len(out), err)
		}
		e := TAPEntry{
			T:    sim.Time(binary.BigEndian.Uint64(rec[0:])),
			AC:   rec[8],
			FC:   rec[9],
			Kind: ring.FrameKind(rec[10]),
			MAC:  ring.MACType(rec[11]),
			Src:  ring.Addr(binary.BigEndian.Uint16(rec[12:])),
			Dst:  ring.Addr(binary.BigEndian.Uint16(rec[14:])),
			Len:  int(binary.BigEndian.Uint32(rec[16:])),
			Lost: rec[20]&flagLost != 0,
		}
		capLen, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("measure: record %d capture length: %w", len(out), err)
		}
		if capLen > 0 {
			e.Capture = make([]byte, capLen)
			if _, err := io.ReadFull(br, e.Capture); err != nil {
				return nil, fmt.Errorf("measure: record %d capture: %w", len(out), err)
			}
		}
		out = append(out, e)
	}
}

// TraceAnalysis is the offline summary of a recorded trace.
type TraceAnalysis struct {
	Frames       int
	Span         sim.Time
	Utilization  float64 // of a 4 Mbit ring
	MACFrames    int
	LostFrames   int
	SizeClasses  map[string]int
	InterArrival *Histo
}

// Histo avoids an import cycle by summarizing inline.
type Histo struct {
	N              int
	MeanMicros     float64
	MaxMicros      float64
	P99Micros      float64
	CountOver10ms  int
	CountOver100ms int
}

// AnalyzeTrace computes the offline summary the TAP operators read.
func AnalyzeTrace(entries []TAPEntry, bitRate int64) TraceAnalysis {
	a := TraceAnalysis{SizeClasses: make(map[string]int)}
	a.Frames = len(entries)
	if len(entries) == 0 {
		return a
	}
	var busy sim.Time
	var deltas []float64
	for i, e := range entries {
		busy += sim.WireTime(e.Len, bitRate)
		if e.Kind == ring.MAC {
			a.MACFrames++
		}
		if e.Lost {
			a.LostFrames++
		}
		switch {
		case e.Len <= 30:
			a.SizeClasses["mac(~20B)"]++
		case e.Len <= 320:
			a.SizeClasses["keepalive(60-300B)"]++
		case e.Len <= 1600:
			a.SizeClasses["filetransfer(~1522B)"]++
		default:
			a.SizeClasses["ctmsp(~2000B)"]++
		}
		if i > 0 {
			deltas = append(deltas, (e.T - entries[i-1].T).Microseconds())
		}
	}
	a.Span = entries[len(entries)-1].T - entries[0].T
	if a.Span > 0 {
		a.Utilization = float64(busy) / float64(a.Span)
	}
	if len(deltas) > 0 {
		h := &Histo{N: len(deltas)}
		var sum float64
		for _, d := range deltas {
			sum += d
			if d > h.MaxMicros {
				h.MaxMicros = d
			}
			if d > 10_000 {
				h.CountOver10ms++
			}
			if d > 100_000 {
				h.CountOver100ms++
			}
		}
		h.MeanMicros = sum / float64(len(deltas))
		sorted := append([]float64{}, deltas...)
		sort.Float64s(sorted)
		h.P99Micros = sorted[len(sorted)*99/100]
		a.InterArrival = h
	}
	return a
}
