package measure

import "repro/internal/sim"

// LogicAnalyzer records events with perfect timestamps and zero system
// perturbation — the ground truth. The paper used one to prove the VCA's
// interrupt source was solid (±500 ns) and to bound the PC/AT tool's
// polling-loop error (§5.2.2, §5.2.3).
type LogicAnalyzer struct {
	sched   *sim.Scheduler
	samples [NumPoints][]Sample
}

// NewLogicAnalyzer creates an analyzer on the given clock.
func NewLogicAnalyzer(sched *sim.Scheduler) *LogicAnalyzer {
	return &LogicAnalyzer{sched: sched}
}

// Record implements Recorder with an exact timestamp.
func (l *LogicAnalyzer) Record(p Point, num uint32) {
	l.samples[p] = append(l.samples[p], Sample{Point: p, Num: num, T: l.sched.Now()})
}

// Samples implements Recorder.
func (l *LogicAnalyzer) Samples(p Point) []Sample { return l.samples[p] }
