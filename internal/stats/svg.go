package stats

import (
	"fmt"
	"math"
	"strings"
)

// SVGOptions controls figure rendering.
type SVGOptions struct {
	Width, Height int
	// ClipHi sends samples above this (µs) to an annotated overflow note.
	ClipHi float64
	// LogY uses a log-scaled count axis, which is how the tails of the
	// paper's figures stay visible.
	LogY bool
	// Title overrides the histogram label.
	Title string
}

// SVG renders the histogram as a standalone SVG document in the style of
// the paper's figures: counts against microseconds.
func (h *Histogram) SVG(opts SVGOptions) string {
	if opts.Width <= 0 {
		opts.Width = 720
	}
	if opts.Height <= 0 {
		opts.Height = 400
	}
	title := opts.Title
	if title == "" {
		title = h.Label
	}

	const (
		padL = 70
		padR = 20
		padT = 40
		padB = 50
	)
	plotW := float64(opts.Width - padL - padR)
	plotH := float64(opts.Height - padT - padB)

	bins := h.Bins()
	var overflow uint64
	if opts.ClipHi > 0 {
		kept := bins[:0]
		for _, b := range bins {
			if b.Lo >= opts.ClipHi {
				overflow += b.Count
				continue
			}
			kept = append(kept, b)
		}
		bins = kept
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		opts.Width, opts.Height, opts.Width, opts.Height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-family="sans-serif" font-size="15">%s</text>`,
		padL, xmlEscape(title))

	if len(bins) == 0 {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="13">(no samples)</text>`,
			padL, padT+30)
		sb.WriteString(`</svg>`)
		return sb.String()
	}

	lo, hi := bins[0].Lo, bins[len(bins)-1].Hi
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var peak uint64 = 1
	for _, b := range bins {
		if b.Count > peak {
			peak = b.Count
		}
	}
	yOf := func(count uint64) float64 {
		if count == 0 {
			return 0
		}
		if !opts.LogY {
			return float64(count) / float64(peak)
		}
		return math.Log1p(float64(count)) / math.Log1p(float64(peak))
	}

	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		padL, opts.Height-padB, opts.Width-padR, opts.Height-padB)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		padL, padT, padL, opts.Height-padB)

	// X ticks: ~6 round values.
	step := niceStep(span / 6)
	for x := math.Ceil(lo/step) * step; x <= hi; x += step {
		px := padL + int((x-lo)/span*plotW)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
			px, opts.Height-padB, px, opts.Height-padB+5)
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%.0f</text>`,
			px, opts.Height-padB+18, x)
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">microseconds</text>`,
		padL+int(plotW/2), opts.Height-10)

	// Y axis label.
	fmt.Fprintf(&sb, `<text x="16" y="%d" font-family="sans-serif" font-size="12" transform="rotate(-90 16 %d)">count%s</text>`,
		padT+int(plotH/2), padT+int(plotH/2), map[bool]string{true: " (log)", false: ""}[opts.LogY])

	// Bars.
	for _, b := range bins {
		if b.Count == 0 {
			continue
		}
		x0 := padL + int((b.Lo-lo)/span*plotW)
		x1 := padL + int((b.Hi-lo)/span*plotW)
		w := x1 - x0
		if w < 1 {
			w = 1
		}
		bh := int(yOf(b.Count) * plotH)
		if bh < 1 {
			bh = 1
		}
		fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%d" height="%d" fill="#4477aa"><title>[%.0f, %.0f) µs: %d</title></rect>`,
			x0, opts.Height-padB-bh, w, bh, b.Lo, b.Hi, b.Count)
	}

	// Stats annotation.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="end">n=%d mean=%.0f sd=%.0f min=%.0f max=%.0f</text>`,
		opts.Width-padR, padT-8, h.N(), h.Mean(), h.Stddev(), h.Min(), h.Max())
	if overflow > 0 {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="end">+%d samples &gt; %.0f µs</text>`,
			opts.Width-padR, padT+8, overflow, opts.ClipHi)
	}
	sb.WriteString(`</svg>`)
	return sb.String()
}

// niceStep rounds a raw step to 1/2/5 × 10^k.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
