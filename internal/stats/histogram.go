package stats

import (
	"fmt"
	"sort"
)

// Histogram collects samples into fixed-width bins and also retains the raw
// samples so exact quantiles and fraction-within-range queries (the form in
// which the paper states every result) can be answered.
type Histogram struct {
	BinWidth float64 // bin width in microseconds
	Label    string
	bins     map[int64]uint64
	samples  []float64
	sorted   bool
	Summary
}

// NewHistogram returns a histogram with the given bin width (µs) and label.
func NewHistogram(binWidth float64, label string) *Histogram {
	if binWidth <= 0 {
		panic("stats: histogram bin width must be positive")
	}
	return &Histogram{BinWidth: binWidth, Label: label, bins: make(map[int64]uint64)}
}

// Add incorporates one sample (microseconds).
func (h *Histogram) Add(x float64) {
	h.Summary.Add(x)
	h.bins[h.binOf(x)]++
	h.samples = append(h.samples, x)
	h.sorted = false
}

func (h *Histogram) binOf(x float64) int64 {
	b := int64(x / h.BinWidth)
	if x < 0 && float64(b)*h.BinWidth != x {
		b-- // floor for negatives
	}
	return b
}

// Bin describes one non-empty histogram bin.
type Bin struct {
	Lo, Hi float64
	Count  uint64
}

// Bins returns the non-empty bins in ascending order.
func (h *Histogram) Bins() []Bin {
	keys := make([]int64, 0, len(h.bins))
	for k := range h.bins { //ctmsvet:allow determinism keys are sorted immediately below, so output order is independent of map iteration order
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Bin, len(keys))
	for i, k := range keys {
		out[i] = Bin{Lo: float64(k) * h.BinWidth, Hi: float64(k+1) * h.BinWidth, Count: h.bins[k]}
	}
	return out
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest rank.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	i := int(q * float64(len(h.samples)))
	if i >= len(h.samples) {
		i = len(h.samples) - 1
	}
	return h.samples[i]
}

// FractionWithin reports the fraction of samples x with lo ≤ x ≤ hi.
// The paper states its results in exactly this form ("68% of the data
// points fall within 500 µs of 2600 µs").
func (h *Histogram) FractionWithin(lo, hi float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	i := sort.SearchFloat64s(h.samples, lo)
	j := sort.Search(len(h.samples), func(k int) bool { return h.samples[k] > hi })
	return float64(j-i) / float64(len(h.samples))
}

// FractionNear reports the fraction of samples within ±tol of center.
func (h *Histogram) FractionNear(center, tol float64) float64 {
	return h.FractionWithin(center-tol, center+tol)
}

// CountWithin reports how many samples fall in [lo, hi].
func (h *Histogram) CountWithin(lo, hi float64) uint64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	i := sort.SearchFloat64s(h.samples, lo)
	j := sort.Search(len(h.samples), func(k int) bool { return h.samples[k] > hi })
	return uint64(j - i)
}

// Mode returns the midpoint of the fullest bin — the "peak" the paper
// describes on each figure.
func (h *Histogram) Mode() float64 {
	var best int64
	var bestCount uint64
	first := true
	for k, c := range h.bins {
		if c > bestCount || (c == bestCount && (first || k < best)) {
			best, bestCount = k, c
			first = false
		}
	}
	if bestCount == 0 {
		return 0
	}
	return (float64(best) + 0.5) * h.BinWidth
}

// Peaks returns the midpoints of local maxima among bins holding at least
// minFrac of all samples, in ascending position order. It is how tests
// assert the bimodality of Figure 5-2.
func (h *Histogram) Peaks(minFrac float64) []float64 {
	bins := h.Bins()
	if len(bins) == 0 {
		return nil
	}
	total := float64(h.N())
	var peaks []float64
	for i, b := range bins {
		if float64(b.Count)/total < minFrac {
			continue
		}
		leftSmaller := i == 0 || bins[i-1].Count <= b.Count || bins[i-1].Lo != b.Lo-h.BinWidth
		rightSmaller := i == len(bins)-1 || bins[i+1].Count <= b.Count || bins[i+1].Lo != b.Hi
		if leftSmaller && rightSmaller {
			peaks = append(peaks, (b.Lo+b.Hi)/2)
		}
	}
	return coalescePeaks(peaks, 3*h.BinWidth)
}

// coalescePeaks merges peaks closer than minGap, keeping the first.
func coalescePeaks(peaks []float64, minGap float64) []float64 {
	var out []float64
	for _, p := range peaks {
		if len(out) > 0 && p-out[len(out)-1] < minGap {
			continue
		}
		out = append(out, p)
	}
	return out
}

// Samples returns a copy of the raw samples in insertion order is NOT
// guaranteed; they may have been sorted by a quantile query.
func (h *Histogram) Samples() []float64 {
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s: %s mode=%.0fµs", h.Label, h.Summary.String(), h.Mode())
}
