package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N: got %d", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-9) {
		t.Fatalf("mean: got %v", s.Mean())
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if !almostEq(s.Stddev(), math.Sqrt(32.0/7.0), 1e-9) {
		t.Fatalf("stddev: got %v", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max: got %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Mean() != 42 || s.Stddev() != 0 || s.Min() != 42 || s.Max() != 42 {
		t.Fatalf("single sample: %s", s.String())
	}
}

func TestSummaryMerge(t *testing.T) {
	var a, b, all Summary
	xs := []float64{1, 5, 2, 8, 3, 9, 4, 4, 7, 6}
	for i, x := range xs {
		all.Add(x)
		if i < 4 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merge N: got %d want %d", a.N(), all.N())
	}
	if !almostEq(a.Mean(), all.Mean(), 1e-9) || !almostEq(a.Var(), all.Var(), 1e-9) {
		t.Fatalf("merge stats diverge: %v/%v vs %v/%v", a.Mean(), a.Var(), all.Mean(), all.Var())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merge min/max wrong")
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	var a, b Summary
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed stats")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatal("merge into empty should copy")
	}
}

// Property: Merge(a, b) equals adding all samples to one summary.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(xs, ys []float32) bool {
		var a, b, all Summary
		for _, x := range xs {
			a.Add(float64(x))
			all.Add(float64(x))
		}
		for _, y := range ys {
			b.Add(float64(y))
			all.Add(float64(y))
		}
		a.Merge(&b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return almostEq(a.Mean(), all.Mean(), 1e-6*scale) &&
			almostEq(a.Var(), all.Var(), 1e-4*math.Max(1, all.Var()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean is always within [min, max].
func TestSummaryMeanBoundsProperty(t *testing.T) {
	f := func(xs []float32) bool {
		if len(xs) == 0 {
			return true
		}
		var s Summary
		for _, x := range xs {
			s.Add(float64(x))
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
