package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(100, "test")
	for _, x := range []float64{0, 50, 99.9, 100, 150, 250} {
		h.Add(x)
	}
	bins := h.Bins()
	if len(bins) != 3 {
		t.Fatalf("want 3 bins, got %d: %+v", len(bins), bins)
	}
	if bins[0].Count != 3 || bins[1].Count != 2 || bins[2].Count != 1 {
		t.Fatalf("bin counts wrong: %+v", bins)
	}
	if bins[0].Lo != 0 || bins[0].Hi != 100 {
		t.Fatalf("bin bounds wrong: %+v", bins[0])
	}
}

func TestHistogramNegativeValues(t *testing.T) {
	h := NewHistogram(10, "neg")
	h.Add(-5)
	h.Add(-15)
	bins := h.Bins()
	if len(bins) != 2 {
		t.Fatalf("want 2 bins, got %+v", bins)
	}
	if bins[0].Lo != -20 || bins[1].Lo != -10 {
		t.Fatalf("negative binning must floor: %+v", bins)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, "q")
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if q := h.Quantile(0.5); q < 50 || q > 52 {
		t.Fatalf("median: got %v", q)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Fatalf("extreme quantiles: %v, %v", h.Quantile(0), h.Quantile(1))
	}
}

func TestFractionWithin(t *testing.T) {
	h := NewHistogram(100, "f")
	// 68 samples at 2600, 15 at 9400, 17 spread between — the Figure 5-2 shape.
	for i := 0; i < 68; i++ {
		h.Add(2600)
	}
	for i := 0; i < 15; i++ {
		h.Add(9400)
	}
	for i := 0; i < 17; i++ {
		h.Add(3200 + float64(i)*330)
	}
	if f := h.FractionNear(2600, 500); !almostEq(f, 0.68, 0.001) {
		t.Fatalf("fraction near 2600: got %v", f)
	}
	if f := h.FractionNear(9400, 500); f < 0.15 {
		t.Fatalf("fraction near 9400: got %v", f)
	}
	if got := h.CountWithin(9400, 9400); got != 15 {
		t.Fatalf("CountWithin exact: got %d", got)
	}
}

func TestHistogramPeaksBimodal(t *testing.T) {
	h := NewHistogram(200, "bimodal")
	for i := 0; i < 680; i++ {
		h.Add(2600 + float64(i%5)*10)
	}
	for i := 0; i < 150; i++ {
		h.Add(9400 + float64(i%5)*10)
	}
	for i := 0; i < 165; i++ {
		h.Add(3000 + float64(i)*38) // thin spread between
	}
	peaks := h.Peaks(0.02)
	if len(peaks) < 2 {
		t.Fatalf("bimodal histogram should show ≥2 peaks, got %v", peaks)
	}
	if peaks[0] > 3200 || peaks[len(peaks)-1] < 9000 {
		t.Fatalf("peaks misplaced: %v", peaks)
	}
}

func TestHistogramMode(t *testing.T) {
	h := NewHistogram(10, "m")
	for i := 0; i < 5; i++ {
		h.Add(105)
	}
	h.Add(55)
	if m := h.Mode(); m != 105 {
		t.Fatalf("mode: got %v", m)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(100, "render")
	for i := 0; i < 100; i++ {
		h.Add(float64(i * 17 % 1000))
	}
	out := h.Render(RenderOptions{Width: 30})
	if !strings.Contains(out, "render") || !strings.Contains(out, "#") {
		t.Fatalf("render output malformed:\n%s", out)
	}
	// Log-scale rendering must also work and show every non-empty row.
	out = h.Render(RenderOptions{Width: 30, LogScale: true})
	if !strings.Contains(out, "#") {
		t.Fatal("log-scale render empty")
	}
}

func TestHistogramRenderClip(t *testing.T) {
	h := NewHistogram(100, "clip")
	for i := 0; i < 50; i++ {
		h.Add(100)
	}
	h.Add(125000) // a 120-130 ms outlier
	out := h.Render(RenderOptions{Width: 30, ClipHi: 20000})
	if !strings.Contains(out, "> 20000") {
		t.Fatalf("overflow row missing:\n%s", out)
	}
	if strings.Count(out, "\n") > 10 {
		t.Fatalf("clipping should keep output small:\n%s", out)
	}
}

func TestHistogramRenderEmpty(t *testing.T) {
	h := NewHistogram(10, "empty")
	if !strings.Contains(h.Render(RenderOptions{}), "no samples") {
		t.Fatal("empty render should say so")
	}
}

// Property: bin counts always sum to N, and every sample lands in the bin
// covering it.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(xs []float32) bool {
		h := NewHistogram(50, "p")
		for _, x := range xs {
			h.Add(float64(x))
		}
		var total uint64
		for _, b := range h.Bins() {
			total += b.Count
		}
		return total == h.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: FractionWithin over the full range is 1; quantiles are ordered.
func TestHistogramFractionProperty(t *testing.T) {
	f := func(xs []float32) bool {
		if len(xs) == 0 {
			return true
		}
		h := NewHistogram(25, "p2")
		for _, x := range xs {
			h.Add(float64(x))
		}
		if !almostEq(h.FractionWithin(h.Min(), h.Max()), 1, 1e-12) {
			return false
		}
		return h.Quantile(0.25) <= h.Quantile(0.5) && h.Quantile(0.5) <= h.Quantile(0.95)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
