// Package stats provides the statistics the paper reports for each
// measurement: histograms with fixed-width bins, running mean and standard
// deviation, quantiles, fraction-within-range queries, and an ASCII
// renderer that draws the figures.
//
// All values are float64 microseconds by convention, matching the units
// used throughout the paper's section 5.
package stats

import (
	"fmt"
	"math"
)

// Summary accumulates running statistics using Welford's algorithm, which
// is numerically stable over the hundreds of thousands of samples a
// 117-minute run produces.
type Summary struct {
	n          uint64
	mean, m2   float64
	min, max   float64
	haveSample bool
}

// Add incorporates one sample.
func (s *Summary) Add(x float64) {
	s.n++
	if !s.haveSample {
		s.min, s.max = x, x
		s.haveSample = true
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N reports the number of samples.
func (s *Summary) N() uint64 { return s.n }

// Mean reports the sample mean, or 0 with no samples.
func (s *Summary) Mean() float64 { return s.mean }

// Var reports the sample variance (n-1 denominator).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev reports the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min reports the smallest sample, or 0 with no samples.
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest sample, or 0 with no samples.
func (s *Summary) Max() float64 { return s.max }

// Merge folds other into s, as if every sample of other had been added.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	tot := n1 + n2
	s.mean += d * n2 / tot
	s.m2 += other.m2 + d*d*n1*n2/tot
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// String renders the summary compactly in microseconds.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs sd=%.1fµs min=%.1fµs max=%.1fµs",
		s.n, s.Mean(), s.Stddev(), s.Min(), s.Max())
}
