package stats

import (
	"fmt"
	"strings"
)

// RenderOptions controls ASCII histogram rendering.
type RenderOptions struct {
	Width    int     // bar width in characters (default 60)
	MaxBins  int     // coalesce to at most this many rows (default 40)
	ClipHi   float64 // samples above this go to an overflow row (0 = none)
	LogScale bool    // scale bars by log count, which makes tails visible
}

// Render draws the histogram as rows of '#' bars, in the spirit of the
// paper's Figures 5-2 through 5-4.
func (h *Histogram) Render(opts RenderOptions) string {
	if opts.Width <= 0 {
		opts.Width = 60
	}
	if opts.MaxBins <= 0 {
		opts.MaxBins = 40
	}
	bins := h.Bins()
	if len(bins) == 0 {
		return h.Label + ": (no samples)\n"
	}

	var overflow uint64
	if opts.ClipHi > 0 {
		kept := bins[:0]
		for _, b := range bins {
			if b.Lo >= opts.ClipHi {
				overflow += b.Count
				continue
			}
			kept = append(kept, b)
		}
		bins = kept
	}
	if len(bins) == 0 {
		return fmt.Sprintf("%s: all %d samples above clip %.0fµs\n", h.Label, overflow, opts.ClipHi)
	}

	// Coalesce adjacent bins so the rendering fits in MaxBins rows.
	lo, hi := bins[0].Lo, bins[len(bins)-1].Hi
	span := hi - lo
	rowWidth := h.BinWidth
	for span/rowWidth > float64(opts.MaxBins) {
		rowWidth *= 2
	}
	nRows := int(span/rowWidth) + 1
	rows := make([]uint64, nRows)
	for _, b := range bins {
		i := int((b.Lo - lo) / rowWidth)
		if i >= nRows {
			i = nRows - 1
		}
		rows[i] += b.Count
	}

	var peak uint64
	for _, c := range rows {
		if c > peak {
			peak = c
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (n=%d, mean=%.0fµs, sd=%.0fµs, min=%.0fµs, max=%.0fµs)\n",
		h.Label, h.N(), h.Mean(), h.Stddev(), h.Min(), h.Max())
	for i, c := range rows {
		rlo := lo + float64(i)*rowWidth
		bar := barLen(c, peak, opts.Width, opts.LogScale)
		fmt.Fprintf(&sb, "%10.0f µs |%-*s| %d\n", rlo, opts.Width, strings.Repeat("#", bar), c)
	}
	if overflow > 0 {
		fmt.Fprintf(&sb, "%10s    > %.0f µs: %d samples\n", "", opts.ClipHi, overflow)
	}
	return sb.String()
}

func barLen(c, peak uint64, width int, logScale bool) int {
	if c == 0 || peak == 0 {
		return 0
	}
	if !logScale {
		n := int(float64(c) / float64(peak) * float64(width))
		if n == 0 {
			n = 1 // never hide a non-empty row
		}
		return n
	}
	// log scale: 1 sample = 1 char, peak = full width
	lp := log2u(peak)
	if lp == 0 {
		return width
	}
	n := int(float64(log2u(c)) / float64(lp) * float64(width))
	if n == 0 {
		n = 1
	}
	return n
}

func log2u(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
