package stats

import (
	"strings"
	"testing"
)

func TestSVGWellFormed(t *testing.T) {
	h := NewHistogram(100, "Figure 5-3 <test> & more")
	for i := 0; i < 1000; i++ {
		h.Add(10740 + float64(i%40)*10)
	}
	h.Add(125000) // outlier beyond the clip
	svg := h.SVG(SVGOptions{ClipHi: 45000, LogY: true})
	for _, want := range []string{
		"<svg", "</svg>", "microseconds", "count (log)",
		"&lt;test&gt; &amp; more", // title escaped
		"+1 samples",              // overflow note
		"<rect",
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(svg, "<svg") != 1 || strings.Count(svg, "</svg>") != 1 {
		t.Fatal("malformed document")
	}
	// No raw unescaped angle brackets from the title.
	if strings.Contains(svg, "<test>") {
		t.Fatal("title not escaped")
	}
}

func TestSVGEmptyHistogram(t *testing.T) {
	h := NewHistogram(10, "empty")
	svg := h.SVG(SVGOptions{})
	if !strings.Contains(svg, "no samples") {
		t.Fatal("empty histogram should say so")
	}
}

func TestSVGLinearScale(t *testing.T) {
	h := NewHistogram(10, "linear")
	h.Add(100)
	h.Add(100)
	h.Add(200)
	svg := h.SVG(SVGOptions{LogY: false})
	if strings.Contains(svg, "count (log)") {
		t.Fatal("linear scale mislabelled")
	}
	if !strings.Contains(svg, "<rect") {
		t.Fatal("bars missing")
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		0.7:  1,
		1.5:  2,
		3:    5,
		7:    10,
		230:  500,
		1100: 2000,
	}
	for in, want := range cases {
		if got := niceStep(in); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", in, got, want)
		}
	}
	if niceStep(0) != 1 {
		t.Error("zero input")
	}
}
