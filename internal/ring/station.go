package ring

import "repro/internal/sim"

// Station is one adapter's attachment to the ring.
type Station struct {
	ring           *Ring
	addr           Addr
	name           string
	inserted       bool
	receive        func(*Frame, sim.Time)
	promiscuousMAC bool
	copyGate       func() bool
}

// Addr reports the station's ring address.
func (s *Station) Addr() Addr { return s.addr }

// Name reports the diagnostic name given at Attach.
func (s *Station) Name() string { return s.name }

// Inserted reports whether the station is currently part of the ring.
func (s *Station) Inserted() bool { return s.inserted }

// OnReceive sets the callback invoked when a frame addressed to this
// station (or a broadcast) completes on the wire.
func (s *Station) OnReceive(fn func(*Frame, sim.Time)) { s.receive = fn }

// SetPromiscuousMAC controls whether the adapter passes MAC frames up.
// Real Token Ring adapters strip them in ROM; the paper discusses (and
// rejects) running in this mode to detect Ring Purges.
func (s *Station) SetPromiscuousMAC(on bool) { s.promiscuousMAC = on }

// SetCopyGate installs a predicate consulted on frame arrival: returning
// false means the adapter had no free receive buffer, so the frame's C bit
// stays clear and the frame is lost at the receiver.
func (s *Station) SetCopyGate(fn func() bool) { s.copyGate = fn }

func (s *Station) canCopy() bool {
	if s.copyGate == nil {
		return true
	}
	return s.copyGate()
}

// Transmit queues f for transmission. onDone (may be nil) fires when the
// transmitter learns the outcome from the returning frame's A/C bits.
func (s *Station) Transmit(f *Frame, onDone func(DeliveryStatus)) {
	f.Src = s.addr
	s.ring.submit(&txRequest{st: s, f: f, onDone: onDone})
}

// Remove de-inserts the station without a purge (orderly removal).
func (s *Station) Remove() { s.inserted = false }

// Reinsert puts a removed station back and triggers the purge burst a
// physical insertion causes.
func (s *Station) Reinsert(purges int) {
	s.inserted = true
	s.ring.Insertion(purges)
}
