package ring

import (
	"fmt"

	"repro/internal/sim"
)

// Config sets the physical parameters of the ring.
type Config struct {
	// BitRate is the signalling rate; the paper's ring runs at 4 Mbit/s.
	BitRate int64
	// StationLatency is the per-station repeat delay (≈1 bit plus elastic
	// buffer). With 70 stations this contributes ~20–40 µs of ring latency.
	StationLatency sim.Time
	// CableLatency is the propagation delay around the cable itself.
	CableLatency sim.Time
	// TokenOverhead is the fixed cost of capturing a free token.
	TokenOverhead sim.Time
	// PurgeDuration is the outage caused by one Ring Purge (token lost,
	// purge MAC frame circulates, new token issued) — ~10 ms per the
	// paper's §5.3 analysis of the 120–130 ms outliers.
	PurgeDuration sim.Time
	// Seed drives the token-wait jitter stream.
	Seed int64
}

// DefaultConfig returns the parameters of the paper's ring: 4 Mbit/s,
// 70 stations' worth of repeat latency, 10 ms purge outage.
func DefaultConfig() Config {
	return Config{
		BitRate:        4_000_000,
		StationLatency: 300 * sim.Nanosecond, // ~1.2 bits per station
		CableLatency:   5 * sim.Microsecond,
		TokenOverhead:  30 * sim.Microsecond,
		PurgeDuration:  10 * sim.Millisecond,
		Seed:           1,
	}
}

// Tap observes every frame on the ring (data and MAC), as IBM's TAP
// monitor does. start/end bracket the frame's time on the wire.
type Tap func(f *Frame, start, end sim.Time, status DeliveryStatus)

type txRequest struct {
	st     *Station
	f      *Frame
	onDone func(DeliveryStatus)
	queued sim.Time
}

// Counters aggregates ring-level accounting.
type Counters struct {
	FramesSent    uint64
	BytesSent     uint64
	MACFrames     uint64
	DataFrames    uint64
	PurgeCount    uint64
	PurgeLost     uint64
	NotCopied     uint64
	BusyTime      sim.Time
	TokenWaitMax  sim.Time
	QueueWaitMax  sim.Time
	ByPriority    [8]uint64
	InsertionSeen uint64
}

// Ring is the shared medium. Exactly one frame occupies it at a time;
// contending transmitters wait for the token, which the model grants to
// the highest reservation priority first and round-robin within a
// priority, approximating the 802.5 priority/reservation protocol.
//
//ctmsvet:shardowned
type Ring struct {
	sched    *sim.Scheduler
	cfg      Config
	rng      *sim.RNG
	stations []*Station
	byAddr   map[Addr]*Station
	queues   [8][]*txRequest
	rrCursor int // round-robin start position within a priority class

	busy       bool
	current    *txRequest
	currentEnd sim.Time
	purging    bool
	purgeEnd   sim.Time

	taps       []Tap
	purgeHooks []func(at sim.Time)
	reserved   int64
	seq        uint64
	c          Counters
}

// New creates a ring driven by sched.
func New(sched *sim.Scheduler, cfg Config) *Ring {
	sim.Checkf(cfg.BitRate > 0, "ring bit rate must be positive")
	if cfg.PurgeDuration <= 0 {
		cfg.PurgeDuration = DefaultConfig().PurgeDuration
	}
	return &Ring{
		sched:  sched,
		cfg:    cfg,
		rng:    sim.NewRNG(cfg.Seed).Fork("ring-token-jitter"),
		byAddr: make(map[Addr]*Station),
	}
}

// Scheduler exposes the driving scheduler (stations and workloads need it).
func (r *Ring) Scheduler() *sim.Scheduler { return r.sched }

// Config reports the ring's physical parameters.
func (r *Ring) Config() Config { return r.cfg }

// Counters returns a snapshot of ring accounting.
func (r *Ring) Counters() Counters { return r.c }

// Utilization reports the fraction of elapsed time the ring carried a frame.
func (r *Ring) Utilization() float64 {
	now := r.sched.Now()
	if now == 0 {
		return 0
	}
	return float64(r.c.BusyTime) / float64(now)
}

// AddTap registers a promiscuous monitor.
func (r *Ring) AddTap(t Tap) { r.taps = append(r.taps, t) }

// OnPurge registers fn to run at the start of every Ring Purge. Real
// adapters cannot interrupt the host on a purge (§4), so this hook models
// what a ring-attached observer — the Active Monitor's view, or an
// admission controller watching effective capacity — can see, not what a
// station's driver can.
func (r *Ring) OnPurge(fn func(at sim.Time)) { r.purgeHooks = append(r.purgeHooks, fn) }

// ReserveBits records bandwidth (bits/s) promised to a connection by an
// admission controller; negative n releases a prior reservation. The ring
// itself does not police reservations — the 802.5 priority mechanism is
// the enforcement — but the bookkeeping lets tools report how much of the
// wire is spoken for.
//
//ctmsvet:unit bit/s n
func (r *Ring) ReserveBits(n int64) {
	r.reserved += n
	sim.Checkf(r.reserved >= 0, "ring reservation went negative")
}

// ReservedBits reports the bandwidth currently promised to connections.
//
//ctmsvet:unit bit/s result
func (r *Ring) ReservedBits() int64 { return r.reserved }

// WireTime reports how long a frame of n bytes occupies the ring,
// including per-station repeat and cable latency.
func (r *Ring) WireTime(n int) sim.Time {
	lat := sim.Time(len(r.stations))*r.cfg.StationLatency + r.cfg.CableLatency
	return sim.WireTime(n, r.cfg.BitRate) + lat
}

// Attach creates a station, inserts it into the ring quietly (no purge —
// used for initial topology construction) and returns it.
func (r *Ring) Attach(name string) *Station {
	addr := Addr(len(r.stations) + 1)
	st := &Station{ring: r, addr: addr, name: name, inserted: true}
	r.stations = append(r.stations, st)
	r.byAddr[addr] = st
	return st
}

// Station looks up a station by address.
func (r *Ring) Station(a Addr) *Station {
	return r.byAddr[a]
}

// Stations reports how many stations are attached.
func (r *Ring) Stations() int { return len(r.stations) }

// submit queues a transmit request and starts service if the ring is free.
func (r *Ring) submit(req *txRequest) {
	p := req.f.Priority
	sim.Checkf(p >= 0 && p < 8, "frame priority %d out of range", p)
	req.queued = r.sched.Now()
	r.queues[p] = append(r.queues[p], req)
	r.maybeStart()
}

// next dequeues the highest-priority pending request, round-robin within
// the class so no station starves.
func (r *Ring) next() *txRequest {
	for p := 7; p >= 0; p-- {
		q := r.queues[p]
		if len(q) == 0 {
			continue
		}
		// Round-robin: prefer the first request from a station at or
		// after the cursor; fall back to the head.
		pick := 0
		for i, req := range q {
			if int(req.st.addr) >= r.rrCursor {
				pick = i
				break
			}
		}
		req := q[pick]
		r.queues[p] = append(q[:pick], q[pick+1:]...)
		r.rrCursor = int(req.st.addr) + 1
		if r.rrCursor > len(r.stations) {
			r.rrCursor = 0
		}
		return req
	}
	return nil
}

func (r *Ring) maybeStart() {
	if r.busy || r.purging {
		return
	}
	req := r.next()
	if req == nil {
		return
	}
	r.start(req)
}

func (r *Ring) start(req *txRequest) {
	now := r.sched.Now()
	if !req.st.inserted {
		// A de-inserted station cannot transmit; fail immediately.
		req.done(DeliveryStatus{CompletedAt: now})
		r.sched.After(0, "ring.next", r.maybeStart)
		return
	}
	// Token acquisition: fixed overhead plus jitter for where the token
	// happens to be on the ring.
	rotation := sim.Time(len(r.stations))*r.cfg.StationLatency + r.cfg.CableLatency
	tokenWait := r.cfg.TokenOverhead + r.rng.Uniform(0, rotation)
	if w := now - req.queued + tokenWait; w > r.c.QueueWaitMax {
		r.c.QueueWaitMax = w
	}
	if tokenWait > r.c.TokenWaitMax {
		r.c.TokenWaitMax = tokenWait
	}

	wire := r.WireTime(req.f.Size)
	start := now + tokenWait
	end := start + wire

	r.busy = true
	r.current = req
	r.currentEnd = end
	req.f.Seq = r.seq
	r.seq++

	r.sched.At(end, "ring.frame-end", func() {
		if r.current != req {
			return // purged mid-flight; purge handler finished it
		}
		r.finish(req, start, end, false)
	})
}

// finish completes a transmission: delivers the frame, notifies taps and
// the transmitter, and starts the next pending request.
func (r *Ring) finish(req *txRequest, start, end sim.Time, purged bool) {
	r.busy = false
	r.current = nil

	status := DeliveryStatus{CompletedAt: r.sched.Now()}
	if purged {
		status.PurgeLost = true
		r.c.PurgeLost++
	} else {
		r.deliver(req.f, &status)
		r.sched.Trace().AddEvent(r.sched.Now(), EvTx, int64(req.f.Seq), int64(req.f.Size))
		r.c.FramesSent++
		r.c.BytesSent += uint64(req.f.Size)
		r.c.ByPriority[req.f.Priority]++
		if req.f.Kind == MAC {
			r.c.MACFrames++
		} else {
			r.c.DataFrames++
		}
		r.c.BusyTime += end - start
	}

	for _, tap := range r.taps {
		tap(req.f, start, end, status)
	}
	req.done(status)
	r.maybeStart()
}

func (r *Ring) deliver(f *Frame, status *DeliveryStatus) {
	if f.Dst == Broadcast || f.Kind == MAC {
		for _, st := range r.stations {
			if !st.inserted || st == r.byAddr[f.Src] {
				continue
			}
			if f.Kind == MAC && !st.promiscuousMAC {
				continue // adapters normally strip MAC frames in ROM
			}
			if st.receive != nil {
				st.receive(f, r.sched.Now())
			}
		}
		status.Delivered = true
		status.AddrRecognized = true
		status.FrameCopied = true
		return
	}
	dst := r.byAddr[f.Dst]
	if dst == nil || !dst.inserted {
		return // A and C bits stay clear
	}
	status.AddrRecognized = true
	if dst.receive == nil || !dst.canCopy() {
		r.c.NotCopied++
		return // address recognized but frame not copied (receiver congested)
	}
	status.FrameCopied = true
	status.Delivered = true
	dst.receive(f, r.sched.Now())
}

func (req *txRequest) done(s DeliveryStatus) {
	if req.onDone != nil {
		req.onDone(s)
	}
}

// Purge simulates one Ring Purge: the token is lost, any frame in flight
// is destroyed (with no indication to its transmitter), and the ring is
// unusable for PurgeDuration while the Active Monitor purges and issues a
// new token.
func (r *Ring) Purge() {
	now := r.sched.Now()
	r.c.PurgeCount++
	r.sched.Trace().AddEvent(now, EvPurge, int64(r.c.PurgeCount), int64(r.cfg.PurgeDuration))
	for _, fn := range r.purgeHooks {
		fn(now)
	}
	if r.busy && r.current != nil {
		req := r.current
		r.current = nil
		r.busy = false
		r.finishPurged(req)
	}
	end := now + r.cfg.PurgeDuration
	if r.purging && end <= r.purgeEnd {
		return
	}
	r.purgeEnd = end
	if !r.purging {
		r.purging = true
		r.schedulePurgeEnd()
	}
}

func (r *Ring) finishPurged(req *txRequest) {
	status := DeliveryStatus{PurgeLost: true, CompletedAt: r.sched.Now()}
	r.c.PurgeLost++
	for _, tap := range r.taps {
		tap(req.f, r.sched.Now(), r.sched.Now(), status)
	}
	req.done(status)
}

func (r *Ring) schedulePurgeEnd() {
	end := r.purgeEnd
	r.sched.At(end, "ring.purge-end", func() {
		if r.purgeEnd > end {
			r.schedulePurgeEnd() // extended by an overlapping purge
			return
		}
		r.purging = false
		// The purge completes with a Ring Purge MAC frame on the wire.
		am := r.activeMonitor()
		if am != nil {
			am.Transmit(NewMACFrame(am.addr, MACRingPurge), nil)
		}
		r.maybeStart()
	})
}

// activeMonitor is the lowest-addressed inserted station.
func (r *Ring) activeMonitor() *Station {
	for _, st := range r.stations {
		if st.inserted {
			return st
		}
	}
	return nil
}

// Insertion simulates a station inserting into the ring, which the paper
// observed to cause bursts of back-to-back purges (up to ~10, accounting
// for the 120–130 ms outliers). purges is the burst length.
func (r *Ring) Insertion(purges int) {
	sim.Checkf(purges > 0, "insertion needs at least one purge")
	r.c.InsertionSeen++
	r.sched.Trace().AddEvent(r.sched.Now(), EvInsertion, int64(purges), 0)
	for i := 0; i < purges; i++ {
		d := sim.Time(i) * r.cfg.PurgeDuration
		r.sched.After(d, "ring.insertion-purge", r.Purge)
	}
}

// Purging reports whether the ring is currently unusable due to a purge.
func (r *Ring) Purging() bool { return r.purging }

// Busy reports whether a frame currently occupies the ring.
func (r *Ring) Busy() bool { return r.busy }

// Current returns the frame occupying the ring, or nil. Tests use it to
// time fault injection deterministically.
func (r *Ring) Current() *Frame {
	if r.current == nil {
		return nil
	}
	return r.current.f
}

// String summarizes ring state.
func (r *Ring) String() string {
	return fmt.Sprintf("ring{stations=%d busy=%t purging=%t sent=%d util=%.2f%% reserved=%dbps}",
		len(r.stations), r.busy, r.purging, r.c.FramesSent, 100*r.Utilization(), r.reserved)
}
