package ring

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFrameCodecRoundTrip(t *testing.T) {
	f := NewDataFrame(3, 9, 4, 2000, nil, nil)
	info := []byte("continuous time media system payload")
	wire := EncodeFrame(f, info)
	if len(wire) != WireOverhead+len(info) {
		t.Fatalf("wire length %d", len(wire))
	}
	d, err := DecodeFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dst != 9 || d.Src != 3 {
		t.Fatalf("addresses: %+v", d)
	}
	if Priority(d.AC) != 4 {
		t.Fatalf("priority: %d", Priority(d.AC))
	}
	if !bytes.Equal(d.Info, info) {
		t.Fatal("info corrupted")
	}
	if d.A || d.C {
		t.Fatal("status bits must start clear")
	}
}

func TestFrameStatusBits(t *testing.T) {
	f := NewDataFrame(1, 2, 0, 100, nil, nil)
	wire := EncodeFrame(f, []byte{1, 2, 3})
	if err := SetStatus(wire, true, true); err != nil {
		t.Fatal(err)
	}
	d, err := DecodeFrame(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !d.A || !d.C {
		t.Fatalf("status bits lost: %+v", d)
	}
	// The FS byte is outside the FCS coverage, as in 802.5 (it is set
	// on the fly by the destination).
	if err := SetStatus(wire[:3], true, false); err == nil {
		t.Fatal("short frame must be rejected")
	}
}

func TestFrameCodecDetectsCorruption(t *testing.T) {
	f := NewDataFrame(1, 2, 0, 100, nil, nil)
	wire := EncodeFrame(f, []byte("payload under test"))
	for _, i := range []int{1, 2, 4, 8, 12} {
		c := append([]byte{}, wire...)
		c[i] ^= 0x40
		if _, err := DecodeFrame(c); err == nil {
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
	if _, err := DecodeFrame(wire[:5]); err == nil {
		t.Fatal("truncated frame must fail")
	}
	bad := append([]byte{}, wire...)
	bad[0] = 0x00
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("bad start delimiter must fail")
	}
	bad = append([]byte{}, wire...)
	bad[len(bad)-2] = 0x00
	if _, err := DecodeFrame(bad); err == nil {
		t.Fatal("bad end delimiter must fail")
	}
}

// Property: encode/decode round-trips arbitrary info for arbitrary
// addresses and priorities.
func TestFrameCodecProperty(t *testing.T) {
	fn := func(src, dst uint16, prio uint8, info []byte) bool {
		f := NewDataFrame(Addr(src), Addr(dst), int(prio%8), len(info), nil, nil)
		f.Src = Addr(src) // NewDataFrame takes src but Transmit overwrites; be explicit
		d, err := DecodeFrame(EncodeFrame(f, info))
		if err != nil {
			return false
		}
		return d.Src == Addr(src) && d.Dst == Addr(dst) &&
			Priority(d.AC) == int(prio%8) && bytes.Equal(d.Info, info)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenBits(t *testing.T) {
	if !IsToken(EncodeAC(3, true)) {
		t.Fatal("token bit lost")
	}
	if IsToken(EncodeAC(3, false)) {
		t.Fatal("frame misread as token")
	}
	if Priority(EncodeAC(6, true)) != 6 {
		t.Fatal("priority bits wrong")
	}
}
