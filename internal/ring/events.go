package ring

import "repro/internal/sim"

// Structured trace kinds recorded by the ring. Kind numbers are allocated
// in disjoint per-package blocks (ring owns 1–15) so one registry serves
// the whole simulator.
const (
	// EvTx records a completed data/MAC transmission: A = frame sequence
	// number, B = frame size in bytes.
	EvTx sim.EventKind = 1
	// EvPurge records the start of a Ring Purge: A = cumulative purge
	// count, B = outage duration in nanoseconds.
	EvPurge sim.EventKind = 2
	// EvInsertion records a station insertion: A = purge burst length.
	EvInsertion sim.EventKind = 3
)

func init() {
	sim.RegisterEventKind(EvTx, "ring.tx")
	sim.RegisterEventKind(EvPurge, "ring.purge")
	sim.RegisterEventKind(EvInsertion, "ring.insertion")
}
