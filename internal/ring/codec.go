package ring

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire format of an IEEE 802.5 frame as this package encodes it. The
// start/end delimiters are symbol-level constructs; here they are
// represented as single bytes so a captured frame is self-describing.
//
//	SD AC FC | DA(2) SA(2) | INFO... | FCS(4) | ED FS
//
// Real Token Ring used 6-byte MAC addresses; the model's address space is
// 16-bit station numbers, so DA/SA are 2 bytes (documented divergence —
// it does not affect any timing the paper measures, and sizes on the wire
// are accounted separately via Frame.Size).
const (
	sdByte = 0xAB // JK0JK000 symbol pattern stand-in
	edByte = 0xDE // JK1JK1IE stand-in

	// WireHeaderSize is SD+AC+FC+DA+SA.
	WireHeaderSize = 7
	// WireTrailerSize is FCS+ED+FS.
	WireTrailerSize = 6
	// WireOverhead is total framing around the INFO field.
	WireOverhead = WireHeaderSize + WireTrailerSize
)

// EncodeFrame serializes a frame's header/trailer around the given INFO
// bytes, computing a real CRC-32 FCS over AC..INFO as 802.5 does.
func EncodeFrame(f *Frame, info []byte) []byte {
	out := make([]byte, 0, WireOverhead+len(info))
	out = append(out, sdByte, f.AC, f.FC)
	var addr [4]byte
	binary.BigEndian.PutUint16(addr[0:], uint16(f.Dst))
	binary.BigEndian.PutUint16(addr[2:], uint16(f.Src))
	out = append(out, addr[:]...)
	out = append(out, info...)
	fcs := crc32.ChecksumIEEE(out[1:]) // AC through INFO
	var fcsb [4]byte
	binary.BigEndian.PutUint32(fcsb[:], fcs)
	out = append(out, fcsb[:]...)
	// FS carries the A (address recognized) and C (frame copied) bits,
	// zero at transmission; the destination sets them as the frame
	// passes.
	out = append(out, edByte, 0x00)
	return out
}

// DecodedFrame is the result of parsing a wire capture.
type DecodedFrame struct {
	AC, FC   byte
	Dst, Src Addr
	Info     []byte
	// A and C are the frame-status bits the transmitter reads when the
	// frame returns.
	A, C bool
}

// SetStatus sets the A/C bits in an encoded frame in place, as the
// destination adapter does while repeating the frame.
func SetStatus(wire []byte, addrRecognized, frameCopied bool) error {
	if len(wire) < WireOverhead {
		return fmt.Errorf("ring: frame too short for status bits")
	}
	var fs byte
	if addrRecognized {
		fs |= 0x88 // A bits are duplicated in 802.5's FS byte
	}
	if frameCopied {
		fs |= 0x44 // C bits likewise
	}
	wire[len(wire)-1] = fs
	return nil
}

// DecodeFrame parses and validates a wire capture produced by
// EncodeFrame, verifying the FCS.
func DecodeFrame(wire []byte) (*DecodedFrame, error) {
	if len(wire) < WireOverhead {
		return nil, fmt.Errorf("ring: frame too short: %d bytes", len(wire))
	}
	if wire[0] != sdByte {
		return nil, fmt.Errorf("ring: bad start delimiter %#x", wire[0])
	}
	if wire[len(wire)-2] != edByte {
		return nil, fmt.Errorf("ring: bad end delimiter %#x", wire[len(wire)-2])
	}
	body := wire[1 : len(wire)-6] // AC..INFO
	want := binary.BigEndian.Uint32(wire[len(wire)-6 : len(wire)-2])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("ring: FCS mismatch: got %#x want %#x", got, want)
	}
	fs := wire[len(wire)-1]
	d := &DecodedFrame{
		AC:  wire[1],
		FC:  wire[2],
		Dst: Addr(binary.BigEndian.Uint16(wire[3:5])),
		Src: Addr(binary.BigEndian.Uint16(wire[5:7])),
		A:   fs&0x88 != 0,
		C:   fs&0x44 != 0,
	}
	d.Info = append(d.Info, wire[7:len(wire)-6]...)
	return d, nil
}

// Priority extracts the access priority from an AC byte.
func Priority(ac byte) int { return int(ac & 0x7) }

// IsToken reports whether an AC byte marks a free token.
func IsToken(ac byte) bool { return ac&0x10 != 0 }
