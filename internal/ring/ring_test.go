package ring

import (
	"testing"

	"repro/internal/sim"
)

func newTestRing(t *testing.T) (*sim.Scheduler, *Ring) {
	t.Helper()
	sched := sim.NewScheduler()
	r := New(sched, DefaultConfig())
	return sched, r
}

func TestWireTime2000Bytes(t *testing.T) {
	sched := sim.NewScheduler()
	cfg := DefaultConfig()
	cfg.StationLatency = 0
	cfg.CableLatency = 0
	r := New(sched, cfg)
	if got := r.WireTime(2000); got != 4*sim.Millisecond {
		t.Fatalf("2000 bytes at 4 Mbit/s should take 4 ms, got %v", got)
	}
}

func TestPointToPointDelivery(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")

	var gotFrame *Frame
	var gotAt sim.Time
	rx.OnReceive(func(f *Frame, at sim.Time) { gotFrame, gotAt = f, at })

	var status DeliveryStatus
	tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 2000, nil, "payload"), func(s DeliveryStatus) { status = s })
	sched.Run()

	if gotFrame == nil {
		t.Fatal("frame not delivered")
	}
	if gotFrame.Payload != "payload" {
		t.Fatal("payload lost in transit")
	}
	if !status.Delivered || !status.AddrRecognized || !status.FrameCopied {
		t.Fatalf("transmitter should see A and C bits set: %v", status)
	}
	// Minimum latency: token overhead + wire time for 2000 bytes ≈ 4 ms.
	if gotAt < 4*sim.Millisecond || gotAt > 5*sim.Millisecond {
		t.Fatalf("delivery time implausible: %v", gotAt)
	}
}

func TestDeliveryToMissingStation(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	var status DeliveryStatus
	tx.Transmit(NewDataFrame(tx.Addr(), 99, 0, 100, nil, nil), func(s DeliveryStatus) { status = s })
	sched.Run()
	if status.Delivered || status.AddrRecognized {
		t.Fatalf("no station should have recognized the address: %v", status)
	}
}

func TestRemovedStationDoesNotReceive(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")
	got := 0
	rx.OnReceive(func(*Frame, sim.Time) { got++ })
	rx.Remove()
	var status DeliveryStatus
	tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 100, nil, nil), func(s DeliveryStatus) { status = s })
	sched.Run()
	if got != 0 || status.Delivered {
		t.Fatal("removed station must not receive")
	}
}

func TestFrameSequencePreserved(t *testing.T) {
	// The paper's requirement: with a single transmitter sending in order,
	// the ring delivers in order.
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")
	var got []int
	rx.OnReceive(func(f *Frame, _ sim.Time) { got = append(got, f.Payload.(int)) })
	for i := 0; i < 20; i++ {
		tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 500, nil, i), nil)
	}
	sched.Run()
	if len(got) != 20 {
		t.Fatalf("want 20 frames, got %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("frames reordered: %v", got)
		}
	}
}

func TestPriorityPreemptsQueue(t *testing.T) {
	sched, r := newTestRing(t)
	a := r.Attach("low")
	b := r.Attach("high")
	rx := r.Attach("rx")
	var got []string
	rx.OnReceive(func(f *Frame, _ sim.Time) { got = append(got, f.Payload.(string)) })

	// Queue several low-priority frames, then one high-priority frame.
	// The high-priority frame must jump ahead of all queued low ones
	// (but not the frame already on the wire).
	for i := 0; i < 5; i++ {
		a.Transmit(NewDataFrame(a.Addr(), rx.Addr(), 0, 1000, nil, "low"), nil)
	}
	sched.After(sim.Microsecond, "inject-high", func() {
		b.Transmit(NewDataFrame(b.Addr(), rx.Addr(), 5, 1000, nil, "high"), nil)
	})
	sched.Run()
	if len(got) != 6 {
		t.Fatalf("want 6 frames, got %d", len(got))
	}
	if got[1] != "high" {
		t.Fatalf("high-priority frame should be second on the wire, got order %v", got)
	}
}

func TestBroadcastReachesAllExceptSender(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	n := 0
	for i := 0; i < 5; i++ {
		st := r.Attach("rx")
		st.OnReceive(func(*Frame, sim.Time) { n++ })
	}
	tx.OnReceive(func(*Frame, sim.Time) { t.Error("sender must not receive its own broadcast") })
	tx.Transmit(NewDataFrame(tx.Addr(), Broadcast, 0, 100, nil, nil), nil)
	sched.Run()
	if n != 5 {
		t.Fatalf("broadcast should reach 5 stations, got %d", n)
	}
}

func TestMACFramesOnlyToPromiscuous(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("monitor")
	normal := r.Attach("normal")
	promisc := r.Attach("promisc")
	promisc.SetPromiscuousMAC(true)
	nNormal, nPromisc := 0, 0
	normal.OnReceive(func(*Frame, sim.Time) { nNormal++ })
	promisc.OnReceive(func(f *Frame, _ sim.Time) {
		if f.Kind == MAC {
			nPromisc++
		}
	})
	tx.Transmit(NewMACFrame(tx.Addr(), MACActiveMonitorPresent), nil)
	sched.Run()
	if nNormal != 0 {
		t.Fatal("normal adapters strip MAC frames in ROM")
	}
	if nPromisc != 1 {
		t.Fatalf("promiscuous adapter should see MAC frames, got %d", nPromisc)
	}
}

func TestTapSeesEverything(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")
	_ = rx
	var taps []*Frame
	r.AddTap(func(f *Frame, _, _ sim.Time, _ DeliveryStatus) { taps = append(taps, f) })
	tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 100, nil, nil), nil)
	tx.Transmit(NewMACFrame(tx.Addr(), MACStandbyMonitorPresent), nil)
	sched.Run()
	if len(taps) != 2 {
		t.Fatalf("tap should record data and MAC frames, got %d", len(taps))
	}
}

func TestPurgeLosesInFlightFrameSilently(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")
	received := 0
	rx.OnReceive(func(*Frame, sim.Time) { received++ })
	var status DeliveryStatus
	tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 2000, nil, nil), func(s DeliveryStatus) { status = s })
	// Purge 1 ms in, while the 2000-byte frame is still on the wire.
	sched.After(sim.Millisecond, "purge", r.Purge)
	sched.Run()
	if received != 0 {
		t.Fatal("purged frame must not be delivered")
	}
	if !status.PurgeLost {
		t.Fatalf("status should mark purge loss for the model (hardware hides it): %v", status)
	}
	if c := r.Counters(); c.PurgeLost != 1 || c.PurgeCount != 1 {
		t.Fatalf("purge accounting wrong: %+v", c)
	}
}

func TestPurgeBlocksRingForDuration(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")
	var deliveredAt sim.Time
	rx.OnReceive(func(_ *Frame, at sim.Time) { deliveredAt = at })
	r.Purge() // at t=0
	tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 100, nil, nil), nil)
	sched.Run()
	if deliveredAt < r.Config().PurgeDuration {
		t.Fatalf("frame delivered at %v, during the purge outage", deliveredAt)
	}
}

func TestInsertionCausesPurgeBurst(t *testing.T) {
	sched, r := newTestRing(t)
	r.Attach("a")
	r.Insertion(10)
	sched.Run()
	c := r.Counters()
	if c.PurgeCount != 10 {
		t.Fatalf("want 10 purges, got %d", c.PurgeCount)
	}
	if c.InsertionSeen != 1 {
		t.Fatalf("insertion accounting wrong: %+v", c)
	}
	// 10 back-to-back purges ≈ 100 ms outage, matching the paper's
	// explanation of the 120–130 ms points.
	if sched.Now() < 100*sim.Millisecond {
		t.Fatalf("purge burst too short: ended at %v", sched.Now())
	}
}

func TestPurgeEmitsRingPurgeMACFrame(t *testing.T) {
	sched, r := newTestRing(t)
	r.Attach("am")
	macs := 0
	r.AddTap(func(f *Frame, _, _ sim.Time, _ DeliveryStatus) {
		if f.Kind == MAC && f.MAC == MACRingPurge {
			macs++
		}
	})
	r.Purge()
	sched.Run()
	if macs != 1 {
		t.Fatalf("each purge should put a Ring Purge MAC frame on the wire, got %d", macs)
	}
}

func TestCopyGateLeavesCBitClear(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")
	rx.OnReceive(func(*Frame, sim.Time) { t.Error("gated frame must not be received") })
	rx.SetCopyGate(func() bool { return false })
	var status DeliveryStatus
	tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 100, nil, nil), func(s DeliveryStatus) { status = s })
	sched.Run()
	if !status.AddrRecognized || status.FrameCopied || status.Delivered {
		t.Fatalf("want A set, C clear: %v", status)
	}
	if r.Counters().NotCopied != 1 {
		t.Fatal("NotCopied counter should increment")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	sched, r := newTestRing(t)
	tx := r.Attach("tx")
	rx := r.Attach("rx")
	for i := 0; i < 10; i++ {
		tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 2000, nil, nil), nil)
	}
	sched.Run()
	u := r.Utilization()
	if u < 0.5 || u > 1.0 {
		t.Fatalf("back-to-back frames should keep the ring busy, util=%v", u)
	}
	c := r.Counters()
	if c.FramesSent != 10 || c.BytesSent != 20000 {
		t.Fatalf("counter totals wrong: %+v", c)
	}
}

func TestRoundRobinFairnessWithinPriority(t *testing.T) {
	sched, r := newTestRing(t)
	a := r.Attach("a")
	b := r.Attach("b")
	rx := r.Attach("rx")
	var got []Addr
	rx.OnReceive(func(f *Frame, _ sim.Time) { got = append(got, f.Src) })
	for i := 0; i < 4; i++ {
		a.Transmit(NewDataFrame(a.Addr(), rx.Addr(), 0, 500, nil, nil), nil)
		b.Transmit(NewDataFrame(b.Addr(), rx.Addr(), 0, 500, nil, nil), nil)
	}
	sched.Run()
	if len(got) != 8 {
		t.Fatalf("want 8 frames, got %d", len(got))
	}
	// Neither station should get more than one extra consecutive slot.
	maxRun, run := 1, 1
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 1
		}
	}
	if maxRun > 2 {
		t.Fatalf("round-robin violated, a station ran %d in a row: %v", maxRun, got)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		sched := sim.NewScheduler()
		r := New(sched, DefaultConfig())
		tx := r.Attach("tx")
		rx := r.Attach("rx")
		var times []sim.Time
		rx.OnReceive(func(_ *Frame, at sim.Time) { times = append(times, at) })
		for i := 0; i < 50; i++ {
			i := i
			sched.At(sim.Time(i)*sim.Millisecond, "send", func() {
				tx.Transmit(NewDataFrame(tx.Addr(), rx.Addr(), 0, 500+i, nil, nil), nil)
			})
		}
		sched.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
