// Package ring models a 4 Mbit/s IEEE 802.5-style Token Ring at the level
// of detail the paper's measurements depend on: serial transmission time,
// token-acquisition wait, eight access-priority levels, MAC frame traffic,
// the Active Monitor's Ring Purge (triggered by station insertion, the sole
// source of unrecoverable packet loss in the paper), and the hardware
// delivery confirmation a transmitter sees in the returning frame's
// address-recognized/frame-copied bits.
package ring

import (
	"fmt"

	"repro/internal/sim"
)

// Addr identifies a station on the ring.
type Addr uint16

// Broadcast is the all-stations destination address.
const Broadcast Addr = 0xFFFF

// FrameKind distinguishes data (LLC) frames from MAC management frames.
//
//ctmsvet:enum
type FrameKind uint8

const (
	// LLC is an ordinary data frame.
	LLC FrameKind = iota
	// MAC is a medium-access-control management frame.
	MAC
)

func (k FrameKind) String() string {
	switch k {
	case LLC:
		return "LLC"
	case MAC:
		return "MAC"
	}
	return fmt.Sprintf("FrameKind(%d)", uint8(k))
}

// MACType enumerates the MAC frames the model generates.
//
//ctmsvet:enum
type MACType uint8

const (
	MACNone MACType = iota
	// MACRingPurge is transmitted by the Active Monitor after an error or
	// a station insertion.
	MACRingPurge
	// MACActiveMonitorPresent is the Active Monitor's periodic heartbeat.
	MACActiveMonitorPresent
	// MACStandbyMonitorPresent is the response from other stations.
	MACStandbyMonitorPresent
)

func (m MACType) String() string {
	switch m {
	case MACNone:
		return "none"
	case MACRingPurge:
		return "ring-purge"
	case MACActiveMonitorPresent:
		return "active-monitor-present"
	case MACStandbyMonitorPresent:
		return "standby-monitor-present"
	}
	return fmt.Sprintf("MACType(%d)", uint8(m))
}

// Frame is one frame on the ring. Size is the total length in bytes as it
// occupies the wire (the paper quotes total lengths: MAC ≈20 B, keep-alives
// 60–300 B, file transfer 1522 B, CTMSP 2000 B + ring protocol bytes).
type Frame struct {
	AC       byte // access control: priority in low 3 bits, token/monitor bits above
	FC       byte // frame control: distinguishes MAC from LLC
	Src, Dst Addr
	Priority int // ring access priority 0..7 (also encoded in AC)
	Kind     FrameKind
	MAC      MACType
	Size     int    // total bytes on the wire
	Capture  []byte // up to the first 96 bytes, what a TAP monitor records
	Payload  any    // opaque model payload (mbuf chain, protocol packet, ...)
	Seq      uint64 // ring-global sequence number, assigned at transmit
}

// EncodeAC builds the access-control byte for a priority.
func EncodeAC(priority int, token bool) byte {
	ac := byte(priority & 0x7)
	if token {
		ac |= 0x10
	}
	return ac
}

// EncodeFC builds the frame-control byte.
func EncodeFC(kind FrameKind) byte {
	if kind == MAC {
		return 0x00
	}
	return 0x40
}

// NewDataFrame builds an LLC frame with sensible control bytes.
func NewDataFrame(src, dst Addr, priority, size int, capture []byte, payload any) *Frame {
	if len(capture) > 96 {
		capture = capture[:96]
	}
	return &Frame{
		AC:       EncodeAC(priority, false),
		FC:       EncodeFC(LLC),
		Src:      src,
		Dst:      dst,
		Priority: priority,
		Kind:     LLC,
		Size:     size,
		Capture:  capture,
		Payload:  payload,
	}
}

// NewMACFrame builds a ~20-byte MAC management frame.
func NewMACFrame(src Addr, typ MACType) *Frame {
	return &Frame{
		AC:       EncodeAC(7, false), // MAC frames travel at the highest priority
		FC:       EncodeFC(MAC),
		Src:      src,
		Dst:      Broadcast,
		Priority: 7,
		Kind:     MAC,
		MAC:      typ,
		Size:     20,
	}
}

// DeliveryStatus is what the transmitting adapter learns when the frame it
// sent returns around the ring (or fails to).
type DeliveryStatus struct {
	// Delivered reports whether the destination copied the frame.
	Delivered bool
	// AddrRecognized is the A bit: the destination saw its address.
	AddrRecognized bool
	// FrameCopied is the C bit: the destination copied the frame into an
	// adapter buffer.
	FrameCopied bool
	// PurgeLost reports the frame was destroyed by a Ring Purge while in
	// flight. Real adapters give the host NO interrupt for this — the
	// paper's central reliability caveat — so drivers must only look at
	// this field when the hypothetical purge-interrupt ablation is on.
	PurgeLost bool
	// CompletedAt is when the transmitter learned the outcome.
	CompletedAt sim.Time
}

func (d DeliveryStatus) String() string {
	return fmt.Sprintf("delivered=%t A=%t C=%t purgeLost=%t at=%v",
		d.Delivered, d.AddrRecognized, d.FrameCopied, d.PurgeLost, d.CompletedAt)
}
