package kernel

import (
	"repro/internal/rtpc"
	"repro/internal/sim"
)

// Proc models a user process. Its behaviour is a loop the caller defines:
// each iteration typically sleeps on a condition, wakes, makes syscalls
// and burns user CPU. User compute is sliced into short segments so the
// process never blocks interrupt dispatch for long (user code is
// preemptible).
type Proc struct {
	k       *Kernel
	name    string
	blocked bool
	wakeFn  func()

	Syscalls     uint64
	UserTime     sim.Time
	Wakeups      uint64
	MaxWakeDelay sim.Time
	sleptAt      sim.Time
}

// NewProc registers a process with the kernel.
func (k *Kernel) NewProc(name string) *Proc {
	p := &Proc{k: k, name: name}
	k.procs = append(k.procs, p)
	return p
}

// Name reports the process name.
func (p *Proc) Name() string { return p.name }

// userSegs slices a user compute cost into preemptible chunks.
func (p *Proc) userSegs(label string, cost sim.Time) []rtpc.Seg {
	chunk := p.k.Costs.UserChunk
	var segs []rtpc.Seg
	for cost > 0 {
		c := chunk
		if cost < c {
			c = cost
		}
		cost -= c
		segs = append(segs, rtpc.Do(label, c))
	}
	if len(segs) == 0 {
		segs = append(segs, rtpc.Do(label, 0))
	}
	return segs
}

// Compute burns user CPU time, then calls done. The process competes at
// base level with every other process and kernel bottom half.
func (p *Proc) Compute(label string, cost sim.Time, done func()) {
	p.UserTime += cost
	p.k.CPU().Submit(LevelBase, p.name+"."+label, p.userSegs(label, cost), done)
}

// Syscall models entry into the kernel, a body cost (for example a
// copyin/copyout), and the return to user mode.
func (p *Proc) Syscall(label string, body sim.Time, done func()) {
	p.Syscalls++
	c := p.k.Costs
	segs := []rtpc.Seg{
		rtpc.Do("syscall-entry", c.SyscallEntry),
		rtpc.Do(label, body),
		rtpc.Do("syscall-exit", c.SyscallExit),
	}
	p.k.CPU().Submit(LevelBase, p.name+"."+label, segs, done)
}

// Sleep blocks the process; Wakeup unblocks it, after the kernel's wakeup
// latency and a context switch, both competing for the CPU at base level.
func (p *Proc) Sleep(onWake func()) {
	sim.Checkf(!p.blocked, "proc %s double sleep", p.name)
	p.blocked = true
	p.wakeFn = onWake
	p.sleptAt = p.k.Sched().Now()
}

// Blocked reports whether the process is sleeping.
func (p *Proc) Blocked() bool { return p.blocked }

// Wakeup makes the process runnable. If it is not sleeping this is a
// no-op (as the kernel's wakeup() on an empty channel is).
func (p *Proc) Wakeup() {
	if !p.blocked {
		return
	}
	p.blocked = false
	fn := p.wakeFn
	p.wakeFn = nil
	p.Wakeups++
	c := p.k.Costs
	sleptAt := p.sleptAt
	segs := []rtpc.Seg{
		rtpc.Do("wakeup", c.WakeupLatency),
		rtpc.Do("context-switch", c.ContextSwitch),
	}
	p.k.CPU().Submit(LevelBase, p.name+".wake", segs, func() {
		d := p.k.Sched().Now() - sleptAt
		if d > p.MaxWakeDelay {
			p.MaxWakeDelay = d
		}
		fn()
	})
}

// BackgroundLoad runs an endless nice-level compute loop: each burst burns
// busyFrac of every period in user chunks. It models the "multiprocessing
// mode" competing processes of Test Case B.
func (p *Proc) BackgroundLoad(period sim.Time, busyFrac float64) {
	sim.Checkf(busyFrac >= 0 && busyFrac <= 1, "busyFrac %v out of range", busyFrac)
	burst := sim.Scale(period, busyFrac)
	var loop func()
	loop = func() {
		p.Compute("bg", burst, func() {
			idle := period - burst
			if idle < 0 {
				idle = 0
			}
			p.k.Sched().After(idle, p.name+".bg-idle", loop)
		})
	}
	loop()
}
