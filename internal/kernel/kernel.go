package kernel

import (
	"fmt"

	"repro/internal/rtpc"
	"repro/internal/sim"
)

// Interrupt levels used by the model, highest first. These mirror the
// BSD spl hierarchy closely enough for the latency interactions that
// matter: the clock above the network, the network above the disk, and
// everything above base (process) level.
const (
	LevelClock   = 7
	LevelVCA     = 6
	LevelNet     = 5
	LevelDisk    = 3
	LevelSoftNet = 2
	LevelBase    = 0
)

// Costs are the kernel path constants (syscall entry/exit, context
// switch, wakeup) used by the user-process model.
type Costs struct {
	SyscallEntry  sim.Time
	SyscallExit   sim.Time
	ContextSwitch sim.Time
	WakeupLatency sim.Time
	// UserChunk is the segment size user-level compute is sliced into;
	// user code is preemptible, so its segments are short.
	UserChunk sim.Time
}

// DefaultCosts returns plausible 1990-class BSD costs.
func DefaultCosts() Costs {
	return Costs{
		SyscallEntry:  60 * sim.Microsecond,
		SyscallExit:   40 * sim.Microsecond,
		ContextSwitch: 250 * sim.Microsecond,
		WakeupLatency: 120 * sim.Microsecond,
		UserChunk:     200 * sim.Microsecond,
	}
}

// Driver is a device driver registered with the kernel. Drivers expose
// ioctls; the paper's driver-to-driver wiring is done through new ioctl
// commands that exchange function handles.
type Driver interface {
	DriverName() string
	Ioctl(cmd string, arg any) (any, error)
}

// Kernel ties one machine's kernel state together.
type Kernel struct {
	Machine *rtpc.Machine
	Pool    *Pool
	Costs   Costs

	drivers map[string]Driver
	procs   []*Proc
}

// New builds a kernel for a machine with default costs and pool sizing.
func New(m *rtpc.Machine) *Kernel {
	return &Kernel{
		Machine: m,
		Pool:    NewPool(m.Scheduler(), 0, 0),
		Costs:   DefaultCosts(),
		drivers: make(map[string]Driver),
	}
}

// Register attaches a driver. Registering two drivers with the same name
// is a configuration bug and panics.
func (k *Kernel) Register(d Driver) {
	name := d.DriverName()
	sim.Checkf(k.drivers[name] == nil, "driver %q registered twice", name)
	k.drivers[name] = d
}

// Driver looks up a registered driver.
func (k *Kernel) Driver(name string) Driver { return k.drivers[name] }

// Ioctl dispatches an ioctl to a named driver. It models the syscall as
// free (all the paper's ioctls are one-time connection setup, off the
// measured path).
func (k *Kernel) Ioctl(driver, cmd string, arg any) (any, error) {
	d := k.drivers[driver]
	if d == nil {
		return nil, fmt.Errorf("kernel: ioctl on unknown driver %q", driver)
	}
	return d.Ioctl(cmd, arg)
}

// Sched exposes the scheduler.
func (k *Kernel) Sched() *sim.Scheduler { return k.Machine.Scheduler() }

// CPU exposes the machine's CPU.
func (k *Kernel) CPU() *rtpc.CPU { return k.Machine.CPU }
