package kernel

import (
	"errors"
	"testing"

	"repro/internal/rtpc"
	"repro/internal/sim"
)

func newKernel() (*sim.Scheduler, *Kernel) {
	sched := sim.NewScheduler()
	m := rtpc.NewMachine(sched, "test", rtpc.DefaultCostModel(), 1)
	return sched, New(m)
}

type fakeDriver struct {
	name string
	last string
}

func (d *fakeDriver) DriverName() string { return d.name }
func (d *fakeDriver) Ioctl(cmd string, arg any) (any, error) {
	d.last = cmd
	if cmd == "fail" {
		return nil, errors.New("nope")
	}
	return arg, nil
}

func TestDriverRegistryAndIoctl(t *testing.T) {
	_, k := newKernel()
	d := &fakeDriver{name: "vca0"}
	k.Register(d)
	if k.Driver("vca0") != d {
		t.Fatal("driver lookup failed")
	}
	out, err := k.Ioctl("vca0", "set-mode", 42)
	if err != nil || out != 42 || d.last != "set-mode" {
		t.Fatalf("ioctl plumbing broken: %v %v", out, err)
	}
	if _, err := k.Ioctl("nosuch", "x", nil); err == nil {
		t.Fatal("ioctl on unknown driver should error")
	}
	if _, err := k.Ioctl("vca0", "fail", nil); err == nil {
		t.Fatal("driver error should propagate")
	}
}

func TestDuplicateDriverPanics(t *testing.T) {
	_, k := newKernel()
	k.Register(&fakeDriver{name: "tr0"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	k.Register(&fakeDriver{name: "tr0"})
}

func TestProcSyscallCosts(t *testing.T) {
	sched, k := newKernel()
	p := k.NewProc("relay")
	var doneAt sim.Time
	p.Syscall("read", 100*sim.Microsecond, func() { doneAt = sched.Now() })
	sched.Run()
	want := k.Costs.SyscallEntry + 100*sim.Microsecond + k.Costs.SyscallExit
	if doneAt != want {
		t.Fatalf("syscall cost: got %v want %v", doneAt, want)
	}
	if p.Syscalls != 1 {
		t.Fatal("syscall accounting")
	}
}

func TestProcComputeIsPreemptible(t *testing.T) {
	sched, k := newKernel()
	p := k.NewProc("cruncher")
	p.Compute("crunch", 10*sim.Millisecond, nil)
	// An interrupt arriving mid-compute must be dispatched within one
	// user chunk (200µs), not after the whole 10ms.
	var entry sim.Time
	sched.After(sim.Millisecond, "irq", func() {
		k.CPU().Submit(LevelNet, "irq", []rtpc.Seg{rtpc.Mark("e", func() { entry = sched.Now() })}, nil)
	})
	sched.Run()
	latency := entry - sim.Millisecond
	if latency > k.Costs.UserChunk {
		t.Fatalf("user compute blocked an interrupt for %v", latency)
	}
}

func TestSleepWakeup(t *testing.T) {
	sched, k := newKernel()
	p := k.NewProc("sleeper")
	woke := false
	p.Sleep(func() { woke = true })
	if !p.Blocked() {
		t.Fatal("proc should be blocked")
	}
	sched.After(sim.Millisecond, "wake", p.Wakeup)
	sched.Run()
	if !woke {
		t.Fatal("wakeup callback never ran")
	}
	if p.Blocked() {
		t.Fatal("proc should be runnable after wake")
	}
	if p.MaxWakeDelay < sim.Millisecond {
		t.Fatalf("wake delay should include the sleep: %v", p.MaxWakeDelay)
	}
	// Wakeup on a non-sleeping proc is a no-op.
	p.Wakeup()
	if p.Wakeups != 1 {
		t.Fatalf("spurious wakeup counted: %d", p.Wakeups)
	}
}

func TestWakeupPaysSchedulingCosts(t *testing.T) {
	sched, k := newKernel()
	p := k.NewProc("sleeper")
	var wokeAt sim.Time
	p.Sleep(func() { wokeAt = sched.Now() })
	p.Wakeup()
	sched.Run()
	want := k.Costs.WakeupLatency + k.Costs.ContextSwitch
	if wokeAt != want {
		t.Fatalf("wakeup should cost %v, took %v", want, wokeAt)
	}
}

func TestBackgroundLoadConsumesCPU(t *testing.T) {
	sched, k := newKernel()
	p := k.NewProc("bg")
	p.BackgroundLoad(10*sim.Millisecond, 0.5)
	sched.RunUntil(sim.Second)
	util := k.CPU().Utilization()
	if util < 0.4 || util > 0.6 {
		t.Fatalf("50%% background load should show ~50%% CPU, got %.2f", util)
	}
}

func TestDoubleSleepPanics(t *testing.T) {
	_, k := newKernel()
	p := k.NewProc("x")
	p.Sleep(func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("double sleep must panic")
		}
	}()
	p.Sleep(func() {})
}
