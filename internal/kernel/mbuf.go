// Package kernel models the pieces of the AOS 4.3 (BSD) kernel the paper's
// data path runs through: the mbuf buffer pool (whose allocation can stall
// "an arbitrarily long time" when exhausted, §2), a device-driver and ioctl
// framework (the paper adds new ioctls to wire drivers directly together),
// and a user-process model with syscall and context-switch costs — the
// stock transfer path the paper shows cannot sustain 150 KB/s.
package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// BSD 4.3 buffer geometry.
const (
	// MbufDataSize is the payload capacity of a small mbuf.
	MbufDataSize = 112
	// ClusterSize is the payload capacity of a cluster mbuf.
	ClusterSize = 1024
	// clusterThreshold is the size above which the allocator uses
	// clusters, as m_get/m_getclr logic did.
	clusterThreshold = 256
)

// Mbuf is one buffer in a chain.
type Mbuf struct {
	Len     int
	Cluster bool
	Next    *Mbuf
}

// Cap reports the mbuf's payload capacity.
func (m *Mbuf) Cap() int {
	if m.Cluster {
		return ClusterSize
	}
	return MbufDataSize
}

// Chain is a linked list of mbufs holding one packet.
type Chain struct {
	Head *Mbuf
	// Tag carries the model payload riding in the chain (a protocol
	// packet, stream bytes, ...).
	Tag any
}

// Len reports the total payload bytes in the chain.
func (c *Chain) Len() int {
	n := 0
	for m := c.Head; m != nil; m = m.Next {
		n += m.Len
	}
	return n
}

// Mbufs reports the number of mbufs in the chain.
func (c *Chain) Mbufs() int {
	n := 0
	for m := c.Head; m != nil; m = m.Next {
		n++
	}
	return n
}

// Clusters reports how many of the chain's mbufs are clusters.
func (c *Chain) Clusters() int {
	n := 0
	for m := c.Head; m != nil; m = m.Next {
		if m.Cluster {
			n++
		}
	}
	return n
}

// PoolStats aggregates allocator accounting.
type PoolStats struct {
	Allocs        uint64
	Frees         uint64
	Failures      uint64 // AllocNoWait with an exhausted pool
	Waits         uint64 // blocking allocations that had to sleep
	SmallInUse    int
	ClustersInUse int
	SmallHigh     int
	ClustersHigh  int
}

// Pool is the kernel's shared mbuf pool. Interrupt-level code uses
// AllocNoWait (drops on exhaustion); process-level code uses Alloc, which
// sleeps until buffers return — the unbounded delay §2 warns about.
type Pool struct {
	sched         *sim.Scheduler
	smallCap      int
	clusterCap    int
	smallInUse    int
	clustersInUse int
	waiters       []*waiter
	stats         PoolStats
	// Node free lists: Free pushes a chain's mbufs here and build pops
	// them, so the steady state allocates no Mbuf objects. Chain shells
	// are NOT recycled — receivers read Chain.Tag after the sender's
	// Free (tradapter's transmit-complete can run before the receive
	// interrupt), and a recycled shell would let a later packet overwrite
	// the tag mid-flight. Shell reuse is the caller's business (see
	// AllocInto); the pool only guarantees Free never scribbles on Tag.
	freeSmall    []*Mbuf
	freeClusters []*Mbuf
}

type waiter struct {
	small, clusters int
	fn              func(*Chain)
	size            int
}

// NewPool builds a pool with the given capacities. The defaults (0,0)
// give a generously provisioned pool (4096 small, 1024 clusters).
func NewPool(sched *sim.Scheduler, smallCap, clusterCap int) *Pool {
	if smallCap <= 0 {
		smallCap = 4096
	}
	if clusterCap <= 0 {
		clusterCap = 1024
	}
	return &Pool{sched: sched, smallCap: smallCap, clusterCap: clusterCap}
}

// Stats returns a snapshot of allocator accounting.
func (p *Pool) Stats() PoolStats {
	s := p.stats
	s.SmallInUse = p.smallInUse
	s.ClustersInUse = p.clustersInUse
	return s
}

// need computes the mbuf shape for n payload bytes.
func need(n int) (small, clusters int) {
	if n <= 0 {
		return 1, 0
	}
	if n <= clusterThreshold {
		small = (n + MbufDataSize - 1) / MbufDataSize
		return small, 0
	}
	clusters = n / ClusterSize
	rem := n - clusters*ClusterSize
	if rem > clusterThreshold {
		clusters++
	} else if rem > 0 {
		small = (rem + MbufDataSize - 1) / MbufDataSize
	}
	return small, clusters
}

func (p *Pool) available(small, clusters int) bool {
	return p.smallInUse+small <= p.smallCap && p.clustersInUse+clusters <= p.clusterCap
}

// node pops a recycled mbuf of the requested kind, or allocates one on
// the cold path before the free list reaches steady state.
//
//ctmsvet:hotpath
func (p *Pool) node(cluster bool) *Mbuf {
	list := &p.freeSmall
	if cluster {
		list = &p.freeClusters
	}
	if n := len(*list); n > 0 {
		m := (*list)[n-1]
		(*list)[n-1] = nil
		*list = (*list)[:n-1]
		return m
	}
	return &Mbuf{Cluster: cluster} //ctmsvet:allow hotpath cold refill path, runs only until the node free list reaches steady state
}

func (p *Pool) build(small, clusters, n int) *Chain {
	c := &Chain{}
	p.buildInto(c, small, clusters, n)
	return c
}

//ctmsvet:hotpath
func (p *Pool) buildInto(c *Chain, small, clusters, n int) {
	p.smallInUse += small
	p.clustersInUse += clusters
	if p.smallInUse > p.stats.SmallHigh {
		p.stats.SmallHigh = p.smallInUse
	}
	if p.clustersInUse > p.stats.ClustersHigh {
		p.stats.ClustersHigh = p.clustersInUse
	}
	p.stats.Allocs++

	var head, tail *Mbuf
	left := n
	for i := 0; i < clusters+small; i++ {
		cluster := i < clusters
		l := MbufDataSize
		if cluster {
			l = ClusterSize
		}
		if left < l {
			l = left
		}
		left -= l
		m := p.node(cluster)
		m.Len = l
		if head == nil {
			head = m
		} else {
			tail.Next = m
		}
		tail = m
	}
	if head == nil {
		sim.Checkf(false, "empty chain built for %d bytes", n) //ctmsvet:allow hotpath failure branch only; need() always shapes at least one mbuf
	}
	c.Head = head
}

// AllocNoWait allocates a chain for n payload bytes, or returns nil if the
// pool is exhausted — the interrupt-time contract.
func (p *Pool) AllocNoWait(n int) *Chain {
	small, clusters := need(n)
	if !p.available(small, clusters) {
		p.stats.Failures++
		return nil
	}
	return p.build(small, clusters, n)
}

// AllocInto is AllocNoWait for a caller-owned chain shell: it fills c with
// freshly accounted mbufs instead of allocating a new Chain, or reports
// false (leaving c untouched) when the pool is exhausted. Pooled frame
// envelopes use it so steady-state forwarding allocates no chain objects.
// The shell must be empty — filling a chain that still owns buffers would
// leak them past the accounting.
//
//ctmsvet:hotpath
func (p *Pool) AllocInto(c *Chain, n int) bool {
	if c.Head != nil {
		sim.Checkf(false, "AllocInto on a chain that still holds %d mbufs", c.Mbufs())
	}
	small, clusters := need(n)
	if !p.available(small, clusters) {
		p.stats.Failures++
		return false
	}
	p.buildInto(c, small, clusters, n)
	return true
}

// Alloc allocates a chain for n payload bytes, calling fn when the
// allocation succeeds. If the pool is exhausted, the caller sleeps until
// a Free makes room (FIFO order).
func (p *Pool) Alloc(n int, fn func(*Chain)) {
	small, clusters := need(n)
	if p.available(small, clusters) && len(p.waiters) == 0 {
		fn(p.build(small, clusters, n))
		return
	}
	p.stats.Waits++
	p.waiters = append(p.waiters, &waiter{small: small, clusters: clusters, fn: fn, size: n})
}

// Free returns a chain's buffers to the pool and wakes eligible waiters.
// The mbuf nodes go onto the node free lists for reuse; the shell keeps
// its Tag and is never recycled by the pool (see the free-list comment).
func (p *Pool) Free(c *Chain) {
	if c == nil || c.Head == nil {
		return
	}
	for m := c.Head; m != nil; {
		next := m.Next
		m.Next = nil
		m.Len = 0
		if m.Cluster {
			p.clustersInUse--
			if len(p.freeClusters) < p.clusterCap {
				p.freeClusters = append(p.freeClusters, m)
			}
		} else {
			p.smallInUse--
			if len(p.freeSmall) < p.smallCap {
				p.freeSmall = append(p.freeSmall, m)
			}
		}
		m = next
	}
	c.Head = nil
	p.stats.Frees++
	sim.Checkf(p.smallInUse >= 0 && p.clustersInUse >= 0, "mbuf pool underflow")

	for len(p.waiters) > 0 {
		w := p.waiters[0]
		if !p.available(w.small, w.clusters) {
			break
		}
		p.waiters = p.waiters[1:]
		ch := p.build(w.small, w.clusters, w.size)
		// Wakeup is asynchronous, as in the real kernel.
		p.sched.After(0, "mbuf.wakeup", func() { w.fn(ch) })
	}
}

// String summarizes pool state.
func (p *Pool) String() string {
	return fmt.Sprintf("mbufpool{small=%d/%d clusters=%d/%d waiters=%d}",
		p.smallInUse, p.smallCap, p.clustersInUse, p.clusterCap, len(p.waiters))
}
