// Package kernel models the pieces of the AOS 4.3 (BSD) kernel the paper's
// data path runs through: the mbuf buffer pool (whose allocation can stall
// "an arbitrarily long time" when exhausted, §2), a device-driver and ioctl
// framework (the paper adds new ioctls to wire drivers directly together),
// and a user-process model with syscall and context-switch costs — the
// stock transfer path the paper shows cannot sustain 150 KB/s.
package kernel

import (
	"fmt"

	"repro/internal/sim"
)

// BSD 4.3 buffer geometry.
const (
	// MbufDataSize is the payload capacity of a small mbuf.
	MbufDataSize = 112
	// ClusterSize is the payload capacity of a cluster mbuf.
	ClusterSize = 1024
	// clusterThreshold is the size above which the allocator uses
	// clusters, as m_get/m_getclr logic did.
	clusterThreshold = 256
)

// Mbuf is one buffer in a chain.
type Mbuf struct {
	Len     int
	Cluster bool
	Next    *Mbuf
}

// Cap reports the mbuf's payload capacity.
func (m *Mbuf) Cap() int {
	if m.Cluster {
		return ClusterSize
	}
	return MbufDataSize
}

// Chain is a linked list of mbufs holding one packet.
type Chain struct {
	Head *Mbuf
	// Tag carries the model payload riding in the chain (a protocol
	// packet, stream bytes, ...).
	Tag any
}

// Len reports the total payload bytes in the chain.
func (c *Chain) Len() int {
	n := 0
	for m := c.Head; m != nil; m = m.Next {
		n += m.Len
	}
	return n
}

// Mbufs reports the number of mbufs in the chain.
func (c *Chain) Mbufs() int {
	n := 0
	for m := c.Head; m != nil; m = m.Next {
		n++
	}
	return n
}

// Clusters reports how many of the chain's mbufs are clusters.
func (c *Chain) Clusters() int {
	n := 0
	for m := c.Head; m != nil; m = m.Next {
		if m.Cluster {
			n++
		}
	}
	return n
}

// PoolStats aggregates allocator accounting.
type PoolStats struct {
	Allocs        uint64
	Frees         uint64
	Failures      uint64 // AllocNoWait with an exhausted pool
	Waits         uint64 // blocking allocations that had to sleep
	SmallInUse    int
	ClustersInUse int
	SmallHigh     int
	ClustersHigh  int
}

// Pool is the kernel's shared mbuf pool. Interrupt-level code uses
// AllocNoWait (drops on exhaustion); process-level code uses Alloc, which
// sleeps until buffers return — the unbounded delay §2 warns about.
type Pool struct {
	sched         *sim.Scheduler
	smallCap      int
	clusterCap    int
	smallInUse    int
	clustersInUse int
	waiters       []*waiter
	stats         PoolStats
}

type waiter struct {
	small, clusters int
	fn              func(*Chain)
	size            int
}

// NewPool builds a pool with the given capacities. The defaults (0,0)
// give a generously provisioned pool (4096 small, 1024 clusters).
func NewPool(sched *sim.Scheduler, smallCap, clusterCap int) *Pool {
	if smallCap <= 0 {
		smallCap = 4096
	}
	if clusterCap <= 0 {
		clusterCap = 1024
	}
	return &Pool{sched: sched, smallCap: smallCap, clusterCap: clusterCap}
}

// Stats returns a snapshot of allocator accounting.
func (p *Pool) Stats() PoolStats {
	s := p.stats
	s.SmallInUse = p.smallInUse
	s.ClustersInUse = p.clustersInUse
	return s
}

// need computes the mbuf shape for n payload bytes.
func need(n int) (small, clusters int) {
	if n <= 0 {
		return 1, 0
	}
	if n <= clusterThreshold {
		small = (n + MbufDataSize - 1) / MbufDataSize
		return small, 0
	}
	clusters = n / ClusterSize
	rem := n - clusters*ClusterSize
	if rem > clusterThreshold {
		clusters++
	} else if rem > 0 {
		small = (rem + MbufDataSize - 1) / MbufDataSize
	}
	return small, clusters
}

func (p *Pool) available(small, clusters int) bool {
	return p.smallInUse+small <= p.smallCap && p.clustersInUse+clusters <= p.clusterCap
}

func (p *Pool) build(small, clusters, n int) *Chain {
	p.smallInUse += small
	p.clustersInUse += clusters
	if p.smallInUse > p.stats.SmallHigh {
		p.stats.SmallHigh = p.smallInUse
	}
	if p.clustersInUse > p.stats.ClustersHigh {
		p.stats.ClustersHigh = p.clustersInUse
	}
	p.stats.Allocs++

	var head, tail *Mbuf
	left := n
	link := func(m *Mbuf) {
		if head == nil {
			head = m
		} else {
			tail.Next = m
		}
		tail = m
	}
	for i := 0; i < clusters; i++ {
		l := ClusterSize
		if left < l {
			l = left
		}
		left -= l
		link(&Mbuf{Len: l, Cluster: true})
	}
	for i := 0; i < small; i++ {
		l := MbufDataSize
		if left < l {
			l = left
		}
		left -= l
		link(&Mbuf{Len: l})
	}
	sim.Checkf(head != nil, "empty chain built for %d bytes", n)
	return &Chain{Head: head}
}

// AllocNoWait allocates a chain for n payload bytes, or returns nil if the
// pool is exhausted — the interrupt-time contract.
func (p *Pool) AllocNoWait(n int) *Chain {
	small, clusters := need(n)
	if !p.available(small, clusters) {
		p.stats.Failures++
		return nil
	}
	return p.build(small, clusters, n)
}

// Alloc allocates a chain for n payload bytes, calling fn when the
// allocation succeeds. If the pool is exhausted, the caller sleeps until
// a Free makes room (FIFO order).
func (p *Pool) Alloc(n int, fn func(*Chain)) {
	small, clusters := need(n)
	if p.available(small, clusters) && len(p.waiters) == 0 {
		fn(p.build(small, clusters, n))
		return
	}
	p.stats.Waits++
	p.waiters = append(p.waiters, &waiter{small: small, clusters: clusters, fn: fn, size: n})
}

// Free returns a chain's buffers to the pool and wakes eligible waiters.
func (p *Pool) Free(c *Chain) {
	if c == nil || c.Head == nil {
		return
	}
	for m := c.Head; m != nil; m = m.Next {
		if m.Cluster {
			p.clustersInUse--
		} else {
			p.smallInUse--
		}
	}
	c.Head = nil
	p.stats.Frees++
	sim.Checkf(p.smallInUse >= 0 && p.clustersInUse >= 0, "mbuf pool underflow")

	for len(p.waiters) > 0 {
		w := p.waiters[0]
		if !p.available(w.small, w.clusters) {
			break
		}
		p.waiters = p.waiters[1:]
		ch := p.build(w.small, w.clusters, w.size)
		// Wakeup is asynchronous, as in the real kernel.
		p.sched.After(0, "mbuf.wakeup", func() { w.fn(ch) })
	}
}

// String summarizes pool state.
func (p *Pool) String() string {
	return fmt.Sprintf("mbufpool{small=%d/%d clusters=%d/%d waiters=%d}",
		p.smallInUse, p.smallCap, p.clustersInUse, p.clusterCap, len(p.waiters))
}
