package kernel

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNeedShapes(t *testing.T) {
	cases := []struct {
		n               int
		small, clusters int
	}{
		{0, 1, 0},
		{1, 1, 0},
		{112, 1, 0},
		{113, 2, 0},
		{256, 3, 0},  // at threshold: still small mbufs
		{257, 0, 1},  // above threshold: one cluster covers it
		{1024, 0, 1}, // exactly one cluster
		{1025, 1, 1}, // one cluster + 1 byte remainder in a small mbuf
		{2000, 0, 2}, // one cluster + 976 remainder promotes to a cluster
		{2048, 0, 2},
	}
	for _, c := range cases {
		s, cl := need(c.n)
		if s != c.small || cl != c.clusters {
			t.Errorf("need(%d) = (%d,%d), want (%d,%d)", c.n, s, cl, c.small, c.clusters)
		}
	}
}

func TestAllocChainLength(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 0, 0)
	for _, n := range []int{1, 100, 112, 500, 1024, 2000, 9000} {
		c := p.AllocNoWait(n)
		if c == nil {
			t.Fatalf("alloc %d failed on a fresh pool", n)
		}
		if c.Len() != n {
			t.Fatalf("chain for %d bytes has Len %d", n, c.Len())
		}
		p.Free(c)
	}
	st := p.Stats()
	if st.SmallInUse != 0 || st.ClustersInUse != 0 {
		t.Fatalf("pool should drain to zero: %+v", st)
	}
}

func TestAllocNoWaitExhaustion(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 4, 2)
	a := p.AllocNoWait(2000) // needs 2 clusters
	if a == nil {
		t.Fatal("first alloc should succeed")
	}
	if p.AllocNoWait(2000) != nil {
		t.Fatal("pool exhausted, AllocNoWait must fail")
	}
	if p.Stats().Failures != 1 {
		t.Fatalf("failure accounting: %+v", p.Stats())
	}
	p.Free(a)
	if p.AllocNoWait(2000) == nil {
		t.Fatal("after free, alloc should succeed again")
	}
}

func TestBlockingAllocWaitsForFree(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 4, 2)
	first := p.AllocNoWait(2000)
	var got *Chain
	p.Alloc(2000, func(c *Chain) { got = c })
	if got != nil {
		t.Fatal("alloc should have blocked")
	}
	if p.Stats().Waits != 1 {
		t.Fatalf("wait accounting: %+v", p.Stats())
	}
	sched.After(sim.Millisecond, "free", func() { p.Free(first) })
	sched.Run()
	if got == nil {
		t.Fatal("blocked alloc never completed")
	}
	if got.Len() != 2000 {
		t.Fatalf("resumed alloc wrong size: %d", got.Len())
	}
}

func TestBlockingAllocFIFO(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 0, 2)
	first := p.AllocNoWait(2000)
	var order []int
	p.Alloc(1024, func(*Chain) { order = append(order, 1) })
	p.Alloc(1024, func(*Chain) { order = append(order, 2) })
	p.Free(first)
	sched.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("waiters must wake FIFO: %v", order)
	}
}

func TestHighWaterMark(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 0, 0)
	a := p.AllocNoWait(2048)
	b := p.AllocNoWait(2048)
	p.Free(a)
	p.Free(b)
	if p.Stats().ClustersHigh != 4 {
		t.Fatalf("high water should be 4 clusters: %+v", p.Stats())
	}
}

// Property: alloc/free round-trips never corrupt pool accounting, and
// chain lengths always equal the request.
func TestPoolProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		sched := sim.NewScheduler()
		p := NewPool(sched, 0, 0)
		var chains []*Chain
		for _, s := range sizes {
			n := int(s % 8192)
			c := p.AllocNoWait(n)
			if c == nil {
				continue
			}
			if c.Len() != n {
				return false
			}
			chains = append(chains, c)
		}
		for _, c := range chains {
			p.Free(c)
		}
		st := p.Stats()
		return st.SmallInUse == 0 && st.ClustersInUse == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChainHelpers(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 0, 0)
	c := p.AllocNoWait(2100) // 2 clusters + 1 small (52 bytes rem <= 256)
	if c.Mbufs() != 3 {
		t.Fatalf("chain shape: %d mbufs", c.Mbufs())
	}
	if c.Clusters() != 2 {
		t.Fatalf("chain clusters: %d", c.Clusters())
	}
	c.Tag = "hello"
	if c.Tag != "hello" {
		t.Fatal("tag lost")
	}
	if (&Chain{}).Len() != 0 {
		t.Fatal("empty chain should have zero length")
	}
	p.Free(c)
	p.Free(nil) // must be safe
}

func TestDoubleFreeSafe(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 0, 0)
	c := p.AllocNoWait(100)
	p.Free(c)
	p.Free(c) // head is nil after first free; second free is a no-op
	if st := p.Stats(); st.SmallInUse != 0 {
		t.Fatalf("double free corrupted pool: %+v", st)
	}
}

// TestAllocIntoFillsCallerShell pins the pooled-envelope contract:
// AllocInto fills a caller-owned shell with the same mbuf shape
// AllocNoWait would build, reports exhaustion with false (shell
// untouched, failure counted), and its Free→AllocInto steady state
// recycles nodes instead of allocating.
func TestAllocIntoFillsCallerShell(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 0, 0)
	c := &Chain{}
	for _, n := range []int{1, 112, 500, 2000} {
		if !p.AllocInto(c, n) {
			t.Fatalf("AllocInto(%d) failed on a fresh pool", n)
		}
		ref := p.AllocNoWait(n)
		if c.Len() != ref.Len() || c.Mbufs() != ref.Mbufs() || c.Clusters() != ref.Clusters() {
			t.Fatalf("AllocInto(%d) shaped %d bytes / %d mbufs / %d clusters; AllocNoWait shaped %d / %d / %d",
				n, c.Len(), c.Mbufs(), c.Clusters(), ref.Len(), ref.Mbufs(), ref.Clusters())
		}
		p.Free(ref)
		p.Free(c)
	}

	// Exhaustion: the shell stays empty and the failure is counted.
	tiny := NewPool(sched, 1, 1)
	hog := tiny.AllocNoWait(2000)
	if hog != nil {
		t.Fatal("2-cluster alloc should fail on a 1-cluster pool")
	}
	big := tiny.AllocNoWait(1024)
	if big == nil {
		t.Fatal("1-cluster alloc should fit")
	}
	before := tiny.Stats().Failures
	if tiny.AllocInto(c, 1024) {
		t.Fatal("AllocInto succeeded on an exhausted pool")
	}
	if c.Head != nil {
		t.Fatal("failed AllocInto touched the shell")
	}
	if got := tiny.Stats().Failures; got != before+1 {
		t.Fatalf("failures %d; want %d", got, before+1)
	}
	tiny.Free(big)
}

// TestAllocIntoSteadyStateZeroAlloc pins the node free lists: once warm,
// an AllocInto→Free cycle on a reused shell allocates no mbuf objects
// and no chains — the kernel end of the zero-alloc forwarding chain.
func TestAllocIntoSteadyStateZeroAlloc(t *testing.T) {
	sched := sim.NewScheduler()
	p := NewPool(sched, 0, 0)
	c := &Chain{}
	for _, n := range []int{100, 1024, 2000} {
		n := n
		if !p.AllocInto(c, n) {
			t.Fatalf("warmup AllocInto(%d) failed", n)
		}
		p.Free(c)
		if got := testing.AllocsPerRun(200, func() {
			if !p.AllocInto(c, n) {
				t.Fatalf("steady-state AllocInto(%d) failed", n)
			}
			p.Free(c)
		}); got != 0 {
			t.Fatalf("AllocInto(%d)/Free cycle allocates %.1f per op; want 0", n, got)
		}
	}
}
