package sim

import (
	"math"
	"math/rand"
	"sort"
)

// RNG is a deterministic source of random variates for the model. It wraps
// math/rand with helpers that produce the distributions the simulation
// needs (exponential interarrivals, uniform jitter, truncated normals).
//
// Each subsystem should derive its own RNG with Fork so that adding or
// removing one traffic source does not perturb the draws seen by another —
// this keeps experiments comparable across configuration toggles.
//
//ctmsvet:shardowned
type RNG struct {
	r    *rand.Rand
	seed int64

	// Zipf sampler state: the CDF is precomputed once per (n, s) pair and
	// reused across draws, so a population generator sampling the same
	// title distribution millions of times pays the harmonic sum once.
	zipfN   int
	zipfS   float64
	zipfCDF []float64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed reports the seed this generator was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Fork derives an independent generator whose stream depends only on the
// parent seed and the label, not on how many draws the parent has made.
func (g *RNG) Fork(label string) *RNG {
	h := uint64(g.seed)
	for _, c := range label {
		h = h*1099511628211 + uint64(c) // FNV-style mixing
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return NewRNG(int64(h))
}

// Float64 returns a uniform variate in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Uniform returns a duration uniformly distributed in [lo, hi]. The
// bounds guard is condition-first so the passing path never boxes the
// Time arguments into Checkf's variadic slice — traffic sources draw
// jitter once per frame, and those boxes showed up in allocation
// profiles.
//
//ctmsvet:hotpath
func (g *RNG) Uniform(lo, hi Time) Time {
	if hi < lo {
		Checkf(false, "Uniform bounds inverted: [%v, %v]", lo, hi)
	}
	if hi == lo {
		return lo
	}
	return lo + Time(g.r.Int63n(int64(hi-lo)+1))
}

// Exp returns an exponentially distributed duration with the given mean.
// Used for Poisson interarrival processes (MAC frames, station insertions,
// background traffic bursts).
//
//ctmsvet:hotpath
func (g *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		Checkf(false, "Exp mean must be positive, got %v", mean)
	}
	return Time(g.r.ExpFloat64() * float64(mean))
}

// Normal returns a normally distributed duration truncated at zero.
func (g *RNG) Normal(mean, stddev Time) Time {
	v := float64(mean) + g.r.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return Time(v)
}

// LogNormal returns a log-normally distributed duration whose underlying
// normal has the given mu and sigma (in log-nanosecond space). Long-tailed
// kernel code-path costs use this.
func (g *RNG) LogNormal(mu, sigma float64) Time {
	return Time(math.Exp(mu + sigma*g.r.NormFloat64()))
}

// Pareto returns a bounded Pareto-distributed duration in [lo, hi] with
// shape alpha. Heavy-tailed burst lengths use this.
func (g *RNG) Pareto(lo, hi Time, alpha float64) Time {
	Checkf(hi > lo && lo > 0, "Pareto bounds invalid: [%v, %v]", lo, hi)
	l := float64(lo)
	h := float64(hi)
	u := g.r.Float64()
	la := math.Pow(l, alpha)
	ha := math.Pow(h, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < l {
		x = l
	}
	if x > h {
		x = h
	}
	return Time(x)
}

// Zipf returns a rank in [0, n) drawn from a Zipf distribution with
// exponent s: rank k is chosen with probability proportional to
// 1/(k+1)^s, so rank 0 is the most popular. s = 0 degenerates to the
// uniform distribution. The sampler inverts a precomputed CDF with one
// uniform draw, so the number of draws consumed per call is fixed —
// unlike rejection samplers, inserting or removing one Zipf consumer
// never perturbs the variates another Fork-derived stream sees.
func (g *RNG) Zipf(n int, s float64) int {
	Checkf(n > 0, "Zipf needs a positive rank count, got %d", n)
	Checkf(s >= 0, "Zipf exponent must be non-negative, got %v", s)
	if n != g.zipfN || s != g.zipfS {
		g.zipfN, g.zipfS = n, s
		g.zipfCDF = zipfCDF(n, s)
	}
	u := g.r.Float64()
	cdf := g.zipfCDF
	return sort.Search(n, func(i int) bool { return cdf[i] > u })
}

// zipfCDF precomputes the cumulative distribution of ranks 0..n-1 with
// weights 1/(k+1)^s, normalized so the last entry is exactly 1.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	cdf[n-1] = 1
	return cdf
}

// Pick returns a uniformly selected element of choices.
func Pick[T any](g *RNG, choices []T) T {
	Checkf(len(choices) > 0, "Pick on empty slice")
	return choices[g.Intn(len(choices))]
}
