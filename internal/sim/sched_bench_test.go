package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// Micro-benchmarks for the scheduler's three primitive operations —
// schedule, cancel, advance (dispatch) — on the timing wheel and on the
// reference binary heap it replaced (wheel_equiv_test.go), at queue depths
// spanning the simulator's range: 1k (one busy machine), 100k (a full
// session), 1M (the ROADMAP's millions-of-users ambition). The spreads
// cover the wheel's two regimes: nearDelay keeps every event inside the
// horizon, farDelay pushes a slice of them into the overflow heap.
//
// Run with: go test -run '^$' -bench 'Wheel|Heap' -benchmem ./internal/sim

const (
	nearDelay = 400 * Millisecond // inside the ≈537 ms wheel horizon
	farDelay  = 5 * Second        // a 9:1 near:far mix reaches the overflow heap
)

func prefillDelays(n int) []Time {
	rng := rand.New(rand.NewSource(42))
	ds := make([]Time, n)
	for i := range ds {
		if i%10 == 9 {
			ds[i] = Time(rng.Int63n(int64(farDelay)))
		} else {
			ds[i] = Time(rng.Int63n(int64(nearDelay)))
		}
	}
	return ds
}

func eachDepth(b *testing.B, run func(b *testing.B, depth int)) {
	for _, depth := range []int{1_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("pending=%d", depth), func(b *testing.B) {
			run(b, depth)
		})
	}
}

// scheduleCancel measures one At + Cancel round trip against a standing
// queue of the given depth — the repeater re-arm and the timeout-that-
// rarely-fires patterns.
func BenchmarkWheelScheduleCancel(b *testing.B) {
	eachDepth(b, func(b *testing.B, depth int) {
		s := NewScheduler()
		for _, d := range prefillDelays(depth) {
			s.At(d, "standing", func() {})
		}
		d := 100 * Millisecond
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.At(d, "churn", func() {}).Cancel()
		}
	})
}

func BenchmarkHeapScheduleCancel(b *testing.B) {
	eachDepth(b, func(b *testing.B, depth int) {
		s := &refScheduler{}
		for _, d := range prefillDelays(depth) {
			s.at(d, func() {})
		}
		d := 100 * Millisecond
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.at(d, func() {}).cancelled = true
		}
	})
}

// advance measures dispatch throughput: fire-and-rearm until b.N events
// have run, the steady state of every periodic source in the simulator.
func BenchmarkWheelAdvance(b *testing.B) {
	eachDepth(b, func(b *testing.B, depth int) {
		s := NewScheduler()
		var rearm func()
		rearm = func() { s.After(nearDelay/97, "tick", rearm) }
		for _, d := range prefillDelays(depth) {
			s.At(d, "tick", rearm)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.step(maxTime)
		}
	})
}

func BenchmarkHeapAdvance(b *testing.B) {
	eachDepth(b, func(b *testing.B, depth int) {
		s := &refScheduler{}
		var rearm func()
		rearm = func() { s.at(s.now+nearDelay/97, rearm) }
		for _, d := range prefillDelays(depth) {
			s.at(d, rearm)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.step(maxTime)
		}
	})
}
