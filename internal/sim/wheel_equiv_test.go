package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refScheduler is the container/heap event queue the timing wheel
// replaced, kept as an ordering oracle: for any workload the wheel must
// fire the exact same (at, seq) sequence the heap would have. The
// determinism matrix and every experiment golden depend on that.
type refScheduler struct {
	now   Time
	seq   uint64
	evs   refHeap
	fired uint64
}

type refEvent struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (s *refScheduler) at(t Time, fn func()) *refEvent {
	e := &refEvent{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.evs, e)
	return e
}

func (s *refScheduler) step(bound Time) bool {
	for len(s.evs) > 0 {
		e := s.evs[0]
		if e.cancelled {
			heap.Pop(&s.evs)
			continue
		}
		if e.at > bound {
			return false
		}
		heap.Pop(&s.evs)
		s.now = e.at
		s.fired++
		e.fn()
		return true
	}
	return false
}

func (s *refScheduler) runUntil(t Time) {
	for s.step(t) {
	}
	if s.now < t {
		s.now = t
	}
}

func (s *refScheduler) run() {
	for s.step(maxTime) {
	}
}

// schedDriver abstracts the two implementations so one workload script
// drives both. The cancel thunk must be a no-op once the event has fired
// (the workload drops handles at fire time, mirroring the real Event
// ownership rule).
type schedDriver interface {
	now() Time
	at(t Time, fn func()) (cancel func())
	runUntil(t Time)
	run()
	firedCount() uint64
}

type wheelDriver struct{ s *Scheduler }

func (d wheelDriver) now() Time { return d.s.Now() }
func (d wheelDriver) at(t Time, fn func()) func() {
	e := d.s.At(t, "wl", fn)
	return e.Cancel
}
func (d wheelDriver) runUntil(t Time)    { d.s.RunUntil(t) }
func (d wheelDriver) run()               { d.s.Run() }
func (d wheelDriver) firedCount() uint64 { return d.s.Fired() }

type refDriver struct{ s *refScheduler }

func (d refDriver) now() Time { return d.s.now }
func (d refDriver) at(t Time, fn func()) func() {
	e := d.s.at(t, fn)
	return func() { e.cancelled = true }
}
func (d refDriver) runUntil(t Time)    { d.s.runUntil(t) }
func (d refDriver) run()               { d.s.run() }
func (d refDriver) firedCount() uint64 { return d.s.fired }

// fireRec is one observed dispatch: the workload-assigned event id and
// the clock when it ran.
type fireRec struct {
	at Time
	id int
}

// equivWorkload drives a scheduler through a randomized mix of the shapes
// the simulator produces: same-instant ties, sub-tick and in-wheel delays,
// far-future overflow (past the ≈537 ms horizon), cancellations from
// inside callbacks, self-rescheduling repeaters, and bounded runs that
// force the wheel cursor to wrap several times. All randomness comes from
// one seeded source consumed in callback order, so two schedulers that
// fire in the same order see identical scripts.
type equivWorkload struct {
	rng     *rand.Rand
	d       schedDriver
	log     []fireRec
	nextID  int
	ids     []int
	pending map[int]func()
	budget  int
}

func newEquivWorkload(d schedDriver, seed int64, budget int) *equivWorkload {
	return &equivWorkload{
		rng:     rand.New(rand.NewSource(seed)),
		d:       d,
		pending: make(map[int]func()),
		budget:  budget,
	}
}

func (w *equivWorkload) randDelay() Time {
	switch w.rng.Intn(6) {
	case 0:
		return 0 // same instant: exercises the (at, seq) FIFO tie
	case 1:
		return Time(w.rng.Intn(int(2 * Microsecond))) // inside one wheel tick
	case 2:
		return Time(w.rng.Intn(int(500 * Microsecond)))
	case 3:
		return Time(w.rng.Intn(int(20 * Millisecond)))
	case 4:
		return Time(w.rng.Intn(int(500 * Millisecond))) // deep in the wheel
	default:
		return Time(w.rng.Intn(int(3 * Second))) // overflow heap territory
	}
}

func (w *equivWorkload) schedule(delay Time) {
	if w.budget <= 0 {
		return
	}
	w.budget--
	id := w.nextID
	w.nextID++
	cancel := w.d.at(w.d.now()+delay, func() {
		w.log = append(w.log, fireRec{at: w.d.now(), id: id})
		delete(w.pending, id)
		w.onFire()
	})
	w.ids = append(w.ids, id)
	w.pending[id] = cancel
}

// repeater schedules a self-rescheduling chain of n ticks — the Every
// pattern expressed through the common interface.
func (w *equivWorkload) repeater(period Time, n int) {
	id := w.nextID
	w.nextID++
	ticks := 0
	var tick func()
	tick = func() {
		w.log = append(w.log, fireRec{at: w.d.now(), id: id})
		ticks++
		if ticks < n {
			w.d.at(w.d.now()+period, tick)
		}
	}
	w.d.at(w.d.now()+period, tick)
}

func (w *equivWorkload) onFire() {
	for n := w.rng.Intn(3); n > 0; n-- {
		w.schedule(w.randDelay())
	}
	// Cancel a random earlier event; picking by id through the map keeps
	// the choice deterministic (no map iteration) and makes cancels of
	// already-fired events visible no-ops on both implementations.
	if len(w.ids) > 0 && w.rng.Intn(3) == 0 {
		id := w.ids[w.rng.Intn(len(w.ids))]
		if cancel, ok := w.pending[id]; ok {
			delete(w.pending, id)
			cancel()
		}
	}
}

func (w *equivWorkload) drive() {
	// Seed the run: immediate events, far timers, periodic chains.
	for i := 0; i < 20; i++ {
		w.schedule(w.randDelay())
	}
	w.repeater(12*Millisecond, 40)   // a frame-slot-like period
	w.repeater(700*Millisecond, 5)   // re-arms through the overflow heap
	w.repeater(131*Microsecond, 100) // ≈ one wheel tick
	// Bounded runs force cursor wraparounds while events remain queued.
	for _, bound := range []Time{100 * Millisecond, 600 * Millisecond, 2 * Second} {
		w.d.runUntil(bound)
	}
	w.d.run()
}

func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		wheel := newEquivWorkload(wheelDriver{NewScheduler()}, seed, 3000)
		wheel.drive()
		ref := newEquivWorkload(refDriver{&refScheduler{}}, seed, 3000)
		ref.drive()

		if len(wheel.log) == 0 {
			t.Fatalf("seed %d: workload fired nothing", seed)
		}
		if got, want := wheel.d.firedCount(), ref.d.firedCount(); got != want {
			t.Fatalf("seed %d: Fired() diverged: wheel %d, heap %d", seed, got, want)
		}
		if len(wheel.log) != len(ref.log) {
			t.Fatalf("seed %d: fire counts diverged: wheel %d, heap %d", seed, len(wheel.log), len(ref.log))
		}
		for i := range wheel.log {
			if wheel.log[i] != ref.log[i] {
				t.Fatalf("seed %d: firing sequence diverged at %d: wheel %+v, heap %+v",
					seed, i, wheel.log[i], ref.log[i])
			}
		}
	}
}

// The wheel must stay consistent when every event sits beyond the horizon
// (pure overflow workload) and when everything lands in one bucket.
func TestWheelEdgeDistributions(t *testing.T) {
	t.Run("all-overflow", func(t *testing.T) {
		s := NewScheduler()
		var got []Time
		for i := 20; i >= 1; i-- {
			at := Time(i) * Second
			s.At(at, "far", func() { got = append(got, s.Now()) })
		}
		s.Run()
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("overflow events out of order: %v", got)
			}
		}
		if len(got) != 20 {
			t.Fatalf("want 20 fires, got %d", len(got))
		}
	})
	t.Run("one-bucket", func(t *testing.T) {
		s := NewScheduler()
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			// All inside one tick: distinct at, FIFO-tied pairs included.
			s.At(Time(i/2), "tied", func() { order = append(order, i) })
		}
		s.Run()
		for i, v := range order {
			if v != i {
				t.Fatalf("in-bucket order wrong: %v", order)
			}
		}
	})
}
