package sim

import (
	"fmt"
	"strings"
)

// TraceEntry is one recorded simulation event.
type TraceEntry struct {
	T    Time
	What string
}

// Trace is a bounded in-memory log of simulation events, useful for
// debugging model behaviour in tests. When the bound is exceeded the oldest
// entries are discarded, mirroring the fixed-size capture buffers of the
// measurement hardware the paper used.
type Trace struct {
	entries []TraceEntry
	max     int
	dropped uint64
}

// NewTrace returns a trace that keeps at most max entries (0 means a
// default of 65536).
func NewTrace(max int) *Trace {
	if max <= 0 {
		max = 65536
	}
	return &Trace{max: max}
}

// Add appends an entry, evicting the oldest if the trace is full.
func (t *Trace) Add(at Time, what string) {
	if len(t.entries) >= t.max {
		// Drop the oldest half in one go to keep Add amortized O(1).
		half := len(t.entries) / 2
		t.dropped += uint64(half)
		t.entries = append(t.entries[:0], t.entries[half:]...)
	}
	t.entries = append(t.entries, TraceEntry{T: at, What: what})
}

// Addf formats and appends an entry.
func (t *Trace) Addf(at Time, format string, args ...any) {
	t.Add(at, fmt.Sprintf(format, args...))
}

// Len reports the number of retained entries.
func (t *Trace) Len() int { return len(t.entries) }

// Dropped reports how many entries were evicted.
func (t *Trace) Dropped() uint64 { return t.dropped }

// Entries returns the retained entries in order.
func (t *Trace) Entries() []TraceEntry { return t.entries }

// Matching returns the entries whose label contains substr.
func (t *Trace) Matching(substr string) []TraceEntry {
	var out []TraceEntry
	for _, e := range t.entries {
		if strings.Contains(e.What, substr) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the trace, one entry per line.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.entries {
		fmt.Fprintf(&b, "%12v  %s\n", e.T, e.What)
	}
	return b.String()
}
