package sim

import (
	"fmt"
	"sort"
	"strings"
)

// TraceEntry is one recorded simulation event in its legacy string form.
type TraceEntry struct {
	T    Time
	What string
}

// EventKind identifies a structured trace event type. Kinds are small
// integers registered once at init time with RegisterEventKind; the
// registry maps them back to names only when a trace is rendered, so the
// recording path never touches a string.
type EventKind uint8

// eventKindNames is the sparse kind registry. Index 0 is reserved so a
// zero-valued EventEntry is visibly unregistered.
var eventKindNames [256]string

// RegisterEventKind names a kind for rendering. Call from package init;
// registering two different names for one kind is an invariant violation
// (kinds are assigned in disjoint per-package blocks).
func RegisterEventKind(k EventKind, name string) {
	Checkf(k != 0, "event kind 0 is reserved")
	Checkf(name != "", "event kind %d registered with empty name", k)
	Checkf(eventKindNames[k] == "" || eventKindNames[k] == name,
		"event kind %d registered twice: %q and %q", k, eventKindNames[k], name)
	eventKindNames[k] = name
}

// String reports the registered name, or a numeric placeholder for
// unregistered kinds.
func (k EventKind) String() string {
	if n := eventKindNames[k]; n != "" {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// EventEntry is one structured trace record: a kind plus two opaque
// operands whose meaning the kind defines (sequence numbers, byte counts,
// stream indices). It is four machine words with no pointers — recording
// one is a couple of stores into a preallocated ring, nothing for the
// garbage collector to trace.
type EventEntry struct {
	T    Time
	Kind EventKind
	A, B int64
}

// String renders the entry; formatting cost is paid here, at read time,
// never when the event was recorded.
func (e EventEntry) String() string {
	return fmt.Sprintf("%v a=%d b=%d", e.Kind, e.A, e.B)
}

// Trace is a bounded in-memory log of simulation events, useful for
// debugging model behaviour in tests. It records two streams: legacy
// string entries (Add/Addf) and structured entries (AddEvent) kept in a
// preallocated ring. When either bound is exceeded the oldest entries are
// discarded, mirroring the fixed-size capture buffers of the measurement
// hardware the paper used.
//
// All recording methods are safe on a nil *Trace and do nothing, so call
// sites instrument unconditionally — sched.Trace().AddEvent(...) — and a
// run with no trace attached pays only the nil test.
type Trace struct {
	entries []TraceEntry
	max     int
	dropped uint64

	// Structured ring: events[ehead] is the oldest of elen live entries,
	// wrapping at len(events). The backing array is allocated once, on
	// the first AddEvent, sized to max.
	events   []EventEntry
	ehead    int
	elen     int
	edropped uint64
}

// NewTrace returns a trace that keeps at most max entries of each stream
// (0 means a default of 65536).
func NewTrace(max int) *Trace {
	if max <= 0 {
		max = 65536
	}
	return &Trace{max: max}
}

// Add appends a string entry, evicting the oldest if the trace is full.
// No-op on a nil trace.
func (t *Trace) Add(at Time, what string) {
	if t == nil {
		return
	}
	if len(t.entries) >= t.max {
		// Drop the oldest half in one go to keep Add amortized O(1).
		half := len(t.entries) / 2
		t.dropped += uint64(half)
		t.entries = append(t.entries[:0], t.entries[half:]...)
	}
	t.entries = append(t.entries, TraceEntry{T: at, What: what})
}

// Addf formats and appends a string entry. The nil check comes before the
// Sprintf, so call sites that format rich diagnostics cost nothing when no
// trace is attached; prefer AddEvent on hot paths, where even an attached
// trace must not format.
func (t *Trace) Addf(at Time, format string, args ...any) {
	if t == nil {
		return
	}
	t.Add(at, fmt.Sprintf(format, args...))
}

// AddEvent records a structured entry: three integer stores into a
// preallocated ring. No-op on a nil trace. This is the form hot paths use
// — no formatting, no allocation, nothing retained that the collector
// must scan.
//
//ctmsvet:hotpath
func (t *Trace) AddEvent(at Time, kind EventKind, a, b int64) {
	if t == nil {
		return
	}
	if t.events == nil {
		t.events = make([]EventEntry, t.max) //ctmsvet:allow hotpath one-time lazy allocation of the ring backing array, amortized over the run
	}
	i := t.ehead + t.elen
	if i >= len(t.events) {
		i -= len(t.events)
	}
	t.events[i] = EventEntry{T: at, Kind: kind, A: a, B: b}
	if t.elen < len(t.events) {
		t.elen++
		return
	}
	// Ring full: the slot we just wrote was the oldest entry.
	t.ehead++
	if t.ehead == len(t.events) {
		t.ehead = 0
	}
	t.edropped++
}

// Len reports the number of retained string entries.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return len(t.entries)
}

// Dropped reports how many string entries were evicted.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Entries returns the retained string entries in order.
func (t *Trace) Entries() []TraceEntry {
	if t == nil {
		return nil
	}
	return t.entries
}

// EventLen reports the number of retained structured entries.
func (t *Trace) EventLen() int {
	if t == nil {
		return 0
	}
	return t.elen
}

// EventsDropped reports how many structured entries were overwritten.
func (t *Trace) EventsDropped() uint64 {
	if t == nil {
		return 0
	}
	return t.edropped
}

// Events returns the retained structured entries oldest-first. The slice
// is a fresh copy; the ring keeps recording.
func (t *Trace) Events() []EventEntry {
	if t == nil || t.elen == 0 {
		return nil
	}
	out := make([]EventEntry, t.elen)
	n := copy(out, t.events[t.ehead:min(t.ehead+t.elen, len(t.events))])
	copy(out[n:], t.events[:t.elen-n])
	return out
}

// EventsOfKind returns the retained structured entries of one kind,
// oldest-first.
func (t *Trace) EventsOfKind(k EventKind) []EventEntry {
	var out []EventEntry
	for _, e := range t.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Matching returns the string entries whose label contains substr.
func (t *Trace) Matching(substr string) []TraceEntry {
	if t == nil {
		return nil
	}
	var out []TraceEntry
	for _, e := range t.entries {
		if strings.Contains(e.What, substr) {
			out = append(out, e)
		}
	}
	return out
}

// String renders the trace, one entry per line, both streams merged in
// time order (ties: string entries first, then structured). This is where
// structured entries finally pay their formatting cost.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	type line struct {
		at   Time
		tie  int
		text string
	}
	lines := make([]line, 0, len(t.entries)+t.elen)
	for _, e := range t.entries {
		lines = append(lines, line{at: e.T, tie: 0, text: e.What})
	}
	for _, e := range t.Events() {
		lines = append(lines, line{at: e.T, tie: 1, text: e.String()})
	}
	sort.SliceStable(lines, func(i, j int) bool {
		if lines[i].at != lines[j].at {
			return lines[i].at < lines[j].at
		}
		return lines[i].tie < lines[j].tie
	})
	var b strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&b, "%12v  %s\n", l.at, l.text)
	}
	return b.String()
}
