package sim

import "sync/atomic"

// Process-wide accounting of simulated work, aggregated across every
// scheduler in the process — the main experiment runs, the session
// layer's per-run schedulers, and any mini-sims tests spin up. ctmsbench
// reads these to report how much simulated time a wall-clock second buys.
//
// Each scheduler flushes deltas (not absolutes) when a Run/RunUntil call
// returns, so a scheduler driven by repeated RunUntil calls — the session
// layer's pattern — is counted exactly once per simulated nanosecond.
var (
	totalSimulated atomic.Int64
	totalFired     atomic.Uint64
)

// TotalSimulated reports the simulated time advanced by all schedulers in
// this process since start (or since the last ResetTotals).
func TotalSimulated() Time { return Time(totalSimulated.Load()) }

// TotalFired reports the events dispatched by all schedulers in this
// process since start (or since the last ResetTotals).
func TotalFired() uint64 { return totalFired.Load() }

// ResetTotals zeroes the process-wide counters. Benchmarks call this
// between measurement windows.
func ResetTotals() {
	totalSimulated.Store(0)
	totalFired.Store(0)
}

// flushMetrics publishes this scheduler's progress since the last flush
// into the process-wide totals. Called from the Run/RunUntil epilogue —
// never per event, so the atomics stay off the hot loop.
//
// The watermark delta accounting is per-scheduler state, so any number of
// schedulers may flush concurrently (the totals are atomics) and each
// simulated nanosecond is still counted exactly once: a scheduler driven
// by repeated RunUntil calls — the session layer's pattern, and every
// shard of a windowed topo run — publishes only what it advanced since
// its own last flush.
func (s *Scheduler) flushMetrics() {
	if s.deferFlush {
		return
	}
	s.FlushMetrics()
}

// FlushMetrics publishes progress into the process-wide totals now,
// regardless of the defer setting. Engines that own deferred schedulers
// call this once per shard when the run completes.
func (s *Scheduler) FlushMetrics() {
	if d := s.now - s.flushedNow; d > 0 {
		totalSimulated.Add(int64(d))
		s.flushedNow = s.now
	}
	if d := s.fired - s.flushedFired; d > 0 {
		totalFired.Add(d)
		s.flushedFired = s.fired
	}
}

// DeferMetricsFlush controls whether Run/RunUntil publish progress into
// the process-wide totals on return (the default) or leave it to an
// explicit FlushMetrics call. A windowed shard run steps its scheduler
// with thousands of short RunUntil calls per simulated second; deferring
// keeps those barriers from turning into contended cross-shard atomic
// traffic. Turning deferral off flushes immediately so no progress is
// ever lost.
func (s *Scheduler) DeferMetricsFlush(on bool) {
	s.deferFlush = on
	if !on {
		s.FlushMetrics()
	}
}
