package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Scheduler.At and Scheduler.After and may be cancelled
// before they fire.
//
// Ownership: an Event pointer is valid from the moment it is scheduled
// until the event fires or is cancelled. After that the scheduler recycles
// the object through a free list, so a retained pointer may later refer to
// a different, unrelated event. Cancel a pending event as many times as
// you like; do not keep the pointer around once the event has run.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	name      string
	cancelled bool
	index     int        // position in the heap, -1 once popped
	s         *Scheduler // owner, for eager removal and recycling
}

// When reports the simulated time at which the event is due to fire.
func (e *Event) When() Time { return e.at }

// Name reports the diagnostic label given when the event was scheduled.
func (e *Event) Name() string { return e.name }

// Cancel prevents the event from firing and removes it from the queue
// immediately, so long runs that schedule and cancel many timers do not
// grow the heap. Cancelling an event that has already fired or was
// already cancelled is a no-op.
func (e *Event) Cancel() {
	if e.cancelled || e.index < 0 {
		return
	}
	e.cancelled = true
	if e.s != nil {
		heap.Remove(&e.s.events, e.index)
		e.s.recycle(e)
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

//ctmsvet:hotpath
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e) //ctmsvet:allow hotpath heap grows to steady-state depth once, then reuses its backing array
}

//ctmsvet:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is the discrete-event engine. It owns the simulated clock and a
// priority queue of pending events. Events scheduled for the same instant
// fire in the order they were scheduled, which keeps runs deterministic.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	free    []*Event // recycled Event objects, reused by At/After
	stopped bool
	fired   uint64
	trace   *Trace
}

// maxFreeEvents caps the free list so a transient burst of timers does not
// pin memory for the rest of the run.
const maxFreeEvents = 1024

// alloc reuses a recycled Event when one is available. The simulation's
// steady state (handlers that fire and re-arm) runs entirely off the free
// list, so the inner event loop stops allocating per event.
//
//ctmsvet:hotpath
func (s *Scheduler) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.cancelled = false
		return e
	}
	return &Event{s: s} //ctmsvet:allow hotpath cold refill path, runs only until the free list reaches steady state
}

// recycle returns a popped or cancelled event to the free list, dropping
// its closure and name so they can be collected.
//
//ctmsvet:hotpath
func (s *Scheduler) recycle(e *Event) {
	e.fn = nil
	e.name = ""
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, e) //ctmsvet:allow hotpath free list capacity is preallocated at maxFreeEvents and the len guard keeps it there
	}
}

// NewScheduler returns a scheduler with the clock at zero. The event
// free list is preallocated to its cap so recycle never grows it.
func NewScheduler() *Scheduler {
	return &Scheduler{free: make([]*Event, 0, maxFreeEvents)}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have been dispatched so far; useful for
// tests and for sanity checks on run size.
func (s *Scheduler) Fired() uint64 { return s.fired }

// SetTrace attaches a trace log that records each dispatched event.
// A nil trace disables tracing.
func (s *Scheduler) SetTrace(t *Trace) { s.trace = t }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is an invariant violation: the model must never depend on
// re-ordering history. The guards are written condition-first so the
// passing case never boxes the Checkf arguments into its variadic any
// slice — At runs once per event, and those boxes were a measurable
// slice of the event loop's allocations.
//
//ctmsvet:hotpath
func (s *Scheduler) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		Checkf(false, "event %q scheduled at %v, before now %v", name, t, s.now)
	}
	if fn == nil {
		Checkf(false, "event %q scheduled with nil callback", name)
	}
	e := s.alloc()
	e.at, e.seq, e.fn, e.name = t, s.seq, fn, name
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current simulated time.
//
//ctmsvet:hotpath
func (s *Scheduler) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		Checkf(false, "event %q scheduled with negative delay %v", name, d)
	}
	return s.At(s.now+d, name, fn)
}

// Every schedules fn to run every period, starting after the first period,
// until the returned Repeater is stopped or the run ends.
func (s *Scheduler) Every(period Duration, name string, fn func()) *Repeater {
	Checkf(period > 0, "repeater %q needs a positive period, got %v", name, period)
	r := &Repeater{s: s, period: period, name: name, fn: fn}
	// The tick closure is built once here, not per arm: re-arming is a
	// per-tick hot path and a fresh closure every period is an
	// allocation the free list cannot absorb.
	r.tick = func() {
		if r.stopped {
			return
		}
		r.arm()
		r.fn()
	}
	r.arm()
	return r
}

// Repeater re-schedules a callback at a fixed period. The period is exact:
// ticks do not drift even if the callback itself takes simulated actions.
type Repeater struct {
	s       *Scheduler
	period  Duration
	name    string
	fn      func()
	tick    func() // wraps fn; built once in Every, reused every arm
	next    *Event
	stopped bool
}

//ctmsvet:hotpath
func (r *Repeater) arm() {
	r.next = r.s.After(r.period, r.name, r.tick)
}

// Stop halts future firings. The callback will not run again.
func (r *Repeater) Stop() {
	r.stopped = true
	if r.next != nil {
		r.next.Cancel()
	}
}

// Stop halts the run loop after the currently dispatching event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of live (non-cancelled) events in the queue.
// Cancelled events are removed from the heap eagerly, so this is just the
// heap's length — O(1), safe to poll from hot paths.
func (s *Scheduler) Pending() int { return len(s.events) }

// step dispatches the earliest pending event. It reports false when the
// queue is empty. The heap never holds cancelled events (Cancel removes
// them eagerly), so the head is always live.
//
//ctmsvet:hotpath
func (s *Scheduler) step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*Event)
	if e.at < s.now {
		Checkf(false, "time went backwards: event %q at %v, now %v", e.name, e.at, s.now)
	}
	s.now = e.at
	s.fired++
	if s.trace != nil {
		s.trace.Add(s.now, e.name)
	}
	fn := e.fn
	s.recycle(e)
	fn()
	return true
}

// Run dispatches events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil dispatches events with timestamps up to and including t, then
// advances the clock to exactly t. Events scheduled after t remain queued.
func (s *Scheduler) RunUntil(t Time) {
	Checkf(t >= s.now, "RunUntil(%v) is before now %v", t, s.now)
	s.stopped = false
	// Peek without popping; the head is always a live event.
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// String summarizes the scheduler state for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now: %v, pending: %d, fired: %d}", s.now, len(s.events), s.fired)
}
