package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Scheduler.At and Scheduler.After and may be cancelled
// before they fire.
//
// Ownership: an Event pointer is valid from the moment it is scheduled
// until the event fires or is cancelled. After that the scheduler recycles
// the object through a free list, so a retained pointer may later refer to
// a different, unrelated event. Cancel a pending event as many times as
// you like; do not keep the pointer around once the event has run.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	name      string
	cancelled bool
	home      int32      // wheel bucket index, or homeOverflow / homeNone
	index     int32      // position within the bucket slice or overflow heap
	s         *Scheduler // owner, for eager removal and recycling
}

const (
	// homeNone marks an event that is not queued: popped, cancelled, or
	// fresh off the free list.
	homeNone int32 = -1
	// homeOverflow marks an event parked in the far-future overflow heap.
	homeOverflow int32 = -2
)

// When reports the simulated time at which the event is due to fire.
func (e *Event) When() Time { return e.at }

// Name reports the diagnostic label given when the event was scheduled.
func (e *Event) Name() string { return e.name }

// Cancel prevents the event from firing and removes it from its queue
// immediately, so long runs that schedule and cancel many timers do not
// grow the wheel or the overflow heap. Cancelling an event that has
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() {
	if e.cancelled || e.home == homeNone {
		return
	}
	e.cancelled = true
	if e.s != nil {
		e.s.remove(e)
		e.s.recycle(e)
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// eventHeap is the overflow queue for events beyond the wheel horizon,
// ordered by (at, seq) exactly as the wheel fires.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = int32(i)
	h[j].index = int32(j)
}

//ctmsvet:hotpath
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.home = homeOverflow
	e.index = int32(len(*h))
	*h = append(*h, e) //ctmsvet:allow hotpath heap grows to steady-state depth once, then reuses its backing array
}

//ctmsvet:hotpath
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.home = homeNone
	*h = old[:n-1]
	return e
}

// Timing-wheel geometry. The wheel covers the near future in fixed-width
// ticks: events within wheelSize ticks of the cursor sit in their tick's
// bucket (O(1) schedule and cancel); everything farther out waits in the
// overflow heap and cascades into the wheel as the cursor advances. The
// dominant events — frame slots, playout ticks, kernel housekeeping,
// repeater arms — are all well inside the horizon.
const (
	// tickShift sets the bucket width: 2^17 ns ≈ 131 µs, fine enough that
	// microsecond-scale bursts spread across buckets (keeping the in-bucket
	// min scan short) and coarse enough that a 12 ms period spans only ~92
	// empty-bucket probes.
	tickShift = 17
	// wheelBits sets the bucket count: 2^12 = 4096 buckets ≈ 537 ms of
	// horizon, comfortably past the 250 ms purge-penalty window and the
	// 400 ms housekeeping interarrivals.
	wheelBits = 12
	wheelSize = int64(1) << wheelBits
	wheelMask = wheelSize - 1
)

// maxTime is the bound Run uses: dispatch everything.
const maxTime = Time(math.MaxInt64)

// Scheduler is the discrete-event engine. It owns the simulated clock and
// a hierarchical timing wheel of pending events (near-future buckets plus
// a far-future overflow heap). Events scheduled for the same instant fire
// in the order they were scheduled, which keeps runs deterministic; the
// (at, seq) order is bit-identical to the binary heap this replaced.
//
//ctmsvet:shardowned
type Scheduler struct {
	now      Time
	seq      uint64
	cursor   int64      // wheel tick of the last dispatched event
	wheel    [][]*Event // wheelSize buckets; tick t lives at wheel[t&wheelMask]
	inWheel  int        // events currently in wheel buckets
	overflow eventHeap  // events at or past cursor+wheelSize ticks
	free     []*Event   // recycled Event objects, reused by At/After
	stopped  bool
	fired    uint64
	trace    *Trace

	// metrics flush watermarks and deferral flag (see total.go)
	flushedNow   Time
	flushedFired uint64
	deferFlush   bool
}

// maxFreeEvents caps the free list so a transient burst of timers does not
// pin memory for the rest of the run.
const maxFreeEvents = 1024

// alloc reuses a recycled Event when one is available. The simulation's
// steady state (handlers that fire and re-arm) runs entirely off the free
// list, so the inner event loop stops allocating per event.
//
//ctmsvet:hotpath
func (s *Scheduler) alloc() *Event {
	if n := len(s.free); n > 0 {
		e := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		e.cancelled = false
		return e
	}
	return &Event{s: s, home: homeNone} //ctmsvet:allow hotpath cold refill path, runs only until the free list reaches steady state
}

// recycle returns a popped or cancelled event to the free list, dropping
// its closure and name so they can be collected.
//
//ctmsvet:hotpath
func (s *Scheduler) recycle(e *Event) {
	e.fn = nil
	e.name = ""
	e.home = homeNone
	if len(s.free) < maxFreeEvents {
		s.free = append(s.free, e) //ctmsvet:allow hotpath free list capacity is preallocated at maxFreeEvents and the len guard keeps it there
	}
}

// NewScheduler returns a scheduler with the clock at zero. The event free
// list is preallocated to its cap so recycle never grows it, and the
// wheel's bucket table is allocated up front (bucket slices themselves
// grow to steady-state occupancy on first use).
func NewScheduler() *Scheduler {
	return &Scheduler{
		wheel: make([][]*Event, wheelSize),
		free:  make([]*Event, 0, maxFreeEvents),
	}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have been dispatched so far; useful for
// tests and for sanity checks on run size.
func (s *Scheduler) Fired() uint64 { return s.fired }

// SetTrace attaches a trace log that records each dispatched event.
// A nil trace disables tracing.
func (s *Scheduler) SetTrace(t *Trace) { s.trace = t }

// Trace reports the attached trace log, or nil. Model components reach
// their run's trace through this — sim.Trace methods are nil-receiver
// safe, so call sites need no guard.
func (s *Scheduler) Trace() *Trace { return s.trace }

// enqueue places a scheduled event into its tick's wheel bucket, or into
// the overflow heap when the tick is past the wheel horizon. The caller
// guarantees e.at >= s.now, and the cursor never passes the clock's tick,
// so the event's tick is always at or ahead of the cursor.
//
//ctmsvet:hotpath
func (s *Scheduler) enqueue(e *Event) {
	tk := int64(e.at) >> tickShift
	if tk < s.cursor {
		Checkf(false, "event %q at %v maps to tick %d behind the wheel cursor %d", e.name, e.at, tk, s.cursor)
	}
	if tk >= s.cursor+wheelSize {
		heap.Push(&s.overflow, e)
		return
	}
	s.bucketPut(e, int(tk&wheelMask))
}

// bucketPut appends an event to a wheel bucket.
//
//ctmsvet:hotpath
func (s *Scheduler) bucketPut(e *Event, b int) {
	bs := s.wheel[b]
	e.home = int32(b)
	e.index = int32(len(bs))
	s.wheel[b] = append(bs, e) //ctmsvet:allow hotpath bucket slices grow to steady-state occupancy once, then reuse their backing arrays
	s.inWheel++
}

// remove takes a pending event out of whichever queue holds it: O(1)
// swap-delete from its wheel bucket, or heap removal from the overflow.
//
//ctmsvet:hotpath
func (s *Scheduler) remove(e *Event) {
	if e.home == homeOverflow {
		heap.Remove(&s.overflow, int(e.index))
		return
	}
	bs := s.wheel[e.home]
	last := len(bs) - 1
	i := int(e.index)
	bs[i] = bs[last]
	bs[i].index = int32(i)
	bs[last] = nil
	s.wheel[e.home] = bs[:last]
	e.home = homeNone
	s.inWheel--
}

// advanceTo commits the cursor to tick and cascades: overflow events whose
// ticks fall inside the new horizon move into their wheel buckets. Each
// overflow event cascades at most once, so the cost is amortized O(log n)
// per far-future event, paid only when its horizon opens.
//
//ctmsvet:hotpath
func (s *Scheduler) advanceTo(tick int64) {
	if tick > s.cursor {
		s.cursor = tick
	}
	for len(s.overflow) > 0 && int64(s.overflow[0].at)>>tickShift < s.cursor+wheelSize {
		e := heap.Pop(&s.overflow).(*Event)
		s.bucketPut(e, int((int64(e.at)>>tickShift)&wheelMask))
	}
}

// firstBucket scans forward from the cursor for the first occupied bucket
// and reports it with its tick. Within the wheel's horizon every tick maps
// to a distinct bucket, so scanning bucket indices in cursor order visits
// ticks in increasing order; the scan is read-only (the cursor commits
// only when an event actually fires, so an aborted bounded step leaves no
// trace). The caller guarantees the wheel is non-empty.
//
//ctmsvet:hotpath
func (s *Scheduler) firstBucket() ([]*Event, int64) {
	for k := int64(0); k < wheelSize; k++ {
		tick := s.cursor + k
		if bs := s.wheel[tick&wheelMask]; len(bs) > 0 {
			return bs, tick
		}
	}
	Checkf(false, "wheel accounting broken: inWheel > 0 but no bucket is occupied")
	return nil, 0
}

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is an invariant violation: the model must never depend on
// re-ordering history. The guards are written condition-first so the
// passing case never boxes the Checkf arguments into its variadic any
// slice — At runs once per event, and those boxes were a measurable
// slice of the event loop's allocations.
//
//ctmsvet:hotpath
func (s *Scheduler) At(t Time, name string, fn func()) *Event {
	if t < s.now {
		Checkf(false, "event %q scheduled at %v, before now %v", name, t, s.now)
	}
	if fn == nil {
		Checkf(false, "event %q scheduled with nil callback", name)
	}
	e := s.alloc()
	e.at, e.seq, e.fn, e.name = t, s.seq, fn, name
	s.seq++
	s.enqueue(e)
	return e
}

// After schedules fn to run d after the current simulated time.
//
//ctmsvet:hotpath
func (s *Scheduler) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		Checkf(false, "event %q scheduled with negative delay %v", name, d)
	}
	return s.At(s.now+d, name, fn)
}

// Every schedules fn to run every period, starting after the first period,
// until the returned Repeater is stopped or the run ends.
func (s *Scheduler) Every(period Duration, name string, fn func()) *Repeater {
	Checkf(period > 0, "repeater %q needs a positive period, got %v", name, period)
	r := &Repeater{s: s, period: period, name: name, fn: fn}
	// The tick closure is built once here, not per arm: re-arming is a
	// per-tick hot path and a fresh closure every period is an
	// allocation the free list cannot absorb.
	r.tick = func() {
		if r.stopped {
			return
		}
		r.arm()
		r.fn()
	}
	r.arm()
	return r
}

// Repeater re-schedules a callback at a fixed period. The period is exact:
// ticks do not drift even if the callback itself takes simulated actions.
type Repeater struct {
	s       *Scheduler
	period  Duration
	name    string
	fn      func()
	tick    func() // wraps fn; built once in Every, reused every arm
	next    *Event
	stopped bool
}

//ctmsvet:hotpath
func (r *Repeater) arm() {
	r.next = r.s.After(r.period, r.name, r.tick)
}

// Stop halts future firings. The callback will not run again.
func (r *Repeater) Stop() {
	r.stopped = true
	if r.next != nil {
		r.next.Cancel()
	}
}

// Stop halts the run loop after the currently dispatching event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of live (non-cancelled) events queued.
// Cancelled events leave their bucket or the overflow heap eagerly, so
// this is just two counters — O(1), safe to poll from hot paths.
func (s *Scheduler) Pending() int { return s.inWheel + len(s.overflow) }

// NextAt reports the timestamp of the earliest pending event without
// dispatching it, or ok=false when the queue is empty. Wheel events always
// precede overflow events (step's ordering argument), so the earliest
// occupied bucket's min — or failing that the overflow root — is the
// queue-wide minimum. The conservative-window engine uses this to decide
// whether a lookahead window holds any work at all before paying for a
// barrier round.
func (s *Scheduler) NextAt() (Time, bool) {
	if s.inWheel > 0 {
		bs, _ := s.firstBucket()
		at := bs[0].at
		for _, c := range bs[1:] {
			if c.at < at {
				at = c.at
			}
		}
		return at, true
	}
	if len(s.overflow) > 0 {
		return s.overflow[0].at, true
	}
	return 0, false
}

// step dispatches the earliest pending event if it is due at or before
// bound. It reports false when the queue is empty or the next event lies
// beyond the bound. Neither queue ever holds cancelled events (Cancel
// removes them eagerly), so whatever the scan finds is live.
//
// Order: wheel events occupy ticks in [cursor, cursor+wheelSize) and
// overflow events sit at or past cursor+wheelSize, so when the wheel is
// non-empty its earliest bucket strictly precedes every overflow event;
// within a bucket the linear min-scan picks the lowest (at, seq) — the
// exact order the binary heap produced.
//
//ctmsvet:hotpath
func (s *Scheduler) step(bound Time) bool {
	var e *Event
	if s.inWheel > 0 {
		bs, tick := s.firstBucket()
		e = bs[0]
		for _, c := range bs[1:] {
			if c.at < e.at || (c.at == e.at && c.seq < e.seq) {
				e = c
			}
		}
		if e.at > bound {
			return false
		}
		s.remove(e)
		s.advanceTo(tick)
	} else {
		if len(s.overflow) == 0 || s.overflow[0].at > bound {
			return false
		}
		e = heap.Pop(&s.overflow).(*Event)
		s.advanceTo(int64(e.at) >> tickShift)
	}
	if e.at < s.now {
		Checkf(false, "time went backwards: event %q at %v, now %v", e.name, e.at, s.now)
	}
	s.now = e.at
	s.fired++
	if s.trace != nil {
		s.trace.Add(s.now, e.name)
	}
	fn := e.fn
	s.recycle(e)
	fn()
	return true
}

// Run dispatches events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step(maxTime) {
	}
	s.flushMetrics()
}

// RunUntil dispatches events with timestamps up to and including t, then
// advances the clock to exactly t. Events scheduled after t remain queued.
func (s *Scheduler) RunUntil(t Time) {
	Checkf(t >= s.now, "RunUntil(%v) is before now %v", t, s.now)
	s.stopped = false
	for !s.stopped && s.step(t) {
	}
	if s.now < t {
		s.now = t
	}
	s.flushMetrics()
}

// String summarizes the scheduler state for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now: %v, pending: %d, fired: %d}", s.now, s.Pending(), s.fired)
}
