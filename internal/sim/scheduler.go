package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Scheduler.At and Scheduler.After and may be cancelled
// before they fire.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	name      string
	cancelled bool
	index     int // position in the heap, -1 once popped
}

// When reports the simulated time at which the event is due to fire.
func (e *Event) When() Time { return e.at }

// Name reports the diagnostic label given when the event was scheduled.
func (e *Event) Name() string { return e.name }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Scheduler is the discrete-event engine. It owns the simulated clock and a
// priority queue of pending events. Events scheduled for the same instant
// fire in the order they were scheduled, which keeps runs deterministic.
type Scheduler struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
	trace   *Trace
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current simulated time.
func (s *Scheduler) Now() Time { return s.now }

// Fired reports how many events have been dispatched so far; useful for
// tests and for sanity checks on run size.
func (s *Scheduler) Fired() uint64 { return s.fired }

// SetTrace attaches a trace log that records each dispatched event.
// A nil trace disables tracing.
func (s *Scheduler) SetTrace(t *Trace) { s.trace = t }

// At schedules fn to run at absolute simulated time t. Scheduling in the
// past is an invariant violation: the model must never depend on
// re-ordering history.
func (s *Scheduler) At(t Time, name string, fn func()) *Event {
	Checkf(t >= s.now, "event %q scheduled at %v, before now %v", name, t, s.now)
	Checkf(fn != nil, "event %q scheduled with nil callback", name)
	e := &Event{at: t, seq: s.seq, fn: fn, name: name}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// After schedules fn to run d after the current simulated time.
func (s *Scheduler) After(d Duration, name string, fn func()) *Event {
	Checkf(d >= 0, "event %q scheduled with negative delay %v", name, d)
	return s.At(s.now+d, name, fn)
}

// Every schedules fn to run every period, starting after the first period,
// until the returned Repeater is stopped or the run ends.
func (s *Scheduler) Every(period Duration, name string, fn func()) *Repeater {
	Checkf(period > 0, "repeater %q needs a positive period, got %v", name, period)
	r := &Repeater{s: s, period: period, name: name, fn: fn}
	r.arm()
	return r
}

// Repeater re-schedules a callback at a fixed period. The period is exact:
// ticks do not drift even if the callback itself takes simulated actions.
type Repeater struct {
	s       *Scheduler
	period  Duration
	name    string
	fn      func()
	next    *Event
	stopped bool
}

func (r *Repeater) arm() {
	r.next = r.s.After(r.period, r.name, func() {
		if r.stopped {
			return
		}
		r.arm()
		r.fn()
	})
}

// Stop halts future firings. The callback will not run again.
func (r *Repeater) Stop() {
	r.stopped = true
	if r.next != nil {
		r.next.Cancel()
	}
}

// Stop halts the run loop after the currently dispatching event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending reports the number of live (non-cancelled) events in the queue.
func (s *Scheduler) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// step dispatches the earliest pending event. It reports false when the
// queue is empty.
func (s *Scheduler) step() bool {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*Event)
		if e.cancelled {
			continue
		}
		Checkf(e.at >= s.now, "time went backwards: event %q at %v, now %v", e.name, e.at, s.now)
		s.now = e.at
		s.fired++
		if s.trace != nil {
			s.trace.Add(s.now, e.name)
		}
		e.fn()
		return true
	}
	return false
}

// Run dispatches events until the queue drains or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil dispatches events with timestamps up to and including t, then
// advances the clock to exactly t. Events scheduled after t remain queued.
func (s *Scheduler) RunUntil(t Time) {
	Checkf(t >= s.now, "RunUntil(%v) is before now %v", t, s.now)
	s.stopped = false
	for !s.stopped {
		// Peek without popping.
		if len(s.events) == 0 {
			break
		}
		next := s.events[0]
		if next.cancelled {
			heap.Pop(&s.events)
			continue
		}
		if next.at > t {
			break
		}
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

// String summarizes the scheduler state for debugging.
func (s *Scheduler) String() string {
	return fmt.Sprintf("sim.Scheduler{now: %v, pending: %d, fired: %d}", s.now, len(s.events), s.fired)
}
