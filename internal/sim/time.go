// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event scheduler, seeded random-variate generation and
// a trace log. Every other package in this repository that models hardware
// or kernel behaviour is driven by a sim.Scheduler; nothing in the model
// reads the wall clock, so runs are exactly reproducible for a given seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in nanoseconds since the
// start of the run. It is a distinct type from time.Duration to keep
// simulated and real time from being mixed accidentally.
//
//ctmsvet:unit s
type Time int64

// Duration is a span of simulated time in nanoseconds.
type Duration = Time

// Convenient units for constructing simulated durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// Microseconds reports t as a floating-point number of microseconds.
// The paper reports every measurement in microseconds, so most of the
// statistics pipeline works in this unit.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Std converts t to a standard library time.Duration, which is useful only
// for formatting.
func (t Time) Std() time.Duration { return time.Duration(t) }

// String formats the time compactly using standard duration notation.
func (t Time) String() string { return t.Std().String() }

// Scale returns t scaled by a dimensionless factor, rounding to the
// nearest nanosecond. It is used by cost models (for example, slowing the
// CPU down while a DMA engine steals memory cycles).
func Scale(t Time, factor float64) Time {
	if factor == 1 {
		return t
	}
	return Time(float64(t)*factor + 0.5)
}

// PerByte builds a duration from a per-byte cost and a byte count.
//
//ctmsvet:unit s/byte cost
func PerByte(cost Time, n int) Time { return cost * Time(n) }

// WireTime reports how long n bytes occupy a serial medium running at
// bitsPerSecond. It is exact for the 4 Mbit/s Token Ring: 2 µs per byte.
func WireTime(n int, bitsPerSecond int64) Time {
	bits := int64(n) * 8
	return Time(bits * int64(Second) / bitsPerSecond)
}

// Checkf panics with a formatted message if cond is false. The simulation
// kernel uses it for internal invariants that indicate programming errors,
// never for conditions that depend on model input.
func Checkf(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("sim: invariant violated: "+format, args...))
	}
}
