package sim

import (
	"strings"
	"testing"
)

func TestTraceBasics(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(Microsecond, "a")
	tr.Addf(2*Microsecond, "b %d", 7)
	if tr.Len() != 2 {
		t.Fatalf("want 2 entries, got %d", tr.Len())
	}
	if tr.Entries()[1].What != "b 7" {
		t.Fatalf("Addf formatting wrong: %q", tr.Entries()[1].What)
	}
	if !strings.Contains(tr.String(), "b 7") {
		t.Fatal("String should include entries")
	}
}

func TestTraceEviction(t *testing.T) {
	tr := NewTrace(10)
	for i := 0; i < 25; i++ {
		tr.Addf(Time(i), "e%d", i)
	}
	if tr.Len() > 10 {
		t.Fatalf("trace exceeded bound: %d", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Fatal("eviction should be reported")
	}
	// The newest entry must always survive.
	last := tr.Entries()[tr.Len()-1]
	if last.What != "e24" {
		t.Fatalf("newest entry lost: %q", last.What)
	}
}

func TestTraceMatching(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(1, "vca irq")
	tr.Add(2, "ring transmit")
	tr.Add(3, "vca handler")
	got := tr.Matching("vca")
	if len(got) != 2 {
		t.Fatalf("want 2 vca entries, got %d", len(got))
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	// All recording and reading methods must be no-ops on nil so call
	// sites can instrument unconditionally.
	tr.Add(1, "x")
	tr.Addf(2, "y %d", 1)
	tr.AddEvent(3, 1, 4, 5)
	if tr.Len() != 0 || tr.EventLen() != 0 || tr.Dropped() != 0 || tr.EventsDropped() != 0 {
		t.Fatal("nil trace should report empty")
	}
	if tr.Entries() != nil || tr.Events() != nil || tr.Matching("x") != nil || tr.String() != "" {
		t.Fatal("nil trace reads should be empty")
	}
}

const testKindTick EventKind = 255 // reserved for tests; real kinds grow from 1

func init() { RegisterEventKind(testKindTick, "test.tick") }

func TestTraceStructuredRing(t *testing.T) {
	tr := NewTrace(4)
	for i := 0; i < 6; i++ {
		tr.AddEvent(Time(i)*Microsecond, testKindTick, int64(i), int64(i*10))
	}
	if tr.EventLen() != 4 {
		t.Fatalf("ring should hold 4 entries, got %d", tr.EventLen())
	}
	if tr.EventsDropped() != 2 {
		t.Fatalf("want 2 overwritten, got %d", tr.EventsDropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		want := int64(i + 2) // oldest two overwritten
		if e.A != want || e.B != want*10 || e.Kind != testKindTick {
			t.Fatalf("entry %d wrong: %+v", i, e)
		}
	}
	if got := tr.EventsOfKind(testKindTick); len(got) != 4 {
		t.Fatalf("EventsOfKind: want 4, got %d", len(got))
	}
	if got := tr.EventsOfKind(200); got != nil {
		t.Fatalf("EventsOfKind for absent kind: want nil, got %v", got)
	}
}

func TestTraceLazyFormatting(t *testing.T) {
	tr := NewTrace(8)
	tr.AddEvent(Millisecond, testKindTick, 7, 9)
	tr.Add(2*Millisecond, "string entry")
	s := tr.String()
	if !strings.Contains(s, "test.tick a=7 b=9") {
		t.Fatalf("structured entry should render its registered kind name:\n%s", s)
	}
	if !strings.Contains(s, "string entry") {
		t.Fatalf("string entry missing:\n%s", s)
	}
	// Merged output is time-ordered: the structured entry (1 ms) first.
	if strings.Index(s, "test.tick") > strings.Index(s, "string entry") {
		t.Fatalf("streams should merge in time order:\n%s", s)
	}
	if got := EventKind(200).String(); got != "kind(200)" {
		t.Fatalf("unregistered kind placeholder wrong: %q", got)
	}
}

func TestTraceAddEventDoesNotAllocate(t *testing.T) {
	tr := NewTrace(1024)
	tr.AddEvent(0, testKindTick, 0, 0) // warm: ring backing array allocated here
	allocs := testing.AllocsPerRun(200, func() {
		tr.AddEvent(Microsecond, testKindTick, 1, 2)
	})
	if allocs != 0 {
		t.Fatalf("AddEvent must be allocation-free after warmup, got %v allocs/op", allocs)
	}
}

func TestSchedulerTraceGetter(t *testing.T) {
	s := NewScheduler()
	if s.Trace() != nil {
		t.Fatal("fresh scheduler should have no trace")
	}
	// The getter + nil-safe methods make unconditional instrumentation
	// legal even with no trace attached.
	s.Trace().AddEvent(1, testKindTick, 0, 0)
	tr := NewTrace(0)
	s.SetTrace(tr)
	if s.Trace() != tr {
		t.Fatal("Trace should return the attached trace")
	}
}

func TestSchedulerTraceIntegration(t *testing.T) {
	s := NewScheduler()
	tr := NewTrace(0)
	s.SetTrace(tr)
	s.After(Millisecond, "hello", func() {})
	s.Run()
	if len(tr.Matching("hello")) != 1 {
		t.Fatal("dispatched events should be traced")
	}
}
