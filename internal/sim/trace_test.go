package sim

import (
	"strings"
	"testing"
)

func TestTraceBasics(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(Microsecond, "a")
	tr.Addf(2*Microsecond, "b %d", 7)
	if tr.Len() != 2 {
		t.Fatalf("want 2 entries, got %d", tr.Len())
	}
	if tr.Entries()[1].What != "b 7" {
		t.Fatalf("Addf formatting wrong: %q", tr.Entries()[1].What)
	}
	if !strings.Contains(tr.String(), "b 7") {
		t.Fatal("String should include entries")
	}
}

func TestTraceEviction(t *testing.T) {
	tr := NewTrace(10)
	for i := 0; i < 25; i++ {
		tr.Addf(Time(i), "e%d", i)
	}
	if tr.Len() > 10 {
		t.Fatalf("trace exceeded bound: %d", tr.Len())
	}
	if tr.Dropped() == 0 {
		t.Fatal("eviction should be reported")
	}
	// The newest entry must always survive.
	last := tr.Entries()[tr.Len()-1]
	if last.What != "e24" {
		t.Fatalf("newest entry lost: %q", last.What)
	}
}

func TestTraceMatching(t *testing.T) {
	tr := NewTrace(0)
	tr.Add(1, "vca irq")
	tr.Add(2, "ring transmit")
	tr.Add(3, "vca handler")
	got := tr.Matching("vca")
	if len(got) != 2 {
		t.Fatalf("want 2 vca entries, got %d", len(got))
	}
}

func TestSchedulerTraceIntegration(t *testing.T) {
	s := NewScheduler()
	tr := NewTrace(0)
	s.SetTrace(tr)
	s.After(Millisecond, "hello", func() {})
	s.Run()
	if len(tr.Matching("hello")) != 1 {
		t.Fatal("dispatched events should be traced")
	}
}
