package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGForkIndependentOfParentDraws(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	// Consume some draws from a only; forks must still agree.
	for i := 0; i < 100; i++ {
		a.Float64()
	}
	fa := a.Fork("mac-traffic")
	fb := b.Fork("mac-traffic")
	for i := 0; i < 100; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("forked streams must depend only on seed and label")
		}
	}
}

func TestRNGForkDistinctLabels(t *testing.T) {
	g := NewRNG(1)
	a := g.Fork("alpha")
	b := g.Fork("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different labels should yield different streams")
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(3)
	lo, hi := 10*Microsecond, 20*Microsecond
	for i := 0; i < 10000; i++ {
		v := g.Uniform(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Uniform out of bounds: %v", v)
		}
	}
	if g.Uniform(5*Microsecond, 5*Microsecond) != 5*Microsecond {
		t.Fatal("degenerate Uniform should return the bound")
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(4)
	mean := 10 * Millisecond
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(g.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("Exp mean off: got %v want ~%v", Time(got), mean)
	}
}

func TestNormalTruncation(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if g.Normal(Microsecond, 100*Microsecond) < 0 {
			t.Fatal("Normal must be truncated at zero")
		}
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(6)
	lo, hi := Millisecond, 100*Millisecond
	for i := 0; i < 10000; i++ {
		v := g.Pareto(lo, hi, 1.3)
		if v < lo || v > hi {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestPick(t *testing.T) {
	g := NewRNG(8)
	choices := []int{10, 20, 30}
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[Pick(g, choices)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick should eventually hit every element, saw %v", seen)
	}
}

// Property: Uniform stays within bounds for arbitrary bound pairs.
func TestUniformProperty(t *testing.T) {
	g := NewRNG(9)
	f := func(a, b uint32) bool {
		lo, hi := Time(a), Time(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := g.Uniform(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbabilityExtremes(t *testing.T) {
	g := NewRNG(10)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) must never be true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) must always be true")
		}
	}
}
