package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must produce identical streams")
		}
	}
}

func TestRNGForkIndependentOfParentDraws(t *testing.T) {
	a := NewRNG(7)
	b := NewRNG(7)
	// Consume some draws from a only; forks must still agree.
	for i := 0; i < 100; i++ {
		a.Float64()
	}
	fa := a.Fork("mac-traffic")
	fb := b.Fork("mac-traffic")
	for i := 0; i < 100; i++ {
		if fa.Float64() != fb.Float64() {
			t.Fatal("forked streams must depend only on seed and label")
		}
	}
}

func TestRNGForkDistinctLabels(t *testing.T) {
	g := NewRNG(1)
	a := g.Fork("alpha")
	b := g.Fork("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("different labels should yield different streams")
	}
}

func TestUniformBounds(t *testing.T) {
	g := NewRNG(3)
	lo, hi := 10*Microsecond, 20*Microsecond
	for i := 0; i < 10000; i++ {
		v := g.Uniform(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Uniform out of bounds: %v", v)
		}
	}
	if g.Uniform(5*Microsecond, 5*Microsecond) != 5*Microsecond {
		t.Fatal("degenerate Uniform should return the bound")
	}
}

func TestExpMean(t *testing.T) {
	g := NewRNG(4)
	mean := 10 * Millisecond
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += float64(g.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("Exp mean off: got %v want ~%v", Time(got), mean)
	}
}

func TestNormalTruncation(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 10000; i++ {
		if g.Normal(Microsecond, 100*Microsecond) < 0 {
			t.Fatal("Normal must be truncated at zero")
		}
	}
}

func TestParetoBounds(t *testing.T) {
	g := NewRNG(6)
	lo, hi := Millisecond, 100*Millisecond
	for i := 0; i < 10000; i++ {
		v := g.Pareto(lo, hi, 1.3)
		if v < lo || v > hi {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestPick(t *testing.T) {
	g := NewRNG(8)
	choices := []int{10, 20, 30}
	seen := map[int]bool{}
	for i := 0; i < 300; i++ {
		seen[Pick(g, choices)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick should eventually hit every element, saw %v", seen)
	}
}

// Property: Uniform stays within bounds for arbitrary bound pairs.
func TestUniformProperty(t *testing.T) {
	g := NewRNG(9)
	f := func(a, b uint32) bool {
		lo, hi := Time(a), Time(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := g.Uniform(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfRange(t *testing.T) {
	g := NewRNG(11)
	for i := 0; i < 10000; i++ {
		k := g.Zipf(17, 1.1)
		if k < 0 || k >= 17 {
			t.Fatalf("Zipf rank out of range: %d", k)
		}
	}
	if g.Zipf(1, 2.0) != 0 {
		t.Fatal("Zipf over one rank must return 0")
	}
}

// TestZipfFrequencySlope checks the defining shape claim over fixed
// seeds: on a log-log plot of frequency against rank, the sampled
// distribution's least-squares slope is ≈ -s.
func TestZipfFrequencySlope(t *testing.T) {
	for _, s := range []float64{0.8, 1.0, 1.4} {
		const n = 40
		const draws = 400000
		g := NewRNG(12)
		counts := make([]float64, n)
		for i := 0; i < draws; i++ {
			counts[g.Zipf(n, s)]++
		}
		// Regress log(count) on log(rank+1) over the well-sampled head.
		var sx, sy, sxx, sxy float64
		m := 0
		for k := 0; k < n/2; k++ {
			if counts[k] < 50 {
				break
			}
			x, y := math.Log(float64(k+1)), math.Log(counts[k])
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
			m++
		}
		if m < 5 {
			t.Fatalf("s=%v: only %d well-sampled ranks", s, m)
		}
		slope := (float64(m)*sxy - sx*sy) / (float64(m)*sxx - sx*sx)
		if math.Abs(slope+s) > 0.08 {
			t.Fatalf("s=%v: frequency-rank slope %.3f, want ≈ %.3f", s, slope, -s)
		}
	}
}

func TestZipfUniformWhenExponentZero(t *testing.T) {
	g := NewRNG(13)
	const n = 8
	const draws = 80000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[g.Zipf(n, 0)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-draws/n) > 0.05*draws/n {
			t.Fatalf("s=0 rank %d count %d, want ≈ %d", k, c, draws/n)
		}
	}
}

// TestZipfForkStability pins the reproducibility the lab pool depends
// on: a Fork-derived generator draws the same Zipf sequence regardless
// of the parent's history, and regardless of which other (n, s) pairs
// the generator sampled before (the CDF cache must not leak state).
func TestZipfForkStability(t *testing.T) {
	a := NewRNG(14)
	b := NewRNG(14)
	for i := 0; i < 37; i++ {
		a.Float64()
		a.Zipf(9, 0.7) // perturb a's cache too
	}
	fa := a.Fork("population")
	fb := b.Fork("population")
	for i := 0; i < 1000; i++ {
		if fa.Zipf(100, 1.2) != fb.Zipf(100, 1.2) {
			t.Fatalf("draw %d: forked Zipf streams diverged", i)
		}
	}
	// Alternating parameters rebuilds the cache but consumes exactly one
	// uniform per draw, so the streams must still agree.
	for i := 0; i < 200; i++ {
		if fa.Zipf(10, 0.5) != fb.Zipf(10, 0.5) || fa.Zipf(50, 1.5) != fb.Zipf(50, 1.5) {
			t.Fatalf("draw %d: Zipf cache rebuild perturbed the stream", i)
		}
	}
}

func TestBoolProbabilityExtremes(t *testing.T) {
	g := NewRNG(10)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) must never be true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) must always be true")
		}
	}
}
