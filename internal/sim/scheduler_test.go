package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.At(30*Microsecond, "c", func() { order = append(order, 3) })
	s.At(10*Microsecond, "a", func() { order = append(order, 1) })
	s.At(20*Microsecond, "b", func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if s.Now() != 30*Microsecond {
		t.Fatalf("clock should end at last event, got %v", s.Now())
	}
}

func TestSchedulerSimultaneousFIFO(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Millisecond, "tie", func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestSchedulerAfterAndNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var got []Time
	s.After(5*Microsecond, "outer", func() {
		got = append(got, s.Now())
		s.After(7*Microsecond, "inner", func() {
			got = append(got, s.Now())
		})
	})
	s.Run()
	if len(got) != 2 || got[0] != 5*Microsecond || got[1] != 12*Microsecond {
		t.Fatalf("nested scheduling wrong: %v", got)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.After(Millisecond, "x", func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() should report true")
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []string
	s.At(10*Microsecond, "a", func() { fired = append(fired, "a") })
	s.At(20*Microsecond, "b", func() { fired = append(fired, "b") })
	s.At(30*Microsecond, "c", func() { fired = append(fired, "c") })
	s.RunUntil(20 * Microsecond)
	if len(fired) != 2 {
		t.Fatalf("RunUntil should fire events at or before the bound, got %v", fired)
	}
	if s.Now() != 20*Microsecond {
		t.Fatalf("clock should sit at the bound, got %v", s.Now())
	}
	s.RunUntil(25 * Microsecond)
	if s.Now() != 25*Microsecond {
		t.Fatalf("RunUntil with no events should still advance the clock, got %v", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event should fire on Run, got %v", fired)
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	n := 0
	s.At(1*Microsecond, "a", func() { n++; s.Stop() })
	s.At(2*Microsecond, "b", func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("Stop should halt dispatch, fired %d", n)
	}
	s.Run()
	if n != 2 {
		t.Fatalf("Run should resume after Stop, fired %d", n)
	}
}

func TestSchedulerPastSchedulingPanics(t *testing.T) {
	s := NewScheduler()
	s.At(10*Microsecond, "a", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		s.At(5*Microsecond, "past", func() {})
	})
	s.Run()
}

func TestRepeaterExactPeriod(t *testing.T) {
	s := NewScheduler()
	var ticks []Time
	r := s.Every(12*Millisecond, "vca", func() { ticks = append(ticks, s.Now()) })
	s.RunUntil(100 * Millisecond)
	r.Stop()
	if len(ticks) != 8 {
		t.Fatalf("want 8 ticks in 100 ms at 12 ms, got %d", len(ticks))
	}
	for i, tk := range ticks {
		want := Time(i+1) * 12 * Millisecond
		if tk != want {
			t.Fatalf("tick %d at %v, want %v (period must not drift)", i, tk, want)
		}
	}
}

func TestRepeaterStopInsideCallback(t *testing.T) {
	s := NewScheduler()
	n := 0
	var r *Repeater
	r = s.Every(Millisecond, "tick", func() {
		n++
		if n == 3 {
			r.Stop()
		}
	})
	s.Run()
	if n != 3 {
		t.Fatalf("repeater should stop after 3 ticks, got %d", n)
	}
}

func TestSchedulerPendingCountsLiveEvents(t *testing.T) {
	s := NewScheduler()
	e1 := s.After(Millisecond, "a", func() {})
	s.After(2*Millisecond, "b", func() {})
	if s.Pending() != 2 {
		t.Fatalf("want 2 pending, got %d", s.Pending())
	}
	e1.Cancel()
	if s.Pending() != 1 {
		t.Fatalf("want 1 pending after cancel, got %d", s.Pending())
	}
}

func TestSchedulerEventFreeListReuse(t *testing.T) {
	s := NewScheduler()
	e1 := s.After(Microsecond, "first", func() {})
	s.Run()
	// The fired event must be recycled: the next scheduling reuses the
	// same object instead of allocating.
	e2 := s.After(Microsecond, "second", func() {})
	if e1 != e2 {
		t.Fatal("fired event was not recycled through the free list")
	}
	if e2.Cancelled() || e2.Name() != "second" {
		t.Fatalf("recycled event kept stale state: cancelled=%t name=%q", e2.Cancelled(), e2.Name())
	}
	fired := false
	e3 := s.After(Microsecond, "third", func() { fired = true })
	e3.Cancel()
	e4 := s.After(Microsecond, "fourth", func() {})
	if e3 != e4 {
		t.Fatal("cancelled event was not recycled")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled callback ran after its event was recycled")
	}
}

func TestSchedulerCancelRemovesEagerly(t *testing.T) {
	s := NewScheduler()
	var events []*Event
	for i := 0; i < 100; i++ {
		events = append(events, s.At(Time(i+1)*Millisecond, "e", func() {}))
	}
	for i, e := range events {
		if i%2 == 0 {
			e.Cancel()
		}
	}
	// Cancelled events leave the heap immediately — the queue must not
	// grow with dead entries on long runs with many cancels.
	if got := s.Pending(); got != 50 {
		t.Fatalf("want 50 pending after eager removal, got %d", got)
	}
	queued := len(s.overflow)
	for _, bs := range s.wheel {
		queued += len(bs)
	}
	if queued != 50 {
		t.Fatalf("queues still hold %d entries, want 50", queued)
	}
	fired := 0
	for s.step(maxTime) {
		fired++
	}
	if fired != 50 {
		t.Fatalf("want the 50 live events to fire, got %d", fired)
	}
	// Double-cancel and cancel-after-run stay no-ops.
	events[1].Cancel()
}

func TestSchedulerCancelDuringRun(t *testing.T) {
	s := NewScheduler()
	var firedB bool
	var eb *Event
	s.At(Millisecond, "a", func() { eb.Cancel() })
	eb = s.At(2*Millisecond, "b", func() { firedB = true })
	s.At(3*Millisecond, "c", func() {})
	s.Run()
	if firedB {
		t.Fatal("event cancelled mid-run still fired")
	}
	if s.Now() != 3*Millisecond {
		t.Fatalf("run should continue past the cancellation, now %v", s.Now())
	}
}

// Property: for any set of non-negative delays, events dispatch in
// non-decreasing time order and the clock never moves backwards.
func TestSchedulerMonotoneClockProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		last := Time(-1)
		ok := true
		for i, d := range delays {
			_ = i
			s.At(Time(d)*Microsecond, "e", func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit ladder broken")
	}
	if got := (2500 * Microsecond).Milliseconds(); got != 2.5 {
		t.Fatalf("Milliseconds: got %v", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3 {
		t.Fatalf("Microseconds: got %v", got)
	}
	if got := WireTime(2000, 4_000_000); got != 4*Millisecond {
		t.Fatalf("2000 bytes on a 4 Mbit ring should take 4 ms, got %v", got)
	}
	if got := Scale(100*Microsecond, 1.5); got != 150*Microsecond {
		t.Fatalf("Scale: got %v", got)
	}
	if got := PerByte(Microsecond, 2000); got != 2*Millisecond {
		t.Fatalf("PerByte: got %v", got)
	}
}
