package sim

import (
	"sync"
	"testing"
)

// TestTotalsExactUnderConcurrentSchedulers drives many schedulers from
// concurrent goroutines — each stepped by thousands of short RunUntil
// windows, the shard-runner pattern — and checks the process-wide totals
// advance by exactly the sum of the per-scheduler work, both with the
// default per-call flush and with deferred flushing.
func TestTotalsExactUnderConcurrentSchedulers(t *testing.T) {
	for _, deferred := range []bool{false, true} {
		const (
			shards   = 8
			windows  = 500
			window   = Time(2 * Millisecond)
			duration = Time(windows) * window
		)
		simBefore := TotalSimulated()
		firedBefore := TotalFired()

		fired := make([]uint64, shards)
		var wg sync.WaitGroup
		wg.Add(shards)
		for i := 0; i < shards; i++ {
			go func(i int) {
				defer wg.Done()
				s := NewScheduler()
				s.DeferMetricsFlush(deferred)
				s.Every(300*Microsecond, "tick", func() {})
				for k := 1; k <= windows; k++ {
					s.RunUntil(Time(k) * window)
				}
				if deferred {
					s.FlushMetrics()
				}
				fired[i] = s.Fired()
			}(i)
		}
		wg.Wait()

		wantSim := Time(shards) * duration
		if got := TotalSimulated() - simBefore; got != wantSim {
			t.Errorf("deferred=%v: TotalSimulated advanced by %v, want %v", deferred, got, wantSim)
		}
		var wantFired uint64
		for _, f := range fired {
			wantFired += f
		}
		if got := TotalFired() - firedBefore; got != wantFired {
			t.Errorf("deferred=%v: TotalFired advanced by %d, want %d", deferred, got, wantFired)
		}
	}
}

// TestDeferMetricsFlush checks the deferral contract: a deferred
// scheduler publishes nothing until FlushMetrics (or turning deferral
// off), and never double-counts.
func TestDeferMetricsFlush(t *testing.T) {
	base := TotalSimulated()
	s := NewScheduler()
	s.DeferMetricsFlush(true)
	s.RunUntil(Second)
	if got := TotalSimulated() - base; got != 0 {
		t.Fatalf("deferred RunUntil published %v; want 0 until FlushMetrics", got)
	}
	s.FlushMetrics()
	if got := TotalSimulated() - base; got != Second {
		t.Fatalf("after FlushMetrics totals advanced by %v; want %v", got, Second)
	}
	s.FlushMetrics() // idempotent: no progress since the last flush
	if got := TotalSimulated() - base; got != Second {
		t.Fatalf("second FlushMetrics changed totals to %v; want %v", got, Second)
	}
	s.RunUntil(2 * Second)
	s.DeferMetricsFlush(false) // turning deferral off flushes immediately
	if got := TotalSimulated() - base; got != 2*Second {
		t.Fatalf("after DeferMetricsFlush(false) totals advanced by %v; want %v", got, 2*Second)
	}
}
