package inet

import (
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// ARP frame sizes (total bytes, in the 60–300 byte class the paper's
// traffic analysis describes).
const (
	arpRequestSize = 60
	arpReplySize   = 60
	// arpCacheTTL forces periodic re-resolution, producing the
	// background ARP chatter the paper sees on the public ring.
	arpCacheTTL = 5 * sim.Minute
)

// ARPStats aggregates ARP accounting.
type ARPStats struct {
	Hits, Misses     uint64
	Requests         uint64
	Replies          uint64
	Timeouts         uint64
	GratuitousHeard  uint64
	PendingHighWater int
}

// arpOp distinguishes requests from replies in the fake payload.
type arpPayload struct {
	op     int // 1 = request, 2 = reply
	target ring.Addr
	sender ring.Addr
}

type arpEntry struct {
	hw      ring.Addr
	expires sim.Time
}

// ARP resolves protocol addresses to ring addresses. In this model the
// two spaces are identical, but the traffic and the cache behaviour —
// misses queue the packet and put a broadcast on the ring — are real.
type ARP struct {
	s       *Stack
	cache   map[ring.Addr]arpEntry
	pending map[ring.Addr][]func(ring.Addr, bool)
	stats   ARPStats
}

func newARP(s *Stack) *ARP {
	return &ARP{
		s:       s,
		cache:   make(map[ring.Addr]arpEntry),
		pending: make(map[ring.Addr][]func(ring.Addr, bool)),
	}
}

// resolve invokes fn with the hardware address for dst, consulting the
// cache and emitting a request on a miss.
func (a *ARP) resolve(dst ring.Addr, fn func(ring.Addr, bool)) {
	now := a.s.k.Sched().Now()
	if e, ok := a.cache[dst]; ok && now < e.expires {
		a.stats.Hits++
		fn(e.hw, true)
		return
	}
	a.stats.Misses++
	a.pending[dst] = append(a.pending[dst], fn)
	if n := len(a.pending[dst]); n > a.stats.PendingHighWater {
		a.stats.PendingHighWater = n
	}
	if len(a.pending[dst]) > 1 {
		return // a request is already outstanding
	}
	a.sendRequest(dst)
	// Give up after one second, dropping queued packets.
	a.s.k.Sched().After(sim.Second, "arp.timeout", func() {
		waiters := a.pending[dst]
		if len(waiters) == 0 {
			return
		}
		if _, ok := a.cache[dst]; ok {
			return
		}
		delete(a.pending, dst)
		a.stats.Timeouts++
		for _, w := range waiters {
			w(0, false)
		}
	})
}

func (a *ARP) sendRequest(dst ring.Addr) {
	a.stats.Requests++
	ch := a.s.k.Pool.AllocNoWait(arpRequestSize)
	if ch == nil {
		return
	}
	ch.Tag = &arpPayload{op: 1, target: dst, sender: a.s.addr}
	a.s.drv.Output(&tradapter.Outgoing{
		Chain: ch,
		Size:  arpRequestSize,
		Class: tradapter.ClassARP,
		Dst:   ring.Broadcast,
		Done: func(ring.DeliveryStatus) {
			a.s.k.Pool.Free(ch)
		},
	})
}

// input is the driver split-point handler for ARP frames.
func (a *ARP) input(rcv *tradapter.Received) []rtpc.Seg {
	return []rtpc.Seg{
		a.s.k.Machine.CopySeg("dma-to-mbuf", rcv.Size, rcv.Buffer.Kind, rtpc.SystemMemory),
		rtpc.Mark("release-buf", rcv.Release),
		rtpc.Then("arp-input", a.s.costs.IPInput, func() {
			out, ok := rcv.Frame.Payload.(*tradapter.Outgoing)
			if !ok {
				return
			}
			p, ok := out.Chain.Tag.(*arpPayload)
			if !ok {
				return
			}
			a.handle(p)
		}),
	}
}

func (a *ARP) handle(p *arpPayload) {
	now := a.s.k.Sched().Now()
	// Every ARP packet teaches us the sender's mapping.
	a.cache[p.sender] = arpEntry{hw: p.sender, expires: now + arpCacheTTL}

	switch p.op {
	case 1:
		if p.target != a.s.addr {
			a.stats.GratuitousHeard++
			return
		}
		// Reply directly to the requester.
		a.stats.Replies++
		ch := a.s.k.Pool.AllocNoWait(arpReplySize)
		if ch == nil {
			return
		}
		ch.Tag = &arpPayload{op: 2, target: p.sender, sender: a.s.addr}
		a.s.drv.Output(&tradapter.Outgoing{
			Chain: ch,
			Size:  arpReplySize,
			Class: tradapter.ClassARP,
			Dst:   p.sender,
			Done: func(ring.DeliveryStatus) {
				a.s.k.Pool.Free(ch)
			},
		})
	case 2:
		if p.target != a.s.addr {
			return
		}
		// Resolution complete: drain waiters.
		waiters := a.pending[p.sender]
		delete(a.pending, p.sender)
		for _, w := range waiters {
			w(p.sender, true)
		}
	}
}
