package inet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// IPHeaderSize is the size of our IPv4-style header.
const IPHeaderSize = 20

// MTU is the maximum transport payload per frame. The paper's file
// transfer packets are 1522 bytes total on the ring; with ring overhead
// (21) and IP header (20) that leaves ~1480 of transport payload.
const MTU = 1480

// Proto identifies the payload protocol in the IP header.
type Proto uint8

const (
	// ProtoRDT is the reliable transport.
	ProtoRDT Proto = 6
	// ProtoDGram is the unreliable datagram service.
	ProtoDGram Proto = 17
)

// IPHeader is the network-layer header.
type IPHeader struct {
	Proto    Proto
	Src, Dst ring.Addr
	Length   uint16
	ID       uint16
}

// Encode serializes the header with a valid checksum.
func (h IPHeader) Encode() []byte {
	b := make([]byte, IPHeaderSize)
	b[0] = 0x45
	binary.BigEndian.PutUint16(b[2:], h.Length)
	binary.BigEndian.PutUint16(b[4:], h.ID)
	b[8] = 64
	b[9] = byte(h.Proto)
	binary.BigEndian.PutUint16(b[12:], uint16(h.Src))
	binary.BigEndian.PutUint16(b[16:], uint16(h.Dst))
	cs := Checksum(b)
	binary.BigEndian.PutUint16(b[10:], cs)
	return b
}

// DecodeIPHeader parses and validates an encoded header.
func DecodeIPHeader(b []byte) (IPHeader, error) {
	if len(b) < IPHeaderSize {
		return IPHeader{}, fmt.Errorf("inet: short IP header: %d", len(b))
	}
	if !VerifyChecksum(b[:IPHeaderSize]) {
		return IPHeader{}, fmt.Errorf("inet: IP header checksum mismatch")
	}
	return IPHeader{
		Proto:  Proto(b[9]),
		Src:    ring.Addr(binary.BigEndian.Uint16(b[12:])),
		Dst:    ring.Addr(binary.BigEndian.Uint16(b[16:])),
		Length: binary.BigEndian.Uint16(b[2:]),
		ID:     binary.BigEndian.Uint16(b[4:]),
	}, nil
}

// Costs are the per-packet CPU costs of the stack.
type Costs struct {
	// IPOutput covers route lookup, header build and checksum.
	IPOutput sim.Time
	// IPInput covers validation and demux.
	IPInput sim.Time
	// TransportSeg covers transport-layer processing per segment.
	TransportSeg sim.Time
	// ARPLookup is a cache hit; a miss additionally queues the packet
	// and emits a request frame.
	ARPLookup sim.Time
}

// DefaultCosts returns 1990-class software costs.
func DefaultCosts() Costs {
	return Costs{
		IPOutput:     180 * sim.Microsecond,
		IPInput:      140 * sim.Microsecond,
		TransportSeg: 260 * sim.Microsecond,
		ARPLookup:    15 * sim.Microsecond,
	}
}

// Datagram is one transport message travelling through the stack.
type Datagram struct {
	IP      IPHeader
	Payload any
	Bytes   int // transport payload size
	Seq     uint32
	Ack     bool
	AckNum  uint32
}

// Stack is one machine's IP instance bound to its Token Ring driver.
type Stack struct {
	k     *kernel.Kernel
	drv   *tradapter.Driver
	addr  ring.Addr
	costs Costs
	arp   *ARP
	ipID  uint16

	// listeners by protocol
	rdt   map[ring.Addr]*RDTConn
	dgRcv func(*Datagram, sim.Time)

	stats StackStats
}

// StackStats aggregates IP-level accounting.
type StackStats struct {
	IPOut, IPIn     uint64
	BytesOut        uint64
	Dropped         uint64
	ChecksumErrors  uint64
	FramesFragments uint64
}

// NewStack builds the IP instance and installs its receive handlers on
// the driver's split point.
func NewStack(k *kernel.Kernel, drv *tradapter.Driver, costs Costs) *Stack {
	s := &Stack{
		k:     k,
		drv:   drv,
		addr:  drv.Station().Addr(),
		costs: costs,
		rdt:   make(map[ring.Addr]*RDTConn),
	}
	s.arp = newARP(s)
	drv.SetHandler(tradapter.ClassIP, s.ipInput)
	drv.SetHandler(tradapter.ClassARP, s.arp.input)
	return s
}

// Addr reports the stack's ring address.
func (s *Stack) Addr() ring.Addr { return s.addr }

// Stats returns a snapshot of IP accounting.
func (s *Stack) Stats() StackStats { return s.stats }

// ARPStats exposes the ARP cache accounting.
func (s *Stack) ARPStats() ARPStats { return s.arp.stats }

// OnDatagram installs the unreliable-datagram receive callback.
func (s *Stack) OnDatagram(fn func(*Datagram, sim.Time)) { s.dgRcv = fn }

// SendDatagram transmits one unreliable datagram (keep-alive class
// traffic). done may be nil.
func (s *Stack) SendDatagram(dst ring.Addr, payloadBytes int, payload any, done func()) {
	dg := &Datagram{Payload: payload, Bytes: payloadBytes}
	dg.IP = IPHeader{Proto: ProtoDGram, Src: s.addr, Dst: dst}
	s.output(dg, done)
}

// output runs the IP output path: per-packet header computation and
// checksum (the cost TCP/IP pays that CTMSP avoids), ARP resolution, then
// the driver queue at ordinary priority.
func (s *Stack) output(dg *Datagram, done func()) {
	s.ipID++
	dg.IP.ID = s.ipID
	dg.IP.Length = uint16(IPHeaderSize + dg.Bytes)
	total := IPHeaderSize + dg.Bytes

	segs := []rtpc.Seg{
		rtpc.Do("ip-output", s.costs.IPOutput),
		rtpc.Do("arp-lookup", s.costs.ARPLookup),
		rtpc.Mark("ip-enqueue", func() {
			ch := s.k.Pool.AllocNoWait(total)
			if ch == nil {
				s.stats.Dropped++
				if done != nil {
					done()
				}
				return
			}
			ch.Tag = dg
			s.stats.IPOut++
			s.stats.BytesOut += uint64(total)
			s.arp.resolve(dg.IP.Dst, func(hwDst ring.Addr, ok bool) {
				if !ok {
					s.stats.Dropped++
					s.k.Pool.Free(ch)
					if done != nil {
						done()
					}
					return
				}
				s.drv.Output(&tradapter.Outgoing{
					Chain:   ch,
					Size:    total,
					Class:   tradapter.ClassIP,
					Dst:     hwDst,
					Capture: dg.IP.Encode(),
					Done: func(st ring.DeliveryStatus) {
						s.k.Pool.Free(ch)
						if done != nil {
							done()
						}
					},
				})
			})
		}),
	}
	s.k.CPU().Submit(kernel.LevelSoftNet, "ip.output", segs, nil)
}

// ipInput is the driver split-point handler for IP frames.
func (s *Stack) ipInput(rcv *tradapter.Received) []rtpc.Seg {
	// The stock path copies the packet out of the fixed DMA buffer into
	// mbufs before protocol processing (§2's third copy); the copy loop
	// is interruptible.
	segs := s.k.Machine.CopySegs("dma-to-mbuf", rcv.Size, rcv.Buffer.Kind, rtpc.SystemMemory)
	return append(segs,
		rtpc.Mark("release-buf", rcv.Release),
		rtpc.Then("ip-input", s.costs.IPInput, func() {
			out, ok := rcv.Frame.Payload.(*tradapter.Outgoing)
			if !ok {
				s.stats.Dropped++
				return
			}
			dg, ok := out.Chain.Tag.(*Datagram)
			if !ok {
				s.stats.Dropped++
				return
			}
			s.stats.IPIn++
			s.demux(dg)
		}),
	)
}

func (s *Stack) demux(dg *Datagram) {
	at := s.k.Sched().Now()
	switch dg.IP.Proto {
	case ProtoDGram:
		if s.dgRcv != nil {
			s.dgRcv(dg, at)
		}
	case ProtoRDT:
		if c := s.rdt[dg.IP.Src]; c != nil {
			c.input(dg, at)
		} else {
			s.stats.Dropped++
		}
	default:
		s.stats.Dropped++
	}
}
