package inet

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

// RDT (reliable data transport) is the TCP stand-in: cumulative acks, a
// fixed sliding window, and timer-based retransmission. It supplies the
// two properties §3 says TCP buys with extra traffic — sequenced, reliable
// delivery — and exhibits the costs the paper rejects: an ack frame on the
// ring for every data frame and transport processing on both CPUs.
const (
	// RDTWindow is the send window in segments.
	RDTWindow = 8
	// RDTHeaderSize rides inside the IP payload.
	RDTHeaderSize = 16
	// rdtRTO is the (coarse, BSD-style) retransmission timeout.
	rdtRTO = 500 * sim.Millisecond
	// rdtAckSize is the total transport payload of a bare ack.
	rdtAckSize = RDTHeaderSize
)

// RDTStats aggregates transport accounting.
type RDTStats struct {
	SegsSent        uint64
	SegsRcvd        uint64
	AcksSent        uint64
	AcksRcvd        uint64
	Retransmits     uint64
	FastRetransmits uint64
	OutOfWindow     uint64
	BytesDeliver    uint64
}

type rdtSeg struct {
	seq     uint32
	bytes   int
	payload any
	sentAt  sim.Time
	acked   bool
	done    func()
}

// RDTConn is one direction-pair of the reliable transport between two
// stacks.
type RDTConn struct {
	s    *Stack
	peer ring.Addr

	// send side
	sndNext   uint32
	sndUna    uint32
	inflight  []*rdtSeg
	backlog   []*rdtSeg
	rtoArmed  bool
	rtoSerial uint64

	// fast retransmit state: duplicate cumulative acks signal a loss
	// long before the coarse timer fires.
	dupAcks     int
	lastAckSeen uint32
	fastRetxFor uint32 // highest seq already fast-retransmitted

	// receive side
	rcvNext uint32
	deliver func(payload any, n int, at sim.Time)

	stats RDTStats
}

// RDTOpen creates (or returns) the connection to peer on this stack.
func (s *Stack) RDTOpen(peer ring.Addr) *RDTConn {
	if c, ok := s.rdt[peer]; ok {
		return c
	}
	c := &RDTConn{s: s, peer: peer}
	s.rdt[peer] = c
	return c
}

// OnDeliver installs the in-order delivery callback.
func (c *RDTConn) OnDeliver(fn func(payload any, n int, at sim.Time)) { c.deliver = fn }

// Stats returns a snapshot of transport accounting.
func (c *RDTConn) Stats() RDTStats { return c.stats }

// InFlight reports unacknowledged segments.
func (c *RDTConn) InFlight() int { return len(c.inflight) }

// Backlog reports segments waiting for window space.
func (c *RDTConn) Backlog() int { return len(c.backlog) }

// Send queues application payload of n bytes. Payloads larger than the
// MTU are split into MTU-sized segments (the fragmentation the 2000-byte
// CTMS packet suffers on the stock path). done fires when the LAST
// segment of this payload is first transmitted (not acked).
func (c *RDTConn) Send(payload any, n int, done func()) {
	if n <= 0 {
		n = 1
	}
	for off := 0; off < n; off += MTU {
		l := n - off
		if l > MTU {
			l = MTU
		}
		seg := &rdtSeg{seq: c.sndNext, bytes: l, payload: payload}
		if off+l >= n {
			seg.done = done
		}
		c.sndNext++
		c.backlog = append(c.backlog, seg)
	}
	c.pump()
}

func (c *RDTConn) pump() {
	for len(c.backlog) > 0 && len(c.inflight) < RDTWindow {
		seg := c.backlog[0]
		c.backlog = c.backlog[1:]
		c.inflight = append(c.inflight, seg)
		c.transmit(seg, false)
	}
}

func (c *RDTConn) transmit(seg *rdtSeg, isRetransmit bool) {
	seg.sentAt = c.s.k.Sched().Now()
	c.stats.SegsSent++
	if isRetransmit {
		c.stats.Retransmits++
	}
	dg := &Datagram{
		Payload: seg.payload,
		Bytes:   RDTHeaderSize + seg.bytes,
		Seq:     seg.seq,
	}
	dg.IP = IPHeader{Proto: ProtoRDT, Src: c.s.addr, Dst: c.peer}
	// Transport processing cost, then the IP output path.
	c.s.k.CPU().Submit(kernel.LevelSoftNet, "rdt.output", []rtpc.Seg{
		rtpc.Do("rdt-seg", c.s.costs.TransportSeg),
		rtpc.Mark("to-ip", func() {
			c.s.output(dg, seg.done)
			seg.done = nil
		}),
	}, nil)
	c.armRTO()
}

func (c *RDTConn) armRTO() {
	if c.rtoArmed {
		return
	}
	c.rtoArmed = true
	c.rtoSerial++
	serial := c.rtoSerial
	c.s.k.Sched().After(rdtRTO, "rdt.rto", func() {
		if c.rtoSerial != serial {
			return
		}
		c.rtoArmed = false
		if len(c.inflight) == 0 {
			return
		}
		// Go-back-N: retransmit everything unacked.
		for _, seg := range c.inflight {
			c.transmit(seg, true)
		}
	})
}

func (c *RDTConn) cancelRTO() {
	c.rtoArmed = false
	c.rtoSerial++
}

// input handles an arriving transport datagram (data or ack).
func (c *RDTConn) input(dg *Datagram, at sim.Time) {
	if dg.Ack {
		c.handleAck(dg.AckNum)
		return
	}
	c.stats.SegsRcvd++
	switch {
	case dg.Seq == c.rcvNext:
		c.rcvNext++
		c.stats.BytesDeliver += uint64(dg.Bytes - RDTHeaderSize)
		if c.deliver != nil {
			c.deliver(dg.Payload, dg.Bytes-RDTHeaderSize, at)
		}
	case dg.Seq < c.rcvNext:
		// duplicate; re-ack below
	default:
		// Out of order (a loss ahead of us): drop, the sender will
		// retransmit. (No reassembly queue, as in early TCP.)
		c.stats.OutOfWindow++
	}
	c.sendAck()
}

func (c *RDTConn) sendAck() {
	c.stats.AcksSent++
	ack := &Datagram{Bytes: rdtAckSize, Ack: true, AckNum: c.rcvNext}
	ack.IP = IPHeader{Proto: ProtoRDT, Src: c.s.addr, Dst: c.peer}
	c.s.k.CPU().Submit(kernel.LevelSoftNet, "rdt.ack", []rtpc.Seg{
		rtpc.Do("rdt-ack", c.s.costs.TransportSeg/2),
		rtpc.Mark("to-ip", func() { c.s.output(ack, nil) }),
	}, nil)
}

func (c *RDTConn) handleAck(ackNum uint32) {
	c.stats.AcksRcvd++
	advanced := false
	for len(c.inflight) > 0 && c.inflight[0].seq < ackNum {
		c.inflight = c.inflight[1:]
		advanced = true
	}
	if advanced {
		c.sndUna = ackNum
		c.dupAcks = 0
		c.lastAckSeen = ackNum
		c.cancelRTO()
		if len(c.inflight) > 0 {
			c.armRTO()
		}
		c.pump()
		return
	}
	// A cumulative ack that did not advance while data is outstanding is
	// a duplicate: the receiver is missing inflight[0]. Three of them
	// trigger fast retransmit of just that segment, once.
	if len(c.inflight) == 0 || ackNum != c.lastAckSeen {
		c.lastAckSeen = ackNum
		c.dupAcks = 0
		return
	}
	c.dupAcks++
	if c.dupAcks >= 3 && c.inflight[0].seq >= c.fastRetxFor {
		c.dupAcks = 0
		c.fastRetxFor = c.inflight[0].seq + 1
		c.stats.FastRetransmits++
		// Go-back-N: the receiver keeps no reassembly queue, so every
		// outstanding segment after the hole was discarded and must be
		// resent with it.
		for _, seg := range c.inflight {
			c.transmit(seg, true)
		}
	}
}

// String summarizes connection state.
func (c *RDTConn) String() string {
	return fmt.Sprintf("rdt{peer=%d next=%d una=%d inflight=%d backlog=%d}",
		c.peer, c.sndNext, c.sndUna, len(c.inflight), len(c.backlog))
}
