package inet

import (
	"testing"
	"testing/quick"

	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 worked example.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Fatalf("checksum: got %#x", got)
	}
	if Checksum(nil) != 0xFFFF {
		t.Fatal("empty checksum should be ^0")
	}
}

func TestChecksumVerifyProperty(t *testing.T) {
	f := func(data []byte) bool {
		// Append the checksum and verify the whole.
		cs := Checksum(data)
		padded := data
		if len(padded)%2 == 1 {
			padded = append(append([]byte{}, data...), 0)
		} else {
			padded = append([]byte{}, data...)
		}
		whole := append(padded, byte(cs>>8), byte(cs))
		return VerifyChecksum(whole)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIPHeaderRoundTrip(t *testing.T) {
	h := IPHeader{Proto: ProtoRDT, Src: 3, Dst: 9, Length: 1500, ID: 77}
	got, err := DecodeIPHeader(h.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: %+v vs %+v", got, h)
	}
	// Corrupt a byte: checksum must catch it.
	b := h.Encode()
	b[16] ^= 0xFF
	if _, err := DecodeIPHeader(b); err == nil {
		t.Fatal("corrupted header must fail checksum")
	}
}

type inetHost struct {
	k     *kernel.Kernel
	drv   *tradapter.Driver
	stack *Stack
}

func inetPair(t *testing.T) (*sim.Scheduler, *ring.Ring, *inetHost, *inetHost) {
	t.Helper()
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	mk := func(name string) *inetHost {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 3)
		k := kernel.New(m)
		st := r.Attach(name)
		drv := tradapter.New(k, st, tradapter.StockConfig(), tradapter.DefaultTiming())
		k.Register(drv)
		return &inetHost{k: k, drv: drv, stack: NewStack(k, drv, DefaultCosts())}
	}
	return sched, r, mk("a"), mk("b")
}

func TestDatagramDelivery(t *testing.T) {
	sched, _, a, b := inetPair(t)
	var got *Datagram
	b.stack.OnDatagram(func(dg *Datagram, _ sim.Time) { got = dg })
	a.stack.SendDatagram(b.stack.Addr(), 100, "keepalive", nil)
	sched.Run()
	if got == nil {
		t.Fatal("datagram not delivered")
	}
	if got.Payload != "keepalive" || got.Bytes != 100 {
		t.Fatalf("wrong datagram: %+v", got)
	}
}

func TestARPResolvesOnFirstSend(t *testing.T) {
	sched, _, a, b := inetPair(t)
	delivered := 0
	b.stack.OnDatagram(func(*Datagram, sim.Time) { delivered++ })
	a.stack.SendDatagram(b.stack.Addr(), 60, nil, nil)
	// The second send happens after resolution completes, so it hits the
	// warm cache.
	sched.After(sim.Second, "second", func() {
		a.stack.SendDatagram(b.stack.Addr(), 60, nil, nil)
	})
	sched.Run()
	if delivered != 2 {
		t.Fatalf("want 2 datagrams, got %d", delivered)
	}
	st := a.stack.ARPStats()
	if st.Requests != 1 {
		t.Fatalf("one ARP request expected for a cold cache: %+v", st)
	}
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("first send misses, later sends hit: %+v", st)
	}
	// B replied once.
	if b.stack.ARPStats().Replies != 1 {
		t.Fatalf("B should reply once: %+v", b.stack.ARPStats())
	}
}

func TestARPTimeoutDropsPacket(t *testing.T) {
	sched, r, a, _ := inetPair(t)
	ghost := r.Attach("ghost") // on the ring, but no ARP responder
	done := false
	a.stack.SendDatagram(ghost.Addr(), 60, nil, func() { done = true })
	sched.Run()
	if !done {
		t.Fatal("send completion must fire even on ARP failure")
	}
	st := a.stack.ARPStats()
	if st.Timeouts != 1 {
		t.Fatalf("ARP should time out: %+v", st)
	}
	if a.stack.Stats().Dropped == 0 {
		t.Fatal("the queued packet should be dropped")
	}
}

func TestRDTReliableDelivery(t *testing.T) {
	sched, _, a, b := inetPair(t)
	conn := a.stack.RDTOpen(b.stack.Addr())
	rconn := b.stack.RDTOpen(a.stack.Addr())
	var got []int
	rconn.OnDeliver(func(p any, n int, _ sim.Time) { got = append(got, p.(int)) })
	for i := 0; i < 10; i++ {
		conn.Send(i, 500, nil)
	}
	sched.Run()
	if len(got) != 10 {
		t.Fatalf("want 10 deliveries, got %d", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	if conn.Stats().Retransmits != 0 {
		t.Fatalf("clean network should need no retransmits: %+v", conn.Stats())
	}
	// Reliability costs ack frames on the ring.
	if rconn.Stats().AcksSent == 0 {
		t.Fatal("acks should have been sent")
	}
}

func TestRDTFragmentsLargePayload(t *testing.T) {
	sched, _, a, b := inetPair(t)
	conn := a.stack.RDTOpen(b.stack.Addr())
	rconn := b.stack.RDTOpen(a.stack.Addr())
	bytes := 0
	rconn.OnDeliver(func(_ any, n int, _ sim.Time) { bytes += n })
	// A 2000-byte CTMS packet does not fit in one MTU: 2 segments.
	conn.Send("big", 2000, nil)
	sched.Run()
	if bytes != 2000 {
		t.Fatalf("want 2000 bytes delivered, got %d", bytes)
	}
	if conn.Stats().SegsSent != 2 {
		t.Fatalf("2000 bytes should fragment into 2 segments: %+v", conn.Stats())
	}
}

func TestRDTRecoversFromPurgeLoss(t *testing.T) {
	sched, r, a, b := inetPair(t)
	conn := a.stack.RDTOpen(b.stack.Addr())
	rconn := b.stack.RDTOpen(a.stack.Addr())
	delivered := 0
	rconn.OnDeliver(func(any, int, sim.Time) { delivered++ })
	// Warm the ARP cache first so the purge hits a data frame.
	a.stack.SendDatagram(b.stack.Addr(), 60, nil, nil)
	sched.RunUntil(100 * sim.Millisecond)
	for i := 0; i < 5; i++ {
		conn.Send(i, 500, nil)
	}
	// Deterministic fault injection: poll until a DATA frame (not an
	// ack) is on the wire, then purge the ring so it is destroyed.
	purged := false
	var poll func()
	poll = func() {
		if purged {
			return
		}
		if f := r.Current(); f != nil {
			if out, ok := f.Payload.(*tradapter.Outgoing); ok {
				if dg, ok := out.Chain.Tag.(*Datagram); ok && !dg.Ack {
					purged = true
					r.Purge()
					return
				}
			}
		}
		sched.After(100*sim.Microsecond, "poll", poll)
	}
	poll()
	sched.RunUntil(5 * sim.Second)
	if !purged {
		t.Fatal("fault injection never found a data frame")
	}
	if delivered != 5 {
		t.Fatalf("transport must recover the purged segment: %d/5", delivered)
	}
	if conn.Stats().Retransmits == 0 {
		t.Fatal("recovery should show retransmissions")
	}
}

func TestRDTFastRetransmitBeatsTimer(t *testing.T) {
	sched, r, a, b := inetPair(t)
	conn := a.stack.RDTOpen(b.stack.Addr())
	rconn := b.stack.RDTOpen(a.stack.Addr())
	delivered := 0
	var lastDelivery sim.Time
	rconn.OnDeliver(func(any, int, sim.Time) { delivered++; lastDelivery = sched.Now() })
	// Warm ARP.
	a.stack.SendDatagram(b.stack.Addr(), 60, nil, nil)
	sched.RunUntil(100 * sim.Millisecond)
	// Send a window of segments; kill the FIRST data frame on the wire
	// so the rest arrive out of order and generate duplicate acks.
	for i := 0; i < 6; i++ {
		conn.Send(i, 500, nil)
	}
	killed := false
	var poll func()
	poll = func() {
		if killed {
			return
		}
		if f := r.Current(); f != nil {
			if out, ok := f.Payload.(*tradapter.Outgoing); ok {
				if dg, ok := out.Chain.Tag.(*Datagram); ok && !dg.Ack {
					killed = true
					r.Purge()
					return
				}
			}
		}
		sched.After(100*sim.Microsecond, "poll", poll)
	}
	poll()
	sched.RunUntil(5 * sim.Second)
	if !killed {
		t.Fatal("fault injection failed")
	}
	if delivered != 6 {
		t.Fatalf("all segments must eventually deliver: %d/6", delivered)
	}
	st := conn.Stats()
	if st.FastRetransmits == 0 {
		t.Fatalf("loss under a full window should trigger fast retransmit: %+v", st)
	}
	// Recovery must complete well before the purge(10ms) + RTO(500ms)
	// path would allow.
	if lastDelivery > 400*sim.Millisecond {
		t.Fatalf("fast retransmit should beat the 500 ms timer: finished at %v", lastDelivery)
	}
}

func TestRDTWindowLimitsInflight(t *testing.T) {
	sched, _, a, b := inetPair(t)
	conn := a.stack.RDTOpen(b.stack.Addr())
	b.stack.RDTOpen(a.stack.Addr())
	for i := 0; i < 50; i++ {
		conn.Send(i, 500, nil)
	}
	if conn.InFlight() > RDTWindow {
		t.Fatalf("inflight %d exceeds window %d", conn.InFlight(), RDTWindow)
	}
	if conn.Backlog() != 50-RDTWindow {
		t.Fatalf("backlog: %d", conn.Backlog())
	}
	sched.Run()
	if conn.InFlight() != 0 || conn.Backlog() != 0 {
		t.Fatalf("drain incomplete: %s", conn)
	}
}

func TestIPPaysPerPacketHeaderCost(t *testing.T) {
	sched, _, a, b := inetPair(t)
	for i := 0; i < 10; i++ {
		a.stack.SendDatagram(b.stack.Addr(), 100, nil, nil)
	}
	sched.Run()
	// The stock driver recomputes the ring header for every packet.
	if got := a.drv.Stats().HeaderComps; got < 10 {
		t.Fatalf("stock IP path should compute headers per packet: %d", got)
	}
}
