// Package inet implements the baseline protocol stack the paper measures
// CTMSP against: an IP layer that recomputes headers per packet, an ARP
// cache with query/reply traffic, and a simplified reliable transport
// ("RDT") with acknowledgments and retransmissions standing in for TCP.
// It is deliberately honest about per-packet CPU cost — that cost is what
// makes the stock path fail at 150 KB/s.
package inet

// Checksum computes the RFC 1071 internet checksum over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}

// VerifyChecksum reports whether b (whose checksum field is included)
// sums to the all-ones complement zero.
func VerifyChecksum(b []byte) bool {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return uint16(sum) == 0xFFFF
}
