// Package lab fans independent simulation runs across a bounded worker
// pool. Every experiment in the reproduction matrix is a deterministic,
// self-contained discrete-event simulation (its own sim.Scheduler, its own
// seeded sim.RNG), so runs can execute concurrently without perturbing one
// another — the only rule is that each job's inputs (seeds included) must
// be derived from its index before dispatch, and results must be collected
// by index, never by completion order. Pool enforces the second half of
// that contract; callers own the first.
package lab

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool for independent jobs. The zero value is
// not useful; use New.
type Pool struct {
	workers int

	mu        sync.Mutex
	completed uint64 // guarded by mu
}

// New returns a pool that runs at most workers jobs concurrently.
// workers <= 0 selects runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Completed reports how many jobs the pool has finished over its
// lifetime — a cross-batch progress counter for long sweeps.
func (p *Pool) Completed() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.completed
}

func (p *Pool) addCompleted(n uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.completed += n
}

// Run invokes job(i) for every i in [0, n) across the pool's workers and
// blocks until all have finished. Jobs must write any output to their own
// index in a caller-owned slice: dispatch and completion order are
// unspecified, index identity is the determinism guarantee.
//
// With one worker the jobs run inline, in order, on the calling
// goroutine, so a parallelism-1 pool is byte-for-byte the serial loop it
// replaces (panics propagate directly). With more, a panicking job does
// not abort its siblings: Run finishes the batch and then re-panics the
// lowest-index panic, deterministic regardless of interleaving.
func (p *Pool) Run(n int, job func(i int)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			job(i)
			p.addCompleted(1)
		}
		return
	}

	idx := make(chan int)
	panics := make([]any, n) // each job writes only its own slot
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				runJob(job, i, panics)
				p.addCompleted(1)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, r := range panics {
		if r != nil {
			panic(fmt.Sprintf("lab: job %d panicked: %v", i, r))
		}
	}
}

func runJob(job func(i int), i int, panics []any) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
		}
	}()
	job(i)
}

// Map runs f over [0, n) on the pool and returns the results collected by
// index, independent of which worker finished first.
func Map[T any](p *Pool, n int, f func(i int) T) []T {
	out := make([]T, n)
	p.Run(n, func(i int) { out[i] = f(i) })
	return out
}
