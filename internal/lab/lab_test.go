package lab_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lab"
	"repro/internal/sim"
)

func TestMapCollectsByIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		p := lab.New(workers)
		got := lab.Map(p, 37, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: index %d got %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestNewDefaultsToGOMAXPROCS(t *testing.T) {
	if w := lab.New(0).Workers(); w < 1 {
		t.Fatalf("default pool has %d workers", w)
	}
	if w := lab.New(-3).Workers(); w < 1 {
		t.Fatalf("negative request gave %d workers", w)
	}
	if w := lab.New(5).Workers(); w != 5 {
		t.Fatalf("explicit request gave %d workers, want 5", w)
	}
}

func TestRunZeroJobs(t *testing.T) {
	lab.New(4).Run(0, func(int) { t.Fatal("job ran for n=0") })
	lab.New(4).Run(-1, func(int) { t.Fatal("job ran for n<0") })
}

func TestRunPanicPropagatesLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "job 3") {
			t.Fatalf("want the lowest-index panic (job 3), got %q", msg)
		}
	}()
	lab.New(4).Run(16, func(i int) {
		if i >= 3 && i%2 == 1 {
			panic(fmt.Sprintf("boom %d", i))
		}
	})
}

// TestPoolDeterminism runs the same experiment serially and across eight
// workers: the Comparison metric tables must be identical, because each
// run owns its scheduler and RNG and results are collected by index.
func TestPoolDeterminism(t *testing.T) {
	e, ok := core.ExperimentByID("E4")
	if !ok {
		t.Fatal("E4 missing")
	}
	scale := core.Scale{Duration: 10 * sim.Second}
	render := func(workers int) []string {
		out := lab.Map(lab.New(workers), 4, func(i int) string {
			return e.Run(scale).Render()
		})
		return out
	}
	serial := render(1)
	parallel := render(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("run %d differs between serial and 8 workers:\n--- serial ---\n%s--- parallel ---\n%s",
				i, serial[i], parallel[i])
		}
	}
}

// TestLabPoolRace is the repo's concurrency stress test: 32 scaled-down
// experiments across 8 workers. It exists to give `go test -race` real
// goroutine interleavings to inspect — before the lab, nothing in the
// repo was concurrent.
func TestLabPoolRace(t *testing.T) {
	exps := core.Experiments()
	if len(exps) == 0 {
		t.Fatal("empty matrix")
	}
	const jobs = 32
	scale := core.Scale{Duration: 2 * sim.Second}
	got := lab.Map(lab.New(8), jobs, func(i int) int {
		cmp := exps[i%len(exps)].Run(scale)
		return len(cmp.Metrics)
	})
	for i, n := range got {
		if n == 0 {
			t.Fatalf("job %d (%s) produced no metrics", i, exps[i%len(exps)].ID)
		}
	}
}

func TestCompletedCountsAcrossBatches(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := lab.New(workers)
		p.Run(10, func(int) {})
		p.Run(7, func(int) {})
		if got := p.Completed(); got != 17 {
			t.Fatalf("workers=%d: Completed() = %d, want 17", workers, got)
		}
	}
}
