// Package workload generates the background activity the paper's public
// Token Ring carried during Test Case B, in the three size classes its
// traffic analysis identifies (§5.3): ~20-byte MAC frames (0.2–1.0 % of
// the ring), 60–300-byte AFS/ARP/socket keep-alives, and 1522-byte file
// transfer packets from compiles and kernel copies. It also generates the
// station insertions (~20/day) whose Ring Purge bursts produce the
// 120–130 ms outliers.
package workload

import (
	"repro/internal/inet"
	"repro/internal/ring"
	"repro/internal/sim"
)

// MACGen emits ~20-byte MAC management frames from a monitor station at
// an exponential rate chosen to hit a target ring utilization.
type MACGen struct {
	r      *ring.Ring
	st     *ring.Station
	rng    *sim.RNG
	mean   sim.Time
	frames uint64
	stop   bool
}

// NewMACGen starts the generator. util is the target fraction of ring
// bandwidth (the paper observed 0.002–0.010).
func NewMACGen(r *ring.Ring, st *ring.Station, util float64, rng *sim.RNG) *MACGen {
	sim.Checkf(util > 0 && util < 1, "MAC utilization %v out of range", util)
	frameTime := sim.WireTime(20, r.Config().BitRate)
	g := &MACGen{
		r:    r,
		st:   st,
		rng:  rng.Fork("mac-gen"),
		mean: sim.Scale(frameTime, 1/util),
	}
	g.arm()
	return g
}

// Frames reports how many MAC frames have been sent.
func (g *MACGen) Frames() uint64 { return g.frames }

// Stop halts the generator.
func (g *MACGen) Stop() { g.stop = true }

func (g *MACGen) arm() {
	g.r.Scheduler().After(g.rng.Exp(g.mean), "mac-gen", func() {
		if g.stop {
			return
		}
		typ := ring.MACActiveMonitorPresent
		if g.rng.Bool(0.5) {
			typ = ring.MACStandbyMonitorPresent
		}
		g.st.Transmit(ring.NewMACFrame(g.st.Addr(), typ), nil)
		g.frames++
		g.arm()
	})
}

// ChatterGen sends raw data frames of a given size range between two
// third-party stations — the keep-alive class traffic that belongs to
// machines not otherwise modelled.
type ChatterGen struct {
	r        *ring.Ring
	src, dst *ring.Station
	rng      *sim.RNG
	mean     sim.Time
	lo, hi   int
	frames   uint64
	stop     bool
}

// NewChatterGen starts a generator emitting frames of lo..hi total bytes
// with exponential interarrivals of the given mean.
func NewChatterGen(r *ring.Ring, src, dst *ring.Station, lo, hi int, mean sim.Time, rng *sim.RNG) *ChatterGen {
	sim.Checkf(lo > 0 && hi >= lo, "chatter size range [%d,%d] invalid", lo, hi)
	g := &ChatterGen{r: r, src: src, dst: dst, rng: rng.Fork("chatter"), mean: mean, lo: lo, hi: hi}
	g.arm()
	return g
}

// Frames reports how many frames have been sent.
func (g *ChatterGen) Frames() uint64 { return g.frames }

// Stop halts the generator.
func (g *ChatterGen) Stop() { g.stop = true }

func (g *ChatterGen) arm() {
	g.r.Scheduler().After(g.rng.Exp(g.mean), "chatter", func() {
		if g.stop {
			return
		}
		size := g.lo + g.rng.Intn(g.hi-g.lo+1)
		g.src.Transmit(ring.NewDataFrame(g.src.Addr(), g.dst.Addr(), 0, size, nil, nil), nil)
		g.frames++
		g.arm()
	})
}

// FileTransferGen emits bursts of 1522-byte frames — a compile's file
// transfers or a kernel copy — between two stations. Burst lengths are
// heavy-tailed; frames within a burst are paced at the source's disk/CPU
// rate, not back-to-back, matching how AFS fetches looked on the wire.
type FileTransferGen struct {
	r         *ring.Ring
	src, dst  *ring.Station
	rng       *sim.RNG
	burstMean sim.Time
	frameGap  sim.Time
	durLo     sim.Time
	durHi     sim.Time
	alpha     float64
	frames    uint64
	bursts    uint64
	stop      bool
}

// NewFileTransferGen starts the generator. burstMean is the mean time
// between bursts; frameGap is the pacing between frames inside a burst.
func NewFileTransferGen(r *ring.Ring, src, dst *ring.Station, burstMean, frameGap sim.Time, rng *sim.RNG) *FileTransferGen {
	g := &FileTransferGen{
		r: r, src: src, dst: dst,
		rng:       rng.Fork("file-transfer"),
		burstMean: burstMean,
		frameGap:  frameGap,
		durLo:     2 * sim.Millisecond,
		durHi:     40 * sim.Millisecond,
		alpha:     1.2,
	}
	g.arm()
	return g
}

// SetBurst changes the heavy-tailed burst-duration distribution: bounded
// Pareto on [lo, hi] with the given shape. Longer bursts model compiles
// and kernel copies that monopolize a client for hundreds of
// milliseconds.
func (g *FileTransferGen) SetBurst(lo, hi sim.Time, alpha float64) {
	sim.Checkf(hi > lo && lo > 0 && alpha > 0, "bad burst parameters")
	g.durLo, g.durHi, g.alpha = lo, hi, alpha
}

// Frames reports total frames sent; Bursts reports burst count.
func (g *FileTransferGen) Frames() uint64 { return g.frames }

// Bursts reports how many bursts have run.
func (g *FileTransferGen) Bursts() uint64 { return g.bursts }

// Stop halts the generator.
func (g *FileTransferGen) Stop() { g.stop = true }

func (g *FileTransferGen) arm() {
	g.r.Scheduler().After(g.rng.Exp(g.burstMean), "ft-burst", func() {
		if g.stop {
			return
		}
		g.bursts++
		n := int(g.rng.Pareto(g.durLo, g.durHi, g.alpha) / g.frameGap)
		if n < 1 {
			n = 1
		}
		g.sendBurst(n)
	})
}

func (g *FileTransferGen) sendBurst(left int) {
	if left <= 0 || g.stop {
		g.arm()
		return
	}
	g.src.Transmit(ring.NewDataFrame(g.src.Addr(), g.dst.Addr(), 0, 1522, nil, nil), nil)
	g.frames++
	g.r.Scheduler().After(g.frameGap+g.rng.Uniform(0, g.frameGap), "ft-next", func() {
		g.sendBurst(left - 1)
	})
}

// InsertionGen inserts stations into the ring at Poisson intervals
// (~20/day in the paper). Each insertion causes a burst of back-to-back
// Ring Purges ("on the order of 10").
type InsertionGen struct {
	r          *ring.Ring
	rng        *sim.RNG
	mean       sim.Time
	insertions uint64
	stop       bool
}

// NewInsertionGen starts the generator with the given mean interval.
func NewInsertionGen(r *ring.Ring, mean sim.Time, rng *sim.RNG) *InsertionGen {
	g := &InsertionGen{r: r, rng: rng.Fork("insertions"), mean: mean}
	g.arm()
	return g
}

// Insertions reports how many insertions have occurred.
func (g *InsertionGen) Insertions() uint64 { return g.insertions }

// Stop halts the generator.
func (g *InsertionGen) Stop() { g.stop = true }

func (g *InsertionGen) arm() {
	g.r.Scheduler().After(g.rng.Exp(g.mean), "insertion", func() {
		if g.stop {
			return
		}
		g.insertions++
		// 10–13 back-to-back purges ⇒ a 100–130 ms outage.
		g.r.Insertion(10 + g.rng.Intn(4))
		g.arm()
	})
}

// KeepAliveGen drives periodic small datagrams through a machine's OWN
// protocol stack — AFS keep-alives and the control connection's socket
// traffic. Unlike ChatterGen this consumes the sending machine's CPU and
// driver queue, which is what perturbs the CTMSP stream in Figure 5-2.
type KeepAliveGen struct {
	stack  *inet.Stack
	dst    ring.Addr
	rng    *sim.RNG
	mean   sim.Time
	lo, hi int
	sent   uint64
	stop   bool
	sched  *sim.Scheduler
}

// NewKeepAliveGen starts the generator on the given stack.
func NewKeepAliveGen(sched *sim.Scheduler, stack *inet.Stack, dst ring.Addr, lo, hi int, mean sim.Time, rng *sim.RNG) *KeepAliveGen {
	g := &KeepAliveGen{sched: sched, stack: stack, dst: dst, rng: rng.Fork("keepalive"), mean: mean, lo: lo, hi: hi}
	g.arm()
	return g
}

// Sent reports how many keep-alives were sent.
func (g *KeepAliveGen) Sent() uint64 { return g.sent }

// Stop halts the generator.
func (g *KeepAliveGen) Stop() { g.stop = true }

func (g *KeepAliveGen) arm() {
	g.sched.After(g.rng.Exp(g.mean), "keepalive", func() {
		if g.stop {
			return
		}
		size := g.lo + g.rng.Intn(g.hi-g.lo+1)
		g.stack.SendDatagram(g.dst, size, "keepalive", nil)
		g.sent++
		g.arm()
	})
}
