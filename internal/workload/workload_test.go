package workload

import (
	"math"
	"testing"

	"repro/internal/inet"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
)

func newRing() (*sim.Scheduler, *ring.Ring) {
	sched := sim.NewScheduler()
	return sched, ring.New(sched, ring.DefaultConfig())
}

func TestMACGenHitsTargetUtilization(t *testing.T) {
	for _, util := range []float64{0.002, 0.010} {
		sched, r := newRing()
		mon := r.Attach("monitor")
		g := NewMACGen(r, mon, util, sim.NewRNG(1))
		sched.RunUntil(5 * sim.Minute)
		g.Stop()
		got := r.Utilization()
		if math.Abs(got-util) > util*0.25 {
			t.Fatalf("target util %.4f, got %.4f", util, got)
		}
		// §4: 0.2%–1.0% of a 4 Mbit ring in 20-byte MAC frames is
		// 50–250 interrupts per second.
		perSec := float64(g.Frames()) / (5 * 60)
		want := util * 4_000_000 / 8 / 20
		if math.Abs(perSec-want) > want*0.25 {
			t.Fatalf("MAC rate %.0f/s, want ≈%.0f/s", perSec, want)
		}
	}
}

func TestChatterGenSizesInRange(t *testing.T) {
	sched, r := newRing()
	src := r.Attach("src")
	dst := r.Attach("dst")
	var sizes []int
	r.AddTap(func(f *ring.Frame, _, _ sim.Time, _ ring.DeliveryStatus) {
		sizes = append(sizes, f.Size)
	})
	g := NewChatterGen(r, src, dst, 60, 300, 50*sim.Millisecond, sim.NewRNG(2))
	sched.RunUntil(10 * sim.Second)
	g.Stop()
	if len(sizes) < 100 {
		t.Fatalf("too little chatter: %d frames", len(sizes))
	}
	for _, s := range sizes {
		if s < 60 || s > 300 {
			t.Fatalf("frame size %d outside the keep-alive class", s)
		}
	}
}

func TestFileTransferGenBursts(t *testing.T) {
	sched, r := newRing()
	src := r.Attach("src")
	dst := r.Attach("dst")
	count := 0
	r.AddTap(func(f *ring.Frame, _, _ sim.Time, _ ring.DeliveryStatus) {
		if f.Size != 1522 {
			t.Errorf("file transfer frames are 1522 bytes, got %d", f.Size)
		}
		count++
	})
	g := NewFileTransferGen(r, src, dst, 200*sim.Millisecond, 3*sim.Millisecond, sim.NewRNG(3))
	g.SetBurst(10*sim.Millisecond, 200*sim.Millisecond, 1.2)
	sched.RunUntil(20 * sim.Second)
	g.Stop()
	if g.Bursts() < 50 {
		t.Fatalf("too few bursts: %d", g.Bursts())
	}
	// A frame queued in the ring at the cutoff may not have hit the tap.
	if count == 0 || uint64(count) > g.Frames() || g.Frames()-uint64(count) > 2 {
		t.Fatalf("frame accounting: tap=%d gen=%d", count, g.Frames())
	}
	if float64(count)/float64(g.Bursts()) < 2 {
		t.Fatalf("bursts should average several frames: %f", float64(count)/float64(g.Bursts()))
	}
}

func TestInsertionGenCausesPurges(t *testing.T) {
	sched, r := newRing()
	r.Attach("am")
	g := NewInsertionGen(r, 30*sim.Minute, sim.NewRNG(4))
	sched.RunUntil(4 * time120())
	g.Stop()
	sched.Run()
	if g.Insertions() == 0 {
		t.Fatal("insertions should occur over 8 hours at a 30 min mean")
	}
	c := r.Counters()
	if c.PurgeCount < g.Insertions()*10 {
		t.Fatalf("each insertion causes ≥10 purges: %d insertions, %d purges", g.Insertions(), c.PurgeCount)
	}
}

func time120() sim.Time { return 2 * sim.Hour }

func TestInsertionRateMatchesPaper(t *testing.T) {
	// ~20/day means a 117-minute run should usually see a couple.
	sched, r := newRing()
	r.Attach("am")
	g := NewInsertionGen(r, sim.Hour+12*sim.Minute, sim.NewRNG(7)) // 20/day
	sched.RunUntil(117 * sim.Minute)
	g.Stop()
	sched.Run()
	if g.Insertions() > 6 {
		t.Fatalf("insertion rate too high for ~20/day: %d in 117 min", g.Insertions())
	}
}

func TestKeepAliveGenLoadsOwnStack(t *testing.T) {
	sched, r := newRing()
	m := rtpc.NewMachine(sched, "tx", rtpc.DefaultCostModel(), 5)
	k := kernel.New(m)
	st := r.Attach("tx")
	drv := newStockDriver(k, st)
	stack := inet.NewStack(k, drv, inet.DefaultCosts())

	peerM := rtpc.NewMachine(sched, "peer", rtpc.DefaultCostModel(), 5)
	peerK := kernel.New(peerM)
	peerSt := r.Attach("peer")
	peerDrv := newStockDriver(peerK, peerSt)
	inet.NewStack(peerK, peerDrv, inet.DefaultCosts())

	g := NewKeepAliveGen(sched, stack, peerSt.Addr(), 60, 300, 500*sim.Millisecond, sim.NewRNG(6))
	sched.RunUntil(30 * sim.Second)
	g.Stop()
	sched.Run()
	if g.Sent() < 30 {
		t.Fatalf("too few keep-alives: %d", g.Sent())
	}
	// The point of this generator: it burns the sender's CPU and driver.
	if k.CPU().Stats().BusyTime == 0 {
		t.Fatal("keep-alives must consume the sending machine's CPU")
	}
	if drv.Stats().TxQueued[0]+drv.Stats().TxQueued[1] == 0 {
		t.Fatal("keep-alives must pass through the sender's driver")
	}
}
