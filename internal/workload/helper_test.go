package workload

import (
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/tradapter"
)

// newStockDriver builds an unmodified Token Ring driver for a test host.
func newStockDriver(k *kernel.Kernel, st *ring.Station) *tradapter.Driver {
	drv := tradapter.New(k, st, tradapter.StockConfig(), tradapter.DefaultTiming())
	k.Register(drv)
	return drv
}
