package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestPopulationCompileDeterministic(t *testing.T) {
	spec := PopulationSpec{
		ArrivalsPerSec: 20,
		ZipfSkew:       1.1,
		Titles:         32,
		ChurnHalfLife:  2 * sim.Second,
		Diurnal:        []float64{0.5, 1.5, 1.0},
	}
	a := spec.Compile(sim.NewRNG(99).Fork("population"), 30*sim.Second)
	b := spec.Compile(sim.NewRNG(99).Fork("population"), 30*sim.Second)
	if len(a) == 0 {
		t.Fatal("compiled no arrivals")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPopulationSteadyState(t *testing.T) {
	// Little's law against a compiled schedule: count the arrivals alive
	// at the run midpoint and compare to the analytic estimate.
	spec := PopulationSpec{ArrivalsPerSec: 200, ChurnHalfLife: sim.Second}
	want := 200 * 1.0 / math.Ln2 // ≈ 288.5
	if got := spec.SteadyState(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SteadyState() = %v; want %v", got, want)
	}

	dur := 20 * sim.Second
	mid := dur / 2
	alive := 0
	for _, a := range spec.Compile(sim.NewRNG(41), dur) {
		if a.At <= mid && a.DepartAt > mid {
			alive++
		}
	}
	// ±25% covers ~4 sigma of the midpoint census fluctuation.
	if math.Abs(float64(alive)-want) > 0.25*want {
		t.Fatalf("midpoint census %d far from the Little's-law estimate %.0f", alive, want)
	}

	// The zero-value spec resolves ChurnHalfLife through WithDefaults.
	defaulted := PopulationSpec{ArrivalsPerSec: 10}
	want = 10 * float64(DefaultChurnHalfLife) / math.Ln2 / float64(sim.Second)
	if got := defaulted.SteadyState(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("defaulted SteadyState() = %v; want %v", got, want)
	}
}

func TestPopulationCompileShape(t *testing.T) {
	spec := PopulationSpec{ArrivalsPerSec: 50, ZipfSkew: 1.0, Titles: 20}
	dur := 60 * sim.Second
	arrivals := spec.Compile(sim.NewRNG(7), dur)

	// Poisson count: mean 3000, so ±10% is ~5.5 sigma.
	if n := len(arrivals); math.Abs(float64(n)-3000) > 300 {
		t.Fatalf("arrival count %d far from the offered 3000", n)
	}
	last := sim.Time(0)
	titleCounts := make([]int, 20)
	for i, a := range arrivals {
		if a.At < last || a.At >= dur {
			t.Fatalf("arrival %d at %v out of order or out of range", i, a.At)
		}
		last = a.At
		if a.DepartAt <= a.At {
			t.Fatalf("arrival %d departs at %v before arriving at %v", i, a.DepartAt, a.At)
		}
		if a.Title < 0 || a.Title >= 20 {
			t.Fatalf("arrival %d title %d out of range", i, a.Title)
		}
		titleCounts[a.Title]++
		if a.Class < 0 || a.Class >= len(DefaultCodecMix()) {
			t.Fatalf("arrival %d class %d out of range", i, a.Class)
		}
	}
	// Zipf skew: the head title must dominate the tail.
	if titleCounts[0] <= titleCounts[19]*2 {
		t.Fatalf("no skew: title 0 seen %d, title 19 seen %d", titleCounts[0], titleCounts[19])
	}

	// Mean lifetime ≈ half-life / ln 2 (default 5 s → ~7.2 s).
	var lifeSum float64
	for _, a := range arrivals {
		lifeSum += float64(a.DepartAt - a.At)
	}
	meanLife := lifeSum / float64(len(arrivals))
	wantLife := float64(DefaultChurnHalfLife) / math.Ln2
	if math.Abs(meanLife-wantLife) > 0.1*wantLife {
		t.Fatalf("mean lifetime %v, want ≈ %v", sim.Time(meanLife), sim.Time(wantLife))
	}
}

func TestPopulationDiurnalThinning(t *testing.T) {
	spec := PopulationSpec{ArrivalsPerSec: 40, Diurnal: []float64{0.2, 1.8}}
	dur := 60 * sim.Second
	arrivals := spec.Compile(sim.NewRNG(21), dur)
	firstHalf := 0
	for _, a := range arrivals {
		if a.At < dur/2 {
			firstHalf++
		}
	}
	secondHalf := len(arrivals) - firstHalf
	// Offered ratio is 9:1 toward the second half; allow wide slack.
	if secondHalf < 4*firstHalf {
		t.Fatalf("diurnal curve not honored: %d arrivals in the quiet half, %d in the busy half",
			firstHalf, secondHalf)
	}
}

func TestPopulationMaxStreamsCap(t *testing.T) {
	spec := PopulationSpec{ArrivalsPerSec: 1000, MaxStreams: 25}
	arrivals := spec.Compile(sim.NewRNG(3), sim.Minute)
	if len(arrivals) != 25 {
		t.Fatalf("cap not applied: %d arrivals", len(arrivals))
	}
}

func TestPopulationValidate(t *testing.T) {
	cases := []struct {
		name string
		spec PopulationSpec
		want string
	}{
		{"no rate", PopulationSpec{}, "arrivals-per-sec"},
		{"skew", PopulationSpec{ArrivalsPerSec: 1, ZipfSkew: 9}, "zipf skew"},
		{"titles", PopulationSpec{ArrivalsPerSec: 1, Titles: -1}, "title count"},
		{"half-life", PopulationSpec{ArrivalsPerSec: 1, ChurnHalfLife: -sim.Second}, "churn half-life"},
		{"class bytes", PopulationSpec{ArrivalsPerSec: 1,
			Classes: []CodecClass{{Interval: sim.Millisecond, Weight: 1}}}, "packet bytes"},
		{"class priority", PopulationSpec{ArrivalsPerSec: 1,
			Classes: []CodecClass{{PacketBytes: 500, Interval: sim.Millisecond, Priority: 5, Weight: 1}}}, "[0,2]"},
		{"weights", PopulationSpec{ArrivalsPerSec: 1,
			Classes: []CodecClass{{PacketBytes: 500, Interval: sim.Millisecond}}}, "positive weight"},
		{"diurnal", PopulationSpec{ArrivalsPerSec: 1, Diurnal: []float64{1, -2}}, "diurnal segment 1"},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v does not mention %q", tc.name, err, tc.want)
		}
	}
	ok := PopulationSpec{ArrivalsPerSec: 8, ZipfSkew: 1.2, Titles: 64,
		ChurnHalfLife: 3 * sim.Second, Diurnal: []float64{0.5, 1.5}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
