// Population layer: the statistical workload axis the ROADMAP's
// "millions of users" question needs. Instead of enumerating streams by
// hand, a PopulationSpec describes a whole user population — Poisson
// stream arrivals with piecewise diurnal modulation, exponential
// lifetimes (churn), Zipf-skewed demand across titles, and a weighted
// codec-class mix — and Compile turns it into a concrete, fully
// deterministic arrival schedule the session and topo layers replay
// through their schedulers. Precomputing the schedule up front (rather
// than drawing lazily inside event handlers) is what keeps a population
// run bit-identical across lab-pool parallelism and shard counts: the
// draws depend only on (seed, spec), never on event interleaving.
package workload

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// DefaultChurnHalfLife is the stream-lifetime half-life when a spec
// leaves ChurnHalfLife zero: half the admitted streams are gone after
// this much simulated time.
const DefaultChurnHalfLife = 5 * sim.Second

// maxCompiledArrivals bounds a runaway spec (an arrival rate in the
// millions against a long duration) when MaxStreams is left zero.
const maxCompiledArrivals = 100_000

// CodecClass is one entry of a population's codec mix: the stream shape
// every arrival of this class runs, its admission priority, and the
// probability weight of drawing it.
type CodecClass struct {
	// Name labels streams of this class in results.
	Name string
	// PacketBytes per packet (CTMSP header included), sent every
	// Interval — the session.StreamSpec shape.
	PacketBytes int
	Interval    sim.Time
	// Priority is the admission class ordinal (session.Class: 0 =
	// background, 1 = standard, 2 = interactive). An int rather than
	// session.Class because session imports workload.
	Priority int
	// Weight is the class's relative draw probability (any positive
	// scale; weights are normalized over the mix).
	Weight float64
}

// PopulationSpec is the compact statistical description of a stream
// population.
type PopulationSpec struct {
	// ArrivalsPerSec is the mean Poisson stream-arrival rate before
	// diurnal modulation.
	ArrivalsPerSec float64
	// ZipfSkew is the exponent s of the title popularity distribution:
	// title k is requested with probability ∝ 1/(k+1)^s. Zero spreads
	// demand uniformly.
	ZipfSkew float64
	// Titles is the catalog size demand is skewed over (0 = 1).
	Titles int
	// ChurnHalfLife is the stream-lifetime half-life: lifetimes are
	// exponential with mean ChurnHalfLife/ln 2 (0 = DefaultChurnHalfLife).
	ChurnHalfLife sim.Time
	// Classes is the codec mix (empty = one 500-byte/12 ms standard
	// class, the paper's 150 KB/s stream shape scaled to its budget).
	Classes []CodecClass
	// Diurnal divides the run into equal segments and multiplies the
	// arrival rate by the segment's entry — a piecewise "time of day"
	// curve. Empty means a flat rate. Entries must be non-negative.
	Diurnal []float64
	// StormAt triggers a correlated insertion storm (StormInsertions
	// back-to-back station insertions) at the given offset; zero
	// disables. This is the capacity shock that makes shed fairness
	// observable under skew.
	StormAt         sim.Time
	StormInsertions int
	// MaxStreams caps the compiled arrival count (0 = a safety cap of
	// 100000).
	MaxStreams int
}

// Arrival is one compiled stream: when it arrives, when it hangs up,
// what it watches and how.
type Arrival struct {
	// At is the arrival offset; DepartAt is the hang-up offset (it may
	// exceed the run duration, in which case the stream runs to the end).
	At       sim.Time
	DepartAt sim.Time
	// Title is the Zipf-drawn catalog rank in [0, Titles).
	Title int
	// Class indexes the spec's Classes mix.
	Class int
}

// DefaultCodecMix is the class table used when a spec leaves Classes
// empty: mostly standard playback, a sliver of interactive voice and of
// background prefetch, shaped like the paper's streams.
func DefaultCodecMix() []CodecClass {
	return []CodecClass{
		{Name: "playback", PacketBytes: 500, Interval: 12 * sim.Millisecond, Priority: 1, Weight: 0.70},
		{Name: "voice", PacketBytes: 200, Interval: 12 * sim.Millisecond, Priority: 2, Weight: 0.20},
		{Name: "prefetch", PacketBytes: 1000, Interval: 24 * sim.Millisecond, Priority: 0, Weight: 0.10},
	}
}

// WithDefaults returns the spec with zero-valued knobs resolved, the
// view Compile samples from and the session layer builds streams from.
func (p PopulationSpec) WithDefaults() PopulationSpec {
	if p.Titles == 0 {
		p.Titles = 1
	}
	if p.ChurnHalfLife == 0 {
		p.ChurnHalfLife = DefaultChurnHalfLife
	}
	if len(p.Classes) == 0 {
		p.Classes = DefaultCodecMix()
	}
	if p.MaxStreams == 0 {
		p.MaxStreams = maxCompiledArrivals
	}
	return p
}

// SteadyState estimates the number of streams concurrently alive once
// arrivals and churn balance: by Little's law, the arrival rate times
// the mean lifetime ChurnHalfLife/ln 2. Topology-scale specs (a census
// over a mesh, E20) size their populations with it — a 64-ring metro
// needs the estimate to clear four digits before the compile is worth
// scheduling — and it is the analytic expectation the compiled
// schedule's midpoint census fluctuates around.
func (p PopulationSpec) SteadyState() float64 {
	p = p.WithDefaults()
	return p.ArrivalsPerSec * float64(p.ChurnHalfLife) / math.Ln2 / float64(sim.Second)
}

// Validate reports specification mistakes with the valid range spelled
// out, before any schedule is compiled.
func (p PopulationSpec) Validate() error {
	switch {
	case p.ArrivalsPerSec <= 0:
		return fmt.Errorf("population: arrivals-per-sec must be positive, got %v", p.ArrivalsPerSec)
	case p.ZipfSkew < 0 || p.ZipfSkew > 4:
		return fmt.Errorf("population: zipf skew %v out of [0,4]", p.ZipfSkew)
	case p.Titles < 0:
		return fmt.Errorf("population: title count must be non-negative, got %d", p.Titles)
	case p.ChurnHalfLife < 0:
		return fmt.Errorf("population: churn half-life must be non-negative, got %v", p.ChurnHalfLife)
	case p.MaxStreams < 0:
		return fmt.Errorf("population: max streams must be non-negative, got %d", p.MaxStreams)
	case p.StormAt < 0:
		return fmt.Errorf("population: storm offset must be non-negative, got %v", p.StormAt)
	case p.StormInsertions < 0:
		return fmt.Errorf("population: storm insertions must be non-negative, got %d", p.StormInsertions)
	}
	totalWeight := 0.0
	for i, cc := range p.Classes {
		switch {
		case cc.PacketBytes <= 0:
			return fmt.Errorf("population: class %d (%s): packet bytes must be positive, got %d", i, cc.Name, cc.PacketBytes)
		case cc.Interval <= 0:
			return fmt.Errorf("population: class %d (%s): interval must be positive, got %v", i, cc.Name, cc.Interval)
		case cc.Priority < 0 || cc.Priority > 2:
			return fmt.Errorf("population: class %d (%s): priority %d out of [0,2] (0=background, 1=standard, 2=interactive)", i, cc.Name, cc.Priority)
		case cc.Weight < 0:
			return fmt.Errorf("population: class %d (%s): weight must be non-negative, got %v", i, cc.Name, cc.Weight)
		}
		totalWeight += cc.Weight
	}
	if len(p.Classes) > 0 && totalWeight <= 0 {
		return fmt.Errorf("population: class mix needs at least one positive weight")
	}
	for i, m := range p.Diurnal {
		if m < 0 || math.IsNaN(m) || math.IsInf(m, 0) {
			return fmt.Errorf("population: diurnal segment %d multiplier %v must be a finite non-negative number", i, m)
		}
	}
	return nil
}

// Compile turns the spec into the concrete arrival schedule for one run
// of the given duration. The schedule is a pure function of (rng seed,
// spec, duration): arrivals are drawn as a homogeneous Poisson process
// at the peak diurnal rate and thinned to the local rate (the standard
// exact sampler for inhomogeneous processes), lifetimes are exponential
// with mean ChurnHalfLife/ln 2, titles are Zipf draws and classes are
// weighted picks. Callers schedule the returned events; Compile itself
// never touches a scheduler.
func (p PopulationSpec) Compile(rng *sim.RNG, duration sim.Time) []Arrival {
	sim.Checkf(duration > 0, "population: compile needs a positive duration")
	p = p.WithDefaults()

	peak := 1.0
	for _, m := range p.Diurnal {
		if m > peak {
			peak = m
		}
	}
	meanGap := sim.Time(float64(sim.Second) / (p.ArrivalsPerSec * peak))
	sim.Checkf(meanGap > 0, "population: arrival rate %v too high to schedule", p.ArrivalsPerSec)
	// Exponential lifetimes with the requested half-life: mean = T½/ln 2.
	meanLife := sim.Time(float64(p.ChurnHalfLife) / math.Ln2)

	var out []Arrival
	for t := rng.Exp(meanGap); t < duration && len(out) < p.MaxStreams; t += rng.Exp(meanGap) {
		// Thinning: keep the candidate with probability local/peak. The
		// rejected candidate still consumed its draws, so the kept set is
		// independent of how other segments modulate.
		if mult := p.diurnalMult(t, duration); !rng.Bool(mult / peak) {
			continue
		}
		out = append(out, Arrival{
			At:       t,
			DepartAt: t + rng.Exp(meanLife),
			Title:    rng.Zipf(p.Titles, p.ZipfSkew),
			Class:    p.pickClass(rng),
		})
	}
	return out
}

// diurnalMult evaluates the piecewise curve at offset t.
func (p PopulationSpec) diurnalMult(t, duration sim.Time) float64 {
	if len(p.Diurnal) == 0 {
		return 1
	}
	seg := int(int64(t) * int64(len(p.Diurnal)) / int64(duration))
	if seg >= len(p.Diurnal) {
		seg = len(p.Diurnal) - 1
	}
	return p.Diurnal[seg]
}

// pickClass draws a codec class index by weight.
func (p PopulationSpec) pickClass(rng *sim.RNG) int {
	total := 0.0
	for _, cc := range p.Classes {
		total += cc.Weight
	}
	u := rng.Float64() * total
	for i, cc := range p.Classes {
		u -= cc.Weight
		if u < 0 {
			return i
		}
	}
	return len(p.Classes) - 1
}
