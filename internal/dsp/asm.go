package dsp

import (
	"fmt"
	"sort"
)

// Assembler builds programs with symbolic labels, the way the original
// driver authors would have used the TI macro assembler.
type Assembler struct {
	prog   Program
	labels map[string]int
	fixups map[int]string
	errs   []error
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int), fixups: make(map[int]string)}
}

// Label defines a branch target at the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("dsp: duplicate label %q", name))
	}
	a.labels[name] = len(a.prog)
	return a
}

// Emit appends an instruction with a literal operand.
func (a *Assembler) Emit(op Op, arg uint16) *Assembler {
	a.prog = append(a.prog, Instr{Op: op, Arg: arg})
	return a
}

// Branch appends a branch instruction targeting a label.
func (a *Assembler) Branch(op Op, label string) *Assembler {
	a.fixups[len(a.prog)] = label
	a.prog = append(a.prog, Instr{Op: op})
	return a
}

// Assemble resolves labels and returns the program. Fixups are applied
// in instruction order so the first error reported is the first broken
// branch, not whichever one map iteration surfaced.
func (a *Assembler) Assemble() (Program, error) {
	positions := make([]int, 0, len(a.fixups))
	for pos := range a.fixups { //ctmsvet:allow determinism keys are sorted immediately below, so fixup order is independent of map iteration order
		positions = append(positions, pos)
	}
	sort.Ints(positions)
	for _, pos := range positions {
		target, ok := a.labels[a.fixups[pos]]
		if !ok {
			a.errs = append(a.errs, fmt.Errorf("dsp: undefined label %q", a.fixups[pos]))
			continue
		}
		a.prog[pos].Arg = uint16(target)
	}
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	return a.prog, nil
}
