package dsp

import "fmt"

// Assembler builds programs with symbolic labels, the way the original
// driver authors would have used the TI macro assembler.
type Assembler struct {
	prog   Program
	labels map[string]int
	fixups map[int]string
	errs   []error
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: make(map[string]int), fixups: make(map[int]string)}
}

// Label defines a branch target at the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("dsp: duplicate label %q", name))
	}
	a.labels[name] = len(a.prog)
	return a
}

// Emit appends an instruction with a literal operand.
func (a *Assembler) Emit(op Op, arg uint16) *Assembler {
	a.prog = append(a.prog, Instr{Op: op, Arg: arg})
	return a
}

// Branch appends a branch instruction targeting a label.
func (a *Assembler) Branch(op Op, label string) *Assembler {
	a.fixups[len(a.prog)] = label
	a.prog = append(a.prog, Instr{Op: op})
	return a
}

// Assemble resolves labels and returns the program.
func (a *Assembler) Assemble() (Program, error) {
	for pos, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			a.errs = append(a.errs, fmt.Errorf("dsp: undefined label %q", label))
			continue
		}
		a.prog[pos].Arg = uint16(target)
	}
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	return a.prog, nil
}
