package dsp

import "fmt"

// Data-memory layout for the µ-law encoder microprogram.
const (
	cellCount = 0  // sample count, poked by the host
	cellSign  = 1  // scratch: sign bit of the current sample
	cellS     = 2  // scratch: magnitude
	cellClip  = 3  // constant 0x7F7B
	cellBias  = 4  // constant 132
	cellFF    = 5  // constant 0x00FF
	cellMax   = 6  // constant 0x7FFF
	cellMask0 = 8  // constants 0x4000 >> n for n = 0..6
	cellByte  = 15 // scratch: assembled µ-law byte
)

// MuLawProgram assembles the on-adapter compression program footnote 3
// alludes to: read linear PCM words from the input port, emit µ-law
// bytes on the output port, one per sample, until the host-poked count
// is exhausted.
func MuLawProgram() (Program, error) {
	a := NewAssembler()

	a.Label("start")
	a.Emit(OpLAC, cellCount)
	a.Branch(OpBZ, "end")
	a.Emit(OpSUBK, 1)
	a.Emit(OpSAC, cellCount)

	// acc = next sample.
	a.Emit(OpIN, 0)
	a.Branch(OpBGEZ, "positive")
	// Negative: sign = 0x80, s = -sample; -32768 needs clamping since
	// its negation overflows.
	a.Emit(OpNEG, 0)
	a.Branch(OpBGEZ, "negStored")
	a.Emit(OpLAC, cellMax) // s = 0x7FFF
	a.Label("negStored")
	a.Emit(OpSAC, cellS)
	a.Emit(OpLACK, 0x80)
	a.Emit(OpSAC, cellSign)
	a.Branch(OpB, "clip")

	a.Label("positive")
	a.Emit(OpSAC, cellS)
	a.Emit(OpLACK, 0)
	a.Emit(OpSAC, cellSign)

	// if s > clip: s = clip. (s - clip has the sign bit clear iff
	// s ≥ clip; both fit in 15 bits here.)
	a.Label("clip")
	a.Emit(OpLAC, cellS)
	a.Emit(OpSUB, cellClip)
	a.Branch(OpBGEZ, "doClip")
	a.Branch(OpB, "bias")
	a.Label("doClip")
	a.Emit(OpLAC, cellClip)
	a.Emit(OpSAC, cellS)

	// s += bias.
	a.Label("bias")
	a.Emit(OpLAC, cellS)
	a.Emit(OpADD, cellBias)
	a.Emit(OpSAC, cellS)

	// Exponent search, unrolled: test 0x4000, 0x2000, ... 0x0100.
	// For exponent e the mantissa is (s >> (e+3)) & 0xF.
	for e := 7; e >= 1; e-- {
		a.Emit(OpLAC, cellS)
		a.Emit(OpAND, uint16(cellMask0+7-e))
		a.Branch(OpBNZ, fmt.Sprintf("exp%d", e))
	}
	// exponent 0
	a.Emit(OpLAC, cellS)
	a.Emit(OpSHR, 3)
	a.Emit(OpSAC, cellByte)
	a.Branch(OpB, "combine0")

	for e := 7; e >= 1; e-- {
		a.Label(fmt.Sprintf("exp%d", e))
		a.Emit(OpLAC, cellS)
		a.Emit(OpSHR, uint16(e+3))
		a.Emit(OpSAC, cellByte)
		a.Emit(OpLACK, uint16(e)<<4)
		a.Branch(OpB, "combine")
	}

	a.Label("combine0")
	a.Emit(OpLACK, 0) // exponent field 0

	// acc holds exp<<4; byte = ^(sign | exp<<4 | (mantissa & 0xF)).
	a.Label("combine")
	a.Emit(OpSAC, cellS) // reuse cellS for the exponent field
	a.Emit(OpLAC, cellByte)
	a.Emit(OpAND, cellNibble)
	a.Emit(OpOR, cellS)
	a.Emit(OpOR, cellSign)
	a.Emit(OpXOR, cellFF) // complement the low byte
	a.Emit(OpOUT, 0)
	a.Branch(OpB, "start")

	a.Label("end")
	a.Emit(OpHALT, 0)
	return a.Assemble()
}

// cellNibble holds the 0x000F mantissa mask.
const cellNibble = 7

// LoadMuLawConstants pokes the encoder's constant pool into a VM.
func LoadMuLawConstants(v *VM, sampleCount int) {
	v.Poke(cellCount, uint16(sampleCount))
	v.Poke(cellClip, muLawClip)
	v.Poke(cellBias, muLawBias)
	v.Poke(cellFF, 0x00FF)
	v.Poke(cellMax, 0x7FFF)
	v.Poke(cellNibble, 0x000F)
	for i := 0; i < 7; i++ {
		v.Poke(cellMask0+i, uint16(0x4000)>>uint(i))
	}
}

// CompressMuLaw runs the microprogram over linear PCM samples and
// returns the µ-law bytes plus the DSP time it took.
func CompressMuLaw(samples []int16) ([]uint8, uint64, error) {
	prog, err := MuLawProgram()
	if err != nil {
		return nil, 0, err
	}
	vm := New(prog)
	LoadMuLawConstants(vm, len(samples))
	in := make([]uint16, len(samples))
	for i, s := range samples {
		in[i] = uint16(s)
	}
	vm.SetInput(in)
	// ~40 instructions per sample; allow generous headroom.
	if err := vm.Run(uint64(len(samples)+1)*200 + 100); err != nil {
		return nil, 0, err
	}
	out := vm.Output()
	bs := make([]uint8, len(out))
	for i, w := range out {
		bs[i] = uint8(w)
	}
	return bs, vm.ElapsedNanos(), nil
}
