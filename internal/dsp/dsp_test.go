package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMuLawReferenceKnownValues(t *testing.T) {
	// Spot checks against the G.711 tables.
	cases := []struct {
		in   int16
		want uint8
	}{
		{0, 0xFF},
		{-1, 0x7F},
		{8031, 0x80 ^ 0x7F ^ 0xFF}, // near positive max: 0x80
	}
	_ = cases
	if MuLawEncode(0) != 0xFF {
		t.Fatalf("encode(0) = %#x, want 0xFF", MuLawEncode(0))
	}
	if MuLawEncode(-1) != 0x7F {
		t.Fatalf("encode(-1) = %#x, want 0x7F", MuLawEncode(-1))
	}
	if MuLawEncode(32767) != 0x80 {
		t.Fatalf("encode(max) = %#x, want 0x80", MuLawEncode(32767))
	}
	if MuLawEncode(-32768) != 0x00 {
		t.Fatalf("encode(min) = %#x, want 0x00", MuLawEncode(-32768))
	}
}

func TestMuLawRoundTripAccuracy(t *testing.T) {
	// µ-law is lossy but must round-trip within the segment's step size
	// and preserve sign and ordering.
	for s := -32768; s <= 32767; s += 7 {
		enc := MuLawEncode(int16(s))
		dec := MuLawDecode(enc)
		err := math.Abs(float64(int32(dec) - int32(s)))
		// Error bound: half the largest quantization step (~1024 at the
		// top segment).
		if err > 1024 {
			t.Fatalf("sample %d → %#x → %d (error %.0f)", s, enc, dec, err)
		}
		if s > 200 && dec < 0 || s < -200 && dec > 0 {
			t.Fatalf("sign lost: %d → %d", s, dec)
		}
	}
}

func TestMuLawDecodeEncodeIdempotent(t *testing.T) {
	// Decoding then re-encoding any µ-law byte must reproduce the byte
	// (the decoder output is each segment's reconstruction level). The
	// single exception is G.711's "negative zero" 0x7F, which decodes to
	// 0 and re-encodes as the canonical positive zero 0xFF.
	for b := 0; b < 256; b++ {
		dec := MuLawDecode(uint8(b))
		re := MuLawEncode(dec)
		if uint8(b) == 0x7F {
			if re != 0xFF {
				t.Fatalf("negative zero should canonicalize: %#x", re)
			}
			continue
		}
		if re != uint8(b) {
			t.Fatalf("byte %#x → %d → %#x", b, dec, re)
		}
	}
}

func TestMicroprogramMatchesReferenceExhaustively(t *testing.T) {
	// The DSP microprogram must agree with the Go reference encoder for
	// every 16-bit sample value.
	var samples []int16
	for s := -32768; s <= 32767; s += 3 {
		samples = append(samples, int16(s))
	}
	samples = append(samples, -32768, -1, 0, 1, 32767)
	got, _, err := CompressMuLaw(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("output length %d, want %d", len(got), len(samples))
	}
	for i, s := range samples {
		want := MuLawEncode(s)
		if got[i] != want {
			t.Fatalf("sample %d: microprogram %#x, reference %#x", s, got[i], want)
		}
	}
}

func TestMicroprogramRealTimeBudget(t *testing.T) {
	// The VCA's voice path digitizes at 8 K samples/s: the compressor
	// has 125 µs per sample. Measure the microprogram's worst case.
	samples := []int16{-32768, 32767, 0, -1, 1, 12345, -12345, 100, -100}
	prog, err := MuLawProgram()
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	LoadMuLawConstants(vm, len(samples))
	in := make([]uint16, len(samples))
	for i, s := range samples {
		in[i] = uint16(s)
	}
	vm.SetInput(in)
	if err := vm.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	perSample := vm.ElapsedNanos() / uint64(len(samples))
	if perSample > 125_000 {
		t.Fatalf("compressor too slow for real time: %d ns/sample", perSample)
	}
	if perSample < 1_000 {
		t.Fatalf("cycle accounting implausible: %d ns/sample", perSample)
	}
}

func TestVMBasics(t *testing.T) {
	a := NewAssembler()
	a.Emit(OpLACK, 40)
	a.Emit(OpADDK, 2)
	a.Emit(OpSAC, 100)
	a.Emit(OpLAC, 100)
	a.Emit(OpSHL, 1)
	a.Emit(OpOUT, 0)
	a.Emit(OpHALT, 0)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if err := vm.Run(100); err != nil {
		t.Fatal(err)
	}
	if !vm.Halted() {
		t.Fatal("should halt")
	}
	if got := vm.Output(); len(got) != 1 || got[0] != 84 {
		t.Fatalf("output: %v", got)
	}
	if vm.Peek(100) != 42 {
		t.Fatalf("memory: %d", vm.Peek(100))
	}
	if vm.Cycles() == 0 || vm.ElapsedNanos() != vm.Cycles()*CycleNanos {
		t.Fatal("cycle accounting")
	}
}

func TestVMBranching(t *testing.T) {
	// Count down from 5 using BNZ.
	a := NewAssembler()
	a.Emit(OpLACK, 5)
	a.Label("loop")
	a.Emit(OpSUBK, 1)
	a.Emit(OpOUT, 0)
	a.Branch(OpBNZ, "loop")
	a.Emit(OpHALT, 0)
	prog, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if err := vm.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := vm.Output(); len(got) != 5 || got[4] != 0 {
		t.Fatalf("countdown: %v", got)
	}
}

func TestVMErrors(t *testing.T) {
	vm := New(Program{{Op: OpLAC, Arg: 60000}})
	if err := vm.Run(10); err == nil {
		t.Fatal("out-of-range data address must error")
	}
	vm = New(Program{{Op: OpLACK, Arg: 1}}) // runs off the end
	if err := vm.Run(10); err == nil {
		t.Fatal("running off the program end must error")
	}
	vm = New(Program{{Op: numOps}})
	if err := vm.Run(10); err == nil {
		t.Fatal("illegal opcode must error")
	}
	// Cycle budget.
	a := NewAssembler()
	a.Label("spin")
	a.Branch(OpB, "spin")
	prog, _ := a.Assemble()
	vm = New(prog)
	if err := vm.Run(100); err == nil {
		t.Fatal("infinite loop must exhaust the budget")
	}
}

func TestAssemblerErrors(t *testing.T) {
	a := NewAssembler()
	a.Branch(OpB, "nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("undefined label must error")
	}
	a = NewAssembler()
	a.Label("x")
	a.Label("x")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("duplicate label must error")
	}
}

func TestVMInputExhaustion(t *testing.T) {
	vm := New(Program{{Op: OpIN}, {Op: OpOUT}, {Op: OpHALT}})
	vm.SetInput(nil)
	if err := vm.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := vm.Output(); got[0] != 0xFFFF {
		t.Fatalf("empty FIFO should read all-ones: %#x", got[0])
	}
}

func TestVMPokePeekBounds(t *testing.T) {
	vm := New(Program{{Op: OpHALT}})
	vm.Poke(-1, 1)
	vm.Poke(DataWords, 1)
	if vm.Peek(-1) != 0 || vm.Peek(DataWords) != 0 {
		t.Fatal("out-of-range access must be inert")
	}
}

// Property: microprogram equals reference for arbitrary sample vectors.
func TestMicroprogramProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) > 512 {
			raw = raw[:512]
		}
		got, _, err := CompressMuLaw(raw)
		if err != nil || len(got) != len(raw) {
			return false
		}
		for i, s := range raw {
			if got[i] != MuLawEncode(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
