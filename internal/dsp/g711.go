package dsp

// G.711 µ-law reference codec. The DSP microprogram in programs.go is
// verified bit-for-bit against this implementation.

const (
	muLawBias = 0x84 // 132
	muLawClip = 0x7F7B
)

// MuLawEncode compresses one 16-bit linear PCM sample to 8-bit µ-law.
func MuLawEncode(sample int16) uint8 {
	sign := uint8(0)
	s := int32(sample)
	if s < 0 {
		s = -s
		sign = 0x80
	}
	if s > muLawClip {
		s = muLawClip
	}
	s += muLawBias
	exp := uint8(7)
	for mask := int32(0x4000); mask != 0 && s&mask == 0; mask >>= 1 {
		exp--
	}
	mantissa := uint8((s >> (exp + 3)) & 0x0F)
	return ^(sign | exp<<4 | mantissa)
}

// MuLawDecode expands one 8-bit µ-law byte back to 16-bit linear PCM.
func MuLawDecode(b uint8) int16 {
	b = ^b
	sign := b & 0x80
	exp := (b >> 4) & 0x07
	mantissa := b & 0x0F
	s := (int32(mantissa)<<3 + muLawBias) << exp
	s -= muLawBias
	if sign != 0 {
		s = -s
	}
	return int16(s)
}

// MuLawEncodeAll compresses a sample buffer.
func MuLawEncodeAll(samples []int16) []uint8 {
	out := make([]uint8, len(samples))
	for i, s := range samples {
		out[i] = MuLawEncode(s)
	}
	return out
}

// MuLawDecodeAll expands a µ-law buffer.
func MuLawDecodeAll(bs []uint8) []int16 {
	out := make([]int16, len(bs))
	for i, b := range bs {
		out[i] = MuLawDecode(b)
	}
	return out
}
