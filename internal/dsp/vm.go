// Package dsp models the signal processor on the paper's audio adapters:
// the VCA's TI32010 (§5.1: "a TI32010 DSP, 2k by 16 bit memory") and the
// Audio Capture and Playback Adapter's TI32025, which footnote 3 notes
// was expected to compress audio "in software on the adapter" before the
// data crossed the byte-wide host interface.
//
// The model is a small 16-bit accumulator machine with the instruction
// flavor of the first-generation TMS320 family: an accumulator, a 2K-word
// data memory, direct and immediate addressing, shifts, branches, and IN/
// OUT ports. Cycle counts use the TMS32010's 200 ns instruction time, so
// a program's execution time is physically meaningful — the package can
// verify, for instance, that a 12 ms interrupt loop is 60 000 cycles.
//
// A real G.711 µ-law compressor written in this instruction set ships in
// programs.go, and the tests verify it against the Go reference encoder
// bit-for-bit.
package dsp

import "fmt"

// Machine geometry (TMS32010-class).
const (
	// DataWords is the data memory size: "2k by 16 bit".
	DataWords = 2048
	// CycleNanos is the instruction cycle time at 20 MHz / 4 states.
	CycleNanos = 200
)

// Op is an instruction opcode.
type Op uint8

const (
	// OpHALT stops the program.
	OpHALT Op = iota
	// OpLAC loads the accumulator from data memory.
	OpLAC
	// OpLACK loads an immediate constant (0..255).
	OpLACK
	// OpSAC stores the accumulator to data memory.
	OpSAC
	// OpADD adds a data-memory word to the accumulator.
	OpADD
	// OpADDK adds an immediate constant.
	OpADDK
	// OpSUB subtracts a data-memory word.
	OpSUB
	// OpSUBK subtracts an immediate constant.
	OpSUBK
	// OpAND masks the accumulator with a data-memory word.
	OpAND
	// OpOR ors a data-memory word into the accumulator.
	OpOR
	// OpXOR xors a data-memory word into the accumulator.
	OpXOR
	// OpSHL shifts the accumulator left by the operand count.
	OpSHL
	// OpSHR shifts the accumulator right (logical) by the operand count.
	OpSHR
	// OpB branches unconditionally to the operand address.
	OpB
	// OpBZ branches if the accumulator is zero.
	OpBZ
	// OpBNZ branches if the accumulator is nonzero.
	OpBNZ
	// OpBGEZ branches if the accumulator's sign bit is clear.
	OpBGEZ
	// OpIN reads the next word from the input port into the accumulator.
	OpIN
	// OpOUT writes the accumulator to the output port.
	OpOUT
	// OpNEG negates the accumulator (two's complement).
	OpNEG
	numOps
)

var opNames = [numOps]string{
	"HALT", "LAC", "LACK", "SAC", "ADD", "ADDK", "SUB", "SUBK",
	"AND", "OR", "XOR", "SHL", "SHR", "B", "BZ", "BNZ", "BGEZ",
	"IN", "OUT", "NEG",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Instr is one instruction: an opcode and a 16-bit operand (a data
// address, immediate value, shift count or branch target depending on the
// opcode).
type Instr struct {
	Op  Op
	Arg uint16
}

// Program is an assembled instruction sequence.
type Program []Instr

// VM is the processor state.
type VM struct {
	prog   Program
	pc     int
	acc    uint16
	data   [DataWords]uint16
	in     []uint16
	inPos  int
	out    []uint16
	cycles uint64
	halted bool
}

// New creates a VM for a program.
func New(prog Program) *VM {
	return &VM{prog: prog}
}

// SetInput provides the IN port's word stream.
func (v *VM) SetInput(words []uint16) { v.in = words; v.inPos = 0 }

// Output returns everything written to the OUT port.
func (v *VM) Output() []uint16 { return v.out }

// Cycles reports executed instruction cycles.
func (v *VM) Cycles() uint64 { return v.cycles }

// ElapsedNanos reports the program's execution time on real silicon.
func (v *VM) ElapsedNanos() uint64 { return v.cycles * CycleNanos }

// Halted reports whether the program has executed HALT.
func (v *VM) Halted() bool { return v.halted }

// Poke writes a data-memory word (host access to the 2K×16 memory — the
// byte-wide interface the paper describes is the kernel driver's view).
func (v *VM) Poke(addr int, val uint16) {
	if addr >= 0 && addr < DataWords {
		v.data[addr] = val
	}
}

// Peek reads a data-memory word.
func (v *VM) Peek(addr int) uint16 {
	if addr >= 0 && addr < DataWords {
		return v.data[addr]
	}
	return 0
}

// Step executes one instruction. It reports false once halted.
func (v *VM) Step() (bool, error) {
	if v.halted {
		return false, nil
	}
	if v.pc < 0 || v.pc >= len(v.prog) {
		return false, fmt.Errorf("dsp: pc %d out of program (len %d)", v.pc, len(v.prog))
	}
	ins := v.prog[v.pc]
	v.pc++
	v.cycles++

	mem := func() (uint16, error) {
		if int(ins.Arg) >= DataWords {
			return 0, fmt.Errorf("dsp: %v: data address %d out of range", ins.Op, ins.Arg)
		}
		return v.data[ins.Arg], nil
	}

	switch ins.Op {
	case OpHALT:
		v.halted = true
		return false, nil
	case OpLAC:
		m, err := mem()
		if err != nil {
			return false, err
		}
		v.acc = m
	case OpLACK:
		v.acc = ins.Arg & 0xFF
	case OpSAC:
		if int(ins.Arg) >= DataWords {
			return false, fmt.Errorf("dsp: SAC address %d out of range", ins.Arg)
		}
		v.data[ins.Arg] = v.acc
	case OpADD:
		m, err := mem()
		if err != nil {
			return false, err
		}
		v.acc += m
	case OpADDK:
		v.acc += ins.Arg & 0xFF
	case OpSUB:
		m, err := mem()
		if err != nil {
			return false, err
		}
		v.acc -= m
	case OpSUBK:
		v.acc -= ins.Arg & 0xFF
	case OpAND:
		m, err := mem()
		if err != nil {
			return false, err
		}
		v.acc &= m
	case OpOR:
		m, err := mem()
		if err != nil {
			return false, err
		}
		v.acc |= m
	case OpXOR:
		m, err := mem()
		if err != nil {
			return false, err
		}
		v.acc ^= m
	case OpSHL:
		v.acc <<= ins.Arg & 0xF
	case OpSHR:
		v.acc >>= ins.Arg & 0xF
	case OpNEG:
		v.acc = -v.acc
	case OpB:
		v.pc = int(ins.Arg)
		v.cycles++ // branches take an extra cycle
	case OpBZ:
		if v.acc == 0 {
			v.pc = int(ins.Arg)
			v.cycles++
		}
	case OpBNZ:
		if v.acc != 0 {
			v.pc = int(ins.Arg)
			v.cycles++
		}
	case OpBGEZ:
		if v.acc&0x8000 == 0 {
			v.pc = int(ins.Arg)
			v.cycles++
		}
	case OpIN:
		if v.inPos >= len(v.in) {
			v.acc = 0xFFFF // empty FIFO reads all-ones
		} else {
			v.acc = v.in[v.inPos]
			v.inPos++
		}
	case OpOUT:
		v.out = append(v.out, v.acc)
	default:
		return false, fmt.Errorf("dsp: illegal opcode %d at pc %d", ins.Op, v.pc-1)
	}
	return true, nil
}

// Run executes until HALT or the cycle budget is exhausted.
func (v *VM) Run(maxCycles uint64) error {
	for v.cycles < maxCycles {
		ok, err := v.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	return fmt.Errorf("dsp: cycle budget %d exhausted at pc %d", maxCycles, v.pc)
}
