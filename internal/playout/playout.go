// Package playout models the presentation-side buffer of a continuous
// media receiver: after an initial prebuffer delay it consumes the stream
// at a constant byte rate. It is the quantity §6's conclusion is about
// ("the buffer space needed for 150 KBytes/sec CTMSP data transfer is
// under 25 KBytes") and is shared by the single-stream experiment runner
// (internal/core) and the multi-stream session layer (internal/session).
package playout

import (
	"fmt"

	"repro/internal/sim"
)

// Stats summarizes the presentation-side buffer behaviour.
type Stats struct {
	// Glitches counts underruns: moments the converter was starved.
	Glitches uint64
	// StarvedTime is total time spent with an empty buffer after
	// playback began.
	StarvedTime sim.Time
	// MaxBufferBytes is the high-water mark of buffered data.
	MaxBufferBytes int
	// BytesPlayed is total data consumed by the converter.
	BytesPlayed int64
	// Delivered counts packets that reached the playout buffer.
	Delivered uint64
}

// EvGlitch is the structured trace kind for a playout underrun: A = the
// cumulative glitch count, B = the shortfall in bytes. Kind block 32–47
// belongs to playout.
const EvGlitch sim.EventKind = 32

func init() { sim.RegisterEventKind(EvGlitch, "playout.glitch") }

// Playout models the digital-to-audio subsystem: after an initial
// prebuffer delay it consumes the stream at a constant byte rate; an
// arriving-packet history plus analytic drain between events gives exact
// underrun and high-water accounting without per-byte events.
//
//ctmsvet:shardowned
type Playout struct {
	bytesPerSec float64
	prebuffer   sim.Time
	trace       *sim.Trace

	started  bool
	playAt   sim.Time // when consumption begins
	lastT    sim.Time
	buffer   float64
	starved  bool
	starvedA sim.Time

	stats Stats
}

// SetTrace attaches a structured trace that records each underrun.
// Playout has no scheduler reference, so the trace is wired explicitly;
// a nil trace (the default) costs one pointer test per glitch.
func (p *Playout) SetTrace(t *sim.Trace) { p.trace = t }

// New creates the model. rateBytesPerSec is the stream's consumption
// rate; prebuffer delays playback after the first packet.
func New(rateBytesPerSec float64, prebuffer sim.Time) *Playout {
	sim.Checkf(rateBytesPerSec > 0, "playout rate must be positive")
	return &Playout{bytesPerSec: rateBytesPerSec, prebuffer: prebuffer}
}

// drainTo advances the consumption clock to t.
//
//ctmsvet:hotpath
func (p *Playout) drainTo(t sim.Time) {
	if !p.started || t <= p.lastT {
		return
	}
	from := p.lastT
	if from < p.playAt {
		from = p.playAt
	}
	if t <= from {
		p.lastT = t
		return
	}
	need := p.bytesPerSec * (t - from).Seconds()
	if need <= p.buffer {
		p.buffer -= need
		p.stats.BytesPlayed += int64(need)
		if p.starved {
			p.starved = false
		}
	} else {
		// Underrun: played what we had, starved for the rest.
		p.stats.BytesPlayed += int64(p.buffer)
		shortfall := need - p.buffer
		p.buffer = 0
		starvedFor := sim.Time(shortfall / p.bytesPerSec * float64(sim.Second))
		p.stats.StarvedTime += starvedFor
		if !p.starved {
			p.stats.Glitches++
			p.starved = true
			p.starvedA = t
			p.trace.AddEvent(t, EvGlitch, int64(p.stats.Glitches), int64(shortfall))
		}
	}
	p.lastT = t
}

// Deliver adds n stream bytes arriving at time t.
//
//ctmsvet:hotpath
func (p *Playout) Deliver(n int, t sim.Time) {
	sim.Checkf(n >= 0, "negative delivery")
	if !p.started {
		p.started = true
		p.playAt = t + p.prebuffer
		p.lastT = t
	}
	p.drainTo(t)
	p.buffer += float64(n)
	p.stats.Delivered++
	if int(p.buffer) > p.stats.MaxBufferBytes {
		p.stats.MaxBufferBytes = int(p.buffer)
	}
}

// Finish drains up to the end-of-run time and returns the stats.
func (p *Playout) Finish(t sim.Time) Stats {
	p.drainTo(t)
	return p.stats
}

// BufferBytes reports the current occupancy.
func (p *Playout) BufferBytes() int { return int(p.buffer) }

// String summarizes the playout state.
func (p *Playout) String() string {
	return fmt.Sprintf("playout{buffer=%dB max=%dB glitches=%d}", int(p.buffer), p.stats.MaxBufferBytes, p.stats.Glitches)
}
