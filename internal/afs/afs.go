// Package afs is a miniature Andrew File System: whole-file fetch with
// client-side caching and server callbacks [Morris86], running over the
// reliable transport. The paper's machines are AFS clients on a ring with
// several AFS file servers; the CTMS file server reads its documents from
// here, and the "file transfer packets sent while a compile is done" that
// §5.3 sees on the wire are exactly this traffic.
//
// The protocol is deliberately AFS-1-shaped: Fetch returns the whole
// file; the server remembers who fetched what and breaks callbacks when a
// Store changes a file; a client with an unbroken callback serves reads
// from its cache without touching the network.
package afs

import (
	"fmt"

	"repro/internal/inet"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Message types carried over the reliable transport. Payload sizes are
// modeled on the wire by the transport's byte counts.
type fetchReq struct {
	Name string
}

type fetchResp struct {
	Name string
	Data []byte
	Err  string
}

type storeReq struct {
	Name string
	Data []byte
}

type storeResp struct {
	Name string
	Err  string
}

type callbackBreak struct {
	Name string
}

// reqHeaderBytes approximates RPC header overhead on the wire.
const reqHeaderBytes = 64

// Disk models the server's disk: a seek plus a transfer at a fixed rate,
// with requests serialized on the arm.
type Disk struct {
	sched *sim.Scheduler
	seek  sim.Time
	//ctmsvet:unit s/byte
	perByte   sim.Time
	busyUntil sim.Time
	Reads     uint64
	BytesRead uint64
}

// NewDisk builds a 1990-class disk: ~20 ms average access, ~1 MB/s
// sustained transfer.
func NewDisk(sched *sim.Scheduler) *Disk {
	return &Disk{sched: sched, seek: 20 * sim.Millisecond, perByte: sim.Microsecond}
}

// Read schedules a read of n bytes and calls done when the data is in
// memory. Requests queue behind one another on the arm.
func (d *Disk) Read(n int, done func()) {
	start := d.sched.Now()
	if d.busyUntil > start {
		start = d.busyUntil
	}
	finish := start + d.seek + sim.PerByte(d.perByte, n)
	d.busyUntil = finish
	d.Reads++
	d.BytesRead += uint64(n)
	d.sched.At(finish, "disk.read", done)
}

// ServerStats aggregates file-server accounting.
type ServerStats struct {
	Fetches        uint64
	Stores         uint64
	BytesOut       uint64
	CallbackBreaks uint64
	Errors         uint64
}

// Server is the AFS file server: named files on a disk, callback
// registrations per client.
type Server struct {
	stack *inet.Stack
	disk  *Disk
	files map[string][]byte
	// callbacks[name] is the set of clients holding a callback promise.
	callbacks map[string]map[ring.Addr]bool
	// storeBytes accumulates multi-segment store requests per client+file.
	storeBytes map[string]int
	stats      ServerStats
}

// NewServer attaches a file server to a protocol stack.
func NewServer(stack *inet.Stack, disk *Disk) *Server {
	s := &Server{
		stack:      stack,
		disk:       disk,
		files:      make(map[string][]byte),
		callbacks:  make(map[string]map[ring.Addr]bool),
		storeBytes: make(map[string]int),
	}
	stack.OnDatagram(s.datagram)
	return s
}

// Put installs a file directly on the server (administrative load).
func (s *Server) Put(name string, data []byte) {
	s.files[name] = append([]byte{}, data...)
}

// Stats returns a snapshot of server accounting.
func (s *Server) Stats() ServerStats { return s.stats }

// serveConn ensures an RDT connection back to a client exists and
// returns it.
func (s *Server) serveConn(peer ring.Addr) *inet.RDTConn {
	return s.stack.RDTOpen(peer)
}

// Attach registers the server's request handler on its RDT connections.
// Each new client is wired lazily on first datagram... requests actually
// arrive over RDT, so the server must open a connection per client and
// install a deliver handler. Clients announce themselves with a datagram.
func (s *Server) datagram(dg *inet.Datagram, _ sim.Time) {
	if dg.Payload != "afs-hello" {
		return
	}
	peer := dg.IP.Src
	conn := s.serveConn(peer)
	conn.OnDeliver(func(payload any, n int, _ sim.Time) {
		s.request(peer, payload, n)
	})
}

func (s *Server) request(peer ring.Addr, payload any, n int) {
	conn := s.serveConn(peer)
	switch req := payload.(type) {
	case fetchReq:
		s.stats.Fetches++
		data, ok := s.files[req.Name]
		if !ok {
			s.stats.Errors++
			conn.Send(fetchResp{Name: req.Name, Err: "no such file"}, reqHeaderBytes, nil)
			return
		}
		// Register the callback promise, read the disk, ship the file.
		if s.callbacks[req.Name] == nil {
			s.callbacks[req.Name] = make(map[ring.Addr]bool)
		}
		s.callbacks[req.Name][peer] = true
		name := req.Name
		s.disk.Read(len(data), func() {
			s.stats.BytesOut += uint64(len(data))
			conn.Send(fetchResp{Name: name, Data: data}, reqHeaderBytes+len(data), nil)
		})
	case storeReq:
		// Multi-segment stores complete only when fully received.
		key := fmt.Sprintf("%d/%s", peer, req.Name)
		s.storeBytes[key] += n
		if s.storeBytes[key] < reqHeaderBytes+len(req.Data) {
			return
		}
		delete(s.storeBytes, key)
		s.stats.Stores++
		s.files[req.Name] = append([]byte{}, req.Data...)
		// Break callbacks held by everyone else.
		for client := range s.callbacks[req.Name] {
			if client == peer {
				continue
			}
			s.stats.CallbackBreaks++
			s.serveConn(client).Send(callbackBreak{Name: req.Name}, reqHeaderBytes, nil)
		}
		delete(s.callbacks, req.Name)
		conn.Send(storeResp{Name: req.Name}, reqHeaderBytes, nil)
	}
}

// ClientStats aggregates cache-manager accounting.
type ClientStats struct {
	Fetches     uint64
	CacheHits   uint64
	CacheMisses uint64
	Invalidated uint64
	Errors      uint64
}

// Client is the AFS cache manager on one machine.
type Client struct {
	stack  *inet.Stack
	server ring.Addr
	conn   *inet.RDTConn
	cache  map[string][]byte
	valid  map[string]bool

	pendingFetch map[string][]func([]byte, error)
	pendingStore map[string][]func(error)
	// gotBytes accumulates transport bytes per in-flight response so a
	// multi-segment reply only completes when it has fully arrived.
	gotBytes map[string]int
	stats    ClientStats
}

// NewClient connects a cache manager to a server. The hello datagram
// lets the server wire its side of the transport.
func NewClient(stack *inet.Stack, server ring.Addr) *Client {
	c := &Client{
		stack:        stack,
		server:       server,
		conn:         stack.RDTOpen(server),
		cache:        make(map[string][]byte),
		valid:        make(map[string]bool),
		pendingFetch: make(map[string][]func([]byte, error)),
		pendingStore: make(map[string][]func(error)),
		gotBytes:     make(map[string]int),
	}
	c.conn.OnDeliver(func(payload any, n int, _ sim.Time) { c.deliver(payload, n) })
	stack.SendDatagram(server, reqHeaderBytes, "afs-hello", nil)
	return c
}

// Stats returns a snapshot of cache accounting.
func (c *Client) Stats() ClientStats { return c.stats }

// Fetch returns the file, from cache when the callback promise still
// holds, otherwise from the server.
func (c *Client) Fetch(name string, done func(data []byte, err error)) {
	if c.valid[name] {
		c.stats.CacheHits++
		done(c.cache[name], nil)
		return
	}
	c.stats.CacheMisses++
	c.stats.Fetches++
	c.pendingFetch[name] = append(c.pendingFetch[name], done)
	if len(c.pendingFetch[name]) > 1 {
		return // a fetch is already outstanding
	}
	c.conn.Send(fetchReq{Name: name}, reqHeaderBytes, nil)
}

// Store writes the file through to the server.
func (c *Client) Store(name string, data []byte, done func(error)) {
	c.cache[name] = append([]byte{}, data...)
	c.valid[name] = true
	c.pendingStore[name] = append(c.pendingStore[name], done)
	c.conn.Send(storeReq{Name: name, Data: data}, reqHeaderBytes+len(data), nil)
}

func (c *Client) deliver(payload any, n int) {
	switch m := payload.(type) {
	case fetchResp:
		// The transport delivers per segment; the reply is complete only
		// when every byte has crossed the wire.
		c.gotBytes[m.Name] += n
		if m.Err == "" && c.gotBytes[m.Name] < reqHeaderBytes+len(m.Data) {
			return
		}
		delete(c.gotBytes, m.Name)
		waiters := c.pendingFetch[m.Name]
		delete(c.pendingFetch, m.Name)
		var err error
		if m.Err != "" {
			err = fmt.Errorf("afs: %s: %s", m.Name, m.Err)
			c.stats.Errors++
		} else {
			c.cache[m.Name] = m.Data
			c.valid[m.Name] = true
		}
		for _, w := range waiters {
			w(m.Data, err)
		}
	case storeResp:
		waiters := c.pendingStore[m.Name]
		delete(c.pendingStore, m.Name)
		var err error
		if m.Err != "" {
			err = fmt.Errorf("afs: %s: %s", m.Name, m.Err)
			c.stats.Errors++
		}
		for _, w := range waiters {
			w(err)
		}
	case callbackBreak:
		c.stats.Invalidated++
		c.valid[m.Name] = false
	}
}
