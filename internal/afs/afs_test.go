package afs

import (
	"bytes"
	"testing"

	"repro/internal/inet"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

type afsRig struct {
	sched  *sim.Scheduler
	server *Server
	disk   *Disk
	// clients by name
	clients map[string]*Client
	kernels map[string]*kernel.Kernel
}

func newAFSRig(t *testing.T, clientNames ...string) *afsRig {
	t.Helper()
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	mkStack := func(name string) (*kernel.Kernel, *inet.Stack) {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 17)
		k := kernel.New(m)
		st := r.Attach(name)
		drv := tradapter.New(k, st, tradapter.StockConfig(), tradapter.DefaultTiming())
		k.Register(drv)
		return k, inet.NewStack(k, drv, inet.DefaultCosts())
	}
	_, srvStack := mkStack("fileserver")
	disk := NewDisk(sched)
	rig := &afsRig{
		sched:   sched,
		server:  NewServer(srvStack, disk),
		disk:    disk,
		clients: make(map[string]*Client),
		kernels: make(map[string]*kernel.Kernel),
	}
	for _, n := range clientNames {
		k, st := mkStack(n)
		rig.kernels[n] = k
		rig.clients[n] = NewClient(st, srvStack.Addr())
	}
	// Let the hello datagrams land.
	sched.RunUntil(200 * sim.Millisecond)
	return rig
}

func TestFetchWholeFile(t *testing.T) {
	rig := newAFSRig(t, "c1")
	content := bytes.Repeat([]byte("multimedia document "), 1000) // 20 KB
	rig.server.Put("/afs/doc.ctms", content)

	var got []byte
	var gotErr error
	rig.clients["c1"].Fetch("/afs/doc.ctms", func(d []byte, err error) { got, gotErr = d, err })
	rig.sched.RunUntil(5 * sim.Second)

	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("fetched %d bytes, want %d, content mismatch", len(got), len(content))
	}
	if rig.disk.Reads != 1 {
		t.Fatalf("disk reads: %d", rig.disk.Reads)
	}
	if rig.server.Stats().Fetches != 1 {
		t.Fatalf("server fetches: %+v", rig.server.Stats())
	}
}

func TestCacheHitAvoidsNetworkAndDisk(t *testing.T) {
	rig := newAFSRig(t, "c1")
	rig.server.Put("/f", []byte("cached content"))
	c := rig.clients["c1"]

	c.Fetch("/f", func([]byte, error) {})
	rig.sched.RunUntil(5 * sim.Second)
	fetches := rig.server.Stats().Fetches

	hits := 0
	for i := 0; i < 5; i++ {
		c.Fetch("/f", func(d []byte, err error) {
			if err == nil && string(d) == "cached content" {
				hits++
			}
		})
	}
	rig.sched.RunUntil(10 * sim.Second)
	if hits != 5 {
		t.Fatalf("cache hits: %d", hits)
	}
	if rig.server.Stats().Fetches != fetches {
		t.Fatal("cache hits must not touch the server")
	}
	if got := c.Stats(); got.CacheHits != 5 || got.CacheMisses != 1 {
		t.Fatalf("client stats: %+v", got)
	}
}

func TestCallbackBreakInvalidates(t *testing.T) {
	rig := newAFSRig(t, "reader", "writer")
	rig.server.Put("/shared", []byte("v1"))

	reader := rig.clients["reader"]
	writer := rig.clients["writer"]

	var v1 []byte
	reader.Fetch("/shared", func(d []byte, err error) { v1 = d })
	rig.sched.RunUntil(5 * sim.Second)
	if string(v1) != "v1" {
		t.Fatalf("initial fetch: %q", v1)
	}

	// The writer stores a new version; the reader's callback breaks.
	stored := false
	writer.Store("/shared", []byte("v2-new"), func(err error) {
		if err != nil {
			t.Error(err)
		}
		stored = true
	})
	rig.sched.RunUntil(10 * sim.Second)
	if !stored {
		t.Fatal("store never completed")
	}
	if reader.Stats().Invalidated != 1 {
		t.Fatalf("reader should be invalidated: %+v", reader.Stats())
	}

	// The reader's next fetch goes to the server and sees v2.
	var v2 []byte
	reader.Fetch("/shared", func(d []byte, err error) { v2 = d })
	rig.sched.RunUntil(15 * sim.Second)
	if string(v2) != "v2-new" {
		t.Fatalf("post-invalidation fetch: %q", v2)
	}
	if reader.Stats().CacheMisses != 2 {
		t.Fatalf("second fetch must miss: %+v", reader.Stats())
	}
}

func TestFetchMissingFile(t *testing.T) {
	rig := newAFSRig(t, "c1")
	var gotErr error
	called := false
	rig.clients["c1"].Fetch("/nope", func(d []byte, err error) { called = true; gotErr = err })
	rig.sched.RunUntil(5 * sim.Second)
	if !called || gotErr == nil {
		t.Fatalf("missing file should error: called=%t err=%v", called, gotErr)
	}
}

func TestConcurrentFetchersCoalesce(t *testing.T) {
	rig := newAFSRig(t, "c1")
	rig.server.Put("/big", bytes.Repeat([]byte("x"), 50_000))
	c := rig.clients["c1"]
	done := 0
	for i := 0; i < 4; i++ {
		c.Fetch("/big", func(d []byte, err error) {
			if err == nil && len(d) == 50_000 {
				done++
			}
		})
	}
	rig.sched.RunUntil(20 * sim.Second)
	if done != 4 {
		t.Fatalf("all waiters complete: %d", done)
	}
	if rig.server.Stats().Fetches != 1 {
		t.Fatalf("concurrent fetches should coalesce into one RPC: %+v", rig.server.Stats())
	}
}

func TestDiskSerializesAndCosts(t *testing.T) {
	sched := sim.NewScheduler()
	d := NewDisk(sched)
	var ends []sim.Time
	d.Read(10_000, func() { ends = append(ends, sched.Now()) })
	d.Read(10_000, func() { ends = append(ends, sched.Now()) })
	sched.Run()
	// Each read: 20 ms seek + 10 ms transfer.
	if ends[0] != 30*sim.Millisecond {
		t.Fatalf("first read at %v", ends[0])
	}
	if ends[1] != 60*sim.Millisecond {
		t.Fatalf("second read must queue behind the first: %v", ends[1])
	}
	if d.Reads != 2 || d.BytesRead != 20_000 {
		t.Fatalf("disk accounting: %+v", d)
	}
}

func TestFetchGeneratesFileTransferClassTraffic(t *testing.T) {
	// The wire signature of an AFS fetch is what §5.3 calls "file
	// transfer packets": a burst of maximum-size frames.
	sched := sim.NewScheduler()
	r := ring.New(sched, ring.DefaultConfig())
	bigFrames := 0
	r.AddTap(func(f *ring.Frame, _, _ sim.Time, _ ring.DeliveryStatus) {
		if f.Size > 1400 {
			bigFrames++
		}
	})
	mkStack := func(name string) *inet.Stack {
		m := rtpc.NewMachine(sched, name, rtpc.DefaultCostModel(), 3)
		k := kernel.New(m)
		st := r.Attach(name)
		drv := tradapter.New(k, st, tradapter.StockConfig(), tradapter.DefaultTiming())
		k.Register(drv)
		return inet.NewStack(k, drv, inet.DefaultCosts())
	}
	srv := NewServer(mkStack("srv"), NewDisk(sched))
	srv.Put("/compile-output", bytes.Repeat([]byte("obj"), 20_000)) // 60 KB
	cli := NewClient(mkStack("cli"), 1)
	sched.RunUntil(200 * sim.Millisecond)
	fetched := false
	cli.Fetch("/compile-output", func(d []byte, err error) { fetched = err == nil && len(d) == 60_000 })
	sched.RunUntil(30 * sim.Second)
	if !fetched {
		t.Fatal("fetch failed")
	}
	// 60 KB over an ~1480-byte MTU ⇒ ≥40 maximum-size frames.
	if bigFrames < 40 {
		t.Fatalf("a fetch should look like a file-transfer burst: %d big frames", bigFrames)
	}
}
