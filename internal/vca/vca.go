// Package vca models IBM's Voice Communications Adapter as the paper
// uses it: a TI32010 DSP programmed to interrupt the host every 12 ms
// with no detectable variation (§5.2.2 verified ±500 ns with a logic
// analyzer; we model it as exact and attribute all observed spread to the
// host side, as the paper does), a 2K×16 on-card buffer reachable through
// a byte-wide interface, and the device driver modifications of §5.1:
// ioctls that set up the special mode, fetch and keep the precomputed
// Token Ring header, and obtain the direct driver-to-driver handles.
package vca

import (
	"fmt"

	"repro/internal/ctmsp"
	"repro/internal/kernel"
	"repro/internal/ring"
	"repro/internal/rtpc"
	"repro/internal/sim"
	"repro/internal/tradapter"
)

// Interval is the DSP's programmed interrupt period.
const Interval = 12 * sim.Millisecond

// DeviceBufferBytes is the on-card memory (2K × 16 bits).
const DeviceBufferBytes = 4096

// Device is the adapter hardware: a perfectly regular interrupt source.
type Device struct {
	k      *kernel.Kernel
	rep    *sim.Repeater
	period sim.Time
	ticks  uint64
	// OnIRQ observes the exact hardware interrupt edge — measurement
	// point 1, which only the logic analyzer can see directly.
	OnIRQ func(tick uint64, at sim.Time)
	// irq is the host-side interrupt action installed by the driver.
	irq func(tick uint64)
}

// NewDevice creates the adapter on machine k with the paper's 12 ms
// interrupt period.
func NewDevice(k *kernel.Kernel) *Device {
	return &Device{k: k, period: Interval}
}

// SetPeriod reprograms the DSP's interrupt period (the session layer runs
// streams of different rates). Must be called before Start.
func (d *Device) SetPeriod(t sim.Time) {
	sim.Checkf(d.rep == nil, "cannot reprogram a running VCA")
	sim.Checkf(t > 0, "VCA period must be positive")
	d.period = t
}

// Start programs the DSP to begin interrupting every period.
func (d *Device) Start() {
	sim.Checkf(d.rep == nil, "VCA already started")
	d.rep = d.k.Sched().Every(d.period, "vca.irq", func() {
		tick := d.ticks
		d.ticks++
		if d.OnIRQ != nil {
			d.OnIRQ(tick, d.k.Sched().Now())
		}
		if d.irq != nil {
			d.irq(tick)
		}
	})
}

// Stop halts the DSP timer.
func (d *Device) Stop() {
	if d.rep != nil {
		d.rep.Stop()
		d.rep = nil
	}
}

// Ticks reports how many interrupts have fired.
func (d *Device) Ticks() uint64 { return d.ticks }

// SetIRQ installs the host-side interrupt action. NewTxDriver does this
// for the CTMS path; alternative drivers (the stock relay) install their
// own handler here.
func (d *Device) SetIRQ(fn func(tick uint64)) { d.irq = fn }

// TxConfig selects the transmit-side driver variants of §5.3.
type TxConfig struct {
	// DataBytes is the payload appended after the CTMSP header; the
	// paper uses packets of 2000 bytes total.
	DataBytes int
	// CopyHeaderOnly copies only the header into the fixed DMA buffer.
	CopyHeaderOnly bool
	// CopyVCAToMbufs copies the data out of the VCA device buffer into
	// mbufs over the byte-wide interface (the paper's tests append
	// synthetic data instead, leaving this off).
	CopyVCAToMbufs bool
	// DispatchCost is the hardware vectoring and register-save time
	// between the IRQ edge and the first handler instruction; the
	// measured minimum of the points 1→2 delta.
	DispatchCost sim.Time
	// EntryCost, AllocCost, StampCost are the handler code segments;
	// their sum plus the driver entry is the ~600 µs of non-copy latency
	// §5.3 attributes to "execution of the code between the two points".
	EntryCost, AllocCost, StampCost sim.Time
	// EntryJitterMax adds per-interrupt code-path variation.
	EntryJitterMax sim.Time
}

// DefaultTxConfig returns the calibrated transmit driver configuration.
func DefaultTxConfig() TxConfig {
	return TxConfig{
		DataBytes:      2000 - ctmsp.HeaderSize,
		DispatchCost:   28 * sim.Microsecond,
		EntryCost:      180 * sim.Microsecond,
		AllocCost:      150 * sim.Microsecond,
		StampCost:      80 * sim.Microsecond,
		EntryJitterMax: 30 * sim.Microsecond,
	}
}

// TxStats aggregates transmit-driver accounting.
type TxStats struct {
	Interrupts  uint64
	PacketsSent uint64
	MbufDrops   uint64
	QueueDrops  uint64
}

// TxDriver is the VCA driver configured as the CTMS data source: its
// interrupt handler builds a CTMSP packet and hands it directly to the
// Token Ring driver — the §2 driver-to-driver path, no user process.
type TxDriver struct {
	k    *kernel.Kernel
	dev  *Device
	conn *ctmsp.Conn
	out  func(*tradapter.Outgoing) // handle obtained by ioctl
	cfg  TxConfig

	// Probes for the measurement tools.
	OnHandlerEntry func(tick uint64, at sim.Time)      // point 2
	OnPreTransmit  func(packetNum uint32, at sim.Time) // point 3
	OnTxDone       func(packetNum uint32, s ring.DeliveryStatus)
	// PatchOutgoing, if set, may modify each packet before it is handed
	// to the Token Ring driver (used for the pointer-transfer ablation).
	PatchOutgoing func(*tradapter.Outgoing)

	// MaxOutstanding bounds packets queued in the TR driver before the
	// handler starts dropping (device-level flow control). Zero means
	// unlimited.
	MaxOutstanding int
	outstanding    int

	stats TxStats
}

// DriverName implements kernel.Driver.
func (t *TxDriver) DriverName() string { return "vca0" }

// Ioctl implements the special-mode setup commands of §5.1.
func (t *TxDriver) Ioctl(cmd string, arg any) (any, error) {
	switch cmd {
	case "get-stats":
		return t.stats, nil
	case "set-max-outstanding":
		n, ok := arg.(int)
		if !ok {
			return nil, fmt.Errorf("vca0: set-max-outstanding wants an int")
		}
		t.MaxOutstanding = n
		return nil, nil
	default:
		return nil, fmt.Errorf("vca0: unknown ioctl %q", cmd)
	}
}

// NewTxDriver wires the VCA device to a CTMSP connection. It performs the
// paper's setup: the CTMSP connection already holds the precomputed ring
// header; the driver fetches the TR driver's output handle by ioctl and
// hard-codes the call into its interrupt handler.
func NewTxDriver(k *kernel.Kernel, dev *Device, conn *ctmsp.Conn, cfg TxConfig) (*TxDriver, error) {
	h, err := k.Ioctl("tr0", "get-output-handle", nil)
	if err != nil {
		return nil, fmt.Errorf("vca: %w", err)
	}
	t := &TxDriver{k: k, dev: dev, conn: conn, out: h.(func(*tradapter.Outgoing)), cfg: cfg}
	dev.irq = t.interrupt
	k.Register(t)
	return t, nil
}

// Stats returns a snapshot of transmit accounting.
func (t *TxDriver) Stats() TxStats { return t.stats }

// interrupt is the VCA interrupt: it runs the handler at the VCA's
// interrupt level. The delay from here to the handler's first segment is
// measurement points 1→2 (histogram 5).
func (t *TxDriver) interrupt(tick uint64) {
	t.stats.Interrupts++
	m := t.k.Machine
	segs := []rtpc.Seg{
		rtpc.Do("irq-dispatch", t.cfg.DispatchCost),
		rtpc.Mark("handler-entry", func() {
			if t.OnHandlerEntry != nil {
				t.OnHandlerEntry(tick, t.k.Sched().Now())
			}
		}),
		rtpc.Do("entry", t.cfg.EntryCost+m.Jitter(t.cfg.EntryJitterMax)),
	}
	if t.cfg.CopyVCAToMbufs {
		segs = append(segs, m.CopySeg("vca-to-mbuf", t.cfg.DataBytes, rtpc.DeviceMemory, rtpc.SystemMemory))
	}
	segs = append(segs,
		rtpc.Do("mbuf-alloc", t.cfg.AllocCost),
		rtpc.Then("stamp-headers", t.cfg.StampCost, func() { t.buildAndSend() }),
	)
	t.k.CPU().Submit(kernel.LevelVCA, "vca.intr", segs, nil)
}

func (t *TxDriver) buildAndSend() {
	if t.MaxOutstanding > 0 && t.outstanding >= t.MaxOutstanding {
		t.stats.QueueDrops++
		return
	}
	var num uint32
	pkt := t.conn.BuildPacket(t.cfg.DataBytes, t.cfg.CopyHeaderOnly,
		func() {
			if t.OnPreTransmit != nil {
				t.OnPreTransmit(num, t.k.Sched().Now())
			}
		},
		func(s ring.DeliveryStatus) {
			t.outstanding--
			t.stats.PacketsSent++
			if t.OnTxDone != nil {
				t.OnTxDone(num, s)
			}
		},
	)
	if pkt == nil {
		t.stats.MbufDrops++
		return
	}
	num = pkt.Chain.Tag.(ctmsp.Header).PacketNum
	t.outstanding++
	chain := pkt.Chain
	oldDone := pkt.Done
	pkt.Done = func(s ring.DeliveryStatus) {
		t.k.Pool.Free(chain)
		oldDone(s)
	}
	if t.PatchOutgoing != nil {
		t.PatchOutgoing(pkt)
	}
	t.out(pkt)
}

// RxConfig selects the receive-side driver variants of §5.3.
type RxConfig struct {
	// CopyToMbufs copies the packet from the fixed rx DMA buffer into
	// mbufs before the VCA examines it; off means the VCA examines the
	// packet in place.
	CopyToMbufs bool
	// CopyToDevice copies the data out of mbufs into the VCA device
	// buffer; off means the data is dropped after accounting.
	CopyToDevice bool
	// ExamineCost is the in-place inspection cost when CopyToMbufs is
	// off.
	ExamineCost sim.Time
}

// DefaultRxConfigB returns Test Case B's receive path: full copying.
func DefaultRxConfigB() RxConfig {
	return RxConfig{CopyToMbufs: true, CopyToDevice: true, ExamineCost: 40 * sim.Microsecond}
}

// DefaultRxConfigA returns Test Case A's receive path: copy into mbufs
// but drop instead of feeding the device.
func DefaultRxConfigA() RxConfig {
	return RxConfig{CopyToMbufs: true, CopyToDevice: false, ExamineCost: 40 * sim.Microsecond}
}

// RxStats aggregates receive-driver accounting.
type RxStats struct {
	Classified uint64
	Delivered  uint64
	BadHeader  uint64
}

// RxDriver is the VCA driver configured as the CTMS sink on the receiving
// machine. It installs itself at the Token Ring driver's CTMSP split
// point; classification time there is measurement point 4.
type RxDriver struct {
	k    *kernel.Kernel
	cfg  RxConfig
	recv *ctmsp.Receiver

	// OnClassified observes measurement point 4.
	OnClassified func(h ctmsp.Header, at sim.Time)
	// OnDelivered fires when the configured copy path completes and the
	// packet's data has reached (or been dropped on behalf of) the
	// presentation device.
	OnDelivered func(h ctmsp.Header, at sim.Time, ev ctmsp.Event)

	stats RxStats
}

// NewRxDriver installs the receive driver on the TR driver's split point.
func NewRxDriver(k *kernel.Kernel, trdrv *tradapter.Driver, recv *ctmsp.Receiver, cfg RxConfig) *RxDriver {
	r := &RxDriver{k: k, cfg: cfg, recv: recv}
	trdrv.SetHandler(tradapter.ClassCTMSP, r.handle)
	return r
}

// Stats returns a snapshot of receive accounting.
func (r *RxDriver) Stats() RxStats { return r.stats }

// handle runs at the split point, inside the receive interrupt.
func (r *RxDriver) handle(rcv *tradapter.Received) []rtpc.Seg {
	out, ok := rcv.Frame.Payload.(*tradapter.Outgoing)
	if !ok {
		r.stats.BadHeader++
		rcv.Release()
		return nil
	}
	h, ok := out.Chain.Tag.(ctmsp.Header)
	if !ok {
		r.stats.BadHeader++
		rcv.Release()
		return nil
	}
	r.stats.Classified++
	if r.OnClassified != nil {
		r.OnClassified(h, rcv.At)
	}

	m := r.k.Machine
	var segs []rtpc.Seg
	if r.cfg.CopyToMbufs {
		segs = append(segs, m.CopySegs("dma-to-mbuf", rcv.Size, rcv.Buffer.Kind, rtpc.SystemMemory)...)
		segs = append(segs, rtpc.Mark("release", rcv.Release))
	} else {
		segs = append(segs,
			rtpc.Do("examine-in-place", r.cfg.ExamineCost),
			rtpc.Mark("release", rcv.Release),
		)
	}
	if r.cfg.CopyToDevice {
		segs = append(segs, m.CopySegs("mbuf-to-vca", rcv.Size-ctmsp.HeaderSize, rtpc.SystemMemory, rtpc.DeviceMemory)...)
	}
	segs = append(segs, rtpc.Mark("deliver", func() {
		ev := r.recv.Accept(h, r.k.Sched().Now())
		r.stats.Delivered++
		if r.OnDelivered != nil {
			r.OnDelivered(h, r.k.Sched().Now(), ev)
		}
	}))
	return segs
}
